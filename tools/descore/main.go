// Command descore measures the DES core's event throughput and writes
// the machine-readable BENCH_descore.json artifact the CI regression
// gate diffs (tools/benchdiff, warn-only — event throughput is a timing
// measurement and the 1-CPU CI container is noisy; determinism, unlike
// speed, is gated hard by the byte-compare smokes in tools/ci).
//
// Methodology: the frozen pre-rewrite engine is kept verbatim at
// internal/simclock/refheap, so both the baseline and the calendar
// queue are re-measured on the SAME host at the SAME instant with the
// SAME workloads — the ratio is like-for-like by construction, not a
// number copied from an old run. Three microbenchmarks cover the hot
// patterns of real simulations:
//
//   - step: a self-rescheduling event population (the kernel
//     completion/re-arm steady state) — pure Step + At throughput;
//   - cancel: cancel + re-arm churn against a standing population (the
//     setKernelRate pattern that dominates contention recompute);
//   - churn: bulk schedule of a clustered batch then drain (arrival
//     bursts).
//
// An optional wall-clock section (-wall) times the fig10 -quick sweep
// in-process on the current engine.
//
//	go run ./tools/descore -wall -o BENCH_descore.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"liger/internal/bench"
	"liger/internal/simclock"
	"liger/internal/simclock/refheap"
)

// result is one workload measured on both engines.
type result struct {
	HeapNsOp     float64 `json:"heap_ns_op"`
	CalendarNsOp float64 `json:"calendar_ns_op"`
	// Speedup is heap/calendar: >1 means the calendar queue is faster.
	Speedup float64 `json:"speedup"`
	// HeapEventsPerSec / CalendarEventsPerSec restate the same numbers
	// as throughput (each benchmark iteration fires exactly one event).
	HeapEventsPerSec     float64 `json:"heap_events_per_sec"`
	CalendarEventsPerSec float64 `json:"calendar_events_per_sec"`
}

// doc is the emitted artifact.
type doc struct {
	Methodology string            `json:"methodology"`
	Host        host              `json:"host"`
	Microbench  map[string]result `json:"microbench"`
	// MinSpeedup is the smallest microbenchmark speedup — the headline
	// the ≥3x acceptance bar reads (BenchmarkEngineStep-class).
	StepSpeedup float64 `json:"step_speedup"`
	Wall        *wall   `json:"wall,omitempty"`
}

type host struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPUs   int    `json:"cpus"`
}

type wall struct {
	// Fig10QuickSeconds is the fig10 -quick -batches 150 sweep timed
	// in-process on the current (calendar) engine, serial executor.
	Fig10QuickSeconds float64 `json:"fig10_quick_seconds"`
	Batches           int     `json:"batches"`
}

func main() {
	out := flag.String("o", "BENCH_descore.json", "output artifact path")
	withWall := flag.Bool("wall", false, "also time the fig10 -quick sweep in-process (slow)")
	wallBatches := flag.Int("wall-batches", 150, "batch arrivals per point for -wall")
	flag.Parse()

	d := doc{
		Methodology: "baseline re-measured live from the frozen pre-rewrite heap engine " +
			"(internal/simclock/refheap) on the same host and workloads as the calendar queue; " +
			"ns/op from testing.Benchmark, one event fired per iteration; speedup = heap/calendar",
		Host:       host{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU()},
		Microbench: map[string]result{},
	}

	for _, w := range []struct {
		name     string
		heap     func(b *testing.B)
		calendar func(b *testing.B)
	}{
		{"step", heapStep, calStep},
		{"cancel", heapCancel, calCancel},
		{"churn", heapChurn, calChurn},
	} {
		r := measure(w.heap, w.calendar)
		d.Microbench[w.name] = r
		fmt.Fprintf(os.Stderr, "descore: %-7s heap %8.1f ns/op  calendar %8.1f ns/op  speedup %.2fx\n",
			w.name, r.HeapNsOp, r.CalendarNsOp, r.Speedup)
	}
	d.StepSpeedup = d.Microbench["step"].Speedup

	if *withWall {
		cfg := bench.RunConfig{Batches: *wallBatches, Quick: true, Seed: 1}
		start := time.Now()
		exp, err := bench.ByID("fig10")
		if err == nil {
			err = exp.Run(cfg, discard{})
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "descore: fig10 wall run:", err)
			os.Exit(1)
		}
		d.Wall = &wall{Fig10QuickSeconds: time.Since(start).Seconds(), Batches: *wallBatches}
		fmt.Fprintf(os.Stderr, "descore: fig10 -quick -batches %d wall %.2fs\n", *wallBatches, d.Wall.Fig10QuickSeconds)
	}

	buf, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "descore:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "descore:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "descore: wrote %s\n", *out)
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// measure runs both variants under testing.Benchmark (which self-scales
// b.N to roughly a second of measurement) and folds the ns/op pair into
// a result. Each variant gets a discarded warm-up pass so neither side
// pays the cold-cache penalty.
func measure(heap, calendar func(b *testing.B)) result {
	run := func(fn func(b *testing.B)) float64 {
		testing.Benchmark(fn) // warm-up, discarded
		final := testing.Benchmark(fn)
		return float64(final.T.Nanoseconds()) / float64(final.N)
	}
	h := run(heap)
	c := run(calendar)
	r := result{HeapNsOp: h, CalendarNsOp: c}
	if c > 0 {
		r.Speedup = h / c
	}
	if h > 0 {
		r.HeapEventsPerSec = 1e9 / h
	}
	if c > 0 {
		r.CalendarEventsPerSec = 1e9 / c
	}
	return r
}

// ---- workloads, written twice (the two engines are distinct types on
// purpose: refheap must stay frozen, not parameterized) ----

// step: 64 events, each rescheduling itself 1µs ahead.
func calStep(b *testing.B) {
	e := simclock.New()
	var fns []simclock.Event
	for j := 0; j < 64; j++ {
		j := j
		var fn simclock.Event
		fn = func(now simclock.Time) { e.At(now+time.Microsecond, fns[j]) }
		fns = append(fns, fn)
		e.At(simclock.Time(j)*time.Nanosecond, fn)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func heapStep(b *testing.B) {
	e := refheap.New()
	var fns []refheap.Event
	for j := 0; j < 64; j++ {
		j := j
		var fn refheap.Event
		fn = func(now refheap.Time) { e.At(now+time.Microsecond, fns[j]) }
		fns = append(fns, fn)
		e.At(refheap.Time(j)*time.Nanosecond, fn)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// cancel: a standing population of 128 far events under cancel + re-arm
// churn (the kernel re-time pattern).
func calCancel(b *testing.B) {
	e := simclock.New()
	noop := func(simclock.Time) {}
	handles := make([]simclock.Handle, 128)
	for j := range handles {
		handles[j] = e.At(time.Duration(1000+j)*time.Microsecond, noop)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(handles)
		handles[j].Cancel()
		handles[j] = e.At(time.Duration(2000+i%1000)*time.Microsecond, noop)
	}
}

func heapCancel(b *testing.B) {
	e := refheap.New()
	noop := func(refheap.Time) {}
	handles := make([]refheap.Handle, 128)
	for j := range handles {
		handles[j] = e.At(time.Duration(1000+j)*time.Microsecond, noop)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(handles)
		handles[j].Cancel()
		handles[j] = e.At(time.Duration(2000+i%1000)*time.Microsecond, noop)
	}
}

// churn: bulk-schedule a clustered batch, then drain it.
func calChurn(b *testing.B) {
	noop := func(simclock.Time) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := simclock.New()
		for j := 0; j < 1000; j++ {
			e.At(simclock.Time(j%97)*time.Microsecond, noop)
		}
		e.Run()
	}
}

func heapChurn(b *testing.B) {
	noop := func(refheap.Time) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := refheap.New()
		for j := 0; j < 1000; j++ {
			e.At(refheap.Time(j%97)*time.Microsecond, noop)
		}
		e.Run()
	}
}
