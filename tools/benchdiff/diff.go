package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// loadMetrics reads a JSON document and flattens every numeric leaf
// into a dotted-path metric map.
func loadMetrics(path string) (map[string]float64, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc any
	if err := json.Unmarshal(buf, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]float64{}
	flatten("", doc, out)
	return out, nil
}

// flatten walks a decoded JSON value, recording numeric leaves under
// dotted object paths and indexed array paths. Booleans count as 0/1
// so flag flips (e.g. a row turning "failed") register as deltas;
// strings and nulls are structure, not metrics.
func flatten(prefix string, v any, out map[string]float64) {
	switch x := v.(type) {
	case map[string]any:
		for k, child := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flatten(p, child, out)
		}
	case []any:
		for i, child := range x {
			flatten(fmt.Sprintf("%s[%d]", prefix, i), child, out)
		}
	case float64:
		out[prefix] = x
	case bool:
		if x {
			out[prefix] = 1
		} else {
			out[prefix] = 0
		}
	}
}

// delta is one metric's movement between the two documents.
type delta struct {
	key      string
	old, cur float64
	rel      float64 // |cur-old| relative to |old| (or absolute when old == 0)
}

// report is the comparison result: per-metric deltas plus counts the
// caller turns into an exit code.
type report struct {
	deltas      []delta
	regressions []delta
	onlyOld     []string
	onlyNew     []string
	compared    int
	structural  int
}

// diffMetrics compares the documents' shared numeric metrics. A metric
// whose relative change exceeds threshold is a regression; keys that
// exist on only one side are structural drift.
func diffMetrics(old, cur map[string]float64, threshold float64) report {
	var rep report
	for k, ov := range old {
		cv, ok := cur[k]
		if !ok {
			rep.onlyOld = append(rep.onlyOld, k)
			continue
		}
		rep.compared++
		rel := relChange(ov, cv)
		d := delta{key: k, old: ov, cur: cv, rel: rel}
		rep.deltas = append(rep.deltas, d)
		if rel > threshold {
			rep.regressions = append(rep.regressions, d)
		}
	}
	for k := range cur {
		if _, ok := old[k]; !ok {
			rep.onlyNew = append(rep.onlyNew, k)
		}
	}
	sort.Slice(rep.deltas, func(i, j int) bool { return rep.deltas[i].key < rep.deltas[j].key })
	sort.Slice(rep.regressions, func(i, j int) bool { return rep.regressions[i].key < rep.regressions[j].key })
	sort.Strings(rep.onlyOld)
	sort.Strings(rep.onlyNew)
	rep.structural = len(rep.onlyOld) + len(rep.onlyNew)
	return rep
}

// relChange measures how far cur drifted from old. Against a zero
// baseline any nonzero value is an infinite relative change; report
// the absolute value instead so tiny float dust still reads sensibly.
func relChange(old, cur float64) float64 {
	if old == cur {
		return 0
	}
	if old == 0 {
		return math.Abs(cur)
	}
	return math.Abs(cur-old) / math.Abs(old)
}

// format renders the report: regressions first, then sub-threshold
// changes, then (with all) unchanged metrics, then structural drift.
func (r report) format(all bool) []string {
	over := map[string]bool{}
	for _, d := range r.regressions {
		over[d.key] = true
	}
	var lines []string
	for _, d := range r.regressions {
		lines = append(lines, fmt.Sprintf("REGRESSION %s: %g -> %g (%+.1f%%)", d.key, d.old, d.cur, signedPct(d)))
	}
	for _, d := range r.deltas {
		switch {
		case over[d.key]:
		case d.rel > 0:
			lines = append(lines, fmt.Sprintf("  changed  %s: %g -> %g (%+.1f%%)", d.key, d.old, d.cur, signedPct(d)))
		case all:
			lines = append(lines, fmt.Sprintf("  same     %s: %g", d.key, d.old))
		}
	}
	for _, k := range r.onlyOld {
		lines = append(lines, "  only-old "+k)
	}
	for _, k := range r.onlyNew {
		lines = append(lines, "  only-new "+k)
	}
	return lines
}

func signedPct(d delta) float64 {
	if d.old == 0 {
		return 100 * d.cur
	}
	return 100 * (d.cur - d.old) / math.Abs(d.old)
}
