package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestFlattenNumericLeaves(t *testing.T) {
	var doc any
	if err := json.Unmarshal([]byte(`{
		"headline": {"recovery_ms": {"Liger": 12.5}},
		"rows": [{"goodput": 3.5, "failed": true, "runtime": "Liger"}, {"goodput": 0}],
		"seed": 1,
		"note": null
	}`), &doc); err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	flatten("", doc, got)
	want := map[string]float64{
		"headline.recovery_ms.Liger": 12.5,
		"rows[0].goodput":            3.5,
		"rows[0].failed":             1,
		"rows[1].goodput":            0,
		"seed":                       1,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("flatten = %v, want %v", got, want)
	}
}

func TestDiffMetricsThreshold(t *testing.T) {
	old := map[string]float64{"a": 100, "b": 100, "c": 0, "gone": 7}
	cur := map[string]float64{"a": 103, "b": 110, "c": 0, "new": 9}
	rep := diffMetrics(old, cur, 0.05)
	if rep.compared != 3 {
		t.Fatalf("compared %d metrics, want 3", rep.compared)
	}
	if len(rep.regressions) != 1 || rep.regressions[0].key != "b" {
		t.Fatalf("regressions = %+v, want exactly b", rep.regressions)
	}
	if rep.structural != 2 || rep.onlyOld[0] != "gone" || rep.onlyNew[0] != "new" {
		t.Fatalf("structural drift = %v/%v, want gone/new", rep.onlyOld, rep.onlyNew)
	}
	// Identical documents: nothing to report.
	rep = diffMetrics(old, old, 0.05)
	if len(rep.regressions) != 0 || rep.structural != 0 {
		t.Fatalf("self-diff not clean: %+v", rep)
	}
}

func TestDiffZeroBaseline(t *testing.T) {
	// A metric appearing from a zero baseline uses the absolute value
	// as its relative change, so real movements trip the gate while
	// float dust stays under it.
	rep := diffMetrics(map[string]float64{"x": 0}, map[string]float64{"x": 0.5}, 0.05)
	if len(rep.regressions) != 1 {
		t.Fatalf("0 -> 0.5 should regress, got %+v", rep.deltas)
	}
	rep = diffMetrics(map[string]float64{"x": 0}, map[string]float64{"x": 1e-9}, 0.05)
	if len(rep.regressions) != 0 {
		t.Fatalf("0 -> 1e-9 should pass, got %+v", rep.regressions)
	}
}

func TestLoadMetricsAndFormat(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(path, []byte(`{"goodput": 4.25, "rows": [{"lat": 10}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := loadMetrics(path)
	if err != nil {
		t.Fatal(err)
	}
	if m["goodput"] != 4.25 || m["rows[0].lat"] != 10 {
		t.Fatalf("loadMetrics = %v", m)
	}
	rep := diffMetrics(m, map[string]float64{"goodput": 2, "rows[0].lat": 10.1}, 0.05)
	lines := rep.format(true)
	if len(lines) != 2 {
		t.Fatalf("format lines = %q, want regression + changed", lines)
	}
	if lines[0] != "REGRESSION goodput: 4.25 -> 2 (-52.9%)" {
		t.Fatalf("regression line = %q", lines[0])
	}
}
