// Command benchdiff compares two machine-readable bench artifacts —
// BENCH_*.json sweeps, failover_*.analysis.json trace analyses, or
// *.metrics.json snapshots — metric by metric, and exits non-zero when
// any metric moved beyond a configurable relative threshold. It is the
// CI regression gate's reading of the observability layer:
//
//	go run ./tools/benchdiff -threshold 0.05 old/BENCH_failover.json new/BENCH_failover.json
//
// Every numeric leaf of each document becomes one dotted-path metric
// (rows[3].goodput, headline.recovery_ms.Liger, ...). Keys present on
// only one side are reported as structural drift but never fail the
// gate on their own; -warn downgrades threshold violations to warnings
// so the diff can ride along an otherwise green pipeline.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	threshold := flag.Float64("threshold", 0.05, "relative change that counts as a regression (0.05 = 5%)")
	warn := flag.Bool("warn", false, "report regressions but exit 0")
	all := flag.Bool("all", false, "print unchanged metrics too")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: benchdiff [flags] old.json new.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	old, err := loadMetrics(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := loadMetrics(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	rep := diffMetrics(old, cur, *threshold)
	for _, line := range rep.format(*all) {
		fmt.Println(line)
	}
	fmt.Printf("benchdiff: %d metrics compared, %d beyond %.1f%%, %d only-one-side\n",
		rep.compared, len(rep.regressions), 100**threshold, rep.structural)
	if len(rep.regressions) > 0 && !*warn {
		os.Exit(1)
	}
}
