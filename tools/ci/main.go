// Command ci runs the repository's full check gate — the same sequence
// the Makefile's `check` target runs, packaged as a Go program so the
// gate works on hosts without make:
//
//	go run ./tools/ci
//
// Steps, in order (the run stops at the first failure):
//  1. gofmt -l on tracked Go files (fails if any file needs formatting)
//  2. go vet ./...
//  3. go build ./...
//  4. go test -race ./internal/runner ./internal/simclock
//     ./internal/faults ./internal/serve
//     (the concurrency-bearing packages plus the fault-injection and
//     deadline/retry layers get a dedicated race pass)
//  5. go test ./... (full suite)
//  6. a chaos smoke run: `ligerbench -exp chaos -quick` at a small
//     batch count, proving the fault scenarios execute end to end
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"
)

type step struct {
	name string
	args []string
}

func main() {
	steps := []step{
		{"go vet", []string{"go", "vet", "./..."}},
		{"go build", []string{"go", "build", "./..."}},
		{"race (runner, simclock, faults, serve)", []string{"go", "test", "-race",
			"./internal/runner", "./internal/simclock", "./internal/faults", "./internal/serve"}},
		{"go test", []string{"go", "test", "./..."}},
		{"chaos smoke", []string{"go", "run", "./cmd/ligerbench",
			"-exp", "chaos", "-quick", "-batches", "25", "-seed", "5"}},
	}
	if err := gofmtCheck(); err != nil {
		fmt.Fprintf(os.Stderr, "FAIL gofmt: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("ok   gofmt")
	for _, s := range steps {
		start := time.Now()
		cmd := exec.Command(s.args[0], s.args[1:]...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", s.name, err)
			os.Exit(1)
		}
		fmt.Printf("ok   %s (%v)\n", s.name, time.Since(start).Round(time.Millisecond))
	}
	fmt.Println("all checks passed")
}

// gofmtCheck fails when any Go source file under the repo is not
// gofmt-formatted, listing the offenders.
func gofmtCheck() error {
	out, err := exec.Command("gofmt", "-l", ".").CombinedOutput()
	if err != nil {
		return fmt.Errorf("%v: %s", err, out)
	}
	if files := strings.TrimSpace(string(out)); files != "" {
		return fmt.Errorf("files need gofmt:\n%s", files)
	}
	return nil
}
