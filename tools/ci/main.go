// Command ci runs the repository's full check gate — the same sequence
// the Makefile's `check` target runs, packaged as a Go program so the
// gate works on hosts without make:
//
//	go run ./tools/ci
//
// Steps, in order (the run stops at the first failure):
//  1. gofmt -l on tracked Go files (fails if any file needs formatting)
//  2. go vet ./...
//  3. go build ./...
//  4. go test -race ./internal/runner ./internal/simclock
//     ./internal/faults ./internal/serve ./internal/cluster
//     ./internal/kvcache ./internal/generate
//     (the concurrency-bearing packages plus the fault-injection,
//     deadline/retry, fleet, and serving-telemetry layers get a
//     dedicated race pass)
//  5. go test ./... (full suite)
//  6. a chaos smoke run: `ligerbench -exp chaos -quick` at a small
//     batch count, proving the fault scenarios execute end to end
//  7. a failover race pass: the permanent-device-failure paths across
//     gpusim, runtimes, liger, and serve under -race
//  8. an observability race pass: the tracer hook, dependency-edge
//     emission, per-request decomposition, trace-analysis, and
//     metrics-export paths under -race
//  9. a failover smoke + determinism check: `ligerbench -exp failover
//     -quick -trace-dir` at -parallel 1 and -parallel 4 must produce
//     identical BENCH_failover.json bytes AND identical per-runtime
//     Chrome-trace/metrics/analysis artifacts, each of which must parse
//     as JSON — the byte-compare of failover_*.analysis.json doubles as
//     the analyzer determinism smoke; a warn-only benchdiff pass then
//     diffs the two sweeps' BENCH_failover.json to prove the regression
//     gate runs end to end
//  10. an explain smoke: `ligersim -explain` twice on the same seed must
//     print byte-identical critical-path/gap/overlap reports
//  11. a shards determinism smoke: `ligerbench -exp fig10 -quick` at
//     -shards 0 and -shards 4 must print byte-identical output
//     (timing lines stripped) — the lookahead-sharded path may never
//     change results, only speed (hard fail)
//  12. a descore regression pass: tools/descore re-measures DES-core
//     events/sec (frozen heap baseline vs calendar queue) and benchdiff
//     compares against the committed BENCH_descore.json — warn-only,
//     because throughput on the 1-CPU CI container is noise; the
//     determinism smokes above are the hard gates
//  13. a fleet smoke + determinism check: `ligerbench -exp fleet
//     -quick` at -parallel 1 -shards 1 and -parallel 4 -shards 4 must
//     print identical tables and write byte-identical BENCH_fleet.json
//     artifacts (each parsing as JSON), then a warn-only benchdiff
//     over the two proves the regression gate reads the fleet artifact
//  14. a serving smoke + determinism check: `ligerbench -exp serving
//     -quick -trace-dir` (continuous batching over the paged KV
//     allocator) at -parallel 1 -shards 1 and -parallel 4 -shards 4
//     must print identical tables and write byte-identical
//     BENCH_serving.json and BENCH_serving_analysis.json artifacts
//     plus byte-identical per-runtime serving Chrome-trace/metrics/
//     decomposition artifacts, each parsing as JSON; every
//     serving_*.serving.json must carry the decomposition schema
//     (requests, segment_ns, pools, imbalance, episodes, counters);
//     warn-only benchdiff passes over the two BENCH_serving.json and
//     the two BENCH_serving_analysis.json prove the regression gate
//     reads both serving artifacts
//  15. scenario acceptance: every scenarios/*.yaml must PASS its
//     assertions, the impossible-slo and no-spare-capacity negative
//     fixtures must FAIL (exit 1) — a gate that cannot reject is not a
//     gate — and `scenarios/cascading-failures.yaml`,
//     `scenarios/fleet-node-loss.yaml`, and `scenarios/decode-heavy.yaml`
//     (the continuous-batching corpus entry) must print byte-identical
//     reports at -parallel 1 and -parallel 4 -shards 4
//  16. a stress smoke: `ligersim stress -n 25 -seed 42` twice must
//     produce byte-identical aggregate survival reports, plus a small
//     -race pass (`stress -n 3 -seed 7`) over the randomized fleet
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"
)

type step struct {
	name string
	args []string
}

func main() {
	steps := []step{
		{"go vet", []string{"go", "vet", "./..."}},
		{"go build", []string{"go", "build", "./..."}},
		{"race (runner, simclock, faults, serve, cluster, kvcache, generate)", []string{"go", "test", "-race",
			"./internal/runner", "./internal/simclock", "./internal/faults", "./internal/serve",
			"./internal/cluster", "./internal/kvcache", "./internal/generate"}},
		{"go test", []string{"go", "test", "./..."}},
		{"chaos smoke", []string{"go", "run", "./cmd/ligerbench",
			"-exp", "chaos", "-quick", "-batches", "25", "-seed", "5"}},
		{"failover race", []string{"go", "test", "-race",
			"-run", "Failover|FailDevice|Drain|Backoff|Quiesce",
			"./internal/gpusim", "./internal/runtimes", "./internal/liger", "./internal/serve"}},
		{"observability race", []string{"go", "test", "-race",
			"-run", "Observability|ChromeTrace|Tracer|Truncated|Rendezvous|ReqBreakdown|RequestID|PerRequest|Percentiles|FromRun|WriteJSON|Dep|CriticalPath|Gap|Overlap|Window|Determinism|Timeline",
			"./internal/trace", "./internal/metrics", "./internal/gpusim",
			"./internal/runtimes", "./internal/serve", "./internal/stats",
			"./internal/analyze"}},
	}
	if err := gofmtCheck(); err != nil {
		fmt.Fprintf(os.Stderr, "FAIL gofmt: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("ok   gofmt")
	for _, s := range steps {
		start := time.Now()
		cmd := exec.Command(s.args[0], s.args[1:]...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", s.name, err)
			os.Exit(1)
		}
		fmt.Printf("ok   %s (%v)\n", s.name, time.Since(start).Round(time.Millisecond))
	}
	start := time.Now()
	if err := failoverDeterminism(); err != nil {
		fmt.Fprintf(os.Stderr, "FAIL failover smoke: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("ok   failover smoke (%v)\n", time.Since(start).Round(time.Millisecond))
	start = time.Now()
	if err := explainDeterminism(); err != nil {
		fmt.Fprintf(os.Stderr, "FAIL explain smoke: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("ok   explain smoke (%v)\n", time.Since(start).Round(time.Millisecond))
	start = time.Now()
	if err := shardsDeterminism(); err != nil {
		fmt.Fprintf(os.Stderr, "FAIL shards smoke: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("ok   shards smoke (%v)\n", time.Since(start).Round(time.Millisecond))
	start = time.Now()
	if err := descoreRegression(); err != nil {
		fmt.Fprintf(os.Stderr, "FAIL descore: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("ok   descore (%v)\n", time.Since(start).Round(time.Millisecond))
	start = time.Now()
	if err := fleetDeterminism(); err != nil {
		fmt.Fprintf(os.Stderr, "FAIL fleet smoke: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("ok   fleet smoke (%v)\n", time.Since(start).Round(time.Millisecond))
	start = time.Now()
	if err := servingDeterminism(); err != nil {
		fmt.Fprintf(os.Stderr, "FAIL serving smoke: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("ok   serving smoke (%v)\n", time.Since(start).Round(time.Millisecond))
	start = time.Now()
	if err := scenarioAcceptance(); err != nil {
		fmt.Fprintf(os.Stderr, "FAIL scenario acceptance: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("ok   scenario acceptance (%v)\n", time.Since(start).Round(time.Millisecond))
	start = time.Now()
	if err := stressSmoke(); err != nil {
		fmt.Fprintf(os.Stderr, "FAIL stress smoke: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("ok   stress smoke (%v)\n", time.Since(start).Round(time.Millisecond))
	fmt.Println("all checks passed")
}

// fleetDeterminism runs the fleet-failover sweep at two worker/shard
// settings and fails unless table output and BENCH_fleet.json are
// byte-identical — the fleet simulation's shard schedule (frontend +
// one shard per node) may never change results. A warn-only benchdiff
// over the two JSONs then proves the regression gate reads the fleet
// artifact cleanly.
func fleetDeterminism() error {
	tmp, err := os.MkdirTemp("", "ci-fleet-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	var outs [][]byte
	for _, workers := range []string{"1", "4"} {
		dir := filepath.Join(tmp, "p"+workers)
		cmd := exec.Command("go", "run", "./cmd/ligerbench",
			"-exp", "fleet", "-quick", "-batches", "25", "-seed", "5",
			"-parallel", workers, "-shards", workers, "-json", dir)
		cmd.Stderr = os.Stderr
		out, err := cmd.Output()
		if err != nil {
			return fmt.Errorf("-parallel %s: %v", workers, err)
		}
		outs = append(outs, stripTimingLines(out))
	}
	if !bytes.Equal(outs[0], outs[1]) {
		return fmt.Errorf("fleet table differs between -parallel 1 and -parallel 4 -shards 4")
	}
	var jsons [][]byte
	for _, workers := range []string{"1", "4"} {
		buf, err := os.ReadFile(filepath.Join(tmp, "p"+workers, "BENCH_fleet.json"))
		if err != nil {
			return err
		}
		var doc any
		if err := json.Unmarshal(buf, &doc); err != nil {
			return fmt.Errorf("-parallel %s BENCH_fleet.json is not valid JSON: %v", workers, err)
		}
		jsons = append(jsons, buf)
	}
	if !bytes.Equal(jsons[0], jsons[1]) {
		return fmt.Errorf("BENCH_fleet.json differs between -parallel 1 and -parallel 4 -shards 4")
	}
	cmd := exec.Command("go", "run", "./tools/benchdiff", "-warn",
		filepath.Join(tmp, "p1", "BENCH_fleet.json"),
		filepath.Join(tmp, "p4", "BENCH_fleet.json"))
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("benchdiff: %v", err)
	}
	return nil
}

// servingDeterminism runs the continuous-serving sweep — with serving
// telemetry on — at two worker/shard settings and fails unless table
// output and every artifact are byte-identical: the sweep JSON, the
// serving-analysis aggregate, and the per-runtime serving Chrome
// trace, metrics snapshot and TTFT/TPOT decomposition. Iteration-level
// scheduling over the paged KV allocator may never let the shard
// schedule change results, and neither may tracing. Every artifact
// must parse as JSON and every *.serving.json must carry the
// decomposition schema; warn-only benchdiff passes over the two
// sweeps' BENCH_serving.json and BENCH_serving_analysis.json prove
// the regression gate reads both serving artifacts cleanly.
func servingDeterminism() error {
	tmp, err := os.MkdirTemp("", "ci-serving-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	var outs [][]byte
	var artifacts []map[string][]byte
	for _, workers := range []string{"1", "4"} {
		dir := filepath.Join(tmp, "p"+workers)
		cmd := exec.Command("go", "run", "./cmd/ligerbench",
			"-exp", "serving", "-quick", "-batches", "25", "-seed", "5",
			"-parallel", workers, "-shards", workers, "-json", dir, "-trace-dir", dir)
		cmd.Stderr = os.Stderr
		out, err := cmd.Output()
		if err != nil {
			return fmt.Errorf("-parallel %s: %v", workers, err)
		}
		outs = append(outs, stripTracedLines(stripTimingLines(out)))
		files, err := readArtifacts(dir)
		if err != nil {
			return err
		}
		// Sweep JSON + analysis aggregate + a trace/metrics/serving
		// triple per runtime.
		if len(files) < 11 {
			return fmt.Errorf("-parallel %s: %d artifacts in %s, want >= 11", workers, len(files), dir)
		}
		artifacts = append(artifacts, files)
	}
	if !bytes.Equal(outs[0], outs[1]) {
		return fmt.Errorf("serving table differs between -parallel 1 and -parallel 4 -shards 4")
	}
	for name, buf := range artifacts[0] {
		other, ok := artifacts[1][name]
		if !ok {
			return fmt.Errorf("%s missing from the -parallel 4 run", name)
		}
		if !bytes.Equal(buf, other) {
			return fmt.Errorf("%s differs between -parallel 1 and -parallel 4 -shards 4", name)
		}
		var doc any
		if err := json.Unmarshal(buf, &doc); err != nil {
			return fmt.Errorf("%s is not valid JSON: %v", name, err)
		}
		if strings.HasSuffix(name, ".serving.json") {
			if err := checkServingSchema(name, doc); err != nil {
				return err
			}
		}
	}
	for _, artifact := range []string{"BENCH_serving.json", "BENCH_serving_analysis.json"} {
		cmd := exec.Command("go", "run", "./tools/benchdiff", "-warn",
			filepath.Join(tmp, "p1", artifact),
			filepath.Join(tmp, "p4", artifact))
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			return fmt.Errorf("benchdiff %s: %v", artifact, err)
		}
	}
	return nil
}

// checkServingSchema validates a serving_*.serving.json decomposition
// artifact: the analyzer's top-level keys must be present, and every
// request's segments must sum exactly to its measured total latency —
// the decomposition's defining invariant, checked here at the artifact
// boundary so a drifting writer cannot ship a silently broken report.
func checkServingSchema(name string, doc any) error {
	obj, ok := doc.(map[string]any)
	if !ok {
		return fmt.Errorf("%s: not a JSON object", name)
	}
	for _, key := range []string{"requests", "segment_ns", "pools", "imbalance", "episodes", "counters"} {
		if _, ok := obj[key]; !ok {
			return fmt.Errorf("%s: missing %q", name, key)
		}
	}
	reqs, ok := obj["requests"].([]any)
	if !ok || len(reqs) == 0 {
		return fmt.Errorf("%s: no requests in decomposition", name)
	}
	for _, rq := range reqs {
		r, ok := rq.(map[string]any)
		if !ok {
			return fmt.Errorf("%s: malformed request entry", name)
		}
		total, _ := r["total_ns"].(float64)
		segs, _ := r["segment_ns"].(map[string]any)
		var sum float64
		for _, v := range segs {
			f, _ := v.(float64)
			sum += f
		}
		if sum != total {
			return fmt.Errorf("%s: request %v segments sum to %.0f, total %.0f", name, r["seq"], sum, total)
		}
	}
	return nil
}

// scenarioAcceptance is the robustness gate: the whole corpus must
// pass its assertions, the negative fixtures must fail, and one
// scenario's report must be byte-identical across -parallel/-shards.
func scenarioAcceptance() error {
	corpus, err := filepath.Glob(filepath.Join("scenarios", "*.yaml"))
	if err != nil {
		return err
	}
	if len(corpus) < 9 {
		return fmt.Errorf("only %d corpus files in scenarios/ (want >= 9)", len(corpus))
	}
	cmd := exec.Command("go", append([]string{"run", "./cmd/ligersim", "run", "-q"}, corpus...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("corpus: %v", err)
	}
	// The negative fixtures must be rejected: exit status 1, no other
	// error. A passing impossible-slo means the assertion engine is
	// vacuous; a passing no-spare-capacity means a fleet with nothing
	// to fail over to would count as surviving a node loss.
	for _, fixture := range []string{"impossible-slo.yaml", "no-spare-capacity.yaml"} {
		cmd = exec.Command("go", "run", "./cmd/ligersim", "run", "-q",
			filepath.Join("scenarios", "fixtures", fixture))
		out, err := cmd.CombinedOutput()
		if err == nil {
			return fmt.Errorf("%s fixture PASSED; the assertion gate cannot reject\n%s", fixture, out)
		}
		if exit, ok := err.(*exec.ExitError); !ok || exit.ExitCode() != 1 {
			return fmt.Errorf("%s fixture: %v\n%s", fixture, err, out)
		}
		if !bytes.Contains(out, []byte("FAIL")) {
			return fmt.Errorf("%s fixture exited 1 without a FAIL verdict:\n%s", fixture, out)
		}
	}
	// Determinism: the flagship chaos scenario, the fleet node-loss
	// scenario, and the continuous-batching scenario must render the
	// same bytes at any -parallel or -shards setting.
	for _, name := range []string{"cascading-failures.yaml", "fleet-node-loss.yaml", "decode-heavy.yaml"} {
		var reports [][]byte
		for _, extra := range [][]string{{"-parallel", "1"}, {"-parallel", "4", "-shards", "4"}} {
			args := append([]string{"run", "./cmd/ligersim", "run"}, extra...)
			args = append(args, filepath.Join("scenarios", name))
			cmd := exec.Command("go", args...)
			cmd.Stderr = os.Stderr
			out, err := cmd.Output()
			if err != nil {
				return fmt.Errorf("%s %v: %v", name, extra, err)
			}
			reports = append(reports, out)
		}
		if !bytes.Equal(reports[0], reports[1]) {
			return fmt.Errorf("%s report differs between -parallel 1 and -parallel 4 -shards 4", name)
		}
	}
	return nil
}

// stressSmoke reruns the acceptance-sized stress campaign and fails
// unless the survival report reproduces byte-for-byte, then runs a
// small campaign under the race detector (the harness fans instances
// out across workers).
func stressSmoke() error {
	var outs [][]byte
	for _, workers := range []string{"1", "4"} {
		cmd := exec.Command("go", "run", "./cmd/ligersim",
			"stress", "-n", "25", "-seed", "42", "-parallel", workers)
		cmd.Stderr = os.Stderr
		out, err := cmd.Output()
		if err != nil {
			return fmt.Errorf("-parallel %s: %v", workers, err)
		}
		outs = append(outs, out)
	}
	if !bytes.Equal(outs[0], outs[1]) {
		return fmt.Errorf("stress -n 25 -seed 42 report differs between -parallel 1 and -parallel 4")
	}
	cmd := exec.Command("go", "run", "-race", "./cmd/ligersim",
		"stress", "-n", "3", "-seed", "7", "-parallel", "4")
	cmd.Stderr = os.Stderr
	if _, err := cmd.Output(); err != nil {
		return fmt.Errorf("-race stress: %v", err)
	}
	return nil
}

// shardsDeterminism runs the fig10 quick sweep at -shards 0 and
// -shards 4 and fails unless stdout is byte-identical after stripping
// the wall-clock timing lines. Today the single-node shard plan falls
// back to the sequential engine, so this pins the fallback; when a
// multi-domain plan lands, it pins the lookahead invariant.
func shardsDeterminism() error {
	var outs [][]byte
	for _, shards := range []string{"0", "4"} {
		cmd := exec.Command("go", "run", "./cmd/ligerbench",
			"-exp", "fig10", "-quick", "-batches", "25", "-seed", "5", "-shards", shards)
		cmd.Stderr = os.Stderr
		out, err := cmd.Output()
		if err != nil {
			return fmt.Errorf("-shards %s: %v", shards, err)
		}
		outs = append(outs, stripTimingLines(out))
	}
	if !bytes.Equal(outs[0], outs[1]) {
		return fmt.Errorf("fig10 output differs between -shards 0 and -shards 4")
	}
	return nil
}

// stripTimingLines removes the "---- <exp> done in <wall> ----" lines,
// the only output legitimately dependent on host speed.
// stripTracedLines removes the "traced: ..." artifact-pointer lines —
// they embed the output directory, which necessarily differs between
// the two determinism runs.
func stripTracedLines(out []byte) []byte {
	var kept [][]byte
	for _, line := range bytes.Split(out, []byte("\n")) {
		if bytes.HasPrefix(bytes.TrimSpace(line), []byte("traced:")) {
			continue
		}
		kept = append(kept, line)
	}
	return bytes.Join(kept, []byte("\n"))
}

func stripTimingLines(out []byte) []byte {
	var kept [][]byte
	for _, line := range bytes.Split(out, []byte("\n")) {
		if bytes.HasPrefix(line, []byte("---- ")) && bytes.Contains(line, []byte(" done in ")) {
			continue
		}
		kept = append(kept, line)
	}
	return bytes.Join(kept, []byte("\n"))
}

// descoreRegression re-measures DES-core throughput into a temp file
// and benchdiffs it against the committed BENCH_descore.json, warn-only
// (-threshold 0.5: only a halving of events/sec would even warn, and a
// warn never fails the gate — CI container timing is not a benchmark).
func descoreRegression() error {
	tmp, err := os.MkdirTemp("", "ci-descore-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	fresh := filepath.Join(tmp, "BENCH_descore.json")
	cmd := exec.Command("go", "run", "./tools/descore", "-o", fresh)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("descore run: %v", err)
	}
	cmd = exec.Command("go", "run", "./tools/benchdiff", "-warn", "-threshold", "0.5",
		"BENCH_descore.json", fresh)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("benchdiff: %v", err)
	}
	return nil
}

// failoverDeterminism runs the traced failover sweep at two worker
// counts and fails unless both produce byte-identical artifacts — the
// sweep JSON plus every per-runtime Chrome trace and metrics snapshot
// must be a pure function of the seed, never of the parallel schedule.
// Each artifact must also parse as JSON (a malformed trace loads as a
// blank screen in Perfetto, which no test would otherwise notice).
func failoverDeterminism() error {
	tmp, err := os.MkdirTemp("", "ci-failover-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	var artifacts []map[string][]byte
	for _, workers := range []string{"1", "4"} {
		dir := filepath.Join(tmp, "p"+workers)
		cmd := exec.Command("go", "run", "./cmd/ligerbench",
			"-exp", "failover", "-quick", "-batches", "25", "-seed", "5",
			"-parallel", workers, "-json", dir, "-trace-dir", dir)
		cmd.Stderr = os.Stderr
		if out, err := cmd.Output(); err != nil {
			return fmt.Errorf("-parallel %s: %v\n%s", workers, err, out)
		}
		files, err := readArtifacts(dir)
		if err != nil {
			return err
		}
		if len(files) < 10 { // sweep JSON + a trace/metrics/analysis triple per runtime
			return fmt.Errorf("-parallel %s: %d artifacts in %s, want >= 10", workers, len(files), dir)
		}
		artifacts = append(artifacts, files)
	}
	for name, buf := range artifacts[0] {
		other, ok := artifacts[1][name]
		if !ok {
			return fmt.Errorf("%s missing from the -parallel 4 run", name)
		}
		if !bytes.Equal(buf, other) {
			return fmt.Errorf("%s differs between -parallel 1 and -parallel 4", name)
		}
		var doc any
		if err := json.Unmarshal(buf, &doc); err != nil {
			return fmt.Errorf("%s is not valid JSON: %v", name, err)
		}
	}
	// Warn-only benchdiff pass over the two sweeps' JSON: the artifacts
	// just proved byte-identical, so this asserts the regression gate
	// itself runs clean on a no-change diff.
	cmd := exec.Command("go", "run", "./tools/benchdiff", "-warn",
		filepath.Join(tmp, "p1", "BENCH_failover.json"),
		filepath.Join(tmp, "p4", "BENCH_failover.json"))
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("benchdiff: %v", err)
	}
	return nil
}

// explainDeterminism runs ligersim -explain twice on the same seed and
// fails unless the printed report — critical path, gap table, overlap
// summary, annotated timeline — is byte-identical.
func explainDeterminism() error {
	var outs [][]byte
	for i := 0; i < 2; i++ {
		cmd := exec.Command("go", "run", "./cmd/ligersim",
			"-runtime", "Liger", "-batches", "20", "-rate", "20", "-explain")
		cmd.Stderr = os.Stderr
		out, err := cmd.Output()
		if err != nil {
			return fmt.Errorf("run %d: %v", i, err)
		}
		outs = append(outs, out)
	}
	if !bytes.Equal(outs[0], outs[1]) {
		return fmt.Errorf("ligersim -explain output differs between identical runs")
	}
	return nil
}

// readArtifacts loads every regular file of dir by name.
func readArtifacts(dir string) (map[string][]byte, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		buf, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		out[e.Name()] = buf
	}
	return out, nil
}

// gofmtCheck fails when any Go source file under the repo is not
// gofmt-formatted, listing the offenders.
func gofmtCheck() error {
	out, err := exec.Command("gofmt", "-l", ".").CombinedOutput()
	if err != nil {
		return fmt.Errorf("%v: %s", err, out)
	}
	if files := strings.TrimSpace(string(out)); files != "" {
		return fmt.Errorf("files need gofmt:\n%s", files)
	}
	return nil
}
