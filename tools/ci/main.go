// Command ci runs the repository's full check gate — the same sequence
// the Makefile's `check` target runs, packaged as a Go program so the
// gate works on hosts without make:
//
//	go run ./tools/ci
//
// Steps, in order (the run stops at the first failure):
//  1. gofmt -l on tracked Go files (fails if any file needs formatting)
//  2. go vet ./...
//  3. go build ./...
//  4. go test -race ./internal/runner ./internal/simclock
//     ./internal/faults ./internal/serve
//     (the concurrency-bearing packages plus the fault-injection and
//     deadline/retry layers get a dedicated race pass)
//  5. go test ./... (full suite)
//  6. a chaos smoke run: `ligerbench -exp chaos -quick` at a small
//     batch count, proving the fault scenarios execute end to end
//  7. a failover race pass: the permanent-device-failure paths across
//     gpusim, runtimes, liger, and serve under -race
//  8. a failover smoke + determinism check: `ligerbench -exp failover
//     -quick` at -parallel 1 and -parallel 4 must produce identical
//     BENCH_failover.json bytes
package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"
)

type step struct {
	name string
	args []string
}

func main() {
	steps := []step{
		{"go vet", []string{"go", "vet", "./..."}},
		{"go build", []string{"go", "build", "./..."}},
		{"race (runner, simclock, faults, serve)", []string{"go", "test", "-race",
			"./internal/runner", "./internal/simclock", "./internal/faults", "./internal/serve"}},
		{"go test", []string{"go", "test", "./..."}},
		{"chaos smoke", []string{"go", "run", "./cmd/ligerbench",
			"-exp", "chaos", "-quick", "-batches", "25", "-seed", "5"}},
		{"failover race", []string{"go", "test", "-race",
			"-run", "Failover|FailDevice|Drain|Backoff|Quiesce",
			"./internal/gpusim", "./internal/runtimes", "./internal/liger", "./internal/serve"}},
	}
	if err := gofmtCheck(); err != nil {
		fmt.Fprintf(os.Stderr, "FAIL gofmt: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("ok   gofmt")
	for _, s := range steps {
		start := time.Now()
		cmd := exec.Command(s.args[0], s.args[1:]...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", s.name, err)
			os.Exit(1)
		}
		fmt.Printf("ok   %s (%v)\n", s.name, time.Since(start).Round(time.Millisecond))
	}
	start := time.Now()
	if err := failoverDeterminism(); err != nil {
		fmt.Fprintf(os.Stderr, "FAIL failover smoke: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("ok   failover smoke (%v)\n", time.Since(start).Round(time.Millisecond))
	fmt.Println("all checks passed")
}

// failoverDeterminism runs the failover sweep at two worker counts and
// fails unless both produce byte-identical BENCH_failover.json — the
// sweep's output must be a pure function of the seed, never of the
// parallel schedule.
func failoverDeterminism() error {
	tmp, err := os.MkdirTemp("", "ci-failover-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	var artifacts [][]byte
	for _, workers := range []string{"1", "4"} {
		dir := filepath.Join(tmp, "p"+workers)
		cmd := exec.Command("go", "run", "./cmd/ligerbench",
			"-exp", "failover", "-quick", "-batches", "25", "-seed", "5",
			"-parallel", workers, "-json", dir)
		cmd.Stderr = os.Stderr
		if out, err := cmd.Output(); err != nil {
			return fmt.Errorf("-parallel %s: %v\n%s", workers, err, out)
		}
		buf, err := os.ReadFile(filepath.Join(dir, "BENCH_failover.json"))
		if err != nil {
			return err
		}
		artifacts = append(artifacts, buf)
	}
	if !bytes.Equal(artifacts[0], artifacts[1]) {
		return fmt.Errorf("BENCH_failover.json differs between -parallel 1 and -parallel 4")
	}
	return nil
}

// gofmtCheck fails when any Go source file under the repo is not
// gofmt-formatted, listing the offenders.
func gofmtCheck() error {
	out, err := exec.Command("gofmt", "-l", ".").CombinedOutput()
	if err != nil {
		return fmt.Errorf("%v: %s", err, out)
	}
	if files := strings.TrimSpace(string(out)); files != "" {
		return fmt.Errorf("files need gofmt:\n%s", files)
	}
	return nil
}
