# Standard developer entry points. `make check` is the gate every
# change must pass; `go run ./tools/ci` runs the same sequence on
# hosts without make.

GO ?= go

.PHONY: check build test race vet fmt bench chaos failover fleet serving serving-trace trace analyze descore scenarios stress

check: ## full gate: gofmt + vet + build + race pass + full tests
	$(GO) run ./tools/ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-bearing packages (parallel sweep executor, event
# engine) plus the fault-injection, deadline/retry, serving-telemetry,
# and observability layers get a dedicated -race pass.
race:
	$(GO) test -race ./internal/runner ./internal/simclock ./internal/faults ./internal/serve ./internal/cluster ./internal/trace ./internal/metrics ./internal/analyze ./internal/kvcache ./internal/generate

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/simclock ./internal/gpusim ./internal/bench

# Full-fidelity chaos sweep: every fault scenario x runtime under the
# deadline/retry policy (seeded, byte-reproducible).
chaos:
	$(GO) run ./cmd/ligerbench -exp chaos

# Full-fidelity elastic-failover sweep: fail each device at several
# instants x runtime; regenerates BENCH_failover.json at the repo root.
failover:
	$(GO) run ./cmd/ligerbench -exp failover -json .

# Full-fidelity fleet-failover sweep: replicas x node-loss instant x
# runtime behind the health-aware router; regenerates BENCH_fleet.json
# at the repo root. See docs/FLEET.md.
fleet:
	$(GO) run ./cmd/ligerbench -exp fleet -json .

# Full-fidelity continuous-serving sweep: arrival rate x decode-pool
# size x runtime with iteration-level batching over the paged KV
# allocator; regenerates BENCH_serving.json and the serving-analysis
# aggregate BENCH_serving_analysis.json at the repo root. See
# docs/SERVING.md.
serving:
	$(GO) run ./cmd/ligerbench -exp serving -json .

# Traced serving demo: one fully traced serving point per runtime —
# iteration lanes, KV-pressure counters, lifecycle instants as Chrome
# traces (open in Perfetto) plus serving metrics snapshots and
# TTFT/TPOT decompositions under ./traces. See docs/OBSERVABILITY.md.
serving-trace:
	$(GO) run ./cmd/ligerbench -exp serving -quick -batches 50 -trace-dir traces

# Traced failover demo: one fully traced failure point per runtime,
# written as Chrome traces (open in Perfetto) plus metrics snapshots
# and trace analyses under ./traces. See docs/OBSERVABILITY.md.
trace:
	$(GO) run ./cmd/ligerbench -exp failover -quick -batches 50 -trace-dir traces

# Trace-analysis demo: critical path, idle-gap attribution, overlap
# efficiency and an annotated timeline for a saturated Liger run.
analyze:
	$(GO) run ./cmd/ligersim -runtime Liger -batches 40 -rate 20 -explain

# Robustness acceptance suite: run every scenario in the corpus and
# fail if any assertion fails. See docs/SCENARIOS.md.
scenarios:
	$(GO) run ./cmd/ligersim run scenarios/*.yaml

# Randomized fleet stress harness: 25 seeded scenario instances across
# all runtimes with an aggregate survival report (reproducible: the
# same -n/-seed always prints identical bytes).
stress:
	$(GO) run ./cmd/ligersim stress -n 25 -seed 42

# DES-core throughput measurement: re-measures the frozen pre-rewrite
# heap engine (internal/simclock/refheap) against the calendar queue on
# this host and regenerates BENCH_descore.json at the repo root,
# including the fig10 -quick wall-clock section. See docs/PERF.md.
descore:
	$(GO) run ./tools/descore -wall -o BENCH_descore.json
