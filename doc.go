// Package liger is a full reproduction of "Liger: Interleaving Intra-
// and Inter-Operator Parallelism for Distributed Large Model Inference"
// (PPoPP 2024) in pure Go.
//
// Because this environment has no GPUs, the hardware layers are
// substituted by a deterministic discrete-event simulator of a
// multi-GPU node (internal/gpusim) with calibrated kernel cost models
// (internal/costmodel, internal/nccl). The paper's contribution — the
// interleaved-parallelism runtime with its multi-stream scheduler,
// hybrid synchronization, contention factors and runtime kernel
// decomposition — is implemented in full in internal/liger, alongside
// the three baselines (internal/runtimes) and a serving layer
// (internal/serve).
//
// Entry points:
//
//   - internal/core: the public Engine façade
//   - cmd/ligersim: run a single serving simulation
//   - cmd/ligerbench: regenerate every paper table and figure
//   - examples/: runnable walkthroughs
//
// The benchmarks in bench_test.go regenerate each figure via
// `go test -bench=.`; see DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
package liger
