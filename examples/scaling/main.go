// Strong scaling (§4.4): serve OPT-30B on 1, 2 and 4 A100 GPUs with
// Liger and the Intra-Op baseline. Liger's advantage grows with the
// device count because the communication ratio grows — and with one
// device the interleaved parallelism degenerates to plain single-GPU
// execution.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"liger/internal/core"
	"liger/internal/hw"
	"liger/internal/model"
	"liger/internal/serve"
)

func main() {
	log.SetFlags(0)
	spec := model.OPT30B()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "GPUs\truntime\tavg latency\tthroughput (batch/s)")
	for _, gpus := range []int{1, 2, 4} {
		node := hw.A100Node()
		if gpus != node.NumGPUs {
			node = node.WithGPUs(gpus)
		}
		for _, kind := range []core.RuntimeKind{core.KindLiger, core.KindIntraOp} {
			eng, err := core.NewEngine(core.Options{Node: node, Model: spec, Runtime: kind})
			if err != nil {
				log.Fatal(err)
			}
			trace, err := serve.Generate(serve.TraceConfig{
				Batches:    150,
				BatchSize:  2,
				RatePerSec: 30,
				MinSeq:     16,
				MaxSeq:     128,
				Seed:       3,
			})
			if err != nil {
				log.Fatal(err)
			}
			res, err := eng.Serve(trace)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(tw, "%d\t%s\t%v\t%.2f\n", gpus, res.Runtime, res.AvgLatency, res.ThroughputBatches())
		}
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
}
