// Frontend: request-level serving through the batching frontend. Unlike
// the other examples (which submit pre-formed batches), requests arrive
// one at a time and the frontend packs them — up to 4 per batch, waiting
// at most 10 ms — so the reported latency is the full user-visible path:
// batching delay + pending + execution.
//
//	go run ./examples/frontend
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"liger/internal/core"
	"liger/internal/hw"
	"liger/internal/model"
	"liger/internal/serve"
)

func main() {
	log.SetFlags(0)
	node := hw.A100Node()
	spec := model.OPT30B()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "runtime\tavg req latency\tp99\tbatching delay\tbatches")
	for _, kind := range []core.RuntimeKind{core.KindLiger, core.KindIntraOp, core.KindInterOp} {
		eng, err := core.NewEngine(core.Options{Node: node, Model: spec, Runtime: kind})
		if err != nil {
			log.Fatal(err)
		}
		reqs, err := serve.GenerateRequests(serve.RequestTraceConfig{
			Requests:   600,
			RatePerSec: 32, // individual requests; ~12 batches/s after packing
			MinSeq:     16,
			MaxSeq:     128,
			Process:    serve.Poisson,
			Seed:       11,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := serve.RunRequests(eng.Clock(), eng.Runtime(), reqs, 4, 40*time.Millisecond)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%v\t%v\t%v\t%d\n",
			res.Runtime, res.AvgLatency.Round(time.Microsecond), res.P99.Round(time.Microsecond),
			res.AvgBatchingDelay.Round(time.Microsecond), res.Batches)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
}
