// Generative serving (§4.3): the incremental sampling phase generates
// one token per request per iteration against a KV cache. This example
// compares all four runtimes on the paper's decode workload (batch 32,
// starting sequence length 16) on the A100/PCIe node.
//
//	go run ./examples/generative
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"liger/internal/core"
	"liger/internal/hw"
	"liger/internal/model"
	"liger/internal/serve"
)

func main() {
	log.SetFlags(0)
	node := hw.A100Node()
	spec := model.OPT30B()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "runtime\tavg latency\tp99\tthroughput (iters/s)")
	for _, kind := range core.Kinds() {
		eng, err := core.NewEngine(core.Options{Node: node, Model: spec, Runtime: kind})
		if err != nil {
			log.Fatal(err)
		}
		trace, err := serve.Generate(serve.TraceConfig{
			Batches:    200,
			BatchSize:  32,
			RatePerSec: 55,
			Phase:      model.Decode,
			CtxLen:     16,
			Seed:       7,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.Serve(trace)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%v\t%v\t%.2f\n", res.Runtime, res.AvgLatency, res.P99, res.ThroughputBatches())
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nDecode is memory-bound with relatively less communication, so the")
	fmt.Println("interleaving gain is weaker than on general tasks — the paper's Fig. 11.")
}
