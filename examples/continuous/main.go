// Continuous batching: Orca-style iteration-level scheduling over the
// decode phase — every iteration runs the current pool of live
// sequences, admitting arrivals between iterations. Compared against
// per-conversation static batches at the same offered load: pooling
// amortizes each decode step over more sequences (better time-per-token
// and total time) at the cost of time-to-first-token.
//
//	go run ./examples/continuous
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"liger/internal/core"
	"liger/internal/generate"
	"liger/internal/hw"
	"liger/internal/model"
)

func main() {
	log.SetFlags(0)
	node := hw.A100Node()
	spec := model.OPT30B()
	const (
		sequences = 48
		rate      = 120.0 // sequences per second
		prompt    = 48
		tokens    = 24
	)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheduling\truntime\tTTFT avg\ttime/token avg\ttotal avg\tmean pool")

	for _, kind := range []core.RuntimeKind{core.KindLiger, core.KindIntraOp} {
		eng, err := core.NewEngine(core.Options{Node: node, Model: spec, Runtime: kind})
		if err != nil {
			log.Fatal(err)
		}
		cont, err := generate.RunContinuous(eng.Clock(), eng.Runtime(), generate.ContinuousConfig{
			Sequences: sequences, RatePerSec: rate,
			PromptLen: prompt, GenTokens: tokens, MaxPool: 16, Seed: 9,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "continuous\t%s\t%v\t%v\t%v\t%.1f\n", kind,
			cont.AvgTTFT().Round(time.Microsecond), cont.AvgTPOT().Round(time.Microsecond),
			cont.AvgTotal().Round(time.Millisecond), cont.MeanPool)

		eng2, err := core.NewEngine(core.Options{Node: node, Model: spec, Runtime: kind})
		if err != nil {
			log.Fatal(err)
		}
		static, err := generate.Run(eng2.Clock(), eng2.Runtime(), generate.Config{
			Conversations: sequences / 4, BatchSize: 4,
			PromptLen: prompt, GenTokens: tokens,
			ArrivalGap: time.Second * 4 / time.Duration(rate),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "static\t%s\t%v\t%v\t%v\t\n", kind,
			static.AvgTTFT().Round(time.Microsecond), static.AvgTPOT().Round(time.Microsecond),
			static.AvgTotal().Round(time.Millisecond))
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nLiger composes with either batching policy; with static batches it interleaves")
	fmt.Println("different conversations' iterations, recovering much of the pooled efficiency.")
}
