// Chatbot: the full generative lifecycle the paper's introduction
// motivates, driven by the generate package. Each conversation is a
// batch of requests that first runs the initial conditioning (prefill)
// phase over its prompt, then generates tokens one at a time against a
// growing KV cache (§4.3), with KV-cache admission control. Decode
// iterations are submitted dynamically, so Liger interleaves steps of
// different conversations.
//
// Reports time-to-first-token and time-per-output-token for Liger
// versus the Intra-Op baseline.
//
//	go run ./examples/chatbot
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"liger/internal/core"
	"liger/internal/generate"
	"liger/internal/hw"
	"liger/internal/kvcache"
	"liger/internal/model"
	"liger/internal/stats"
)

func main() {
	log.SetFlags(0)
	node := hw.A100Node()
	spec := model.OPT30B()
	cfg := generate.Config{
		Conversations: 24,
		BatchSize:     4,
		PromptLen:     64,
		GenTokens:     32,
		ArrivalGap:    30 * time.Millisecond,
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "runtime\tTTFT avg\tTTFT p95\ttime/token avg\ttotal avg\tqueued for KV")
	for _, kind := range []core.RuntimeKind{core.KindLiger, core.KindIntraOp} {
		eng, err := core.NewEngine(core.Options{Node: node, Model: spec, Runtime: kind})
		if err != nil {
			log.Fatal(err)
		}
		kv, err := kvcache.New(node, spec, cfg.BatchSize, cfg.PromptLen)
		if err != nil {
			log.Fatal(err)
		}
		run := cfg
		run.KV = kv
		res, err := generate.Run(eng.Clock(), eng.Runtime(), run)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%v\t%v\t%v\t%v\t%d\n",
			kind,
			res.AvgTTFT().Round(time.Microsecond),
			stats.Percentile(res.TTFT, 95).Round(time.Microsecond),
			res.AvgTPOT().Round(time.Microsecond),
			res.AvgTotal().Round(time.Millisecond),
			res.QueuedForKV)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d conversations x %d requests, %d-token prompts, %d generated tokens each\n",
		cfg.Conversations, cfg.BatchSize, cfg.PromptLen, cfg.GenTokens)
}
