// Quickstart: serve OPT-30B on a simulated 4xV100 node with the Liger
// runtime and print the paper's two metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"liger/internal/core"
	"liger/internal/hw"
	"liger/internal/model"
	"liger/internal/serve"
)

func main() {
	log.SetFlags(0)

	// 1. Pick a testbed and a model (Table 1).
	node := hw.V100Node()
	spec := model.OPT30B()

	// 2. Build the engine with the interleaved-parallelism runtime.
	eng, err := core.NewEngine(core.Options{
		Node:    node,
		Model:   spec,
		Runtime: core.KindLiger,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Generate the paper's workload: batches of 2 requests with
	// sequence lengths 16-128 arriving at a constant rate.
	trace, err := serve.Generate(serve.TraceConfig{
		Batches:    200,
		BatchSize:  2,
		RatePerSec: 15,
		MinSeq:     16,
		MaxSeq:     128,
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Serve and report.
	res, err := eng.Serve(trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("served %d batches of %s on %s with %s\n",
		res.Completed, spec.Name, node.Name, res.Runtime)
	fmt.Printf("average latency : %v (pending + execution)\n", res.AvgLatency)
	fmt.Printf("p99 latency     : %v\n", res.P99)
	fmt.Printf("throughput      : %.2f requests/s\n", res.ThroughputRequests())

	for i, st := range eng.SimNode().Stats() {
		fmt.Printf("gpu%d: compute busy %v, comm busy %v, compute/comm overlap %v\n",
			i, st.ComputeBusy, st.CommBusy, st.OverlapBusy)
	}
}
