// Tracing: record every simulated kernel during an interleaved serving
// run, quantify the compute/communication overlap Liger creates on each
// device, and export a Chrome trace (open in chrome://tracing or
// https://ui.perfetto.dev) that visualizes the Fig. 6 interleaving.
//
//	go run ./examples/tracing
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"liger/internal/core"
	"liger/internal/hw"
	"liger/internal/model"
	"liger/internal/serve"
	"liger/internal/simclock"
	"liger/internal/trace"
)

func main() {
	log.SetFlags(0)
	node := hw.A100Node()
	spec := model.OPT30B().WithLayers(8) // short run, readable trace

	rec := trace.NewRecorder()
	eng, err := core.NewEngine(core.Options{
		Node:    node,
		Model:   spec,
		Runtime: core.KindLiger,
		Tracer:  rec,
	})
	if err != nil {
		log.Fatal(err)
	}
	tr, err := serve.Generate(serve.TraceConfig{
		Batches:    12,
		BatchSize:  2,
		RatePerSec: 200, // dense arrivals so batches interleave
		MinSeq:     32,
		MaxSeq:     96,
		Seed:       5,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Serve(tr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("served %d batches, avg latency %v\n", res.Completed, res.AvgLatency)
	for d := 0; d < node.NumGPUs; d++ {
		fmt.Printf("gpu%d compute/comm overlap: %v\n", d, rec.OverlapTime(d))
	}

	// ASCII view of the interleaving (the Fig. 6 picture): '#' compute,
	// '=' communication. A 3 ms window in the middle of the run shows the
	// alternation; the full-run view shows both lanes kept busy.
	fmt.Println()
	mid := simclock.Time(res.Makespan / 2)
	if err := trace.NewTimeline(rec, 100).Render(os.Stdout, mid, mid+simclock.Time(3*time.Millisecond)); err != nil {
		log.Fatal(err)
	}

	const out = "liger_trace.json"
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	if err := rec.WriteChromeTrace(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d kernel spans) — open in chrome://tracing\n", out, len(rec.Spans()))
}
