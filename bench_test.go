package liger_test

// One benchmark per paper table/figure: each regenerates its
// table/figure (quick fidelity) through the same code paths as
// cmd/ligerbench, so `go test -bench=.` exercises the full evaluation
// pipeline. Custom metrics surface the headline numbers: Liger's
// saturated-throughput gain over Intra-Op and its latency reduction
// against the pipeline baselines.

import (
	"io"
	"testing"
	"time"

	"liger/internal/bench"
	"liger/internal/core"
	"liger/internal/hw"
	"liger/internal/liger"
	"liger/internal/model"
	"liger/internal/serve"
)

// quickCfg keeps per-iteration work small enough for testing.B.
func quickCfg() bench.RunConfig {
	return bench.RunConfig{Batches: 60, Quick: true, Seed: 1}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := quickCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B)     { runExperiment(b, "table1") }
func BenchmarkFig03(b *testing.B)      { runExperiment(b, "fig3") }
func BenchmarkFig04(b *testing.B)      { runExperiment(b, "fig4") }
func BenchmarkFig09(b *testing.B)      { runExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)      { runExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)      { runExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)      { runExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)      { runExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)      { runExperiment(b, "fig14") }
func BenchmarkContention(b *testing.B) { runExperiment(b, "contention") }
func BenchmarkChannels(b *testing.B)   { runExperiment(b, "channels") }

// serveOnce runs one serving point and returns the result.
func serveOnce(b *testing.B, node hw.Node, spec model.Spec, kind core.RuntimeKind, rate float64, batches int) serve.Result {
	b.Helper()
	eng, err := core.NewEngine(core.Options{Node: node, Model: spec, Runtime: kind})
	if err != nil {
		b.Fatal(err)
	}
	trace, err := serve.Generate(serve.TraceConfig{
		Batches: batches, BatchSize: 2, RatePerSec: rate,
		MinSeq: 16, MaxSeq: 128, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	res, err := eng.Serve(trace)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkHeadlineV100 reports the paper's headline comparison on the
// V100 node as custom metrics (liger-vs-intra throughput ratio and
// liger-vs-inter latency ratio).
func BenchmarkHeadlineV100(b *testing.B) {
	node := hw.V100Node()
	spec := model.OPT30B()
	var thrGain, latRatio float64
	for i := 0; i < b.N; i++ {
		ligerSat := serveOnce(b, node, spec, core.KindLiger, 30, 80)
		intraSat := serveOnce(b, node, spec, core.KindIntraOp, 30, 80)
		ligerLat := serveOnce(b, node, spec, core.KindLiger, 12, 80)
		interLat := serveOnce(b, node, spec, core.KindInterOp, 12, 80)
		thrGain = ligerSat.ThroughputBatches() / intraSat.ThroughputBatches()
		latRatio = float64(ligerLat.AvgLatency) / float64(interLat.AvgLatency)
	}
	b.ReportMetric(thrGain, "thrX-vs-intra")
	b.ReportMetric(latRatio, "latFrac-vs-inter")
}

// BenchmarkHeadlineA100 is the A100/PCIe headline comparison.
func BenchmarkHeadlineA100(b *testing.B) {
	node := hw.A100Node()
	spec := model.OPT30B()
	var thrGain float64
	for i := 0; i < b.N; i++ {
		ligerSat := serveOnce(b, node, spec, core.KindLiger, 45, 80)
		intraSat := serveOnce(b, node, spec, core.KindIntraOp, 45, 80)
		thrGain = ligerSat.ThroughputBatches() / intraSat.ThroughputBatches()
	}
	b.ReportMetric(thrGain, "thrX-vs-intra")
}

// BenchmarkSchedulerRound measures the cost of one scheduling round on
// the simulated node (scheduler overhead, not modeled GPU time).
func BenchmarkSchedulerRound(b *testing.B) {
	node := hw.V100Node()
	spec := model.Tiny()
	eng, err := core.NewEngine(core.Options{Node: node, Model: spec, Runtime: core.KindLiger,
		Liger: liger.DefaultConfig("v100"), LigerSet: true})
	if err != nil {
		b.Fatal(err)
	}
	trace := make([]serve.Arrival, b.N)
	gap := time.Duration(50 * time.Microsecond)
	for i := range trace {
		trace[i] = serve.Arrival{
			At:       time.Duration(i) * gap,
			Workload: model.Workload{Batch: 2, SeqLen: 16, Phase: model.Context},
		}
	}
	b.ResetTimer()
	if _, err := eng.Serve(trace); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkFig06(b *testing.B)         { runExperiment(b, "fig6") }
func BenchmarkSplitStrategy(b *testing.B) { runExperiment(b, "splitstrategy") }
func BenchmarkRobustness(b *testing.B)    { runExperiment(b, "robustness") }
func BenchmarkAdaptive(b *testing.B)      { runExperiment(b, "adaptive") }
func BenchmarkStraggler(b *testing.B)     { runExperiment(b, "straggler") }
