module liger

go 1.22
