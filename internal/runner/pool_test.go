package runner

import (
	"sync/atomic"
	"testing"
)

// TestPoolRunsEveryJobExactlyOnce drives many rounds of varying size
// through one pool and checks the job set is exact each time.
func TestPoolRunsEveryJobExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := NewPool(workers)
		for round := 0; round < 50; round++ {
			n := 1 + round%17
			counts := make([]atomic.Int64, n)
			p.Run(n, func(i int) { counts[i].Add(1) })
			for i := range counts {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("workers=%d round=%d job %d ran %d times", workers, round, i, c)
				}
			}
		}
		p.Close()
	}
}

// TestPoolSerialOrder pins the serial pool's contract: jobs run in index
// order on the calling goroutine.
func TestPoolSerialOrder(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	var got []int
	p.Run(10, func(i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("serial pool ran jobs out of order: %v", got)
		}
	}
}

// TestPoolZeroJobs: an empty round returns immediately.
func TestPoolZeroJobs(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	p.Run(0, func(i int) { t.Fatal("job ran for n=0") })
}
