package runner_test

import (
	"reflect"
	"testing"

	"liger/internal/core"
	"liger/internal/hw"
	"liger/internal/model"
	"liger/internal/runner"
	"liger/internal/serve"
)

// sweepOutcome captures everything a simulation run can leak through:
// the served metrics and the exact number of discrete events fired.
type sweepOutcome struct {
	res   serve.Result
	fired uint64
}

// runOnce builds a fresh engine + trace for one (runtime, rate) point
// and serves it. This is the executor's unit of work; it must be a pure
// function of its arguments.
func runOnce(t *testing.T, kind core.RuntimeKind, rate float64) sweepOutcome {
	t.Helper()
	eng, err := core.NewEngine(core.Options{
		Node:    hw.V100Node(),
		Model:   model.OPT30B(),
		Runtime: kind,
	})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := serve.Generate(serve.TraceConfig{
		Batches: 20, BatchSize: 2, RatePerSec: rate,
		MinSeq: 16, MaxSeq: 128, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Serve(trace)
	if err != nil {
		t.Fatal(err)
	}
	return sweepOutcome{res: res, fired: eng.Clock().Fired()}
}

// TestConcurrentSweepsIdentical is the engine-isolation contract test:
// many simulations running concurrently (several full sweeps at once,
// under -race in CI) must produce results identical to the serial
// reference — metric for metric, and event count for event count. Any
// package-level mutable state shared between engines (a costmodel
// cache, a profiler table, an RNG) shows up here as a race report or a
// diverging result.
func TestConcurrentSweepsIdentical(t *testing.T) {
	kinds := core.Kinds()
	rates := []float64{2, 4, 8}

	type job struct {
		kind core.RuntimeKind
		rate float64
	}
	var jobs []job
	for _, k := range kinds {
		for _, r := range rates {
			jobs = append(jobs, job{k, r})
		}
	}

	// Serial reference.
	want := make([]sweepOutcome, len(jobs))
	for i, j := range jobs {
		want[i] = runOnce(t, j.kind, j.rate)
	}

	// Two full sweeps concurrently: every job of both sweeps in flight
	// together on 8 workers.
	const sweeps = 2
	got, err := runner.Map(8, sweeps*len(jobs), func(i int) (sweepOutcome, error) {
		j := jobs[i%len(jobs)]
		return runOnce(t, j.kind, j.rate), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range got {
		j := jobs[i%len(jobs)]
		w := want[i%len(jobs)]
		if g.fired != w.fired {
			t.Errorf("%s @ %.0f: fired %d events concurrently, %d serially",
				j.kind, j.rate, g.fired, w.fired)
		}
		if !reflect.DeepEqual(g.res, w.res) {
			t.Errorf("%s @ %.0f: concurrent result diverged from serial:\n got %+v\nwant %+v",
				j.kind, j.rate, g.res, w.res)
		}
	}
}
