package runner

import (
	"sync"
	"sync/atomic"
)

// Pool is a persistent worker pool for repeated barrier-synchronized
// rounds. Map spawns goroutines per call, which is fine for sweeps where
// each job runs a whole simulation; the lookahead-sharded engine instead
// fires thousands of short rounds (one per conservative window) per run,
// where per-round goroutine creation would dominate. A Pool keeps its
// workers parked between rounds.
//
// Like Map, a round hands out job indices through an atomic counter, so
// the assignment of jobs to workers is racy but the set of jobs executed
// is exact; callers must make jobs independent and collect results by
// index.
type Pool struct {
	cmds []chan *round
	wg   sync.WaitGroup
}

// round is one barrier-synchronized batch of n jobs.
type round struct {
	n    int
	fn   func(i int)
	next atomic.Int64
	done sync.WaitGroup // one count per participating worker
}

// NewPool starts a pool with the given number of workers. workers <= 1
// returns a serial pool that runs every round on the calling goroutine.
func NewPool(workers int) *Pool {
	if workers <= 1 {
		return &Pool{}
	}
	p := &Pool{cmds: make([]chan *round, workers)}
	p.wg.Add(workers)
	for w := range p.cmds {
		ch := make(chan *round, 1)
		p.cmds[w] = ch
		go func() {
			defer p.wg.Done()
			for r := range ch {
				for {
					i := int(r.next.Add(1))
					if i >= r.n {
						break
					}
					r.fn(i)
				}
				r.done.Done()
			}
		}()
	}
	return p
}

// Workers returns the number of worker goroutines (1 for a serial pool).
func (p *Pool) Workers() int {
	if len(p.cmds) == 0 {
		return 1
	}
	return len(p.cmds)
}

// Run executes fn(i) for every i in [0, n) and blocks until all jobs
// finish. On a serial pool jobs run in index order on the caller.
func (p *Pool) Run(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if len(p.cmds) == 0 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	r := &round{n: n, fn: fn}
	r.next.Store(-1)
	r.done.Add(len(p.cmds))
	for _, ch := range p.cmds {
		ch <- r
	}
	r.done.Wait()
}

// Close stops the workers. Run must not be called after Close. Close on
// a serial pool is a no-op.
func (p *Pool) Close() {
	for _, ch := range p.cmds {
		close(ch)
	}
	p.wg.Wait()
	p.cmds = nil
}
