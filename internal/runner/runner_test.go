package runner

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16} {
		got, err := Map(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: %d results, want 100", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map[int](4, 0, func(int) (int, error) { t.Fatal("job ran"); return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("Map(_, 0) = %v, %v; want nil, nil", got, err)
	}
}

func TestMapRunsEveryJobOnce(t *testing.T) {
	var ran [257]atomic.Int32
	_, err := Map(7, len(ran), func(i int) (struct{}, error) {
		ran[i].Add(1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ran {
		if n := ran[i].Load(); n != 1 {
			t.Fatalf("job %d ran %d times", i, n)
		}
	}
}

func TestMapSurfacesLowestIndexError(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 8} {
		_, err := Map(workers, 50, func(i int) (int, error) {
			if i == 13 || i == 31 {
				return 0, sentinel
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: no error surfaced", workers)
		}
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: error %v does not wrap sentinel", workers, err)
		}
		if !strings.Contains(err.Error(), "job 13") {
			t.Fatalf("workers=%d: error %q does not name the lowest failing index", workers, err)
		}
	}
}

func TestMapSerialStopsAtFirstError(t *testing.T) {
	var calls int
	_, err := Map(1, 10, func(i int) (int, error) {
		calls++
		if i == 3 {
			return 0, errors.New("stop")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("no error")
	}
	if calls != 4 {
		t.Fatalf("serial path ran %d jobs after an error, want 4", calls)
	}
}
