// Package runner is the parallel sweep executor: it fans independent
// simulation jobs across a bounded pool of goroutines and collects
// results by stable job index, so a parallel sweep produces output
// byte-identical to the serial run.
//
// The executor relies on the engine-isolation property of the simulator
// stack: a core.Engine (and everything under it — simclock, gpusim,
// costmodel, trace generation) shares no mutable state with other
// instances, so one engine per goroutine needs no locking. Package-level
// state anywhere below core must stay immutable after init; the race
// test in this package enforces the contract.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the worker count used when the caller asks for "all
// cores": the process's GOMAXPROCS at call time.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Map runs fn(i) for every i in [0, n) and returns the results in index
// order. workers bounds the number of concurrent jobs; values <= 1 run
// every job serially on the calling goroutine, in index order — the
// reference behaviour parallel runs must reproduce.
//
// The returned error is the failure with the smallest job index
// (wrapped with that index), so error reporting is as deterministic as
// the results: the serial path stops at the first failure, the parallel
// path lets started jobs run to completion and then reports the
// lowest-index one — identical under the executor's contract that jobs
// are independent. fn must be safe for concurrent invocation when
// workers > 1: jobs must not share mutable state.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, fmt.Errorf("runner: job %d: %w", i, err)
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("runner: job %d: %w", i, err)
		}
	}
	return out, nil
}
