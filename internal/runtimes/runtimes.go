// Package runtimes provides the execution engines the paper compares
// (§4.1): the intra-operator baseline (Megatron-style tensor
// parallelism), the inter-operator baseline (GPipe-style pipeline), the
// theoretical inter-operator variant, and an adapter exposing the Liger
// scheduler behind the same interface. The serving layer drives any of
// them interchangeably.
package runtimes

import (
	"time"

	"liger/internal/model"
	"liger/internal/simclock"
)

// Completion reports one finished batch. Failed marks a batch whose
// execution was torn down by fault injection (a collective of the batch
// hit the watchdog and aborted): its kernels completed in the CUDA
// sense but the result is garbage, and the serving layer decides
// whether to retry.
type Completion struct {
	ID        int
	Workload  model.Workload
	Submitted simclock.Time
	Done      simclock.Time
	Failed    bool
	// Req is the serving-layer request id the batch was submitted under
	// (SubmitReq), or -1 for untagged Submit calls.
	Req int
}

// Latency is the batch's pending + execution time (the paper's latency
// metric).
func (c Completion) Latency() simclock.Time { return c.Done - c.Submitted }

// Runtime executes batched inferences on a simulated node. Submit must
// be called from inside the simulation (an engine callback): the batch
// arrives at the current virtual time.
type Runtime interface {
	Name() string
	Submit(w model.Workload) error
	SetOnDone(func(Completion))
}

// Tagged is implemented by runtimes whose submissions carry a
// serving-layer request id down to kernel launches, so traces and
// metrics can decompose per-request latency. Submit(w) is equivalent
// to SubmitReq(w, -1).
type Tagged interface {
	SubmitReq(w model.Workload, req int) error
}

// Elastic is implemented by runtimes that survive permanent device
// failure by re-planning onto the survivors. The serving layer uses it
// for recovery-aware overload protection: while Reconfiguring reports
// true, arrivals are deferred and retries suppressed so the retry
// budget is spent against the new world, not the dead one.
type Elastic interface {
	// Reconfiguring reports whether a failover is in progress (failure
	// detected, old epoch draining or the new plan not yet live).
	Reconfiguring() bool
	// OnReconfigured registers a callback fired at the sim instant a
	// reconfiguration completes and the runtime serves again.
	OnReconfigured(fn func(now simclock.Time))
	// FailoverStats reports completed device-failure recoveries and the
	// total sim time spent reconfiguring (time-to-recover, summed).
	FailoverStats() (failovers int, downtime time.Duration)
}
