// Package runtimes provides the execution engines the paper compares
// (§4.1): the intra-operator baseline (Megatron-style tensor
// parallelism), the inter-operator baseline (GPipe-style pipeline), the
// theoretical inter-operator variant, and an adapter exposing the Liger
// scheduler behind the same interface. The serving layer drives any of
// them interchangeably.
package runtimes

import (
	"liger/internal/model"
	"liger/internal/simclock"
)

// Completion reports one finished batch. Failed marks a batch whose
// execution was torn down by fault injection (a collective of the batch
// hit the watchdog and aborted): its kernels completed in the CUDA
// sense but the result is garbage, and the serving layer decides
// whether to retry.
type Completion struct {
	ID        int
	Workload  model.Workload
	Submitted simclock.Time
	Done      simclock.Time
	Failed    bool
}

// Latency is the batch's pending + execution time (the paper's latency
// metric).
func (c Completion) Latency() simclock.Time { return c.Done - c.Submitted }

// Runtime executes batched inferences on a simulated node. Submit must
// be called from inside the simulation (an engine callback): the batch
// arrives at the current virtual time.
type Runtime interface {
	Name() string
	Submit(w model.Workload) error
	SetOnDone(func(Completion))
}
