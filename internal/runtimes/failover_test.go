package runtimes

import (
	"testing"
	"time"

	"liger/internal/gpusim"
	"liger/internal/hw"
	"liger/internal/model"
	"liger/internal/nccl"
	"liger/internal/parallel"
	"liger/internal/simclock"
)

// elasticRuntimes are the serving runtimes that reconfigure across a
// permanent device failure (Inter-Th shares InterOp's machinery).
var elasticRuntimes = []string{"Liger", "Intra-Op", "Inter-Op", "Inter-Th"}

// TestRuntimesSurvivePermanentDeviceFailure is the tentpole acceptance
// property: a device dies mid-trace and every runtime completes the
// remaining work on the survivors — every submission resolves exactly
// once, nothing hangs, the failed epoch is reported failed, and
// post-recovery submissions succeed on the 3-GPU world.
func TestRuntimesSurvivePermanentDeviceFailure(t *testing.T) {
	for _, name := range elasticRuntimes {
		t.Run(name, func(t *testing.T) {
			eng, node, comp := rig(t)
			rt := buildRuntime(t, name, node, comp, model.Tiny())
			el, ok := rt.(Elastic)
			if !ok {
				t.Fatalf("%s does not implement Elastic", name)
			}
			byID := map[int]Completion{}
			rt.SetOnDone(func(c Completion) {
				if _, dup := byID[c.ID]; dup {
					t.Errorf("batch %d completed twice", c.ID)
				}
				byID[c.ID] = c
			})
			const batches = 12
			for i := 0; i < batches; i++ {
				at := simclock.Time(i) * simclock.Time(150*time.Microsecond)
				eng.At(at, func(simclock.Time) {
					if err := rt.Submit(model.Workload{Batch: 2, SeqLen: 32, Phase: model.Context}); err != nil {
						t.Error(err)
					}
				})
			}
			eng.At(simclock.Time(400*time.Microsecond), func(simclock.Time) { node.FailDevice(1) })
			eng.Run()
			if len(byID) != batches {
				t.Fatalf("%d of %d submissions resolved — work lost or hung", len(byID), batches)
			}
			var failed, okAfter int
			for id := 0; id < batches; id++ {
				c, found := byID[id]
				if !found {
					t.Fatalf("batch %d never completed", id)
				}
				if c.Failed {
					failed++
				} else if c.Done > simclock.Time(400*time.Microsecond) {
					okAfter++
				}
			}
			if failed == 0 {
				t.Fatal("no batch failed at the failure instant — the epoch was not discarded")
			}
			if okAfter == 0 {
				t.Fatal("no batch succeeded after recovery — the runtime never resumed")
			}
			if el.Reconfiguring() {
				t.Fatal("still reconfiguring at end of run")
			}
			fo, down := el.FailoverStats()
			if fo != 1 {
				t.Fatalf("FailoverStats failovers = %d, want 1", fo)
			}
			if down <= 0 {
				t.Fatalf("FailoverStats downtime = %v, want positive (time-to-recover)", down)
			}
		})
	}
}

// TestFailoverReconfiguredCallbackFires checks the serve-facing
// contract: Reconfiguring() is true between the failure and the resume
// callback, and the callback fires exactly once per failover at a time
// after the failure.
func TestFailoverReconfiguredCallbackFires(t *testing.T) {
	for _, name := range elasticRuntimes {
		t.Run(name, func(t *testing.T) {
			eng, node, comp := rig(t)
			rt := buildRuntime(t, name, node, comp, model.Tiny())
			el := rt.(Elastic)
			rt.SetOnDone(func(Completion) {})
			var resumedAt []simclock.Time
			el.OnReconfigured(func(now simclock.Time) { resumedAt = append(resumedAt, now) })
			failAt := simclock.Time(200 * time.Microsecond)
			eng.At(0, func(simclock.Time) {
				if err := rt.Submit(model.Workload{Batch: 2, SeqLen: 32, Phase: model.Context}); err != nil {
					t.Error(err)
				}
			})
			eng.At(failAt, func(simclock.Time) {
				node.FailDevice(2)
				if !el.Reconfiguring() {
					t.Error("Reconfiguring() false at the failure instant")
				}
			})
			eng.Run()
			if len(resumedAt) != 1 {
				t.Fatalf("OnReconfigured fired %d times, want 1", len(resumedAt))
			}
			if resumedAt[0] <= failAt {
				t.Fatalf("resumed at %v, not after the failure at %v", resumedAt[0], failAt)
			}
		})
	}
}

// TestFailoverImpossibleWhenSurvivorsCannotHostModel drives the OOM
// path: OPT-30B shards at 15 GB/device over four V100-16GB, so three
// survivors would need 20 GB each — the re-shard must fail and every
// subsequent submission must fail fast instead of hanging.
func TestFailoverImpossibleWhenSurvivorsCannotHostModel(t *testing.T) {
	for _, name := range elasticRuntimes {
		t.Run(name, func(t *testing.T) {
			eng := simclock.New()
			node, err := gpusim.New(eng, hw.V100Node())
			if err != nil {
				t.Fatal(err)
			}
			comp := parallel.NewCompiler(hw.V100Node(), nccl.Config{ReducedChannels: true})
			rt := buildRuntime(t, name, node, comp, model.OPT30B())
			byID := map[int]Completion{}
			rt.SetOnDone(func(c Completion) {
				if _, dup := byID[c.ID]; dup {
					t.Errorf("batch %d completed twice", c.ID)
				}
				byID[c.ID] = c
			})
			eng.At(0, func(simclock.Time) {
				if err := rt.Submit(model.Workload{Batch: 1, SeqLen: 16, Phase: model.Context}); err != nil {
					t.Error(err)
				}
			})
			eng.At(simclock.Time(time.Millisecond), func(simclock.Time) { node.FailDevice(0) })
			// Submitted long after the failed re-shard: must fail fast.
			eng.At(simclock.Time(10*time.Second), func(simclock.Time) {
				if err := rt.Submit(model.Workload{Batch: 1, SeqLen: 16, Phase: model.Context}); err != nil {
					t.Error(err)
				}
			})
			eng.Run()
			if len(byID) != 2 {
				t.Fatalf("%d of 2 submissions resolved", len(byID))
			}
			for id, c := range byID {
				if !c.Failed {
					t.Errorf("batch %d succeeded on a world that cannot host the model", id)
				}
			}
			if c := byID[1]; time.Duration(c.Done) < 10*time.Second {
				t.Errorf("late submission completed at %v, before its own submit time", time.Duration(c.Done))
			} else if time.Duration(c.Done) > 10*time.Second+time.Millisecond {
				t.Errorf("late submission took %v to fail — not failing fast", time.Duration(c.Done)-10*time.Second)
			}
		})
	}
}
