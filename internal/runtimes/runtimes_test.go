package runtimes

import (
	"testing"
	"time"

	"liger/internal/gpusim"
	"liger/internal/hw"
	"liger/internal/liger"
	"liger/internal/model"
	"liger/internal/nccl"
	"liger/internal/parallel"
	"liger/internal/simclock"
)

func rig(t testing.TB) (*simclock.Engine, *gpusim.Node, *parallel.Compiler) {
	t.Helper()
	eng := simclock.New()
	node, err := gpusim.New(eng, hw.V100Node())
	if err != nil {
		t.Fatal(err)
	}
	return eng, node, parallel.NewCompiler(hw.V100Node(), nccl.Config{ReducedChannels: true})
}

func buildRuntime(t testing.TB, name string, node *gpusim.Node, comp *parallel.Compiler, spec model.Spec) Runtime {
	t.Helper()
	var rt Runtime
	var err error
	switch name {
	case "Liger":
		rt, err = NewLiger(node, comp, spec, liger.DefaultConfig("v100"))
	case "Intra-Op":
		rt, err = NewIntraOp(node, comp, spec)
	case "Inter-Op":
		rt, err = NewInterOp(node, comp, spec, false)
	case "Inter-Th":
		rt, err = NewInterOp(node, comp, spec, true)
	}
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

var allRuntimes = []string{"Liger", "Intra-Op", "Inter-Op", "Inter-Th"}

func TestAllRuntimesCompleteAllBatches(t *testing.T) {
	for _, name := range allRuntimes {
		t.Run(name, func(t *testing.T) {
			eng, node, comp := rig(t)
			rt := buildRuntime(t, name, node, comp, model.Tiny())
			if rt.Name() != name {
				t.Fatalf("Name = %q", rt.Name())
			}
			var done []Completion
			rt.SetOnDone(func(c Completion) { done = append(done, c) })
			for i := 0; i < 8; i++ {
				at := simclock.Time(i) * simclock.Time(100*time.Microsecond)
				eng.At(at, func(simclock.Time) {
					w := model.Workload{Batch: 2, SeqLen: 16 + 8*(i%4), Phase: model.Context}
					if err := rt.Submit(w); err != nil {
						t.Error(err)
					}
				})
			}
			eng.Run()
			if len(done) != 8 {
				t.Fatalf("%d of 8 completed", len(done))
			}
			for _, c := range done {
				if c.Done <= c.Submitted {
					t.Fatalf("batch %d finished at %v before submission %v", c.ID, c.Done, c.Submitted)
				}
			}
		})
	}
}

func TestCompletionOrderFIFOForUniformBatches(t *testing.T) {
	for _, name := range allRuntimes {
		t.Run(name, func(t *testing.T) {
			eng, node, comp := rig(t)
			rt := buildRuntime(t, name, node, comp, model.Tiny())
			var order []int
			rt.SetOnDone(func(c Completion) { order = append(order, c.ID) })
			eng.After(0, func(simclock.Time) {
				for i := 0; i < 6; i++ {
					if err := rt.Submit(model.Workload{Batch: 2, SeqLen: 32, Phase: model.Context}); err != nil {
						t.Error(err)
					}
				}
			})
			eng.Run()
			for i, id := range order {
				if id != i {
					t.Fatalf("completion order %v", order)
				}
			}
		})
	}
}

func TestIntraOpSerializesBatches(t *testing.T) {
	eng, node, comp := rig(t)
	rt := buildRuntime(t, "Intra-Op", node, comp, model.Tiny())
	var latencies []time.Duration
	rt.SetOnDone(func(c Completion) { latencies = append(latencies, time.Duration(c.Latency())) })
	eng.After(0, func(simclock.Time) {
		for i := 0; i < 4; i++ {
			if err := rt.Submit(model.Workload{Batch: 2, SeqLen: 32, Phase: model.Context}); err != nil {
				t.Error(err)
			}
		}
	})
	eng.Run()
	// Strictly one at a time: each later batch waits for all earlier
	// ones, so latency grows ~linearly.
	for i := 1; i < len(latencies); i++ {
		if latencies[i] <= latencies[i-1] {
			t.Fatalf("intra-op latencies not increasing under queueing: %v", latencies)
		}
	}
	if latencies[3] < 3*latencies[0] {
		t.Fatalf("no serialization evident: %v", latencies)
	}
}

func TestInterOpPipelines(t *testing.T) {
	eng, node, comp := rig(t)
	rt := buildRuntime(t, "Inter-Op", node, comp, model.Tiny())
	var last simclock.Time
	var first time.Duration
	rt.SetOnDone(func(c Completion) {
		last = c.Done
		if first == 0 {
			first = time.Duration(c.Latency())
		}
	})
	const n = 8
	eng.After(0, func(simclock.Time) {
		for i := 0; i < n; i++ {
			if err := rt.Submit(model.Workload{Batch: 2, SeqLen: 32, Phase: model.Context}); err != nil {
				t.Error(err)
			}
		}
	})
	eng.Run()
	// With 4 stages, total time for n batches ≈ first + (n-1)·stage ≈
	// first·(1 + (n-1)/4) — far below n·first (serialized).
	serial := time.Duration(n) * first
	if time.Duration(last) >= serial*3/4 {
		t.Fatalf("pipeline not overlapping: makespan %v vs serial %v", last, serial)
	}
}

func TestInterOpLatencyWorseThanIntraOp(t *testing.T) {
	// §2.2.2: inter-op cannot improve latency — a single uncontended
	// batch runs on one device at a time.
	// Realistic layer dimensions matter here: for toy models the
	// partitioned kernels are floor-dominated and TP stops helping, so
	// use a layer-reduced OPT-30B (the paper's Fig. 3 trick).
	spec := model.OPT30B().WithLayers(4)
	latency := func(name string) time.Duration {
		eng, node, comp := rig(t)
		rt := buildRuntime(t, name, node, comp, spec)
		var lat time.Duration
		rt.SetOnDone(func(c Completion) { lat = time.Duration(c.Latency()) })
		eng.After(0, func(simclock.Time) {
			if err := rt.Submit(model.Workload{Batch: 2, SeqLen: 64, Phase: model.Context}); err != nil {
				t.Error(err)
			}
		})
		eng.Run()
		return lat
	}
	intra := latency("Intra-Op")
	inter := latency("Inter-Op")
	if inter <= intra {
		t.Fatalf("inter-op latency %v not worse than intra-op %v", inter, intra)
	}
}

func TestLigerMatchesIntraOpAtLowRate(t *testing.T) {
	// §3.1: at low arrival rates interleaved parallelism degenerates to
	// the intra-operator approach.
	latency := func(name string) time.Duration {
		eng, node, comp := rig(t)
		rt := buildRuntime(t, name, node, comp, model.Tiny())
		var lat time.Duration
		rt.SetOnDone(func(c Completion) { lat = time.Duration(c.Latency()) })
		eng.After(0, func(simclock.Time) {
			if err := rt.Submit(model.Workload{Batch: 2, SeqLen: 64, Phase: model.Context}); err != nil {
				t.Error(err)
			}
		})
		eng.Run()
		return lat
	}
	intra := latency("Intra-Op")
	lg := latency("Liger")
	ratio := float64(lg) / float64(intra)
	if ratio > 1.1 || ratio < 0.9 {
		t.Fatalf("solo Liger latency %v vs intra-op %v (ratio %.2f)", lg, intra, ratio)
	}
}

func TestLigerSchedulerAccessor(t *testing.T) {
	_, node, comp := rig(t)
	rt, err := NewLiger(node, comp, model.Tiny(), liger.DefaultConfig("v100"))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Scheduler() == nil {
		t.Fatal("nil scheduler")
	}
}

func TestInvalidModelRejected(t *testing.T) {
	_, node, comp := rig(t)
	bad := model.Spec{Name: "bad"}
	if _, err := NewIntraOp(node, comp, bad); err == nil {
		t.Fatal("IntraOp accepted invalid model")
	}
	if _, err := NewInterOp(node, comp, bad, false); err == nil {
		t.Fatal("InterOp accepted invalid model")
	}
	if _, err := NewLiger(node, comp, bad, liger.DefaultConfig("v100")); err == nil {
		t.Fatal("Liger accepted invalid model")
	}
}

func TestDecodeWorkloadAcrossRuntimes(t *testing.T) {
	for _, name := range allRuntimes {
		t.Run(name, func(t *testing.T) {
			eng, node, comp := rig(t)
			rt := buildRuntime(t, name, node, comp, model.Tiny())
			done := 0
			rt.SetOnDone(func(Completion) { done++ })
			eng.After(0, func(simclock.Time) {
				for i := 0; i < 3; i++ {
					if err := rt.Submit(model.Workload{Batch: 32, CtxLen: 16, Phase: model.Decode}); err != nil {
						t.Error(err)
					}
				}
			})
			eng.Run()
			if done != 3 {
				t.Fatalf("%d of 3 decode batches completed", done)
			}
		})
	}
}
