package runtimes

import (
	"fmt"
	"time"

	"liger/internal/gpusim"
	"liger/internal/model"
	"liger/internal/nccl"
	"liger/internal/simclock"
)

// failover is the reconfiguration state machine shared by the three
// runtimes. The sequence every runtime follows on a permanent device
// failure is:
//
//  1. begin: mark reconfiguring (serve defers arrivals and suppresses
//     retries from here on) and bump the epoch so work of the failed
//     world can be told apart from work of the new one.
//  2. The runtime discards the failed epoch (queued work completes as
//     failed, in-flight work drains through the cancellation cascade).
//  3. afterQuiesce: once drained, pay the modeled recovery delay —
//     communicator rebuild over the survivor ring plus the weight
//     re-shard transfer over the surviving links.
//  4. reshard: grow each survivor's weight shard to the new world
//     size (failure here means the survivors cannot host the model:
//     the failover is impossible and everything fails fast).
//  5. finish: clear reconfiguring, account downtime, and flush the
//     serving layer's deferred arrivals via the subscribers.
type failover struct {
	node *gpusim.Node
	comm *nccl.Comm
	spec model.Spec

	reconfiguring bool
	// epoch increments per failure; stale post-drain timers check it so
	// a second failure during recovery supersedes the first.
	epoch int
	// world is the device count the weights are currently sharded over.
	world    int
	failures int
	downtime time.Duration
	failedAt simclock.Time
	// impossible is set when reshard cannot fit the model on the
	// survivors; the runtime then fails every submission immediately.
	impossible bool

	onReconfigured []func(now simclock.Time)
}

func newFailover(node *gpusim.Node, comm *nccl.Comm, spec model.Spec) *failover {
	return &failover{node: node, comm: comm, spec: spec, world: node.NumDevices()}
}

func (f *failover) begin(now simclock.Time) {
	f.epoch++
	f.failures++
	if !f.reconfiguring {
		f.reconfiguring = true
		f.failedAt = now
		if ft, ok := f.node.Tracer().(gpusim.FaultTracer); ok {
			ft.RecoveryBegin(now)
		}
	}
}

// recoveryDelay models what a real elastic runtime pays between drain
// and resume: ncclCommAbort + communicator bootstrap over the survivor
// set, then moving the grown weight shard onto each survivor across
// the surviving links.
func (f *failover) recoveryDelay() time.Duration {
	alive := f.node.NumAlive()
	d := f.comm.RebuildCost(alive)
	if alive >= 1 && alive < f.world {
		grow := f.spec.WeightBytes()/int64(alive) - f.spec.WeightBytes()/int64(f.world)
		d += f.comm.P2P(grow)
	}
	return d
}

// afterQuiesce schedules fn once the recovery delay has elapsed. A
// newer failure epoch cancels the stale resume.
func (f *failover) afterQuiesce(fn func(now simclock.Time)) {
	epoch := f.epoch
	f.node.Engine().After(f.recoveryDelay(), func(now simclock.Time) {
		if epoch != f.epoch {
			return
		}
		fn(now)
	})
}

// reshard grows each survivor's weight shard from 1/world to 1/alive
// of the model. On failure (the survivors cannot host the model) the
// failover is marked impossible and device memory is left rolled back.
func (f *failover) reshard() error {
	alive := f.node.NumAlive()
	if alive < 1 {
		f.impossible = true
		return fmt.Errorf("runtimes: no surviving devices")
	}
	grow := f.spec.WeightBytes()/int64(alive) - f.spec.WeightBytes()/int64(f.world)
	if grow > 0 {
		if err := f.node.AllocAll(grow); err != nil {
			f.impossible = true
			return fmt.Errorf("runtimes: re-shard onto %d survivors: %w", alive, err)
		}
	}
	f.world = alive
	return nil
}

// finishReconfig completes the failover: downtime accounts the span
// from the (first) failure to now, and subscribers — the serving
// layer's deferred-arrival flush — fire at the resume instant.
func (f *failover) finishReconfig(now simclock.Time) {
	f.reconfiguring = false
	f.downtime += time.Duration(now - f.failedAt)
	if ft, ok := f.node.Tracer().(gpusim.FaultTracer); ok {
		ft.RecoveryEnd(now)
	}
	for _, fn := range f.onReconfigured {
		fn(now)
	}
}

// Reconfiguring implements Elastic.
func (f *failover) Reconfiguring() bool { return f.reconfiguring }

// OnReconfigured implements Elastic.
func (f *failover) OnReconfigured(fn func(now simclock.Time)) {
	f.onReconfigured = append(f.onReconfigured, fn)
}

// FailoverStats implements Elastic.
func (f *failover) FailoverStats() (int, time.Duration) { return f.failures, f.downtime }
