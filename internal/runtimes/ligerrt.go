package runtimes

import (
	"liger/internal/gpusim"
	"liger/internal/liger"
	"liger/internal/model"
	"liger/internal/parallel"
	"liger/internal/simclock"
)

// Liger adapts the interleaved-parallelism scheduler (internal/liger)
// to the Runtime interface: batches are assembled into FuncVecs and
// submitted to the multi-GPU multi-stream scheduler.
//
// On a permanent device failure the scheduler quiesces (the failed
// epoch fast-fails, in-flight kernels drain), the assembler retargets
// at the survivor world, and — after the communicator-rebuild +
// weight-re-shard delay — rounds resume on the survivors. Batches
// arriving mid-reconfiguration queue in the scheduler and launch
// against the new plan.
type Liger struct {
	node      *gpusim.Node
	compiler  *parallel.Compiler
	assembler *liger.Assembler
	scheduler *liger.Scheduler
	*failover
	onDone func(Completion)
}

// NewLiger builds the Liger runtime over the node.
func NewLiger(node *gpusim.Node, compiler *parallel.Compiler, spec model.Spec, cfg liger.Config) (*Liger, error) {
	asm, err := liger.NewAssembler(compiler, spec, node.NumDevices())
	if err != nil {
		return nil, err
	}
	if err := allocWeights(node, spec); err != nil {
		return nil, err
	}
	sched, err := liger.NewScheduler(node, cfg)
	if err != nil {
		return nil, err
	}
	r := &Liger{node: node, compiler: compiler, assembler: asm, scheduler: sched,
		failover: newFailover(node, compiler.Comm(), spec)}
	sched.SetOnBatchDone(func(b *liger.Batch, now simclock.Time) {
		if r.onDone != nil {
			r.onDone(Completion{ID: b.ID, Workload: b.Workload, Submitted: b.SubmittedAt,
				Done: now, Failed: b.Failed, Req: b.Req})
		}
	})
	node.OnFail(r.handleFail)
	return r, nil
}

// Name implements Runtime.
func (r *Liger) Name() string { return "Liger" }

// SetOnDone implements Runtime.
func (r *Liger) SetOnDone(fn func(Completion)) { r.onDone = fn }

// Submit implements Runtime.
func (r *Liger) Submit(w model.Workload) error { return r.SubmitReq(w, -1) }

// SubmitReq implements Tagged: the request id rides on the batch and
// its kernel launches so traces can decompose per-request time.
func (r *Liger) SubmitReq(w model.Workload, req int) error {
	b, err := r.assembler.Assemble(w)
	if err != nil {
		return err
	}
	b.Req = req
	if r.impossible {
		if r.onDone != nil {
			now := r.node.Engine().Now()
			r.onDone(Completion{ID: b.ID, Workload: w, Submitted: now, Done: now, Failed: true, Req: req})
		}
		return nil
	}
	r.scheduler.Submit(b)
	return nil
}

// handleFail is the Node.OnFail observer: retarget the assembler at
// the survivor world (batches assembled from here on compile for it),
// quiesce the scheduler, and — once the old epoch drains — pay the
// recovery delay, re-shard, and resume rounds on the survivors.
func (r *Liger) handleFail(dev int, now simclock.Time) {
	r.begin(now)
	alive := r.node.AliveDevices()
	r.compiler = r.compiler.ForWorldSize(len(alive))
	if err := r.assembler.Retarget(r.compiler, len(alive)); err != nil {
		r.impossible = true
	}
	r.scheduler.Quiesce(now, func(simclock.Time) {
		r.afterQuiesce(func(t simclock.Time) {
			if err := r.reshard(); err != nil {
				r.scheduler.FailAll(t)
				r.finishReconfig(t)
				return
			}
			r.scheduler.Resume(t)
			r.finishReconfig(t)
		})
	})
}

// Scheduler exposes the underlying scheduler for stats inspection.
func (r *Liger) Scheduler() *liger.Scheduler { return r.scheduler }
