package runtimes

import (
	"liger/internal/gpusim"
	"liger/internal/liger"
	"liger/internal/model"
	"liger/internal/parallel"
	"liger/internal/simclock"
)

// Liger adapts the interleaved-parallelism scheduler (internal/liger)
// to the Runtime interface: batches are assembled into FuncVecs and
// submitted to the multi-GPU multi-stream scheduler.
type Liger struct {
	assembler *liger.Assembler
	scheduler *liger.Scheduler
	onDone    func(Completion)
}

// NewLiger builds the Liger runtime over the node.
func NewLiger(node *gpusim.Node, compiler *parallel.Compiler, spec model.Spec, cfg liger.Config) (*Liger, error) {
	asm, err := liger.NewAssembler(compiler, spec, node.NumDevices())
	if err != nil {
		return nil, err
	}
	if err := allocWeights(node, spec); err != nil {
		return nil, err
	}
	sched, err := liger.NewScheduler(node, cfg)
	if err != nil {
		return nil, err
	}
	r := &Liger{assembler: asm, scheduler: sched}
	sched.SetOnBatchDone(func(b *liger.Batch, now simclock.Time) {
		if r.onDone != nil {
			r.onDone(Completion{ID: b.ID, Workload: b.Workload, Submitted: b.SubmittedAt,
				Done: now, Failed: b.Failed})
		}
	})
	return r, nil
}

// Name implements Runtime.
func (r *Liger) Name() string { return "Liger" }

// SetOnDone implements Runtime.
func (r *Liger) SetOnDone(fn func(Completion)) { r.onDone = fn }

// Submit implements Runtime.
func (r *Liger) Submit(w model.Workload) error {
	b, err := r.assembler.Assemble(w)
	if err != nil {
		return err
	}
	r.scheduler.Submit(b)
	return nil
}

// Scheduler exposes the underlying scheduler for stats inspection.
func (r *Liger) Scheduler() *liger.Scheduler { return r.scheduler }
