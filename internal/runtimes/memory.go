package runtimes

import (
	"fmt"

	"liger/internal/gpusim"
	"liger/internal/model"
)

// Runtimes allocate real (simulated) device memory: the weight shards
// once at construction, and an activation workspace per in-flight
// batch. Over-admission then surfaces as allocation failure instead of
// being ignored.

// workspaceBytes estimates one batch's live activation footprint: a few
// tensors at the widest point (the FFN expansion), double-buffered.
// Must stay consistent with parallel.PlanPlacement's workspace term.
func workspaceBytes(spec model.Spec, w model.Workload) int64 {
	return 3 * int64(w.Tokens()) * int64(spec.FFNHidden()) * 2
}

// allocWeights reserves each device's weight shard (intra-operator and
// interleaved partitioning spread weights evenly, as do equal pipeline
// stages).
func allocWeights(node *gpusim.Node, spec model.Spec) error {
	shard := spec.WeightBytes() / int64(node.NumDevices())
	if err := node.AllocAll(shard); err != nil {
		return fmt.Errorf("runtimes: weights for %s do not fit: %w", spec.Name, err)
	}
	return nil
}
