package runtimes

import (
	"liger/internal/gpusim"
	"liger/internal/model"
	"liger/internal/parallel"
	"liger/internal/simclock"
)

// InterOp is the inter-operator (pipeline) parallelism baseline: the
// model is split into equal contiguous stages, one per device, with a
// single point-to-point transfer between consecutive stages; requests
// flow through the pipeline so different devices work on different
// batches concurrently (§2.2.2). High throughput, but each request is
// processed by one device at a time so latency does not improve.
//
// With theoretical=true it becomes the Inter-Th baseline (§4.1): each
// stage executes the intra-operator approach's partitioned kernels back
// to back instead of the original kernels.
type InterOp struct {
	node        *gpusim.Node
	compiler    *parallel.Compiler
	spec        model.Spec
	theoretical bool

	// main per-device stream for stage compute + sends; a dedicated
	// receive stream per device keeps the p2p rendezvous from blocking
	// behind the previous batch's stage.
	streams []*gpusim.Stream
	recv    []*gpusim.Stream

	busy   []bool
	queues [][]*pipeJob

	nextID int
	onDone func(Completion)
}

type pipeJob struct {
	id        int
	w         model.Workload
	submitted simclock.Time
	stages    []parallel.Stage
	failed    bool
}

// NewInterOp builds the pipeline baseline with one stage per device.
func NewInterOp(node *gpusim.Node, compiler *parallel.Compiler, spec model.Spec, theoretical bool) (*InterOp, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	r := &InterOp{node: node, compiler: compiler, spec: spec, theoretical: theoretical}
	if err := allocWeights(node, spec); err != nil {
		return nil, err
	}
	ndev := node.NumDevices()
	for d := 0; d < ndev; d++ {
		r.streams = append(r.streams, node.NewStream(d))
		r.recv = append(r.recv, node.NewStream(d))
	}
	r.busy = make([]bool, ndev)
	r.queues = make([][]*pipeJob, ndev)
	return r, nil
}

// Name implements Runtime.
func (r *InterOp) Name() string {
	if r.theoretical {
		return "Inter-Th"
	}
	return "Inter-Op"
}

// SetOnDone implements Runtime.
func (r *InterOp) SetOnDone(fn func(Completion)) { r.onDone = fn }

// Submit implements Runtime.
func (r *InterOp) Submit(w model.Workload) error {
	var stages []parallel.Stage
	var err error
	if r.theoretical {
		stages, err = r.compiler.InterTh(r.spec, r.node.NumDevices(), w)
	} else {
		stages, err = r.compiler.InterOp(r.spec, r.node.NumDevices(), w)
	}
	if err != nil {
		return err
	}
	job := &pipeJob{id: r.nextID, w: w, submitted: r.node.Engine().Now(), stages: stages}
	r.nextID++
	r.queues[0] = append(r.queues[0], job)
	r.tryStage(0)
	return nil
}

// tryStage starts the next queued job on stage d if the stage is free.
func (r *InterOp) tryStage(d int) {
	if r.busy[d] || len(r.queues[d]) == 0 {
		return
	}
	r.busy[d] = true
	job := r.queues[d][0]
	r.queues[d] = r.queues[d][1:]
	r.runStage(job, d)
}

// runStage launches a job's stage-d kernels; when they complete the
// stage frees up, and (for non-final stages) the p2p transfer hands the
// job to the next stage's queue.
func (r *InterOp) runStage(job *pipeJob, d int) {
	stage := job.stages[d]
	// One stage processes one job at a time, so a single workspace per
	// device suffices; the placement check guarantees it fits.
	ws := workspaceBytes(r.spec, job.w)
	if err := r.node.Device(d).Alloc(ws); err != nil {
		panic(err)
	}
	st := r.streams[d]
	last := len(stage.Kernels) - 1
	for i, k := range stage.Kernels {
		spec := gpusim.KernelSpec{
			Name:          k.Name,
			Class:         k.Class,
			Duration:      k.Duration,
			ComputeDemand: k.ComputeDemand,
			MemBWDemand:   k.MemBWDemand,
			Batch:         job.id,
		}
		if i == last && !stage.HasSend {
			spec.OnDone = func(now simclock.Time) { r.finishStage(job, d, now) }
		}
		st.Launch(spec)
	}
	if stage.HasSend {
		// Rendezvous pair: send on this stage's main stream (after its
		// compute, in order), receive on the next device's dedicated
		// stream.
		coll := r.node.NewCollective(2)
		coll.OnAbort(func(simclock.Time) { job.failed = true })
		k := stage.SendNext
		st.Launch(gpusim.KernelSpec{
			Name: k.Name, Class: k.Class, Duration: k.Duration,
			ComputeDemand: k.ComputeDemand, MemBWDemand: k.MemBWDemand,
			Coll: coll, Batch: job.id,
			OnDone: func(now simclock.Time) { r.finishStage(job, d, now) },
		})
		r.recv[d+1].Launch(gpusim.KernelSpec{
			Name: k.Name + "_recv", Class: k.Class, Duration: k.Duration,
			ComputeDemand: k.ComputeDemand, MemBWDemand: k.MemBWDemand,
			Coll: coll, Batch: job.id,
			OnDone: func(now simclock.Time) {
				r.queues[d+1] = append(r.queues[d+1], job)
				r.tryStage(d + 1)
			},
		})
	}
}

func (r *InterOp) finishStage(job *pipeJob, d int, now simclock.Time) {
	r.node.Device(d).Free(workspaceBytes(r.spec, job.w))
	r.busy[d] = false
	if d == len(job.stages)-1 {
		if r.onDone != nil {
			r.onDone(Completion{ID: job.id, Workload: job.w, Submitted: job.submitted,
				Done: now, Failed: job.failed})
		}
	}
	r.tryStage(d)
}
