package runtimes

import (
	"liger/internal/gpusim"
	"liger/internal/model"
	"liger/internal/parallel"
	"liger/internal/simclock"
)

// InterOp is the inter-operator (pipeline) parallelism baseline: the
// model is split into equal contiguous stages, one per device, with a
// single point-to-point transfer between consecutive stages; requests
// flow through the pipeline so different devices work on different
// batches concurrently (§2.2.2). High throughput, but each request is
// processed by one device at a time so latency does not improve.
//
// With theoretical=true it becomes the Inter-Th baseline (§4.1): each
// stage executes the intra-operator approach's partitioned kernels back
// to back instead of the original kernels.
//
// On a permanent device failure the pipeline re-forms over the
// survivors: the failed epoch's jobs complete as failed (in-flight
// stages drain, everything else fails immediately), the weights
// re-shard into fewer, deeper stages, and subsequent jobs compile for
// the reduced world.
type InterOp struct {
	node        *gpusim.Node
	compiler    *parallel.Compiler
	spec        model.Spec
	theoretical bool
	*failover

	// main per-device stream for stage compute + sends; a dedicated
	// receive stream per device keeps the p2p rendezvous from blocking
	// behind the previous batch's stage.
	streams []*gpusim.Stream
	recv    []*gpusim.Stream

	// stageDev maps pipeline stage → device id; it is the survivor set
	// in id order and shrinks at failover. busy/queues are indexed by
	// stage.
	stageDev []int
	busy     []*pipeJob
	queues   [][]*pipeJob

	// jobs registers every incomplete job in submission order so a
	// failover can fail the whole epoch — including jobs mid-handoff
	// between stages, which sit in neither a queue nor a busy slot.
	jobs []*pipeJob
	// draining counts old-epoch stages still executing after a failure;
	// the recovery delay starts when it reaches zero.
	draining int

	nextID int
	onDone func(Completion)
}

type pipeJob struct {
	id        int
	req       int
	epoch     int
	w         model.Workload
	submitted simclock.Time
	stages    []parallel.Stage
	failed    bool
	done      bool
}

// NewInterOp builds the pipeline baseline with one stage per device.
func NewInterOp(node *gpusim.Node, compiler *parallel.Compiler, spec model.Spec, theoretical bool) (*InterOp, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	r := &InterOp{node: node, compiler: compiler, spec: spec, theoretical: theoretical,
		failover: newFailover(node, compiler.Comm(), spec)}
	if err := allocWeights(node, spec); err != nil {
		return nil, err
	}
	ndev := node.NumDevices()
	for d := 0; d < ndev; d++ {
		r.streams = append(r.streams, node.NewStream(d))
		r.recv = append(r.recv, node.NewStream(d))
	}
	r.stageDev = node.AliveDevices()
	r.busy = make([]*pipeJob, len(r.stageDev))
	r.queues = make([][]*pipeJob, len(r.stageDev))
	node.OnFail(r.handleFail)
	return r, nil
}

// Name implements Runtime.
func (r *InterOp) Name() string {
	if r.theoretical {
		return "Inter-Th"
	}
	return "Inter-Op"
}

// SetOnDone implements Runtime.
func (r *InterOp) SetOnDone(fn func(Completion)) { r.onDone = fn }

// Submit implements Runtime.
func (r *InterOp) Submit(w model.Workload) error { return r.SubmitReq(w, -1) }

// SubmitReq implements Tagged: the request id rides on the job's
// kernel launches so traces can decompose per-request time.
func (r *InterOp) SubmitReq(w model.Workload, req int) error {
	job := &pipeJob{id: r.nextID, req: req, w: w, submitted: r.node.Engine().Now(), epoch: r.epoch}
	r.nextID++
	if r.impossible {
		job.failed = true
		r.complete(job, r.node.Engine().Now())
		return nil
	}
	var stages []parallel.Stage
	var err error
	if r.theoretical {
		stages, err = r.compiler.InterTh(r.spec, len(r.stageDev), w)
	} else {
		stages, err = r.compiler.InterOp(r.spec, len(r.stageDev), w)
	}
	if err != nil {
		return err
	}
	job.stages = stages
	r.jobs = append(r.jobs, job)
	r.queues[0] = append(r.queues[0], job)
	r.tryStage(0)
	return nil
}

// complete fires the completion exactly once and drops the job from
// the incomplete registry.
func (r *InterOp) complete(job *pipeJob, now simclock.Time) {
	if job.done {
		return
	}
	job.done = true
	for i, j := range r.jobs {
		if j == job {
			r.jobs = append(r.jobs[:i], r.jobs[i+1:]...)
			break
		}
	}
	if r.onDone != nil {
		r.onDone(Completion{ID: job.id, Workload: job.w, Submitted: job.submitted,
			Done: now, Failed: job.failed, Req: job.req})
	}
}

// handleFail is the Node.OnFail observer: the whole in-flight epoch
// fails. Stages currently executing drain through the cancellation
// cascade (their workspace frees when the stage's terminal kernel
// lands); every other incomplete job — queued or mid-handoff — fails
// immediately. The pipeline then re-forms over the survivors.
func (r *InterOp) handleFail(dev int, now simclock.Time) {
	r.begin(now)
	oldBusy := r.busy
	// No compiler swap needed (unlike IntraOp/Liger): stage compilation
	// takes the stage count explicitly and prices only rank-independent
	// P2P transfers, never world-sized collectives.
	r.stageDev = r.node.AliveDevices()
	r.busy = make([]*pipeJob, len(r.stageDev))
	r.queues = make([][]*pipeJob, len(r.stageDev))
	// Accumulate (not reset): a second failure during an ongoing drain
	// must keep counting the stages still executing from the first.
	for _, job := range oldBusy {
		if job != nil {
			r.draining++
		}
	}
	// Fail the epoch in submission order; busy jobs keep their slot in
	// the registry until their in-flight stage drains.
	inBusy := func(job *pipeJob) bool {
		for _, b := range oldBusy {
			if b == job {
				return true
			}
		}
		return false
	}
	snapshot := append([]*pipeJob(nil), r.jobs...)
	for _, job := range snapshot {
		job.failed = true
		if !inBusy(job) {
			r.complete(job, now)
		}
	}
	if r.draining == 0 {
		r.quiesced()
	}
}

// quiesced runs once no old-epoch stage is executing: pay the rebuild +
// re-shard delay, then restart the (shorter, deeper) pipeline.
func (r *InterOp) quiesced() {
	r.afterQuiesce(func(now simclock.Time) {
		if err := r.reshard(); err != nil {
			snapshot := append([]*pipeJob(nil), r.jobs...)
			for _, job := range snapshot {
				job.failed = true
				r.complete(job, now)
			}
			r.queues = make([][]*pipeJob, len(r.stageDev))
		}
		r.finishReconfig(now)
		for s := range r.stageDev {
			r.tryStage(s)
		}
	})
}

// tryStage starts the next queued job on stage s if the stage is free.
func (r *InterOp) tryStage(s int) {
	if r.Reconfiguring() || r.busy[s] != nil || len(r.queues[s]) == 0 {
		return
	}
	job := r.queues[s][0]
	r.queues[s] = r.queues[s][1:]
	r.busy[s] = job
	r.runStage(job, s)
}

// runStage launches a job's stage-s kernels on the stage's device;
// when they complete the stage frees up, and (for non-final stages)
// the p2p transfer hands the job to the next stage's queue.
func (r *InterOp) runStage(job *pipeJob, s int) {
	stage := job.stages[s]
	dev := r.stageDev[s]
	// One stage processes one job at a time, so a single workspace per
	// device suffices; the placement check guarantees it fits.
	ws := workspaceBytes(r.spec, job.w)
	if err := r.node.Device(dev).Alloc(ws); err != nil {
		panic(err)
	}
	st := r.streams[dev]
	last := len(stage.Kernels) - 1
	for i, k := range stage.Kernels {
		spec := gpusim.KernelSpec{
			Name:          k.Name,
			Class:         k.Class,
			Duration:      k.Duration,
			ComputeDemand: k.ComputeDemand,
			MemBWDemand:   k.MemBWDemand,
			Batch:         job.id,
			Req:           job.req,
		}
		if i == last && !stage.HasSend {
			spec.OnDone = func(now simclock.Time) { r.finishStage(job, s, dev, now) }
		}
		st.Launch(spec)
	}
	if stage.HasSend {
		// Rendezvous pair: send on this stage's main stream (after its
		// compute, in order), receive on the next stage device's
		// dedicated stream.
		next := s + 1
		recvDev := r.stageDev[next]
		coll := r.node.NewCollective(2)
		coll.OnAbort(func(simclock.Time) { job.failed = true })
		k := stage.SendNext
		st.Launch(gpusim.KernelSpec{
			Name: k.Name, Class: k.Class, Duration: k.Duration,
			ComputeDemand: k.ComputeDemand, MemBWDemand: k.MemBWDemand,
			Coll: coll, Batch: job.id, Req: job.req,
			OnDone: func(now simclock.Time) { r.finishStage(job, s, dev, now) },
		})
		r.recv[recvDev].Launch(gpusim.KernelSpec{
			Name: k.Name + "_recv", Class: k.Class, Duration: k.Duration,
			ComputeDemand: k.ComputeDemand, MemBWDemand: k.MemBWDemand,
			Coll: coll, Batch: job.id, Req: job.req,
			OnDone: func(now simclock.Time) { r.advanceJob(job, next, now) },
		})
	}
}

// finishStage is a stage's terminal completion: the workspace frees on
// the device the stage ran on (captured at launch — the stage map may
// have been retargeted since). A job of a stale epoch is draining
// after a failover: it completes as failed here, and the last drained
// stage starts the recovery clock.
func (r *InterOp) finishStage(job *pipeJob, s, dev int, now simclock.Time) {
	r.node.Device(dev).Free(workspaceBytes(r.spec, job.w))
	if job.epoch != r.epoch {
		r.complete(job, now)
		r.draining--
		if r.draining == 0 {
			r.quiesced()
		}
		return
	}
	r.busy[s] = nil
	if s == len(job.stages)-1 {
		r.complete(job, now)
	}
	r.tryStage(s)
}

// advanceJob hands a job to its next stage once the p2p lands. Stale
// epochs are dropped: the job already completed (or will, via its
// draining sender stage).
func (r *InterOp) advanceJob(job *pipeJob, next int, now simclock.Time) {
	if job.epoch != r.epoch {
		return
	}
	r.queues[next] = append(r.queues[next], job)
	r.tryStage(next)
}
