package runtimes

import (
	"liger/internal/gpusim"
	"liger/internal/model"
	"liger/internal/parallel"
	"liger/internal/simclock"
)

// IntraOp is the intra-operator parallelism baseline: every operator is
// partitioned across all devices (Megatron-style) with two all-reduces
// per transformer layer, and batches execute strictly one at a time
// (§2.2.1). Low latency, but compute units idle during communication.
//
// On a permanent device failure the runtime discards the failed epoch
// (the running batch's collectives abort, queued batches fail for the
// serving layer to retry), re-shards the weights onto the survivors,
// and recompiles subsequent batches for the reduced world.
type IntraOp struct {
	node     *gpusim.Node
	compiler *parallel.Compiler
	spec     model.Spec
	*failover

	streams []*gpusim.Stream
	// alive is the surviving device set batches execute on.
	alive []int

	queue   []*intraJob
	busy    bool
	running *intraJob
	nextID  int
	onDone  func(Completion)
}

type intraJob struct {
	id        int
	req       int
	w         model.Workload
	submitted simclock.Time
	kernels   []parallel.KernelDesc
	failed    bool
}

// NewIntraOp builds the baseline over every device of the node.
func NewIntraOp(node *gpusim.Node, compiler *parallel.Compiler, spec model.Spec) (*IntraOp, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	r := &IntraOp{node: node, compiler: compiler, spec: spec,
		failover: newFailover(node, compiler.Comm(), spec), alive: node.AliveDevices()}
	if err := allocWeights(node, spec); err != nil {
		return nil, err
	}
	for d := 0; d < node.NumDevices(); d++ {
		r.streams = append(r.streams, node.NewStream(d))
	}
	node.OnFail(r.handleFail)
	return r, nil
}

// Name implements Runtime.
func (r *IntraOp) Name() string { return "Intra-Op" }

// SetOnDone implements Runtime.
func (r *IntraOp) SetOnDone(fn func(Completion)) { r.onDone = fn }

// Submit implements Runtime.
func (r *IntraOp) Submit(w model.Workload) error { return r.SubmitReq(w, -1) }

// SubmitReq implements Tagged: the request id rides on the batch's
// kernel launches so traces can decompose per-request time.
func (r *IntraOp) SubmitReq(w model.Workload, req int) error {
	job := &intraJob{id: r.nextID, req: req, w: w, submitted: r.node.Engine().Now()}
	r.nextID++
	if r.impossible {
		r.complete(job, r.node.Engine().Now(), true)
		return nil
	}
	kernels, err := r.compiler.IntraOp(r.spec, len(r.alive), w)
	if err != nil {
		return err
	}
	job.kernels = kernels
	r.queue = append(r.queue, job)
	r.maybeStart()
	return nil
}

func (r *IntraOp) maybeStart() {
	if r.busy || r.Reconfiguring() || len(r.queue) == 0 {
		return
	}
	r.busy = true
	job := r.queue[0]
	r.queue = r.queue[1:]
	r.running = job
	r.run(job)
}

func (r *IntraOp) complete(job *intraJob, now simclock.Time, failed bool) {
	if r.onDone != nil {
		r.onDone(Completion{ID: job.id, Workload: job.w, Submitted: job.submitted,
			Done: now, Failed: failed, Req: job.req})
	}
}

// handleFail is the Node.OnFail observer: discard the failed epoch
// (queued batches fail immediately, the running batch fails as its
// collectives abort under it) and retarget the compiler at the
// survivor world. Once the running batch drains, the recovery delay
// and re-shard follow.
func (r *IntraOp) handleFail(dev int, now simclock.Time) {
	r.begin(now)
	r.alive = r.node.AliveDevices()
	r.compiler = r.compiler.ForWorldSize(len(r.alive))
	if r.running != nil {
		r.running.failed = true
	}
	flushed := r.queue
	r.queue = nil
	for _, job := range flushed {
		r.complete(job, now, true)
	}
	if !r.busy {
		r.quiesced()
	}
}

// quiesced runs once no old-epoch work is in flight: pay the rebuild +
// re-shard delay, then resume on the survivors.
func (r *IntraOp) quiesced() {
	r.afterQuiesce(func(now simclock.Time) {
		if err := r.reshard(); err != nil {
			// The survivors cannot host the model: fail everything that
			// arrived during the drain; Submit fails the rest up front.
			flushed := r.queue
			r.queue = nil
			for _, job := range flushed {
				r.complete(job, now, true)
			}
		}
		r.finishReconfig(now)
		r.maybeStart()
	})
}

// run launches the whole SPMD kernel sequence: identical in-order
// streams on each surviving device, collectives rendezvousing across
// all of them.
func (r *IntraOp) run(job *intraJob) {
	devs := r.alive
	ws := workspaceBytes(r.spec, job.w)
	if err := r.node.AllocAll(ws); err != nil {
		// One batch at a time: the placement check at engine build
		// guarantees a single batch's workspace fits, so this is an
		// accounting bug, not a load condition.
		panic(err)
	}
	pending := len(job.kernels) * len(devs)
	done := func(now simclock.Time) {
		pending--
		if pending > 0 {
			return
		}
		r.node.FreeAll(ws)
		r.complete(job, now, job.failed)
		r.busy = false
		r.running = nil
		if r.Reconfiguring() {
			r.quiesced()
			return
		}
		r.maybeStart()
	}
	colls := make([]*gpusim.Collective, len(job.kernels))
	for i, k := range job.kernels {
		if k.Collective {
			colls[i] = r.node.NewCollective(len(devs))
			colls[i].OnAbort(func(simclock.Time) { job.failed = true })
		}
	}
	for _, d := range devs {
		st := r.streams[d]
		for i, k := range job.kernels {
			st.Launch(gpusim.KernelSpec{
				Name:          k.Name,
				Class:         k.Class,
				Duration:      k.Duration,
				ComputeDemand: k.ComputeDemand,
				MemBWDemand:   k.MemBWDemand,
				Coll:          colls[i],
				Batch:         job.id,
				Req:           job.req,
				OnDone:        done,
			})
		}
	}
}
