package runtimes

import (
	"liger/internal/gpusim"
	"liger/internal/model"
	"liger/internal/parallel"
	"liger/internal/simclock"
)

// IntraOp is the intra-operator parallelism baseline: every operator is
// partitioned across all devices (Megatron-style) with two all-reduces
// per transformer layer, and batches execute strictly one at a time
// (§2.2.1). Low latency, but compute units idle during communication.
type IntraOp struct {
	node     *gpusim.Node
	compiler *parallel.Compiler
	spec     model.Spec

	streams []*gpusim.Stream

	queue  []*intraJob
	busy   bool
	nextID int
	onDone func(Completion)
}

type intraJob struct {
	id        int
	w         model.Workload
	submitted simclock.Time
	kernels   []parallel.KernelDesc
	failed    bool
}

// NewIntraOp builds the baseline over every device of the node.
func NewIntraOp(node *gpusim.Node, compiler *parallel.Compiler, spec model.Spec) (*IntraOp, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	r := &IntraOp{node: node, compiler: compiler, spec: spec}
	if err := allocWeights(node, spec); err != nil {
		return nil, err
	}
	for d := 0; d < node.NumDevices(); d++ {
		r.streams = append(r.streams, node.NewStream(d))
	}
	return r, nil
}

// Name implements Runtime.
func (r *IntraOp) Name() string { return "Intra-Op" }

// SetOnDone implements Runtime.
func (r *IntraOp) SetOnDone(fn func(Completion)) { r.onDone = fn }

// Submit implements Runtime.
func (r *IntraOp) Submit(w model.Workload) error {
	kernels, err := r.compiler.IntraOp(r.spec, r.node.NumDevices(), w)
	if err != nil {
		return err
	}
	job := &intraJob{id: r.nextID, w: w, submitted: r.node.Engine().Now(), kernels: kernels}
	r.nextID++
	r.queue = append(r.queue, job)
	r.maybeStart()
	return nil
}

func (r *IntraOp) maybeStart() {
	if r.busy || len(r.queue) == 0 {
		return
	}
	r.busy = true
	job := r.queue[0]
	r.queue = r.queue[1:]
	r.run(job)
}

// run launches the whole SPMD kernel sequence: identical in-order
// streams on each device, collectives rendezvousing across all of them.
func (r *IntraOp) run(job *intraJob) {
	ndev := r.node.NumDevices()
	ws := workspaceBytes(r.spec, job.w)
	if err := r.node.AllocAll(ws); err != nil {
		// One batch at a time: the placement check at engine build
		// guarantees a single batch's workspace fits, so this is an
		// accounting bug, not a load condition.
		panic(err)
	}
	pending := len(job.kernels) * ndev
	done := func(now simclock.Time) {
		pending--
		if pending > 0 {
			return
		}
		r.node.FreeAll(ws)
		if r.onDone != nil {
			r.onDone(Completion{ID: job.id, Workload: job.w, Submitted: job.submitted,
				Done: now, Failed: job.failed})
		}
		r.busy = false
		r.maybeStart()
	}
	colls := make([]*gpusim.Collective, len(job.kernels))
	for i, k := range job.kernels {
		if k.Collective {
			colls[i] = r.node.NewCollective(ndev)
			colls[i].OnAbort(func(simclock.Time) { job.failed = true })
		}
	}
	for d := 0; d < ndev; d++ {
		st := r.streams[d]
		for i, k := range job.kernels {
			st.Launch(gpusim.KernelSpec{
				Name:          k.Name,
				Class:         k.Class,
				Duration:      k.Duration,
				ComputeDemand: k.ComputeDemand,
				MemBWDemand:   k.MemBWDemand,
				Coll:          colls[i],
				Batch:         job.id,
				OnDone:        done,
			})
		}
	}
}
