package runtimes

import (
	"testing"
	"time"

	"liger/internal/model"
	"liger/internal/simclock"
	"liger/internal/trace"
)

// Request ids submitted via Tagged must come back on completions and
// reach every kernel span of the batch; untagged submissions stay -1.
func TestRequestIDsThreadToCompletionsAndSpans(t *testing.T) {
	for _, name := range allRuntimes {
		t.Run(name, func(t *testing.T) {
			eng, node, comp := rig(t)
			rec := trace.NewRecorder()
			node.SetTracer(rec)
			rt := buildRuntime(t, name, node, comp, model.Tiny())
			tagged, ok := rt.(Tagged)
			if !ok {
				t.Fatalf("%s does not implement Tagged", name)
			}
			var done []Completion
			rt.SetOnDone(func(c Completion) { done = append(done, c) })
			w := model.Workload{Batch: 2, SeqLen: 16, Phase: model.Context}
			eng.At(0, func(simclock.Time) {
				if err := tagged.SubmitReq(w, 7); err != nil {
					t.Error(err)
				}
			})
			eng.At(simclock.Time(200*time.Microsecond), func(simclock.Time) {
				if err := rt.Submit(w); err != nil {
					t.Error(err)
				}
			})
			eng.Run()
			if len(done) != 2 {
				t.Fatalf("%d of 2 completed", len(done))
			}
			reqs := map[int]bool{}
			for _, c := range done {
				reqs[c.Req] = true
			}
			if !reqs[7] || !reqs[-1] {
				t.Fatalf("completion req ids = %v, want {7, -1}", reqs)
			}
			sawTagged := false
			for _, sp := range rec.Spans() {
				switch sp.Req {
				case 7:
					sawTagged = true
				case -1:
				default:
					t.Fatalf("span %q carries unexpected req %d", sp.Name, sp.Req)
				}
			}
			if !sawTagged {
				t.Fatal("no kernel span carries the submitted request id")
			}
		})
	}
}
