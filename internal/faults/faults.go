// Package faults is the deterministic fault-injection subsystem: it
// models time-varying node degradation — transient device slowdowns,
// link-bandwidth degradation windows, collective stalls, device drops
// with restore — as a seeded schedule of timed events injected into the
// simulation, rather than as pre-run mutations.
//
// A Schedule is a plain value (buildable by hand, from a scenario
// preset, or from a seeded generator) and Inject arms it on a gpusim
// node as simclock events: every fault applies and reverts at its sim
// time, so in-flight kernels and collectives re-time mid-run exactly as
// a real GPU re-clocks. Simulators like Frontier and LLMServingSim
// treat time-varying failure and recovery as first-class inputs; this
// package gives the Liger reproduction the same testbed so the
// robustness question the paper leaves open — how gracefully does
// interleaved scheduling degrade when the node misbehaves mid-flight —
// becomes measurable.
package faults

import (
	"fmt"
	"sort"
	"time"

	"liger/internal/gpusim"
)

// Kind classifies one fault event.
type Kind int

const (
	// Slowdown throttles a device's overall progress rate to Factor for
	// the window (thermal throttling, a noisy neighbour).
	Slowdown Kind = iota
	// LinkDegrade throttles only the device's communication rate to
	// Factor for the window (a flaky NVLink/PCIe link). Collectives
	// advance at their slowest member, so one bad link gates the group.
	LinkDegrade
	// DeviceDrop freezes the device almost entirely for the window,
	// restoring it afterwards (an Xid-style fall-off-the-bus event).
	// Factor is ignored. Pair with a collective timeout so hung
	// rendezvous abort instead of waiting out the window.
	DeviceDrop
	// CollStall freezes the device's communication rate for the window
	// (a hung collective: NCCL kernels spin, no bytes move). Factor is
	// ignored. Pair with a collective timeout to model abort + retry.
	CollStall
	// DeviceFail permanently removes the device at Start: in-flight
	// kernels cancel, its collective memberships abort, and — unlike
	// DeviceDrop — there is no restore. Runtimes observe the failure and
	// re-plan onto the survivors. Duration and Factor are ignored.
	DeviceFail
	// NodeFail permanently removes a whole node of a cluster at Start:
	// every in-flight request on it is lost, the router evicts its
	// replica, and the control plane re-places the replica onto spare
	// capacity (internal/cluster). Device, Duration, and Factor are
	// ignored; the target is Event.Node. NodeFail is a cluster-level
	// fault — single-node injection (Inject) rejects it.
	NodeFail
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Slowdown:
		return "slowdown"
	case LinkDegrade:
		return "link-degrade"
	case DeviceDrop:
		return "device-drop"
	case CollStall:
		return "coll-stall"
	case DeviceFail:
		return "device-fail"
	case NodeFail:
		return "node-fail"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// freezeFactor is the rate multiplier used by DeviceDrop and CollStall:
// near-total freeze, but positive so completion events stay finite and
// a schedule without a watchdog still terminates.
const freezeFactor = 1e-6

// Event is one fault: a window [Start, Start+Duration) during which a
// device's speed or link rate is scaled by Factor.
type Event struct {
	Kind Kind
	// Node is the cluster node the event targets. Single-node schedules
	// leave it 0; a cluster run splits its schedule per node
	// (SplitByNode) and NodeFail events target Node directly.
	Node   int
	Device int
	// Start is the window's opening sim time.
	Start time.Duration
	// Duration is the window length; <= 0 means the fault persists to
	// the end of the run (the degenerate static-straggler shape).
	Duration time.Duration
	// Factor is the rate multiplier in (0, 1] while the window is open.
	// DeviceDrop and CollStall ignore it (they pin a freeze factor).
	Factor float64
}

// factor returns the effective rate multiplier of the event.
func (e Event) factor() float64 {
	if e.Kind == DeviceDrop || e.Kind == CollStall {
		return freezeFactor
	}
	return e.Factor
}

// onSpeed reports whether the event scales the device's overall speed
// (true) or only its communication rate (false).
func (e Event) onSpeed() bool { return e.Kind == Slowdown || e.Kind == DeviceDrop }

// String renders the event for logs and experiment headers.
func (e Event) String() string {
	target := fmt.Sprintf("dev%d", e.Device)
	if e.Node > 0 {
		target = fmt.Sprintf("node%d/%s", e.Node, target)
	}
	switch e.Kind {
	case NodeFail:
		return fmt.Sprintf("%s node%d at %v", e.Kind, e.Node, e.Start)
	case DeviceFail:
		return fmt.Sprintf("%s %s at %v", e.Kind, target, e.Start)
	}
	end := "end"
	if e.Duration > 0 {
		end = (e.Start + e.Duration).String()
	}
	return fmt.Sprintf("%s %s [%v, %s) x%.3g", e.Kind, target, e.Start, end, e.factor())
}

// Schedule is a full fault plan for one run.
type Schedule struct {
	Events []Event
	// CollTimeout, when positive, arms the node-wide collective
	// watchdog: a collective that has not completed within this span of
	// its first member's arrival aborts (and the owning batch fails, so
	// the serving layer can retry it).
	CollTimeout time.Duration
}

// Empty reports whether the schedule injects nothing.
func (s Schedule) Empty() bool { return len(s.Events) == 0 && s.CollTimeout == 0 }

// Validate bounds-checks the schedule against a single node size. It
// is the one-node special case of ValidateCluster, so NodeFail events
// and nonzero Node targets are rejected — they need a cluster.
func (s Schedule) Validate(numDevices int) error {
	return s.ValidateCluster(1, numDevices)
}

// ValidateCluster bounds-checks the schedule against a cluster of
// numNodes identical nodes with devicesPerNode GPUs each. Every error
// names the event index, kind, target, and time so a scenario author
// can find the offending line.
func (s Schedule) ValidateCluster(numNodes, devicesPerNode int) error {
	if s.CollTimeout < 0 {
		return fmt.Errorf("faults: negative collective timeout %v", s.CollTimeout)
	}
	failedDev := make(map[[2]int]int) // (node, device) -> first DeviceFail index
	failedNode := make(map[int]int)   // node -> first NodeFail index
	for i, e := range s.Events {
		if e.Node < 0 || e.Node >= numNodes {
			return fmt.Errorf("faults: event %d (%s at %v) targets node %d of a %d-node cluster",
				i, e.Kind, e.Start, e.Node, numNodes)
		}
		if e.Kind == NodeFail {
			if numNodes == 1 {
				return fmt.Errorf("faults: event %d (%s at %v) needs a cluster — a single-node run has no node to lose",
					i, e.Kind, e.Start)
			}
			if e.Start < 0 {
				return fmt.Errorf("faults: event %d (%s node%d) starts at negative time %v", i, e.Kind, e.Node, e.Start)
			}
			// Permanent: failing an already-failed node is a schedule bug,
			// not an idempotent no-op.
			if prev, dup := failedNode[e.Node]; dup {
				return fmt.Errorf("faults: event %d (%s node%d at %v) fails node %d twice (first failed by event %d at %v)",
					i, e.Kind, e.Node, e.Start, e.Node, prev, s.Events[prev].Start)
			}
			failedNode[e.Node] = i
			continue
		}
		switch {
		case e.Device < 0 || e.Device >= devicesPerNode:
			return fmt.Errorf("faults: event %d (%s) targets device %d of a %d-GPU node",
				i, e.Kind, e.Device, devicesPerNode)
		case e.Start < 0:
			return fmt.Errorf("faults: event %d (%s) starts at negative time %v", i, e.Kind, e.Start)
		case e.Kind != DeviceFail && e.Duration < 0:
			// An empty window would silently never apply; name the event
			// and its range so a scenario author can find the bad line.
			return fmt.Errorf("faults: event %d (%s dev%d) has an empty window [%v, %v): negative duration %v (use Duration 0 to persist to end of run)",
				i, e.Kind, e.Device, e.Start, e.Start+e.Duration, e.Duration)
		case e.Kind == Slowdown || e.Kind == LinkDegrade:
			if e.Factor <= 0 || e.Factor > 1 {
				return fmt.Errorf("faults: event %d (%s) factor %v outside (0, 1]", i, e.Kind, e.Factor)
			}
		case e.Kind == DeviceDrop || e.Kind == CollStall:
			// Factor ignored; nothing to check.
		case e.Kind == DeviceFail:
			// Permanent: failing an already-failed device is a schedule bug,
			// not an idempotent no-op.
			key := [2]int{e.Node, e.Device}
			if prev, dup := failedDev[key]; dup {
				return fmt.Errorf("faults: event %d (%s node%d/dev%d at %v) fails device %d twice (first failed by event %d at %v)",
					i, e.Kind, e.Node, e.Device, e.Start, e.Device, prev, s.Events[prev].Start)
			}
			failedDev[key] = i
		default:
			return fmt.Errorf("faults: event %d has unknown kind %d", i, int(e.Kind))
		}
	}
	return nil
}

// SplitByNode partitions the schedule of a cluster run: element n holds
// node n's device-level events with Node cleared (ready for Inject into
// that node's simulation), and every node inherits the collective
// timeout. NodeFail events are cluster-level and are NOT included —
// read them with NodeFails.
func (s Schedule) SplitByNode(numNodes int) []Schedule {
	out := make([]Schedule, numNodes)
	for n := range out {
		out[n].CollTimeout = s.CollTimeout
	}
	for _, e := range s.Events {
		if e.Kind == NodeFail || e.Node < 0 || e.Node >= numNodes {
			continue
		}
		n := e.Node
		e.Node = 0
		out[n].Events = append(out[n].Events, e)
	}
	return out
}

// NodeFails returns the schedule's NodeFail events in canonical
// (Start, Node) order, so arming them is permutation-invariant.
func (s Schedule) NodeFails() []Event {
	var out []Event
	for _, e := range s.Events {
		if e.Kind == NodeFail {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// Static returns the degenerate schedule of the former SetSpeed-style
// injection: one device pinned to a speed for the whole run.
func Static(device int, speed float64) Schedule {
	return Schedule{Events: []Event{{Kind: Slowdown, Device: device, Factor: speed}}}
}

// Inject validates the schedule against the node and arms every fault
// as timed simulation events. Overlapping windows on the same device
// compose multiplicatively; each transition re-times in-flight kernels
// and collectives at its exact sim instant. Must be called before the
// simulation runs.
func Inject(node *gpusim.Node, s Schedule) error {
	if err := s.Validate(node.NumDevices()); err != nil {
		return err
	}
	if s.CollTimeout > 0 {
		node.SetCollectiveTimeout(s.CollTimeout)
	}
	eng := node.Engine()
	// Canonicalize the event order first: float products are commutative
	// but not associative, so folding windows in the caller's order would
	// make the armed factors depend on event permutation. Sorting by every
	// field makes the injected timeline a pure function of the event SET —
	// permuting Schedule.Events yields a byte-identical simulation.
	evs := append([]Event(nil), s.Events...)
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Device != b.Device {
			return a.Device < b.Device
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Duration != b.Duration {
			return a.Duration < b.Duration
		}
		return a.Factor < b.Factor
	})
	// Fold the events of each (device, channel) into a piecewise-constant
	// factor timeline and arm one engine event per transition. The factor
	// at each transition is recomputed as the product over open windows
	// (in canonical order), so overlapping windows compose
	// deterministically and reverts restore the exact surrounding value.
	// DeviceFail events are not windows; they arm separately below.
	type channel struct {
		device int
		speed  bool
	}
	var fails []Event
	byChannel := make(map[channel][]Event)
	for _, e := range evs {
		if e.Kind == DeviceFail {
			fails = append(fails, e)
			continue
		}
		ch := channel{device: e.Device, speed: e.onSpeed()}
		byChannel[ch] = append(byChannel[ch], e)
	}
	// Deterministic channel order (map iteration is randomized).
	chans := make([]channel, 0, len(byChannel))
	for ch := range byChannel {
		chans = append(chans, ch)
	}
	sort.Slice(chans, func(i, j int) bool {
		if chans[i].device != chans[j].device {
			return chans[i].device < chans[j].device
		}
		return chans[i].speed && !chans[j].speed
	})
	for _, ch := range chans {
		evs := byChannel[ch]
		cuts := make(map[time.Duration]bool)
		for _, e := range evs {
			cuts[e.Start] = true
			if e.Duration > 0 {
				cuts[e.Start+e.Duration] = true
			}
		}
		times := make([]time.Duration, 0, len(cuts))
		for t := range cuts {
			times = append(times, t)
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		dev := node.Device(ch.device)
		apply := dev.SetSpeed
		if !ch.speed {
			apply = dev.SetLinkFactor
		}
		for _, t := range times {
			f := 1.0
			for _, e := range evs {
				if e.Start <= t && (e.Duration <= 0 || t < e.Start+e.Duration) {
					f *= e.factor()
				}
			}
			factor := f
			eng.At(t, func(simTime time.Duration) { apply(factor) })
		}
	}
	// Permanent failures arm after the window transitions of the same
	// instant: a dying device's last throttle applies, then it is gone
	// (Set* on a failed device is a no-op either way).
	for _, e := range fails {
		dev := e.Device
		eng.At(e.Start, func(time.Duration) { node.FailDevice(dev) })
	}
	return nil
}
