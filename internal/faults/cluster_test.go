package faults

import (
	"strings"
	"testing"
	"time"
)

func TestValidateClusterBounds(t *testing.T) {
	cases := []struct {
		name string
		s    Schedule
		want []string // substrings the error must carry
	}{
		{
			name: "node out of range",
			s: Schedule{Events: []Event{
				{Kind: NodeFail, Node: 4, Start: time.Second},
			}},
			want: []string{"event 0", "node-fail", "node 4", "4-node cluster"},
		},
		{
			name: "negative node",
			s: Schedule{Events: []Event{
				{Kind: Slowdown, Node: -1, Device: 0, Start: 0, Duration: time.Second, Factor: 0.5},
			}},
			want: []string{"event 0", "slowdown", "node -1"},
		},
		{
			name: "device out of range on a cluster node",
			s: Schedule{Events: []Event{
				{Kind: DeviceFail, Node: 2, Device: 9, Start: time.Second},
			}},
			want: []string{"event 0", "device-fail", "device 9", "4-GPU node"},
		},
		{
			name: "duplicate node fail",
			s: Schedule{Events: []Event{
				{Kind: NodeFail, Node: 1, Start: time.Second},
				{Kind: NodeFail, Node: 1, Start: 2 * time.Second},
			}},
			want: []string{"event 1", "fails node 1 twice", "event 0", "1s"},
		},
		{
			name: "node fail at negative time",
			s: Schedule{Events: []Event{
				{Kind: NodeFail, Node: 1, Start: -time.Second},
			}},
			want: []string{"event 0", "node-fail", "negative time"},
		},
		{
			name: "same device index on different nodes is fine to fail twice only per node",
			s: Schedule{Events: []Event{
				{Kind: DeviceFail, Node: 0, Device: 1, Start: time.Second},
				{Kind: DeviceFail, Node: 1, Device: 1, Start: time.Second},
				{Kind: DeviceFail, Node: 0, Device: 1, Start: 2 * time.Second},
			}},
			want: []string{"event 2", "node0/dev1", "fails device 1 twice"},
		},
	}
	for _, c := range cases {
		err := c.s.ValidateCluster(4, 4)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		for _, w := range c.want {
			if !strings.Contains(err.Error(), w) {
				t.Errorf("%s: error %q misses %q", c.name, err, w)
			}
		}
	}
}

func TestValidateClusterAcceptsFleetSchedule(t *testing.T) {
	s := Schedule{
		CollTimeout: time.Second,
		Events: []Event{
			{Kind: NodeFail, Node: 2, Start: time.Second},
			{Kind: DeviceFail, Node: 0, Device: 3, Start: 2 * time.Second},
			{Kind: Slowdown, Node: 1, Device: 0, Start: 0, Duration: time.Second, Factor: 0.5},
		},
	}
	if err := s.ValidateCluster(3, 4); err != nil {
		t.Fatalf("valid fleet schedule rejected: %v", err)
	}
}

func TestValidateRejectsClusterEventsOnSingleNode(t *testing.T) {
	// The single-node Validate is the 1-node cluster special case:
	// NodeFail and nonzero Node targets have no meaning there.
	nf := Schedule{Events: []Event{{Kind: NodeFail, Node: 0, Start: time.Second}}}
	err := nf.Validate(4)
	if err == nil || !strings.Contains(err.Error(), "needs a cluster") {
		t.Fatalf("single-node NodeFail error = %v", err)
	}
	off := Schedule{Events: []Event{
		{Kind: Slowdown, Node: 1, Device: 0, Duration: time.Second, Factor: 0.5},
	}}
	if off.Validate(4) == nil {
		t.Fatal("single-node schedule with a nonzero node target accepted")
	}
}

func TestSplitByNode(t *testing.T) {
	s := Schedule{
		CollTimeout: 250 * time.Millisecond,
		Events: []Event{
			{Kind: Slowdown, Node: 1, Device: 2, Start: time.Second, Duration: time.Second, Factor: 0.5},
			{Kind: NodeFail, Node: 0, Start: 3 * time.Second},
			{Kind: DeviceFail, Node: 1, Device: 0, Start: 2 * time.Second},
			{Kind: CollStall, Node: 0, Device: 1, Start: time.Second, Duration: time.Second},
		},
	}
	parts := s.SplitByNode(3)
	if len(parts) != 3 {
		t.Fatalf("got %d parts", len(parts))
	}
	for n, p := range parts {
		if p.CollTimeout != s.CollTimeout {
			t.Errorf("node %d lost the collective timeout", n)
		}
		for _, e := range p.Events {
			if e.Node != 0 {
				t.Errorf("node %d event kept node target %d", n, e.Node)
			}
			if e.Kind == NodeFail {
				t.Errorf("node %d got a NodeFail event", n)
			}
		}
		// Each part must pass single-node validation as-is.
		if err := p.Validate(4); err != nil {
			t.Errorf("node %d split invalid: %v", n, err)
		}
	}
	if len(parts[0].Events) != 1 || parts[0].Events[0].Kind != CollStall {
		t.Errorf("node 0 events wrong: %v", parts[0].Events)
	}
	if len(parts[1].Events) != 2 {
		t.Errorf("node 1 got %d events, want 2", len(parts[1].Events))
	}
	if len(parts[2].Events) != 0 {
		t.Errorf("node 2 got %d events, want none", len(parts[2].Events))
	}
}

func TestNodeFailsCanonicalOrder(t *testing.T) {
	s := Schedule{Events: []Event{
		{Kind: NodeFail, Node: 2, Start: 2 * time.Second},
		{Kind: DeviceFail, Node: 0, Device: 1, Start: time.Second},
		{Kind: NodeFail, Node: 3, Start: time.Second},
		{Kind: NodeFail, Node: 1, Start: time.Second},
	}}
	got := s.NodeFails()
	if len(got) != 3 {
		t.Fatalf("got %d node fails", len(got))
	}
	wantNodes := []int{1, 3, 2} // (start, node) order
	for i, e := range got {
		if e.Node != wantNodes[i] {
			t.Fatalf("order %v, want nodes %v", got, wantNodes)
		}
	}
	// Permuting the schedule must not change the canonical order.
	s.Events[0], s.Events[2], s.Events[3] = s.Events[3], s.Events[0], s.Events[2]
	again := s.NodeFails()
	for i := range got {
		if got[i] != again[i] {
			t.Fatal("NodeFails depends on event permutation")
		}
	}
}

func TestEventStringNamesClusterTargets(t *testing.T) {
	nf := Event{Kind: NodeFail, Node: 2, Start: time.Second}
	if got := nf.String(); !strings.Contains(got, "node-fail node2") {
		t.Errorf("NodeFail renders %q", got)
	}
	df := Event{Kind: DeviceFail, Node: 1, Device: 3, Start: time.Second}
	if got := df.String(); !strings.Contains(got, "node1/dev3") {
		t.Errorf("cluster DeviceFail renders %q", got)
	}
}
