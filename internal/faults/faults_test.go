package faults

import (
	"reflect"
	"testing"
	"time"

	"liger/internal/hw"
	"liger/internal/simclock"

	"liger/internal/gpusim"
)

func testNode(t *testing.T, gpus int) (*simclock.Engine, *gpusim.Node) {
	t.Helper()
	spec := hw.V100Node()
	spec.NumGPUs = gpus
	spec.Host.LaunchLatency = 5 * time.Microsecond
	spec.Host.IssueGap = 1 * time.Microsecond
	eng := simclock.New()
	n, err := gpusim.New(eng, spec)
	if err != nil {
		t.Fatal(err)
	}
	return eng, n
}

func TestValidateBounds(t *testing.T) {
	cases := []struct {
		name string
		s    Schedule
	}{
		{"device out of range", Schedule{Events: []Event{{Kind: Slowdown, Device: 4, Factor: 0.5}}}},
		{"negative device", Schedule{Events: []Event{{Kind: Slowdown, Device: -1, Factor: 0.5}}}},
		{"negative start", Schedule{Events: []Event{{Kind: Slowdown, Start: -time.Second, Factor: 0.5}}}},
		{"zero factor", Schedule{Events: []Event{{Kind: Slowdown, Factor: 0}}}},
		{"factor above 1", Schedule{Events: []Event{{Kind: LinkDegrade, Factor: 1.2}}}},
		{"negative timeout", Schedule{CollTimeout: -time.Second}},
	}
	for _, c := range cases {
		if err := c.s.Validate(4); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	ok := Schedule{
		CollTimeout: time.Millisecond,
		Events: []Event{
			{Kind: Slowdown, Device: 3, Start: time.Millisecond, Duration: time.Millisecond, Factor: 0.5},
			{Kind: DeviceDrop, Device: 0, Start: 0, Duration: time.Millisecond},
		},
	}
	if err := ok.Validate(4); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
}

func TestInjectAppliesAndReverts(t *testing.T) {
	eng, n := testNode(t, 2)
	s := Schedule{Events: []Event{{
		Kind: Slowdown, Device: 1,
		Start: 100 * time.Microsecond, Duration: 200 * time.Microsecond, Factor: 0.5,
	}}}
	if err := Inject(n, s); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(50 * time.Microsecond)
	if got := n.Device(1).Speed(); got != 1 {
		t.Fatalf("speed %v before window", got)
	}
	eng.RunUntil(150 * time.Microsecond)
	if got := n.Device(1).Speed(); got != 0.5 {
		t.Fatalf("speed %v inside window, want 0.5", got)
	}
	eng.RunUntil(400 * time.Microsecond)
	if got := n.Device(1).Speed(); got != 1 {
		t.Fatalf("speed %v after window, want restored 1", got)
	}
}

func TestInjectOverlappingWindowsCompose(t *testing.T) {
	eng, n := testNode(t, 1)
	s := Schedule{Events: []Event{
		{Kind: Slowdown, Device: 0, Start: 0, Duration: 300 * time.Microsecond, Factor: 0.5},
		{Kind: Slowdown, Device: 0, Start: 100 * time.Microsecond, Duration: 100 * time.Microsecond, Factor: 0.8},
	}}
	if err := Inject(n, s); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(50 * time.Microsecond)
	if got := n.Device(0).Speed(); got != 0.5 {
		t.Fatalf("speed %v in first window, want 0.5", got)
	}
	eng.RunUntil(150 * time.Microsecond)
	if got := n.Device(0).Speed(); got != 0.4 {
		t.Fatalf("speed %v in overlap, want 0.4", got)
	}
	eng.RunUntil(250 * time.Microsecond)
	if got := n.Device(0).Speed(); got != 0.5 {
		t.Fatalf("speed %v after inner revert, want 0.5", got)
	}
	eng.RunUntil(350 * time.Microsecond)
	if got := n.Device(0).Speed(); got != 1 {
		t.Fatalf("speed %v after both, want 1", got)
	}
}

func TestInjectChannelsAreIndependent(t *testing.T) {
	eng, n := testNode(t, 1)
	s := Schedule{Events: []Event{
		{Kind: Slowdown, Device: 0, Start: 0, Duration: 100 * time.Microsecond, Factor: 0.7},
		{Kind: LinkDegrade, Device: 0, Start: 0, Duration: 200 * time.Microsecond, Factor: 0.3},
	}}
	if err := Inject(n, s); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(50 * time.Microsecond)
	if sp, lf := n.Device(0).Speed(), n.Device(0).LinkFactor(); sp != 0.7 || lf != 0.3 {
		t.Fatalf("speed %v / link %v, want 0.7 / 0.3", sp, lf)
	}
	eng.RunUntil(150 * time.Microsecond)
	if sp, lf := n.Device(0).Speed(), n.Device(0).LinkFactor(); sp != 1 || lf != 0.3 {
		t.Fatalf("speed %v / link %v after speed revert, want 1 / 0.3", sp, lf)
	}
}

func TestStaticIsDegenerate(t *testing.T) {
	eng, n := testNode(t, 4)
	if err := Inject(n, Static(2, 0.6)); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(time.Second)
	if got := n.Device(2).Speed(); got != 0.6 {
		t.Fatalf("static straggler speed %v, want 0.6 with no revert", got)
	}
}

func TestInjectArmsCollTimeout(t *testing.T) {
	_, n := testNode(t, 2)
	if err := Inject(n, Schedule{CollTimeout: 42 * time.Microsecond}); err != nil {
		t.Fatal(err)
	}
	if got := n.CollectiveTimeout(); got != 42*time.Microsecond {
		t.Fatalf("collective timeout %v not armed", got)
	}
}

func TestInjectRejectsOutOfRange(t *testing.T) {
	_, n := testNode(t, 2)
	if err := Inject(n, Static(5, 0.5)); err == nil {
		t.Fatal("out-of-range device accepted")
	}
}

func TestScenariosDeterministic(t *testing.T) {
	p := Profile{NumDevices: 4, Horizon: time.Second, CollTimeout: 5 * time.Millisecond, Seed: 7}
	for _, sc := range Scenarios() {
		a, b := sc.Build(p), sc.Build(p)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same profile produced different schedules:\n%+v\n%+v", sc.Name, a, b)
		}
		if err := a.Validate(p.NumDevices); err != nil {
			t.Errorf("%s: invalid schedule: %v", sc.Name, err)
		}
		if len(a.Events) == 0 {
			t.Errorf("%s: empty schedule", sc.Name)
		}
		for _, e := range a.Events {
			if e.Kind == DeviceFail {
				// Permanent by design: no window to restore.
				if e.Start > p.Horizon {
					t.Errorf("%s: failure %v past horizon", sc.Name, e)
				}
				continue
			}
			if e.Duration <= 0 {
				t.Errorf("%s: unbounded window %v (chaos scenarios must restore)", sc.Name, e)
			}
			if e.Start+e.Duration > p.Horizon {
				t.Errorf("%s: window %v exceeds horizon", sc.Name, e)
			}
		}
	}
	// Different seeds must be able to pick different devices.
	sc := Scenarios()[0]
	devs := map[int]bool{}
	for seed := int64(0); seed < 16; seed++ {
		p.Seed = seed
		devs[sc.Build(p).Events[0].Device] = true
	}
	if len(devs) < 2 {
		t.Error("seed does not vary the faulty device")
	}
}

func TestScenarioByName(t *testing.T) {
	if _, err := ScenarioByName("transient-straggler"); err != nil {
		t.Fatal(err)
	}
	if _, err := ScenarioByName("nope"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}
