package faults

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"liger/internal/gpusim"
	"liger/internal/simclock"
)

// timelineTracer records every kernel lifecycle edge into a canonical
// byte string — the full observable simulation timeline.
type timelineTracer struct {
	b strings.Builder
}

func (t *timelineTracer) KernelStart(dev int, name string, class gpusim.KernelClass, start simclock.Time) {
	fmt.Fprintf(&t.b, "S %d %s %d %d\n", dev, name, class, start)
}

func (t *timelineTracer) KernelEnd(dev int, name string, class gpusim.KernelClass, start, end simclock.Time) {
	fmt.Fprintf(&t.b, "E %d %s %d %d %d\n", dev, name, class, start, end)
}

// permutationWorkload runs a fixed kernel load under the schedule and
// returns the traced timeline.
func permutationTimeline(t *testing.T, s Schedule) string {
	t.Helper()
	eng, n := testNode(t, 4)
	tr := &timelineTracer{}
	n.SetTracer(tr)
	if err := Inject(n, s); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 4; d++ {
		st := n.NewStream(d)
		for i := 0; i < 6; i++ {
			st.Launch(gpusim.KernelSpec{
				Name: fmt.Sprintf("k%d_%d", d, i), Class: gpusim.Compute,
				Duration: 80 * time.Microsecond, ComputeDemand: 0.4, MemBWDemand: 0.2,
			})
		}
	}
	coll := n.NewCollective(4)
	for d := 0; d < 4; d++ {
		n.NewStream(d).Launch(gpusim.KernelSpec{
			Name: "ar", Class: gpusim.Comm, Duration: 60 * time.Microsecond,
			ComputeDemand: 0.05, MemBWDemand: 0.3, Coll: coll,
		})
	}
	eng.Run()
	return tr.b.String()
}

// TestInjectIsPermutationInvariant is the determinism property the
// canonical event sort in Inject exists for: the injected timeline is a
// pure function of the event SET. Overlapping windows compose as float
// products, which are commutative but not associative — without the
// sort, the caller's event order would leak into the armed factors.
func TestInjectIsPermutationInvariant(t *testing.T) {
	events := []Event{
		{Kind: Slowdown, Device: 0, Start: 20 * time.Microsecond, Duration: 200 * time.Microsecond, Factor: 0.7},
		{Kind: Slowdown, Device: 0, Start: 60 * time.Microsecond, Duration: 90 * time.Microsecond, Factor: 0.31},
		{Kind: Slowdown, Device: 0, Start: 90 * time.Microsecond, Duration: 90 * time.Microsecond, Factor: 0.13},
		{Kind: LinkDegrade, Device: 1, Start: 10 * time.Microsecond, Duration: 300 * time.Microsecond, Factor: 0.57},
		{Kind: LinkDegrade, Device: 1, Start: 50 * time.Microsecond, Duration: 100 * time.Microsecond, Factor: 0.83},
		{Kind: CollStall, Device: 2, Start: 110 * time.Microsecond, Duration: 40 * time.Microsecond},
		{Kind: Slowdown, Device: 2, Start: 30 * time.Microsecond, Duration: 250 * time.Microsecond, Factor: 0.49},
		{Kind: DeviceFail, Device: 3, Start: 170 * time.Microsecond},
	}
	want := permutationTimeline(t, Schedule{Events: events, CollTimeout: 500 * time.Microsecond})
	if want == "" {
		t.Fatal("empty baseline timeline")
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		perm := rng.Perm(len(events))
		shuffled := make([]Event, len(events))
		for i, j := range perm {
			shuffled[i] = events[j]
		}
		got := permutationTimeline(t, Schedule{Events: shuffled, CollTimeout: 500 * time.Microsecond})
		if got != want {
			t.Fatalf("permutation %v changed the timeline:\nwant:\n%s\ngot:\n%s", perm, want, got)
		}
	}
}

func TestValidateRejectsDuplicateDeviceFail(t *testing.T) {
	bad := Schedule{Events: []Event{
		{Kind: DeviceFail, Device: 2, Start: time.Millisecond},
		{Kind: Slowdown, Device: 2, Start: 0, Duration: time.Millisecond, Factor: 0.5},
		{Kind: DeviceFail, Device: 2, Start: 2 * time.Millisecond},
	}}
	if err := bad.Validate(4); err == nil {
		t.Fatal("schedule failing a device twice accepted")
	}
	ok := Schedule{Events: []Event{
		{Kind: DeviceFail, Device: 2, Start: time.Millisecond},
		{Kind: DeviceFail, Device: 3, Start: time.Millisecond},
	}}
	if err := ok.Validate(4); err != nil {
		t.Fatalf("distinct-device failures rejected: %v", err)
	}
}
