package faults

import (
	"fmt"
	"math/rand"
	"time"
)

// Profile parameterizes scenario construction for one concrete run.
type Profile struct {
	// NumDevices is the node size; the faulty device is drawn from it.
	NumDevices int
	// Horizon is the expected span of the arrival trace; windows are
	// placed as fractions of it so scenarios scale with run length.
	Horizon time.Duration
	// CollTimeout is the collective watchdog scenarios with hang
	// semantics arm (a few times the solo batch duration is a good
	// setting: long enough that merely-slow groups never trip it).
	CollTimeout time.Duration
	// Seed drives every random choice (device pick, window jitter); the
	// same profile always yields byte-identical schedules.
	Seed int64
}

// Scenario is a named fault-schedule builder.
type Scenario struct {
	Name        string
	Description string
	Build       func(p Profile) Schedule
}

// Scenarios returns the preset chaos scenarios in presentation order.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:        "transient-straggler",
			Description: "one GPU thermally throttles to 55% mid-run, then recovers",
			Build: func(p Profile) Schedule {
				rng := rand.New(rand.NewSource(p.Seed))
				dev := rng.Intn(p.NumDevices)
				start := time.Duration(float64(p.Horizon) * 0.25)
				return Schedule{Events: []Event{{
					Kind: Slowdown, Device: dev, Start: start,
					Duration: time.Duration(float64(p.Horizon) * 0.40), Factor: 0.55,
				}}}
			},
		},
		{
			Name:        "flaky-link",
			Description: "one GPU's link flaps to 30% bandwidth in recurring jittered windows",
			Build: func(p Profile) Schedule {
				rng := rand.New(rand.NewSource(p.Seed))
				dev := rng.Intn(p.NumDevices)
				var evs []Event
				// Four windows of ~8% of the run each, spread across the
				// middle 80% with per-window jitter.
				for i := 0; i < 4; i++ {
					base := 0.10 + 0.20*float64(i)
					jitter := 0.04 * rng.Float64()
					evs = append(evs, Event{
						Kind: LinkDegrade, Device: dev,
						Start:    time.Duration(float64(p.Horizon) * (base + jitter)),
						Duration: time.Duration(float64(p.Horizon) * 0.08),
						Factor:   0.30,
					})
				}
				return Schedule{Events: evs}
			},
		},
		{
			Name:        "coll-stall",
			Description: "one GPU's collectives hang in a window; the watchdog aborts them for retry",
			Build: func(p Profile) Schedule {
				rng := rand.New(rand.NewSource(p.Seed))
				dev := rng.Intn(p.NumDevices)
				return Schedule{
					CollTimeout: p.CollTimeout,
					Events: []Event{{
						Kind: CollStall, Device: dev,
						Start:    time.Duration(float64(p.Horizon) * 0.35),
						Duration: time.Duration(float64(p.Horizon) * 0.15),
					}},
				}
			},
		},
		{
			Name:        "drop-restore",
			Description: "one GPU falls off the bus for a window, then restores; collectives abort for retry",
			Build: func(p Profile) Schedule {
				rng := rand.New(rand.NewSource(p.Seed))
				dev := rng.Intn(p.NumDevices)
				return Schedule{
					CollTimeout: p.CollTimeout,
					Events: []Event{{
						Kind: DeviceDrop, Device: dev,
						Start:    time.Duration(float64(p.Horizon) * 0.45),
						Duration: time.Duration(float64(p.Horizon) * 0.12),
					}},
				}
			},
		},
		{
			Name:        "dead-device",
			Description: "one GPU throttles, then fails permanently; the runtime re-plans onto the survivors",
			Build: func(p Profile) Schedule {
				rng := rand.New(rand.NewSource(p.Seed))
				dev := rng.Intn(p.NumDevices)
				// A dying-hardware shape: thermal distress first, then the
				// device falls off for good. The slowdown window composes
				// with the permanent failure (Set* after death is moot).
				return Schedule{
					CollTimeout: p.CollTimeout,
					Events: []Event{
						{
							Kind: Slowdown, Device: dev,
							Start:    time.Duration(float64(p.Horizon) * 0.30),
							Duration: time.Duration(float64(p.Horizon) * 0.15),
							Factor:   0.60,
						},
						{
							Kind: DeviceFail, Device: dev,
							Start: time.Duration(float64(p.Horizon) * 0.45),
						},
					},
				}
			},
		},
	}
}

// ScenarioByName finds a preset.
func ScenarioByName(name string) (Scenario, error) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("faults: unknown scenario %q", name)
}
