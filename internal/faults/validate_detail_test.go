package faults

import (
	"strings"
	"testing"
	"time"
)

// The validation errors are read by scenario authors hunting for one
// bad line in a long fault plan, so they must name the offending event
// index, kind, device, and time range — not just reject.

func TestValidateNegativeDurationDetail(t *testing.T) {
	s := Schedule{Events: []Event{
		{Kind: Slowdown, Device: 0, Start: time.Second, Duration: 10 * time.Millisecond, Factor: 0.5},
		{Kind: LinkDegrade, Device: 2, Start: 3 * time.Second, Duration: -time.Second, Factor: 0.5},
	}}
	err := s.Validate(4)
	if err == nil {
		t.Fatal("negative duration accepted")
	}
	for _, want := range []string{"event 1", "link-degrade", "dev2", "3s", "negative duration -1s", "persist to end"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestValidateDuplicateDeviceFailDetail(t *testing.T) {
	s := Schedule{Events: []Event{
		{Kind: DeviceFail, Device: 1, Start: time.Second},
		{Kind: Slowdown, Device: 0, Start: 0, Duration: time.Second, Factor: 0.5},
		{Kind: DeviceFail, Device: 1, Start: 2 * time.Second},
	}}
	err := s.Validate(4)
	if err == nil {
		t.Fatal("duplicate device-fail accepted")
	}
	for _, want := range []string{"event 2", "fails device 1 twice", "event 0", "1s"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestValidatePersistToEndStillAccepted(t *testing.T) {
	// Duration 0 is the documented persist-to-end shape (what Static
	// builds); tightening the negative-duration check must not break it.
	s := Static(1, 0.5)
	if err := s.Validate(4); err != nil {
		t.Errorf("persist-to-end rejected: %v", err)
	}
}
