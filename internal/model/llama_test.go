package model

import "testing"

func TestLLaMA70BSpec(t *testing.T) {
	s := LLaMA70B()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	b := float64(s.Params()) / 1e9
	if b < 64 || b > 74 {
		t.Fatalf("LLaMA-70B params %.1fB outside [64, 74]", b)
	}
	if s.NumKVHeads() != 8 || s.KVDim() != 8*128 {
		t.Fatalf("GQA dims wrong: kv heads %d, kv dim %d", s.NumKVHeads(), s.KVDim())
	}
	if s.FFNHidden() != 28672 {
		t.Fatalf("FFN dim %d", s.FFNHidden())
	}
}

func TestGQAShrinksKVCache(t *testing.T) {
	mha := LLaMA70B()
	mha.KVHeads = 0 // full multi-head
	gqa := LLaMA70B()
	ratio := float64(mha.KVCacheBytes(1024)) / float64(gqa.KVCacheBytes(1024))
	if ratio != 8 {
		t.Fatalf("GQA cache shrink %vx, want 8x (64/8 heads)", ratio)
	}
}

func TestGQAShrinksQKVProjection(t *testing.T) {
	w := Workload{Batch: 2, SeqLen: 64, Phase: Context}
	var qkvN int
	for _, op := range LayerOps(LLaMA70B(), w) {
		if op.Name == "qkv" {
			qkvN = op.N
		}
	}
	// Q (8192) + K,V (2 x 1024).
	if qkvN != 8192+2*1024 {
		t.Fatalf("qkv cols %d", qkvN)
	}
}

func TestGatedFFNDoublesUpProjection(t *testing.T) {
	w := Workload{Batch: 2, SeqLen: 64, Phase: Context}
	var fc1N, fc2K int
	for _, op := range LayerOps(LLaMA70B(), w) {
		switch op.Name {
		case "fc1":
			fc1N = op.N
		case "fc2":
			fc2K = op.K
		}
	}
	if fc1N != 2*28672 {
		t.Fatalf("gated fc1 cols %d, want 2x FFN dim", fc1N)
	}
	if fc2K != 28672 {
		t.Fatalf("fc2 inner %d", fc2K)
	}
}

func TestGQAValidation(t *testing.T) {
	bad := LLaMA70B()
	bad.KVHeads = 7 // 64 % 7 != 0
	if bad.Validate() == nil {
		t.Fatal("ungrouped KV heads accepted")
	}
	bad = LLaMA70B()
	bad.KVHeads = 100
	if bad.Validate() == nil {
		t.Fatal("KV heads above heads accepted")
	}
}

func TestTable1ModelsUnchangedByExtensions(t *testing.T) {
	// The GQA/gated-FFN extension must not alter the paper models.
	s := OPT30B()
	if s.NumKVHeads() != s.Heads || s.KVDim() != s.Hidden {
		t.Fatal("OPT-30B attention dims changed")
	}
	w := Workload{Batch: 2, SeqLen: 64, Phase: Context}
	for _, op := range LayerOps(s, w) {
		switch op.Name {
		case "qkv":
			if op.N != 3*s.Hidden {
				t.Fatalf("qkv cols %d", op.N)
			}
		case "fc1":
			if op.N != 4*s.Hidden {
				t.Fatalf("fc1 cols %d", op.N)
			}
		}
	}
}
