package model

import "fmt"

// Phase distinguishes the two execution regimes of generative serving
// (§4.3): the initial conditioning (context) phase processes the whole
// prompt at once; the incremental sampling (decode) phase produces one
// token at a time against a KV cache.
type Phase int

const (
	// Context processes SeqLen tokens per request in one forward pass —
	// the paper's "general tasks" (§4.2).
	Context Phase = iota
	// Decode processes one new token per request against a KV cache of
	// CtxLen prior tokens (§4.3).
	Decode
)

func (p Phase) String() string {
	if p == Decode {
		return "decode"
	}
	return "context"
}

// Workload fixes the input shape of one inference.
type Workload struct {
	Batch int
	// SeqLen is the prompt length (Context) per request.
	SeqLen int
	// CtxLen is the KV-cache length (Decode) per request.
	CtxLen int
	Phase  Phase
}

// Tokens returns the number of tokens entering each GEMM (the row
// dimension m).
func (w Workload) Tokens() int {
	if w.Phase == Decode {
		return w.Batch
	}
	return w.Batch * w.SeqLen
}

// Validate reports bad shapes.
func (w Workload) Validate() error {
	if w.Batch <= 0 {
		return fmt.Errorf("model: batch %d must be positive", w.Batch)
	}
	if w.Phase == Context && w.SeqLen <= 0 {
		return fmt.Errorf("model: context workload needs positive seq len")
	}
	if w.Phase == Decode && w.CtxLen <= 0 {
		return fmt.Errorf("model: decode workload needs positive ctx len")
	}
	return nil
}

// OpKind enumerates logical operator types in a transformer layer.
type OpKind int

const (
	OpLayerNorm OpKind = iota
	OpGEMM
	OpAttention
	OpGeLU
	OpResidual
	OpEmbedding
)

func (k OpKind) String() string {
	switch k {
	case OpLayerNorm:
		return "layernorm"
	case OpGEMM:
		return "gemm"
	case OpAttention:
		return "attention"
	case OpGeLU:
		return "gelu"
	case OpResidual:
		return "residual"
	case OpEmbedding:
		return "embedding"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// PartitionDim says which GEMM dimension tensor parallelism splits.
// Megatron splits QKV and FC1 column-wise (N) and the attention output
// and FC2 row-wise (K); a row-wise split leaves partial sums that the
// trailing all-reduce combines (§2.2.1: two all-reduces per layer).
type PartitionDim int

const (
	// PartNone marks ops replicated on every tensor-parallel rank.
	PartNone PartitionDim = iota
	// PartCols splits the GEMM output columns (N).
	PartCols
	// PartRows splits the GEMM inner dimension (K); requires an
	// all-reduce afterwards.
	PartRows
	// PartHeads splits attention heads.
	PartHeads
)

// Op is one logical operator of the full (unpartitioned) model.
type Op struct {
	Name string
	Kind OpKind
	// GEMM shape (full model): M×K times K×N.
	M, N, K int
	// Attention shape. KVHeads < Heads means grouped-query attention;
	// the decode phase streams KVHeads worth of cache.
	Heads, KVHeads, HeadDim, Seq, Ctx, Batch int
	// Bytes moved for streaming ops.
	Bytes int64
	// Partition describes how tensor parallelism splits this op.
	Partition PartitionDim
	// ReduceAfter marks the Megatron synchronization points: under
	// tensor parallelism an all-reduce of the activation follows this
	// op.
	ReduceAfter bool
}

// LayerOps returns the logical operators of one transformer layer for
// the given workload, in execution order. The returned graph has the
// kernel-type structure Liger schedules around: a run of computation
// ops ending at each ReduceAfter switch point (§3.4).
func LayerOps(s Spec, w Workload) []Op {
	tokens := w.Tokens()
	h := s.Hidden
	actBytes := int64(tokens) * int64(h) * 2

	attn := Op{
		Name: "attn", Kind: OpAttention,
		Heads: s.Heads, KVHeads: s.NumKVHeads(), HeadDim: s.HeadDim(), Batch: w.Batch,
		Partition: PartHeads,
	}
	if w.Phase == Decode {
		attn.Ctx = w.CtxLen
		attn.Seq = 1
	} else {
		attn.Seq = w.SeqLen
	}

	// QKV projection width: h for Q plus K and V at the (possibly
	// grouped) KV width.
	qkvCols := h + 2*s.KVDim()
	// Gated FFN computes gate and up projections (2f columns) before the
	// activation combines them.
	fcCols := s.FFNHidden()
	if s.GatedFFN {
		fcCols = 2 * s.FFNHidden()
	}
	return []Op{
		{Name: "ln1", Kind: OpLayerNorm, Bytes: actBytes, Partition: PartNone},
		{Name: "qkv", Kind: OpGEMM, M: tokens, N: qkvCols, K: h, Partition: PartCols},
		attn,
		{Name: "attn_out", Kind: OpGEMM, M: tokens, N: h, K: h, Partition: PartRows, ReduceAfter: true},
		{Name: "res1", Kind: OpResidual, Bytes: actBytes, Partition: PartNone},
		{Name: "ln2", Kind: OpLayerNorm, Bytes: actBytes, Partition: PartNone},
		{Name: "fc1", Kind: OpGEMM, M: tokens, N: fcCols, K: h, Partition: PartCols},
		{Name: "gelu", Kind: OpGeLU, Bytes: int64(tokens) * int64(fcCols) * 2, Partition: PartNone},
		{Name: "fc2", Kind: OpGEMM, M: tokens, N: h, K: s.FFNHidden(), Partition: PartRows, ReduceAfter: true},
		{Name: "res2", Kind: OpResidual, Bytes: actBytes, Partition: PartNone},
	}
}

// PreOps returns the operators before the transformer stack (embedding
// lookup).
func PreOps(s Spec, w Workload) []Op {
	return []Op{
		{Name: "embed", Kind: OpEmbedding, M: w.Tokens(), N: s.Hidden, Partition: PartNone,
			Bytes: int64(w.Tokens()) * int64(s.Hidden) * 2},
	}
}

// PostOps returns the operators after the stack: the final layernorm,
// and in decode mode the LM head projecting onto the vocabulary to
// sample the next token.
func PostOps(s Spec, w Workload) []Op {
	tokens := w.Tokens()
	ops := []Op{
		{Name: "ln_f", Kind: OpLayerNorm, Bytes: int64(tokens) * int64(s.Hidden) * 2, Partition: PartNone},
	}
	if w.Phase == Decode {
		ops = append(ops, Op{
			Name: "lm_head", Kind: OpGEMM, M: tokens, N: s.Vocab, K: s.Hidden,
			Partition: PartCols,
		})
	}
	return ops
}

// KVCacheBytes returns the per-request KV-cache footprint at context
// length ctx, across all layers. Grouped-query attention shrinks it by
// the head-grouping factor.
func (s Spec) KVCacheBytes(ctx int) int64 {
	return 2 * 2 * int64(s.Layers) * int64(ctx) * int64(s.KVDim())
}
