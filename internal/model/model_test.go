package model

import (
	"testing"
	"testing/quick"
)

func TestTable1Specs(t *testing.T) {
	cases := []struct {
		spec          Spec
		layers, heads int
		hidden        int
		minB, maxB    float64 // parameter count bounds, billions
	}{
		{OPT30B(), 48, 56, 7168, 28, 32},
		{OPT66B(), 64, 72, 9216, 63, 69},
		{GLM130B(), 70, 96, 12288, 124, 134},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); err != nil {
			t.Fatalf("%s: %v", c.spec.Name, err)
		}
		if c.spec.Layers != c.layers || c.spec.Heads != c.heads || c.spec.Hidden != c.hidden {
			t.Fatalf("%s: wrong Table 1 dimensions %+v", c.spec.Name, c.spec)
		}
		b := float64(c.spec.Params()) / 1e9
		if b < c.minB || b > c.maxB {
			t.Errorf("%s: %.1fB params outside [%v, %v]", c.spec.Name, b, c.minB, c.maxB)
		}
	}
}

func TestWeightBytesMatchTable1(t *testing.T) {
	// Table 1 lists FP16 sizes 60 GB / 132 GB / 260 GB.
	cases := []struct {
		spec Spec
		gb   float64
	}{
		{OPT30B(), 60}, {OPT66B(), 132}, {GLM130B(), 260},
	}
	for _, c := range cases {
		gb := float64(c.spec.WeightBytes()) / 1e9
		if gb < 0.88*c.gb || gb > 1.12*c.gb {
			t.Errorf("%s: %.0f GB, Table 1 says %v GB", c.spec.Name, gb, c.gb)
		}
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{Name: "neg", Layers: -1, Heads: 8, Hidden: 512, FFNMult: 4},
		{Name: "indiv", Layers: 2, Heads: 7, Hidden: 512, FFNMult: 4},
		{Name: "noffn", Layers: 2, Heads: 8, Hidden: 512, FFNMult: 0},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: invalid spec accepted", s.Name)
		}
	}
}

func TestWithLayers(t *testing.T) {
	s := OPT30B().WithLayers(12)
	if s.Layers != 12 {
		t.Fatalf("Layers = %d", s.Layers)
	}
	if s.Hidden != OPT30B().Hidden {
		t.Fatal("WithLayers changed hidden size")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"OPT-30B", "OPT-66B", "GLM-130B", "tiny"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestWorkloadTokens(t *testing.T) {
	w := Workload{Batch: 4, SeqLen: 32, Phase: Context}
	if w.Tokens() != 128 {
		t.Fatalf("context tokens = %d, want 128", w.Tokens())
	}
	d := Workload{Batch: 4, CtxLen: 100, Phase: Decode}
	if d.Tokens() != 4 {
		t.Fatalf("decode tokens = %d, want 4 (one token per request)", d.Tokens())
	}
}

func TestWorkloadValidate(t *testing.T) {
	good := []Workload{
		{Batch: 1, SeqLen: 16, Phase: Context},
		{Batch: 32, CtxLen: 16, Phase: Decode},
	}
	for _, w := range good {
		if err := w.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", w, err)
		}
	}
	bad := []Workload{
		{Batch: 0, SeqLen: 16, Phase: Context},
		{Batch: 2, SeqLen: 0, Phase: Context},
		{Batch: 2, CtxLen: 0, Phase: Decode},
	}
	for _, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("%+v accepted", w)
		}
	}
}

func TestLayerOpsStructure(t *testing.T) {
	s := OPT30B()
	w := Workload{Batch: 2, SeqLen: 64, Phase: Context}
	ops := LayerOps(s, w)
	var gemms, reduces int
	for _, op := range ops {
		if op.Kind == OpGEMM {
			gemms++
		}
		if op.ReduceAfter {
			reduces++
		}
	}
	if gemms != 4 {
		t.Fatalf("layer has %d GEMMs, want 4 (qkv, attn_out, fc1, fc2)", gemms)
	}
	if reduces != 2 {
		t.Fatalf("layer has %d reduce points, want 2 (Megatron)", reduces)
	}
	// Reduce points must follow the row-partitioned GEMMs.
	for _, op := range ops {
		if op.ReduceAfter && op.Partition != PartRows {
			t.Fatalf("reduce after %s which is not row-partitioned", op.Name)
		}
	}
}

func TestLayerOpsGEMMShapes(t *testing.T) {
	s := OPT30B()
	w := Workload{Batch: 2, SeqLen: 64, Phase: Context}
	tokens := w.Tokens()
	for _, op := range LayerOps(s, w) {
		if op.Kind != OpGEMM {
			continue
		}
		if op.M != tokens {
			t.Fatalf("%s: M=%d, want %d", op.Name, op.M, tokens)
		}
		switch op.Name {
		case "qkv":
			if op.N != 3*s.Hidden || op.K != s.Hidden {
				t.Fatalf("qkv shape %dx%d", op.N, op.K)
			}
		case "fc1":
			if op.N != 4*s.Hidden || op.K != s.Hidden {
				t.Fatalf("fc1 shape %dx%d", op.N, op.K)
			}
		case "fc2":
			if op.N != s.Hidden || op.K != 4*s.Hidden {
				t.Fatalf("fc2 shape %dx%d", op.N, op.K)
			}
		}
	}
}

func TestDecodeLayerOps(t *testing.T) {
	s := GLM130B()
	w := Workload{Batch: 32, CtxLen: 128, Phase: Decode}
	for _, op := range LayerOps(s, w) {
		if op.Kind == OpAttention {
			if op.Ctx != 128 || op.Seq != 1 {
				t.Fatalf("decode attention ctx=%d seq=%d", op.Ctx, op.Seq)
			}
		}
		if op.Kind == OpGEMM && op.M != 32 {
			t.Fatalf("decode GEMM rows = %d, want batch 32", op.M)
		}
	}
}

func TestPostOpsLMHeadOnlyInDecode(t *testing.T) {
	s := OPT30B()
	ctx := PostOps(s, Workload{Batch: 2, SeqLen: 16, Phase: Context})
	for _, op := range ctx {
		if op.Name == "lm_head" {
			t.Fatal("context phase should not run lm_head in this harness")
		}
	}
	dec := PostOps(s, Workload{Batch: 2, CtxLen: 16, Phase: Decode})
	found := false
	for _, op := range dec {
		if op.Name == "lm_head" {
			found = true
		}
	}
	if !found {
		t.Fatal("decode phase missing lm_head")
	}
}

func TestKVCacheBytes(t *testing.T) {
	s := OPT30B()
	// 2 (K,V) * 2 bytes * layers * ctx * hidden.
	want := int64(2 * 2 * 48 * 100 * 7168)
	if got := s.KVCacheBytes(100); got != want {
		t.Fatalf("KVCacheBytes = %d, want %d", got, want)
	}
}

// Property: parameter count grows monotonically with each dimension.
func TestPropertyParamsMonotone(t *testing.T) {
	f := func(l, h uint8) bool {
		layers := int(l%32) + 1
		hidden := (int(h%32) + 1) * 64
		s := Spec{Name: "p", Layers: layers, Heads: 8, Hidden: hidden, FFNMult: 4, Vocab: 1000}
		bigger := s
		bigger.Layers++
		wider := s
		wider.Hidden += 64
		return bigger.Params() > s.Params() && wider.Params() > s.Params()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFig4ModelRange(t *testing.T) {
	// Fig. 4 spans models from 8 to 175 billion parameters.
	b8 := float64(GPT8B().Params()) / 1e9
	if b8 < 7 || b8 > 9.5 {
		t.Errorf("GPT-8B params %.1fB", b8)
	}
	b175 := float64(GPT175B().Params()) / 1e9
	if b175 < 168 || b175 > 182 {
		t.Errorf("GPT-175B params %.1fB", b175)
	}
	if err := GPT8B().Validate(); err != nil {
		t.Error(err)
	}
	if err := GPT175B().Validate(); err != nil {
		t.Error(err)
	}
}
