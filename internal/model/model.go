// Package model describes the transformer large language models the
// paper serves (Table 1: OPT-30B, OPT-66B, GLM-130B) as logical
// per-layer operator graphs. The graphs are parallelism-agnostic: the
// parallel package partitions them into per-device kernels, and the
// costmodel package assigns durations.
package model

import (
	"fmt"
)

// Spec is a decoder-only transformer configuration.
type Spec struct {
	Name   string
	Layers int
	Heads  int
	Hidden int
	// FFNMult is the feed-forward expansion factor (4 for all paper
	// models); FFNDim overrides it when non-zero (LLaMA-style models use
	// non-integer multiples).
	FFNMult int
	FFNDim  int
	// Vocab is the vocabulary size, used for embedding/LM-head costs.
	Vocab int
	// KVHeads enables grouped-query attention when set below Heads
	// (0 means Heads: classic multi-head attention, as in all Table 1
	// models). GQA shrinks the K/V projections and the KV cache.
	KVHeads int
	// GatedFFN selects a SwiGLU-style gated feed-forward block: the
	// up-projection doubles (gate and up matrices) and the activation
	// combines them.
	GatedFFN bool
}

// Validate reports configuration errors.
func (s Spec) Validate() error {
	switch {
	case s.Layers <= 0 || s.Heads <= 0 || s.Hidden <= 0:
		return fmt.Errorf("model: %q has non-positive dimensions", s.Name)
	case s.Hidden%s.Heads != 0:
		return fmt.Errorf("model: %q hidden %d not divisible by heads %d", s.Name, s.Hidden, s.Heads)
	case s.FFNMult <= 0 && s.FFNDim <= 0:
		return fmt.Errorf("model: %q needs an FFN size", s.Name)
	case s.KVHeads < 0 || s.KVHeads > s.Heads:
		return fmt.Errorf("model: %q KV heads %d outside [0, %d]", s.Name, s.KVHeads, s.Heads)
	case s.KVHeads > 0 && s.Heads%s.KVHeads != 0:
		return fmt.Errorf("model: %q heads %d not grouped evenly by %d KV heads", s.Name, s.Heads, s.KVHeads)
	}
	return nil
}

// HeadDim returns the per-head dimension.
func (s Spec) HeadDim() int { return s.Hidden / s.Heads }

// NumKVHeads returns the key/value head count (Heads unless GQA).
func (s Spec) NumKVHeads() int {
	if s.KVHeads > 0 {
		return s.KVHeads
	}
	return s.Heads
}

// KVDim returns the width of each of the K and V projections.
func (s Spec) KVDim() int { return s.NumKVHeads() * s.HeadDim() }

// FFNHidden returns the feed-forward inner dimension.
func (s Spec) FFNHidden() int {
	if s.FFNDim > 0 {
		return s.FFNDim
	}
	return s.FFNMult * s.Hidden
}

// ffnMatrices is 3 for gated (gate, up, down) and 2 otherwise.
func (s Spec) ffnMatrices() int64 {
	if s.GatedFFN {
		return 3
	}
	return 2
}

// Params returns the approximate parameter count from the layer
// dimensions plus the embedding table.
func (s Spec) Params() int64 {
	h := int64(s.Hidden)
	f := int64(s.FFNHidden())
	attn := h*h + 2*h*int64(s.KVDim()) + h*h // Q, K+V, output projection
	perLayer := attn + s.ffnMatrices()*h*f
	return int64(s.Layers)*perLayer + int64(s.Vocab)*h
}

// WeightBytes returns the FP16 model size in bytes.
func (s Spec) WeightBytes() int64 { return 2 * s.Params() }

// WithLayers returns a copy with a different layer count — the paper's
// Fig. 3 trick of shrinking stacked identical layers so a model fits on
// fewer devices without changing per-layer behaviour.
func (s Spec) WithLayers(layers int) Spec {
	s.Name = fmt.Sprintf("%s-l%d", s.Name, layers)
	s.Layers = layers
	return s
}

// OPT30B returns the OPT-30B configuration from Table 1
// (48 layers, 56 heads, hidden 7168, FP16 ≈ 60 GB).
func OPT30B() Spec {
	return Spec{Name: "OPT-30B", Layers: 48, Heads: 56, Hidden: 7168, FFNMult: 4, Vocab: 50272}
}

// OPT66B returns the OPT-66B configuration from Table 1
// (64 layers, 72 heads, hidden 9216, FP16 ≈ 132 GB).
func OPT66B() Spec {
	return Spec{Name: "OPT-66B", Layers: 64, Heads: 72, Hidden: 9216, FFNMult: 4, Vocab: 50272}
}

// GLM130B returns the GLM-130B configuration from Table 1
// (70 layers, 96 heads, hidden 12288, FP16 ≈ 260 GB; same layer setup
// as GPT-3).
func GLM130B() Spec {
	return Spec{Name: "GLM-130B", Layers: 70, Heads: 96, Hidden: 12288, FFNMult: 4, Vocab: 150528}
}

// GPT8B and GPT175B bound the Fig. 4 kernel-duration study (models from
// 8 to 175 billion parameters).
func GPT8B() Spec {
	return Spec{Name: "GPT-8B", Layers: 32, Heads: 36, Hidden: 4608, FFNMult: 4, Vocab: 50272}
}

// GPT175B is the GPT-3 layer setup.
func GPT175B() Spec {
	return Spec{Name: "GPT-175B", Layers: 96, Heads: 96, Hidden: 12288, FFNMult: 4, Vocab: 50272}
}

// LLaMA70B returns a LLaMA-2-70B-style configuration: grouped-query
// attention (8 KV heads) and a SwiGLU feed-forward block — an extension
// beyond the paper's Table 1 showing the runtime handles modern
// architectures.
func LLaMA70B() Spec {
	return Spec{
		Name: "LLaMA-70B", Layers: 80, Heads: 64, Hidden: 8192,
		FFNDim: 28672, FFNMult: 4, Vocab: 32000,
		KVHeads: 8, GatedFFN: true,
	}
}

// Tiny returns a small model for fast tests.
func Tiny() Spec {
	return Spec{Name: "tiny", Layers: 4, Heads: 8, Hidden: 512, FFNMult: 4, Vocab: 1024}
}

// Table1 returns the paper's evaluated models in presentation order.
func Table1() []Spec { return []Spec{OPT30B(), OPT66B(), GLM130B()} }

// ByName looks up any built-in model.
func ByName(name string) (Spec, error) {
	for _, s := range []Spec{OPT30B(), OPT66B(), GLM130B(), GPT8B(), GPT175B(), LLaMA70B(), Tiny()} {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("model: unknown model %q", name)
}
