package metrics

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"liger/internal/gpusim"
	"liger/internal/serve"
	"liger/internal/simclock"
	"liger/internal/trace"
)

func sampleRun() (serve.Result, *trace.Recorder) {
	us := func(n int) simclock.Time { return simclock.Time(n) * simclock.Time(time.Microsecond) }
	rec := trace.NewRecorder()
	// Request 0: compute [0,100], comm [100,140]; request 1: compute
	// [140,200] with a cancelled kernel.
	rec.KernelSpan(gpusim.KernelSpan{Device: 0, Name: "gemm", Class: gpusim.Compute,
		Start: us(0), End: us(100), Batch: 0, Req: 0, Coll: -1})
	rec.KernelSpan(gpusim.KernelSpan{Device: 0, Name: "ar", Class: gpusim.Comm,
		Start: us(100), End: us(140), Batch: 0, Req: 0, Coll: 3})
	rec.KernelSpan(gpusim.KernelSpan{Device: 0, Name: "gemm", Class: gpusim.Compute,
		Start: us(140), End: us(200), Batch: 1, Req: 1, Coll: -1,
		Cancelled: gpusim.CancelDeviceFail})
	rec.DeviceFailed(0, us(200))
	res := serve.Result{
		Runtime:   "Liger",
		Completed: 2, Requests: 4, Retries: 1,
		Latencies: []time.Duration{140 * time.Microsecond, 300 * time.Microsecond},
		Makespan:  time.Millisecond,
		PerRequest: []serve.RequestLat{
			{Req: 0, Arrival: 0, Done: 140 * time.Microsecond, QueueWait: 0},
			{Req: 1, Arrival: 50 * time.Microsecond, Done: 350 * time.Microsecond,
				QueueWait: 20 * time.Microsecond, Deferral: 10 * time.Microsecond, Retries: 1},
		},
	}
	return res, rec
}

func TestFromRunDecomposesRequests(t *testing.T) {
	res, rec := sampleRun()
	s := FromRun(res, rec)
	if len(s.Requests) != 2 {
		t.Fatalf("%d request rows, want 2", len(s.Requests))
	}
	r0 := s.Requests[0]
	if r0.ComputeNS != 100_000 || r0.CommNS != 40_000 || r0.StallNS != 0 || r0.Kernels != 2 {
		t.Fatalf("request 0 device decomposition wrong: %+v", r0)
	}
	r1 := s.Requests[1]
	if r1.CancelledKernels != 1 || r1.Retries != 1 || r1.DeferralNS != 10_000 {
		t.Fatalf("request 1 decomposition wrong: %+v", r1)
	}
	if r1.TotalNS != 300_000 {
		t.Fatalf("request 1 total %d, want done-arrival", r1.TotalNS)
	}
	if s.Counters["kernel_spans_cancelled"] != 1 || s.Counters["device_failures"] != 1 {
		t.Fatalf("trace counters wrong: %v", s.Counters)
	}
	if s.Histograms["latency"].Count != 2 || s.Histograms["latency"].MaxNS != 300_000 {
		t.Fatalf("latency histogram wrong: %+v", s.Histograms["latency"])
	}
}

func TestFromRunWithoutRecorder(t *testing.T) {
	res, _ := sampleRun()
	s := FromRun(res, nil)
	if _, ok := s.Counters["kernel_spans"]; ok {
		t.Fatal("trace counters present without a recorder")
	}
	if len(s.Requests) != 2 || s.Requests[0].Kernels != 0 {
		t.Fatalf("serving-side rows should survive without a recorder: %+v", s.Requests)
	}
}

func TestWriteJSONDeterministicAndValid(t *testing.T) {
	res, rec := sampleRun()
	var a, b bytes.Buffer
	if err := FromRun(res, rec).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := FromRun(res, rec).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical snapshots serialized differently")
	}
	var doc map[string]any
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if a.Bytes()[a.Len()-1] != '\n' {
		t.Fatal("missing trailing newline")
	}
}

func TestWindowedTimeSeries(t *testing.T) {
	res, rec := sampleRun()
	res.Deadline = 200 * time.Microsecond
	s := FromRunOpts(res, rec, Options{Window: 250 * time.Microsecond})
	if s.WindowNS != 250_000 {
		t.Fatalf("window_ns %d, want 250000", s.WindowNS)
	}
	if len(s.Windows) != 4 {
		t.Fatalf("%d windows over a 1ms run, want 4", len(s.Windows))
	}
	w0, w1 := s.Windows[0], s.Windows[1]
	// Request 0 resolves at 140µs (window 0, within deadline), request
	// 1 at 350µs (window 1, 300µs > 200µs deadline).
	if w0.Completed != 1 || w0.P99NS != 140_000 || w0.SLOMissRate != 0 {
		t.Fatalf("window 0 wrong: %+v", w0)
	}
	if w0.Throughput != 4000 {
		t.Fatalf("window 0 throughput %v, want 4000/s", w0.Throughput)
	}
	if w1.Completed != 1 || w1.P99NS != 300_000 || w1.SLOMissRate != 1 {
		t.Fatalf("window 1 wrong: %+v", w1)
	}
	// Device 0 is busy [0, 200µs]: 80% of window 0, idle afterwards.
	if w0.Utilization != 0.8 {
		t.Fatalf("window 0 utilization %v, want 0.8", w0.Utilization)
	}
	if s.Windows[2].Utilization != 0 || s.Windows[3].Completed != 0 {
		t.Fatalf("tail windows should be empty: %+v", s.Windows[2:])
	}
}

func TestWindowsDisabledByDefault(t *testing.T) {
	res, rec := sampleRun()
	if s := FromRun(res, rec); s.Windows != nil || s.WindowNS != 0 {
		t.Fatal("FromRun must not emit windows")
	}
	if s := FromRunOpts(res, rec, Options{}); s.Windows != nil {
		t.Fatal("zero window width must disable the series")
	}
	// Failed requests count as resolved misses in their window.
	res.PerRequest = append(res.PerRequest, serve.RequestLat{
		Req: 2, Arrival: 0, Done: 900 * time.Microsecond, Failed: true})
	s := FromRunOpts(res, rec, Options{Window: 500 * time.Microsecond})
	if len(s.Windows) != 2 || s.Windows[1].SLOMissRate != 1 || s.Windows[1].Completed != 0 {
		t.Fatalf("failed request not accounted: %+v", s.Windows)
	}
}
