package metrics

import (
	"sort"
	"time"

	"liger/internal/serve"
	"liger/internal/trace"
)

// Options configures snapshot extras beyond the FromRun defaults.
type Options struct {
	// Window enables the windowed time-series: the run is cut into
	// fixed-width buckets and each gets throughput, p99, SLO-miss rate
	// and device utilization. Zero disables the series.
	Window time.Duration
}

// Window is one fixed-width bucket of the run's time-series. Requests
// are bucketed by their resolution instant; utilization is the busy
// share of every device's time inside the bucket.
type Window struct {
	StartNS int64 `json:"start_ns"`
	EndNS   int64 `json:"end_ns"`
	// Completed counts batches resolving successfully in the window;
	// Throughput is that count over the window width.
	Completed  int     `json:"completed"`
	Throughput float64 `json:"throughput_per_s"`
	// P99NS summarizes the latencies of the window's completions (0
	// when none completed).
	P99NS int64 `json:"p99_ns"`
	// SLOMissRate is the share of the window's resolved batches that
	// failed or finished past the deadline (0 when no deadline is set
	// and nothing failed).
	SLOMissRate float64 `json:"slo_miss_rate"`
	// Utilization is mean busy fraction across devices (kernel
	// execution time over window width), 0 without a recorder.
	Utilization float64 `json:"utilization"`
}

// FromRunOpts builds a snapshot like FromRun and, when opts.Window is
// set, appends the windowed time-series.
func FromRunOpts(res serve.Result, rec *trace.Recorder, opts Options) *Snapshot {
	s := FromRun(res, rec)
	if opts.Window > 0 {
		s.WindowNS = opts.Window.Nanoseconds()
		s.Windows = windows(res, rec, opts.Window)
	}
	return s
}

func windows(res serve.Result, rec *trace.Recorder, width time.Duration) []Window {
	span := res.Makespan
	if rec != nil {
		for _, sp := range rec.Spans() {
			if end := time.Duration(sp.End); end > span {
				span = end
			}
		}
	}
	if span <= 0 {
		return nil
	}
	n := int((span + width - 1) / width)
	ws := make([]Window, n)
	for i := range ws {
		ws[i].StartNS = int64(i) * width.Nanoseconds()
		ws[i].EndNS = int64(i+1) * width.Nanoseconds()
	}
	clamp := func(at time.Duration) int {
		i := int(at / width)
		if i >= n {
			i = n - 1
		}
		if i < 0 {
			i = 0
		}
		return i
	}

	lats := make([][]time.Duration, n)
	resolved := make([]int, n)
	missed := make([]int, n)
	for _, pr := range res.PerRequest {
		if pr.Shed {
			continue
		}
		i := clamp(pr.Done)
		resolved[i]++
		total := pr.Done - pr.Arrival
		if pr.Failed {
			missed[i]++
			continue
		}
		ws[i].Completed++
		lats[i] = append(lats[i], total)
		if res.Deadline > 0 && total > res.Deadline {
			missed[i]++
		}
	}
	for i := range ws {
		ws[i].Throughput = float64(ws[i].Completed) / width.Seconds()
		if len(lats[i]) > 0 {
			sort.Slice(lats[i], func(a, b int) bool { return lats[i][a] < lats[i][b] })
			// Nearest-rank p99, clamped to the max for small samples.
			r := (99*len(lats[i]) + 99) / 100
			if r > len(lats[i]) {
				r = len(lats[i])
			}
			ws[i].P99NS = lats[i][r-1].Nanoseconds()
		}
		if resolved[i] > 0 {
			ws[i].SLOMissRate = float64(missed[i]) / float64(resolved[i])
		}
	}

	if rec != nil {
		addUtilization(ws, rec, width)
	}
	return ws
}

// addUtilization fills each window's mean busy fraction: per device,
// the union of kernel-execution intervals clipped to the window,
// averaged over the devices seen in the trace.
func addUtilization(ws []Window, rec *trace.Recorder, width time.Duration) {
	type span struct{ s, e time.Duration }
	perDev := map[int][]span{}
	devices := 0
	for _, sp := range rec.Spans() {
		if sp.End <= sp.Start {
			continue
		}
		perDev[sp.Device] = append(perDev[sp.Device], span{time.Duration(sp.Start), time.Duration(sp.End)})
		if sp.Device >= devices {
			devices = sp.Device + 1
		}
	}
	if devices == 0 {
		return
	}
	busy := make([]time.Duration, len(ws))
	for _, spans := range perDev {
		sort.Slice(spans, func(i, j int) bool { return spans[i].s < spans[j].s })
		// Merge overlaps, then spread each merged interval over the
		// windows it crosses.
		cur := spans[0]
		flush := func(v span) {
			for i := int(v.s / width); i < len(ws) && time.Duration(i)*width < v.e; i++ {
				lo, hi := time.Duration(i)*width, time.Duration(i+1)*width
				if v.s > lo {
					lo = v.s
				}
				if v.e < hi {
					hi = v.e
				}
				if hi > lo {
					busy[i] += hi - lo
				}
			}
		}
		for _, v := range spans[1:] {
			if v.s <= cur.e {
				if v.e > cur.e {
					cur.e = v.e
				}
				continue
			}
			flush(cur)
			cur = v
		}
		flush(cur)
	}
	for i := range ws {
		ws[i].Utilization = float64(busy[i]) / (float64(width.Nanoseconds()) * float64(devices))
	}
}
