// Package metrics turns a serving run plus its trace recording into a
// deterministic JSON snapshot: counters, gauges, latency histograms,
// and a per-request latency decomposition. It is the machine-readable
// companion to the Chrome traces — the numbers every perf PR cites.
package metrics

import (
	"encoding/json"
	"io"
	"sort"
	"time"

	"liger/internal/serve"
	"liger/internal/stats"
	"liger/internal/trace"
)

// Histogram summarizes a duration distribution in nanoseconds.
type Histogram struct {
	Count  int   `json:"count"`
	MeanNS int64 `json:"mean_ns"`
	P50NS  int64 `json:"p50_ns"`
	P95NS  int64 `json:"p95_ns"`
	P99NS  int64 `json:"p99_ns"`
	MaxNS  int64 `json:"max_ns"`
}

// Request is one arrival's full latency decomposition: serving-side
// components (queue wait, recovery deferral, retries) from
// serve.Result.PerRequest, device-side components (compute, comm,
// stall) from the trace recorder's per-request span unions.
type Request struct {
	Req              int   `json:"req"`
	ArrivalNS        int64 `json:"arrival_ns"`
	DoneNS           int64 `json:"done_ns"`
	TotalNS          int64 `json:"total_ns"`
	QueueWaitNS      int64 `json:"queue_wait_ns"`
	DeferralNS       int64 `json:"deferral_ns"`
	ComputeNS        int64 `json:"compute_ns"`
	CommNS           int64 `json:"comm_ns"`
	StallNS          int64 `json:"stall_ns"`
	Retries          int   `json:"retries"`
	Failed           bool  `json:"failed"`
	Shed             bool  `json:"shed"`
	Kernels          int   `json:"kernels"`
	CancelledKernels int   `json:"cancelled_kernels"`
}

// Snapshot is the exported metrics document. Maps serialize with
// sorted keys (encoding/json), so WriteJSON output is byte-identical
// for identical runs.
type Snapshot struct {
	Runtime    string               `json:"runtime"`
	Counters   map[string]int64     `json:"counters"`
	Gauges     map[string]float64   `json:"gauges"`
	Histograms map[string]Histogram `json:"histograms"`
	Requests   []Request            `json:"requests,omitempty"`
	// WindowNS / Windows carry the fixed-window time-series when
	// FromRunOpts is called with Options.Window set.
	WindowNS int64    `json:"window_ns,omitempty"`
	Windows  []Window `json:"windows,omitempty"`
}

func summarize(ds []time.Duration) Histogram {
	if len(ds) == 0 {
		return Histogram{}
	}
	pcts := stats.Percentiles(ds, 50, 95, 99)
	return Histogram{
		Count:  len(ds),
		MeanNS: stats.Mean(ds).Nanoseconds(),
		P50NS:  pcts[0].Nanoseconds(),
		P95NS:  pcts[1].Nanoseconds(),
		P99NS:  pcts[2].Nanoseconds(),
		MaxNS:  stats.Max(ds).Nanoseconds(),
	}
}

// FromRun builds a snapshot from a serving result and the recorder
// that traced the run. rec may be nil, dropping the device-side
// decomposition and collective/fault counters.
func FromRun(res serve.Result, rec *trace.Recorder) *Snapshot {
	s := &Snapshot{
		Runtime: res.Runtime,
		Counters: map[string]int64{
			"completed":       int64(res.Completed),
			"requests":        int64(res.Requests),
			"failed":          int64(res.Failed),
			"shed":            int64(res.Shed),
			"deferred":        int64(res.Deferred),
			"retries":         int64(res.Retries),
			"deadline_misses": int64(res.DeadlineMisses),
			"failovers":       int64(res.Failovers),
		},
		Gauges: map[string]float64{
			"throughput_batches_per_s":  res.ThroughputBatches(),
			"throughput_requests_per_s": res.ThroughputRequests(),
			"makespan_s":                res.Makespan.Seconds(),
			"recovery_time_s":           res.RecoveryTime.Seconds(),
		},
		Histograms: map[string]Histogram{
			"latency": summarize(res.Latencies),
		},
	}
	var breakdown map[int]trace.ReqLatency
	if rec != nil {
		breakdown = rec.ReqBreakdown()
		c := rec.Counts()
		s.Counters["collectives_enqueued"] = int64(c.Enqueued)
		s.Counters["collectives_started"] = int64(c.Started)
		s.Counters["collectives_finished"] = int64(c.Finished)
		s.Counters["collectives_aborted"] = int64(c.Aborted)
		s.Counters["device_failures"] = int64(len(rec.Fails()))
		s.Counters["kernel_spans"] = int64(len(rec.Spans()))
		var cancelled int64
		for _, sp := range rec.Spans() {
			if sp.Cancelled != "" {
				cancelled++
			}
		}
		s.Counters["kernel_spans_cancelled"] = cancelled
	}
	var queueWaits, computes, comms, stalls []time.Duration
	for _, pr := range res.PerRequest {
		req := Request{
			Req:         pr.Req,
			ArrivalNS:   pr.Arrival.Nanoseconds(),
			DoneNS:      pr.Done.Nanoseconds(),
			TotalNS:     (pr.Done - pr.Arrival).Nanoseconds(),
			QueueWaitNS: pr.QueueWait.Nanoseconds(),
			DeferralNS:  pr.Deferral.Nanoseconds(),
			Retries:     pr.Retries,
			Failed:      pr.Failed,
			Shed:        pr.Shed,
		}
		if b, ok := breakdown[pr.Req]; ok {
			req.ComputeNS = time.Duration(b.Compute).Nanoseconds()
			req.CommNS = time.Duration(b.Comm).Nanoseconds()
			req.StallNS = time.Duration(b.Stall).Nanoseconds()
			req.Kernels = b.Kernels
			req.CancelledKernels = b.Cancelled
			computes = append(computes, time.Duration(b.Compute))
			comms = append(comms, time.Duration(b.Comm))
			stalls = append(stalls, time.Duration(b.Stall))
		}
		if !pr.Shed {
			queueWaits = append(queueWaits, pr.QueueWait)
		}
		s.Requests = append(s.Requests, req)
	}
	sort.Slice(s.Requests, func(i, j int) bool { return s.Requests[i].Req < s.Requests[j].Req })
	if len(queueWaits) > 0 {
		s.Histograms["queue_wait"] = summarize(queueWaits)
	}
	if len(computes) > 0 {
		s.Histograms["compute"] = summarize(computes)
		s.Histograms["comm"] = summarize(comms)
		s.Histograms["stall"] = summarize(stalls)
	}
	return s
}

// WriteJSON serializes the snapshot as indented JSON with a trailing
// newline. Output is byte-deterministic for identical snapshots.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
