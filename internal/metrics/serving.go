package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"liger/internal/kvcache"
	"liger/internal/serve"
	"liger/internal/trace"
)

// Serving-layer metrics: a snapshot distilled from a
// trace.ServingRecorder rather than from a device trace. The recorder
// holds the batcher's iteration records, per-sequence lifecycle events,
// KV block events, router decisions and KV handoffs; this file folds
// them into the same Counters/Gauges/Histograms shape as Snapshot plus
// a serving-specific windowed time-series (per-pool utilization, KV
// occupancy, pool size, preemption rate, shed/hedge counts).

// ServingWindow is one fixed-width bucket of the serving time-series.
type ServingWindow struct {
	StartNS int64 `json:"start_ns"`
	EndNS   int64 `json:"end_ns"`
	// Iterations counts decode iterations ending in the window;
	// MeanPool is their average batch size (0 when none ended).
	Iterations int     `json:"iterations"`
	MeanPool   float64 `json:"mean_pool"`
	// Preemptions counts sequences evicted in the window; Sheds and
	// Hedges count the router's load-shed and hedge decisions.
	Preemptions int `json:"preemptions"`
	Sheds       int `json:"sheds"`
	Hedges      int `json:"hedges"`
	// KVPeakBlocks is the highest block occupancy observed in the
	// window (carried forward from the last event when the window has
	// none, so the series never drops to zero between events).
	KVPeakBlocks int `json:"kv_peak_blocks"`
	// Utilization maps pool_<i> to the share of the window that pool
	// spent executing iterations.
	Utilization map[string]float64 `json:"utilization,omitempty"`
}

// ServingSnapshot is the serving-layer analogue of Snapshot.
type ServingSnapshot struct {
	Runtime    string               `json:"runtime,omitempty"`
	Counters   map[string]int64     `json:"counters"`
	Gauges     map[string]float64   `json:"gauges"`
	Histograms map[string]Histogram `json:"histograms"`
	WindowNS   int64                `json:"window_ns,omitempty"`
	Windows    []ServingWindow      `json:"windows,omitempty"`
}

// FromServing distills a serving recorder into a snapshot. The
// recorder is normalized first, so the result is byte-deterministic
// regardless of how many workers or shards produced the events. When
// opts.Window is set the windowed time-series is appended.
func FromServing(runtime string, rec *trace.ServingRecorder, opts Options) *ServingSnapshot {
	s := &ServingSnapshot{
		Runtime:    runtime,
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]Histogram{},
	}
	if rec == nil {
		return s
	}
	rec.Normalize()

	// Iteration stream: counts, pool-size gauge, per-pool busy time.
	poolSum, decodes := 0, 0
	for _, it := range rec.Iterations() {
		if it.Prefill {
			s.Counters["prefill_batches"]++
		} else {
			s.Counters["iterations"]++
			poolSum += it.Batch
			decodes++
		}
		s.Counters["admitted"] += int64(it.Admitted)
		s.Counters["retired"] += int64(it.Retired)
	}
	if decodes > 0 {
		s.Gauges["mean_pool"] = float64(poolSum) / float64(decodes)
	}

	// KV stream: block accounting and recompute obligations.
	peak, total := 0, 0
	for _, e := range rec.KVEvents() {
		switch e.Kind {
		case kvcache.KVAdmit:
			s.Counters["kv_admits"]++
		case kvcache.KVExtend:
			s.Counters["kv_extends"]++
		case kvcache.KVRelease:
			s.Counters["kv_releases"]++
		case kvcache.KVPreempt:
			s.Counters["kv_preemptions"]++
			s.Counters["recomputed_tokens"] += int64(e.Tokens)
		}
		if e.Used > peak {
			peak = e.Used
		}
		if t := e.Used + e.Free; t > total {
			total = t
		}
	}
	if peak > 0 {
		s.Gauges["kv_peak_blocks"] = float64(peak)
	}
	if total > 0 {
		s.Gauges["kv_total_blocks"] = float64(total)
	}

	// Lifecycle stream: preemption count plus per-request latency
	// histograms (arrival -> first prefill completion -> last finish).
	type seqTimes struct {
		arrive, firstTok, finish time.Duration
		gen                      int
		sawArrive, sawTok, done  bool
	}
	seqs := map[int]*seqTimes{}
	at := func(id int) *seqTimes {
		st := seqs[id]
		if st == nil {
			st = &seqTimes{}
			seqs[id] = st
		}
		return st
	}
	for _, ev := range rec.SeqEvents() {
		st := at(ev.Seq)
		switch ev.Kind {
		case serve.SeqArrive:
			if !st.sawArrive {
				st.arrive, st.sawArrive = time.Duration(ev.At), true
			}
		case serve.SeqPrefillEnd:
			if !st.sawTok {
				st.firstTok, st.sawTok = time.Duration(ev.At), true
			}
		case serve.SeqPreempt:
			s.Counters["preemptions"]++
		case serve.SeqFinish:
			st.finish, st.gen, st.done = time.Duration(ev.At), ev.Tokens, true
		}
	}
	ids := make([]int, 0, len(seqs))
	for id, st := range seqs {
		if st.done {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	var ttfts, tpots, totals []time.Duration
	for _, id := range ids {
		st := seqs[id]
		s.Counters["requests"]++
		if st.sawArrive && st.sawTok {
			ttfts = append(ttfts, st.firstTok-st.arrive)
			if st.gen > 0 {
				tpots = append(tpots, (st.finish-st.firstTok)/time.Duration(st.gen))
			}
		}
		if st.sawArrive {
			totals = append(totals, st.finish-st.arrive)
		}
	}
	if len(ttfts) > 0 {
		s.Histograms["ttft"] = summarize(ttfts)
	}
	if len(tpots) > 0 {
		s.Histograms["tpot"] = summarize(tpots)
	}
	if len(totals) > 0 {
		s.Histograms["total"] = summarize(totals)
	}

	// Router and handoff streams.
	for _, d := range rec.RouterDecisions() {
		s.Counters["router_"+d.Kind]++
	}
	for _, h := range rec.KVHandoffs() {
		s.Counters["handoffs"]++
		s.Counters["handoff_bytes"] += h.Bytes
	}

	if opts.Window > 0 {
		s.WindowNS = opts.Window.Nanoseconds()
		s.Windows = servingWindows(rec, opts.Window)
	}
	return s
}

// servingWindows cuts the recorded streams into fixed-width buckets.
func servingWindows(rec *trace.ServingRecorder, width time.Duration) []ServingWindow {
	var span time.Duration
	grow := func(t time.Duration) {
		if t > span {
			span = t
		}
	}
	for _, it := range rec.Iterations() {
		grow(time.Duration(it.End))
	}
	for _, ev := range rec.SeqEvents() {
		grow(time.Duration(ev.At))
	}
	for _, d := range rec.RouterDecisions() {
		grow(time.Duration(d.At))
	}
	for _, h := range rec.KVHandoffs() {
		grow(time.Duration(h.End))
	}
	if span <= 0 {
		return nil
	}
	n := int((span + width - 1) / width)
	ws := make([]ServingWindow, n)
	for i := range ws {
		ws[i].StartNS = int64(i) * width.Nanoseconds()
		ws[i].EndNS = int64(i+1) * width.Nanoseconds()
	}
	clamp := func(at time.Duration) int {
		i := int(at / width)
		if i >= n {
			i = n - 1
		}
		if i < 0 {
			i = 0
		}
		return i
	}

	// Iterations bucket by completion; pool sizes average per window.
	poolSum := make([]int, n)
	pools := map[int]bool{}
	busy := map[int][]time.Duration{} // pool -> busy ns per window
	for _, it := range rec.Iterations() {
		pools[it.Pool] = true
		if !it.Prefill {
			i := clamp(time.Duration(it.End))
			ws[i].Iterations++
			poolSum[i] += it.Batch
		}
		// Busy time: spread the span over the windows it crosses
		// (iterations never overlap within a pool, so no merge needed).
		b := busy[it.Pool]
		if b == nil {
			b = make([]time.Duration, n)
			busy[it.Pool] = b
		}
		st, en := time.Duration(it.Start), time.Duration(it.End)
		for i := int(st / width); i < n && time.Duration(i)*width < en; i++ {
			lo, hi := time.Duration(i)*width, time.Duration(i+1)*width
			if st > lo {
				lo = st
			}
			if en < hi {
				hi = en
			}
			if hi > lo {
				b[i] += hi - lo
			}
		}
	}
	for i := range ws {
		if ws[i].Iterations > 0 {
			ws[i].MeanPool = float64(poolSum[i]) / float64(ws[i].Iterations)
		}
	}
	poolIDs := make([]int, 0, len(pools))
	for p := range pools {
		poolIDs = append(poolIDs, p)
	}
	sort.Ints(poolIDs)
	for i := range ws {
		if len(poolIDs) == 0 {
			break
		}
		u := make(map[string]float64, len(poolIDs))
		for _, p := range poolIDs {
			u[fmt.Sprintf("pool_%d", p)] = float64(busy[p][i]) / float64(width)
		}
		ws[i].Utilization = u
	}

	for _, ev := range rec.SeqEvents() {
		if ev.Kind == serve.SeqPreempt {
			ws[clamp(time.Duration(ev.At))].Preemptions++
		}
	}
	for _, d := range rec.RouterDecisions() {
		switch d.Kind {
		case "shed":
			ws[clamp(time.Duration(d.At))].Sheds++
		case "hedge":
			ws[clamp(time.Duration(d.At))].Hedges++
		}
	}

	// KV occupancy: the window's max used-block count, carrying the
	// last observed level across event-free windows.
	last := 0
	idx := 0
	events := rec.KVEvents()
	for i := range ws {
		peak := last
		for idx < len(events) && time.Duration(events[idx].At) < time.Duration(i+1)*width {
			last = events[idx].Used
			if last > peak {
				peak = last
			}
			idx++
		}
		ws[i].KVPeakBlocks = peak
	}
	return ws
}

// WriteJSON writes the snapshot as deterministic indented JSON.
func (s *ServingSnapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}
