package scenario

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Scenario time fields accept three spellings so files stay meaningful
// across hardware and cost-model changes:
//
//	"12ms"  absolute duration (time.ParseDuration syntax)
//	"30%"   fraction of the run's horizon (nominal trace span)
//	"4x"    multiple of the solo batch duration — the analytic time one
//	        batch takes on an idle node, the natural unit for deadlines,
//	        backoffs, and watchdog timeouts (what the Go chaos bench
//	        hard-coded)
//
// Resolution to an absolute time happens at compile, once the horizon
// and solo duration are known.

type timeKind int

const (
	timeUnset timeKind = iota
	timeAbs
	timeFrac
	timeSolo
)

// TimeSpec is one unresolved scenario time value.
type TimeSpec struct {
	kind timeKind
	abs  time.Duration
	val  float64
}

// IsZero reports whether the field was omitted.
func (t TimeSpec) IsZero() bool { return t.kind == timeUnset }

// Resolve converts to an absolute duration given the scenario's
// horizon and solo batch duration.
func (t TimeSpec) Resolve(horizon, solo time.Duration) time.Duration {
	switch t.kind {
	case timeAbs:
		return t.abs
	case timeFrac:
		return time.Duration(t.val * float64(horizon))
	case timeSolo:
		return time.Duration(t.val * float64(solo))
	default:
		return 0
	}
}

// String renders the spec as it was written.
func (t TimeSpec) String() string {
	switch t.kind {
	case timeAbs:
		return t.abs.String()
	case timeFrac:
		return fmt.Sprintf("%g%%", t.val*100)
	case timeSolo:
		return fmt.Sprintf("%gx", t.val)
	default:
		return "unset"
	}
}

// parseTimeSpec parses a scalar into a TimeSpec. Bare numbers are
// rejected — a unitless time is almost always an author mistake.
func parseTimeSpec(v any, path string) (TimeSpec, error) {
	switch s := v.(type) {
	case float64:
		if s == 0 {
			return TimeSpec{}, nil
		}
		return TimeSpec{}, fmt.Errorf("%s: bare number %v — use a unit (\"12ms\"), a horizon fraction (\"30%%\"), or solo multiples (\"4x\")", path, s)
	case string:
		return parseTimeSpecString(s, path)
	default:
		return TimeSpec{}, fmt.Errorf("%s: want a time value, got %T", path, v)
	}
}

func parseTimeSpecString(s, path string) (TimeSpec, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return TimeSpec{}, nil
	case strings.HasSuffix(s, "%"):
		f, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		if err != nil || f < 0 {
			return TimeSpec{}, fmt.Errorf("%s: bad horizon fraction %q", path, s)
		}
		return TimeSpec{kind: timeFrac, val: f / 100}, nil
	case strings.HasSuffix(s, "x"):
		f, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
		if err != nil || f < 0 {
			return TimeSpec{}, fmt.Errorf("%s: bad solo multiple %q", path, s)
		}
		return TimeSpec{kind: timeSolo, val: f}, nil
	default:
		d, err := time.ParseDuration(s)
		if err != nil || d < 0 {
			return TimeSpec{}, fmt.Errorf("%s: bad duration %q (want e.g. \"12ms\", \"30%%\", or \"4x\")", path, s)
		}
		return TimeSpec{kind: timeAbs, abs: d}, nil
	}
}

// RateSpec is the arrival rate: absolute batches/second, or relative
// to the node's analytic intra-op saturation capacity ("0.8x" = 80% of
// the rate that saturates the tensor-parallel baseline). The relative
// form keeps a scenario's operating point stable when the cost model
// or hardware preset moves.
type RateSpec struct {
	abs      float64
	relative float64
}

// IsZero reports whether the field was omitted.
func (r RateSpec) IsZero() bool { return r.abs == 0 && r.relative == 0 }

// Resolve returns batches/second given the node's intra-op capacity.
func (r RateSpec) Resolve(capacity float64) float64 {
	if r.relative > 0 {
		return r.relative * capacity
	}
	return r.abs
}

// String renders the spec as written.
func (r RateSpec) String() string {
	if r.relative > 0 {
		return fmt.Sprintf("%gx", r.relative)
	}
	return fmt.Sprintf("%g", r.abs)
}

func parseRateSpec(v any, path string) (RateSpec, error) {
	switch s := v.(type) {
	case float64:
		if s <= 0 {
			return RateSpec{}, fmt.Errorf("%s: rate must be positive, got %v", path, s)
		}
		return RateSpec{abs: s}, nil
	case string:
		t := strings.TrimSpace(s)
		if strings.HasSuffix(t, "x") {
			f, err := strconv.ParseFloat(strings.TrimSuffix(t, "x"), 64)
			if err != nil || f <= 0 {
				return RateSpec{}, fmt.Errorf("%s: bad capacity-relative rate %q", path, s)
			}
			return RateSpec{relative: f}, nil
		}
		f, err := strconv.ParseFloat(t, 64)
		if err != nil || f <= 0 {
			return RateSpec{}, fmt.Errorf("%s: bad rate %q (want batches/s or \"0.8x\")", path, s)
		}
		return RateSpec{abs: f}, nil
	default:
		return RateSpec{}, fmt.Errorf("%s: want a rate, got %T", path, v)
	}
}
