package scenario

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestCorpusGolden pins the full load → compile → run → assert
// pipeline on real corpus files: the text report must be byte-stable.
// impossible-slo is the negative fixture — its report must say FAIL.
func TestCorpusGolden(t *testing.T) {
	cases := []struct {
		file string
		pass bool
	}{
		{"healthy-baseline.yaml", true},
		{"cascading-failures.yaml", true},
		{"mid-run-device-loss.yaml", true},
		{"fleet-node-loss.yaml", true},
		{"decode-heavy.yaml", true},
		{"fixtures/impossible-slo.yaml", false},
		{"fixtures/no-spare-capacity.yaml", false},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			t.Parallel()
			sc, err := Load(filepath.Join("..", "..", "scenarios", tc.file))
			if err != nil {
				t.Fatal(err)
			}
			c, err := Compile(sc)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Run(c, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Pass != tc.pass {
				t.Errorf("%s: pass = %v, want %v (%s)", tc.file, rep.Pass, tc.pass, rep.Verdict())
			}
			var buf bytes.Buffer
			if err := rep.WriteText(&buf); err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", filepath.Base(tc.file)+".golden")
			if *update {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("report drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, buf.Bytes(), want)
			}
		})
	}
}

// TestRunParallelInvariant pins the determinism contract: the same
// scenario renders byte-identical text and JSON reports at any
// -parallel or -shards setting.
func TestRunParallelInvariant(t *testing.T) {
	sc, err := Load(filepath.Join("..", "..", "scenarios", "cascading-failures.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	render := func(parallel, shards int) (string, string) {
		c, err := Compile(sc)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(c, RunOptions{Parallel: parallel, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		var text, js bytes.Buffer
		if err := rep.WriteText(&text); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		return text.String(), js.String()
	}
	baseText, baseJSON := render(1, 0)
	for _, cfg := range []struct{ parallel, shards int }{{4, 0}, {2, 4}} {
		text, js := render(cfg.parallel, cfg.shards)
		if text != baseText {
			t.Errorf("text report differs at parallel=%d shards=%d", cfg.parallel, cfg.shards)
		}
		if js != baseJSON {
			t.Errorf("JSON report differs at parallel=%d shards=%d", cfg.parallel, cfg.shards)
		}
	}
}

// TestFleetParallelInvariant pins the fleet determinism contract: the
// cluster scenario — router, node shards, mid-run node loss and all —
// renders byte-identical text and JSON reports at any -parallel or
// -shards setting.
func TestFleetParallelInvariant(t *testing.T) {
	sc, err := Load(filepath.Join("..", "..", "scenarios", "fleet-node-loss.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	render := func(parallel, shards int) string {
		c, err := Compile(sc)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(c, RunOptions{Parallel: parallel, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		var text, js bytes.Buffer
		if err := rep.WriteText(&text); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		return text.String() + js.String()
	}
	base := render(1, 1)
	for _, cfg := range []struct{ parallel, shards int }{{3, 2}, {1, 8}} {
		if got := render(cfg.parallel, cfg.shards); got != base {
			t.Errorf("fleet report differs at parallel=%d shards=%d", cfg.parallel, cfg.shards)
		}
	}
}

// TestStressDeterministic pins the stress harness contract: same
// (N, seed) yields byte-identical survival reports at any worker
// count or shard setting.
func TestStressDeterministic(t *testing.T) {
	render := func(parallel, shards int) string {
		rep, err := Stress(StressConfig{N: 6, Seed: 42, Parallel: parallel, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		var text, js bytes.Buffer
		if err := rep.WriteText(&text); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		return text.String() + js.String()
	}
	base := render(1, 0)
	for _, cfg := range []struct{ parallel, shards int }{{4, 0}, {8, 0}, {2, 4}} {
		if got := render(cfg.parallel, cfg.shards); got != base {
			t.Errorf("stress report differs at parallel=%d shards=%d", cfg.parallel, cfg.shards)
		}
	}
}

// TestStressSurvival sanity-checks the aggregate: every runtime is
// expected to survive the generated fleet (the instances are sized so
// degradation, not collapse, is the norm).
func TestStressSurvival(t *testing.T) {
	rep, err := Stress(StressConfig{N: 6, Seed: 42, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Died > 0 {
		t.Errorf("%d instances failed to build", rep.Died)
	}
	for _, name := range []string{"Liger", "Intra-Op", "Inter-Op"} {
		if rep.Survived[name] == 0 {
			t.Errorf("%s survived 0 instances", name)
		}
	}
}
