package scenario

import (
	"bytes"
	"strings"
	"testing"
)

// continuousYAML is a small continuous-mode scenario; tests splice
// overrides in. The tiny model keeps the per-iteration kernel schedule
// cheap enough for parse/compile/run round-trips.
const continuousYAML = `
name: cont
model: tiny
workload:
  mode: continuous
  batches: 12
  rate: 0.8x
  prompt: 24
  gen: 6
  pool: 4
  seed: 3
kv:
  paged: true
assert:
  - liger.completed == 12
  - liger.ttft > 0s
  - liger.tpot > 0s
  - liger.preemptions == 0
`

func TestParseContinuous(t *testing.T) {
	sc, err := Parse([]byte(continuousYAML), "t")
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Workload.Continuous() {
		t.Fatal("workload not continuous")
	}
	if sc.KV == nil || sc.KV.Paged == nil || !*sc.KV.Paged {
		t.Fatalf("kv = %+v", sc.KV)
	}
}

func TestParseContinuousErrors(t *testing.T) {
	cases := []struct{ name, in, want string }{
		{
			"unknown mode",
			"name: t\nworkload:\n  mode: streaming\n  batches: 5\n  rate: 1\n",
			`unknown mode "streaming"`,
		},
		{
			"kv without continuous",
			"name: t\nworkload:\n  batches: 5\n  rate: 1\nkv:\n  paged: true\n",
			"kv: admission control needs workload.mode: continuous",
		},
		{
			"generative knobs without continuous",
			"name: t\nworkload:\n  batches: 5\n  rate: 1\n  prompt: 32\n",
			"generative knobs need workload.mode: continuous",
		},
		{
			"continuous with batch",
			"name: t\nworkload:\n  mode: continuous\n  batches: 5\n  rate: 1\n  batch: 2\n",
			"workload.batch: continuous mode pools sequences",
		},
		{
			"continuous with phase",
			"name: t\nworkload:\n  mode: continuous\n  batches: 5\n  rate: 1\n  phase: decode\n",
			"continuous mode schedules its own prefill and decode phases",
		},
		{
			"continuous with seq range",
			"name: t\nworkload:\n  mode: continuous\n  batches: 5\n  rate: 1\n  seq: [16, 128]\n",
			"continuous sequences are shaped by prompt/gen",
		},
		{
			"continuous with constant process",
			"name: t\nworkload:\n  mode: continuous\n  batches: 5\n  rate: 1\n  process: constant\n",
			"continuous arrivals are poisson",
		},
		{
			"continuous with cluster",
			"name: t\ncluster:\n  nodes: 2\nworkload:\n  mode: continuous\n  batches: 5\n  rate: 1\n",
			"continuous runs on a single node",
		},
		{
			"continuous with chaos",
			"name: t\nworkload:\n  mode: continuous\n  batches: 5\n  rate: 1\nchaos:\n  events:\n    - kind: slowdown\n      device: 0\n      start: 10%\n      factor: 0.5\n",
			"fault injection is not supported in continuous mode",
		},
		{
			"continuous with policy",
			"name: t\nworkload:\n  mode: continuous\n  batches: 5\n  rate: 1\npolicy:\n  deadline: 4x\n",
			"policies apply to batch serving",
		},
		{
			"reservation kv with paged knobs",
			"name: t\nworkload:\n  mode: continuous\n  batches: 5\n  rate: 1\nkv:\n  paged: false\n  block: 32\n",
			"block/watermark are paged-allocator knobs",
		},
		{
			"kv typo suggestion",
			"name: t\nworkload:\n  mode: continuous\n  batches: 5\n  rate: 1\nkv:\n  blok: 32\n",
			`unknown key "kv.blok" (did you mean "block"?)`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.in), "t")
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v\nwant substring %q", err, tc.want)
			}
		})
	}
}

// TestCompileContinuousDefaults pins the lowered plan: prompt/gen/pool
// default to 32/16/8, and the kv section defaults to the paged
// allocator at block 16, watermark 5%.
func TestCompileContinuousDefaults(t *testing.T) {
	sc, err := Parse([]byte("name: t\nmodel: tiny\nworkload:\n  mode: continuous\n  batches: 5\n  rate: 1\nkv:\n  paged: true\n"), "t")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(sc)
	if err != nil {
		t.Fatal(err)
	}
	cp := c.Continuous
	if cp == nil {
		t.Fatal("no continuous plan")
	}
	if cp.Sequences != 5 || cp.Prompt != 32 || cp.Gen != 16 || cp.Pool != 8 {
		t.Errorf("plan = %+v", cp)
	}
	if !cp.KV || !cp.Paged || cp.Block != 16 || cp.Watermark != 0.05 {
		t.Errorf("kv plan = %+v", cp)
	}
	if c.Rate != 1 || c.Horizon.Seconds() != 5 {
		t.Errorf("rate %v horizon %v", c.Rate, c.Horizon)
	}

	// Without a kv section the run is pool-capped only.
	sc2, err := Parse([]byte("name: t\nworkload:\n  mode: continuous\n  batches: 5\n  rate: 1\n"), "t")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Compile(sc2)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Continuous.KV {
		t.Error("kv armed without a kv section")
	}
}

// TestRunContinuousScenario drives the full load → compile → run →
// assert pipeline on a continuous scenario and pins the determinism
// contract: byte-identical reports at any -parallel or -shards setting.
func TestRunContinuousScenario(t *testing.T) {
	sc, err := Parse([]byte(continuousYAML), "t")
	if err != nil {
		t.Fatal(err)
	}
	render := func(parallel, shards int) string {
		c, err := Compile(sc)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(c, RunOptions{Parallel: parallel, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Pass {
			t.Fatalf("assertions failed: %s", rep.Verdict())
		}
		var text, js bytes.Buffer
		if err := rep.WriteText(&text); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		return text.String() + js.String()
	}
	base := render(1, 0)
	for _, cfg := range []struct{ parallel, shards int }{{4, 0}, {2, 4}} {
		if got := render(cfg.parallel, cfg.shards); got != base {
			t.Errorf("continuous report differs at parallel=%d shards=%d", cfg.parallel, cfg.shards)
		}
	}
	for _, key := range []string{`"serving"`, `"ttft_ms"`, `"tpot_ms"`} {
		if !strings.Contains(base, key) {
			t.Errorf("report missing %s", key)
		}
	}
}
