package scenario

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Scenario files are YAML for humans and JSON for machines. The repo
// carries no external dependencies, so this file implements the small
// YAML subset the scenario grammar needs — block mappings, block
// sequences, flow sequences of scalars, quoted strings, comments —
// rather than a full YAML 1.2 parser. A document whose first
// non-space byte is '{' is parsed as JSON instead, so generated
// scenarios can skip YAML entirely.
//
// The parser produces the generic tree (map[string]any, []any, string,
// float64, bool, nil) that the strict decoder in decode.go consumes.
// Numbers stay float64 like encoding/json's, so both front ends feed
// the decoder identically. Anything outside the subset — anchors,
// aliases, multi-line scalars, flow mappings — is a syntax error with
// a line number, not a silent misparse.

// parseDocument parses YAML-or-JSON bytes into the generic tree.
func parseDocument(data []byte) (any, error) {
	trimmed := strings.TrimLeft(string(data), " \t\r\n")
	if strings.HasPrefix(trimmed, "{") {
		var doc any
		if err := json.Unmarshal(data, &doc); err != nil {
			return nil, fmt.Errorf("bad JSON: %w", err)
		}
		return doc, nil
	}
	lines, err := splitYAMLLines(string(data))
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("empty document")
	}
	p := &yamlParser{lines: lines}
	doc, err := p.parseBlock(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("line %d: unexpected indentation (got %d spaces)", l.num, l.indent)
	}
	return doc, nil
}

// yamlLine is one non-blank line with its comment stripped.
type yamlLine struct {
	num     int
	indent  int
	content string
}

// splitYAMLLines strips comments and blank lines and measures
// indentation. Tabs in indentation are an error (as in real YAML).
func splitYAMLLines(src string) ([]yamlLine, error) {
	var out []yamlLine
	for i, raw := range strings.Split(src, "\n") {
		line := strings.TrimRight(raw, " \t\r")
		stripped, err := stripComment(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		body := strings.TrimLeft(stripped, " ")
		if body == "" {
			continue
		}
		if body == "---" { // document marker: ignore a leading one
			continue
		}
		if strings.HasPrefix(body, "\t") {
			return nil, fmt.Errorf("line %d: tab in indentation (use spaces)", i+1)
		}
		indent := len(stripped) - len(body)
		out = append(out, yamlLine{num: i + 1, indent: indent, content: body})
	}
	return out, nil
}

// stripComment removes a trailing " #..." comment, respecting quotes.
func stripComment(line string) (string, error) {
	var quote byte
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '#' && (i == 0 || line[i-1] == ' ' || line[i-1] == '\t'):
			return strings.TrimRight(line[:i], " \t"), nil
		}
	}
	if quote != 0 {
		return "", fmt.Errorf("unterminated %c-quoted string", quote)
	}
	return line, nil
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

// parseBlock parses the run of lines at exactly the given indent as a
// mapping or a sequence (whichever the first line announces).
func (p *yamlParser) parseBlock(indent int) (any, error) {
	if p.pos >= len(p.lines) {
		return nil, fmt.Errorf("unexpected end of document")
	}
	first := p.lines[p.pos]
	if first.indent != indent {
		return nil, fmt.Errorf("line %d: expected indent %d, got %d", first.num, indent, first.indent)
	}
	if first.content == "-" || strings.HasPrefix(first.content, "- ") {
		return p.parseSequence(indent)
	}
	return p.parseMapping(indent)
}

// parseMapping parses `key: value` lines at the given indent.
func (p *yamlParser) parseMapping(indent int) (any, error) {
	out := make(map[string]any)
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("line %d: unexpected indentation inside mapping", l.num)
		}
		if l.content == "-" || strings.HasPrefix(l.content, "- ") {
			return nil, fmt.Errorf("line %d: sequence item inside a mapping", l.num)
		}
		key, rest, err := splitKey(l.content)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", l.num, err)
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate key %q", l.num, key)
		}
		p.pos++
		if rest != "" {
			v, err := parseScalar(rest)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", l.num, err)
			}
			out[key] = v
			continue
		}
		// No inline value: a nested block follows, or the value is null.
		if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
			v, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			out[key] = v
		} else {
			out[key] = nil
		}
	}
	return out, nil
}

// parseSequence parses `- item` lines at the given indent.
func (p *yamlParser) parseSequence(indent int) (any, error) {
	var out []any
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent || (l.content != "-" && !strings.HasPrefix(l.content, "- ")) {
			if l.indent > indent {
				return nil, fmt.Errorf("line %d: unexpected indentation inside sequence", l.num)
			}
			break
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(l.content, "-"), " ")
		if rest == "" {
			// `-` alone: the item is the nested block below.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, fmt.Errorf("line %d: empty sequence item", l.num)
			}
			v, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
			continue
		}
		if key, inline, err := splitKey(rest); err == nil {
			// `- key: ...`: a mapping whose first entry sits on the dash
			// line; its remaining entries are indented past the dash.
			item := make(map[string]any)
			if inline != "" {
				v, err := parseScalar(inline)
				if err != nil {
					return nil, fmt.Errorf("line %d: %w", l.num, err)
				}
				item[key] = v
			} else {
				item[key] = nil
			}
			p.pos++
			if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
				more, err := p.parseMapping(p.lines[p.pos].indent)
				if err != nil {
					return nil, err
				}
				for k, v := range more.(map[string]any) {
					if _, dup := item[k]; dup {
						return nil, fmt.Errorf("line %d: duplicate key %q", l.num, k)
					}
					item[k] = v
				}
			} else if item[key] == nil && inline == "" {
				return nil, fmt.Errorf("line %d: sequence item key %q has no value", l.num, key)
			}
			out = append(out, item)
			continue
		}
		// Plain scalar item.
		v, err := parseScalar(rest)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", l.num, err)
		}
		out = append(out, v)
		p.pos++
	}
	return out, nil
}

// splitKey splits "key: rest" (or "key:" with empty rest). The key may
// be quoted; a colon inside quotes or brackets does not split.
func splitKey(s string) (key, rest string, err error) {
	var quote byte
	depth := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '[':
			depth++
		case c == ']':
			depth--
		case c == ':' && depth == 0 && (i+1 == len(s) || s[i+1] == ' '):
			key = strings.TrimSpace(s[:i])
			rest = strings.TrimSpace(s[i+1:])
			if key == "" {
				return "", "", fmt.Errorf("empty key")
			}
			key = unquote(key)
			return key, rest, nil
		}
	}
	return "", "", fmt.Errorf("expected 'key: value', got %q", s)
}

// parseScalar interprets an inline value: flow sequence, quoted string,
// bool, null, number, or plain string.
func parseScalar(s string) (any, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("unterminated flow sequence %q", s)
		}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return []any{}, nil
		}
		var out []any
		for _, part := range splitFlow(inner) {
			v, err := parseScalar(strings.TrimSpace(part))
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	}
	if strings.HasPrefix(s, "{") {
		return nil, fmt.Errorf("flow mappings are not supported (use block form): %q", s)
	}
	if strings.HasPrefix(s, "&") || strings.HasPrefix(s, "*") {
		return nil, fmt.Errorf("YAML anchors/aliases are not supported: %q", s)
	}
	if len(s) >= 2 && (s[0] == '\'' || s[0] == '"') {
		if s[len(s)-1] != s[0] {
			return nil, fmt.Errorf("unterminated quoted string %q", s)
		}
		return s[1 : len(s)-1], nil
	}
	switch s {
	case "true", "True":
		return true, nil
	case "false", "False":
		return false, nil
	case "null", "~", "Null":
		return nil, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}

// splitFlow splits a flow-sequence body on top-level commas.
func splitFlow(s string) []string {
	var parts []string
	var quote byte
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == ',':
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	return append(parts, s[start:])
}

// unquote removes matching surrounding quotes, if any.
func unquote(s string) string {
	if len(s) >= 2 && (s[0] == '\'' || s[0] == '"') && s[len(s)-1] == s[0] {
		return s[1 : len(s)-1]
	}
	return s
}
