package scenario

import (
	"strings"
	"testing"
	"time"
)

// minimalYAML is the smallest valid scenario; tests splice mutations in.
const minimalYAML = `
name: t
workload:
  batches: 10
  rate: 0.5x
`

func TestParseMinimal(t *testing.T) {
	sc, err := Parse([]byte(minimalYAML), "fallback")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "t" {
		t.Errorf("name = %q", sc.Name)
	}
	if got := sc.ResultRuntimes(); len(got) != 3 || got[0] != "Liger" {
		t.Errorf("default runtimes = %v", got)
	}
}

func TestParseDefaultName(t *testing.T) {
	sc, err := Parse([]byte("workload:\n  batches: 5\n  rate: 1\n"), "from-file")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "from-file" {
		t.Errorf("name = %q, want fallback", sc.Name)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, in, want string }{
		{
			"unknown top-level key with suggestion",
			"name: t\nworkloda:\n  batches: 5\n  rate: 1\nworkload:\n  batches: 5\n  rate: 1\n",
			`unknown key "workloda" (did you mean "workload"?)`,
		},
		{
			"unknown nested key with suggestion",
			"name: t\nworkload:\n  batchs: 5\n  rate: 1\n",
			`unknown key "workload.batchs" (did you mean "batches"?)`,
		},
		{
			"missing workload",
			"name: t\n",
			`missing required section "workload"`,
		},
		{
			"batches and duration both set",
			"name: t\nworkload:\n  batches: 5\n  duration: 2s\n  rate: 1\n",
			"mutually exclusive",
		},
		{
			"missing rate",
			"name: t\nworkload:\n  batches: 5\n",
			"workload.rate: required",
		},
		{
			"bare number time",
			"name: t\nworkload:\n  batches: 5\n  rate: 1\npolicy:\n  deadline: 42\n",
			"bare number 42",
		},
		{
			"unknown process",
			"name: t\nworkload:\n  batches: 5\n  rate: 1\n  process: weekly\n",
			`unknown process "weekly"`,
		},
		{
			"unknown fault kind",
			"name: t\nworkload:\n  batches: 5\n  rate: 1\nchaos:\n  events:\n    - kind: meltdown\n      device: 0\n",
			`chaos.events[0]: unknown kind "meltdown"`,
		},
		{
			"duplicate device-fail",
			"name: t\nworkload:\n  batches: 5\n  rate: 1\nchaos:\n  events:\n    - kind: device-fail\n      device: 1\n      start: 10%\n    - kind: device-fail\n      device: 1\n      start: 50%\n",
			"chaos.events[1] fails device 1 twice (first failed by chaos.events[0])",
		},
		{
			"retries without backoff",
			"name: t\nworkload:\n  batches: 5\n  rate: 1\npolicy:\n  retries: 2\n",
			"retries without a backoff",
		},
		{
			"bad assertion",
			"name: t\nworkload:\n  batches: 5\n  rate: 1\nassert:\n  - liger.goodput\n",
			"assert[0]: no comparison operator",
		},
		{
			"duplicate device override",
			"name: t\nworkload:\n  batches: 5\n  rate: 1\nnode:\n  devices:\n    - device: 0\n      speed: 0.5\n    - device: 0\n      link: 0.5\n",
			"node.devices[1]: device 0 already overridden by node.devices[0]",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.in), "t")
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v\nwant substring %q", err, tc.want)
			}
		})
	}
}

func TestTimeSpecParsing(t *testing.T) {
	horizon, solo := 10*time.Second, 20*time.Millisecond
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"12ms", 12 * time.Millisecond},
		{"1.5s", 1500 * time.Millisecond},
		{"30%", 3 * time.Second},
		{"4x", 80 * time.Millisecond},
		{"0.5x", 10 * time.Millisecond},
	}
	for _, tc := range cases {
		ts, err := parseTimeSpecString(tc.in, "test")
		if err != nil {
			t.Errorf("%q: %v", tc.in, err)
			continue
		}
		if got := ts.Resolve(horizon, solo); got != tc.want {
			t.Errorf("%q resolves to %v, want %v", tc.in, got, tc.want)
		}
		if ts.String() != tc.in {
			t.Errorf("%q round-trips as %q", tc.in, ts.String())
		}
	}
	for _, bad := range []string{"12", "fast", "-3s", "-10%"} {
		if _, err := parseTimeSpecString(bad, "test"); err == nil {
			t.Errorf("%q: want error", bad)
		}
	}
}

func TestRateSpecParsing(t *testing.T) {
	rs, err := parseRateSpec("0.8x", "test")
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.Resolve(100); got != 80 {
		t.Errorf("0.8x of 100 = %v", got)
	}
	rs, err = parseRateSpec(12.5, "test")
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.Resolve(100); got != 12.5 {
		t.Errorf("absolute rate = %v", got)
	}
	for _, bad := range []any{"fast", -1.0, "0x"} {
		if _, err := parseRateSpec(bad, "test"); err == nil {
			t.Errorf("%v: want error", bad)
		}
	}
}
