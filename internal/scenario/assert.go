package scenario

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"liger/internal/serve"
)

// End-of-run assertions are one comparison per line:
//
//	liger.goodput >= 8.5            absolute floor (batches/s)
//	liger.p99 <= 12x                tail ceiling in solo batch durations
//	liger.slo_miss <= 5%            SLO-miss ceiling
//	liger.recovery_time <= 600ms    recovery-time bound
//	liger.completed >= 110          min-completed floor
//	liger.goodput >= intra.goodput  per-runtime comparison
//	liger.p99 <= 1.5 * intra.p99    comparison with headroom
//
// The left side is always runtime.metric; the right side is a literal
// (number, duration, percent, or solo multiple) or another
// runtime.metric with an optional numeric coefficient. Duration-valued
// metrics compare in seconds, ratio metrics as fractions.

// metricDef resolves one metric name against a serving result.
type metricDef struct {
	get func(serve.Result) float64
	// dur marks duration-valued metrics (rendered as durations).
	dur bool
}

var metricDefs = map[string]metricDef{
	"goodput":        {get: func(r serve.Result) float64 { return r.PolicyGoodput() }},
	"throughput":     {get: func(r serve.Result) float64 { return r.ThroughputBatches() }},
	"req_throughput": {get: func(r serve.Result) float64 { return r.ThroughputRequests() }},
	"slo_miss":       {get: func(r serve.Result) float64 { return r.SLOMissRate() }},
	"success_rate":   {get: func(r serve.Result) float64 { return r.SuccessRate() }},
	"avg_latency":    {get: func(r serve.Result) float64 { return r.AvgLatency.Seconds() }, dur: true},
	"p50":            {get: func(r serve.Result) float64 { return r.P50.Seconds() }, dur: true},
	"p95":            {get: func(r serve.Result) float64 { return r.P95.Seconds() }, dur: true},
	"p99":            {get: func(r serve.Result) float64 { return r.P99.Seconds() }, dur: true},
	"makespan":       {get: func(r serve.Result) float64 { return r.Makespan.Seconds() }, dur: true},
	"recovery_time":  {get: func(r serve.Result) float64 { return r.RecoveryTime.Seconds() }, dur: true},
	"ttft":           {get: func(r serve.Result) float64 { return r.TTFT.Seconds() }, dur: true},
	"tpot":           {get: func(r serve.Result) float64 { return r.TPOT.Seconds() }, dur: true},
	"preemptions":    {get: func(r serve.Result) float64 { return float64(r.Preemptions) }},
	"completed":      {get: func(r serve.Result) float64 { return float64(r.Completed) }},
	"requests":       {get: func(r serve.Result) float64 { return float64(r.Requests) }},
	"failed":         {get: func(r serve.Result) float64 { return float64(r.Failed) }},
	"shed":           {get: func(r serve.Result) float64 { return float64(r.Shed) }},
	"retries":        {get: func(r serve.Result) float64 { return float64(r.Retries) }},
	"deferred":       {get: func(r serve.Result) float64 { return float64(r.Deferred) }},
	"failovers":      {get: func(r serve.Result) float64 { return float64(r.Failovers) }},
	"hedges":         {get: func(r serve.Result) float64 { return float64(r.Hedges) }},
	"deadline_misses": {get: func(r serve.Result) float64 {
		return float64(r.DeadlineMisses)
	}},
	// Serving-telemetry metrics (continuous mode unless noted):
	// recomputed prefill tokens repaid after preemption, decode-iteration
	// and pool-occupancy aggregates, the paged allocator's peak block
	// occupancy, and the fleet router's load-shed count (fleet mode;
	// alias of shed, named for the router-decision stream it mirrors).
	"recomputed_tokens": {get: func(r serve.Result) float64 { return float64(r.RecomputedTokens) }},
	"iterations":        {get: func(r serve.Result) float64 { return float64(r.Iterations) }},
	"mean_pool":         {get: func(r serve.Result) float64 { return r.MeanPool }},
	"kv_peak_blocks":    {get: func(r serve.Result) float64 { return float64(r.KVPeakBlocks) }},
	"router_sheds":      {get: func(r serve.Result) float64 { return float64(r.Shed) }},
}

func metricNames() string {
	names := make([]string, 0, len(metricDefs))
	for k := range metricDefs {
		names = append(names, k)
	}
	// Stable order for error messages.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return strings.Join(names, ", ")
}

// metricRef is one runtime.metric operand.
type metricRef struct {
	runtime string // resolved result name ("Liger")
	alias   string // as written ("liger")
	metric  string
}

// literal is one right-hand-side constant.
type literal struct {
	num  float64
	spec TimeSpec // set for duration/percent/solo forms
	raw  string
}

// assertion is a parsed comparison.
type assertion struct {
	raw   string
	lhs   metricRef
	op    string
	coeff float64 // multiplier on the rhs ref (1 when absent)
	rhs   *metricRef
	lit   literal
}

var assertOps = []string{">=", "<=", "==", "!=", ">", "<"}

// parseAssertion parses one expression line.
func parseAssertion(expr string) (*assertion, error) {
	op, idx := "", -1
	for _, candidate := range assertOps {
		if i := strings.Index(expr, candidate); i >= 0 {
			op, idx = candidate, i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("no comparison operator in %q (want one of %s)", expr, strings.Join(assertOps, " "))
	}
	a := &assertion{raw: strings.TrimSpace(expr), op: op, coeff: 1}
	lhs, err := parseRef(strings.TrimSpace(expr[:idx]))
	if err != nil {
		return nil, err
	}
	a.lhs = *lhs
	rhs := strings.TrimSpace(expr[idx+len(op):])
	if rhs == "" {
		return nil, fmt.Errorf("missing right-hand side in %q", expr)
	}
	// Optional `coeff * ref` form.
	if star := strings.Index(rhs, "*"); star >= 0 {
		coeff, err := strconv.ParseFloat(strings.TrimSpace(rhs[:star]), 64)
		if err != nil {
			return nil, fmt.Errorf("bad coefficient %q in %q", strings.TrimSpace(rhs[:star]), expr)
		}
		a.coeff = coeff
		rhs = strings.TrimSpace(rhs[star+1:])
	}
	if strings.Contains(rhs, ".") && !isNumeric(rhs) {
		ref, err := parseRef(rhs)
		if err != nil {
			return nil, err
		}
		a.rhs = ref
		return a, nil
	}
	if a.coeff != 1 {
		return nil, fmt.Errorf("coefficient on a literal in %q — fold it into the number", expr)
	}
	lit, err := parseLiteral(rhs)
	if err != nil {
		return nil, fmt.Errorf("%w in %q", err, expr)
	}
	a.lit = lit
	return a, nil
}

func isNumeric(s string) bool {
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}

func parseRef(s string) (*metricRef, error) {
	parts := strings.SplitN(s, ".", 2)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return nil, fmt.Errorf("bad operand %q (want runtime.metric, e.g. liger.goodput)", s)
	}
	alias := strings.ToLower(strings.TrimSpace(parts[0]))
	runtime, ok := runtimeAliases[alias]
	if !ok {
		return nil, fmt.Errorf("unknown runtime %q in %q (want liger, intra, inter, or interth)", parts[0], s)
	}
	metric := strings.TrimSpace(parts[1])
	if _, ok := metricDefs[metric]; !ok {
		return nil, fmt.Errorf("unknown metric %q in %q (want one of: %s)", metric, s, metricNames())
	}
	return &metricRef{runtime: runtime, alias: alias, metric: metric}, nil
}

func parseLiteral(s string) (literal, error) {
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return literal{num: f, raw: s}, nil
	}
	spec, err := parseTimeSpecString(s, "literal")
	if err != nil || spec.IsZero() {
		return literal{}, fmt.Errorf("bad literal %q", s)
	}
	return literal{spec: spec, raw: s}, nil
}

// AssertionResult is one evaluated assertion.
type AssertionResult struct {
	Expr string  `json:"expr"`
	Pass bool    `json:"pass"`
	LHS  float64 `json:"lhs"`
	RHS  float64 `json:"rhs"`
	// Detail renders both sides with units for the text report.
	Detail string `json:"detail"`
}

// evalContext carries what literal and metric resolution needs.
type evalContext struct {
	results map[string]serve.Result
	horizon time.Duration
	solo    time.Duration
}

// eval evaluates the assertion against the run's results.
func (a *assertion) eval(ctx evalContext) (AssertionResult, error) {
	out := AssertionResult{Expr: a.raw}
	lres, ok := ctx.results[a.lhs.runtime]
	if !ok {
		return out, fmt.Errorf("assertion %q references runtime %q, which this scenario does not run", a.raw, a.lhs.alias)
	}
	ldef := metricDefs[a.lhs.metric]
	out.LHS = ldef.get(lres)
	switch {
	case a.rhs != nil:
		rres, ok := ctx.results[a.rhs.runtime]
		if !ok {
			return out, fmt.Errorf("assertion %q references runtime %q, which this scenario does not run", a.raw, a.rhs.alias)
		}
		out.RHS = a.coeff * metricDefs[a.rhs.metric].get(rres)
	case !a.lit.spec.IsZero():
		if a.lit.spec.kind == timeFrac {
			// Percent literals are plain fractions (SLO-miss ceilings),
			// not horizon fractions.
			out.RHS = a.lit.spec.val
		} else {
			out.RHS = a.lit.spec.Resolve(ctx.horizon, ctx.solo).Seconds()
		}
	default:
		out.RHS = a.lit.num
	}
	switch a.op {
	case ">=":
		out.Pass = out.LHS >= out.RHS
	case "<=":
		out.Pass = out.LHS <= out.RHS
	case ">":
		out.Pass = out.LHS > out.RHS
	case "<":
		out.Pass = out.LHS < out.RHS
	case "==":
		out.Pass = out.LHS == out.RHS
	case "!=":
		out.Pass = out.LHS != out.RHS
	}
	render := func(v float64) string {
		if ldef.dur {
			return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
		}
		return strconv.FormatFloat(v, 'g', 6, 64)
	}
	out.Detail = fmt.Sprintf("%s=%s vs %s", a.lhs.alias+"."+a.lhs.metric, render(out.LHS), render(out.RHS))
	return out, nil
}
