package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"liger/internal/core"
	"liger/internal/faults"
	"liger/internal/hw"
	"liger/internal/model"
	"liger/internal/nccl"
	"liger/internal/parallel"
	"liger/internal/serve"
)

// Compiled is a scenario lowered onto the existing stack: a concrete
// node and model, resolved trace and policy, one faults.Schedule, and
// the runtime kinds to serve. Everything here is a pure function of
// the scenario value, so two compiles of the same file are identical.
type Compiled struct {
	Scenario *Scenario
	Node     hw.Node
	// Cluster is non-nil for fleet scenarios: N replica nodes (plus
	// spares) of Node each, joined by the named network preset.
	Cluster *hw.Cluster
	// Probe is the router's health-probe interval (fleet only; zero
	// means the cluster default).
	Probe time.Duration
	// Hedge is the router's hedging delay (fleet only; zero disables).
	Hedge    time.Duration
	Model    model.Spec
	Kinds    []core.RuntimeKind
	Trace    serve.TraceConfig
	Policy   serve.Policy
	Schedule faults.Schedule
	// Horizon is the nominal trace span (batches / rate); fractional
	// times resolve against it.
	Horizon time.Duration
	// Solo is the analytic duration of one batch on an idle node under
	// the intra-op baseline; "4x" times resolve against it.
	Solo time.Duration
	// Rate is the resolved arrival rate in batches/second.
	Rate float64
	// Continuous is non-nil for continuous-mode workloads: the lowered
	// generative plan (Trace then only feeds reporting).
	Continuous *ContinuousPlan
	// assertions are pre-parsed from Scenario.Assert.
	assertions []*assertion
}

// ContinuousPlan is a continuous-mode workload lowered to concrete
// numbers: sequence shape, pool cap, and the KV admission knobs.
type ContinuousPlan struct {
	// Sequences is the arrival count (workload.batches, or derived from
	// duration × rate).
	Sequences int
	// Prompt/Gen shape every sequence; Pool caps live sequences per
	// decode iteration.
	Prompt, Gen, Pool int
	// KV arms cache admission control (a kv: section was present).
	KV bool
	// Paged selects the paged allocator (vs worst-case reservation);
	// Block and Watermark are its knobs.
	Paged     bool
	Block     int
	Watermark float64
}

// kindByAlias maps scenario runtime aliases to engine kinds.
var kindByAlias = map[string]core.RuntimeKind{
	"Liger":    core.KindLiger,
	"Intra-Op": core.KindIntraOp,
	"Inter-Op": core.KindInterOp,
	"Inter-Th": core.KindInterTh,
}

// faultKindByName maps scenario kind names to faults kinds.
var faultKindByName = map[string]faults.Kind{
	"slowdown":     faults.Slowdown,
	"link-degrade": faults.LinkDegrade,
	"device-drop":  faults.DeviceDrop,
	"coll-stall":   faults.CollStall,
	"device-fail":  faults.DeviceFail,
	"node-fail":    faults.NodeFail,
}

// Compile lowers a validated scenario. It performs the checks that
// need resolved absolute times — zero-length windows, overlapping
// same-channel windows, device bounds — and reports each with the
// offending section index, kind, and time range.
func Compile(sc *Scenario) (*Compiled, error) {
	c := &Compiled{Scenario: sc}

	preset := sc.Node.Preset
	if preset == "" {
		preset = "v100"
	}
	node, err := hw.Preset(preset)
	if err != nil {
		return nil, fmt.Errorf("node.preset: %w", err)
	}
	if sc.Node.GPUs > 0 {
		node = node.WithGPUs(sc.Node.GPUs)
	}
	c.Node = node

	modelName := sc.Model
	if modelName == "" {
		modelName = "OPT-30B"
	}
	spec, err := model.ByName(modelName)
	if err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	c.Model = spec

	for _, name := range sc.ResultRuntimes() {
		c.Kinds = append(c.Kinds, kindByAlias[name])
	}

	if sc.Workload.Continuous() {
		if err := c.compileContinuous(sc); err != nil {
			return nil, err
		}
		return c, c.compileTail(sc)
	}

	// Workload defaults mirror the paper's general evaluation.
	w := sc.Workload
	if w.Batch == 0 {
		w.Batch = 2
	}
	if w.MinSeq == 0 && w.MaxSeq == 0 {
		w.MinSeq, w.MaxSeq = 16, 128
	}
	phase := model.Context
	if w.Phase == "decode" {
		phase = model.Decode
		if w.CtxLen == 0 {
			w.CtxLen = 16
		}
	}

	capacity := intraCapacity(node, spec, w.Batch, phase, w.CtxLen, (w.MinSeq+w.MaxSeq)/2)
	c.Solo = time.Duration(float64(time.Second) / capacity)
	// A fleet's capacity-relative rate scales with the replica count:
	// "80%" means 80% of what the whole serving pool can absorb.
	effCapacity := capacity
	if sc.Cluster != nil {
		effCapacity = capacity * float64(sc.Cluster.Nodes)
	}
	c.Rate = w.Rate.Resolve(effCapacity)
	if c.Rate <= 0 {
		return nil, fmt.Errorf("workload.rate: resolves to %v batches/s", c.Rate)
	}
	batches := w.Batches
	if batches == 0 {
		batches = int(math.Ceil(w.Duration.Seconds() * c.Rate))
		if batches == 0 {
			return nil, fmt.Errorf("workload.duration %v at rate %.3g/s yields no arrivals", w.Duration, c.Rate)
		}
	}
	c.Horizon = time.Duration(float64(batches) / c.Rate * float64(time.Second))

	c.Trace = serve.TraceConfig{
		Batches:    batches,
		BatchSize:  w.Batch,
		RatePerSec: c.Rate,
		MinSeq:     w.MinSeq,
		MaxSeq:     w.MaxSeq,
		Phase:      phase,
		CtxLen:     w.CtxLen,
		Seed:       w.Seed,
	}
	switch w.Process {
	case "poisson":
		c.Trace.Process = serve.Poisson
	case "bursty":
		c.Trace.Process = serve.Bursty
	case "diurnal":
		c.Trace.Process = serve.Diurnal
	}
	if err := c.Trace.Validate(); err != nil {
		return nil, err
	}
	return c, c.compileTail(sc)
}

// compileContinuous lowers a continuous-mode workload: sequence shape
// defaults, a prompt-sized capacity normalizer for relative rates, and
// the KV admission knobs. Trace is filled just enough for reporting —
// continuous runs never generate a batch trace.
func (c *Compiled) compileContinuous(sc *Scenario) error {
	w := sc.Workload
	if w.Prompt == 0 {
		w.Prompt = 32
	}
	if w.Gen == 0 {
		w.Gen = 16
	}
	if w.Pool == 0 {
		w.Pool = 8
	}

	// Capacity-relative rates normalize against one prompt's prefill —
	// the unit of admission work — on the intra-op baseline.
	capacity := intraCapacity(c.Node, c.Model, 1, model.Context, 0, w.Prompt)
	c.Solo = time.Duration(float64(time.Second) / capacity)
	c.Rate = w.Rate.Resolve(capacity)
	if c.Rate <= 0 {
		return fmt.Errorf("workload.rate: resolves to %v sequences/s", c.Rate)
	}
	seqs := w.Batches
	if seqs == 0 {
		seqs = int(math.Ceil(w.Duration.Seconds() * c.Rate))
		if seqs == 0 {
			return fmt.Errorf("workload.duration %v at rate %.3g/s yields no arrivals", w.Duration, c.Rate)
		}
	}
	c.Horizon = time.Duration(float64(seqs) / c.Rate * float64(time.Second))

	plan := &ContinuousPlan{
		Sequences: seqs,
		Prompt:    w.Prompt,
		Gen:       w.Gen,
		Pool:      w.Pool,
		Paged:     true,
		Block:     16,
		Watermark: 0.05,
	}
	if kv := sc.KV; kv != nil {
		plan.KV = true
		if kv.Paged != nil {
			plan.Paged = *kv.Paged
		}
		if kv.Block != 0 {
			plan.Block = kv.Block
		}
		if kv.Watermark != 0 {
			plan.Watermark = kv.Watermark
		}
	}
	c.Continuous = plan

	// Reporting-only trace summary (never generated or validated).
	c.Trace = serve.TraceConfig{
		Batches:    seqs,
		BatchSize:  1,
		RatePerSec: c.Rate,
		MinSeq:     w.Prompt,
		MaxSeq:     w.Prompt,
		Process:    serve.Poisson,
		Seed:       w.Seed,
	}
	return nil
}

// compileTail finishes both workload paths: policy, fleet topology,
// chaos schedule, and assertion cross-checks.
func (c *Compiled) compileTail(sc *Scenario) error {
	c.Policy = serve.Policy{
		Deadline:   sc.Policy.Deadline.Resolve(c.Horizon, c.Solo),
		MaxRetries: sc.Policy.Retries,
		Backoff:    sc.Policy.Backoff.Resolve(c.Horizon, c.Solo),
		BackoffCap: sc.Policy.BackoffCap.Resolve(c.Horizon, c.Solo),
		QueueLimit: sc.Policy.QueueLimit,
	}
	if err := c.Policy.Validate(); err != nil {
		return err
	}

	if sc.Cluster != nil {
		netName := sc.Cluster.Network
		if netName == "" {
			netName = "ib"
		}
		net, err := hw.NetworkPreset(netName)
		if err != nil {
			return fmt.Errorf("cluster.network: %w", err)
		}
		cl := hw.Cluster{
			Name:    sc.Name,
			Node:    c.Node,
			Nodes:   sc.Cluster.Nodes,
			Spares:  sc.Cluster.Spares,
			Network: net,
		}
		if err := cl.Validate(); err != nil {
			return fmt.Errorf("cluster: %w", err)
		}
		c.Cluster = &cl
		c.Probe = sc.Cluster.Probe.Resolve(c.Horizon, c.Solo)
		if c.Probe < 0 {
			return fmt.Errorf("cluster.probe_interval: resolves to %v", c.Probe)
		}
		c.Hedge = sc.Policy.Hedge.Resolve(c.Horizon, c.Solo)
		if c.Hedge < 0 {
			return fmt.Errorf("policy.hedge: resolves to %v", c.Hedge)
		}
	}

	if err := c.compileChaos(sc); err != nil {
		return err
	}

	for i, expr := range sc.Assert {
		a, err := parseAssertion(expr)
		if err != nil {
			return fmt.Errorf("assert[%d]: %w", i, err)
		}
		for _, ref := range []*metricRef{&a.lhs, a.rhs} {
			if ref == nil {
				continue
			}
			if !containsString(sc.ResultRuntimes(), ref.runtime) {
				return fmt.Errorf("assert[%d]: %q references runtime %q, which this scenario does not run", i, expr, ref.alias)
			}
		}
		c.assertions = append(c.assertions, a)
	}
	return nil
}

func containsString(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// compileChaos resolves device overrides, explicit events, and random
// generators into one faults.Schedule with absolute times.
func (c *Compiled) compileChaos(sc *Scenario) error {
	numDev := c.Node.NumGPUs
	totalNodes := 1
	if c.Cluster != nil {
		totalNodes = c.Cluster.TotalNodes()
	}
	sched := faults.Schedule{CollTimeout: sc.Chaos.CollTimeout.Resolve(c.Horizon, c.Solo)}

	// Static per-device overrides: persist-to-end windows from t=0.
	for i, d := range sc.Node.Devices {
		if d.Device >= numDev {
			return fmt.Errorf("node.devices[%d]: device %d of a %d-GPU node", i, d.Device, numDev)
		}
		if d.Speed > 0 {
			sched.Events = append(sched.Events, faults.Event{
				Kind: faults.Slowdown, Device: d.Device, Factor: d.Speed})
		}
		if d.Link > 0 {
			sched.Events = append(sched.Events, faults.Event{
				Kind: faults.LinkDegrade, Device: d.Device, Factor: d.Link})
		}
	}

	// Explicit timed events. Windows of the same (kind, node, device)
	// may not overlap and may not be empty — both are author mistakes
	// that the multiplicative fault composition would otherwise silently
	// absorb.
	type window struct {
		idx        int
		start, end time.Duration // end 0 = persists to run end
	}
	open := make(map[[3]int][]window) // (kind, node, device) -> windows
	failedBy := make(map[[2]int]int)  // (node, device) -> event index
	failedNode := make(map[int]int)   // node -> event index
	for i, e := range sc.Chaos.Events {
		kind := faultKindByName[e.Kind]
		if e.Node >= totalNodes {
			return fmt.Errorf("chaos.events[%d] (%s): node %d of a %d-node cluster", i, e.Kind, e.Node, totalNodes)
		}
		if e.Device >= numDev {
			return fmt.Errorf("chaos.events[%d] (%s): device %d of a %d-GPU node", i, e.Kind, e.Device, numDev)
		}
		start := e.Start.Resolve(c.Horizon, c.Solo)
		ev := faults.Event{Kind: kind, Node: e.Node, Device: e.Device, Start: start, Factor: e.Factor}
		if kind == faults.NodeFail {
			ev.Device = 0
			failedNode[e.Node] = i
			sched.Events = append(sched.Events, ev)
			continue
		}
		if kind == faults.DeviceFail {
			failedBy[[2]int{e.Node, e.Device}] = i
			sched.Events = append(sched.Events, ev)
			continue
		}
		var end time.Duration
		if !e.Duration.IsZero() {
			ev.Duration = e.Duration.Resolve(c.Horizon, c.Solo)
			if ev.Duration <= 0 {
				return fmt.Errorf("chaos.events[%d] (%s dev%d): zero-duration window [%v, %v) — the fault would never apply; drop the duration to persist to end of run",
					i, e.Kind, e.Device, start, start)
			}
			end = start + ev.Duration
		}
		key := [3]int{int(kind), e.Node, e.Device}
		for _, prev := range open[key] {
			prevOpenEnded := prev.end == 0
			overlaps := (prevOpenEnded || start < prev.end) && (end == 0 || prev.start < end)
			if overlaps {
				return fmt.Errorf("chaos.events[%d] (%s dev%d, window [%v, %s)) overlaps chaos.events[%d] (window [%v, %s))",
					i, e.Kind, e.Device, start, windowEnd(end), prev.idx, prev.start, windowEnd(prev.end))
			}
		}
		open[key] = append(open[key], window{idx: i, start: start, end: end})
		sched.Events = append(sched.Events, ev)
	}
	if c.Cluster == nil && len(failedBy) >= numDev && numDev > 0 {
		return fmt.Errorf("chaos.events fail all %d devices — nothing would survive to serve", numDev)
	}
	if len(failedNode) >= totalNodes && len(failedNode) > 0 {
		return fmt.Errorf("chaos.events fail all %d nodes — nothing would survive to serve", totalNodes)
	}

	// Seeded random generators. Each generator draws from its own
	// stream (workload seed mixed with the generator's seed and index),
	// so inserting a generator never perturbs its neighbours.
	for i, g := range sc.Chaos.Random {
		kind := faultKindByName[g.Kind]
		rng := rand.New(rand.NewSource(mixSeed(sc.Workload.Seed, g.Seed, i)))
		pool := g.Devices
		if len(pool) == 0 {
			pool = make([]int, numDev)
			for d := range pool {
				pool[d] = d
			}
		}
		for j, d := range pool {
			if d >= numDev {
				return fmt.Errorf("chaos.random[%d].devices[%d]: device %d of a %d-GPU node", i, j, d, numDev)
			}
		}
		lo := g.Window[0].Resolve(c.Horizon, c.Solo)
		hi := g.Window[1].Resolve(c.Horizon, c.Solo)
		if g.Window[0].IsZero() && g.Window[1].IsZero() {
			lo, hi = 0, c.Horizon
		}
		if hi <= lo {
			return fmt.Errorf("chaos.random[%d] (%s): empty window [%v, %v)", i, g.Kind, lo, hi)
		}
		dur := g.Duration.Resolve(c.Horizon, c.Solo)
		if kind != faults.DeviceFail && dur <= 0 {
			return fmt.Errorf("chaos.random[%d] (%s): window duration resolves to %v", i, g.Kind, dur)
		}
		if kind == faults.DeviceFail {
			// Random faults always target node 0 (explicit events carry
			// node targets; generators predate the fleet). Draw distinct
			// devices not already failed; leaving at least one survivor is
			// the generator's job, not the runtime's.
			alive := make([]int, 0, len(pool))
			failedHere := 0
			for _, d := range pool {
				if _, dead := failedBy[[2]int{0, d}]; !dead {
					alive = append(alive, d)
				}
			}
			for key := range failedBy {
				if key[0] == 0 {
					failedHere++
				}
			}
			if g.Count >= numDev-failedHere {
				return fmt.Errorf("chaos.random[%d] (device-fail): count %d would leave no survivor on a %d-GPU node", i, g.Count, numDev)
			}
			if g.Count > len(alive) {
				return fmt.Errorf("chaos.random[%d] (device-fail): count %d exceeds the %d eligible devices", i, g.Count, len(alive))
			}
			for j := 0; j < g.Count; j++ {
				pick := rng.Intn(len(alive))
				dev := alive[pick]
				alive = append(alive[:pick], alive[pick+1:]...)
				failedBy[[2]int{0, dev}] = -1
				sched.Events = append(sched.Events, faults.Event{
					Kind:   faults.DeviceFail,
					Device: dev,
					Start:  lo + time.Duration(rng.Float64()*float64(hi-lo)),
				})
			}
			continue
		}
		for j := 0; j < g.Count; j++ {
			sched.Events = append(sched.Events, faults.Event{
				Kind:     kind,
				Device:   pool[rng.Intn(len(pool))],
				Start:    lo + time.Duration(rng.Float64()*float64(hi-lo)),
				Duration: dur,
				Factor:   g.Factor,
			})
		}
	}

	if c.Cluster != nil {
		if err := sched.ValidateCluster(totalNodes, numDev); err != nil {
			return err
		}
	} else if err := sched.Validate(numDev); err != nil {
		return err
	}
	c.Schedule = sched
	return nil
}

func windowEnd(end time.Duration) string {
	if end == 0 {
		return "end"
	}
	return end.String()
}

// mixSeed derives a generator's stream from the workload seed, the
// generator's declared seed, and its position (splitmix-style odd
// constants keep nearby seeds far apart).
func mixSeed(workload, gen int64, idx int) int64 {
	h := uint64(workload)*0x9E3779B97F4A7C15 ^ uint64(gen)*0xBF58476D1CE4E5B9 ^ uint64(idx+1)*0x94D049BB133111EB
	return int64(h >> 1)
}

// intraCapacity is the analytic saturated throughput (batches/s) of
// the intra-op baseline on an idle node — the normalizer behind
// capacity-relative rates and solo-multiple times (the Go chaos bench
// computes the same quantity to center its sweeps).
func intraCapacity(node hw.Node, spec model.Spec, batch int, phase model.Phase, ctxLen, meanSeq int) float64 {
	comp := parallel.NewCompiler(node, nccl.Config{})
	w := model.Workload{Batch: batch, Phase: phase}
	if phase == model.Decode {
		w.CtxLen = ctxLen
	} else {
		w.SeqLen = meanSeq
	}
	ks, err := comp.IntraOp(spec, node.NumGPUs, w)
	if err != nil {
		return 1
	}
	compute, comm := parallel.TotalDurations(ks)
	total := compute + comm
	if total <= 0 {
		return 1
	}
	return float64(time.Second) / float64(total)
}
