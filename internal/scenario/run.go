package scenario

import (
	"fmt"
	"time"

	"liger/internal/cluster"
	"liger/internal/core"
	"liger/internal/generate"
	"liger/internal/kvcache"
	"liger/internal/liger"
	"liger/internal/runner"
	"liger/internal/serve"
	"liger/internal/stats"
)

// RunOptions tune execution, never results: a scenario's report is
// byte-identical at any Parallel or Shards setting.
type RunOptions struct {
	// Parallel is the worker count for the per-runtime fan-out
	// (runner.Map semantics: <= 1 is serial).
	Parallel int
	// Shards requests lookahead-sharded simulation (honored only when
	// the hardware admits a multi-domain plan; see docs/PERF.md).
	Shards int
}

// Run serves the compiled scenario on every requested runtime and
// evaluates the assertions. Each runtime is an independent simulation,
// so the fan-out parallelizes; results come back in scenario order.
func Run(c *Compiled, opts RunOptions) (*Report, error) {
	results, err := runner.Map(opts.Parallel, len(c.Kinds), func(i int) (serve.Result, error) {
		return runOne(c, c.Kinds[i], opts.Shards)
	})
	if err != nil {
		return nil, err
	}
	return buildReport(c, results)
}

// runOne serves the scenario on one runtime. Liger runs with
// degradation-aware re-planning enabled — the robustness subsystem the
// corpus exists to exercise.
func runOne(c *Compiled, kind core.RuntimeKind, shards int) (serve.Result, error) {
	if c.Cluster != nil {
		return runFleetOne(c, kind, shards)
	}
	if c.Continuous != nil {
		return runContinuousOne(c, kind, shards)
	}
	opts := core.Options{Node: c.Node, Model: c.Model, Runtime: kind, Shards: shards}
	if kind == core.KindLiger {
		lc := liger.DefaultConfig(c.Node.Name)
		lc.DegradationAware = true
		opts.Liger = lc
		opts.LigerSet = true
	}
	if !c.Schedule.Empty() {
		sched := c.Schedule
		opts.Faults = &sched
	}
	eng, err := core.NewEngine(opts)
	if err != nil {
		return serve.Result{}, err
	}
	trace, err := serve.Generate(c.Trace)
	if err != nil {
		return serve.Result{}, err
	}
	res, err := eng.ServePolicy(trace, c.Policy)
	if err != nil {
		return res, err
	}
	res.Scenario = c.Scenario.Name
	return res, nil
}

// runContinuousOne serves a continuous-mode scenario on one runtime:
// iteration-level generative scheduling through serve.ContinuousBatcher,
// optionally gated by a KV allocator. The generative latencies land in
// the same serve.Result shape the assertions read — Latencies holds the
// per-sequence end-to-end times, TTFT/TPOT/Preemptions the continuous
// metrics.
func runContinuousOne(c *Compiled, kind core.RuntimeKind, shards int) (serve.Result, error) {
	opts := core.Options{Node: c.Node, Model: c.Model, Runtime: kind, Shards: shards}
	if kind == core.KindLiger {
		lc := liger.DefaultConfig(c.Node.Name)
		lc.DegradationAware = true
		opts.Liger = lc
		opts.LigerSet = true
	}
	eng, err := core.NewEngine(opts)
	if err != nil {
		return serve.Result{}, err
	}
	plan := c.Continuous
	var kv serve.KVAllocator
	var paged *kvcache.PagedManager
	if plan.KV {
		maxTokens := plan.Prompt + plan.Gen
		if plan.Paged {
			pm, err := kvcache.NewPaged(c.Node, c.Model, plan.Pool, maxTokens, kvcache.PagedConfig{
				BlockTokens: plan.Block,
				Watermark:   plan.Watermark,
			})
			if err != nil {
				return serve.Result{}, fmt.Errorf("kv: %w", err)
			}
			kv = pm
			paged = pm
		} else {
			m, err := kvcache.New(c.Node, c.Model, plan.Pool, maxTokens)
			if err != nil {
				return serve.Result{}, fmt.Errorf("kv: %w", err)
			}
			kv = m
		}
	}
	cres, err := generate.RunContinuous(eng.Clock(), eng.Runtime(), generate.ContinuousConfig{
		Sequences:  plan.Sequences,
		RatePerSec: c.Rate,
		PromptLen:  plan.Prompt,
		GenTokens:  plan.Gen,
		MaxPool:    plan.Pool,
		KV:         kv,
		Seed:       c.Scenario.Workload.Seed,
	})
	if err != nil {
		return serve.Result{}, err
	}
	pcts := stats.Percentiles(cres.Total, 50, 95, 99)
	res := serve.Result{
		Scenario:         c.Scenario.Name,
		Runtime:          kind.String(),
		Completed:        cres.Conversations,
		Requests:         cres.Conversations,
		Latencies:        cres.Total,
		AvgLatency:       stats.Mean(cres.Total),
		P50:              pcts[0],
		P95:              pcts[1],
		P99:              pcts[2],
		Makespan:         cres.Makespan,
		TTFT:             cres.AvgTTFT(),
		TPOT:             cres.AvgTPOT(),
		Preemptions:      cres.Preemptions,
		Continuous:       true,
		RecomputedTokens: cres.RecomputedTokens,
		Iterations:       cres.Iterations,
		MeanPool:         cres.MeanPool,
	}
	if paged != nil {
		res.KVPeakBlocks = paged.PeakUsedBlocks()
	}
	return res, nil
}

// runFleetOne serves the scenario on one runtime replicated across the
// cluster, with the health-aware router in front. The shards knob maps
// onto the fleet executor's worker count — results are byte-identical
// at any setting.
func runFleetOne(c *Compiled, kind core.RuntimeKind, shards int) (serve.Result, error) {
	cfg := cluster.Config{
		Cluster: *c.Cluster,
		Model:   c.Model,
		Runtime: kind,
		Probe:   c.Probe,
		Workers: shards,
	}
	if kind == core.KindLiger {
		lc := liger.DefaultConfig(c.Node.Name)
		lc.DegradationAware = true
		cfg.Liger = lc
		cfg.LigerSet = true
	}
	if !c.Schedule.Empty() {
		sched := c.Schedule
		cfg.Faults = &sched
	}
	f, err := cluster.New(cfg)
	if err != nil {
		return serve.Result{}, err
	}
	trace, err := serve.Generate(c.Trace)
	if err != nil {
		return serve.Result{}, err
	}
	res, err := serve.RunFleet(f, trace, c.Policy, serve.RouterPolicy{
		Hedge: c.Hedge,
		Seed:  c.Scenario.Workload.Seed,
	})
	if err != nil {
		return res, err
	}
	res.Scenario = c.Scenario.Name
	return res, nil
}

// buildReport evaluates assertions over the per-runtime results.
func buildReport(c *Compiled, results []serve.Result) (*Report, error) {
	rep := &Report{
		Scenario:    c.Scenario.Name,
		Description: c.Scenario.Description,
		Node:        c.Node.Name,
		GPUs:        c.Node.NumGPUs,
		Model:       c.Model.Name,
		Seed:        c.Scenario.Workload.Seed,
		Batches:     c.Trace.Batches,
		Rate:        c.Rate,
		Process:     c.Trace.Process.String(),
		Horizon:     c.Horizon,
		Solo:        c.Solo,
		Compiled:    c,
		Results:     results,
		Pass:        true,
	}
	byName := make(map[string]serve.Result, len(results))
	for _, r := range results {
		byName[r.Runtime] = r
	}
	ctx := evalContext{results: byName, horizon: c.Horizon, solo: c.Solo}
	for _, a := range c.assertions {
		ar, err := a.eval(ctx)
		if err != nil {
			return nil, err
		}
		if !ar.Pass {
			rep.Pass = false
		}
		rep.Assertions = append(rep.Assertions, ar)
	}
	return rep, nil
}

// Report is the end-of-run artifact: per-runtime serving results plus
// the evaluated assertions. Rendering is deterministic in both forms.
type Report struct {
	Scenario    string
	Description string
	Node        string
	GPUs        int
	Model       string
	Seed        int64
	Batches     int
	Rate        float64
	Process     string
	Horizon     time.Duration
	Solo        time.Duration
	Compiled    *Compiled
	Results     []serve.Result
	Assertions  []AssertionResult
	Pass        bool
}

// Verdict renders the one-line outcome.
func (r *Report) Verdict() string {
	if len(r.Assertions) == 0 {
		return fmt.Sprintf("scenario %s: PASS (no assertions)", r.Scenario)
	}
	passed := 0
	for _, a := range r.Assertions {
		if a.Pass {
			passed++
		}
	}
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	return fmt.Sprintf("scenario %s: %s (%d/%d assertions)", r.Scenario, verdict, passed, len(r.Assertions))
}
