// Package scenario is the declarative robustness DSL: a YAML/JSON
// format describing one chaos experiment — node, workload, timed and
// randomized fault events, and end-of-run assertions — plus the loader,
// the compiler that lowers a scenario onto the faults/serve/runtimes
// stack, the assertion evaluator, and a seeded fleet stress harness.
//
// PRs 2–3 made fault injection and elastic failover deterministic, but
// every chaos experiment was still hand-coded Go. A scenario file turns
// that machinery into data: the `scenarios/` corpus doubles as the
// repo's robustness acceptance suite (run in CI), and `ligersim stress`
// generates whole randomized fleets of scenarios from one master seed.
// Everything downstream of a scenario — schedules, traces, reports — is
// a pure function of the file and the seed, byte-identical at any
// -parallel or -shards setting.
package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Scenario is the typed form of one scenario file.
type Scenario struct {
	// Name identifies the scenario in reports; defaults to the file's
	// base name without extension.
	Name string
	// Description is free text echoed into reports.
	Description string
	// Model names the transformer to serve (model.ByName); defaults to
	// OPT-30B, the paper's common testbed model.
	Model string
	// Runtimes lists the engines to run: liger, intra, inter, interth.
	// Empty means the paper's three headline runtimes.
	Runtimes []string
	Node     NodeSpec
	// Cluster, when present, lifts the scenario to a fleet: N replica
	// nodes (each shaped by Node) plus spares behind an inter-node
	// network, served through the health-aware request router. Enables
	// the node-fail chaos kind and per-event node targets.
	Cluster  *ClusterSpec
	Workload Workload
	// KV, when present, arms KV-cache admission control for a
	// continuous-mode workload: the paged allocator (default) or the
	// worst-case reservation manager.
	KV     *KVSpec
	Policy PolicySpec
	Chaos  Chaos
	// Assert holds the end-of-run assertions, one expression per line
	// (see assert.go for the grammar).
	Assert []string
}

// ClusterSpec describes the fleet topology.
type ClusterSpec struct {
	// Nodes is the number of model replicas (one per node).
	Nodes int
	// Spares is the number of idle standby nodes available for replica
	// re-placement after whole-node loss.
	Spares int
	// Network names the inter-node network preset (ib, ethernet);
	// defaults to ib.
	Network string
	// Probe is the router's health-probe interval; it quantizes
	// node-loss detection. Zero uses the cluster layer's default.
	Probe TimeSpec
}

func (c *ClusterSpec) validate() error {
	switch {
	case c.Nodes < 1:
		return fmt.Errorf("cluster.nodes: need at least one replica node, got %d", c.Nodes)
	case c.Spares < 0:
		return fmt.Errorf("cluster.spares: negative spare count %d", c.Spares)
	}
	switch c.Network {
	case "", "ib", "ethernet":
	default:
		return fmt.Errorf("cluster.network: unknown network preset %q (want ib or ethernet)", c.Network)
	}
	return nil
}

// NodeSpec selects and optionally degrades the simulated hardware.
type NodeSpec struct {
	// Preset is the hw preset name (v100, a100); defaults to v100.
	Preset string
	// GPUs overrides the preset's device count when positive.
	GPUs int
	// Devices holds static per-device overrides, applied as
	// persist-to-end fault windows before any chaos event.
	Devices []DeviceOverride
}

// DeviceOverride statically degrades one device for the whole run.
type DeviceOverride struct {
	Device int
	// Speed scales the device's overall progress rate in (0, 1]; 0
	// means no speed override.
	Speed float64
	// Link scales only the device's communication rate in (0, 1]; 0
	// means no link override.
	Link float64
}

// Workload describes the request trace. It lowers onto
// serve.TraceConfig verbatim, so goodput/SLO accounting is the serving
// layer's own.
type Workload struct {
	// Batches is the number of batch arrivals. Exactly one of Batches
	// and Duration must be set; Duration derives Batches from Rate.
	Batches int
	// Duration is the nominal trace span (alternative to Batches).
	Duration time.Duration
	// Batch is requests per batch (default 2, the paper's setting).
	Batch int
	// Rate is the batch arrival rate: either absolute batches/second or
	// relative to the node's analytic intra-op capacity ("0.8x").
	Rate RateSpec
	// Process is the arrival process: constant, poisson, bursty,
	// diurnal (default constant).
	Process string
	// MinSeq/MaxSeq bound the uniform per-batch sequence length
	// (defaults 16–128, the paper's range).
	MinSeq, MaxSeq int
	// Phase is context (default) or decode.
	Phase string
	// CtxLen is the KV-cache length for decode traces.
	CtxLen int
	// Mode selects the serving discipline: "" (batch serving, the
	// default) or "continuous" (iteration-level generative scheduling:
	// Batches counts sequences, Rate is the sequence arrival rate, and
	// Prompt/Gen/Pool shape the generation).
	Mode string
	// Prompt/Gen are the per-sequence prefill and decode lengths
	// (continuous mode; defaults 32/16).
	Prompt int
	Gen    int
	// Pool caps live sequences per decode iteration (continuous mode;
	// default 8).
	Pool int
	// Seed drives the trace and every seeded chaos generator.
	Seed int64
}

// KVSpec arms KV-cache admission control (continuous mode only).
type KVSpec struct {
	// Paged selects the paged allocator with preemption (default true);
	// false uses worst-case reservation — strictly fewer concurrent
	// sequences at equal memory, but no preemptions.
	Paged *bool
	// Block is the paged allocator's tokens-per-block (default 16).
	Block int
	// Watermark is the free-block fraction under which the scheduler
	// preempts proactively (default 0.05).
	Watermark float64
}

func (k *KVSpec) validate() error {
	switch {
	case k.Block < 0:
		return fmt.Errorf("kv.block: negative block size %d", k.Block)
	case k.Watermark < 0 || k.Watermark >= 1:
		return fmt.Errorf("kv.watermark: %v outside [0, 1)", k.Watermark)
	}
	if k.Paged != nil && !*k.Paged {
		if k.Block != 0 || k.Watermark != 0 {
			return fmt.Errorf("kv: block/watermark are paged-allocator knobs; drop them or set paged: true")
		}
	}
	return nil
}

// Continuous reports whether the workload runs the iteration-level
// generative discipline.
func (w Workload) Continuous() bool { return w.Mode == "continuous" }

// PolicySpec is the deadline/retry serving policy. Durations accept
// the solo-multiple form ("10x" = ten solo batch durations), so a
// scenario stays meaningful when the cost model moves.
type PolicySpec struct {
	Deadline   TimeSpec
	Retries    int
	Backoff    TimeSpec
	BackoffCap TimeSpec
	QueueLimit int
	// Hedge is the fleet router's hedging delay: a request with no
	// completion after this span gets one duplicate dispatch to a
	// different healthy replica. Cluster scenarios only.
	Hedge TimeSpec
}

// Chaos is the fault plan: explicit timed events plus seeded
// randomized generators.
type Chaos struct {
	// CollTimeout arms the collective watchdog (required by stall/drop
	// shapes so hung rendezvous abort instead of waiting out windows).
	CollTimeout TimeSpec
	Events      []ChaosEvent
	Random      []RandomChaos
}

// ChaosEvent is one explicit timed fault.
type ChaosEvent struct {
	// Kind is a faults.Kind name: slowdown, link-degrade, device-drop,
	// coll-stall, device-fail, node-fail (cluster scenarios only).
	Kind   string
	Device int
	// Node is the cluster node the event targets (cluster scenarios
	// only; node-fail's whole target, a device event's host node).
	Node int
	// Start opens the window ("30%" of the horizon or "12ms").
	Start TimeSpec
	// Duration is the window length; omitted means persist-to-end.
	// device-fail ignores it. An explicitly zero-length window is a
	// validation error (the author almost certainly meant something).
	Duration TimeSpec
	// Factor is the rate multiplier for slowdown/link-degrade.
	Factor float64
}

// RandomChaos is a seeded generator expanding into Count events of one
// kind with starts drawn uniformly from Window.
type RandomChaos struct {
	Kind  string
	Count int
	// Window bounds the generated start instants [lo, hi).
	Window [2]TimeSpec
	// Duration is each generated window's length.
	Duration TimeSpec
	Factor   float64
	// Devices restricts the target devices; empty means any device.
	Devices []int
	// Seed offsets the workload seed for this generator; generators
	// with equal seeds at different positions still draw independently.
	Seed int64
}

// Load reads and validates a scenario file (YAML or JSON).
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	sc, err := Parse(data, name)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return sc, nil
}

// Parse decodes scenario bytes. defaultName names the scenario when
// the file omits `name:`.
func Parse(data []byte, defaultName string) (*Scenario, error) {
	doc, err := parseDocument(data)
	if err != nil {
		return nil, err
	}
	sc, err := decodeScenario(doc)
	if err != nil {
		return nil, err
	}
	if sc.Name == "" {
		sc.Name = defaultName
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// runtimeAliases maps scenario runtime names to result names.
var runtimeAliases = map[string]string{
	"liger":    "Liger",
	"intra":    "Intra-Op",
	"intra-op": "Intra-Op",
	"inter":    "Inter-Op",
	"inter-op": "Inter-Op",
	"interth":  "Inter-Th",
	"inter-th": "Inter-Th",
}

// faultKinds maps scenario kind names to faults kinds; values are the
// faults.Kind ints (kept as names here to avoid an import cycle in
// docs; compile.go resolves them).
var faultKindNames = []string{"slowdown", "link-degrade", "device-drop", "coll-stall", "device-fail", "node-fail"}

func knownFaultKind(kind string) bool {
	for _, k := range faultKindNames {
		if k == kind {
			return true
		}
	}
	return false
}

// Validate checks everything that needs no resolved horizon; window
// overlap and zero-length checks that need absolute times live in
// Compile. Errors name the section, index, and field so authors can
// find the offending line.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario needs a name")
	}
	for i, rt := range s.Runtimes {
		if _, ok := runtimeAliases[strings.ToLower(rt)]; !ok {
			return fmt.Errorf("runtimes[%d]: unknown runtime %q (want liger, intra, inter, or interth)", i, rt)
		}
	}
	if err := s.Node.validate(); err != nil {
		return err
	}
	if s.Cluster != nil {
		if err := s.Cluster.validate(); err != nil {
			return err
		}
	}
	if err := s.Workload.validate(); err != nil {
		return err
	}
	if s.KV != nil {
		if !s.Workload.Continuous() {
			return fmt.Errorf("kv: admission control needs workload.mode: continuous")
		}
		if err := s.KV.validate(); err != nil {
			return err
		}
	}
	if s.Workload.Continuous() {
		switch {
		case s.Cluster != nil:
			return fmt.Errorf("workload.mode: continuous runs on a single node (use ligersim -disagg for pooled prefill/decode)")
		case len(s.Chaos.Events) > 0 || len(s.Chaos.Random) > 0:
			return fmt.Errorf("chaos: fault injection is not supported in continuous mode yet")
		case s.Policy != (PolicySpec{}):
			return fmt.Errorf("policy: deadline/retry policies apply to batch serving, not continuous mode")
		}
	}
	if err := s.Policy.validate(); err != nil {
		return err
	}
	if err := s.Chaos.validate(s.Cluster != nil); err != nil {
		return err
	}
	if s.Cluster == nil && !s.Policy.Hedge.IsZero() {
		return fmt.Errorf("policy.hedge: hedging needs a cluster (a single node has no second replica)")
	}
	for i, expr := range s.Assert {
		if _, err := parseAssertion(expr); err != nil {
			return fmt.Errorf("assert[%d]: %w", i, err)
		}
	}
	return nil
}

func (n NodeSpec) validate() error {
	if n.GPUs < 0 {
		return fmt.Errorf("node.gpus: negative GPU count %d", n.GPUs)
	}
	seen := make(map[int]int)
	for i, d := range n.Devices {
		if d.Device < 0 {
			return fmt.Errorf("node.devices[%d]: negative device index %d", i, d.Device)
		}
		if prev, dup := seen[d.Device]; dup {
			return fmt.Errorf("node.devices[%d]: device %d already overridden by node.devices[%d]", i, d.Device, prev)
		}
		seen[d.Device] = i
		if d.Speed == 0 && d.Link == 0 {
			return fmt.Errorf("node.devices[%d]: override needs a speed or link factor", i)
		}
		if d.Speed != 0 && (d.Speed <= 0 || d.Speed > 1) {
			return fmt.Errorf("node.devices[%d]: speed %v outside (0, 1]", i, d.Speed)
		}
		if d.Link != 0 && (d.Link <= 0 || d.Link > 1) {
			return fmt.Errorf("node.devices[%d]: link %v outside (0, 1]", i, d.Link)
		}
	}
	return nil
}

func (w Workload) validate() error {
	switch {
	case w.Batches < 0:
		return fmt.Errorf("workload.batches: negative count %d", w.Batches)
	case w.Duration < 0:
		return fmt.Errorf("workload.duration: negative span %v", w.Duration)
	case w.Batches == 0 && w.Duration == 0:
		return fmt.Errorf("workload: set batches or duration")
	case w.Batches > 0 && w.Duration > 0:
		return fmt.Errorf("workload: batches and duration are mutually exclusive")
	case w.Rate.IsZero():
		return fmt.Errorf("workload.rate: required (absolute batches/s or capacity-relative like \"0.8x\")")
	case w.Batch < 0:
		return fmt.Errorf("workload.batch: negative batch size %d", w.Batch)
	case w.MinSeq < 0 || w.MaxSeq < 0 || (w.MaxSeq > 0 && w.MaxSeq < w.MinSeq):
		return fmt.Errorf("workload.seq: bad range [%d, %d]", w.MinSeq, w.MaxSeq)
	case w.CtxLen < 0:
		return fmt.Errorf("workload.ctx: negative context length %d", w.CtxLen)
	}
	switch w.Process {
	case "", "constant", "poisson", "bursty", "diurnal":
	default:
		return fmt.Errorf("workload.process: unknown process %q (want constant, poisson, bursty, or diurnal)", w.Process)
	}
	switch w.Phase {
	case "", "context", "decode":
	default:
		return fmt.Errorf("workload.phase: unknown phase %q (want context or decode)", w.Phase)
	}
	switch w.Mode {
	case "", "continuous":
	default:
		return fmt.Errorf("workload.mode: unknown mode %q (want continuous)", w.Mode)
	}
	if w.Prompt < 0 || w.Gen < 0 || w.Pool < 0 {
		return fmt.Errorf("workload: negative prompt/gen/pool %d/%d/%d", w.Prompt, w.Gen, w.Pool)
	}
	if w.Continuous() {
		switch {
		case w.Phase != "" || w.CtxLen != 0:
			return fmt.Errorf("workload.phase/ctx: continuous mode schedules its own prefill and decode phases")
		case w.Batch != 0:
			return fmt.Errorf("workload.batch: continuous mode pools sequences per iteration; size the pool with workload.pool")
		case w.MinSeq != 0 || w.MaxSeq != 0:
			return fmt.Errorf("workload.seq: continuous sequences are shaped by prompt/gen")
		case w.Process != "" && w.Process != "poisson":
			return fmt.Errorf("workload.process: continuous arrivals are poisson; drop the key or set poisson")
		}
	} else if w.Prompt != 0 || w.Gen != 0 || w.Pool != 0 {
		return fmt.Errorf("workload.prompt/gen/pool: generative knobs need workload.mode: continuous")
	}
	return nil
}

func (p PolicySpec) validate() error {
	switch {
	case p.Retries < 0:
		return fmt.Errorf("policy.retries: negative budget %d", p.Retries)
	case p.QueueLimit < 0:
		return fmt.Errorf("policy.queue_limit: negative limit %d", p.QueueLimit)
	case p.Retries > 0 && p.Backoff.IsZero():
		return fmt.Errorf("policy: retries without a backoff would resubmit at the failure instant")
	}
	return nil
}

func (c Chaos) validate(cluster bool) error {
	for i, e := range c.Events {
		if !knownFaultKind(e.Kind) {
			return fmt.Errorf("chaos.events[%d]: unknown kind %q (want %s)", i, e.Kind, strings.Join(faultKindNames, ", "))
		}
		if e.Device < 0 {
			return fmt.Errorf("chaos.events[%d] (%s): negative device index %d", i, e.Kind, e.Device)
		}
		if e.Node != 0 && !cluster {
			return fmt.Errorf("chaos.events[%d] (%s): node targets need a cluster section", i, e.Kind)
		}
		if e.Node < 0 {
			return fmt.Errorf("chaos.events[%d] (%s): negative node index %d", i, e.Kind, e.Node)
		}
		switch e.Kind {
		case "slowdown", "link-degrade":
			if e.Factor <= 0 || e.Factor > 1 {
				return fmt.Errorf("chaos.events[%d] (%s): factor %v outside (0, 1]", i, e.Kind, e.Factor)
			}
		case "device-fail":
			if !e.Duration.IsZero() {
				return fmt.Errorf("chaos.events[%d] (device-fail): a permanent failure has no duration", i)
			}
		case "node-fail":
			if !cluster {
				return fmt.Errorf("chaos.events[%d] (node-fail): whole-node loss needs a cluster section", i)
			}
			if !e.Duration.IsZero() {
				return fmt.Errorf("chaos.events[%d] (node-fail): a permanent failure has no duration", i)
			}
			if e.Factor != 0 {
				return fmt.Errorf("chaos.events[%d] (node-fail): factor has no meaning for whole-node loss", i)
			}
		}
	}
	// Duplicate device-fail / node-fail is a plan bug, not an idempotent
	// no-op: report both offending indices so the author can find the
	// lines.
	failed := make(map[[2]int]int)
	failedNode := make(map[int]int)
	for i, e := range c.Events {
		switch e.Kind {
		case "device-fail":
			key := [2]int{e.Node, e.Device}
			if prev, dup := failed[key]; dup {
				return fmt.Errorf("chaos.events[%d] fails device %d twice (first failed by chaos.events[%d])", i, e.Device, prev)
			}
			failed[key] = i
		case "node-fail":
			if prev, dup := failedNode[e.Node]; dup {
				return fmt.Errorf("chaos.events[%d] fails node %d twice (first failed by chaos.events[%d])", i, e.Node, prev)
			}
			failedNode[e.Node] = i
		}
	}
	for i, g := range c.Random {
		if !knownFaultKind(g.Kind) {
			return fmt.Errorf("chaos.random[%d]: unknown kind %q (want %s)", i, g.Kind, strings.Join(faultKindNames, ", "))
		}
		if g.Kind == "node-fail" {
			return fmt.Errorf("chaos.random[%d]: node-fail is explicit-only — losing a whole node is a headline event, schedule it in chaos.events", i)
		}
		if g.Count <= 0 {
			return fmt.Errorf("chaos.random[%d] (%s): count must be positive, got %d", i, g.Kind, g.Count)
		}
		switch g.Kind {
		case "slowdown", "link-degrade":
			if g.Factor <= 0 || g.Factor > 1 {
				return fmt.Errorf("chaos.random[%d] (%s): factor %v outside (0, 1]", i, g.Kind, g.Factor)
			}
		case "device-fail":
			if !g.Duration.IsZero() {
				return fmt.Errorf("chaos.random[%d] (device-fail): a permanent failure has no duration", i)
			}
		default:
			if g.Duration.IsZero() {
				return fmt.Errorf("chaos.random[%d] (%s): generated windows need a duration", i, g.Kind)
			}
		}
		for j, d := range g.Devices {
			if d < 0 {
				return fmt.Errorf("chaos.random[%d].devices[%d]: negative device index %d", i, j, d)
			}
		}
	}
	return nil
}

// ResultRuntimes returns the resolved runtime result names in scenario
// order (defaulting to the paper's three headline runtimes).
func (s *Scenario) ResultRuntimes() []string {
	if len(s.Runtimes) == 0 {
		return []string{"Liger", "Intra-Op", "Inter-Op"}
	}
	out := make([]string, len(s.Runtimes))
	for i, rt := range s.Runtimes {
		out[i] = runtimeAliases[strings.ToLower(rt)]
	}
	return out
}
