package scenario

import (
	"reflect"
	"strings"
	"testing"
)

func TestYAMLBlockMapping(t *testing.T) {
	doc, err := parseDocument([]byte(`
name: demo
node:
  preset: v100
  gpus: 4
workload:
  rate: 0.8x
  seq: [16, 128]
`))
	if err != nil {
		t.Fatal(err)
	}
	m := doc.(map[string]any)
	if m["name"] != "demo" {
		t.Errorf("name = %v", m["name"])
	}
	node := m["node"].(map[string]any)
	if node["preset"] != "v100" || node["gpus"] != float64(4) {
		t.Errorf("node = %v", node)
	}
	wl := m["workload"].(map[string]any)
	if wl["rate"] != "0.8x" {
		t.Errorf("rate = %v", wl["rate"])
	}
	if !reflect.DeepEqual(wl["seq"], []any{float64(16), float64(128)}) {
		t.Errorf("seq = %v", wl["seq"])
	}
}

func TestYAMLSequenceOfMappings(t *testing.T) {
	doc, err := parseDocument([]byte(`
events:
  - kind: slowdown
    device: 0
    factor: 0.5
  - kind: device-fail
    device: 2
`))
	if err != nil {
		t.Fatal(err)
	}
	events := doc.(map[string]any)["events"].([]any)
	if len(events) != 2 {
		t.Fatalf("got %d events", len(events))
	}
	e0 := events[0].(map[string]any)
	if e0["kind"] != "slowdown" || e0["factor"] != 0.5 {
		t.Errorf("events[0] = %v", e0)
	}
	e1 := events[1].(map[string]any)
	if e1["kind"] != "device-fail" || e1["device"] != float64(2) {
		t.Errorf("events[1] = %v", e1)
	}
}

func TestYAMLScalars(t *testing.T) {
	doc, err := parseDocument([]byte(`
str: plain text
quoted: "has: colon"
single: 'single quoted'
num: -3.5
yes: true
no: false
nothing: null
commented: value  # trailing comment
pct: 30%
`))
	if err != nil {
		t.Fatal(err)
	}
	m := doc.(map[string]any)
	want := map[string]any{
		"str": "plain text", "quoted": "has: colon", "single": "single quoted",
		"num": -3.5, "yes": true, "no": false, "nothing": nil,
		"commented": "value", "pct": "30%",
	}
	for k, v := range want {
		if got := m[k]; !reflect.DeepEqual(got, v) {
			t.Errorf("%s = %#v, want %#v", k, got, v)
		}
	}
}

func TestYAMLSequenceOfScalars(t *testing.T) {
	doc, err := parseDocument([]byte(`
runtimes:
  - liger
  - intra
assert:
  - liger.goodput >= 8
`))
	if err != nil {
		t.Fatal(err)
	}
	m := doc.(map[string]any)
	if !reflect.DeepEqual(m["runtimes"], []any{"liger", "intra"}) {
		t.Errorf("runtimes = %v", m["runtimes"])
	}
	if !reflect.DeepEqual(m["assert"], []any{"liger.goodput >= 8"}) {
		t.Errorf("assert = %v", m["assert"])
	}
}

func TestYAMLErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"duplicate key", "a: 1\na: 2\n", "duplicate key"},
		{"tab indent", "a:\n\tb: 1\n", "tab"},
		{"flow mapping", "a: {b: 1}\n", "flow mapping"},
		{"anchor", "a: &x 1\n", "anchor"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseDocument([]byte(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestYAMLJSONPassthrough(t *testing.T) {
	doc, err := parseDocument([]byte(`{"name": "js", "workload": {"batches": 5}}`))
	if err != nil {
		t.Fatal(err)
	}
	m := doc.(map[string]any)
	if m["name"] != "js" {
		t.Errorf("name = %v", m["name"])
	}
	if m["workload"].(map[string]any)["batches"] != float64(5) {
		t.Errorf("workload = %v", m["workload"])
	}
}
