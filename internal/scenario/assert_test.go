package scenario

import (
	"strings"
	"testing"
	"time"

	"liger/internal/serve"
)

func TestParseAssertionForms(t *testing.T) {
	cases := []struct {
		expr  string
		op    string
		isRef bool
		coeff float64
	}{
		{"liger.goodput >= 8.5", ">=", false, 1},
		{"liger.p99 <= 12x", "<=", false, 1},
		{"liger.slo_miss <= 5%", "<=", false, 1},
		{"liger.recovery_time <= 600ms", "<=", false, 1},
		{"liger.completed == 110", "==", false, 1},
		{"liger.goodput >= intra.goodput", ">=", true, 1},
		{"liger.p99 <= 1.5 * intra.p99", "<=", true, 1.5},
		{"liger.shed < 4", "<", false, 1},
		{"liger.failed > 0", ">", false, 1},
		{"liger.retries != 0", "!=", false, 1},
	}
	for _, tc := range cases {
		a, err := parseAssertion(tc.expr)
		if err != nil {
			t.Errorf("%q: %v", tc.expr, err)
			continue
		}
		if a.op != tc.op {
			t.Errorf("%q: op = %q, want %q", tc.expr, a.op, tc.op)
		}
		if (a.rhs != nil) != tc.isRef {
			t.Errorf("%q: rhs ref = %v, want %v", tc.expr, a.rhs != nil, tc.isRef)
		}
		if a.coeff != tc.coeff {
			t.Errorf("%q: coeff = %v, want %v", tc.expr, a.coeff, tc.coeff)
		}
	}
}

func TestParseAssertionErrors(t *testing.T) {
	cases := []struct{ expr, want string }{
		{"liger.goodput", "no comparison operator"},
		{"liger.goodput >=", "missing right-hand side"},
		{"liger.bogus >= 1", `unknown metric "bogus"`},
		{"vllm.goodput >= 1", `unknown runtime "vllm"`},
		{"liger.goodput >= 2 * 3", "coefficient on a literal"},
		{"liger.goodput >= banana", "bad literal"},
	}
	for _, tc := range cases {
		_, err := parseAssertion(tc.expr)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%q: err = %v, want substring %q", tc.expr, err, tc.want)
		}
	}
}

func TestAssertionEval(t *testing.T) {
	res := serve.Result{
		Runtime: "Liger", Completed: 50, Requests: 100,
		P99: 40 * time.Millisecond, Makespan: 5 * time.Second,
	}
	intra := serve.Result{Runtime: "Intra-Op", Completed: 40, Makespan: 5 * time.Second}
	ctx := evalContext{
		results: map[string]serve.Result{"Liger": res, "Intra-Op": intra},
		horizon: 4 * time.Second,
		solo:    10 * time.Millisecond,
	}
	cases := []struct {
		expr string
		pass bool
	}{
		{"liger.completed == 50", true},
		{"liger.completed >= intra.completed", true},
		{"liger.completed >= 2 * intra.completed", false},
		{"liger.p99 <= 5x", true},   // 40ms vs 5 solos = 50ms
		{"liger.p99 <= 3x", false},  // 40ms vs 30ms
		{"liger.p99 <= 41ms", true}, // absolute duration literal
		{"liger.throughput >= 9", true},
		{"liger.slo_miss <= 5%", true}, // no deadline set: miss rate 0
	}
	for _, tc := range cases {
		a, err := parseAssertion(tc.expr)
		if err != nil {
			t.Fatalf("%q: %v", tc.expr, err)
		}
		out, err := a.eval(ctx)
		if err != nil {
			t.Fatalf("%q: %v", tc.expr, err)
		}
		if out.Pass != tc.pass {
			t.Errorf("%q: pass = %v (%s), want %v", tc.expr, out.Pass, out.Detail, tc.pass)
		}
	}
}

func TestAssertionEvalMissingRuntime(t *testing.T) {
	a, err := parseAssertion("interth.goodput >= 1")
	if err != nil {
		t.Fatal(err)
	}
	_, err = a.eval(evalContext{results: map[string]serve.Result{}})
	if err == nil || !strings.Contains(err.Error(), "does not run") {
		t.Errorf("err = %v, want 'does not run'", err)
	}
}
