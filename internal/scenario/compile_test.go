package scenario

import (
	"reflect"
	"strings"
	"testing"
)

// testScenario returns a compilable baseline on the tiny model (fast).
func testScenario() *Scenario {
	return &Scenario{
		Name:  "t",
		Model: "tiny",
		Node:  NodeSpec{Preset: "v100", GPUs: 4},
		Workload: Workload{
			Batches: 10,
			Rate:    RateSpec{relative: 0.5},
			Seed:    1,
		},
	}
}

func TestCompileDefaults(t *testing.T) {
	c, err := Compile(testScenario())
	if err != nil {
		t.Fatal(err)
	}
	if c.Trace.BatchSize != 2 || c.Trace.MinSeq != 16 || c.Trace.MaxSeq != 128 {
		t.Errorf("trace defaults = %+v", c.Trace)
	}
	if c.Rate <= 0 || c.Solo <= 0 || c.Horizon <= 0 {
		t.Errorf("rate %v, solo %v, horizon %v", c.Rate, c.Solo, c.Horizon)
	}
	if len(c.Kinds) != 3 {
		t.Errorf("kinds = %v", c.Kinds)
	}
}

func TestCompileZeroDurationWindow(t *testing.T) {
	sc := testScenario()
	sc.Chaos.Events = []ChaosEvent{{
		Kind: "slowdown", Device: 0, Factor: 0.5,
		Start:    TimeSpec{kind: timeFrac, val: 0.2},
		Duration: TimeSpec{kind: timeFrac, val: 0},
	}}
	// A present-but-zero duration must be rejected with the event index,
	// kind, and range — not silently compiled into a no-op fault.
	_, err := Compile(sc)
	if err == nil || !strings.Contains(err.Error(), "chaos.events[0] (slowdown dev0): zero-duration window") {
		t.Errorf("err = %v", err)
	}
}

func TestCompileOmittedDurationPersists(t *testing.T) {
	sc := testScenario()
	sc.Chaos.Events = []ChaosEvent{{
		Kind: "slowdown", Device: 0, Factor: 0.5,
		Start: TimeSpec{kind: timeFrac, val: 0.2},
	}}
	c, err := Compile(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Schedule.Events) != 1 || c.Schedule.Events[0].Duration != 0 {
		t.Errorf("schedule = %+v", c.Schedule.Events)
	}
}

func TestCompileOverlappingWindows(t *testing.T) {
	sc := testScenario()
	sc.Chaos.Events = []ChaosEvent{
		{Kind: "slowdown", Device: 1, Factor: 0.5,
			Start:    TimeSpec{kind: timeFrac, val: 0.1},
			Duration: TimeSpec{kind: timeFrac, val: 0.4}},
		{Kind: "slowdown", Device: 1, Factor: 0.7,
			Start:    TimeSpec{kind: timeFrac, val: 0.3},
			Duration: TimeSpec{kind: timeFrac, val: 0.2}},
	}
	_, err := Compile(sc)
	if err == nil || !strings.Contains(err.Error(), "chaos.events[1] (slowdown dev1") ||
		!strings.Contains(err.Error(), "overlaps chaos.events[0]") {
		t.Errorf("err = %v", err)
	}
	// Same window shapes on different devices (or kinds) are fine.
	sc.Chaos.Events[1].Device = 2
	if _, err := Compile(sc); err != nil {
		t.Errorf("different devices: %v", err)
	}
	sc.Chaos.Events[1].Device = 1
	sc.Chaos.Events[1].Kind = "link-degrade"
	if _, err := Compile(sc); err != nil {
		t.Errorf("different kinds: %v", err)
	}
}

func TestCompileOpenEndedOverlap(t *testing.T) {
	sc := testScenario()
	sc.Chaos.Events = []ChaosEvent{
		{Kind: "slowdown", Device: 1, Factor: 0.5,
			Start: TimeSpec{kind: timeFrac, val: 0.1}}, // persists to end
		{Kind: "slowdown", Device: 1, Factor: 0.7,
			Start:    TimeSpec{kind: timeFrac, val: 0.6},
			Duration: TimeSpec{kind: timeFrac, val: 0.1}},
	}
	if _, err := Compile(sc); err == nil || !strings.Contains(err.Error(), "overlaps") {
		t.Errorf("err = %v", err)
	}
}

func TestCompileAllDevicesFailed(t *testing.T) {
	sc := testScenario()
	sc.Node.GPUs = 2
	sc.Chaos.Events = []ChaosEvent{
		{Kind: "device-fail", Device: 0, Start: TimeSpec{kind: timeFrac, val: 0.2}},
		{Kind: "device-fail", Device: 1, Start: TimeSpec{kind: timeFrac, val: 0.4}},
	}
	if _, err := Compile(sc); err == nil || !strings.Contains(err.Error(), "nothing would survive") {
		t.Errorf("err = %v", err)
	}
}

func TestCompileRandomDeterministic(t *testing.T) {
	build := func() *Scenario {
		sc := testScenario()
		sc.Chaos.Random = []RandomChaos{{
			Kind: "slowdown", Count: 3, Factor: 0.5, Seed: 7,
			Duration: TimeSpec{kind: timeFrac, val: 0.05},
		}}
		return sc
	}
	a, err := Compile(build())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(build())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Schedule, b.Schedule) {
		t.Errorf("recompiles differ:\n%v\n%v", a.Schedule, b.Schedule)
	}
	if len(a.Schedule.Events) != 3 {
		t.Errorf("got %d events", len(a.Schedule.Events))
	}
}

func TestCompileRandomStreamsIndependent(t *testing.T) {
	gen := func(seed int64) RandomChaos {
		return RandomChaos{
			Kind: "slowdown", Count: 2, Factor: 0.5, Seed: seed,
			Duration: TimeSpec{kind: timeFrac, val: 0.05},
		}
	}
	solo := testScenario()
	solo.Chaos.Random = []RandomChaos{gen(7)}
	a, err := Compile(solo)
	if err != nil {
		t.Fatal(err)
	}
	// Appending a second generator must not perturb the first's events.
	both := testScenario()
	both.Chaos.Random = []RandomChaos{gen(7), gen(9)}
	b, err := Compile(both)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Schedule.Events, b.Schedule.Events[:2]) {
		t.Errorf("first generator perturbed:\n%v\n%v", a.Schedule.Events, b.Schedule.Events[:2])
	}
}

func TestCompileRandomDeviceFailLeavesSurvivor(t *testing.T) {
	sc := testScenario()
	sc.Chaos.Random = []RandomChaos{{Kind: "device-fail", Count: 4, Seed: 1}}
	if _, err := Compile(sc); err == nil || !strings.Contains(err.Error(), "no survivor") {
		t.Errorf("err = %v", err)
	}
	sc.Chaos.Random[0].Count = 2
	c, err := Compile(sc)
	if err != nil {
		t.Fatal(err)
	}
	devs := map[int]bool{}
	for _, e := range c.Schedule.Events {
		if devs[e.Device] {
			t.Errorf("device %d failed twice", e.Device)
		}
		devs[e.Device] = true
	}
}

func TestCompileAssertionUnknownRuntime(t *testing.T) {
	sc := testScenario()
	sc.Runtimes = []string{"liger", "intra"}
	sc.Assert = []string{"interth.goodput >= 1"}
	if _, err := Compile(sc); err == nil || !strings.Contains(err.Error(), "does not run") {
		t.Errorf("err = %v", err)
	}
}

func TestCompileDurationDerivesBatches(t *testing.T) {
	sc := testScenario()
	sc.Workload.Batches = 0
	sc.Workload.Duration = 1000 * 1000 * 1000 // 1s
	c, err := Compile(sc)
	if err != nil {
		t.Fatal(err)
	}
	if c.Trace.Batches <= 0 {
		t.Errorf("batches = %d", c.Trace.Batches)
	}
}
