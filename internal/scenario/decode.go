package scenario

import (
	"fmt"
	"math"
	"sort"
)

// Strict decoding of the generic parse tree into Scenario. Every
// mapping checks its key set: an unknown key is an error that names
// the full dotted path and suggests the nearest valid key, so a typo'd
// scenario fails loudly at load instead of silently dropping a fault.

// section wraps one mapping with its dotted path for error reporting.
type section struct {
	path  string
	m     map[string]any
	used  map[string]bool
	valid []string
}

func asSection(v any, path string) (*section, error) {
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("%s: want a mapping, got %s", path, typeName(v))
	}
	return &section{path: path, m: m, used: make(map[string]bool)}, nil
}

func typeName(v any) string {
	switch v.(type) {
	case map[string]any:
		return "a mapping"
	case []any:
		return "a sequence"
	case string:
		return "a string"
	case float64:
		return "a number"
	case bool:
		return "a bool"
	case nil:
		return "null"
	default:
		return fmt.Sprintf("%T", v)
	}
}

// get marks a key used and returns its value.
func (s *section) get(key string) (any, bool) {
	v, ok := s.m[key]
	if ok {
		s.used[key] = true
	}
	return v, ok
}

func (s *section) child(key string) string {
	if s.path == "" {
		return key
	}
	return s.path + "." + key
}

// finish errors on any unconsumed (unknown) key, with a suggestion.
func (s *section) finish() error {
	var unknown []string
	for k := range s.m {
		if !s.used[k] {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) == 0 {
		return nil
	}
	sort.Strings(unknown)
	msg := fmt.Sprintf("unknown key %q", s.child(unknown[0]))
	if hint := nearest(unknown[0], s.valid); hint != "" {
		msg += fmt.Sprintf(" (did you mean %q?)", hint)
	}
	return fmt.Errorf("%s", msg)
}

// expect declares the section's valid keys (for typo suggestions).
func (s *section) expect(keys ...string) { s.valid = keys }

// nearest returns the valid key with the smallest edit distance, when
// that distance is small enough to be a plausible typo.
func nearest(got string, valid []string) string {
	best, bestDist := "", 3
	for _, k := range valid {
		if d := editDistance(got, k); d < bestDist {
			best, bestDist = k, d
		}
	}
	return best
}

func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func (s *section) str(key string) (string, error) {
	v, ok := s.get(key)
	if !ok || v == nil {
		return "", nil
	}
	out, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("%s: want a string, got %s", s.child(key), typeName(v))
	}
	return out, nil
}

func (s *section) integer(key string) (int, error) {
	v, ok := s.get(key)
	if !ok || v == nil {
		return 0, nil
	}
	f, ok := v.(float64)
	if !ok || f != math.Trunc(f) {
		return 0, fmt.Errorf("%s: want an integer, got %s", s.child(key), renderScalar(v))
	}
	return int(f), nil
}

func (s *section) number(key string) (float64, error) {
	v, ok := s.get(key)
	if !ok || v == nil {
		return 0, nil
	}
	f, ok := v.(float64)
	if !ok {
		return 0, fmt.Errorf("%s: want a number, got %s", s.child(key), renderScalar(v))
	}
	return f, nil
}

// boolean returns nil when the key is absent, so callers can tell
// "unset" from an explicit false (KVSpec.Paged defaults to true).
func (s *section) boolean(key string) (*bool, error) {
	v, ok := s.get(key)
	if !ok || v == nil {
		return nil, nil
	}
	b, ok := v.(bool)
	if !ok {
		return nil, fmt.Errorf("%s: want a bool, got %s", s.child(key), renderScalar(v))
	}
	return &b, nil
}

func (s *section) timeSpec(key string) (TimeSpec, error) {
	v, ok := s.get(key)
	if !ok || v == nil {
		return TimeSpec{}, nil
	}
	return parseTimeSpec(v, s.child(key))
}

func (s *section) seq(key string) ([]any, error) {
	v, ok := s.get(key)
	if !ok || v == nil {
		return nil, nil
	}
	out, ok := v.([]any)
	if !ok {
		return nil, fmt.Errorf("%s: want a sequence, got %s", s.child(key), typeName(v))
	}
	return out, nil
}

func renderScalar(v any) string {
	if s, ok := v.(string); ok {
		return fmt.Sprintf("%q", s)
	}
	return fmt.Sprintf("%v (%s)", v, typeName(v))
}

func decodeScenario(doc any) (*Scenario, error) {
	top, err := asSection(doc, "")
	if err != nil {
		return nil, err
	}
	top.expect("name", "description", "model", "runtimes", "node", "cluster", "workload", "kv", "policy", "chaos", "assert")
	sc := &Scenario{}
	if sc.Name, err = top.str("name"); err != nil {
		return nil, err
	}
	if sc.Description, err = top.str("description"); err != nil {
		return nil, err
	}
	if sc.Model, err = top.str("model"); err != nil {
		return nil, err
	}
	if rts, err := top.seq("runtimes"); err != nil {
		return nil, err
	} else {
		for i, v := range rts {
			name, ok := v.(string)
			if !ok {
				return nil, fmt.Errorf("runtimes[%d]: want a runtime name, got %s", i, typeName(v))
			}
			sc.Runtimes = append(sc.Runtimes, name)
		}
	}
	if v, ok := top.get("node"); ok && v != nil {
		if sc.Node, err = decodeNode(v); err != nil {
			return nil, err
		}
	}
	if v, ok := top.get("cluster"); ok && v != nil {
		cl, err := decodeCluster(v)
		if err != nil {
			return nil, err
		}
		sc.Cluster = &cl
	}
	if v, ok := top.get("workload"); ok && v != nil {
		if sc.Workload, err = decodeWorkload(v); err != nil {
			return nil, err
		}
	} else {
		return nil, fmt.Errorf("missing required section \"workload\"")
	}
	if v, ok := top.get("kv"); ok && v != nil {
		kv, err := decodeKV(v)
		if err != nil {
			return nil, err
		}
		sc.KV = &kv
	}
	if v, ok := top.get("policy"); ok && v != nil {
		if sc.Policy, err = decodePolicy(v); err != nil {
			return nil, err
		}
	}
	if v, ok := top.get("chaos"); ok && v != nil {
		if sc.Chaos, err = decodeChaos(v); err != nil {
			return nil, err
		}
	}
	if exprs, err := top.seq("assert"); err != nil {
		return nil, err
	} else {
		for i, v := range exprs {
			expr, ok := v.(string)
			if !ok {
				return nil, fmt.Errorf("assert[%d]: want an expression string, got %s", i, typeName(v))
			}
			sc.Assert = append(sc.Assert, expr)
		}
	}
	return sc, top.finish()
}

func decodeNode(v any) (NodeSpec, error) {
	s, err := asSection(v, "node")
	if err != nil {
		return NodeSpec{}, err
	}
	s.expect("preset", "gpus", "devices")
	var n NodeSpec
	if n.Preset, err = s.str("preset"); err != nil {
		return n, err
	}
	if n.GPUs, err = s.integer("gpus"); err != nil {
		return n, err
	}
	devs, err := s.seq("devices")
	if err != nil {
		return n, err
	}
	for i, dv := range devs {
		ds, err := asSection(dv, fmt.Sprintf("node.devices[%d]", i))
		if err != nil {
			return n, err
		}
		ds.expect("device", "speed", "link")
		var d DeviceOverride
		if d.Device, err = ds.integer("device"); err != nil {
			return n, err
		}
		if d.Speed, err = ds.number("speed"); err != nil {
			return n, err
		}
		if d.Link, err = ds.number("link"); err != nil {
			return n, err
		}
		if err := ds.finish(); err != nil {
			return n, err
		}
		n.Devices = append(n.Devices, d)
	}
	return n, s.finish()
}

func decodeCluster(v any) (ClusterSpec, error) {
	s, err := asSection(v, "cluster")
	if err != nil {
		return ClusterSpec{}, err
	}
	s.expect("nodes", "spares", "network", "probe_interval")
	var c ClusterSpec
	if c.Nodes, err = s.integer("nodes"); err != nil {
		return c, err
	}
	if c.Spares, err = s.integer("spares"); err != nil {
		return c, err
	}
	if c.Network, err = s.str("network"); err != nil {
		return c, err
	}
	if c.Probe, err = s.timeSpec("probe_interval"); err != nil {
		return c, err
	}
	return c, s.finish()
}

func decodeWorkload(v any) (Workload, error) {
	s, err := asSection(v, "workload")
	if err != nil {
		return Workload{}, err
	}
	s.expect("batches", "duration", "batch", "rate", "process", "seq", "phase", "ctx", "mode", "prompt", "gen", "pool", "seed")
	var w Workload
	if w.Batches, err = s.integer("batches"); err != nil {
		return w, err
	}
	if ts, err := s.timeSpec("duration"); err != nil {
		return w, err
	} else if !ts.IsZero() {
		if ts.kind != timeAbs {
			return w, fmt.Errorf("workload.duration: want an absolute duration, got %q", ts)
		}
		w.Duration = ts.abs
	}
	if w.Batch, err = s.integer("batch"); err != nil {
		return w, err
	}
	if rv, ok := s.get("rate"); ok && rv != nil {
		if w.Rate, err = parseRateSpec(rv, "workload.rate"); err != nil {
			return w, err
		}
	}
	if w.Process, err = s.str("process"); err != nil {
		return w, err
	}
	if sv, ok := s.get("seq"); ok && sv != nil {
		if w.MinSeq, w.MaxSeq, err = decodeSeqRange(sv); err != nil {
			return w, err
		}
	}
	if w.Phase, err = s.str("phase"); err != nil {
		return w, err
	}
	if w.CtxLen, err = s.integer("ctx"); err != nil {
		return w, err
	}
	if w.Mode, err = s.str("mode"); err != nil {
		return w, err
	}
	if w.Prompt, err = s.integer("prompt"); err != nil {
		return w, err
	}
	if w.Gen, err = s.integer("gen"); err != nil {
		return w, err
	}
	if w.Pool, err = s.integer("pool"); err != nil {
		return w, err
	}
	seed, err := s.integer("seed")
	if err != nil {
		return w, err
	}
	w.Seed = int64(seed)
	return w, s.finish()
}

// decodeSeqRange accepts `seq: [16, 128]` or a {min, max} mapping.
func decodeSeqRange(v any) (int, int, error) {
	switch sv := v.(type) {
	case []any:
		if len(sv) != 2 {
			return 0, 0, fmt.Errorf("workload.seq: want [min, max], got %d elements", len(sv))
		}
		lo, ok1 := sv[0].(float64)
		hi, ok2 := sv[1].(float64)
		if !ok1 || !ok2 || lo != math.Trunc(lo) || hi != math.Trunc(hi) {
			return 0, 0, fmt.Errorf("workload.seq: want two integers, got %v", sv)
		}
		return int(lo), int(hi), nil
	case map[string]any:
		s, _ := asSection(v, "workload.seq")
		s.expect("min", "max")
		lo, err := s.integer("min")
		if err != nil {
			return 0, 0, err
		}
		hi, err := s.integer("max")
		if err != nil {
			return 0, 0, err
		}
		return lo, hi, s.finish()
	default:
		return 0, 0, fmt.Errorf("workload.seq: want [min, max], got %s", typeName(v))
	}
}

func decodeKV(v any) (KVSpec, error) {
	s, err := asSection(v, "kv")
	if err != nil {
		return KVSpec{}, err
	}
	s.expect("paged", "block", "watermark")
	var k KVSpec
	if k.Paged, err = s.boolean("paged"); err != nil {
		return k, err
	}
	if k.Block, err = s.integer("block"); err != nil {
		return k, err
	}
	if k.Watermark, err = s.number("watermark"); err != nil {
		return k, err
	}
	return k, s.finish()
}

func decodePolicy(v any) (PolicySpec, error) {
	s, err := asSection(v, "policy")
	if err != nil {
		return PolicySpec{}, err
	}
	s.expect("deadline", "retries", "backoff", "backoff_cap", "queue_limit", "hedge")
	var p PolicySpec
	if p.Deadline, err = s.timeSpec("deadline"); err != nil {
		return p, err
	}
	if p.Retries, err = s.integer("retries"); err != nil {
		return p, err
	}
	if p.Backoff, err = s.timeSpec("backoff"); err != nil {
		return p, err
	}
	if p.BackoffCap, err = s.timeSpec("backoff_cap"); err != nil {
		return p, err
	}
	if p.QueueLimit, err = s.integer("queue_limit"); err != nil {
		return p, err
	}
	if p.Hedge, err = s.timeSpec("hedge"); err != nil {
		return p, err
	}
	return p, s.finish()
}

func decodeChaos(v any) (Chaos, error) {
	s, err := asSection(v, "chaos")
	if err != nil {
		return Chaos{}, err
	}
	s.expect("coll_timeout", "events", "random")
	var c Chaos
	if c.CollTimeout, err = s.timeSpec("coll_timeout"); err != nil {
		return c, err
	}
	events, err := s.seq("events")
	if err != nil {
		return c, err
	}
	for i, ev := range events {
		path := fmt.Sprintf("chaos.events[%d]", i)
		es, err := asSection(ev, path)
		if err != nil {
			return c, err
		}
		es.expect("kind", "node", "device", "start", "duration", "factor")
		var e ChaosEvent
		if e.Kind, err = es.str("kind"); err != nil {
			return c, err
		}
		if e.Node, err = es.integer("node"); err != nil {
			return c, err
		}
		if e.Device, err = es.integer("device"); err != nil {
			return c, err
		}
		if e.Start, err = es.timeSpec("start"); err != nil {
			return c, err
		}
		if e.Duration, err = es.timeSpec("duration"); err != nil {
			return c, err
		}
		if e.Factor, err = es.number("factor"); err != nil {
			return c, err
		}
		if err := es.finish(); err != nil {
			return c, err
		}
		c.Events = append(c.Events, e)
	}
	gens, err := s.seq("random")
	if err != nil {
		return c, err
	}
	for i, gv := range gens {
		path := fmt.Sprintf("chaos.random[%d]", i)
		gs, err := asSection(gv, path)
		if err != nil {
			return c, err
		}
		gs.expect("kind", "count", "window", "duration", "factor", "devices", "seed")
		var g RandomChaos
		if g.Kind, err = gs.str("kind"); err != nil {
			return c, err
		}
		if g.Count, err = gs.integer("count"); err != nil {
			return c, err
		}
		if wv, ok := gs.get("window"); ok && wv != nil {
			wseq, ok := wv.([]any)
			if !ok || len(wseq) != 2 {
				return c, fmt.Errorf("%s.window: want [lo, hi]", path)
			}
			if g.Window[0], err = parseTimeSpec(wseq[0], path+".window[0]"); err != nil {
				return c, err
			}
			if g.Window[1], err = parseTimeSpec(wseq[1], path+".window[1]"); err != nil {
				return c, err
			}
		}
		if g.Duration, err = gs.timeSpec("duration"); err != nil {
			return c, err
		}
		if g.Factor, err = gs.number("factor"); err != nil {
			return c, err
		}
		if devs, err := gs.seq("devices"); err != nil {
			return c, err
		} else {
			for j, dv := range devs {
				f, ok := dv.(float64)
				if !ok || f != math.Trunc(f) {
					return c, fmt.Errorf("%s.devices[%d]: want an integer, got %s", path, j, renderScalar(dv))
				}
				g.Devices = append(g.Devices, int(f))
			}
		}
		seed, err := gs.integer("seed")
		if err != nil {
			return c, err
		}
		g.Seed = int64(seed)
		if err := gs.finish(); err != nil {
			return c, err
		}
		c.Random = append(c.Random, g)
	}
	return c, s.finish()
}
