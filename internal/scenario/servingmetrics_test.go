package scenario

import (
	"testing"
	"time"

	"liger/internal/serve"
)

// The serving-telemetry assert metrics parse and read the continuous
// result fields, so scenarios can gate on KV pressure and router
// behaviour (liger.kv_peak_blocks, liger.router_sheds, ...).
func TestServingAssertMetrics(t *testing.T) {
	res := serve.Result{
		Runtime: "Liger", Completed: 16, Requests: 16,
		Makespan: 2 * time.Second, Continuous: true,
		Preemptions: 3, RecomputedTokens: 768,
		Iterations: 120, MeanPool: 6.5, KVPeakBlocks: 310, Shed: 2,
	}
	ctx := evalContext{
		results: map[string]serve.Result{"Liger": res},
		horizon: 2 * time.Second,
		solo:    10 * time.Millisecond,
	}
	cases := []struct {
		expr string
		pass bool
	}{
		{"liger.recomputed_tokens == 768", true},
		{"liger.recomputed_tokens < 256", false},
		{"liger.iterations >= 120", true},
		{"liger.mean_pool <= 8", true},
		{"liger.mean_pool > 7", false},
		{"liger.kv_peak_blocks == 310", true},
		{"liger.router_sheds <= 2", true},
		{"liger.router_sheds == 0", false},
		{"liger.preemptions == 3", true},
	}
	for _, tc := range cases {
		a, err := parseAssertion(tc.expr)
		if err != nil {
			t.Fatalf("%q: %v", tc.expr, err)
		}
		out, err := a.eval(ctx)
		if err != nil {
			t.Fatalf("%q: %v", tc.expr, err)
		}
		if out.Pass != tc.pass {
			t.Errorf("%q: pass = %v (%s), want %v", tc.expr, out.Pass, out.Detail, tc.pass)
		}
	}
}
