package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"liger/internal/serve"
)

// WriteText renders the deterministic human-readable report: header,
// compiled chaos plan, per-runtime serving table, assertion outcomes,
// and the verdict line. The bytes are a pure function of the scenario
// and seed — CI compares them across -parallel and -shards settings.
func (r *Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "scenario  : %s", r.Scenario); err != nil {
		return err
	}
	if r.Description != "" {
		fmt.Fprintf(w, " — %s", r.Description)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "node      : %s (%d GPUs), model %s\n", r.Node, r.GPUs, r.Model)
	if cp := r.continuous(); cp != nil {
		fmt.Fprintf(w, "trace     : %d sequences, poisson rate %.3f/s, seed %d, horizon %s\n",
			cp.Sequences, r.Rate, r.Seed, fmtDur(r.Horizon))
		fmt.Fprintf(w, "serving   : continuous (prompt %d + gen %d tokens, pool %d), kv %s\n",
			cp.Prompt, cp.Gen, cp.Pool, kvDesc(cp))
	} else {
		fmt.Fprintf(w, "trace     : %d batches, %s rate %.3f/s, seed %d, horizon %s\n",
			r.Batches, r.Process, r.Rate, r.Seed, fmtDur(r.Horizon))
	}
	if c := r.Compiled; c != nil && c.Cluster != nil {
		fmt.Fprintf(w, "cluster   : %d replicas + %d spares over %s (%.0f GB/s, %s one-way)\n",
			c.Cluster.Nodes, c.Cluster.Spares, c.Cluster.Network.Name,
			c.Cluster.Network.EffectiveBWGBs(), fmtDur(c.Cluster.Network.Latency))
	}
	if c := r.Compiled; c != nil {
		pol := c.Policy
		if pol.Deadline > 0 || pol.MaxRetries > 0 || pol.QueueLimit > 0 {
			fmt.Fprintf(w, "policy    : deadline %s, %d retries, backoff %s (cap %s), queue limit %d",
				fmtDur(pol.Deadline), pol.MaxRetries, fmtDur(pol.Backoff), fmtDur(pol.BackoffCap), pol.QueueLimit)
			if c.Hedge > 0 {
				fmt.Fprintf(w, ", hedge %s", fmtDur(c.Hedge))
			}
			fmt.Fprintln(w)
		}
		if !c.Schedule.Empty() {
			fmt.Fprintf(w, "chaos     : %d events, watchdog %s\n", len(c.Schedule.Events), fmtDur(c.Schedule.CollTimeout))
			for i, e := range c.Schedule.Events {
				fmt.Fprintf(w, "  [%d] %s\n", i, e)
			}
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if r.continuous() != nil {
		fmt.Fprintln(tw, "runtime\tttft\ttpot\tp99\tcompleted\tpreempted\tmakespan")
		for _, res := range r.Results {
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%d\t%d\t%s\n",
				res.Runtime, fmtDur(res.TTFT), fmtDur(res.TPOT), fmtDur(res.P99),
				res.Completed, res.Preemptions, fmtDur(res.Makespan))
		}
	} else {
		fmt.Fprintln(tw, "runtime\tgoodput\tp99\tslo-miss\tcompleted\tfailed\tshed\tretries\trecovery")
		for _, res := range r.Results {
			fmt.Fprintf(tw, "%s\t%.3f\t%s\t%.1f%%\t%d\t%d\t%d\t%d\t%s\n",
				res.Runtime, res.PolicyGoodput(), fmtDur(res.P99), 100*res.SLOMissRate(),
				res.Completed, res.Failed, res.Shed, res.Retries, fmtDur(res.RecoveryTime))
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if len(r.Assertions) > 0 {
		fmt.Fprintln(w, "assert:")
		for _, a := range r.Assertions {
			verdict := "PASS"
			if !a.Pass {
				verdict = "FAIL"
			}
			fmt.Fprintf(w, "  %s  %-40s  (%s)\n", verdict, a.Expr, a.Detail)
		}
	}
	_, err := fmt.Fprintln(w, r.Verdict())
	return err
}

// reportDoc is the JSON layout. Results key by runtime name so
// tools/benchdiff can diff scenario artifacts by dotted path
// (results.Liger.goodput, assertions[2].lhs, ...); encoding/json sorts
// map keys, so the bytes are a pure function of the report value.
type reportDoc struct {
	Scenario    string                  `json:"scenario"`
	Description string                  `json:"description,omitempty"`
	Node        string                  `json:"node"`
	GPUs        int                     `json:"gpus"`
	Cluster     *clusterDoc             `json:"cluster,omitempty"`
	Model       string                  `json:"model"`
	Seed        int64                   `json:"seed"`
	Batches     int                     `json:"batches"`
	Rate        float64                 `json:"rate"`
	Process     string                  `json:"process"`
	HorizonMs   float64                 `json:"horizon_ms"`
	SoloMs      float64                 `json:"solo_ms"`
	Serving     *continuousDoc          `json:"serving,omitempty"`
	Pass        bool                    `json:"pass"`
	Results     map[string]serve.Result `json:"results"`
	Assertions  []AssertionResult       `json:"assertions"`
}

// continuousDoc is the continuous-serving block of the JSON report;
// absent for batch scenarios so their artifacts are unchanged.
type continuousDoc struct {
	Sequences int    `json:"sequences"`
	Prompt    int    `json:"prompt"`
	Gen       int    `json:"gen"`
	Pool      int    `json:"pool"`
	KV        string `json:"kv"`
}

// clusterDoc is the fleet topology block of the JSON report; absent
// for single-node scenarios so their artifacts are unchanged.
type clusterDoc struct {
	Nodes   int     `json:"nodes"`
	Spares  int     `json:"spares"`
	Network string  `json:"network"`
	ProbeMs float64 `json:"probe_ms,omitempty"`
	HedgeMs float64 `json:"hedge_ms,omitempty"`
}

// WriteJSON renders the machine-readable report.
func (r *Report) WriteJSON(w io.Writer) error {
	doc := reportDoc{
		Scenario:    r.Scenario,
		Description: r.Description,
		Node:        r.Node,
		GPUs:        r.GPUs,
		Model:       r.Model,
		Seed:        r.Seed,
		Batches:     r.Batches,
		Rate:        r.Rate,
		Process:     r.Process,
		HorizonMs:   ms(r.Horizon),
		SoloMs:      ms(r.Solo),
		Pass:        r.Pass,
		Results:     make(map[string]serve.Result, len(r.Results)),
		Assertions:  r.Assertions,
	}
	if cp := r.continuous(); cp != nil {
		doc.Serving = &continuousDoc{
			Sequences: cp.Sequences,
			Prompt:    cp.Prompt,
			Gen:       cp.Gen,
			Pool:      cp.Pool,
			KV:        kvDesc(cp),
		}
	}
	if c := r.Compiled; c != nil && c.Cluster != nil {
		doc.Cluster = &clusterDoc{
			Nodes:   c.Cluster.Nodes,
			Spares:  c.Cluster.Spares,
			Network: c.Cluster.Network.Name,
			ProbeMs: ms(c.Probe),
			HedgeMs: ms(c.Hedge),
		}
	}
	for _, res := range r.Results {
		doc.Results[res.Runtime] = res
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// continuous returns the compiled continuous plan, nil for batch runs.
func (r *Report) continuous() *ContinuousPlan {
	if r.Compiled == nil {
		return nil
	}
	return r.Compiled.Continuous
}

func kvDesc(cp *ContinuousPlan) string {
	switch {
	case !cp.KV:
		return "off"
	case cp.Paged:
		return fmt.Sprintf("paged (block %d, watermark %.0f%%)", cp.Block, 100*cp.Watermark)
	default:
		return "reserved"
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// fmtDur rounds for display stability (full-precision nanoseconds are
// deterministic too, but unreadable in a table).
func fmtDur(d time.Duration) string {
	if d == 0 {
		return "0s"
	}
	return d.Round(time.Microsecond).String()
}
