package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"text/tabwriter"
	"time"

	"liger/internal/runner"
)

// The stress harness generates N randomized scenarios — fleet shape,
// workload mix, chaos schedule — from one master seed and serves every
// runtime through each, aggregating a survival report. Reproducibility
// is the contract: the same (N, seed) always yields byte-identical
// reports, at any -parallel or -shards setting, because each instance
// derives its own rand stream from the master seed and its index, and
// instances never share mutable state.

// StressConfig parameterizes one stress campaign.
type StressConfig struct {
	// N is the number of generated scenario instances.
	N int
	// Seed is the master seed; every instance derives from it.
	Seed int64
	// Parallel/Shards tune execution only (never results).
	Parallel int
	Shards   int
}

// stressModel keeps instances fast: the tiny spec exercises every
// scheduler path at a fraction of OPT-30B's kernel count.
const stressModel = "tiny"

// generateInstance builds the i-th randomized scenario of a campaign.
// Every draw comes from the instance's own stream, in a fixed order —
// adding a draw at the end never perturbs earlier fields.
func generateInstance(masterSeed int64, i int) *Scenario {
	rng := rand.New(rand.NewSource(mixSeed(masterSeed, int64(i), i)))
	presets := []string{"v100", "a100"}
	preset := presets[rng.Intn(len(presets))]
	gpus := []int{2, 4}[rng.Intn(2)]

	batches := 30 + rng.Intn(41) // 30..70
	sc := &Scenario{
		Name:  fmt.Sprintf("stress-%03d", i),
		Model: stressModel,
		Node:  NodeSpec{Preset: preset, GPUs: gpus},
		Workload: Workload{
			Batches: batches,
			Batch:   1 + rng.Intn(4),
			Rate:    RateSpec{relative: 0.5 + 0.4*rng.Float64()},
			Process: []string{"constant", "poisson", "bursty", "diurnal"}[rng.Intn(4)],
			MinSeq:  16,
			MaxSeq:  128,
			Seed:    masterSeed ^ int64(i)<<7,
		},
		Policy: PolicySpec{
			Deadline:   TimeSpec{kind: timeSolo, val: 8 + 8*rng.Float64()},
			Retries:    2 + rng.Intn(2),
			Backoff:    TimeSpec{kind: timeSolo, val: 0.5},
			BackoffCap: TimeSpec{kind: timeSolo, val: 4},
			QueueLimit: 8 + 4*rng.Intn(7), // 8..32
		},
		Chaos: Chaos{
			CollTimeout: TimeSpec{kind: timeSolo, val: 6},
		},
	}
	// 0–3 randomized window generators.
	windowKinds := []string{"slowdown", "link-degrade", "coll-stall", "device-drop"}
	for g, n := 0, rng.Intn(4); g < n; g++ {
		kind := windowKinds[rng.Intn(len(windowKinds))]
		gen := RandomChaos{
			Kind:     kind,
			Count:    1 + rng.Intn(3),
			Window:   [2]TimeSpec{{kind: timeFrac, val: 0.1}, {kind: timeFrac, val: 0.9}},
			Duration: TimeSpec{kind: timeFrac, val: 0.03 + 0.09*rng.Float64()},
			Seed:     int64(g + 1),
		}
		if kind == "slowdown" || kind == "link-degrade" {
			gen.Factor = 0.3 + 0.5*rng.Float64()
		}
		sc.Chaos.Random = append(sc.Chaos.Random, gen)
	}
	// A permanent device loss on a quarter of instances — only on
	// 4-GPU fleets, where the survivors can still host the model.
	if gpus >= 4 && rng.Float64() < 0.25 {
		sc.Chaos.Events = append(sc.Chaos.Events, ChaosEvent{
			Kind:   "device-fail",
			Device: rng.Intn(gpus),
			Start:  TimeSpec{kind: timeFrac, val: 0.3 + 0.4*rng.Float64()},
		})
	}
	return sc
}

// StressRow is one instance's outcome across the runtimes.
type StressRow struct {
	Instance int    `json:"instance"`
	Node     string `json:"node"`
	GPUs     int    `json:"gpus"`
	Batches  int    `json:"batches"`
	Process  string `json:"process"`
	Events   int    `json:"events"`
	// Err records an instance that could not even be compiled or
	// served — the run died rather than degraded.
	Err string `json:"err,omitempty"`
	// Runtimes holds the per-runtime serving outcome, keyed by name.
	Runtimes map[string]StressOutcome `json:"runtimes,omitempty"`
}

// StressOutcome is one runtime's fate on one instance.
type StressOutcome struct {
	// Survived means the run completed with at least one successful
	// batch and a majority success rate — the fleet kept serving.
	Survived    bool    `json:"survived"`
	Goodput     float64 `json:"goodput"`
	SLOMiss     float64 `json:"slo_miss"`
	SuccessRate float64 `json:"success_rate"`
	Failed      int     `json:"failed"`
	Shed        int     `json:"shed"`
	RecoveryMs  float64 `json:"recovery_ms"`
	// Err records a runtime that died mid-run (e.g. re-shard
	// impossible after a failure); the others still report.
	Err string `json:"err,omitempty"`
}

// StressReport aggregates a campaign.
type StressReport struct {
	N    int         `json:"n"`
	Seed int64       `json:"seed"`
	Rows []StressRow `json:"rows"`
	// Survived counts surviving runs per runtime (out of N).
	Survived map[string]int `json:"survived"`
	// MeanGoodput / MeanSLOMiss average over the instances a runtime
	// survived.
	MeanGoodput map[string]float64 `json:"mean_goodput"`
	MeanSLOMiss map[string]float64 `json:"mean_slo_miss"`
	Died        int                `json:"died"`
}

// Stress runs a campaign. Instance failures are outcomes, not errors:
// a scenario that kills a runtime is exactly what the harness exists
// to find, so it lands in the report instead of aborting the campaign.
func Stress(cfg StressConfig) (*StressReport, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("scenario: stress needs a positive instance count, got %d", cfg.N)
	}
	rows, err := runner.Map(cfg.Parallel, cfg.N, func(i int) (StressRow, error) {
		return runStressInstance(cfg, i), nil
	})
	if err != nil {
		return nil, err
	}
	rep := &StressReport{
		N:           cfg.N,
		Seed:        cfg.Seed,
		Rows:        rows,
		Survived:    make(map[string]int),
		MeanGoodput: make(map[string]float64),
		MeanSLOMiss: make(map[string]float64),
	}
	counts := make(map[string]int)
	for _, row := range rows {
		if row.Err != "" {
			rep.Died++
			continue
		}
		for name, out := range row.Runtimes {
			if out.Err != "" || !out.Survived {
				continue
			}
			rep.Survived[name]++
			rep.MeanGoodput[name] += out.Goodput
			rep.MeanSLOMiss[name] += out.SLOMiss
			counts[name]++
		}
	}
	for name, n := range counts {
		rep.MeanGoodput[name] /= float64(n)
		rep.MeanSLOMiss[name] /= float64(n)
	}
	return rep, nil
}

// runStressInstance generates, compiles, and serves one instance.
func runStressInstance(cfg StressConfig, i int) StressRow {
	sc := generateInstance(cfg.Seed, i)
	row := StressRow{Instance: i, Node: sc.Node.Preset, GPUs: sc.Node.GPUs,
		Batches: sc.Workload.Batches, Process: sc.Workload.Process}
	if err := sc.Validate(); err != nil {
		row.Err = err.Error()
		return row
	}
	c, err := Compile(sc)
	if err != nil {
		row.Err = err.Error()
		return row
	}
	row.Events = len(c.Schedule.Events)
	row.Runtimes = make(map[string]StressOutcome, len(c.Kinds))
	names := sc.ResultRuntimes()
	for k, kind := range c.Kinds {
		res, err := runOne(c, kind, cfg.Shards)
		out := StressOutcome{}
		if err != nil {
			out.Err = err.Error()
		} else {
			out = StressOutcome{
				Survived:    res.Completed > 0 && res.SuccessRate() >= 0.5,
				Goodput:     res.PolicyGoodput(),
				SLOMiss:     res.SLOMissRate(),
				SuccessRate: res.SuccessRate(),
				Failed:      res.Failed,
				Shed:        res.Shed,
				RecoveryMs:  float64(res.RecoveryTime) / float64(time.Millisecond),
			}
		}
		row.Runtimes[names[k]] = out
	}
	return row
}

// WriteText renders the deterministic survival report.
func (r *StressReport) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "stress    : %d instances, master seed %d, model %s\n", r.N, r.Seed, stressModel)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	names := r.runtimeNames()
	header := "instance\tnode\tbatches\tprocess\tevents"
	for _, n := range names {
		header += "\t" + n
	}
	fmt.Fprintln(tw, header)
	for _, row := range r.Rows {
		line := fmt.Sprintf("%03d\t%s/%d\t%d\t%s\t%d", row.Instance, row.Node, row.GPUs,
			row.Batches, row.Process, row.Events)
		if row.Err != "" {
			line += fmt.Sprintf("\tDIED: %s", row.Err)
		} else {
			for _, n := range names {
				out, ok := row.Runtimes[n]
				switch {
				case !ok:
					line += "\t-"
				case out.Err != "":
					line += "\tdied"
				case !out.Survived:
					line += fmt.Sprintf("\tLOST %.0f%%", 100*(1-out.SuccessRate))
				default:
					line += fmt.Sprintf("\tok %.2f", out.Goodput)
				}
			}
		}
		fmt.Fprintln(tw, line)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "survival:")
	for _, n := range names {
		fmt.Fprintf(w, "  %-9s %d/%d survived, mean goodput %.2f, mean SLO-miss %.1f%%\n",
			n, r.Survived[n], r.N-r.Died, r.MeanGoodput[n], 100*r.MeanSLOMiss[n])
	}
	if r.Died > 0 {
		fmt.Fprintf(w, "  %d instance(s) failed to build\n", r.Died)
	}
	return nil
}

// runtimeNames returns every runtime seen across rows, sorted.
func (r *StressReport) runtimeNames() []string {
	seen := make(map[string]bool)
	for _, row := range r.Rows {
		for n := range row.Runtimes {
			seen[n] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteJSON renders the machine-readable survival report.
func (r *StressReport) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}
