package generate

import (
	"testing"
	"time"

	"liger/internal/core"
	"liger/internal/hw"
	"liger/internal/kvcache"
	"liger/internal/model"
	"liger/internal/simclock"
)

func baseCfg() Config {
	return Config{
		Conversations: 6,
		BatchSize:     2,
		PromptLen:     32,
		GenTokens:     5,
		ArrivalGap:    time.Millisecond,
	}
}

func engineFor(t *testing.T, kind core.RuntimeKind) *core.Engine {
	t.Helper()
	eng, err := core.NewEngine(core.Options{
		Node:    hw.A100Node(),
		Model:   model.OPT30B().WithLayers(8),
		Runtime: kind,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestRunCompletesAllConversations(t *testing.T) {
	for _, kind := range []core.RuntimeKind{core.KindLiger, core.KindIntraOp, core.KindInterOp} {
		t.Run(kind.String(), func(t *testing.T) {
			eng := engineFor(t, kind)
			res, err := Run(eng.Clock(), eng.Runtime(), baseCfg())
			if err != nil {
				t.Fatal(err)
			}
			if res.Conversations != 6 || len(res.TTFT) != 6 || len(res.TPOT) != 6 {
				t.Fatalf("incomplete result %+v", res)
			}
			if res.AvgTTFT() <= 0 || res.AvgTPOT() <= 0 || res.AvgTotal() < res.AvgTTFT() {
				t.Fatalf("implausible metrics: ttft %v tpot %v total %v",
					res.AvgTTFT(), res.AvgTPOT(), res.AvgTotal())
			}
		})
	}
}

func TestLigerImprovesGeneration(t *testing.T) {
	cfg := baseCfg()
	cfg.Conversations = 10
	cfg.ArrivalGap = 500 * time.Microsecond // dense: interleaving matters
	e1 := engineFor(t, core.KindLiger)
	lg, err := Run(e1.Clock(), e1.Runtime(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	e2 := engineFor(t, core.KindIntraOp)
	intra, err := Run(e2.Clock(), e2.Runtime(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lg.AvgTotal() >= intra.AvgTotal() {
		t.Fatalf("Liger total %v not below intra-op %v under dense load", lg.AvgTotal(), intra.AvgTotal())
	}
}

func TestKVAdmissionQueues(t *testing.T) {
	eng := engineFor(t, core.KindLiger)
	kv, err := kvcache.New(hw.A100Node(), model.OPT30B().WithLayers(8), 2, 32)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseCfg()
	cfg.KV = kv
	cfg.Conversations = 8
	cfg.ArrivalGap = 0 // all at once
	// Shrink capacity artificially by pre-admitting a huge sequence.
	perConv := cfg.BatchSize * (cfg.PromptLen + cfg.GenTokens)
	hold := int(kv.Budget()/kv.BytesPerToken()) - 3*perConv
	if hold > 0 {
		if err := kv.Admit(99999, hold); err != nil {
			t.Fatal(err)
		}
	}
	// Free the hold once the run is underway so queued conversations can
	// proceed.
	eng.Clock().At(1, func(simclock.Time) { kv.Release(99999) })
	res, err := Run(eng.Clock(), eng.Runtime(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueuedForKV == 0 {
		t.Fatal("no conversation queued despite constrained cache")
	}
	if res.Conversations != 8 {
		t.Fatalf("%d conversations finished", res.Conversations)
	}
	if kv.Live() != 0 {
		t.Fatalf("%d sequences leaked", kv.Live())
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Conversations: 1, BatchSize: 0, PromptLen: 1, GenTokens: 1},
		{Conversations: 1, BatchSize: 1, PromptLen: 0, GenTokens: 1},
		{Conversations: 1, BatchSize: 1, PromptLen: 1, GenTokens: 0},
		{Conversations: 1, BatchSize: 1, PromptLen: 1, GenTokens: 1, ArrivalGap: -1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
