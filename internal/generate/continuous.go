package generate

import (
	"fmt"
	"math/rand"
	"time"

	"liger/internal/runtimes"
	"liger/internal/serve"
	"liger/internal/simclock"
)

// Continuous batching (Orca-style iteration-level scheduling, which the
// paper lists as orthogonal related work): instead of carrying a fixed
// batch through its whole generation, every decode iteration runs over
// the current pool of live sequences, admitting newly arrived sequences
// between iterations. Liger's interleaving composes with it — the
// iteration kernels are scheduled like any other batch. The scheduling
// loop itself lives in serve.ContinuousBatcher; this driver owns the
// arrival process and the per-sequence latency bookkeeping.

// ContinuousConfig shapes a continuous-batching run.
type ContinuousConfig struct {
	// Sequences is the number of generations to serve.
	Sequences int
	// RatePerSec is the sequence arrival rate.
	RatePerSec float64
	// PromptLen and GenTokens shape each sequence.
	PromptLen int
	GenTokens int
	// MaxPool caps live sequences per iteration.
	MaxPool int
	// KV, if non-nil, gates admission on cache capacity. Only the prompt
	// is admitted up front; the cache then grows one token per decode
	// iteration (paged growth), so a kvcache.PagedManager here admits
	// far more concurrency than the old worst-case reservation — at the
	// price of mid-decode preemption when blocks run out.
	KV serve.KVAllocator
	// Seed jitters arrivals (Poisson).
	Seed int64
	// Tracer, if non-nil, observes the batcher's iterations and sequence
	// lifecycles (trace.ServingRecorder implements it along with the
	// other serving extensions). The caller wires a paged allocator's
	// own tracer separately (kvcache.PagedManager.SetTracer) since KV
	// may be any allocator. Tracing never perturbs the simulation.
	Tracer serve.ServingTracer
}

// Validate reports bad configurations.
func (c ContinuousConfig) Validate() error {
	switch {
	case c.Sequences <= 0:
		return fmt.Errorf("generate: need sequences")
	case c.RatePerSec <= 0:
		return fmt.Errorf("generate: arrival rate %v", c.RatePerSec)
	case c.PromptLen <= 0 || c.GenTokens <= 0:
		return fmt.Errorf("generate: bad lengths %d/%d", c.PromptLen, c.GenTokens)
	case c.MaxPool <= 0:
		return fmt.Errorf("generate: pool size %d", c.MaxPool)
	}
	return nil
}

// ContinuousResult aggregates a run.
type ContinuousResult struct {
	Result
	// Iterations counts decode steps executed.
	Iterations int
	// MeanPool is the average live-pool size over iterations.
	MeanPool float64
	// PrefillBatches counts context-phase submissions (admission waves).
	PrefillBatches int
	// Preemptions counts sequences evicted under memory pressure;
	// RecomputedTokens is the total prefill work their resumes repaid.
	Preemptions      int
	RecomputedTokens int
	// Makespan is the completion time of the last sequence.
	Makespan time.Duration
}

// RunContinuous executes the workload on the runtime attached to eng.
// It owns the runtime's completion callback for the duration.
func RunContinuous(eng *simclock.Engine, rt runtimes.Runtime, cfg ContinuousConfig) (ContinuousResult, error) {
	res := ContinuousResult{}
	if err := cfg.Validate(); err != nil {
		return res, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	arrived := make([]simclock.Time, cfg.Sequences)
	firstTok := make([]simclock.Time, cfg.Sequences)
	finished := make([]simclock.Time, cfg.Sequences)
	completed := 0
	cb, err := serve.NewContinuousBatcher(rt, cfg.KV, cfg.MaxPool, serve.ContinuousHooks{
		FirstToken: func(id int, now simclock.Time) { firstTok[id] = now },
		Finished: func(id int, now simclock.Time) {
			finished[id] = now
			completed++
		},
	})
	if err != nil {
		return res, err
	}
	if cfg.Tracer != nil {
		cb.SetTracer(cfg.Tracer, 0)
	}
	rt.SetOnDone(cb.OnDone)

	var at simclock.Time
	gap := time.Duration(float64(time.Second) / cfg.RatePerSec)
	for i := 0; i < cfg.Sequences; i++ {
		id := i
		eng.At(at, func(now simclock.Time) {
			arrived[id] = now
			cb.Add(serve.GenSeq{ID: id, Prompt: cfg.PromptLen, Gen: cfg.GenTokens}, now)
		})
		at += time.Duration(rng.ExpFloat64() * float64(gap))
	}
	eng.Run()
	if err := cb.Err(); err != nil {
		return res, err
	}
	if completed != cfg.Sequences {
		return res, fmt.Errorf("generate: %d of %d sequences finished", completed, cfg.Sequences)
	}
	for i := 0; i < cfg.Sequences; i++ {
		res.TTFT = append(res.TTFT, time.Duration(firstTok[i]-arrived[i]))
		res.TPOT = append(res.TPOT, time.Duration(finished[i]-firstTok[i])/time.Duration(cfg.GenTokens))
		res.Total = append(res.Total, time.Duration(finished[i]-arrived[i]))
		if d := time.Duration(finished[i]); d > res.Makespan {
			res.Makespan = d
		}
	}
	res.Conversations = cfg.Sequences
	res.Iterations = cb.Iterations
	res.MeanPool = cb.MeanPool()
	res.PrefillBatches = cb.PrefillBatches
	res.Preemptions = cb.Preemptions
	res.RecomputedTokens = cb.RecomputedTokens
	return res, nil
}
