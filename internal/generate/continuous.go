package generate

import (
	"fmt"
	"math/rand"
	"time"

	"liger/internal/kvcache"
	"liger/internal/model"
	"liger/internal/runtimes"
	"liger/internal/simclock"
)

// Continuous batching (Orca-style iteration-level scheduling, which the
// paper lists as orthogonal related work): instead of carrying a fixed
// batch through its whole generation, every decode iteration runs over
// the current pool of live sequences, admitting newly arrived sequences
// between iterations. Liger's interleaving composes with it — the
// iteration kernels are scheduled like any other batch.

// ContinuousConfig shapes a continuous-batching run.
type ContinuousConfig struct {
	// Sequences is the number of generations to serve.
	Sequences int
	// RatePerSec is the sequence arrival rate.
	RatePerSec float64
	// PromptLen and GenTokens shape each sequence.
	PromptLen int
	GenTokens int
	// MaxPool caps live sequences per iteration.
	MaxPool int
	// KV, if non-nil, gates admission on cache capacity.
	KV *kvcache.Manager
	// Seed jitters arrivals (Poisson).
	Seed int64
}

// Validate reports bad configurations.
func (c ContinuousConfig) Validate() error {
	switch {
	case c.Sequences <= 0:
		return fmt.Errorf("generate: need sequences")
	case c.RatePerSec <= 0:
		return fmt.Errorf("generate: arrival rate %v", c.RatePerSec)
	case c.PromptLen <= 0 || c.GenTokens <= 0:
		return fmt.Errorf("generate: bad lengths %d/%d", c.PromptLen, c.GenTokens)
	case c.MaxPool <= 0:
		return fmt.Errorf("generate: pool size %d", c.MaxPool)
	}
	return nil
}

// ContinuousResult aggregates a run.
type ContinuousResult struct {
	Result
	// Iterations counts decode steps executed.
	Iterations int
	// MeanPool is the average live-pool size over iterations.
	MeanPool float64
}

type seqState struct {
	id       int
	arrived  simclock.Time
	firstTok simclock.Time
	finished simclock.Time
	ctx      int // cached tokens (prompt after prefill, +1 per step)
	left     int // tokens still to generate
}

// RunContinuous executes the workload on the runtime attached to eng.
// It owns the runtime's completion callback for the duration.
func RunContinuous(eng *simclock.Engine, rt runtimes.Runtime, cfg ContinuousConfig) (ContinuousResult, error) {
	res := ContinuousResult{}
	if err := cfg.Validate(); err != nil {
		return res, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var pool []*seqState     // live, decoding
	var arrivalQ []*seqState // arrived, awaiting admission+prefill
	var prefilling []*seqState
	inFlight := false // one iteration (prefill or decode step) at a time
	completed := 0
	var poolSum int
	var runErr error
	// The in-flight iteration's members, set at Submit and consumed by
	// the completion callback; the one-at-a-time discipline means at
	// most one pending iteration exists.
	var pendingBatch []*seqState
	var pendingIsPrefill bool

	all := make([]*seqState, cfg.Sequences)

	seqTokens := cfg.PromptLen + cfg.GenTokens

	admit := func(s *seqState) bool {
		if len(pool)+len(prefilling) >= cfg.MaxPool {
			return false
		}
		if cfg.KV != nil {
			if !cfg.KV.CanAdmit(seqTokens) {
				return false
			}
			if err := cfg.KV.Admit(s.id, seqTokens); err != nil {
				if runErr == nil {
					runErr = err
				}
				return false
			}
		}
		prefilling = append(prefilling, s)
		return true
	}

	var step func(now simclock.Time)
	step = func(now simclock.Time) {
		if inFlight {
			return
		}
		// Admit as many arrivals as fit.
		for len(arrivalQ) > 0 && admit(arrivalQ[0]) {
			arrivalQ = arrivalQ[1:]
		}
		if len(prefilling) > 0 {
			// One prefill batch for all newly admitted sequences.
			batch := prefilling
			prefilling = nil
			inFlight = true
			if err := rt.Submit(model.Workload{Batch: len(batch), SeqLen: cfg.PromptLen, Phase: model.Context}); err != nil && runErr == nil {
				runErr = err
			}
			// Completion moves them into the pool (see SetOnDone).
			pendingBatch = batch
			pendingIsPrefill = true
			return
		}
		if len(pool) == 0 {
			return // idle until the next arrival
		}
		// One decode iteration over the pool, padded to the longest
		// context.
		maxCtx := 0
		for _, s := range pool {
			if s.ctx > maxCtx {
				maxCtx = s.ctx
			}
		}
		inFlight = true
		res.Iterations++
		poolSum += len(pool)
		if err := rt.Submit(model.Workload{Batch: len(pool), CtxLen: maxCtx, Phase: model.Decode}); err != nil && runErr == nil {
			runErr = err
		}
		pendingBatch = pool
		pendingIsPrefill = false
	}

	rt.SetOnDone(func(done runtimes.Completion) {
		now := done.Done
		inFlight = false
		if pendingIsPrefill {
			for _, s := range pendingBatch {
				s.ctx = cfg.PromptLen
				s.firstTok = now
				s.left = cfg.GenTokens
				pool = append(pool, s)
			}
		} else {
			var live []*seqState
			for _, s := range pendingBatch {
				s.ctx++
				s.left--
				if s.left <= 0 {
					s.finished = now
					completed++
					if cfg.KV != nil {
						cfg.KV.Release(s.id)
					}
					continue
				}
				live = append(live, s)
			}
			pool = live
		}
		step(now)
	})

	var at simclock.Time
	gap := time.Duration(float64(time.Second) / cfg.RatePerSec)
	for i := 0; i < cfg.Sequences; i++ {
		s := &seqState{id: i}
		all[i] = s
		eng.At(at, func(now simclock.Time) {
			s.arrived = now
			arrivalQ = append(arrivalQ, s)
			step(now)
		})
		at += time.Duration(rng.ExpFloat64() * float64(gap))
	}
	eng.Run()
	if runErr != nil {
		return res, runErr
	}
	if completed != cfg.Sequences {
		return res, fmt.Errorf("generate: %d of %d sequences finished", completed, cfg.Sequences)
	}
	for _, s := range all {
		res.TTFT = append(res.TTFT, time.Duration(s.firstTok-s.arrived))
		res.TPOT = append(res.TPOT, time.Duration(s.finished-s.firstTok)/time.Duration(cfg.GenTokens))
		res.Total = append(res.Total, time.Duration(s.finished-s.arrived))
	}
	res.Conversations = cfg.Sequences
	if res.Iterations > 0 {
		res.MeanPool = float64(poolSum) / float64(res.Iterations)
	}
	return res, nil
}
