package generate

import (
	"testing"
	"time"

	"liger/internal/core"
	"liger/internal/hw"
	"liger/internal/kvcache"
	"liger/internal/model"
)

func contCfg() ContinuousConfig {
	return ContinuousConfig{
		Sequences:  12,
		RatePerSec: 500,
		PromptLen:  32,
		GenTokens:  6,
		MaxPool:    8,
		Seed:       1,
	}
}

func TestContinuousCompletesAllSequences(t *testing.T) {
	for _, kind := range []core.RuntimeKind{core.KindLiger, core.KindIntraOp} {
		t.Run(kind.String(), func(t *testing.T) {
			eng := engineFor(t, kind)
			res, err := RunContinuous(eng.Clock(), eng.Runtime(), contCfg())
			if err != nil {
				t.Fatal(err)
			}
			if res.Conversations != 12 || len(res.TTFT) != 12 {
				t.Fatalf("incomplete %+v", res)
			}
			if res.Iterations < 6 {
				t.Fatalf("only %d iterations for 6-token generations", res.Iterations)
			}
			if res.MeanPool <= 0 || res.MeanPool > 8 {
				t.Fatalf("mean pool %v", res.MeanPool)
			}
		})
	}
}

func TestContinuousRespectsMaxPool(t *testing.T) {
	eng := engineFor(t, core.KindLiger)
	cfg := contCfg()
	cfg.MaxPool = 2
	res, err := RunContinuous(eng.Clock(), eng.Runtime(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanPool > 2 {
		t.Fatalf("pool exceeded cap: %v", res.MeanPool)
	}
}

func TestContinuousPoolingBeatsStaticPerToken(t *testing.T) {
	// Pooling sequences into shared iterations amortizes every decode
	// step over more requests: time-per-token and total generation time
	// improve substantially over per-conversation static batches at the
	// same offered load (TTFT trades the other way — a new sequence
	// waits for the running iteration before its prefill).
	e1 := engineFor(t, core.KindIntraOp)
	cont, err := RunContinuous(e1.Clock(), e1.Runtime(), ContinuousConfig{
		Sequences: 32, RatePerSec: 160, PromptLen: 32, GenTokens: 16, MaxPool: 8, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	e2 := engineFor(t, core.KindIntraOp)
	static, err := Run(e2.Clock(), e2.Runtime(), Config{
		Conversations: 8, BatchSize: 4, PromptLen: 32, GenTokens: 16,
		ArrivalGap: 25 * time.Millisecond, // same 160 seq/s mean
	})
	if err != nil {
		t.Fatal(err)
	}
	if cont.AvgTPOT() >= static.AvgTPOT() {
		t.Fatalf("continuous time/token %v not below static %v", cont.AvgTPOT(), static.AvgTPOT())
	}
	if cont.AvgTotal() >= static.AvgTotal() {
		t.Fatalf("continuous total %v not below static %v", cont.AvgTotal(), static.AvgTotal())
	}
}

func TestContinuousSerialChainDegeneratesLiger(t *testing.T) {
	// A reproduction finding: continuous batching's strictly serial
	// iteration chain leaves Liger no concurrent batch to interleave
	// with, so Liger degenerates to Intra-Op (§3.1) — within scheduler
	// overhead. Liger's win in generative serving comes from running
	// *multiple* batches' iterations concurrently (see generate.Run and
	// TestLigerImprovesGeneration); it composes with batching policy
	// rather than replacing it.
	run := func(kind core.RuntimeKind) ContinuousResult {
		e := engineFor(t, kind)
		res, err := RunContinuous(e.Clock(), e.Runtime(), ContinuousConfig{
			Sequences: 32, RatePerSec: 160, PromptLen: 32, GenTokens: 16, MaxPool: 8, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	lg := run(core.KindLiger)
	intra := run(core.KindIntraOp)
	ratio := float64(lg.AvgTotal()) / float64(intra.AvgTotal())
	if ratio > 1.05 || ratio < 0.95 {
		t.Fatalf("serial continuous chain: Liger %v vs Intra-Op %v (ratio %.3f, want ≈1)",
			lg.AvgTotal(), intra.AvgTotal(), ratio)
	}
}

func TestContinuousWithKVAdmission(t *testing.T) {
	eng := engineFor(t, core.KindLiger)
	kv, err := kvcache.New(hw.A100Node(), model.OPT30B().WithLayers(8), 8, 32)
	if err != nil {
		t.Fatal(err)
	}
	cfg := contCfg()
	cfg.KV = kv
	if _, err := RunContinuous(eng.Clock(), eng.Runtime(), cfg); err != nil {
		t.Fatal(err)
	}
	if kv.Live() != 0 {
		t.Fatalf("%d sequences leaked from the cache", kv.Live())
	}
}

// tightPagedKV builds a paged allocator whose capacity sits between
// the workload's total prompt footprint and its worst-case peak, so
// every prompt admits but decoding must preempt. The node memory is
// solved from two probes (budget is linear in MemGB).
func tightPagedKV(t *testing.T, capTokens int) *kvcache.PagedManager {
	t.Helper()
	node := hw.A100Node()
	probe := func(memGB float64) int64 {
		node.GPU.MemGB = memGB
		m, err := kvcache.NewPaged(node, model.OPT30B(), 16, 512, kvcache.PagedConfig{BlockTokens: 16})
		if err != nil {
			t.Fatal(err)
		}
		return m.Budget()
	}
	b80, b40 := probe(80), probe(40)
	slope := float64(b80-b40) / 40 // budget bytes per GB
	m80, _ := kvcache.NewPaged(hw.A100Node(), model.OPT30B(), 16, 512, kvcache.PagedConfig{BlockTokens: 16})
	target := float64(capTokens) * float64(m80.BytesPerToken())
	node.GPU.MemGB = 80 + (target-float64(b80))/slope
	kv, err := kvcache.NewPaged(node, model.OPT30B(), 16, 512, kvcache.PagedConfig{BlockTokens: 16})
	if err != nil {
		t.Fatal(err)
	}
	got := kv.TotalBlocks() * kv.BlockTokens()
	if got < capTokens-64 || got > capTokens+64 {
		t.Fatalf("tight allocator capacity %d tokens, want ≈%d", got, capTokens)
	}
	return kv
}

// The tentpole acceptance pin at the generate layer: with a paged
// allocator sized between prompt footprint and worst-case peak, the
// run preempts under pressure yet every sequence still completes, and
// the preempted work shows up as recomputed prefill tokens.
func TestContinuousPagedPreemptionCompletes(t *testing.T) {
	// 16 sequences of 256 prompt + 128 generated: 4096 prompt tokens fit
	// in a 5000-token pool, the 6144-token peak does not.
	kv := tightPagedKV(t, 5000)
	eng := engineFor(t, core.KindLiger)
	res, err := RunContinuous(eng.Clock(), eng.Runtime(), ContinuousConfig{
		Sequences: 16, RatePerSec: 500, PromptLen: 256, GenTokens: 128,
		MaxPool: 16, Seed: 1, KV: kv,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Conversations != 16 || len(res.Total) != 16 {
		t.Fatalf("incomplete run: %+v", res)
	}
	if res.Preemptions == 0 {
		t.Fatal("no preemption despite engineered memory pressure")
	}
	if res.RecomputedTokens < 256 {
		t.Fatalf("recomputed %d tokens, want at least one full resume", res.RecomputedTokens)
	}
	if kv.Live() != 0 || kv.FreeBlocks() != kv.TotalBlocks() {
		t.Fatalf("cache leaked: %d live, %d/%d free", kv.Live(), kv.FreeBlocks(), kv.TotalBlocks())
	}
	if kv.Violations() != 0 {
		t.Fatalf("%d invariant violations: %v", kv.Violations(), kv.InvariantErr())
	}
	// The same workload with ample memory never preempts and is faster.
	eng2 := engineFor(t, core.KindLiger)
	roomy, err := kvcache.NewPaged(hw.A100Node(), model.OPT30B(), 16, 512, kvcache.PagedConfig{BlockTokens: 16})
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunContinuous(eng2.Clock(), eng2.Runtime(), ContinuousConfig{
		Sequences: 16, RatePerSec: 500, PromptLen: 256, GenTokens: 128,
		MaxPool: 16, Seed: 1, KV: roomy,
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.Preemptions != 0 {
		t.Fatalf("roomy allocator preempted %d times", base.Preemptions)
	}
	if res.AvgTotal() <= base.AvgTotal() {
		t.Fatalf("pressure run %v not slower than roomy run %v — recompute cost missing",
			res.AvgTotal(), base.AvgTotal())
	}
}

func TestContinuousValidation(t *testing.T) {
	bad := []ContinuousConfig{
		{},
		{Sequences: 1, RatePerSec: 0, PromptLen: 1, GenTokens: 1, MaxPool: 1},
		{Sequences: 1, RatePerSec: 1, PromptLen: 0, GenTokens: 1, MaxPool: 1},
		{Sequences: 1, RatePerSec: 1, PromptLen: 1, GenTokens: 1, MaxPool: 0},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
