package generate

import (
	"bytes"
	"testing"

	"liger/internal/analyze"
	"liger/internal/core"
	"liger/internal/kvcache"
	"liger/internal/metrics"
	"liger/internal/trace"
)

// checkDecompositionTiles pins the serving report's defining invariant
// against the driver's own measurements: every request's segments are
// contiguous, tile [arrival, finish] exactly, sum to the measured total
// latency to the nanosecond, and the segments left of the first-token
// instant sum exactly to the measured TTFT.
func checkDecompositionTiles(t *testing.T, rep *analyze.ServingReport, res ContinuousResult) {
	t.Helper()
	if len(rep.Requests) != res.Conversations {
		t.Fatalf("decomposed %d requests, ran %d", len(rep.Requests), res.Conversations)
	}
	for _, r := range rep.Requests {
		if len(r.Segments) == 0 {
			t.Fatalf("seq %d: no segments", r.Seq)
		}
		if r.Segments[0].StartNS != r.ArrivalNS {
			t.Fatalf("seq %d: first segment starts at %d, arrival %d", r.Seq, r.Segments[0].StartNS, r.ArrivalNS)
		}
		if last := r.Segments[len(r.Segments)-1]; last.EndNS != r.FinishNS {
			t.Fatalf("seq %d: last segment ends at %d, finish %d", r.Seq, last.EndNS, r.FinishNS)
		}
		var sum, ttftSum int64
		ttftBoundary := false
		prevEnd := r.ArrivalNS
		for i, s := range r.Segments {
			if s.StartNS != prevEnd {
				t.Fatalf("seq %d: segment %d starts at %d, previous ended %d — gap in the tiling",
					r.Seq, i, s.StartNS, prevEnd)
			}
			if s.EndNS <= s.StartNS {
				t.Fatalf("seq %d: empty segment %+v", r.Seq, s)
			}
			sum += s.EndNS - s.StartNS
			if s.EndNS <= r.FirstTokenNS {
				ttftSum += s.EndNS - s.StartNS
			}
			if s.EndNS == r.FirstTokenNS || s.StartNS == r.FirstTokenNS {
				ttftBoundary = true
			}
			prevEnd = s.EndNS
		}
		if sum != r.TotalNS {
			t.Fatalf("seq %d: segments sum to %dns, total latency %dns", r.Seq, sum, r.TotalNS)
		}
		if !ttftBoundary {
			t.Fatalf("seq %d: first-token instant %d is not a segment boundary", r.Seq, r.FirstTokenNS)
		}
		if ttftSum != r.TTFTNS {
			t.Fatalf("seq %d: pre-first-token segments sum to %dns, TTFT %dns", r.Seq, ttftSum, r.TTFTNS)
		}
		var kindSum int64
		for _, v := range r.SegmentNS {
			kindSum += v
		}
		if kindSum != r.TotalNS {
			t.Fatalf("seq %d: per-kind totals sum to %dns, total %dns", r.Seq, kindSum, r.TotalNS)
		}
		// The report must agree with the driver's own latency accounting.
		if got := res.TTFT[r.Seq].Nanoseconds(); r.TTFTNS != got {
			t.Fatalf("seq %d: report TTFT %dns, driver measured %dns", r.Seq, r.TTFTNS, got)
		}
		if got := res.Total[r.Seq].Nanoseconds(); r.TotalNS != got {
			t.Fatalf("seq %d: report total %dns, driver measured %dns", r.Seq, r.TotalNS, got)
		}
	}
}

func TestServingTraceDecompositionTilesLatency(t *testing.T) {
	for _, kind := range []core.RuntimeKind{core.KindLiger, core.KindIntraOp} {
		t.Run(kind.String(), func(t *testing.T) {
			eng := engineFor(t, kind)
			rec := trace.NewServingRecorder()
			cfg := contCfg()
			cfg.Tracer = rec
			res, err := RunContinuous(eng.Clock(), eng.Runtime(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			rep := analyze.AnalyzeServing(rec)
			checkDecompositionTiles(t, rep, res)
			// No allocator, no pressure: the uncontended decomposition is
			// queue + prefill + decode only.
			for _, k := range []string{"preempt_wait", "recompute", "handoff", "notify"} {
				if rep.SegmentNS[k] != 0 {
					t.Fatalf("segment %q = %d on an uncontended single-node run", k, rep.SegmentNS[k])
				}
			}
			if rep.SegmentNS["decode"] == 0 || rep.SegmentNS["prefill"] == 0 {
				t.Fatalf("missing prefill/decode segments: %v", rep.SegmentNS)
			}
		})
	}
}

// Under engineered KV pressure the decomposition still tiles exactly —
// preempt_wait and recompute segments absorb the eviction epochs — and
// the tracer's KV event stream, the analyzer's episodes/counters, and
// the metrics snapshot all agree with the driver's preemption counts.
func TestServingTraceKVPressureEpisodes(t *testing.T) {
	kv := tightPagedKV(t, 5000)
	eng := engineFor(t, core.KindLiger)
	rec := trace.NewServingRecorder()
	kv.SetTracer(rec, eng.Clock().Now)
	res, err := RunContinuous(eng.Clock(), eng.Runtime(), ContinuousConfig{
		Sequences: 16, RatePerSec: 500, PromptLen: 256, GenTokens: 128,
		MaxPool: 16, Seed: 1, KV: kv, Tracer: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Preemptions == 0 {
		t.Fatal("no preemption despite engineered memory pressure")
	}
	rep := analyze.AnalyzeServing(rec)
	checkDecompositionTiles(t, rep, res)
	if rep.SegmentNS["preempt_wait"] == 0 || rep.SegmentNS["recompute"] == 0 {
		t.Fatalf("preempted run missing preempt_wait/recompute segments: %v", rep.SegmentNS)
	}
	// The eviction must appear identically in every layer: the batcher's
	// lifecycle stream, the allocator's event stream, the analyzer's
	// counters, and the metrics snapshot.
	preemptEvents := 0
	for _, e := range rec.KVEvents() {
		if e.Kind == kvcache.KVPreempt {
			preemptEvents++
		}
	}
	if preemptEvents != res.Preemptions {
		t.Fatalf("%d KVPreempt events, driver counted %d preemptions", preemptEvents, res.Preemptions)
	}
	seqPreempts := 0
	for _, e := range rec.SeqEvents() {
		if e.Kind == trace.SeqPreempt {
			seqPreempts++
		}
	}
	if seqPreempts != res.Preemptions {
		t.Fatalf("%d lifecycle preempt events, driver counted %d", seqPreempts, res.Preemptions)
	}
	if got := rep.Counters["preemptions"]; got != int64(res.Preemptions) {
		t.Fatalf("report preemptions %d, driver %d", got, res.Preemptions)
	}
	if got := rep.Counters["recomputed_tokens"]; got != int64(res.RecomputedTokens) {
		t.Fatalf("report recomputed_tokens %d, driver %d", got, res.RecomputedTokens)
	}
	if len(rep.Episodes) == 0 {
		t.Fatal("no KV-pressure episodes despite forced preemption")
	}
	epPreempts := 0
	for _, ep := range rep.Episodes {
		if ep.EndNS < ep.StartNS {
			t.Fatalf("episode ends before it starts: %+v", ep)
		}
		epPreempts += ep.Preemptions
	}
	if epPreempts != res.Preemptions {
		t.Fatalf("episodes attribute %d preemptions, driver counted %d", epPreempts, res.Preemptions)
	}
	snap := metrics.FromServing("Liger", rec, metrics.Options{})
	if got := snap.Counters["preemptions"]; got != int64(res.Preemptions) {
		t.Fatalf("metrics preemptions %d, driver %d", got, res.Preemptions)
	}
	if got := snap.Counters["recomputed_tokens"]; got != int64(res.RecomputedTokens) {
		t.Fatalf("metrics recomputed_tokens %d, driver %d", got, res.RecomputedTokens)
	}
	if got := int(snap.Gauges["kv_peak_blocks"]); got != kv.PeakUsedBlocks() {
		t.Fatalf("metrics kv_peak_blocks %d, allocator peak %d", got, kv.PeakUsedBlocks())
	}
}

// Two identical runs must render byte-identical serving artifacts —
// the golden determinism contract every downstream writer relies on.
func TestServingTraceRepeatRunByteIdentical(t *testing.T) {
	render := func() (string, string, string) {
		kv := tightPagedKV(t, 5000)
		eng := engineFor(t, core.KindLiger)
		rec := trace.NewServingRecorder()
		kv.SetTracer(rec, eng.Clock().Now)
		_, err := RunContinuous(eng.Clock(), eng.Runtime(), ContinuousConfig{
			Sequences: 16, RatePerSec: 500, PromptLen: 256, GenTokens: 128,
			MaxPool: 16, Seed: 1, KV: kv, Tracer: rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		rec.Normalize()
		var chrome, report, snap bytes.Buffer
		if err := rec.WriteChromeTrace(&chrome); err != nil {
			t.Fatal(err)
		}
		if err := analyze.AnalyzeServing(rec).WriteJSON(&report); err != nil {
			t.Fatal(err)
		}
		if err := metrics.FromServing("Liger", rec, metrics.Options{}).WriteJSON(&snap); err != nil {
			t.Fatal(err)
		}
		return chrome.String(), report.String(), snap.String()
	}
	c1, r1, s1 := render()
	c2, r2, s2 := render()
	if c1 != c2 {
		t.Fatal("chrome trace differs between identical runs")
	}
	if r1 != r2 {
		t.Fatal("serving report differs between identical runs")
	}
	if s1 != s2 {
		t.Fatal("metrics snapshot differs between identical runs")
	}
}
