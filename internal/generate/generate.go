// Package generate drives full generative lifecycles over any runtime:
// each conversation is a batch of requests that runs the initial
// conditioning (prefill) phase over its prompt and then samples tokens
// one at a time against a growing KV cache (§4.3). Decode iterations
// are submitted dynamically — each step when the previous completes —
// so the Liger runtime interleaves steps of different conversations.
// KV-cache admission control queues conversations that do not fit.
package generate

import (
	"fmt"
	"time"

	"liger/internal/kvcache"
	"liger/internal/model"
	"liger/internal/runtimes"
	"liger/internal/simclock"
	"liger/internal/stats"
)

// Config shapes the generation workload.
type Config struct {
	// Conversations is the number of batched generations to run.
	Conversations int
	// BatchSize is the number of requests batched per conversation.
	BatchSize int
	// PromptLen is the prefill length per request.
	PromptLen int
	// GenTokens is the number of decode iterations per conversation.
	GenTokens int
	// ArrivalGap spaces conversation arrivals.
	ArrivalGap time.Duration
	// KV, if non-nil, enforces cache admission: conversations queue
	// until their whole generation fits.
	KV *kvcache.Manager
}

// Validate reports bad configurations.
func (c Config) Validate() error {
	switch {
	case c.Conversations <= 0:
		return fmt.Errorf("generate: need conversations")
	case c.BatchSize <= 0:
		return fmt.Errorf("generate: batch size %d", c.BatchSize)
	case c.PromptLen <= 0:
		return fmt.Errorf("generate: prompt length %d", c.PromptLen)
	case c.GenTokens <= 0:
		return fmt.Errorf("generate: generation length %d", c.GenTokens)
	case c.ArrivalGap < 0:
		return fmt.Errorf("generate: negative arrival gap")
	}
	return nil
}

// Result aggregates per-conversation generation metrics.
type Result struct {
	Conversations int
	// TTFT is the time-to-first-token distribution (arrival → prefill
	// completion, including any KV admission queueing).
	TTFT []time.Duration
	// TPOT is the per-output-token time distribution.
	TPOT []time.Duration
	// Total is the end-to-end generation time distribution.
	Total []time.Duration
	// QueuedForKV counts conversations that had to wait for cache.
	QueuedForKV int
}

// AvgTTFT returns the mean time to first token.
func (r Result) AvgTTFT() time.Duration { return stats.Mean(r.TTFT) }

// AvgTPOT returns the mean time per output token.
func (r Result) AvgTPOT() time.Duration { return stats.Mean(r.TPOT) }

// AvgTotal returns the mean end-to-end generation time.
func (r Result) AvgTotal() time.Duration { return stats.Mean(r.Total) }

type conversation struct {
	id       int
	step     int
	started  simclock.Time
	firstTok simclock.Time
	finished simclock.Time
}

// Run executes the workload on the runtime attached to eng. It owns the
// runtime's completion callback for the duration of the run.
func Run(eng *simclock.Engine, rt runtimes.Runtime, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	res := Result{}
	perConv := cfg.BatchSize * (cfg.PromptLen + cfg.GenTokens)

	convs := map[int]*conversation{}
	outstanding := map[int]*conversation{}
	var admitQueue []*conversation
	pendingID := 0
	var runErr error

	submitStep := func(c *conversation) {
		var w model.Workload
		if c.step == 0 {
			w = model.Workload{Batch: cfg.BatchSize, SeqLen: cfg.PromptLen, Phase: model.Context}
		} else {
			w = model.Workload{Batch: cfg.BatchSize, CtxLen: cfg.PromptLen + c.step - 1, Phase: model.Decode}
		}
		outstanding[pendingID] = c
		pendingID++
		if err := rt.Submit(w); err != nil && runErr == nil {
			runErr = err
		}
	}

	admit := func(c *conversation) bool {
		if cfg.KV != nil {
			if !cfg.KV.CanAdmit(perConv) {
				return false
			}
			if err := cfg.KV.Admit(c.id, perConv); err != nil {
				if runErr == nil {
					runErr = err
				}
				return false
			}
		}
		submitStep(c)
		return true
	}

	rt.SetOnDone(func(done runtimes.Completion) {
		c := outstanding[done.ID]
		if c == nil {
			if runErr == nil {
				runErr = fmt.Errorf("generate: completion for unknown submission %d", done.ID)
			}
			return
		}
		delete(outstanding, done.ID)
		if c.step == 0 {
			c.firstTok = done.Done
		}
		c.step++
		if c.step > cfg.GenTokens {
			c.finished = done.Done
			if cfg.KV != nil {
				cfg.KV.Release(c.id)
			}
			for len(admitQueue) > 0 && admit(admitQueue[0]) {
				admitQueue = admitQueue[1:]
			}
			return
		}
		submitStep(c)
	})

	for i := 0; i < cfg.Conversations; i++ {
		i := i
		eng.At(simclock.Time(i)*simclock.Time(cfg.ArrivalGap), func(now simclock.Time) {
			c := &conversation{id: i, started: now}
			convs[i] = c
			if !admit(c) {
				res.QueuedForKV++
				admitQueue = append(admitQueue, c)
			}
		})
	}
	eng.Run()
	if runErr != nil {
		return res, runErr
	}

	for i := 0; i < cfg.Conversations; i++ {
		c := convs[i]
		if c == nil || c.finished == 0 {
			return res, fmt.Errorf("generate: conversation %d never finished", i)
		}
		res.TTFT = append(res.TTFT, time.Duration(c.firstTok-c.started))
		res.TPOT = append(res.TPOT, time.Duration(c.finished-c.firstTok)/time.Duration(cfg.GenTokens))
		res.Total = append(res.Total, time.Duration(c.finished-c.started))
	}
	res.Conversations = cfg.Conversations
	return res, nil
}
