package simclock

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEmptyEngine(t *testing.T) {
	e := New()
	if e.Now() != 0 {
		t.Fatalf("fresh engine Now = %v, want 0", e.Now())
	}
	if e.Step() {
		t.Fatal("Step on empty engine reported an event")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", e.Pending())
	}
}

func TestEventOrdering(t *testing.T) {
	e := New()
	var got []int
	e.At(30*time.Microsecond, func(Time) { got = append(got, 3) })
	e.At(10*time.Microsecond, func(Time) { got = append(got, 1) })
	e.At(20*time.Microsecond, func(Time) { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30*time.Microsecond {
		t.Fatalf("Now = %v, want 30µs", e.Now())
	}
}

func TestFIFOTieBreaking(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5*time.Microsecond, func(Time) { got = append(got, i) })
	}
	e.Run()
	if len(got) != 100 {
		t.Fatalf("fired %d events, want 100", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events fired out of order: got[%d]=%d", i, v)
		}
	}
}

func TestAfterRelative(t *testing.T) {
	e := New()
	var at Time
	e.At(time.Millisecond, func(now Time) {
		e.After(time.Millisecond, func(now2 Time) { at = now2 })
	})
	e.Run()
	if at != 2*time.Millisecond {
		t.Fatalf("nested After fired at %v, want 2ms", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(time.Millisecond, func(Time) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(time.Microsecond, func(Time) {})
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	h := e.At(time.Millisecond, func(Time) { fired = true })
	h.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double cancel is harmless.
	h.Cancel()
}

func TestCancelOneOfMany(t *testing.T) {
	e := New()
	var got []int
	var handles []Handle
	for i := 0; i < 10; i++ {
		i := i
		handles = append(handles, e.At(Time(i)*time.Microsecond, func(Time) { got = append(got, i) }))
	}
	handles[4].Cancel()
	handles[7].Cancel()
	e.Run()
	if len(got) != 8 {
		t.Fatalf("fired %d, want 8", len(got))
	}
	for _, v := range got {
		if v == 4 || v == 7 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var got []Time
	for _, d := range []time.Duration{1, 2, 3, 4, 5} {
		e.At(d*time.Millisecond, func(now Time) { got = append(got, now) })
	}
	e.RunUntil(3 * time.Millisecond)
	if len(got) != 3 {
		t.Fatalf("fired %d events by 3ms, want 3 (deadline inclusive)", len(got))
	}
	if e.Now() != 3*time.Millisecond {
		t.Fatalf("Now = %v, want 3ms", e.Now())
	}
	e.Run()
	if len(got) != 5 {
		t.Fatalf("fired %d total, want 5", len(got))
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := New()
	e.RunUntil(7 * time.Millisecond)
	if e.Now() != 7*time.Millisecond {
		t.Fatalf("Now = %v, want 7ms", e.Now())
	}
}

func TestRunFor(t *testing.T) {
	e := New()
	e.RunFor(time.Second)
	e.RunFor(time.Second)
	if e.Now() != 2*time.Second {
		t.Fatalf("Now = %v, want 2s", e.Now())
	}
}

func TestFiredCounter(t *testing.T) {
	e := New()
	for i := 0; i < 17; i++ {
		e.At(Time(i), func(Time) {})
	}
	e.Run()
	if e.Fired() != 17 {
		t.Fatalf("Fired = %d, want 17", e.Fired())
	}
}

func TestNextEventAt(t *testing.T) {
	e := New()
	if _, ok := e.NextEventAt(); ok {
		t.Fatal("NextEventAt reported an event on an empty engine")
	}
	h := e.At(9*time.Microsecond, func(Time) {})
	e.At(11*time.Microsecond, func(Time) {})
	if at, ok := e.NextEventAt(); !ok || at != 9*time.Microsecond {
		t.Fatalf("NextEventAt = %v,%v; want 9µs,true", at, ok)
	}
	h.Cancel()
	if at, ok := e.NextEventAt(); !ok || at != 11*time.Microsecond {
		t.Fatalf("after cancel NextEventAt = %v,%v; want 11µs,true", at, ok)
	}
}

// Property: for any set of non-negative offsets, events fire in
// nondecreasing time order and the engine visits every one exactly once.
func TestPropertyFiringOrderSorted(t *testing.T) {
	f := func(offsets []uint16) bool {
		e := New()
		var fired []Time
		for _, off := range offsets {
			e.At(Time(off)*time.Microsecond, func(now Time) { fired = append(fired, now) })
		}
		e.Run()
		if len(fired) != len(offsets) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		// The multiset of firing times must equal the multiset of offsets.
		want := make([]Time, len(offsets))
		for i, off := range offsets {
			want[i] = Time(off) * time.Microsecond
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving scheduling and stepping never lets the clock go
// backwards.
func TestPropertyClockMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	e := New()
	last := Time(0)
	for i := 0; i < 5000; i++ {
		if rng.Intn(2) == 0 {
			e.At(e.Now()+Time(rng.Intn(1000))*time.Nanosecond, func(Time) {})
		} else {
			e.Step()
		}
		if e.Now() < last {
			t.Fatalf("clock went backwards: %v -> %v", last, e.Now())
		}
		last = e.Now()
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := New()
		for j := 0; j < 1000; j++ {
			e.At(Time(j%97)*time.Microsecond, func(Time) {})
		}
		e.Run()
	}
}
