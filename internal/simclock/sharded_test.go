package simclock

import (
	"fmt"
	"testing"
	"time"
)

// ringModel is a synthetic logical-process graph for exercising the
// sharded executor: every shard runs a chain of local events and passes
// tokens around the ring, each hop exactly at the lookahead bound (the
// hardest legal case). All state is per-shard, mutated only by that
// shard's events, matching the executor's isolation contract.
type ringModel struct {
	s         *Sharded
	lookahead Time
	logs      [][]firing // per-shard (token id, now) log
	hops      int        // remaining hops per token when it arrives
}

func newRingModel(shards, workers int, lookahead Time) *ringModel {
	m := &ringModel{
		s:         NewSharded(shards, lookahead, workers),
		lookahead: lookahead,
		logs:      make([][]firing, shards),
		hops:      40,
	}
	for i := 0; i < shards; i++ {
		i := i
		// Each shard starts several tokens at staggered, colliding
		// instants (same-instant cross-shard arrivals stress the
		// deterministic delivery order).
		for t := 0; t < 3; t++ {
			id := i*100 + t
			hops := m.hops
			m.s.Shard(i).At(Time(t)*time.Microsecond, m.tokenFn(i, id, hops))
		}
	}
	return m
}

// tokenFn returns the event for one arrival of token id at shard i.
func (m *ringModel) tokenFn(i, id, hops int) Event {
	return func(now Time) {
		m.logs[i] = append(m.logs[i], firing{id: id, now: now})
		// A burst of local work before forwarding: each local event
		// lands inside the shard's own near future, no lookahead needed.
		for k := 1; k <= 3; k++ {
			m.s.Shard(i).At(now+Time(k)*100*time.Nanosecond, func(n2 Time) {
				m.logs[i] = append(m.logs[i], firing{id: -id, now: n2})
			})
		}
		if hops == 0 {
			return
		}
		next := (i + 1) % m.s.Shards()
		// Forward exactly at the lookahead bound — the tightest legal post.
		m.s.Post(i, next, now+m.lookahead, m.tokenFn(next, id, hops-1))
	}
}

func (m *ringModel) run() [][]firing {
	m.s.Run()
	m.s.Close()
	return m.logs
}

// TestShardedDeterministicAcrossWorkers pins the executor's core
// guarantee: per-shard firing logs are byte-for-byte identical no matter
// how many workers execute the windows.
func TestShardedDeterministicAcrossWorkers(t *testing.T) {
	const shards = 4
	la := 2 * time.Microsecond
	ref := newRingModel(shards, 1, la).run()
	total := 0
	for _, log := range ref {
		total += len(log)
	}
	if total == 0 {
		t.Fatal("reference run fired no events")
	}
	for _, workers := range []int{2, 4, 8} {
		got := newRingModel(shards, workers, la).run()
		for i := range ref {
			if len(got[i]) != len(ref[i]) {
				t.Fatalf("workers=%d shard %d fired %d events, want %d", workers, i, len(got[i]), len(ref[i]))
			}
			for j := range ref[i] {
				if got[i][j] != ref[i][j] {
					t.Fatalf("workers=%d shard %d firing %d = %+v, want %+v", workers, i, j, got[i][j], ref[i][j])
				}
			}
		}
	}
}

// TestShardedLookaheadViolationPanics pins the contract enforcement: a
// cross-shard post closer than the lookahead is a model bug and must
// fail loudly, not corrupt causality.
func TestShardedLookaheadViolationPanics(t *testing.T) {
	s := NewSharded(2, time.Microsecond, 1)
	defer s.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("sub-lookahead cross-shard post did not panic")
		}
	}()
	s.Post(0, 1, 500*time.Nanosecond, func(Time) {})
}

// TestShardedSameShardPostUnrestricted: src == dst posts are ordinary
// schedules, allowed at any time >= the shard's clock.
func TestShardedSameShardPostUnrestricted(t *testing.T) {
	s := NewSharded(2, time.Millisecond, 1)
	defer s.Close()
	fired := false
	s.Post(0, 0, time.Nanosecond, func(Time) { fired = true })
	s.Run()
	if !fired {
		t.Fatal("same-shard post did not fire")
	}
}

// TestShardedRunUntil checks the deadline semantics match the
// single-engine RunUntil: events at the deadline fire, later ones do
// not, and every shard's clock ends at the deadline.
func TestShardedRunUntil(t *testing.T) {
	s := NewSharded(3, 10*time.Microsecond, 2)
	defer s.Close()
	var fired []int
	for i := 0; i < 3; i++ {
		i := i
		s.Shard(i).At(Time(i+1)*time.Millisecond, func(Time) { fired = append(fired, i) })
	}
	s.RunUntil(2 * time.Millisecond)
	if len(fired) != 2 {
		t.Fatalf("fired %d events by the deadline, want 2 (deadline inclusive)", len(fired))
	}
	for i := 0; i < 3; i++ {
		if now := s.Shard(i).Now(); now != 2*time.Millisecond {
			t.Fatalf("shard %d clock = %v after RunUntil, want 2ms", i, now)
		}
	}
	s.Run()
	if len(fired) != 3 {
		t.Fatalf("fired %d events total, want 3", len(fired))
	}
}

// TestShardedCrossPostTieOrder pins the deterministic delivery order of
// same-instant cross-posts from different sources: (at, src, idx), which
// fixes the destination's FIFO sequence numbers.
func TestShardedCrossPostTieOrder(t *testing.T) {
	s := NewSharded(3, time.Microsecond, 2)
	defer s.Close()
	var got []int
	at := 5 * time.Microsecond
	// Shards 1 and 2 each post two events to shard 0 at the same instant.
	for src := 2; src >= 1; src-- {
		src := src
		for k := 0; k < 2; k++ {
			k := k
			s.Post(src, 0, at, func(Time) { got = append(got, src*10+k) })
		}
	}
	s.Run()
	want := []int{10, 11, 20, 21} // src 1 before src 2, posts in index order
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("same-instant cross-posts delivered as %v, want %v", got, want)
		}
	}
}

// TestShardedStats sanity-checks the instrumentation counters.
func TestShardedStats(t *testing.T) {
	m := newRingModel(4, 2, 2*time.Microsecond)
	m.s.Run()
	st := m.s.Stats()
	m.s.Close()
	if st.Windows == 0 {
		t.Fatal("no windows executed")
	}
	if st.Posts == 0 {
		t.Fatal("no cross-posts delivered")
	}
	// The staggered ring leaves most shards idle in most windows on this
	// workload; the counter just has to be consistent.
	if st.Stalls > st.Windows*4 {
		t.Fatalf("stalls %d exceed windows x shards %d", st.Stalls, st.Windows*4)
	}
}

// TestShardedZeroLookaheadRejected pins the honest-degenerate-case
// behaviour: zero lookahead cannot be windowed, and the caller (see
// gpusim.PlanShards / core.NewEngine) must fall back to one engine.
func TestShardedZeroLookaheadRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSharded accepted a zero lookahead")
		}
	}()
	NewSharded(2, 0, 1)
}

// BenchmarkShardedRing measures windowed-execution throughput on the
// synthetic ring at 1 and 4 workers. On multi-core hosts the parallel
// variant demonstrates the scaling headroom the 1-CPU CI container
// cannot show (see docs/PERF.md).
func BenchmarkShardedRing(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			events := 0
			for i := 0; i < b.N; i++ {
				m := newRingModel(4, workers, 2*time.Microsecond)
				m.s.Run()
				if events == 0 {
					for _, log := range m.logs {
						events += len(log)
					}
				}
				m.s.Close()
			}
			b.ReportMetric(float64(events), "events/run")
		})
	}
}
