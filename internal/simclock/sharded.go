package simclock

import (
	"fmt"
	"sort"

	"liger/internal/runner"
)

// Sharded is a conservative-lookahead parallel executor over a set of
// independent Engines (shards). It implements the classic
// Chandy–Misra–Bryant null-message-free window scheme:
//
//   - each shard owns a disjoint partition of the model's events and may
//     schedule freely within itself at any timestamp >= its own clock;
//   - cross-shard communication goes through Post, which requires the
//     destination timestamp to be at least the source clock plus the
//     lookahead — the minimum latency any physical coupling between the
//     partitions can exhibit (an interconnect hop, a host notification);
//   - execution proceeds in windows: the horizon is the globally
//     earliest pending event plus the lookahead, every shard fires its
//     events strictly below the horizon (in parallel — the lookahead
//     guarantees nothing fired in this window can affect another shard
//     inside it), then a barrier delivers the buffered cross-posts and
//     the next window begins.
//
// Determinism does not depend on the worker count: each shard is
// single-goroutine deterministic within a window, and the barrier sorts
// cross-posts by (timestamp, source shard, post index) before delivery,
// so destination-engine sequence numbers — and therefore FIFO
// tie-breaking — are a pure function of the model. The unit tests pin
// per-shard firing logs byte-equal across worker counts.
//
// A lookahead of zero admits no safe window, so NewSharded rejects it:
// partitions coupled at zero latency belong in the same shard (see
// gpusim.PlanShards, which is exactly the analysis that decides this).
type Sharded struct {
	shards    []*Engine
	lookahead Time
	pool      *runner.Pool

	// outbox[src] buffers cross-posts made by shard src during the
	// current window. Only shard src's goroutine appends to it, so the
	// window needs no locking; the barrier drains all outboxes
	// single-threaded.
	outbox [][]post

	// firedAtBarrier[i] snapshots shard i's Fired() before each window,
	// for exact stall accounting after the barrier.
	firedAtBarrier []uint64

	stats ShardStats
}

// post is one buffered cross-shard event.
type post struct {
	dst int
	at  Time
	fn  Event
	// src and idx complete the deterministic delivery order (at, src, idx).
	src, idx int
}

// ShardStats instruments the windowed execution.
type ShardStats struct {
	// Windows is the number of conservative windows executed.
	Windows uint64
	// Posts is the number of cross-shard events delivered.
	Posts uint64
	// Stalls counts shard-windows in which a shard had no event below
	// the horizon — it paid the barrier without advancing. High stall
	// ratios mean the partition is imbalanced or the lookahead is small
	// relative to the event density.
	Stalls uint64
}

// NewSharded creates a sharded executor with n shards and the given
// lookahead (> 0). workers bounds the goroutines used per window;
// workers <= 1 executes shards serially (still windowed, still the same
// event order — the tests compare serial and parallel logs bytewise).
func NewSharded(n int, lookahead Time, workers int) *Sharded {
	if n <= 0 {
		panic("simclock: NewSharded needs at least one shard")
	}
	if lookahead <= 0 {
		panic("simclock: NewSharded needs a positive lookahead; zero-latency couplings belong in one shard")
	}
	if workers > n {
		workers = n
	}
	s := &Sharded{
		shards:         make([]*Engine, n),
		lookahead:      lookahead,
		pool:           runner.NewPool(workers),
		outbox:         make([][]post, n),
		firedAtBarrier: make([]uint64, n),
	}
	for i := range s.shards {
		s.shards[i] = New()
	}
	return s
}

// Shards returns the number of shards.
func (s *Sharded) Shards() int { return len(s.shards) }

// Shard returns shard i's engine. Scheduling directly on it is allowed
// from that shard's own events (or before Run starts); cross-shard
// scheduling must go through Post.
func (s *Sharded) Shard(i int) *Engine { return s.shards[i] }

// Lookahead returns the conservative window bound.
func (s *Sharded) Lookahead() Time { return s.lookahead }

// Stats returns the windowed-execution counters.
func (s *Sharded) Stats() ShardStats { return s.stats }

// Close releases the worker pool. The Sharded must not be run after.
func (s *Sharded) Close() { s.pool.Close() }

// Post schedules fn at time at on shard dst, from shard src. The
// lookahead contract is enforced: at must be at least src's current
// clock plus the lookahead. Same-shard posts (src == dst) are ordinary
// schedules with no lookahead requirement.
//
// Posts made while a window is executing are buffered and delivered at
// the barrier in (at, src, index) order; posts made between windows
// (before Run / RunUntil) are buffered the same way and delivered at the
// next window's barrier-equivalent startup drain.
func (s *Sharded) Post(src, dst int, at Time, fn Event) {
	if src == dst {
		s.shards[dst].At(at, fn)
		return
	}
	if min := s.shards[src].Now() + s.lookahead; at < min {
		panic(fmt.Sprintf("simclock: cross-shard post at %v violates lookahead (shard %d now %v + lookahead %v = %v)",
			at, src, s.shards[src].Now(), s.lookahead, min))
	}
	ob := s.outbox[src]
	s.outbox[src] = append(ob, post{dst: dst, at: at, fn: fn, src: src, idx: len(ob)})
}

// deliver drains every outbox into the destination engines in the
// deterministic (at, src, idx) order and returns the number delivered.
func (s *Sharded) deliver() int {
	total := 0
	for _, ob := range s.outbox {
		total += len(ob)
	}
	if total == 0 {
		return 0
	}
	all := make([]post, 0, total)
	for i, ob := range s.outbox {
		all = append(all, ob...)
		s.outbox[i] = ob[:0]
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.idx < b.idx
	})
	for _, p := range all {
		dst := s.shards[p.dst]
		at := p.at
		if at < dst.Now() {
			// Unreachable under the lookahead contract (the destination
			// fired only below the horizon, and at >= horizon); kept as a
			// hard failure rather than a silent clamp.
			panic(fmt.Sprintf("simclock: cross-shard post at %v arrived in shard %d's past (now %v)", at, p.dst, dst.Now()))
		}
		dst.At(at, p.fn)
	}
	s.stats.Posts += uint64(total)
	return total
}

// minNext returns the earliest pending event time across shards.
func (s *Sharded) minNext() (Time, bool) {
	var best Time
	found := false
	for _, e := range s.shards {
		if at, ok := e.NextEventAt(); ok && (!found || at < best) {
			best, found = at, true
		}
	}
	return best, found
}

// Run executes windows until no shard has pending events and no posts
// are buffered.
func (s *Sharded) Run() { s.runWindows(nil) }

// RunUntil executes windows until every event with a timestamp <= the
// deadline has fired, then advances every shard's clock to the deadline.
func (s *Sharded) RunUntil(deadline Time) {
	s.runWindows(&deadline)
	for _, e := range s.shards {
		e.RunUntil(deadline) // drains nothing; advances idle clocks
	}
}

// runWindows is the window loop. A nil deadline runs to exhaustion;
// otherwise only events at or below *deadline fire.
func (s *Sharded) runWindows(deadline *Time) {
	for {
		s.deliver()
		next, ok := s.minNext()
		if !ok {
			return
		}
		if deadline != nil && next > *deadline {
			return
		}
		horizon := next + s.lookahead
		if deadline != nil && horizon > *deadline+1 {
			// Cap the window so nothing beyond the deadline fires; +1
			// keeps the deadline itself inside (RunBefore is exclusive).
			horizon = *deadline + 1
		}
		s.stats.Windows++
		for i, e := range s.shards {
			s.firedAtBarrier[i] = e.Fired()
		}
		s.pool.Run(len(s.shards), func(i int) {
			s.shards[i].RunBefore(horizon)
		})
		// Stall accounting happens outside the window (single-threaded):
		// racing increments from the workers would tear the counter.
		for i, e := range s.shards {
			if e.Fired() == s.firedAtBarrier[i] {
				s.stats.Stalls++
			}
		}
	}
}
