package simclock

import (
	"testing"
	"time"
)

// BenchmarkEngineStep measures the steady-state cost of one
// fire→reschedule cycle: every fired event schedules its successor, so
// the queue population stays constant. This is the dominant pattern in
// the GPU simulator (kernel completions re-arming completions) and the
// benchmark that guards the free-list: allocs/op should be zero once
// fired items are recycled.
func BenchmarkEngineStep(b *testing.B) {
	e := New()
	var fn Event
	fn = func(now Time) {
		e.At(now+time.Microsecond, fn)
	}
	for i := 0; i < 64; i++ {
		e.At(Time(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkEngineCancelReschedule mimics Device.setKernelRate: a
// standing population of events is repeatedly cancelled and re-timed.
// It exercises both the free-list (cancelled items must be reclaimed)
// and heap compaction (cancelled entries may briefly dominate the
// queue).
func BenchmarkEngineCancelReschedule(b *testing.B) {
	e := New()
	const population = 128
	handles := make([]Handle, population)
	for i := range handles {
		handles[i] = e.At(Time(1000+i)*time.Microsecond, func(Time) {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % population
		handles[j].Cancel()
		handles[j] = e.At(Time(2000+i%1000)*time.Microsecond, func(Time) {})
	}
}
