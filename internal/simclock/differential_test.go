package simclock

import (
	"math/rand"
	"testing"
	"time"

	"liger/internal/simclock/refheap"
)

// The differential property test drives the calendar-queue engine and
// the frozen binary-heap reference (internal/simclock/refheap) side by
// side through the same randomized workload and asserts they agree on
// everything observable: fire order, the clock value passed to each
// callback, Now, Fired, Pending, and NextEventAt. Both engines order
// events by the same strict total order (at, seq), so any divergence is
// a bug in one of the queues, not a legitimate implementation choice.

// diffPair keeps the two engines plus the shared workload bookkeeping.
type diffPair struct {
	t   *testing.T
	cal *Engine
	ref *refheap.Engine

	// calFired / refFired log (event id, now) pairs per engine.
	calFired []firing
	refFired []firing

	handles []diffHandle
	nextID  int
}

type firing struct {
	id  int
	now Time
}

type diffHandle struct {
	cal  Handle
	ref  refheap.Handle
	live bool
}

func newDiffPair(t *testing.T) *diffPair {
	return &diffPair{t: t, cal: New(), ref: refheap.New()}
}

// scheduleAt arms the same event on both engines.
func (p *diffPair) scheduleAt(at Time) {
	id := p.nextID
	p.nextID++
	ch := p.cal.At(at, func(now Time) { p.calFired = append(p.calFired, firing{id, now}) })
	rh := p.ref.At(at, func(now refheap.Time) { p.refFired = append(p.refFired, firing{id, now}) })
	p.handles = append(p.handles, diffHandle{cal: ch, ref: rh, live: true})
}

// cancel cancels handle i on both engines (stale/double cancels included
// on purpose — they must be no-ops on both sides).
func (p *diffPair) cancel(i int) {
	p.handles[i].cal.Cancel()
	p.handles[i].ref.Cancel()
	p.handles[i].live = false
}

// check asserts every observable agrees between the engines.
func (p *diffPair) check() {
	p.t.Helper()
	if len(p.calFired) != len(p.refFired) {
		p.t.Fatalf("fired %d events on calendar, %d on refheap", len(p.calFired), len(p.refFired))
	}
	for i := range p.calFired {
		if p.calFired[i] != p.refFired[i] {
			p.t.Fatalf("firing %d diverged: calendar (id=%d now=%v), refheap (id=%d now=%v)",
				i, p.calFired[i].id, p.calFired[i].now, p.refFired[i].id, p.refFired[i].now)
		}
	}
	if p.cal.Now() != p.ref.Now() {
		p.t.Fatalf("Now diverged: calendar %v, refheap %v", p.cal.Now(), p.ref.Now())
	}
	if p.cal.Fired() != p.ref.Fired() {
		p.t.Fatalf("Fired diverged: calendar %d, refheap %d", p.cal.Fired(), p.ref.Fired())
	}
	if p.cal.Pending() != p.ref.Pending() {
		p.t.Fatalf("Pending diverged: calendar %d, refheap %d", p.cal.Pending(), p.ref.Pending())
	}
	ca, cok := p.cal.NextEventAt()
	ra, rok := p.ref.NextEventAt()
	if cok != rok || ca != ra {
		p.t.Fatalf("NextEventAt diverged: calendar (%v,%v), refheap (%v,%v)", ca, cok, ra, rok)
	}
}

// TestDifferentialRandomWorkloads is the main differential property
// test: seeded random mixes of schedule / cancel / re-arm / Step /
// RunUntil / RunFor, with timestamp distributions chosen to stress every
// band and transition of the calendar queue — same-instant bursts,
// dense near-horizon clusters, far-future outliers, and mass-cancel
// churn that forces compaction on both sides.
func TestDifferentialRandomWorkloads(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			p := newDiffPair(t)
			for op := 0; op < 4000; op++ {
				switch k := rng.Intn(100); {
				case k < 35: // schedule with a band-stressing offset
					var off Time
					switch rng.Intn(6) {
					case 0: // same-instant burst
						off = 0
					case 1: // sub-bucket cluster
						off = Time(rng.Intn(64)) * time.Nanosecond
					case 2: // near horizon (current window)
						off = Time(rng.Intn(1000)) * time.Microsecond
					case 3: // beyond the initial window -> far band
						off = Time(rng.Intn(100)) * time.Millisecond
					case 4: // deep far future
						off = time.Hour + Time(rng.Intn(1000))*time.Second
					case 5: // sentinel-scale, like kernels at rate 0
						// Target an absolute instant near 2^60, not a relative
						// offset: repeated now+2^60 hops would ratchet the
						// clock into int64 overflow.
						if at := Time(1<<60) + Time(rng.Intn(1000)); at >= p.cal.Now() {
							off = at - p.cal.Now()
						} else {
							off = time.Hour
						}
					}
					p.scheduleAt(p.cal.Now() + off)
				case k < 50: // cancel a random handle (stale ones included)
					if len(p.handles) > 0 {
						p.cancel(rng.Intn(len(p.handles)))
					}
				case k < 60: // re-arm: cancel then schedule, the kernel re-time pattern
					if len(p.handles) > 0 {
						p.cancel(rng.Intn(len(p.handles)))
						p.scheduleAt(p.cal.Now() + Time(rng.Intn(2000))*time.Microsecond)
					}
				case k < 64: // mass-cancel churn to force compaction
					var idx []int
					for i, h := range p.handles {
						if h.live && rng.Intn(4) > 0 {
							idx = append(idx, i)
						}
					}
					for _, i := range idx {
						p.cancel(i)
					}
				case k < 85: // step both
					cs := p.cal.Step()
					rs := p.ref.Step()
					if cs != rs {
						t.Fatalf("Step diverged: calendar %v, refheap %v", cs, rs)
					}
				case k < 95: // bounded run
					d := Time(rng.Intn(5000)) * time.Microsecond
					p.cal.RunFor(d)
					p.ref.RunFor(d)
				default: // absolute-deadline run (deadline inclusive)
					dl := p.cal.Now() + Time(rng.Intn(2000))*time.Microsecond
					p.cal.RunUntil(dl)
					p.ref.RunUntil(dl)
				}
				p.check()
			}
			// Drain both completely: every remaining live event fires in
			// the same order.
			p.cal.Run()
			p.ref.Run()
			p.check()
			if p.cal.Pending() != 0 {
				t.Fatalf("calendar left %d pending after Run", p.cal.Pending())
			}
		})
	}
}

// TestDifferentialSameInstantBurst pins FIFO tie-breaking across a burst
// far larger than a bucket, interleaved with cancels of every third
// event.
func TestDifferentialSameInstantBurst(t *testing.T) {
	p := newDiffPair(t)
	at := 3 * time.Millisecond
	for i := 0; i < 5000; i++ {
		p.scheduleAt(at)
	}
	for i := 0; i < len(p.handles); i += 3 {
		p.cancel(i)
	}
	p.cal.Run()
	p.ref.Run()
	p.check()
}

// TestDifferentialIdleJumpThenNearSchedule exercises the rebase path:
// NextEventAt on a far-only queue slides the calendar window deep into
// the future, then a schedule lands between the clock and the new
// window start.
func TestDifferentialIdleJumpThenNearSchedule(t *testing.T) {
	p := newDiffPair(t)
	p.scheduleAt(time.Hour)
	p.check() // NextEventAt inside check() forces the idle window jump
	p.scheduleAt(5 * time.Microsecond)
	p.scheduleAt(2 * time.Second)
	p.check()
	cs := p.cal.Step()
	rs := p.ref.Step()
	if cs != rs || !cs {
		t.Fatalf("Step diverged after rebase: calendar %v, refheap %v", cs, rs)
	}
	p.cal.Run()
	p.ref.Run()
	p.check()
	if st := p.cal.Stats(); st.Rebases == 0 {
		t.Fatal("workload did not exercise the rebase path")
	}
}
