package simclock

import (
	"testing"
	"time"
)

// TestCancelledHeapCompaction is the regression test for the
// cancelled-event leak: a workload that repeatedly cancels far-future
// events (every kernel re-time does this) must not grow the heap
// unboundedly. Cancelled entries beyond half the queue are compacted
// away.
func TestCancelledHeapCompaction(t *testing.T) {
	e := New()
	// One live anchor event, plus a long cancel/reschedule churn that
	// never pops anything (all events are far in the future).
	e.At(time.Hour, func(Time) {})
	h := e.At(time.Hour, func(Time) {})
	for i := 0; i < 100000; i++ {
		h.Cancel()
		h = e.At(time.Hour+Time(i), func(Time) {})
	}
	// Without compaction PendingRaw would be ~100002; with it the queue's
	// physical occupancy stays within a small factor of the live
	// population. Pending itself must see straight through the
	// tombstones and report exactly the live events.
	if p := e.PendingRaw(); p > 2*compactMinLen {
		t.Fatalf("queue holds %d entries after cancel churn with 2 live events", p)
	}
	if p := e.Pending(); p != 2 {
		t.Fatalf("Pending = %d after cancel churn, want 2 live events", p)
	}
	// The live events must survive compaction and still fire.
	fired := 0
	e.At(2*time.Hour, func(Time) {}) // ensure the churn handle's final event has company
	for e.Step() {
		fired++
	}
	if fired != 3 {
		t.Fatalf("fired %d events after compaction, want 3", fired)
	}
}

// TestStaleHandleCannotCancelRecycledItem pins the free-list safety
// property: once an event fires its heap item is recycled, and a stale
// Handle kept from before must not cancel whatever event the recycled
// item now carries.
func TestStaleHandleCannotCancelRecycledItem(t *testing.T) {
	e := New()
	stale := e.At(time.Microsecond, func(Time) {})
	if !e.Step() {
		t.Fatal("event did not fire")
	}
	// The recycled item is reused by the next At.
	fired := false
	e.At(time.Millisecond, func(Time) { fired = true })
	stale.Cancel() // must be a no-op on the recycled item
	e.Run()
	if !fired {
		t.Fatal("stale Handle cancelled a recycled item's event")
	}
}

// TestCancelCompactionPreservesOrder checks that compaction (a heap
// rebuild) cannot reorder live events: FIFO tie-breaking and time order
// survive arbitrary cancel churn.
func TestCancelCompactionPreservesOrder(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 200; i++ {
		i := i
		e.At(time.Second+Time(i/2), func(Time) { got = append(got, i) })
	}
	// Cancel enough far-future filler to force repeated compactions.
	for round := 0; round < 10; round++ {
		var hs []Handle
		for i := 0; i < 300; i++ {
			hs = append(hs, e.At(time.Hour, func(Time) {}))
		}
		for _, h := range hs {
			h.Cancel()
		}
	}
	e.Run()
	if len(got) != 200 {
		t.Fatalf("fired %d live events, want 200", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("live events reordered after compaction: got[%d]=%d", i, v)
		}
	}
}
