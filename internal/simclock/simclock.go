// Package simclock provides the discrete-event simulation engine on which
// the whole multi-GPU node model is built.
//
// The engine keeps a virtual clock and a priority queue of timed events.
// Events scheduled for the same instant fire in the order they were
// scheduled (FIFO tie-breaking), which makes every simulation fully
// deterministic: two runs with the same inputs produce identical traces.
//
// An Engine is single-goroutine state: it shares nothing with other
// Engine instances, so independent simulations can run concurrently on
// separate goroutines (one engine per goroutine) without synchronization.
//
// # Queue design
//
// Events live in a two-band calendar queue instead of a binary heap (see
// docs/PERF.md for the full design and its measured throughput):
//
//   - the near band is a ring of fixed-width time buckets covering the
//     window [winStart, winStart+nb·width). Enqueue into a future bucket
//     is an O(1) append; a bucket is sorted once, lazily, when the clock
//     reaches it, so the near-horizon events that dominate kernel
//     scheduling cost O(1) amortized to enqueue and dequeue;
//   - events beyond the window overflow into the far band, a min-heap
//     ordered by (time, seq), and migrate into the ring as the window
//     slides over them.
//
// The firing order is the total order on (time, seq) — exactly the order
// the old heap produced — so the rewrite is semantically invisible: the
// differential test in this package drives both engines side by side
// through randomized workloads and asserts identical behaviour.
//
// Hot-path notes: fired and cancelled entries are recycled through a
// per-engine free list, so steady-state stepping allocates nothing;
// cancellation is O(1) (a tombstone flag), and the queue is compacted
// when tombstones outnumber live events. Bucket width self-tunes: the
// ring widens when events are too sparse for the window and narrows when
// single buckets grow pathological.
package simclock

import (
	"fmt"
	"math/bits"
	"slices"
	"sort"
	"time"
)

// Time is an instant on the virtual clock, expressed as a duration since
// the start of the simulation. Using time.Duration (int64 nanoseconds)
// keeps arithmetic exact; kernel durations in this domain are in the
// microsecond-to-millisecond range, far from overflow.
type Time = time.Duration

// Event is a callback scheduled to fire at a virtual instant.
type Event func(now Time)

// item is a queue entry. seq breaks ties between events at the same
// instant. gen is bumped every time the item returns to the free list so
// stale Handles to a recycled item become no-ops.
type item struct {
	at  Time
	seq uint64
	fn  Event
	gen uint64
	// cancelled events stay queued but are skipped when reached; this is
	// cheaper than removal and keeps Cancel O(1). The engine compacts
	// the queue when they pile up.
	cancelled bool
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct {
	eng *Engine
	it  *item
	gen uint64
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (h Handle) Cancel() {
	if h.it == nil || h.it.gen != h.gen || h.it.cancelled {
		return
	}
	h.it.cancelled = true
	h.it.fn = nil // release the closure immediately
	if h.eng != nil {
		h.eng.cancelled++
		h.eng.maybeCompact()
	}
}

// Calendar geometry. The ring has nb buckets; bucket width is 1<<shift
// nanoseconds, self-tuned between minShift and maxShift.
const (
	nbBits = 8
	nb     = 1 << nbBits
	nbMask = nb - 1

	// minShift = 64 ns buckets; maxShift = ~67 ms buckets (window ~17 s).
	minShift  = 6
	maxShift  = 26
	initShift = 12 // ~4.1 µs buckets, window ~1 ms: kernel-scheduling scale

	// sortInline is the bucket size up to which insertion sort beats the
	// general sort.
	sortInline = 24

	// fatBucket triggers a width halving when a single bucket's live
	// population exceeds it (sorted inserts into the current bucket would
	// otherwise degenerate into large memmoves).
	fatBucket = 1024

	// sparseWindow widens the ring at reload when the previous window
	// turned over with this many advances per pop or more.
	sparseWindow = 4
)

// compactMinLen is the queue size below which compaction is never
// worthwhile (the walk costs more than the memory it reclaims).
const compactMinLen = 64

// bucket is one slot of the near-band ring. items[head:] are the entries
// not yet consumed; sorted marks whether that slice is ordered by
// (at, seq). head > 0 implies sorted.
type bucket struct {
	items  []*item
	head   int
	sorted bool
}

// Stats are engine-level instrumentation counters (see ligerprof
// -engine-stats). All counters are cumulative over the engine's life.
type Stats struct {
	// Fired is the number of events executed.
	Fired uint64
	// MaxPending is the high-water mark of live queued events.
	MaxPending int
	// Compactions counts tombstone-compaction passes.
	Compactions uint64
	// Reloads counts window reloads from the far band (the near band
	// drained and the window re-seeded at the next far event).
	Reloads uint64
	// Rebases counts window rebases (an event scheduled before the
	// current window start forced a redistribution).
	Rebases uint64
	// Resizes counts bucket-width changes.
	Resizes uint64
	// FarPushes counts events that overflowed past the window into the
	// far band.
	FarPushes uint64
}

// Engine is a discrete-event simulation engine. The zero value is not
// ready; use New.
type Engine struct {
	now   Time
	seq   uint64
	fired uint64

	// Near band: ring of nb buckets. buckets[cur] holds events in
	// [winStart, winStart+width); every stored near event e satisfies
	// winStart <= e.at < winStart + nb*width.
	buckets   []bucket
	cur       int
	winStart  Time
	shift     uint
	nearCount int // entries stored in buckets (live + cancelled)
	// occ is the non-empty-bucket bitmap (by ring index), letting the
	// window slide straight to the next populated bucket instead of
	// scanning empties one by one.
	occ [nb / 64]uint64

	// Far band: min-heap on (at, seq) for events at or beyond the window
	// end.
	far []*item

	// cancelled counts tombstones still stored across both bands.
	cancelled int
	// free recycles fired/cancelled items; At pops from it before
	// allocating.
	free []*item
	// scratch is reused by rebase/resize redistribution passes.
	scratch []*item

	// Window-turnover counters driving width self-tuning.
	advances  uint64
	pops      uint64
	maxBucket int

	stats Stats
}

// New returns an engine with the clock at zero and no pending events.
func New() *Engine {
	return &Engine{buckets: make([]bucket, nb), shift: initShift}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far; useful for
// instrumentation and run-away detection in tests.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of live events still queued. Cancelled
// placeholders awaiting compaction are not counted — Pending is the
// number of events that will still fire.
func (e *Engine) Pending() int { return e.nearCount + len(e.far) - e.cancelled }

// PendingRaw returns the number of stored queue entries including
// cancelled placeholders not yet compacted away — the engine's physical
// occupancy, which the compaction regression test bounds.
func (e *Engine) PendingRaw() int { return e.nearCount + len(e.far) }

// Stats returns the engine's instrumentation counters.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.Fired = e.fired
	return s
}

// width returns the current bucket width.
func (e *Engine) width() Time { return Time(1) << e.shift }

// winEnd returns the first instant beyond the near window.
func (e *Engine) winEnd() Time { return e.winStart + Time(1)<<(e.shift+nbBits) }

// newItem takes an item from the free list (or allocates one) and arms it.
func (e *Engine) newItem(at Time, fn Event) *item {
	var it *item
	if n := len(e.free); n > 0 {
		it = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		it = &item{}
	}
	it.at = at
	it.seq = e.seq
	it.fn = fn
	it.cancelled = false
	e.seq++
	return it
}

// recycle returns an item no longer queued to the free list,
// invalidating outstanding Handles to it.
func (e *Engine) recycle(it *item) {
	it.gen++
	it.fn = nil
	e.free = append(e.free, it)
}

// itemAfter is the total order on queue entries: (at, seq) ascending.
// seq is unique, so this is a strict total order — the firing sequence
// is fully determined no matter which data structure holds the entries.
func itemAfter(a, b *item) bool {
	if a.at != b.at {
		return a.at > b.at
	}
	return a.seq > b.seq
}

// At schedules fn to run at the absolute virtual time at. Scheduling in
// the past panics: it always indicates a simulator bug, and silently
// clamping would hide causality violations.
func (e *Engine) At(at Time, fn Event) Handle {
	if at < e.now {
		panic(fmt.Sprintf("simclock: schedule at %v before now %v", at, e.now))
	}
	it := e.newItem(at, fn)
	e.schedule(it)
	if live := e.nearCount + len(e.far) - e.cancelled; live > e.stats.MaxPending {
		e.stats.MaxPending = live
	}
	return Handle{eng: e, it: it, gen: it.gen}
}

// After schedules fn to run d after the current time. Negative d panics.
func (e *Engine) After(d time.Duration, fn Event) Handle {
	return e.At(e.now+d, fn)
}

// schedule places an armed item into the correct band. This is the only
// place a width narrowing can trigger: insertNear is also called from
// redistribution loops (pullFar, rebase, resize), where a reentrant
// resize would corrupt the iteration in progress.
func (e *Engine) schedule(it *item) {
	if it.at < e.winStart {
		// The window was slid or reloaded past this instant while the
		// clock is still behind it (an idle peek jumped ahead, then a
		// near-term event arrived). Rebase the window down to cover it.
		e.rebase(it.at)
	}
	idx := uint64(it.at-e.winStart) >> e.shift
	if idx >= nb {
		e.farPush(it)
		e.stats.FarPushes++
		return
	}
	e.insertNear(it, int(idx))
	if e.maxBucket > fatBucket && e.shift > minShift {
		e.resize(e.shift - 2)
	}
}

// insertNear stores an item whose window offset is idx buckets ahead of
// cur. Future buckets take an O(1) append; the current, already-sorted
// bucket takes an ordered insert so consumption stays correct.
func (e *Engine) insertNear(it *item, idx int) {
	b := &e.buckets[(e.cur+idx)&nbMask]
	e.nearCount++
	if len(b.items) == b.head {
		// Empty (or fully consumed) bucket: mark occupancy, append.
		e.setOcc((e.cur + idx) & nbMask)
		if b.head > 0 {
			// Fully consumed sorted bucket: appending one item keeps
			// items[head:] trivially sorted.
			b.items = append(b.items, it)
			return
		}
		b.items = append(b.items, it)
		b.sorted = true // single entry
		return
	}
	if !b.sorted {
		b.items = append(b.items, it)
		return
	}
	// Sorted bucket (the one being consumed, typically). Fast path: the
	// new entry is the latest seq, so it lands at the end unless an
	// existing entry has a later timestamp.
	if last := b.items[len(b.items)-1]; !itemAfter(last, it) {
		b.items = append(b.items, it)
	} else {
		lo := b.head
		j := lo + sort.Search(len(b.items)-lo, func(k int) bool {
			return itemAfter(b.items[lo+k], it)
		})
		b.items = append(b.items, nil)
		copy(b.items[j+1:], b.items[j:])
		b.items[j] = it
	}
	if n := len(b.items) - b.head; n > e.maxBucket {
		e.maxBucket = n
	}
}

// setOcc / clearOcc maintain the non-empty-bucket bitmap.
func (e *Engine) setOcc(i int)   { e.occ[i>>6] |= 1 << uint(i&63) }
func (e *Engine) clearOcc(i int) { e.occ[i>>6] &^= 1 << uint(i&63) }

// nextOcc returns the ring distance from cur to the nearest populated
// bucket (0 when buckets[cur] itself is populated). Must only be called
// with nearCount > 0.
func (e *Engine) nextOcc() int {
	for d := 0; d < nb; {
		i := (e.cur + d) & nbMask
		w := e.occ[i>>6] >> uint(i&63)
		if w != 0 {
			return d + bits.TrailingZeros64(w)
		}
		// Skip the rest of this word.
		d += 64 - i&63
	}
	// Unreachable while the occupancy bitmap is consistent with
	// nearCount; fall back to the current bucket.
	return 0
}

// farPush adds an item to the far-band min-heap.
func (e *Engine) farPush(it *item) {
	e.far = append(e.far, it)
	i := len(e.far) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !itemAfter(e.far[p], e.far[i]) {
			break
		}
		e.far[p], e.far[i] = e.far[i], e.far[p]
		i = p
	}
}

// farPop removes and returns the far-band minimum.
func (e *Engine) farPop() *item {
	h := e.far
	it := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	e.far = h[:n]
	e.farSiftDown(0)
	return it
}

// farSiftDown restores the heap property downward from i.
func (e *Engine) farSiftDown(i int) {
	h := e.far
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && itemAfter(h[l], h[r]) {
			m = r
		}
		if !itemAfter(h[i], h[m]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// pullFar migrates far-band events that now fall inside the window.
func (e *Engine) pullFar() {
	end := e.winEnd()
	for len(e.far) > 0 && e.far[0].at < end {
		it := e.farPop()
		e.insertNear(it, int(uint64(it.at-e.winStart)>>e.shift))
	}
}

// sortBucket orders items[head:] by (at, seq). Unsorted buckets always
// have head == 0. Small buckets use insertion sort; larger ones the
// library sort.
func (e *Engine) sortBucket(b *bucket) {
	s := b.items
	if len(s) <= sortInline {
		for i := 1; i < len(s); i++ {
			it := s[i]
			j := i - 1
			for j >= 0 && itemAfter(s[j], it) {
				s[j+1] = s[j]
				j--
			}
			s[j+1] = it
		}
	} else {
		slices.SortFunc(s, func(a, b *item) int {
			if itemAfter(b, a) {
				return -1
			}
			return 1
		})
	}
	b.sorted = true
}

// settle positions the queue so the next live event sits at
// buckets[cur].items[head], sliding the window and migrating the far
// band as needed, and returns that event (nil when none remain).
// Cancelled entries encountered on the way are reclaimed.
func (e *Engine) settle() *item {
	for {
		if e.nearCount == 0 {
			if len(e.far) == 0 {
				return nil
			}
			e.reload()
		}
		if d := e.nextOcc(); d > 0 {
			e.cur = (e.cur + d) & nbMask
			e.winStart += Time(d) << e.shift
			e.advances += uint64(d)
			e.pullFar()
		}
		b := &e.buckets[e.cur]
		for b.head < len(b.items) {
			if !b.sorted {
				e.sortBucket(b)
			}
			it := b.items[b.head]
			if !it.cancelled {
				return it
			}
			b.items[b.head] = nil
			b.head++
			e.nearCount--
			e.cancelled--
			e.recycle(it)
		}
		// Bucket exhausted (everything in it was cancelled): reset it and
		// advance one slot.
		e.resetBucket(e.cur)
		e.cur = (e.cur + 1) & nbMask
		e.winStart += e.width()
		e.advances++
		e.pullFar()
	}
}

// resetBucket clears a consumed bucket for reuse, keeping its capacity.
func (e *Engine) resetBucket(i int) {
	b := &e.buckets[i]
	b.items = b.items[:0]
	b.head = 0
	b.sorted = false
	e.clearOcc(i)
}

// take removes the settled head event from the current bucket.
func (e *Engine) take() *item {
	b := &e.buckets[e.cur]
	it := b.items[b.head]
	b.items[b.head] = nil
	b.head++
	e.nearCount--
	e.pops++
	if b.head == len(b.items) {
		e.resetBucket(e.cur)
	}
	return it
}

// reload re-seeds an empty window at the next far-band event, applying
// width feedback from the window that just turned over: widen when the
// window was mostly empty advances, narrow when a bucket went
// pathological (narrowing is also triggered inline by insertNear).
func (e *Engine) reload() {
	if e.pops > 0 && e.advances > sparseWindow*e.pops && e.shift < maxShift {
		e.shift += 2
		if e.shift > maxShift {
			e.shift = maxShift
		}
		e.stats.Resizes++
	}
	e.advances, e.pops, e.maxBucket = 0, 0, 0
	e.cur = 0
	e.winStart = e.far[0].at
	e.stats.Reloads++
	e.pullFar()
}

// rebase slides the window start down to at (an event arrived behind the
// window while the clock still permits it), redistributing stored near
// events. Rare: it takes an idle window jump followed by a near-term
// schedule to get here.
func (e *Engine) rebase(at Time) {
	e.stats.Rebases++
	e.collectNear()
	e.cur = 0
	e.winStart = at
	tmp := e.scratch
	for i, it := range tmp {
		tmp[i] = nil
		idx := uint64(it.at-at) >> e.shift
		if idx >= nb {
			e.farPush(it)
		} else {
			e.insertNear(it, int(idx))
		}
	}
	e.scratch = tmp[:0]
}

// resize changes the bucket width to 1<<newShift, redistributing the
// near band in place. Correctness does not depend on the width — only
// the cost profile does — so resizing cannot affect firing order.
func (e *Engine) resize(newShift uint) {
	if newShift < minShift {
		newShift = minShift
	} else if newShift > maxShift {
		newShift = maxShift
	}
	if newShift == e.shift {
		return
	}
	e.stats.Resizes++
	e.collectNear()
	e.shift = newShift
	e.cur = 0
	e.maxBucket = 0
	tmp := e.scratch
	for i, it := range tmp {
		tmp[i] = nil
		idx := uint64(it.at-e.winStart) >> e.shift
		if idx >= nb {
			e.farPush(it)
		} else {
			e.insertNear(it, int(idx))
		}
	}
	e.scratch = tmp[:0]
}

// collectNear drains every stored near entry into e.scratch and resets
// the ring. nearCount drops to zero; callers reinsert.
func (e *Engine) collectNear() {
	tmp := e.scratch[:0]
	for i := range e.buckets {
		b := &e.buckets[i]
		for _, it := range b.items[b.head:] {
			tmp = append(tmp, it)
		}
		if len(b.items) > 0 || b.head > 0 {
			e.resetBucket(i)
		}
	}
	e.scratch = tmp
	e.nearCount = 0
}

// maybeCompact rebuilds both bands without cancelled placeholders once
// they exceed half the queue. The (at, seq) total order is untouched by
// removal, so compaction cannot change the pop sequence of live events.
func (e *Engine) maybeCompact() {
	total := e.nearCount + len(e.far)
	if total < compactMinLen || e.cancelled*2 <= total {
		return
	}
	e.stats.Compactions++
	for i := range e.buckets {
		b := &e.buckets[i]
		if b.head == len(b.items) {
			continue
		}
		live := b.items[:0]
		for _, it := range b.items[b.head:] {
			if it.cancelled {
				e.nearCount--
				e.recycle(it)
			} else {
				live = append(live, it)
			}
		}
		for j := len(live); j < len(b.items); j++ {
			b.items[j] = nil
		}
		b.items = live
		b.head = 0
		if len(live) == 0 {
			b.sorted = false
			e.clearOcc(i)
		}
	}
	liveFar := e.far[:0]
	for _, it := range e.far {
		if it.cancelled {
			e.recycle(it)
		} else {
			liveFar = append(liveFar, it)
		}
	}
	for j := len(liveFar); j < len(e.far); j++ {
		e.far[j] = nil
	}
	e.far = liveFar
	for i := len(e.far)/2 - 1; i >= 0; i-- {
		e.farSiftDown(i)
	}
	e.cancelled = 0
}

// Step fires the earliest pending event. It reports whether an event
// fired (false when the queue is empty).
func (e *Engine) Step() bool {
	it := e.settle()
	if it == nil {
		return false
	}
	e.take()
	e.now = it.at
	e.fired++
	fn := it.fn
	e.recycle(it)
	fn(e.now)
	return true
}

// Run fires events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled at exactly the deadline fire.
func (e *Engine) RunUntil(deadline Time) {
	for {
		it := e.settle()
		if it == nil || it.at > deadline {
			break
		}
		e.take()
		e.now = it.at
		e.fired++
		fn := it.fn
		e.recycle(it)
		fn(e.now)
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor is RunUntil(Now()+d).
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now + d) }

// RunBefore fires events with timestamps strictly below bound and stops,
// leaving the clock at the last fired event (it does NOT advance the
// idle clock to the bound — the caller owns the bound's meaning). This
// is the primitive the lookahead-sharded executor uses to advance a
// shard through one conservative window: every event below the horizon
// is safe to fire; the horizon itself is not.
func (e *Engine) RunBefore(bound Time) {
	for {
		it := e.settle()
		if it == nil || it.at >= bound {
			return
		}
		e.take()
		e.now = it.at
		e.fired++
		fn := it.fn
		e.recycle(it)
		fn(e.now)
	}
}

// peek returns the timestamp of the next live event.
func (e *Engine) peek() (Time, bool) {
	it := e.settle()
	if it == nil {
		return 0, false
	}
	return it.at, true
}

// NextEventAt reports the timestamp of the next pending event, if any.
func (e *Engine) NextEventAt() (Time, bool) { return e.peek() }
