// Package simclock provides the discrete-event simulation engine on which
// the whole multi-GPU node model is built.
//
// The engine keeps a virtual clock and a priority queue of timed events.
// Events scheduled for the same instant fire in the order they were
// scheduled (FIFO tie-breaking), which makes every simulation fully
// deterministic: two runs with the same inputs produce identical traces.
//
// An Engine is single-goroutine state: it shares nothing with other
// Engine instances, so independent simulations can run concurrently on
// separate goroutines (one engine per goroutine) without synchronization.
//
// Hot-path notes: fired and cancelled heap entries are recycled through a
// per-engine free list, so steady-state stepping allocates nothing, and
// the heap is compacted when cancelled placeholders outnumber live
// events (frequent re-timing — e.g. kernel rate changes — would
// otherwise grow it without bound).
package simclock

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is an instant on the virtual clock, expressed as a duration since
// the start of the simulation. Using time.Duration (int64 nanoseconds)
// keeps arithmetic exact; kernel durations in this domain are in the
// microsecond-to-millisecond range, far from overflow.
type Time = time.Duration

// Event is a callback scheduled to fire at a virtual instant.
type Event func(now Time)

// item is a heap entry. seq breaks ties between events at the same
// instant. gen is bumped every time the item returns to the free list so
// stale Handles to a recycled item become no-ops.
type item struct {
	at  Time
	seq uint64
	fn  Event
	gen uint64
	// cancelled events stay in the heap but are skipped when popped;
	// this is cheaper than heap removal and keeps Cancel O(1). The
	// engine compacts the heap when they pile up.
	cancelled bool
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct {
	eng *Engine
	it  *item
	gen uint64
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (h Handle) Cancel() {
	if h.it == nil || h.it.gen != h.gen || h.it.cancelled {
		return
	}
	h.it.cancelled = true
	h.it.fn = nil // release the closure immediately
	if h.eng != nil {
		h.eng.cancelled++
		h.eng.maybeCompact()
	}
}

type eventHeap []*item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*item)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// compactMinLen is the heap size below which compaction is never
// worthwhile (the walk costs more than the memory it reclaims).
const compactMinLen = 64

// Engine is a discrete-event simulation engine. The zero value is not
// ready; use New.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	fired  uint64
	// cancelled counts cancelled placeholders still in the heap.
	cancelled int
	// free recycles fired/cancelled items; At pops from it before
	// allocating.
	free []*item
}

// New returns an engine with the clock at zero and no pending events.
func New() *Engine {
	e := &Engine{}
	heap.Init(&e.events)
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far; useful for
// instrumentation and run-away detection in tests.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still queued (including cancelled
// placeholders not yet drained or compacted away).
func (e *Engine) Pending() int { return e.events.Len() }

// newItem takes an item from the free list (or allocates one) and arms it.
func (e *Engine) newItem(at Time, fn Event) *item {
	var it *item
	if n := len(e.free); n > 0 {
		it = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		it = &item{}
	}
	it.at = at
	it.seq = e.seq
	it.fn = fn
	it.cancelled = false
	e.seq++
	return it
}

// recycle returns an item no longer in the heap to the free list,
// invalidating outstanding Handles to it.
func (e *Engine) recycle(it *item) {
	it.gen++
	it.fn = nil
	e.free = append(e.free, it)
}

// maybeCompact rebuilds the heap without cancelled placeholders once they
// exceed half the queue. Heap order is a total order on (at, seq), so the
// rebuild cannot change the pop sequence of live events.
func (e *Engine) maybeCompact() {
	if len(e.events) < compactMinLen || e.cancelled*2 <= len(e.events) {
		return
	}
	live := e.events[:0]
	for _, it := range e.events {
		if it.cancelled {
			e.recycle(it)
		} else {
			live = append(live, it)
		}
	}
	for i := len(live); i < len(e.events); i++ {
		e.events[i] = nil
	}
	e.events = live
	e.cancelled = 0
	heap.Init(&e.events)
}

// At schedules fn to run at the absolute virtual time at. Scheduling in
// the past panics: it always indicates a simulator bug, and silently
// clamping would hide causality violations.
func (e *Engine) At(at Time, fn Event) Handle {
	if at < e.now {
		panic(fmt.Sprintf("simclock: schedule at %v before now %v", at, e.now))
	}
	it := e.newItem(at, fn)
	heap.Push(&e.events, it)
	return Handle{eng: e, it: it, gen: it.gen}
}

// After schedules fn to run d after the current time. Negative d panics.
func (e *Engine) After(d time.Duration, fn Event) Handle {
	return e.At(e.now+d, fn)
}

// Step fires the earliest pending event. It reports whether an event
// fired (false when the queue is empty).
func (e *Engine) Step() bool {
	for e.events.Len() > 0 {
		it := heap.Pop(&e.events).(*item)
		if it.cancelled {
			e.cancelled--
			e.recycle(it)
			continue
		}
		e.now = it.at
		e.fired++
		fn := it.fn
		e.recycle(it)
		fn(e.now)
		return true
	}
	return false
}

// Run fires events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled at exactly the deadline fire.
func (e *Engine) RunUntil(deadline Time) {
	for {
		next, ok := e.peek()
		if !ok || next > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor is RunUntil(Now()+d).
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now + d) }

// peek returns the timestamp of the next live event.
func (e *Engine) peek() (Time, bool) {
	for e.events.Len() > 0 {
		it := e.events[0]
		if it.cancelled {
			heap.Pop(&e.events)
			e.cancelled--
			e.recycle(it)
			continue
		}
		return it.at, true
	}
	return 0, false
}

// NextEventAt reports the timestamp of the next pending event, if any.
func (e *Engine) NextEventAt() (Time, bool) { return e.peek() }
