// Package simclock provides the discrete-event simulation engine on which
// the whole multi-GPU node model is built.
//
// The engine keeps a virtual clock and a priority queue of timed events.
// Events scheduled for the same instant fire in the order they were
// scheduled (FIFO tie-breaking), which makes every simulation fully
// deterministic: two runs with the same inputs produce identical traces.
package simclock

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is an instant on the virtual clock, expressed as a duration since
// the start of the simulation. Using time.Duration (int64 nanoseconds)
// keeps arithmetic exact; kernel durations in this domain are in the
// microsecond-to-millisecond range, far from overflow.
type Time = time.Duration

// Event is a callback scheduled to fire at a virtual instant.
type Event func(now Time)

// item is a heap entry. seq breaks ties between events at the same instant.
type item struct {
	at  Time
	seq uint64
	fn  Event
	// cancelled events stay in the heap but are skipped when popped;
	// this is cheaper than heap removal and keeps Cancel O(1).
	cancelled bool
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct{ it *item }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (h Handle) Cancel() {
	if h.it != nil {
		h.it.cancelled = true
	}
}

type eventHeap []*item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*item)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Engine is a discrete-event simulation engine. The zero value is not
// ready; use New.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	fired  uint64
}

// New returns an engine with the clock at zero and no pending events.
func New() *Engine {
	e := &Engine{}
	heap.Init(&e.events)
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far; useful for
// instrumentation and run-away detection in tests.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still queued (including cancelled
// placeholders not yet drained).
func (e *Engine) Pending() int { return e.events.Len() }

// At schedules fn to run at the absolute virtual time at. Scheduling in
// the past panics: it always indicates a simulator bug, and silently
// clamping would hide causality violations.
func (e *Engine) At(at Time, fn Event) Handle {
	if at < e.now {
		panic(fmt.Sprintf("simclock: schedule at %v before now %v", at, e.now))
	}
	it := &item{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, it)
	return Handle{it}
}

// After schedules fn to run d after the current time. Negative d panics.
func (e *Engine) After(d time.Duration, fn Event) Handle {
	return e.At(e.now+d, fn)
}

// Step fires the earliest pending event. It reports whether an event
// fired (false when the queue is empty).
func (e *Engine) Step() bool {
	for e.events.Len() > 0 {
		it := heap.Pop(&e.events).(*item)
		if it.cancelled {
			continue
		}
		e.now = it.at
		e.fired++
		it.fn(e.now)
		return true
	}
	return false
}

// Run fires events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled at exactly the deadline fire.
func (e *Engine) RunUntil(deadline Time) {
	for {
		next, ok := e.peek()
		if !ok || next > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor is RunUntil(Now()+d).
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now + d) }

// peek returns the timestamp of the next live event.
func (e *Engine) peek() (Time, bool) {
	for e.events.Len() > 0 {
		it := e.events[0]
		if it.cancelled {
			heap.Pop(&e.events)
			continue
		}
		return it.at, true
	}
	return 0, false
}

// NextEventAt reports the timestamp of the next pending event, if any.
func (e *Engine) NextEventAt() (Time, bool) { return e.peek() }
