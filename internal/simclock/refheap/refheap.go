// Package refheap is the frozen binary-heap reference implementation of
// the simclock engine — the exact event queue the simulator shipped with
// before the calendar-queue rewrite.
//
// It exists for two reasons:
//
//   - the differential property test in internal/simclock drives this
//     engine and the calendar-queue engine side by side through
//     randomized schedule/cancel/re-arm/RunUntil workloads and asserts
//     identical fire order and clock values — the strongest form of the
//     "byte-identical semantics" guarantee;
//   - tools/descore re-measures its events/sec on the current host so
//     BENCH_descore.json always carries a like-for-like baseline next to
//     the calendar queue's numbers.
//
// Do not optimize this package: its value is that it stays the simple,
// obviously correct total order on (time, sequence).
package refheap

import (
	"container/heap"
	"fmt"
	"time"
)

// Time mirrors simclock.Time.
type Time = time.Duration

// Event mirrors simclock.Event.
type Event func(now Time)

// item is a heap entry. seq breaks ties between events at the same
// instant; gen invalidates stale Handles to recycled items.
type item struct {
	at        Time
	seq       uint64
	fn        Event
	gen       uint64
	cancelled bool
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct {
	eng *Engine
	it  *item
	gen uint64
}

// Cancel prevents the event from firing; no-op on fired or already
// cancelled events.
func (h Handle) Cancel() {
	if h.it == nil || h.it.gen != h.gen || h.it.cancelled {
		return
	}
	h.it.cancelled = true
	h.it.fn = nil
	if h.eng != nil {
		h.eng.cancelled++
		h.eng.maybeCompact()
	}
}

type eventHeap []*item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*item)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

const compactMinLen = 64

// Engine is the reference discrete-event engine. Use New.
type Engine struct {
	now       Time
	seq       uint64
	events    eventHeap
	fired     uint64
	cancelled int
	free      []*item
}

// New returns an engine with the clock at zero and no pending events.
func New() *Engine {
	e := &Engine{}
	heap.Init(&e.events)
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of live (non-cancelled) events queued.
func (e *Engine) Pending() int { return e.events.Len() - e.cancelled }

// PendingRaw returns queued entries including cancelled placeholders.
func (e *Engine) PendingRaw() int { return e.events.Len() }

func (e *Engine) newItem(at Time, fn Event) *item {
	var it *item
	if n := len(e.free); n > 0 {
		it = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		it = &item{}
	}
	it.at = at
	it.seq = e.seq
	it.fn = fn
	it.cancelled = false
	e.seq++
	return it
}

func (e *Engine) recycle(it *item) {
	it.gen++
	it.fn = nil
	e.free = append(e.free, it)
}

func (e *Engine) maybeCompact() {
	if len(e.events) < compactMinLen || e.cancelled*2 <= len(e.events) {
		return
	}
	live := e.events[:0]
	for _, it := range e.events {
		if it.cancelled {
			e.recycle(it)
		} else {
			live = append(live, it)
		}
	}
	for i := len(live); i < len(e.events); i++ {
		e.events[i] = nil
	}
	e.events = live
	e.cancelled = 0
	heap.Init(&e.events)
}

// At schedules fn at the absolute virtual time at; the past panics.
func (e *Engine) At(at Time, fn Event) Handle {
	if at < e.now {
		panic(fmt.Sprintf("refheap: schedule at %v before now %v", at, e.now))
	}
	it := e.newItem(at, fn)
	heap.Push(&e.events, it)
	return Handle{eng: e, it: it, gen: it.gen}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d time.Duration, fn Event) Handle {
	return e.At(e.now+d, fn)
}

// Step fires the earliest pending event.
func (e *Engine) Step() bool {
	for e.events.Len() > 0 {
		it := heap.Pop(&e.events).(*item)
		if it.cancelled {
			e.cancelled--
			e.recycle(it)
			continue
		}
		e.now = it.at
		e.fired++
		fn := it.fn
		e.recycle(it)
		fn(e.now)
		return true
	}
	return false
}

// Run fires events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline, then advances the
// clock to the deadline.
func (e *Engine) RunUntil(deadline Time) {
	for {
		next, ok := e.peek()
		if !ok || next > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor is RunUntil(Now()+d).
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now + d) }

func (e *Engine) peek() (Time, bool) {
	for e.events.Len() > 0 {
		it := e.events[0]
		if it.cancelled {
			heap.Pop(&e.events)
			e.cancelled--
			e.recycle(it)
			continue
		}
		return it.at, true
	}
	return 0, false
}

// NextEventAt reports the timestamp of the next pending event, if any.
func (e *Engine) NextEventAt() (Time, bool) { return e.peek() }
