package trace

import (
	"fmt"
	"io"
	"strings"

	"liger/internal/gpusim"
	"liger/internal/simclock"
)

// Timeline renders recorded spans as an ASCII chart: one compute row
// ('#') and one communication row ('=') per device, sampled into
// fixed-width columns. It makes the Fig. 6 interleaving visible in a
// terminal:
//
//	gpu0 comp |####....####....|
//	gpu0 comm |....====....====|
type Timeline struct {
	rec   *Recorder
	width int
}

// NewTimeline builds a renderer of the given character width.
func NewTimeline(rec *Recorder, width int) *Timeline {
	if width < 8 {
		width = 8
	}
	return &Timeline{rec: rec, width: width}
}

// Render writes the chart for the given window; a zero until renders
// through the last recorded span.
func (tl *Timeline) Render(w io.Writer, from, until simclock.Time) error {
	if until == 0 {
		for _, s := range tl.rec.Spans() {
			if s.End > until {
				until = s.End
			}
		}
	}
	if until <= from {
		_, err := fmt.Fprintln(w, "(empty timeline)")
		return err
	}
	span := until - from
	devices := 0
	for _, s := range tl.rec.Spans() {
		if s.Device >= devices {
			devices = s.Device + 1
		}
	}
	for d := 0; d < devices; d++ {
		comp := make([]byte, tl.width)
		comm := make([]byte, tl.width)
		for i := range comp {
			comp[i], comm[i] = '.', '.'
		}
		for _, s := range tl.rec.Spans() {
			if s.Device != d || s.End <= from || s.Start >= until {
				continue
			}
			lo := int(int64(s.Start-from) * int64(tl.width) / int64(span))
			hi := int(int64(s.End-from) * int64(tl.width) / int64(span))
			if lo < 0 {
				lo = 0
			}
			if hi >= tl.width {
				hi = tl.width - 1
			}
			for i := lo; i <= hi; i++ {
				if s.Class == gpusim.Comm {
					comm[i] = '='
				} else {
					comp[i] = '#'
				}
			}
		}
		if _, err := fmt.Fprintf(w, "gpu%d comp |%s|\n", d, comp); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "gpu%d comm |%s|\n", d, comm); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s window: %v .. %v\n", strings.Repeat(" ", 4), from, until)
	return err
}
