package trace

import (
	"fmt"
	"io"
	"strings"

	"liger/internal/gpusim"
	"liger/internal/simclock"
)

// Timeline renders recorded spans as an ASCII chart: one compute row
// ('#') and one communication row ('=') per device, sampled into
// fixed-width columns. It makes the Fig. 6 interleaving visible in a
// terminal:
//
//	gpu0 comp |####....####....|
//	gpu0 comm |....====....====|
//
// When gap annotations are installed via SetGaps, a third row per
// device marks idle intervals with their cause glyph:
//
//	gpu0 gaps |....rr......ll..|
type Timeline struct {
	rec   *Recorder
	width int
	gaps  []GapMark
}

// GapMark is one annotated idle interval on a device, rendered on the
// gap lane with its cause glyph (e.g. 'l' launch queue, 'e' event
// wait, 'r' rendezvous, 'R' recovery, '.' no work). Producers such as
// internal/analyze map their gap taxonomy onto glyphs; Timeline is
// agnostic to the cause set.
type GapMark struct {
	Device     int
	Start, End simclock.Time
	Glyph      byte
}

// SetGaps installs the gap-annotation lane. Passing nil removes it.
func (tl *Timeline) SetGaps(gaps []GapMark) { tl.gaps = gaps }

// NewTimeline builds a renderer of the given character width.
func NewTimeline(rec *Recorder, width int) *Timeline {
	if width < 8 {
		width = 8
	}
	return &Timeline{rec: rec, width: width}
}

// Render writes the chart for the given window; a zero until renders
// through the last recorded span.
func (tl *Timeline) Render(w io.Writer, from, until simclock.Time) error {
	if until == 0 {
		for _, s := range tl.rec.Spans() {
			if s.End > until {
				until = s.End
			}
		}
	}
	if until <= from {
		_, err := fmt.Fprintln(w, "(empty timeline)")
		return err
	}
	span := until - from
	devices := 0
	for _, s := range tl.rec.Spans() {
		if s.Device >= devices {
			devices = s.Device + 1
		}
	}
	for _, g := range tl.gaps {
		if g.Device >= devices {
			devices = g.Device + 1
		}
	}
	for d := 0; d < devices; d++ {
		comp := make([]byte, tl.width)
		comm := make([]byte, tl.width)
		for i := range comp {
			comp[i], comm[i] = '.', '.'
		}
		for _, s := range tl.rec.Spans() {
			if s.Device != d || s.End <= from || s.Start >= until {
				continue
			}
			lo := int(int64(s.Start-from) * int64(tl.width) / int64(span))
			hi := int(int64(s.End-from) * int64(tl.width) / int64(span))
			if lo < 0 {
				lo = 0
			}
			if hi >= tl.width {
				hi = tl.width - 1
			}
			for i := lo; i <= hi; i++ {
				if s.Class == gpusim.Comm {
					comm[i] = '='
				} else {
					comp[i] = '#'
				}
			}
		}
		if _, err := fmt.Fprintf(w, "gpu%d comp |%s|\n", d, comp); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "gpu%d comm |%s|\n", d, comm); err != nil {
			return err
		}
		if tl.gaps == nil {
			continue
		}
		lane := make([]byte, tl.width)
		for i := range lane {
			lane[i] = ' '
		}
		for _, g := range tl.gaps {
			if g.Device != d || g.End <= from || g.Start >= until {
				continue
			}
			lo := int(int64(g.Start-from) * int64(tl.width) / int64(span))
			hi := int(int64(g.End-from) * int64(tl.width) / int64(span))
			if lo < 0 {
				lo = 0
			}
			if hi >= tl.width {
				hi = tl.width - 1
			}
			for i := lo; i <= hi; i++ {
				lane[i] = g.Glyph
			}
		}
		if _, err := fmt.Fprintf(w, "gpu%d gaps |%s|\n", d, lane); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s window: %v .. %v\n", strings.Repeat(" ", 4), from, until)
	return err
}
