package trace

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"

	"liger/internal/kvcache"
)

// ServingRecorder collects the serving-layer record streams — batcher
// iterations, sequence lifecycles, paged-KV block transitions, router
// decisions, and disaggregation KV handoffs — and renders them as
// Chrome-trace lanes beside the device trace. It implements every
// serve tracer extension plus kvcache.Tracer, so one recorder wires
// the whole stack:
//
//	rec := trace.NewServingRecorder()
//	batcher.SetTracer(rec, 0)
//	paged.SetTracer(rec, eng.Now)
//	routerPolicy.Tracer = rec
//
// A recorder is single-goroutine (one engine shard); multi-shard
// owners (cluster.Disagg) keep one recorder per shard and Merge them
// after the run, which keeps recording race-free and — with the fixed
// merge order plus the stable time sort — byte-deterministic at any
// worker count.
type ServingRecorder struct {
	// pool stamps incoming kvcache events (which carry no pool of their
	// own) with the owning decode pool.
	pool int

	iterations []IterationRecord
	seqEvents  []SeqEvent
	kvEvents   []PoolKVEvent
	decisions  []RouterDecision
	handoffs   []KVHandoff
}

// PoolKVEvent is one paged-allocator transition attributed to its
// decode pool (the allocator itself doesn't know which pool owns it).
type PoolKVEvent struct {
	Pool int
	kvcache.KVEvent
}

// NewServingRecorder returns an empty recorder attributing KV events
// to pool 0; SetPool changes the attribution for per-node recorders.
func NewServingRecorder() *ServingRecorder { return &ServingRecorder{} }

// SetPool sets the decode-pool index stamped on subsequent KV events.
func (r *ServingRecorder) SetPool(pool int) { r.pool = pool }

// Iteration implements serve.ServingTracer.
func (r *ServingRecorder) Iteration(rec IterationRecord) {
	r.iterations = append(r.iterations, rec)
}

// SeqEvent implements serve.SeqTracer.
func (r *ServingRecorder) SeqEvent(e SeqEvent) {
	r.seqEvents = append(r.seqEvents, e)
}

// RouterDecision implements serve.RouterTracer.
func (r *ServingRecorder) RouterDecision(d RouterDecision) {
	r.decisions = append(r.decisions, d)
}

// KVHandoff implements serve.HandoffTracer.
func (r *ServingRecorder) KVHandoff(h KVHandoff) {
	r.handoffs = append(r.handoffs, h)
}

// KVEvent implements kvcache.Tracer.
func (r *ServingRecorder) KVEvent(e kvcache.KVEvent) {
	r.kvEvents = append(r.kvEvents, PoolKVEvent{Pool: r.pool, KVEvent: e})
}

// Merge appends every record of o. The caller merges shards in a fixed
// order and then calls Normalize once, so the combined streams are a
// pure function of the simulation.
func (r *ServingRecorder) Merge(o *ServingRecorder) {
	r.iterations = append(r.iterations, o.iterations...)
	r.seqEvents = append(r.seqEvents, o.seqEvents...)
	r.kvEvents = append(r.kvEvents, o.kvEvents...)
	r.decisions = append(r.decisions, o.decisions...)
	r.handoffs = append(r.handoffs, o.handoffs...)
}

// Normalize stably sorts every stream by (time, pool), preserving each
// shard's in-order semantics while making merged output independent of
// which streams saw events first.
func (r *ServingRecorder) Normalize() {
	sort.SliceStable(r.iterations, func(i, j int) bool {
		a, b := r.iterations[i], r.iterations[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.Pool < b.Pool
	})
	sort.SliceStable(r.seqEvents, func(i, j int) bool {
		a, b := r.seqEvents[i], r.seqEvents[j]
		if a.At != b.At {
			return a.At < b.At
		}
		return a.Pool < b.Pool
	})
	sort.SliceStable(r.kvEvents, func(i, j int) bool {
		a, b := r.kvEvents[i], r.kvEvents[j]
		if a.At != b.At {
			return a.At < b.At
		}
		return a.Pool < b.Pool
	})
	sort.SliceStable(r.decisions, func(i, j int) bool {
		a, b := r.decisions[i], r.decisions[j]
		if a.At != b.At {
			return a.At < b.At
		}
		return a.Req < b.Req
	})
	sort.SliceStable(r.handoffs, func(i, j int) bool {
		a, b := r.handoffs[i], r.handoffs[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.Seq < b.Seq
	})
}

// Iterations returns the recorded batcher submissions.
func (r *ServingRecorder) Iterations() []IterationRecord { return r.iterations }

// SeqEvents returns the recorded sequence lifecycle instants.
func (r *ServingRecorder) SeqEvents() []SeqEvent { return r.seqEvents }

// KVEvents returns the recorded paged-allocator transitions.
func (r *ServingRecorder) KVEvents() []PoolKVEvent { return r.kvEvents }

// RouterDecisions returns the recorded routing outcomes.
func (r *ServingRecorder) RouterDecisions() []RouterDecision { return r.decisions }

// KVHandoffs returns the recorded prefill→decode cache transfers.
func (r *ServingRecorder) KVHandoffs() []KVHandoff { return r.handoffs }

// Serving-trace track layout: each decode pool is a process with an
// iteration lane, a KV-pressure counter track, and a lifecycle lane;
// the router and the handoff fabric get processes of their own. PIDs
// sit above globalPID so a serving trace can be concatenated with a
// device trace without id collisions.
const (
	servingPIDBase = 1<<20 + 1<<10 // pool p => servingPIDBase + p
	routerPID      = 1<<20 + 1<<16
	handoffPID     = routerPID + 1

	tidIterations = 0
	tidKV         = 1
	tidLifecycle  = 2
)

// WriteChromeTrace serializes the serving record streams as a Chrome
// trace: one iteration lane per pool ("prefill"/"decode" spans with
// occupancy and KV gauges), a per-pool kv_blocks counter track with a
// watermark-pressure instant at every pressured transition, lifecycle
// instants (arrive/prefill/join/preempt/finish), router-decision
// instants, and KV-handoff spans with flow arrows into the receiving
// pool. Events sort stably by (TS, PID, TID, Name), so the bytes are a
// pure function of the normalized record streams.
func (r *ServingRecorder) WriteChromeTrace(w io.Writer) error {
	events := make([]chromeEvent, 0,
		len(r.iterations)+len(r.seqEvents)+2*len(r.kvEvents)+len(r.decisions)+3*len(r.handoffs))
	for _, it := range r.iterations {
		name := "decode"
		if it.Prefill {
			name = "prefill"
		}
		args := map[string]any{
			"batch":    it.Batch,
			"waiting":  it.Waiting,
			"admitted": it.Admitted,
			"retired":  it.Retired,
		}
		if it.Preempted > 0 {
			args["preempted"] = it.Preempted
		}
		if it.KVTotalBlocks > 0 {
			args["kv_used"] = it.KVUsedBlocks
			args["kv_free"] = it.KVFreeBlocks
		}
		if it.Pressure {
			args["pressure"] = true
		}
		events = append(events, chromeEvent{
			Name: name, Cat: "serving", Phase: "X",
			TS: usec(it.Start), Dur: usec(it.End - it.Start),
			PID: servingPIDBase + it.Pool, TID: tidIterations, Args: args,
		})
	}
	for _, e := range r.seqEvents {
		events = append(events, chromeEvent{
			Name: string(e.Kind), Cat: "lifecycle", Phase: "i",
			TS: usec(e.At), PID: servingPIDBase + e.Pool, TID: tidLifecycle, Scope: "t",
			Args: map[string]any{"seq": e.Seq, "tokens": e.Tokens},
		})
	}
	for _, e := range r.kvEvents {
		events = append(events, chromeEvent{
			Name: "kv_blocks", Cat: "kv", Phase: "C",
			TS: usec(e.At), PID: servingPIDBase + e.Pool, TID: tidKV,
			Args: map[string]any{"used": e.Used, "free": e.Free},
		})
		if e.Pressure {
			events = append(events, chromeEvent{
				Name: "kv-pressure", Cat: "kv", Phase: "i",
				TS: usec(e.At), PID: servingPIDBase + e.Pool, TID: tidKV, Scope: "t",
				Args: map[string]any{"kind": string(e.Kind), "seq": e.Seq, "free": e.Free},
			})
		}
	}
	for _, d := range r.decisions {
		args := map[string]any{"req": d.Req, "replica": d.Replica, "healthy": d.Healthy}
		if d.CandA >= 0 {
			args["cand_a"] = d.CandA
			args["out_a"] = d.OutstandingA
		}
		if d.CandB >= 0 {
			args["cand_b"] = d.CandB
			args["out_b"] = d.OutstandingB
		}
		events = append(events, chromeEvent{
			Name: d.Kind, Cat: "router", Phase: "i",
			TS: usec(d.At), PID: routerPID, TID: 0, Scope: "t", Args: args,
		})
	}
	for _, h := range r.handoffs {
		id := strconv.Itoa(h.Seq)
		args := map[string]any{"seq": h.Seq, "from": h.From, "to": h.To, "bytes": h.Bytes}
		if h.Req >= 0 {
			args["req"] = h.Req
		}
		events = append(events,
			chromeEvent{
				Name: "kv-handoff", Cat: "handoff", Phase: "X",
				TS: usec(h.Start), Dur: usec(h.End - h.Start),
				PID: handoffPID, TID: 0, Args: args,
			},
			chromeEvent{
				Name: "kv-handoff", Cat: "handoff", Phase: "s",
				TS: usec(h.Start), PID: handoffPID, TID: 0, ID: id,
			},
			chromeEvent{
				Name: "kv-handoff", Cat: "handoff", Phase: "f",
				TS: usec(h.End), PID: servingPIDBase + h.To, TID: tidLifecycle, ID: id,
			},
		)
	}
	events = append(events, r.servingMetadata()...)
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		return a.Name < b.Name
	})
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// servingMetadata names the pool/router/handoff processes and their
// tracks.
func (r *ServingRecorder) servingMetadata() []chromeEvent {
	pools := map[int]bool{}
	for _, it := range r.iterations {
		pools[it.Pool] = true
	}
	for _, e := range r.seqEvents {
		pools[e.Pool] = true
	}
	for _, e := range r.kvEvents {
		pools[e.Pool] = true
	}
	ids := make([]int, 0, len(pools))
	for p := range pools {
		ids = append(ids, p)
	}
	sort.Ints(ids)
	var out []chromeEvent
	for _, p := range ids {
		pid := servingPIDBase + p
		name := "pool " + strconv.Itoa(p)
		if p < 0 {
			name = "frontend"
		}
		out = append(out,
			chromeEvent{Name: "process_name", Phase: "M", PID: pid,
				Args: map[string]any{"name": name}},
			chromeEvent{Name: "thread_name", Phase: "M", PID: pid, TID: tidIterations,
				Args: map[string]any{"name": "iterations"}},
			chromeEvent{Name: "thread_name", Phase: "M", PID: pid, TID: tidKV,
				Args: map[string]any{"name": "kv blocks"}},
			chromeEvent{Name: "thread_name", Phase: "M", PID: pid, TID: tidLifecycle,
				Args: map[string]any{"name": "lifecycle"}},
		)
	}
	if len(r.decisions) > 0 {
		out = append(out,
			chromeEvent{Name: "process_name", Phase: "M", PID: routerPID,
				Args: map[string]any{"name": "router"}},
			chromeEvent{Name: "thread_name", Phase: "M", PID: routerPID, TID: 0,
				Args: map[string]any{"name": "decisions"}},
		)
	}
	if len(r.handoffs) > 0 {
		out = append(out,
			chromeEvent{Name: "process_name", Phase: "M", PID: handoffPID,
				Args: map[string]any{"name": "kv handoff"}},
			chromeEvent{Name: "thread_name", Phase: "M", PID: handoffPID, TID: 0,
				Args: map[string]any{"name": "transfers"}},
		)
	}
	return out
}
