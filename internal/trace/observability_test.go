package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"liger/internal/gpusim"
	"liger/internal/hw"
	"liger/internal/simclock"
)

func obsNode(t testing.TB, gpus int) (*simclock.Engine, *gpusim.Node, *Recorder) {
	t.Helper()
	spec := hw.V100Node()
	spec.NumGPUs = gpus
	eng := simclock.New()
	n, err := gpusim.New(eng, spec)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder()
	n.SetTracer(rec)
	return eng, n, rec
}

func us(n int) simclock.Time { return simclock.Time(n) * simclock.Time(time.Microsecond) }

// Regression (bugfix): kernels in flight at a DeviceFail used to
// vanish from the recorder — the running kernel's end was emitted
// unflagged and the queued kernel behind it got no event at all. Both
// must now surface as truncated spans ending at the failure instant.
func TestTruncatedSpansOnDeviceFail(t *testing.T) {
	eng, n, rec := obsNode(t, 1)
	s := n.NewStream(0)
	// High demand so "b" queues behind "a" instead of running alongside.
	s.Launch(gpusim.KernelSpec{Name: "a", Class: gpusim.Compute,
		Duration: 100 * time.Microsecond, ComputeDemand: 0.9, Req: -1})
	s.Launch(gpusim.KernelSpec{Name: "b", Class: gpusim.Compute,
		Duration: 100 * time.Microsecond, ComputeDemand: 0.9, Req: -1})
	eng.At(us(40), func(simclock.Time) { n.FailDevice(0) })
	eng.Run()

	byName := map[string]Span{}
	for _, sp := range rec.Spans() {
		byName[sp.Name] = sp
	}
	if len(byName) != 2 {
		t.Fatalf("recorded %d distinct spans, want both launched kernels: %+v", len(byName), rec.Spans())
	}
	a, b := byName["a"], byName["b"]
	if a.Cancelled != gpusim.CancelDeviceFail || a.End != us(40) {
		t.Fatalf("running kernel span not truncated at failure: %+v", a)
	}
	if b.Cancelled != gpusim.CancelDeviceFail || b.Start != us(40) || b.End != us(40) {
		t.Fatalf("queued kernel should leave a zero-length truncated span: %+v", b)
	}
	if len(rec.Fails()) != 1 || rec.Fails()[0].Device != 0 || rec.Fails()[0].At != us(40) {
		t.Fatalf("device failure not recorded: %+v", rec.Fails())
	}
}

// A watchdog abort must flag every member span and close the pending
// rendezvous waits as aborted.
func TestCollectiveAbortFlagsSpansAndWaits(t *testing.T) {
	eng, n, rec := obsNode(t, 2)
	coll := n.NewCollective(2)
	coll.SetTimeout(30 * time.Microsecond)
	// Only one member ever launches: the rendezvous can never complete.
	n.NewStream(0).Launch(gpusim.KernelSpec{Name: "ar", Class: gpusim.Comm,
		Duration: 10 * time.Microsecond, ComputeDemand: 0.05, MemBWDemand: 0.3,
		Coll: coll, Req: -1})
	eng.Run()

	if !coll.Aborted() {
		t.Fatal("collective did not abort")
	}
	if len(rec.Spans()) != 1 || rec.Spans()[0].Cancelled != gpusim.CancelCollectiveAbort {
		t.Fatalf("member span not flagged aborted: %+v", rec.Spans())
	}
	waits := rec.Waits()
	if len(waits) != 1 || !waits[0].Aborted || waits[0].Coll != coll.ID() {
		t.Fatalf("rendezvous wait not closed as aborted: %+v", waits)
	}
	if c := rec.Counts(); c.Enqueued != 1 || c.Aborted != 1 || c.Started != 0 {
		t.Fatalf("collective counts wrong: %+v", c)
	}
}

// A staggered rendezvous leaves a wait span on the early rank covering
// the time it held its device spinning on the late one.
func TestRendezvousWaitSpans(t *testing.T) {
	eng, n, rec := obsNode(t, 2)
	coll := n.NewCollective(2)
	member := func(dev int) gpusim.KernelSpec {
		return gpusim.KernelSpec{Name: "ar", Class: gpusim.Comm,
			Duration: 20 * time.Microsecond, ComputeDemand: 0.05, MemBWDemand: 0.3,
			Coll: coll, Req: -1}
	}
	n.NewStream(0).Launch(member(0))
	// Device 1's member queues behind a long compute kernel.
	s1 := n.NewStream(1)
	s1.Launch(gpusim.KernelSpec{Name: "c", Class: gpusim.Compute,
		Duration: 80 * time.Microsecond, ComputeDemand: 0.9, Req: -1})
	s1.Launch(member(1))
	eng.Run()

	waits := rec.Waits()
	if len(waits) != 2 {
		t.Fatalf("want one wait span per member, got %+v", waits)
	}
	var early, late WaitSpan
	for _, w := range waits {
		if w.Device == 0 {
			early = w
		} else {
			late = w
		}
	}
	if early.Aborted || early.End-early.Start < us(50) {
		t.Fatalf("early rank's wait should span the straggler's compute: %+v", early)
	}
	if early.End != late.End {
		t.Fatalf("waits must close together at transfer start: %+v vs %+v", early, late)
	}
	if c := rec.Counts(); c.Started != 1 || c.Finished != 1 || c.Aborted != 0 {
		t.Fatalf("collective counts wrong: %+v", c)
	}
}

// Fault-model rate changes and launch-queue depths must land in the
// recorder, with same-instant queue samples coalesced.
func TestFaultRatesAndQueueDepth(t *testing.T) {
	eng, n, rec := obsNode(t, 2)
	s := n.NewStream(0)
	s.Launch(gpusim.KernelSpec{Name: "k1", Class: gpusim.Compute,
		Duration: 10 * time.Microsecond, ComputeDemand: 0.4, Req: -1})
	s.Launch(gpusim.KernelSpec{Name: "k2", Class: gpusim.Compute,
		Duration: 10 * time.Microsecond, ComputeDemand: 0.4, Req: -1})
	eng.At(us(5), func(simclock.Time) { n.Device(0).SetSpeed(0.5) })
	eng.At(us(15), func(simclock.Time) { n.Device(0).SetLinkFactor(0.25) })
	eng.Run()

	rs := rec.RateSamples()
	if len(rs) != 2 {
		t.Fatalf("want 2 rate samples, got %+v", rs)
	}
	if rs[0].Speed != 0.5 || rs[0].Link != 1 || rs[0].At != us(5) {
		t.Fatalf("slowdown sample wrong: %+v", rs[0])
	}
	if rs[1].Speed != 0.5 || rs[1].Link != 0.25 {
		t.Fatalf("link sample wrong: %+v", rs[1])
	}
	qs := rec.QueueSamples()
	if len(qs) == 0 {
		t.Fatal("no queue-depth samples")
	}
	// Both launches issue at t=0: coalescing leaves one sample there.
	if qs[0].At != 0 || qs[0].Depth != 2 {
		t.Fatalf("same-instant samples not coalesced to last depth: %+v", qs[0])
	}
	if last := qs[len(qs)-1]; last.Depth != 0 {
		t.Fatalf("final queue depth %d, want 0 after drain: %+v", last.Depth, qs)
	}
}

// Regression (bugfix): WriteChromeTrace sorted with a non-stable sort
// on TS alone, so equal-timestamp events could serialize in any order.
// Events inserted in descending (PID, Name) order at one timestamp
// must come out in the canonical (TS, PID, TID, Name) order, and
// repeated writes must be byte-identical.
func TestChromeTraceStableOrder(t *testing.T) {
	rec := NewRecorder()
	for dev := 3; dev >= 0; dev-- {
		rec.KernelEnd(dev, "z", gpusim.Compute, us(10), us(20))
		rec.KernelEnd(dev, "a", gpusim.Compute, us(10), us(20))
	}
	var first, second bytes.Buffer
	if err := rec.WriteChromeTrace(&first); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteChromeTrace(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("repeated writes differ")
	}
	var events []struct {
		Name  string  `json:"name"`
		Phase string  `json:"ph"`
		TS    float64 `json:"ts"`
		PID   int     `json:"pid"`
	}
	if err := json.Unmarshal(first.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	var spans []struct {
		pid  int
		name string
	}
	for _, e := range events {
		if e.Phase == "X" {
			spans = append(spans, struct {
				pid  int
				name string
			}{e.PID, e.Name})
		}
	}
	if len(spans) != 8 {
		t.Fatalf("%d span events", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		prev, cur := spans[i-1], spans[i]
		if cur.pid < prev.pid || (cur.pid == prev.pid && cur.name < prev.name) {
			t.Fatalf("equal-TS events out of canonical order at %d: %+v", i, spans)
		}
	}
}

// The trace must parse as valid Chrome JSON and include the new event
// families after a failure run: truncated spans, a device-fail
// instant, wait spans, and counter samples.
func TestChromeTraceRendersObservabilityEvents(t *testing.T) {
	eng, n, rec := obsNode(t, 2)
	coll := n.NewCollective(2)
	coll.SetTimeout(50 * time.Microsecond)
	for d := 0; d < 2; d++ {
		n.NewStream(d).Launch(gpusim.KernelSpec{Name: "ar", Class: gpusim.Comm,
			Duration: 40 * time.Microsecond, ComputeDemand: 0.05, MemBWDemand: 0.3,
			Coll: coll, Req: -1})
	}
	eng.At(us(10), func(simclock.Time) { n.FailDevice(1) })
	eng.Run()

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, e := range events {
		seen[e["name"].(string)+"/"+e["ph"].(string)] = true
		if args, ok := e["args"].(map[string]any); ok && args["cancelled"] != nil {
			seen["cancelled"] = true
		}
	}
	for _, want := range []string{"device-fail/i", "rendezvous-wait/X", "coll-enqueue/i",
		"queue/C", "running/C", "process_name/M", "cancelled"} {
		if !seen[want] {
			t.Fatalf("trace missing %s; events: %v", want, seen)
		}
	}
}

func TestReqBreakdown(t *testing.T) {
	rec := NewRecorder()
	span := func(req int, class gpusim.KernelClass, start, end int, cancelled string) {
		rec.KernelSpan(gpusim.KernelSpan{Device: 0, Name: "k", Class: class,
			Start: us(start), End: us(end), Batch: 0, Req: req, Coll: -1, Cancelled: cancelled})
	}
	// Request 5: compute [0,100], overlapping wait [90,100], comm
	// [100,150]. No gaps.
	span(5, gpusim.Compute, 0, 100, "")
	rec.RendezvousBegin(7, 0, 0, 5, us(90))
	rec.TransferStart(7, us(100))
	span(5, gpusim.Comm, 100, 150, "")
	// Request 6: two compute bursts with a 10µs stall, one cancelled.
	span(6, gpusim.Compute, 0, 10, "")
	span(6, gpusim.Compute, 20, 30, gpusim.CancelDeviceFail)
	// Untagged work must not leak into any request.
	span(-1, gpusim.Compute, 0, 1000, "")

	br := rec.ReqBreakdown()
	if len(br) != 2 {
		t.Fatalf("breakdown for %d requests, want 2: %+v", len(br), br)
	}
	r5 := br[5]
	if r5.Compute != us(100) || r5.Comm != us(60) || r5.Stall != 0 || r5.Kernels != 2 || r5.Cancelled != 0 {
		t.Fatalf("req 5 breakdown wrong: %+v", r5)
	}
	r6 := br[6]
	if r6.Compute != us(20) || r6.Comm != 0 || r6.Stall != us(10) || r6.Kernels != 2 || r6.Cancelled != 1 {
		t.Fatalf("req 6 breakdown wrong: %+v", r6)
	}
}

// The recorder captures DepTracer records and joins them to spans via
// the kernel id; the KernelEnd fallback path carries id -1.
func TestRecorderCapturesDeps(t *testing.T) {
	eng, n, rec := obsNode(t, 1)
	s := n.NewStream(0)
	k := gpusim.KernelSpec{Name: "k", Class: gpusim.Compute,
		Duration: 10 * time.Microsecond, ComputeDemand: 0.9, Req: -1}
	s.Launch(k)
	s.Launch(k)
	eng.Run()

	deps := rec.Deps()
	spans := rec.Spans()
	if len(deps) != 2 || len(spans) != 2 {
		t.Fatalf("want 2 deps and 2 spans, got %d/%d", len(deps), len(spans))
	}
	ids := map[int]bool{}
	for _, sp := range spans {
		if sp.ID < 0 {
			t.Fatalf("span missing kernel id: %+v", sp)
		}
		ids[sp.ID] = true
	}
	for _, d := range deps {
		if !ids[d.ID] {
			t.Fatalf("dep %+v has no matching span", d)
		}
	}
	if deps[1].HeadCause != gpusim.CauseStream || deps[1].HeadPred != deps[0].ID {
		t.Fatalf("second kernel should be stream-ordered behind the first: %+v", deps[1])
	}

	rec.Reset()
	if len(rec.Deps()) != 0 {
		t.Fatal("Reset did not clear deps")
	}
	rec.KernelEnd(0, "legacy", gpusim.Compute, 0, us(10))
	if sp := rec.Spans()[0]; sp.ID != -1 {
		t.Fatalf("KernelEnd path should carry id -1: %+v", sp)
	}
}
