package trace

import "liger/internal/simclock"

// Serving-layer record types. They live here — not in serve — so the
// trace package stays below serve in the import graph (serve aliases
// them for its tracer interfaces); the serving layers emit these
// records and ServingRecorder collects them.

// IterationRecord is one scheduler submission of the continuous
// batcher: either a prefill batch over newly admitted sequences or a
// decode iteration over the live pool. Start is the submission instant,
// End the completion; the KV gauges are sampled at submission, after
// admission and any watermark evictions ran.
type IterationRecord struct {
	// Pool identifies the batcher (decode-pool index in a disaggregated
	// cluster, 0 for a single-node run).
	Pool int
	// Seq numbers the batcher's submissions from 0 in scheduling order.
	Seq int
	// Prefill marks a context-phase batch; false is a decode iteration.
	Prefill bool
	Start   simclock.Time
	End     simclock.Time
	// Batch is the submission's sequence count (prefill batch size or
	// live-pool occupancy).
	Batch int
	// Waiting is the admission-queue depth after this step's admissions.
	Waiting int
	// Admitted counts sequences admitted in this step; Preempted counts
	// sequences evicted by this step's watermark/extend pressure;
	// Retired counts sequences that finished at this submission's
	// completion.
	Admitted  int
	Preempted int
	Retired   int
	// KVUsedBlocks/KVFreeBlocks/KVTotalBlocks sample the paged
	// allocator at submission (all zero without one); Pressure reports
	// free blocks under the eviction watermark at that instant.
	KVUsedBlocks  int
	KVFreeBlocks  int
	KVTotalBlocks int
	Pressure      bool
}

// SeqEventKind labels one point of a sequence's serving lifecycle.
type SeqEventKind string

const (
	// SeqArrive: the sequence entered a batcher's admission queue (or,
	// from the disaggregation frontend, entered the system).
	SeqArrive SeqEventKind = "arrive"
	// SeqPrefillStart/SeqPrefillEnd bracket a context-phase submission
	// covering the sequence (a recompute prefill after preemption emits
	// another pair).
	SeqPrefillStart SeqEventKind = "prefill_start"
	SeqPrefillEnd   SeqEventKind = "prefill_end"
	// SeqJoin: a transferred-in (already prefilled) sequence joined the
	// decode pool without a local prefill.
	SeqJoin SeqEventKind = "join"
	// SeqPreempt: evicted under memory pressure and re-queued with its
	// recompute obligation.
	SeqPreempt SeqEventKind = "preempt"
	// SeqFinish: generation completed (the frontend of a disaggregated
	// cluster emits a second finish when the notice reaches it).
	SeqFinish SeqEventKind = "finish"
)

// SeqEvent is one lifecycle instant of one sequence. A sequence's
// time-ordered events tile its latency exactly: the analyzer labels
// each gap between consecutive events (queue, prefill, decode,
// handoff, preempt-wait, recompute) from the closing event's kind.
type SeqEvent struct {
	Pool int
	Seq  int
	Kind SeqEventKind
	At   simclock.Time
	// Tokens carries the kind's size: prefill length for
	// prefill_start/prefill_end/join, cached tokens (the recompute
	// obligation) for preempt, produced tokens for finish.
	Tokens int
}

// RouterDecision is one routing outcome of the fleet router: a
// dispatch (with its power-of-two probe state), a hedge, a failure
// retry, an exactly-once node-loss re-dispatch, a shed, a park while
// no replica is healthy, or a park flush.
type RouterDecision struct {
	Req  int
	Kind string // dispatch | hedge | retry | redispatch | shed | park | flush
	// Replica is the chosen node (-1 for shed/park).
	Replica int
	// CandA/CandB are the two sampled candidates of the power-of-two
	// choice with their outstanding counts at decision time (CandB -1
	// when fewer than two replicas were healthy).
	CandA, CandB               int
	OutstandingA, OutstandingB int
	// Healthy is the healthy-replica count at decision time.
	Healthy int
	At      simclock.Time
}

// KVHandoff is one prefill→decode cache transfer of a disaggregated
// cluster, priced by the inter-node network: Bytes of KV moved from
// prefill node From to decode pool To over [Start, End].
type KVHandoff struct {
	Seq   int
	Req   int
	From  int // prefill-node index
	To    int // decode-pool index
	Bytes int64
	Start simclock.Time
	End   simclock.Time
}
