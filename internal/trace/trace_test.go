package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"

	"liger/internal/gpusim"
	"liger/internal/hw"
	"liger/internal/model"
	"liger/internal/nccl"
	"liger/internal/parallel"
	"liger/internal/simclock"
)

func TestRecorderCollectsSpans(t *testing.T) {
	eng := simclock.New()
	node, err := gpusim.New(eng, hw.V100Node())
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder()
	node.SetTracer(rec)
	s := node.NewStream(0)
	s.Launch(gpusim.KernelSpec{Name: "a", Class: gpusim.Compute, Duration: 10 * time.Microsecond, ComputeDemand: 0.5})
	s.Launch(gpusim.KernelSpec{Name: "b", Class: gpusim.Comm, Duration: 5 * time.Microsecond, ComputeDemand: 0.1})
	eng.Run()
	if len(rec.Spans()) != 2 {
		t.Fatalf("recorded %d spans", len(rec.Spans()))
	}
	for _, sp := range rec.Spans() {
		if sp.End <= sp.Start {
			t.Fatalf("span %q has non-positive duration", sp.Name)
		}
	}
	rec.Reset()
	if len(rec.Spans()) != 0 {
		t.Fatal("Reset did not clear spans")
	}
}

func TestChromeTraceExport(t *testing.T) {
	rec := NewRecorder()
	rec.KernelEnd(0, "gemm", gpusim.Compute, 0, simclock.Time(10*time.Microsecond))
	rec.KernelEnd(1, "ar", gpusim.Comm, simclock.Time(5*time.Microsecond), simclock.Time(20*time.Microsecond))
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	var spans []map[string]interface{}
	for _, e := range events {
		if e["ph"] == "X" {
			spans = append(spans, e)
		}
	}
	if len(spans) != 2 {
		t.Fatalf("%d span events", len(spans))
	}
	if spans[1]["tid"] != float64(1) {
		t.Fatal("comm kernel not on track 1")
	}
}

func TestOverlapTime(t *testing.T) {
	rec := NewRecorder()
	us := func(n int) simclock.Time { return simclock.Time(n) * simclock.Time(time.Microsecond) }
	// compute [0,100], comm [40,80]: overlap 40µs on device 0.
	rec.KernelEnd(0, "c", gpusim.Compute, us(0), us(100))
	rec.KernelEnd(0, "m", gpusim.Comm, us(40), us(80))
	// Device 1: disjoint.
	rec.KernelEnd(1, "c", gpusim.Compute, us(0), us(50))
	rec.KernelEnd(1, "m", gpusim.Comm, us(50), us(90))
	if ov := rec.OverlapTime(0); ov != us(40) {
		t.Fatalf("device 0 overlap %v, want 40µs", ov)
	}
	if ov := rec.OverlapTime(1); ov != 0 {
		t.Fatalf("device 1 overlap %v, want 0", ov)
	}
}

func TestSoloProfileMatchesDescDurations(t *testing.T) {
	node := hw.V100Node()
	comp := parallel.NewCompiler(node, nccl.Config{ReducedChannels: true})
	ks, err := comp.IntraOp(model.Tiny(), node.NumGPUs,
		model.Workload{Batch: 2, SeqLen: 16, Phase: model.Context})
	if err != nil {
		t.Fatal(err)
	}
	ks = ks[:12]
	durs, err := SoloProfile(node, ks)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range durs {
		if d != ks[i].Duration {
			t.Fatalf("solo profile of %s = %v, descriptor says %v", ks[i].Name, d, ks[i].Duration)
		}
	}
}

func TestMeasureContentionFindsSlowdown(t *testing.T) {
	node := hw.V100Node()
	gemm := parallel.SyntheticKernel("gemm", gpusim.Compute, 500*time.Microsecond,
		node.Contention.GEMMCompute, node.Contention.GEMMMemBW, false)
	ar := parallel.SyntheticKernel("ar", gpusim.Comm, 400*time.Microsecond,
		node.Contention.CommComputeReduced, node.Contention.CommMemBW, true)
	rep, err := MeasureContention(node, []parallel.KernelDesc{gemm}, []parallel.KernelDesc{ar})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pairs != 1 {
		t.Fatalf("pairs = %d", rep.Pairs)
	}
	// GEMM+comm oversubscribe bandwidth on the V100 spec, so both slow —
	// the comm kernel disproportionately (CommBWSensitivity).
	oversub := node.Contention.GEMMMemBW + node.Contention.CommMemBW
	bound := math.Pow(oversub, node.Contention.CommBWSensitivity)
	if rep.MaxFactor < 1.01 {
		t.Fatalf("no contention detected: %+v", rep)
	}
	if rep.MaxFactor > bound+0.05 {
		t.Fatalf("factor %v exceeds sensitivity-adjusted bound %v", rep.MaxFactor, bound)
	}
	if rep.CommFactor <= rep.ComputeFactor {
		t.Fatalf("comm factor %v should exceed compute factor %v under contention",
			rep.CommFactor, rep.ComputeFactor)
	}
}

func TestMeasureContentionNoOverlapNoSlowdown(t *testing.T) {
	node := hw.V100Node()
	// A comm kernel with no bandwidth demand cannot contend.
	gemm := parallel.SyntheticKernel("gemm", gpusim.Compute, 100*time.Microsecond, 0.5, 0.0, false)
	ar := parallel.SyntheticKernel("ar", gpusim.Comm, 100*time.Microsecond, 0.05, 0.0, true)
	rep, err := MeasureContention(node, []parallel.KernelDesc{gemm}, []parallel.KernelDesc{ar})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxFactor > 1.001 {
		t.Fatalf("phantom contention: %+v", rep)
	}
}
