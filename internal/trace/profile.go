package trace

import (
	"time"

	"liger/internal/gpusim"
	"liger/internal/hw"
	"liger/internal/parallel"
	"liger/internal/simclock"
)

// SoloProfile measures each kernel's duration by executing it alone on
// a fresh simulated node — the offline procedure that populates the
// function wrappers' duration fields (Fig. 5's "Runtime Trace"). The
// result excludes launch latency: it is the span from kernel start to
// kernel end.
func SoloProfile(node hw.Node, kernels []parallel.KernelDesc) ([]time.Duration, error) {
	out := make([]time.Duration, len(kernels))
	for i, k := range kernels {
		eng := simclock.New()
		n, err := gpusim.New(eng, node)
		if err != nil {
			return nil, err
		}
		rec := NewRecorder()
		n.SetTracer(rec)
		if k.Collective {
			coll := n.NewCollective(n.NumDevices())
			for d := 0; d < n.NumDevices(); d++ {
				n.NewStream(d).Launch(specOf(k, coll))
			}
		} else {
			n.NewStream(0).Launch(specOf(k, nil))
		}
		eng.Run()
		var longest time.Duration
		for _, s := range rec.Spans() {
			if d := time.Duration(s.End - s.Start); d > longest {
				longest = d
			}
		}
		out[i] = longest
	}
	return out, nil
}

// ContentionReport holds the concurrent-profiling results of §3.5.
type ContentionReport struct {
	// MaxFactor is the largest observed slowdown of any kernel when a
	// compute and a communication kernel execute concurrently — the
	// contention factor the scheduler uses.
	MaxFactor float64
	// ComputeFactor / CommFactor are the per-class maxima.
	ComputeFactor float64
	CommFactor    float64
	// Pairs is the number of concurrent pairs profiled.
	Pairs int
}

// MeasureContention runs every (compute, comm) kernel pair concurrently
// on a simulated node and compares against solo durations. Only lengthy
// compute kernels matter (§3.5 profiles "lengthy computation kernels
// with intensive computation and communication kernels"); callers
// should pass representative GEMMs and all-reduces.
func MeasureContention(node hw.Node, computeKs, commKs []parallel.KernelDesc) (ContentionReport, error) {
	rep := ContentionReport{MaxFactor: 1, ComputeFactor: 1, CommFactor: 1}
	soloCompute, err := SoloProfile(node, computeKs)
	if err != nil {
		return rep, err
	}
	soloComm, err := SoloProfile(node, commKs)
	if err != nil {
		return rep, err
	}
	for ci, ck := range computeKs {
		for mi, mk := range commKs {
			compDur, commDur, err := runPair(node, ck, mk)
			if err != nil {
				return rep, err
			}
			rep.Pairs++
			if soloCompute[ci] > 0 {
				f := float64(compDur) / float64(soloCompute[ci])
				if f > rep.ComputeFactor {
					rep.ComputeFactor = f
				}
			}
			if soloComm[mi] > 0 {
				f := float64(commDur) / float64(soloComm[mi])
				if f > rep.CommFactor {
					rep.CommFactor = f
				}
			}
		}
	}
	if rep.ComputeFactor > rep.MaxFactor {
		rep.MaxFactor = rep.ComputeFactor
	}
	if rep.CommFactor > rep.MaxFactor {
		rep.MaxFactor = rep.CommFactor
	}
	return rep, nil
}

// runPair executes one compute kernel concurrently with one collective
// on every device and returns the overlapped durations. The compute
// kernel is launched on a second stream of each device so both classes
// are resident together, as in the §3.5 profiling method.
func runPair(node hw.Node, ck, mk parallel.KernelDesc) (computeDur, commDur time.Duration, err error) {
	eng := simclock.New()
	n, e := gpusim.New(eng, node)
	if e != nil {
		return 0, 0, e
	}
	rec := NewRecorder()
	n.SetTracer(rec)
	var coll *gpusim.Collective
	if mk.Collective {
		coll = n.NewCollective(n.NumDevices())
	}
	for d := 0; d < n.NumDevices(); d++ {
		n.NewStreamOnConnection(d, 0).Launch(specOf(ck, nil))
		conn := 1 % node.Host.MaxConnections
		n.NewStreamOnConnection(d, conn).Launch(specOf(mk, coll))
	}
	eng.Run()
	for _, s := range rec.Spans() {
		d := time.Duration(s.End - s.Start)
		if s.Class == gpusim.Comm {
			if d > commDur {
				commDur = d
			}
		} else if d > computeDur {
			computeDur = d
		}
	}
	return computeDur, commDur, nil
}

func specOf(k parallel.KernelDesc, coll *gpusim.Collective) gpusim.KernelSpec {
	return gpusim.KernelSpec{
		Name:          k.Name,
		Class:         k.Class,
		Duration:      k.Duration,
		ComputeDemand: k.ComputeDemand,
		MemBWDemand:   k.MemBWDemand,
		Coll:          coll,
	}
}
