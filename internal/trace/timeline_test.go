package trace

import (
	"strings"
	"testing"
	"time"

	"liger/internal/gpusim"
	"liger/internal/simclock"
)

func TestTimelineRender(t *testing.T) {
	rec := NewRecorder()
	us := func(n int) simclock.Time { return simclock.Time(n) * simclock.Time(time.Microsecond) }
	rec.KernelEnd(0, "g", gpusim.Compute, us(0), us(50))
	rec.KernelEnd(0, "a", gpusim.Comm, us(50), us(100))
	rec.KernelEnd(1, "g", gpusim.Compute, us(25), us(75))

	var sb strings.Builder
	tl := NewTimeline(rec, 20)
	if err := tl.Render(&sb, 0, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"gpu0 comp", "gpu0 comm", "gpu1 comp", "#", "="} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
	// Device 0's compute occupies the first half: its row must start
	// with '#' and end with '.'.
	lines := strings.Split(out, "\n")
	comp0 := lines[0]
	if !strings.Contains(comp0, "|#") {
		t.Fatalf("gpu0 compute should start busy: %q", comp0)
	}
	if !strings.HasSuffix(strings.TrimRight(comp0, "|"), ".") {
		t.Fatalf("gpu0 compute should end idle: %q", comp0)
	}
}

func TestTimelineEmpty(t *testing.T) {
	rec := NewRecorder()
	var sb strings.Builder
	if err := NewTimeline(rec, 40).Render(&sb, 0, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "empty") {
		t.Fatalf("empty recorder should render a placeholder: %q", sb.String())
	}
}

func TestTimelineWindowClipping(t *testing.T) {
	rec := NewRecorder()
	us := func(n int) simclock.Time { return simclock.Time(n) * simclock.Time(time.Microsecond) }
	rec.KernelEnd(0, "before", gpusim.Compute, us(0), us(10))
	rec.KernelEnd(0, "inside", gpusim.Comm, us(50), us(60))
	rec.KernelEnd(0, "after", gpusim.Compute, us(200), us(210))
	var sb strings.Builder
	if err := NewTimeline(rec, 10).Render(&sb, us(40), us(80)); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(sb.String(), "\n")
	if strings.Contains(lines[0], "#") {
		t.Fatalf("out-of-window compute leaked into view: %q", lines[0])
	}
	if !strings.Contains(lines[1], "=") {
		t.Fatalf("in-window comm missing: %q", lines[1])
	}
}

func TestTimelineMinimumWidth(t *testing.T) {
	rec := NewRecorder()
	tl := NewTimeline(rec, 1)
	if tl.width < 8 {
		t.Fatalf("width %d below minimum", tl.width)
	}
}

func TestTimelineGapLane(t *testing.T) {
	rec := NewRecorder()
	us := func(n int) simclock.Time { return simclock.Time(n) * simclock.Time(time.Microsecond) }
	rec.KernelEnd(0, "g", gpusim.Compute, us(0), us(50))
	rec.KernelEnd(0, "g2", gpusim.Compute, us(80), us(100))

	tl := NewTimeline(rec, 20)
	tl.SetGaps([]GapMark{{Device: 0, Start: us(50), End: us(80), Glyph: 'l'}})
	var sb strings.Builder
	if err := tl.Render(&sb, 0, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "gpu0 gaps") {
		t.Fatalf("gap lane missing:\n%s", out)
	}
	var lane string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "gpu0 gaps") {
			lane = line
		}
	}
	if !strings.Contains(lane, "l") {
		t.Fatalf("gap glyph missing from lane: %q", lane)
	}
	// The glyph must land mid-row: the device is busy at both edges.
	if strings.HasPrefix(lane, "gpu0 gaps |l") || strings.HasSuffix(strings.TrimSuffix(lane, "|"), "l") {
		t.Fatalf("gap glyph rendered at a busy edge: %q", lane)
	}

	// Without SetGaps the lane is absent.
	tl.SetGaps(nil)
	sb.Reset()
	if err := tl.Render(&sb, 0, 0); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "gaps") {
		t.Fatalf("gap lane rendered without annotations:\n%s", sb.String())
	}
}
