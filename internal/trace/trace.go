// Package trace provides the offline preprocessing tools of Liger's
// workflow (Fig. 5): a kernel profiler that measures solo durations by
// running kernels on the simulated node, a concurrent-pair profiler
// that derives the contention factors of §3.5, and a Chrome-trace
// recorder for visualizing interleaved execution.
package trace

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"

	"liger/internal/gpusim"
	"liger/internal/simclock"
)

// Span is one recorded kernel execution. Batch, Req and Coll are -1
// when the launch carried no scheduling metadata (raw KernelEnd
// callers, local kernels). Cancelled is non-empty when the kernel was
// truncated by a teardown instead of completing (see
// gpusim.CancelDeviceFail / gpusim.CancelCollectiveAbort).
type Span struct {
	// ID is the node-unique kernel id joining this span against its Dep
	// record (-1 on the metadata-free KernelEnd path).
	ID        int
	Device    int
	Name      string
	Class     gpusim.KernelClass
	Start     simclock.Time
	End       simclock.Time
	Batch     int
	Req       int
	Coll      int
	Cancelled string
}

// WaitSpan is one device's rendezvous wait inside a collective: from
// the member's admission (it holds SMs while spinning on its peers) to
// the instant the group starts its transfer — or aborts.
type WaitSpan struct {
	Device  int
	Coll    int
	Batch   int
	Req     int
	Start   simclock.Time
	End     simclock.Time
	Aborted bool
}

// RateSample is one device's fault-model rate change: Speed scales
// kernel progress, Link scales interconnect throughput.
type RateSample struct {
	Device int
	Speed  float64
	Link   float64
	At     simclock.Time
}

// FailEvent marks a permanent device failure.
type FailEvent struct {
	Device int
	At     simclock.Time
}

// RecoveryWindow is one failover reconfiguration epoch: from the
// runtime observing the failure to serving resuming on the survivors.
type RecoveryWindow struct {
	Start simclock.Time
	End   simclock.Time
}

// Dep is the recorded causal launch history of one kernel, mirroring
// gpusim.KernelDep: when the host issued it, when the launch queue
// delivered it (Serialized > 0 when the connection's issue gap pushed
// it behind ConnPred), when and why it reached the head of its stream
// (HeadCause is one of gpusim.CauseDelivery/CauseStream/CauseEvent,
// HeadPred the enabling kernel id), and when the device admitted it
// (AdmitPred names the kernel whose finish freed the SMs when
// Admitted > HeadAt). Kernels cancelled before admission have no Dep.
type Dep struct {
	ID         int
	Device     int
	Stream     int
	Coll       int
	Issued     simclock.Time
	Delivered  simclock.Time
	Serialized simclock.Time
	ConnPred   int
	HeadAt     simclock.Time
	HeadCause  string
	HeadPred   int
	Admitted   simclock.Time
	AdmitPred  int
}

// QueueSample is one launch-queue depth observation (commands issued
// to a device's streams and not yet retired).
type QueueSample struct {
	Device int
	Depth  int
	At     simclock.Time
}

// EnqueueEvent marks one member launch of a collective.
type EnqueueEvent struct {
	Coll   int
	Size   int
	Device int
	At     simclock.Time
}

// CollectiveCounts aggregates collective lifecycle totals.
type CollectiveCounts struct {
	Enqueued int // member launches
	Started  int // groups whose rendezvous completed
	Finished int // groups that completed their transfer
	Aborted  int // groups torn down by the watchdog or a failure
}

// ReqLatency is the trace-side decomposition of one request's time on
// the devices: union of its compute spans, union of its comm spans
// (rendezvous waits included — that is where the launch-lag pathology
// shows), and the stall gaps in between (first kernel start to last
// kernel end not covered by any of its spans).
type ReqLatency struct {
	Compute   simclock.Time
	Comm      simclock.Time
	Stall     simclock.Time
	Kernels   int
	Cancelled int
}

// Recorder collects kernel spans and, when installed via
// gpusim.SetTracer, the extended observability events: it implements
// gpusim.Tracer, SpanTracer, CollectiveTracer, FaultTracer and
// QueueTracer.
type Recorder struct {
	spans    []Span
	deps     []Dep
	waits    []WaitSpan
	rates    []RateSample
	fails    []FailEvent
	recovery []RecoveryWindow
	queue    []QueueSample
	enqueues []EnqueueEvent
	counts   CollectiveCounts

	// openWaits holds rendezvous waits per collective until the group
	// starts or aborts; lastQ coalesces same-instant queue samples.
	openWaits map[int][]WaitSpan
	lastQ     map[int]int
	recovOpen bool
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{openWaits: make(map[int][]WaitSpan), lastQ: make(map[int]int)}
}

// KernelStart implements gpusim.Tracer.
func (r *Recorder) KernelStart(int, string, gpusim.KernelClass, simclock.Time) {}

// KernelEnd implements gpusim.Tracer. It records a span with no
// scheduling metadata; the node prefers the KernelSpan path, so this
// only runs for direct callers.
func (r *Recorder) KernelEnd(dev int, name string, class gpusim.KernelClass, start, end simclock.Time) {
	r.spans = append(r.spans, Span{ID: -1, Device: dev, Name: name, Class: class,
		Start: start, End: end, Batch: -1, Req: -1, Coll: -1})
}

// KernelSpan implements gpusim.SpanTracer — the metadata-rich path the
// node uses instead of KernelEnd.
func (r *Recorder) KernelSpan(sp gpusim.KernelSpan) {
	r.spans = append(r.spans, Span{ID: sp.ID, Device: sp.Device, Name: sp.Name,
		Class: sp.Class, Start: sp.Start, End: sp.End, Batch: sp.Batch, Req: sp.Req,
		Coll: sp.Coll, Cancelled: sp.Cancelled})
}

// KernelDep implements gpusim.DepTracer, recording the causal launch
// history each admitted kernel carries.
func (r *Recorder) KernelDep(dep gpusim.KernelDep) {
	r.deps = append(r.deps, Dep{
		ID: dep.ID, Device: dep.Device, Stream: dep.Stream, Coll: dep.Coll,
		Issued: dep.Issued, Delivered: dep.Delivered,
		Serialized: dep.Serialized, ConnPred: dep.ConnPred,
		HeadAt: dep.HeadAt, HeadCause: dep.HeadCause, HeadPred: dep.HeadPred,
		Admitted: dep.Admitted, AdmitPred: dep.AdmitPred,
	})
}

// CollectiveEnqueue implements gpusim.CollectiveTracer.
func (r *Recorder) CollectiveEnqueue(coll, size, dev int, at simclock.Time) {
	r.enqueues = append(r.enqueues, EnqueueEvent{Coll: coll, Size: size, Device: dev, At: at})
	r.counts.Enqueued++
}

// RendezvousBegin implements gpusim.CollectiveTracer: the member now
// occupies its device while spinning on its peers.
func (r *Recorder) RendezvousBegin(coll, dev, batch, req int, at simclock.Time) {
	r.openWaits[coll] = append(r.openWaits[coll],
		WaitSpan{Device: dev, Coll: coll, Batch: batch, Req: req, Start: at})
}

// TransferStart implements gpusim.CollectiveTracer: the rendezvous
// completed, closing every member's wait span.
func (r *Recorder) TransferStart(coll int, at simclock.Time) {
	r.closeWaits(coll, at, false)
	r.counts.Started++
}

// CollectiveFinish implements gpusim.CollectiveTracer.
func (r *Recorder) CollectiveFinish(int, simclock.Time) { r.counts.Finished++ }

// CollectiveAbort implements gpusim.CollectiveTracer: pending waits
// close flagged, since the transfer never happened.
func (r *Recorder) CollectiveAbort(coll int, at simclock.Time) {
	r.closeWaits(coll, at, true)
	r.counts.Aborted++
}

func (r *Recorder) closeWaits(coll int, at simclock.Time, aborted bool) {
	for _, w := range r.openWaits[coll] {
		w.End = at
		w.Aborted = aborted
		r.waits = append(r.waits, w)
	}
	delete(r.openWaits, coll)
}

// RateChange implements gpusim.FaultTracer.
func (r *Recorder) RateChange(dev int, speed, link float64, at simclock.Time) {
	r.rates = append(r.rates, RateSample{Device: dev, Speed: speed, Link: link, At: at})
}

// DeviceFailed implements gpusim.FaultTracer.
func (r *Recorder) DeviceFailed(dev int, at simclock.Time) {
	r.fails = append(r.fails, FailEvent{Device: dev, At: at})
}

// RecoveryBegin implements gpusim.FaultTracer.
func (r *Recorder) RecoveryBegin(at simclock.Time) {
	if r.recovOpen {
		return
	}
	r.recovOpen = true
	r.recovery = append(r.recovery, RecoveryWindow{Start: at, End: -1})
}

// RecoveryEnd implements gpusim.FaultTracer.
func (r *Recorder) RecoveryEnd(at simclock.Time) {
	if !r.recovOpen {
		return
	}
	r.recovOpen = false
	r.recovery[len(r.recovery)-1].End = at
}

// QueueDepth implements gpusim.QueueTracer. Same-instant samples for
// one device coalesce to the last value, so a burst of launches leaves
// one data point instead of a staircase of intermediate depths.
func (r *Recorder) QueueDepth(dev, depth int, at simclock.Time) {
	if i, ok := r.lastQ[dev]; ok && r.queue[i].At == at {
		r.queue[i].Depth = depth
		return
	}
	r.queue = append(r.queue, QueueSample{Device: dev, Depth: depth, At: at})
	r.lastQ[dev] = len(r.queue) - 1
}

// Spans returns the recorded spans in completion order.
func (r *Recorder) Spans() []Span { return r.spans }

// Deps returns the recorded dependency records in admission order.
func (r *Recorder) Deps() []Dep { return r.deps }

// Waits returns the closed rendezvous-wait spans in close order.
func (r *Recorder) Waits() []WaitSpan { return r.waits }

// RateSamples returns the fault-model rate changes in event order.
func (r *Recorder) RateSamples() []RateSample { return r.rates }

// Fails returns the permanent device failures in event order.
func (r *Recorder) Fails() []FailEvent { return r.fails }

// RecoveryWindows returns the failover epochs; an epoch still open at
// the end of the run has End == -1.
func (r *Recorder) RecoveryWindows() []RecoveryWindow { return r.recovery }

// QueueSamples returns the coalesced launch-queue depth samples.
func (r *Recorder) QueueSamples() []QueueSample { return r.queue }

// Counts returns the collective lifecycle totals.
func (r *Recorder) Counts() CollectiveCounts { return r.counts }

// Reset drops all recorded events.
func (r *Recorder) Reset() {
	*r = Recorder{openWaits: make(map[int][]WaitSpan), lastQ: make(map[int]int)}
}

// ReqBreakdown decomposes device time per request id: spans and waits
// tagged Req < 0 are ignored. Compute and Comm are interval unions (a
// request's kernels on different devices overlap), Stall is the
// request's first-start→last-end wall time not covered by any of its
// spans or waits.
func (r *Recorder) ReqBreakdown() map[int]ReqLatency {
	type acc struct {
		compute, comm, all []interval
		kernels, cancelled int
	}
	byReq := make(map[int]*acc)
	get := func(req int) *acc {
		a := byReq[req]
		if a == nil {
			a = &acc{}
			byReq[req] = a
		}
		return a
	}
	for _, s := range r.spans {
		if s.Req < 0 {
			continue
		}
		a := get(s.Req)
		iv := interval{s.Start, s.End}
		a.all = append(a.all, iv)
		if s.Class == gpusim.Comm {
			a.comm = append(a.comm, iv)
		} else {
			a.compute = append(a.compute, iv)
		}
		a.kernels++
		if s.Cancelled != "" {
			a.cancelled++
		}
	}
	for _, w := range r.waits {
		if w.Req < 0 {
			continue
		}
		a := get(w.Req)
		iv := interval{w.Start, w.End}
		a.all = append(a.all, iv)
		a.comm = append(a.comm, iv)
	}
	out := make(map[int]ReqLatency, len(byReq))
	for req, a := range byReq {
		var lo, hi simclock.Time
		for i, iv := range a.all {
			if i == 0 || iv.start < lo {
				lo = iv.start
			}
			if iv.end > hi {
				hi = iv.end
			}
		}
		out[req] = ReqLatency{
			Compute:   unionTime(a.compute),
			Comm:      unionTime(a.comm),
			Stall:     (hi - lo) - unionTime(a.all),
			Kernels:   a.kernels,
			Cancelled: a.cancelled,
		}
	}
	return out
}

type interval struct{ start, end simclock.Time }

// unionTime returns the total length covered by the intervals,
// counting overlaps once. Mutates ivs' order.
func unionTime(ivs []interval) simclock.Time {
	if len(ivs) == 0 {
		return 0
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
	var total simclock.Time
	cur := ivs[0]
	for _, iv := range ivs[1:] {
		if iv.start > cur.end {
			total += cur.end - cur.start
			cur = iv
			continue
		}
		if iv.end > cur.end {
			cur.end = iv.end
		}
	}
	total += cur.end - cur.start
	return total
}

// chromeEvent is one entry of the Chrome tracing JSON array format
// (chrome://tracing / Perfetto compatible).
type chromeEvent struct {
	Name  string  `json:"name"`
	Cat   string  `json:"cat"`
	Phase string  `json:"ph"`
	TS    float64 `json:"ts"`  // microseconds
	Dur   float64 `json:"dur"` // microseconds
	PID   int     `json:"pid"`
	TID   int     `json:"tid"`
	Scope string  `json:"s,omitempty"`
	// ID links flow-event pairs ("s"/"f" phases — the serving trace's
	// KV-handoff arrows); empty for every other phase.
	ID   string         `json:"id,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Chrome-trace track layout: each device is a process with a compute
// track, a comm track, and a rendezvous-wait track; node-wide events
// (recovery windows) live on a dedicated process.
const (
	tidCompute = 0
	tidComm    = 1
	tidWait    = 2
	// globalPID hosts node-wide (not per-device) events.
	globalPID = 1 << 20
)

func usec(t simclock.Time) float64 { return float64(t) / 1e3 }

// WriteChromeTrace serializes every recorded event as a Chrome trace.
// Devices map to processes; kernel spans land on the compute/comm
// tracks, rendezvous waits on their own track, fault-model rates and
// launch-queue depths become counter tracks, device failures instant
// events, and recovery windows spans on a node-wide process. Output is
// byte-deterministic: events sort stably by (TS, PID, TID, Name) and
// args serialize with sorted keys.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	events := make([]chromeEvent, 0,
		2*len(r.spans)+len(r.waits)+len(r.rates)+len(r.queue)+len(r.fails)+len(r.enqueues))
	for _, s := range r.spans {
		tid := tidCompute
		if s.Class == gpusim.Comm {
			tid = tidComm
		}
		var args map[string]any
		if s.Batch >= 0 || s.Req >= 0 || s.Coll >= 0 || s.Cancelled != "" {
			args = map[string]any{}
			if s.Batch >= 0 {
				args["batch"] = s.Batch
			}
			if s.Req >= 0 {
				args["req"] = s.Req
			}
			if s.Coll >= 0 {
				args["coll"] = s.Coll
			}
			if s.Cancelled != "" {
				args["cancelled"] = s.Cancelled
			}
		}
		events = append(events, chromeEvent{
			Name: s.Name, Cat: s.Class.String(), Phase: "X",
			TS: usec(s.Start), Dur: usec(s.End - s.Start),
			PID: s.Device, TID: tid, Args: args,
		})
	}
	for _, ws := range r.waits {
		args := map[string]any{"coll": ws.Coll}
		if ws.Batch >= 0 {
			args["batch"] = ws.Batch
		}
		if ws.Req >= 0 {
			args["req"] = ws.Req
		}
		if ws.Aborted {
			args["aborted"] = true
		}
		events = append(events, chromeEvent{
			Name: "rendezvous-wait", Cat: "wait", Phase: "X",
			TS: usec(ws.Start), Dur: usec(ws.End - ws.Start),
			PID: ws.Device, TID: tidWait, Args: args,
		})
	}
	for _, e := range r.enqueues {
		events = append(events, chromeEvent{
			Name: "coll-enqueue", Cat: "collective", Phase: "i",
			TS: usec(e.At), PID: e.Device, TID: tidComm, Scope: "t",
			Args: map[string]any{"coll": e.Coll, "size": e.Size},
		})
	}
	for _, rs := range r.rates {
		events = append(events, chromeEvent{
			Name: "rate", Cat: "fault", Phase: "C",
			TS: usec(rs.At), PID: rs.Device, TID: tidCompute,
			Args: map[string]any{"speed": rs.Speed, "link": rs.Link},
		})
	}
	for _, qs := range r.queue {
		events = append(events, chromeEvent{
			Name: "queue", Cat: "launch", Phase: "C",
			TS: usec(qs.At), PID: qs.Device, TID: tidCompute,
			Args: map[string]any{"depth": qs.Depth},
		})
	}
	for _, f := range r.fails {
		events = append(events, chromeEvent{
			Name: "device-fail", Cat: "fault", Phase: "i",
			TS: usec(f.At), PID: f.Device, TID: tidCompute, Scope: "p",
		})
	}
	for _, rw := range r.recovery {
		if rw.End < rw.Start {
			continue // still open at the end of the run
		}
		events = append(events, chromeEvent{
			Name: "recovery", Cat: "fault", Phase: "X",
			TS: usec(rw.Start), Dur: usec(rw.End - rw.Start),
			PID: globalPID, TID: 0,
		})
	}
	events = append(events, r.runningCounters()...)
	events = append(events, r.metadata()...)
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		return a.Name < b.Name
	})
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// runningCounters derives per-device "running kernels" counter samples
// from the span edges, one sample per (instant, device) with the
// compute and comm resident counts.
func (r *Recorder) runningCounters() []chromeEvent {
	type edge struct {
		at    simclock.Time
		dev   int
		class gpusim.KernelClass
		delta int
	}
	edges := make([]edge, 0, 2*len(r.spans))
	for _, s := range r.spans {
		edges = append(edges, edge{s.Start, s.Device, s.Class, +1},
			edge{s.End, s.Device, s.Class, -1})
	}
	sort.SliceStable(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		if edges[i].dev != edges[j].dev {
			return edges[i].dev < edges[j].dev
		}
		return edges[i].delta < edges[j].delta // ends before starts at ties
	})
	counts := map[int]*[2]int{}
	var out []chromeEvent
	for i := 0; i < len(edges); {
		at, dev := edges[i].at, edges[i].dev
		c := counts[dev]
		if c == nil {
			c = &[2]int{}
			counts[dev] = c
		}
		for ; i < len(edges) && edges[i].at == at && edges[i].dev == dev; i++ {
			if edges[i].class == gpusim.Comm {
				c[1] += edges[i].delta
			} else {
				c[0] += edges[i].delta
			}
		}
		out = append(out, chromeEvent{
			Name: "running", Cat: "util", Phase: "C",
			TS: usec(at), PID: dev, TID: tidCompute,
			Args: map[string]any{"compute": c[0], "comm": c[1]},
		})
	}
	return out
}

// metadata names the processes and threads so Perfetto shows devices
// and track roles instead of bare ids.
func (r *Recorder) metadata() []chromeEvent {
	devs := map[int]bool{}
	for _, s := range r.spans {
		devs[s.Device] = true
	}
	for _, ws := range r.waits {
		devs[ws.Device] = true
	}
	for _, rs := range r.rates {
		devs[rs.Device] = true
	}
	for _, qs := range r.queue {
		devs[qs.Device] = true
	}
	for _, f := range r.fails {
		devs[f.Device] = true
	}
	ids := make([]int, 0, len(devs))
	for d := range devs {
		ids = append(ids, d)
	}
	sort.Ints(ids)
	var out []chromeEvent
	for _, d := range ids {
		out = append(out,
			chromeEvent{Name: "process_name", Phase: "M", PID: d,
				Args: map[string]any{"name": "GPU " + strconv.Itoa(d)}},
			chromeEvent{Name: "thread_name", Phase: "M", PID: d, TID: tidCompute,
				Args: map[string]any{"name": "compute"}},
			chromeEvent{Name: "thread_name", Phase: "M", PID: d, TID: tidComm,
				Args: map[string]any{"name": "comm"}},
			chromeEvent{Name: "thread_name", Phase: "M", PID: d, TID: tidWait,
				Args: map[string]any{"name": "rendezvous"}},
		)
	}
	if len(r.recovery) > 0 {
		out = append(out, chromeEvent{Name: "process_name", Phase: "M", PID: globalPID,
			Args: map[string]any{"name": "node"}})
	}
	return out
}

// OverlapTime returns, per device, the total time during which a
// compute span and a comm span overlap — a direct measure of the
// interleaving Liger creates.
func (r *Recorder) OverlapTime(dev int) simclock.Time {
	type edge struct {
		at    simclock.Time
		class gpusim.KernelClass
		delta int
	}
	var edges []edge
	for _, s := range r.spans {
		if s.Device != dev {
			continue
		}
		edges = append(edges, edge{s.Start, s.Class, +1}, edge{s.End, s.Class, -1})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		return edges[i].delta < edges[j].delta // ends before starts at ties
	})
	var comp, comm int
	var last simclock.Time
	var total simclock.Time
	for _, e := range edges {
		if comp > 0 && comm > 0 {
			total += e.at - last
		}
		last = e.at
		if e.class == gpusim.Comm {
			comm += e.delta
		} else {
			comp += e.delta
		}
	}
	return total
}
