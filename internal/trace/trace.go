// Package trace provides the offline preprocessing tools of Liger's
// workflow (Fig. 5): a kernel profiler that measures solo durations by
// running kernels on the simulated node, a concurrent-pair profiler
// that derives the contention factors of §3.5, and a Chrome-trace
// recorder for visualizing interleaved execution.
package trace

import (
	"encoding/json"
	"io"
	"sort"

	"liger/internal/gpusim"
	"liger/internal/simclock"
)

// Span is one recorded kernel execution.
type Span struct {
	Device int
	Name   string
	Class  gpusim.KernelClass
	Start  simclock.Time
	End    simclock.Time
}

// Recorder collects kernel spans; it implements gpusim.Tracer.
type Recorder struct {
	spans []Span
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// KernelStart implements gpusim.Tracer.
func (r *Recorder) KernelStart(int, string, gpusim.KernelClass, simclock.Time) {}

// KernelEnd implements gpusim.Tracer.
func (r *Recorder) KernelEnd(dev int, name string, class gpusim.KernelClass, start, end simclock.Time) {
	r.spans = append(r.spans, Span{Device: dev, Name: name, Class: class, Start: start, End: end})
}

// Spans returns the recorded spans in completion order.
func (r *Recorder) Spans() []Span { return r.spans }

// Reset drops recorded spans.
func (r *Recorder) Reset() { r.spans = nil }

// chromeEvent is one entry of the Chrome tracing JSON array format
// (chrome://tracing / Perfetto compatible).
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"`  // microseconds
	Dur   float64           `json:"dur"` // microseconds
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace serializes the spans as a Chrome trace. Devices map
// to processes; the compute/comm kernel classes map to two tracks per
// device.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	events := make([]chromeEvent, 0, len(r.spans))
	for _, s := range r.spans {
		tid := 0
		if s.Class == gpusim.Comm {
			tid = 1
		}
		events = append(events, chromeEvent{
			Name:  s.Name,
			Cat:   s.Class.String(),
			Phase: "X",
			TS:    float64(s.Start) / 1e3,
			Dur:   float64(s.End-s.Start) / 1e3,
			PID:   s.Device,
			TID:   tid,
		})
	}
	sort.Slice(events, func(i, j int) bool { return events[i].TS < events[j].TS })
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// OverlapTime returns, per device, the total time during which a
// compute span and a comm span overlap — a direct measure of the
// interleaving Liger creates.
func (r *Recorder) OverlapTime(dev int) simclock.Time {
	type edge struct {
		at    simclock.Time
		class gpusim.KernelClass
		delta int
	}
	var edges []edge
	for _, s := range r.spans {
		if s.Device != dev {
			continue
		}
		edges = append(edges, edge{s.Start, s.Class, +1}, edge{s.End, s.Class, -1})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		return edges[i].delta < edges[j].delta // ends before starts at ties
	})
	var comp, comm int
	var last simclock.Time
	var total simclock.Time
	for _, e := range edges {
		if comp > 0 && comm > 0 {
			total += e.at - last
		}
		last = e.at
		if e.class == gpusim.Comm {
			comm += e.delta
		} else {
			comp += e.delta
		}
	}
	return total
}
