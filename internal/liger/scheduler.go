package liger

import (
	"time"

	"liger/internal/gpusim"
	"liger/internal/parallel"
	"liger/internal/simclock"
)

// Stats aggregates scheduler activity over a run.
type Stats struct {
	Rounds int
	// PrimaryKernels / SecondaryKernels count kernels launched in the
	// primary and overlapped subsets.
	PrimaryKernels   int
	SecondaryKernels int
	// Decompositions counts runtime kernel splits (§3.6).
	Decompositions int
	// EmptySecondary counts rounds where no matching subset was found
	// (low arrival rate: interleaved parallelism degenerating to
	// intra-op, §3.1).
	EmptySecondary int
	// BatchesDone counts completed batches.
	BatchesDone int
	// SecondaryOverruns counts rounds whose secondary subset outlasted
	// the primary on the device timeline.
	SecondaryOverruns int
	// AdaptedFactor is the final online contention factor (equals the
	// configured factor unless AdaptiveContention is on).
	AdaptedFactor float64
	// DegradedFallbacks counts rounds where the degradation-aware
	// scheduler saw worst-device health below the fallback threshold and
	// skipped the secondary subset (non-interleaved fallback).
	DegradedFallbacks int
	// DegradedRebalances counts rounds where health was degraded but
	// above the threshold, so the secondary budget was shrunk instead.
	DegradedRebalances int
}

// debugOverrunHook, when set by tests, observes (window, overrun) pairs
// for every round with a secondary subset.
var debugOverrunHook func(window, overrun time.Duration)

// Scheduler is the multi-GPU multi-stream scheduler (§3.3). It owns a
// compute stream and a communication stream on each device (each on its
// own host launch connection, mirroring CUDA_DEVICE_MAX_CONNECTIONS=2),
// a waiting queue, and a fixed-size processing list.
type Scheduler struct {
	node *gpusim.Node
	cfg  Config

	compute []*gpusim.Stream
	comm    []*gpusim.Stream

	// lastComputeEnd / lastCommEnd are the previous round's end events
	// per device; the next round's streams wait on the *other* stream's
	// event — the inter-stream half of hybrid synchronization.
	lastComputeEnd []*gpusim.Event
	lastCommEnd    []*gpusim.Event

	waiting      []*Batch
	processing   []*Batch
	roundPending bool

	// alive is the device set rounds launch onto; it shrinks when a
	// device permanently fails and the scheduler resumes on the
	// survivors (collectives are sized to it).
	alive []int
	// quiescing gates round launches during a failover: set by Quiesce,
	// cleared by Resume.
	quiescing bool
	// live tracks every submitted-but-incomplete batch so a quiesce can
	// fail the whole epoch; drainSet is the snapshot of in-flight
	// batches whose launched kernels must land before the quiesce is
	// complete.
	live      map[*Batch]struct{}
	drainSet  map[*Batch]struct{}
	onDrained func(now simclock.Time)

	onBatchDone func(b *Batch, now simclock.Time)
	stats       Stats

	// dynFactor is the live contention factor under AdaptiveContention.
	dynFactor float64

	journal    []RoundRecord
	journalCap int
}

// NewScheduler builds a scheduler over the simulated node.
func NewScheduler(node *gpusim.Node, cfg Config) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Scheduler{node: node, cfg: cfg, alive: node.AliveDevices(), live: make(map[*Batch]struct{})}
	for d := 0; d < node.NumDevices(); d++ {
		// Compute launches on connection 0, communication on connection 1:
		// a burst of compute launches can never delay the delivery of a
		// communication kernel (§2.3.1's lag, avoided by construction).
		s.compute = append(s.compute, node.NewStreamOnConnection(d, 0))
		conn := 1 % node.Spec().Host.MaxConnections
		s.comm = append(s.comm, node.NewStreamOnConnection(d, conn))
	}
	s.lastComputeEnd = make([]*gpusim.Event, node.NumDevices())
	s.lastCommEnd = make([]*gpusim.Event, node.NumDevices())
	s.dynFactor = cfg.ContentionFactor
	if cfg.AdaptiveContention {
		// Learn from scratch: start optimistic and let overruns teach.
		s.dynFactor = 1.0
	}
	return s, nil
}

// contentionFactor returns the factor currently applied to subsequent
// batches' durations during subset matching.
func (s *Scheduler) contentionFactor() float64 {
	if s.cfg.AdaptiveContention {
		return s.dynFactor
	}
	return s.cfg.ContentionFactor
}

// SetOnBatchDone installs the completion callback (used by the serving
// layer to record latency).
func (s *Scheduler) SetOnBatchDone(fn func(b *Batch, now simclock.Time)) { s.onBatchDone = fn }

// Stats returns a copy of the activity counters.
func (s *Scheduler) Stats() Stats {
	st := s.stats
	st.AdaptedFactor = s.contentionFactor()
	return st
}

// QueueLengths reports (waiting, processing) sizes.
func (s *Scheduler) QueueLengths() (int, int) { return len(s.waiting), len(s.processing) }

// Submit enqueues an assembled batch. Must be called from within the
// simulation (an engine callback); the batch's arrival time is the
// current virtual time.
func (s *Scheduler) Submit(b *Batch) {
	now := s.node.Engine().Now()
	b.SubmittedAt = now
	b.onDone = func(b *Batch, t simclock.Time) {
		s.stats.BatchesDone++
		delete(s.live, b)
		if b.workspaceHeld {
			b.workspaceHeld = false
			s.node.FreeAll(b.WorkspaceBytes)
			// Freed workspace may unblock memory-gated admissions even
			// when no round notification is due.
			s.maybeStartRound(t)
		}
		if s.drainSet != nil {
			delete(s.drainSet, b)
			if len(s.drainSet) == 0 && s.onDrained != nil {
				fn := s.onDrained
				s.onDrained = nil
				fn(t)
			}
		}
		if s.onBatchDone != nil {
			s.onBatchDone(b, t)
		}
	}
	s.live[b] = struct{}{}
	s.waiting = append(s.waiting, b)
	s.maybeStartRound(now)
}

// refill moves waiting batches into the processing list (arrival order,
// Principle 1), drops exhausted ones, and orders service classes:
// latency-critical batches precede best-effort ones, each class keeping
// arrival order (a stable partition, so FIFO semantics are unchanged
// when only one class is in use).
func (s *Scheduler) refill() {
	live := s.processing[:0]
	for _, b := range s.processing {
		if !b.Exhausted() {
			live = append(live, b)
		}
	}
	s.processing = live
	for len(s.processing) < s.cfg.MaxInflight && len(s.waiting) > 0 {
		// Pull the first latency-critical waiter if any, else FIFO.
		pick := 0
		if s.waiting[pick].Class == BestEffort {
			for i, b := range s.waiting {
				if b.Class != BestEffort {
					pick = i
					break
				}
			}
		}
		b := s.waiting[pick]
		// Reserve the batch's activation workspace on every device; when
		// memory is tight the processing list shrinks below MaxInflight
		// (real backpressure, not silent over-admission). Note that
		// exhausted batches leave the processing list while their last
		// kernels — and workspaces — are still in flight, so allocation
		// can fail even with an empty list; completions free memory and
		// re-kick the scheduler.
		if b.WorkspaceBytes > 0 {
			if err := s.node.AllocAll(b.WorkspaceBytes); err != nil {
				break
			}
			b.workspaceHeld = true
		}
		s.processing = append(s.processing, b)
		s.waiting = append(s.waiting[:pick], s.waiting[pick+1:]...)
	}
	// Stable partition by class.
	var critical, effort []*Batch
	for _, b := range s.processing {
		if b.Class == BestEffort {
			effort = append(effort, b)
		} else {
			critical = append(critical, b)
		}
	}
	if len(effort) > 0 && len(critical) > 0 {
		s.processing = append(critical, effort...)
	}
}

// maybeStartRound launches the next scheduling round unless one is
// already pending or there is nothing to do.
func (s *Scheduler) maybeStartRound(now simclock.Time) {
	if s.roundPending || s.quiescing {
		return
	}
	s.refill()
	if len(s.processing) == 0 {
		return
	}
	s.roundPending = true
	s.launchRound(now)
}

// collectPrimary implements the first half of Algorithm 1: pop kernels
// from the primary batch until the kernel type switches, accumulating
// the window duration.
func (s *Scheduler) collectPrimary(primary *Batch) (subset []Func, window time.Duration, typ gpusim.KernelClass) {
	typ = primary.head().Desc.Class
	for !primary.Exhausted() && primary.head().Desc.Class == typ {
		f := primary.pop()
		window += f.Desc.Duration
		subset = append(subset, f)
	}
	return subset, window, typ
}

// collectSecondary implements the second half of Algorithm 1 plus the
// §3.5/§3.6 refinements: walk subsequent batches in arrival order,
// taking opposite-type kernels whose contention-scaled durations fit in
// the primary window, decomposing lengthy kernels when only a fraction
// fits.
func (s *Scheduler) collectSecondary(typ gpusim.KernelClass, window time.Duration) []Func {
	if window < s.cfg.MinOverlapWindow {
		return nil
	}
	// Budget in un-scaled duration: scaled total = sum(dur)·cf ≤ window.
	budget := time.Duration(float64(window) / s.contentionFactor())
	var subset []Func
	for _, v := range s.processing[1:] {
		for !v.Exhausted() && budget > 0 {
			head := v.head()
			if head.Desc.Class == typ {
				// Same type as the primary subset: taking it would make
				// same-type kernels contend with the primary batch
				// (Principle 1); move to the next batch.
				break
			}
			if head.Desc.Duration <= budget {
				f := v.pop()
				budget -= f.Desc.Duration
				subset = append(subset, f)
				continue
			}
			// Lengthy kernel: runtime decomposition (§3.6). Find how many
			// 1/D pieces fit in the remaining budget.
			take := s.fittingPieces(head.Desc, budget)
			if take == 0 {
				break
			}
			headPieces, rest, ok := head.Desc.SplitPrefix(s.cfg.DivisionFactor, take)
			if !ok {
				break
			}
			s.stats.Decompositions++
			for _, p := range headPieces {
				budget -= p.Duration
				subset = append(subset, Func{Desc: p, batch: v})
			}
			v.replaceHead(rest)
			break // remainder is the new head; budget is largely spent
		}
		if budget <= 0 {
			break
		}
	}
	return subset
}

// planSecondary is collectSecondary behind the degradation-aware
// re-planning gate. When enabled, the scheduler reads the worst device
// health (the simulator's NVML/DCGM telemetry analogue: the minimum of
// per-device speed and link degradation) each round and reacts by
// fault class:
//
//   - Health below the fallback threshold (a dropped device, a hung
//     collective window, a severely degraded link): skip the secondary
//     subset — fall back to non-interleaved execution. Interleaving
//     more batches behind an unusable device only entangles them with
//     the fault (and its retries).
//   - A degraded link with a comm secondary subset: shrink the overlap
//     budget by the link factor. Comm kernels stretch relative to the
//     compute primary, so an unadjusted subset overruns the window
//     (the §3.5 failure mode, now induced by the environment).
//   - A uniform speed slowdown needs no adjustment: both subsets
//     stretch alike on the straggler, the matching invariant holds,
//     and interleaving into the induced idle time is exactly what
//     softens the hit — measured goodput is strictly worse if the
//     scheduler sheds interleaving here.
func (s *Scheduler) planSecondary(typ gpusim.KernelClass, window time.Duration) []Func {
	if s.cfg.DegradationAware {
		if health := s.node.MinHealth(); health < s.cfg.fallbackHealth() {
			s.stats.DegradedFallbacks++
			return nil
		}
		if otherClass(typ) == gpusim.Comm {
			if link := s.node.MinLinkHealth(); link < 1 {
				s.stats.DegradedRebalances++
				window = time.Duration(float64(window) * link)
			}
		}
	}
	return s.collectSecondary(typ, window)
}

// fittingPieces returns how many pieces of a DivisionFactor-way split
// of desc fit within budget (0 if the kernel is indivisible or nothing
// fits).
func (s *Scheduler) fittingPieces(desc parallel.KernelDesc, budget time.Duration) int {
	d := s.cfg.DivisionFactor
	if d < 2 || !desc.CanSplit() {
		return 0
	}
	pieces, ok := desc.Split(d)
	if !ok {
		return 0
	}
	var acc time.Duration
	take := 0
	for _, p := range pieces {
		if acc+p.Duration > budget {
			break
		}
		acc += p.Duration
		take++
	}
	if take >= d {
		take = d - 1 // whole kernel fitting is handled by the fast path
	}
	return take
}

// launchRound collects the two subsets and launches them onto the
// per-device streams with the configured synchronization approach.
func (s *Scheduler) launchRound(now simclock.Time) {
	primary := s.processing[0]
	decomposedBefore := s.stats.Decompositions
	sub0, window, typ := s.collectPrimary(primary)
	sub1 := s.planSecondary(typ, window)

	s.stats.Rounds++
	s.stats.PrimaryKernels += len(sub0)
	s.stats.SecondaryKernels += len(sub1)
	if len(sub1) == 0 {
		s.stats.EmptySecondary++
	}
	if s.journalCap > 0 {
		rec := RoundRecord{
			Round:            s.stats.Rounds,
			At:               now,
			Primary:          primary.ID,
			Class:            typ,
			Window:           window,
			PrimaryKernels:   len(sub0),
			SecondaryKernels: len(sub1),
			Decomposed:       decomposedBefore != s.stats.Decompositions,
		}
		seen := map[int]bool{}
		for _, f := range sub1 {
			if !seen[f.batch.ID] {
				seen[f.batch.ID] = true
				rec.Donors = append(rec.Donors, f.batch.ID)
			}
		}
		s.record(rec)
	}

	// Rounds launch onto the surviving devices only; after a failover
	// the SPMD group (and every collective) is sized to the survivors.
	ndev := s.node.NumDevices()
	primStreams, primLast := s.streamsFor(typ)
	secStreams, secLast := s.streamsFor(otherClass(typ))

	// Collectives rendezvous across the SPMD group: one per comm func.
	colls0 := s.collectives(sub0)
	colls1 := s.collectives(sub1)

	var notify *gpusim.Event
	lead := s.alive[0]
	endPrim := make([]*gpusim.Event, ndev)
	endSec := make([]*gpusim.Event, ndev)
	for _, d := range s.alive {
		ps := primStreams[d]
		// Inter-stream half of the synchronization: this round must not
		// start before the previous round's kernels on the other stream
		// finished.
		if ev := secLast[d]; ev != nil {
			ps.Wait(ev)
		}
		for i, f := range sub0 {
			if s.cfg.Sync == Hybrid && d == lead && i == len(sub0)-1 {
				// The pre-launch trigger: recorded before the subset's last
				// kernel so the CPU schedules the next round while it runs,
				// hiding the launch overhead (Fig. 8, bottom).
				notify = ps.Record()
			}
			s.launchFunc(ps, f, colls0[i])
		}
		endPrim[d] = ps.Record()

		ss := secStreams[d]
		if ev := primLast[d]; ev != nil {
			ss.Wait(ev)
		}
		for i, f := range sub1 {
			s.launchFunc(ss, f, colls1[i])
		}
		endSec[d] = ss.Record()
	}
	// Remember this round's end events for the next round's waits.
	for _, d := range s.alive {
		if typ == gpusim.Compute {
			s.lastComputeEnd[d] = endPrim[d]
			s.lastCommEnd[d] = endSec[d]
		} else {
			s.lastCommEnd[d] = endPrim[d]
			s.lastComputeEnd[d] = endSec[d]
		}
	}

	// Observe whether the secondary subset outlasted the primary — the
	// §3.5 scheduling-failure signal — and adapt the online contention
	// factor when enabled.
	if len(sub1) > 0 {
		ep, es := endPrim[lead], endSec[lead]
		threshold := window / 50 // ignore sub-2% overruns: noise, not failures
		es.Observe(func(now simclock.Time) {
			if debugOverrunHook != nil {
				if ep.Fired() {
					debugOverrunHook(window, time.Duration(now-ep.FiredAt()))
				} else {
					debugOverrunHook(window, -1)
				}
			}
			// If the primary's end event has not fired yet, the secondary
			// finished first — the desired outcome. Overrun means the
			// secondary ended meaningfully after the primary.
			overran := ep.Fired() && es.FiredAt() > ep.FiredAt()+threshold
			if overran {
				s.stats.SecondaryOverruns++
			}
			if s.cfg.AdaptiveContention {
				if overran {
					s.dynFactor *= 1.01
					if s.dynFactor > 1.5 {
						s.dynFactor = 1.5
					}
				} else if s.dynFactor > 1.0 {
					s.dynFactor *= 0.998
					if s.dynFactor < 1.0 {
						s.dynFactor = 1.0
					}
				}
			}
		})
	}

	next := func(t simclock.Time) {
		s.roundPending = false
		s.maybeStartRound(t)
	}
	switch s.cfg.Sync {
	case Hybrid:
		if notify == nil {
			// Empty primary subset cannot happen (primary always has a
			// head), but guard against a zero-length round.
			s.node.Engine().After(0, next)
			return
		}
		notify.OnHost(next)
	case CPUGPU:
		evs := make([]*gpusim.Event, 0, 2*len(s.alive))
		for _, d := range s.alive {
			evs = append(evs, endPrim[d], endSec[d])
		}
		s.node.HostBarrier(evs, next)
	case InterStreamOnly:
		// No CPU trigger at all: the next schedulable round launches
		// immediately, everything gated by inter-stream events. The
		// launch connections flood and late arrivals miss the windows.
		s.node.Engine().After(0, next)
	}
}

// streamsFor maps a kernel class to its stream set and the previous
// round's end events on that set.
func (s *Scheduler) streamsFor(typ gpusim.KernelClass) ([]*gpusim.Stream, []*gpusim.Event) {
	if typ == gpusim.Comm {
		return s.comm, s.lastCommEnd
	}
	return s.compute, s.lastComputeEnd
}

func otherClass(typ gpusim.KernelClass) gpusim.KernelClass {
	if typ == gpusim.Comm {
		return gpusim.Compute
	}
	return gpusim.Comm
}

// collectives allocates one rendezvous group per communication func in
// a subset (index-aligned; nil for compute funcs). An abort — the
// watchdog tearing down a hung group under fault injection — marks the
// owning batch failed so the serving layer can retry it.
func (s *Scheduler) collectives(subset []Func) []*gpusim.Collective {
	out := make([]*gpusim.Collective, len(subset))
	for i, f := range subset {
		if f.Desc.Collective {
			c := s.node.NewCollective(len(s.alive))
			b := f.batch
			c.OnAbort(func(simclock.Time) { b.Failed = true })
			out[i] = c
		}
	}
	return out
}

// Quiesce begins a failover drain: round launches stop, every admitted
// batch fast-fails (the epoch under the failure is discarded — queued
// batches complete immediately, in-flight ones as their launched
// kernels cancel or land), and drained fires once no launched kernel
// of the old epoch remains. Batches submitted while quiescing queue up
// untouched and launch after Resume. drained may fire synchronously
// when nothing is in flight.
func (s *Scheduler) Quiesce(now simclock.Time, drained func(now simclock.Time)) {
	s.quiescing = true
	s.onDrained = drained
	s.drainSet = make(map[*Batch]struct{}, len(s.live))
	for b := range s.live {
		s.drainSet[b] = struct{}{}
	}
	waiting := s.waiting
	s.waiting = nil
	processing := s.processing
	s.processing = nil
	for _, b := range processing {
		b.failRemaining(now)
	}
	for _, b := range waiting {
		b.failRemaining(now)
	}
	// Exhausted-but-in-flight batches sit in neither list; sweep the
	// registry. Completion ordering stays event-driven (map order only
	// sets flags; completions of in-flight batches fire from kernel
	// events).
	for b := range s.live {
		b.failRemaining(now)
	}
	if len(s.drainSet) == 0 && s.onDrained != nil {
		fn := s.onDrained
		s.onDrained = nil
		fn(now)
	}
}

// FailAll fast-fails every batch the scheduler still holds — the
// failover-impossible path, when the surviving devices cannot host the
// model and nothing queued can ever run.
func (s *Scheduler) FailAll(now simclock.Time) {
	waiting := s.waiting
	s.waiting = nil
	processing := s.processing
	s.processing = nil
	for _, b := range processing {
		b.failRemaining(now)
	}
	for _, b := range waiting {
		b.failRemaining(now)
	}
}

// Resume ends a quiesce: the scheduler re-reads the surviving device
// set, re-enables round launches, and starts scheduling whatever
// arrived during the drain — now compiled for (and launched onto) the
// reduced world.
func (s *Scheduler) Resume(now simclock.Time) {
	s.alive = s.node.AliveDevices()
	s.quiescing = false
	s.drainSet = nil
	s.onDrained = nil
	s.maybeStartRound(now)
}

// launchFunc launches one func on one device's stream, wiring batch
// completion accounting.
func (s *Scheduler) launchFunc(st *gpusim.Stream, f Func, coll *gpusim.Collective) {
	b := f.batch
	if b.FirstLaunchAt == 0 {
		b.FirstLaunchAt = s.node.Engine().Now()
	}
	b.kernelLaunched()
	if b.kernelDoneFn == nil {
		b.kernelDoneFn = func(now simclock.Time) { b.kernelDone(now) }
	}
	st.Launch(gpusim.KernelSpec{
		Name:          f.Desc.Name,
		Class:         f.Desc.Class,
		Duration:      f.Desc.Duration,
		ComputeDemand: f.Desc.ComputeDemand,
		MemBWDemand:   f.Desc.MemBWDemand,
		Coll:          coll,
		Batch:         b.ID,
		Req:           b.Req,
		OnDone:        b.kernelDoneFn,
	})
}
