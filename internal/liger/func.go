// Package liger implements the paper's primary contribution: the
// interleaved-parallelism runtime (§3). It assembles each arriving
// batch into a list of kernel launch functions (§3.2), schedules
// matched-duration subsets of computation and communication kernels
// from different batches onto per-device compute and communication
// streams (Algorithm 1, §3.4), controls execution order with hybrid
// CPU-GPU / inter-stream synchronization (§3.4), anticipates resource
// contention with contention factors (§3.5), and decomposes lengthy
// kernels at runtime to tighten the overlap (§3.6).
package liger

import (
	"fmt"
	"time"

	"liger/internal/gpusim"
	"liger/internal/model"
	"liger/internal/parallel"
	"liger/internal/simclock"
)

// Func is one kernel launch function wrapper (§3.2): the kernel
// descriptor plus the batch bookkeeping the scheduler needs.
type Func struct {
	Desc  parallel.KernelDesc
	batch *Batch
}

// BatchClass distinguishes service classes, an extension beyond the
// paper's FIFO ordering: latency-critical batches always outrank
// best-effort ones for the primary slot, so best-effort work fills
// overlap windows without ever delaying critical batches.
type BatchClass int

const (
	// LatencyCritical is the default class (the paper's Principle 1
	// treats every batch this way, FIFO).
	LatencyCritical BatchClass = iota
	// BestEffort batches yield the primary slot to critical batches.
	BestEffort
)

func (c BatchClass) String() string {
	if c == BestEffort {
		return "best-effort"
	}
	return "latency-critical"
}

// Batch is an assembled inference: the FuncVec of one batched request
// plus execution status. It is created by the Assembler and consumed by
// the Scheduler.
type Batch struct {
	ID int
	// Workload records the input shape (batch size, sequence length).
	Workload model.Workload
	// Class selects the service class; zero value is LatencyCritical.
	Class BatchClass
	// WorkspaceBytes is the per-device activation footprint reserved
	// while the batch is in the processing list (set by the Assembler;
	// zero disables memory accounting for hand-built batches).
	WorkspaceBytes int64
	// Failed marks a batch whose collective aborted under fault
	// injection: its kernels drained but the result is unusable. The
	// serving layer reads it off the completion to drive retries.
	Failed bool
	// Req is the serving-layer request id threaded onto the batch's
	// kernel launches; -1 when the batch was not submitted on behalf of
	// a tracked request.
	Req int

	funcs []Func
	pos   int

	// SubmittedAt / DoneAt bound the batch's latency (pending + CUDA
	// execution time, the paper's latency metric); FirstLaunchAt splits
	// the two components.
	SubmittedAt   simclock.Time
	FirstLaunchAt simclock.Time
	DoneAt        simclock.Time

	// pendingKernels counts launched-but-unfinished kernel instances
	// across devices and rounds.
	pendingKernels int
	completed      bool

	// workspaceHeld records that the scheduler reserved the batch's
	// workspace when admitting it to the processing list, so completion
	// frees exactly what was allocated (a batch fast-failed out of the
	// waiting queue during a failover quiesce never allocated).
	workspaceHeld bool

	onDone func(b *Batch, now simclock.Time)
	// kernelDoneFn is the reusable per-batch completion callback wired
	// into every launched kernel's OnDone (one closure per batch instead
	// of one per launch).
	kernelDoneFn func(now simclock.Time)
}

// NewBatch wraps a compiled kernel sequence as a schedulable batch.
func NewBatch(id int, w model.Workload, kernels []parallel.KernelDesc) *Batch {
	b := &Batch{ID: id, Workload: w, Req: -1}
	b.funcs = make([]Func, len(kernels))
	for i, k := range kernels {
		b.funcs[i] = Func{Desc: k, batch: b}
	}
	return b
}

// Remaining reports how many funcs are not yet scheduled.
func (b *Batch) Remaining() int { return len(b.funcs) - b.pos }

// Exhausted reports whether every func has been scheduled.
func (b *Batch) Exhausted() bool { return b.pos >= len(b.funcs) }

// Completed reports whether every launched kernel has finished.
func (b *Batch) Completed() bool { return b.completed }

// Latency returns the batch's end-to-end latency (pending + execution).
func (b *Batch) Latency() time.Duration {
	if !b.completed {
		return 0
	}
	return b.DoneAt - b.SubmittedAt
}

// PendingTime returns how long the batch waited before its first kernel
// was launched.
func (b *Batch) PendingTime() time.Duration {
	if b.FirstLaunchAt == 0 {
		return 0
	}
	return b.FirstLaunchAt - b.SubmittedAt
}

// ExecutionTime returns the span from first launch to completion.
func (b *Batch) ExecutionTime() time.Duration {
	if !b.completed || b.FirstLaunchAt == 0 {
		return 0
	}
	return b.DoneAt - b.FirstLaunchAt
}

// head returns the next unscheduled func; callers must check
// Exhausted first.
func (b *Batch) head() Func { return b.funcs[b.pos] }

// pop consumes and returns the head func.
func (b *Batch) pop() Func {
	f := b.funcs[b.pos]
	b.pos++
	return f
}

// replaceHead swaps the head's kernel descriptor — used when runtime
// decomposition peels a prefix off a lengthy kernel and leaves the
// remainder in place (§3.6).
func (b *Batch) replaceHead(desc parallel.KernelDesc) {
	b.funcs[b.pos].Desc = desc
}

// nextSwitch reports whether the head kernel's type differs from typ —
// the switch-point test of Algorithm 1.
func (b *Batch) nextSwitch(typ gpusim.KernelClass) bool {
	return b.Exhausted() || b.head().Desc.Class != typ
}

// kernelLaunched records one launched kernel instance.
func (b *Batch) kernelLaunched() { b.pendingKernels++ }

// kernelDone records a completion and fires the batch callback when the
// last in-flight kernel of an exhausted batch lands.
func (b *Batch) kernelDone(now simclock.Time) {
	b.pendingKernels--
	if b.pendingKernels < 0 {
		panic(fmt.Sprintf("liger: batch %d kernel completion underflow", b.ID))
	}
	if b.pendingKernels == 0 && b.Exhausted() && !b.completed {
		b.completed = true
		b.DoneAt = now
		if b.onDone != nil {
			b.onDone(b, now)
		}
	}
}

// failRemaining marks the batch failed and abandons its unscheduled
// funcs — the failover quiesce path: the epoch under a permanent
// device failure is discarded, and the serving layer retries against
// the re-planned world. A batch with no kernels in flight completes
// immediately; one with launched kernels completes when they drain
// (cancellations on the dead device, normal completions elsewhere).
func (b *Batch) failRemaining(now simclock.Time) {
	if b.completed {
		return
	}
	b.Failed = true
	b.pos = len(b.funcs)
	if b.pendingKernels == 0 {
		b.completed = true
		b.DoneAt = now
		if b.onDone != nil {
			b.onDone(b, now)
		}
	}
}

// Assembler builds FuncVecs for arriving batches (§3.2). It holds the
// compiler for the target node and the model being served, and assigns
// arrival-ordered batch IDs.
type Assembler struct {
	compiler *parallel.Compiler
	spec     model.Spec
	tp       int
	nextID   int
}

// NewAssembler returns an assembler serving spec with tensor-parallel
// degree tp (the intra-operator partitioning Liger reuses, §3.1).
func NewAssembler(c *parallel.Compiler, spec model.Spec, tp int) (*Assembler, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if tp < 1 {
		return nil, fmt.Errorf("liger: tensor-parallel degree %d", tp)
	}
	return &Assembler{compiler: c, spec: spec, tp: tp}, nil
}

// Assemble compiles one batch's inference into a schedulable Batch.
func (a *Assembler) Assemble(w model.Workload) (*Batch, error) {
	kernels, err := a.compiler.IntraOp(a.spec, a.tp, w)
	if err != nil {
		return nil, err
	}
	b := NewBatch(a.nextID, w, kernels)
	// Live activations at the widest point (FFN expansion), double
	// buffered — consistent with parallel.PlanPlacement.
	b.WorkspaceBytes = 3 * int64(w.Tokens()) * int64(a.spec.FFNHidden()) * 2
	a.nextID++
	return b, nil
}

// Retarget repoints the assembler at a new compiler and tensor-parallel
// degree — the reduced world after a permanent device failure. The
// batch ID sequence is preserved so completion IDs stay in submission
// order across the reconfiguration.
func (a *Assembler) Retarget(c *parallel.Compiler, tp int) error {
	if tp < 1 {
		return fmt.Errorf("liger: tensor-parallel degree %d", tp)
	}
	a.compiler = c
	a.tp = tp
	return nil
}

// Spec returns the served model.
func (a *Assembler) Spec() model.Spec { return a.spec }

// TP returns the tensor-parallel degree.
func (a *Assembler) TP() int { return a.tp }
