package liger

import (
	"fmt"
	"time"
)

// SyncMode selects how the scheduler coordinates kernel execution order
// across streams (§3.4, Fig. 8).
type SyncMode int

const (
	// Hybrid pre-launches the next round while a kernel is still
	// running (CPU notified by a CUDA event recorded before the last
	// kernel of the primary subset) and gates execution order with
	// inter-stream events — precise control with the launch overhead
	// hidden.
	Hybrid SyncMode = iota
	// CPUGPU waits for every stream on every device to drain before the
	// CPU launches the next round, exposing the multi-GPU
	// synchronization and relaunch overhead (§4.5 measures it at well
	// over 20 µs per switch).
	CPUGPU
	// InterStreamOnly launches every schedulable round immediately,
	// relying purely on inter-stream events for ordering (the approach
	// §3.4 describes and rejects). Two failure modes emerge: flooding
	// the launch connections delays kernel delivery (the §2.3.1
	// execution lag), and batches that arrive after the pre-launch
	// cannot be interleaved into already-committed windows.
	InterStreamOnly
)

func (m SyncMode) String() string {
	switch m {
	case Hybrid:
		return "hybrid"
	case CPUGPU:
		return "cpu-gpu"
	case InterStreamOnly:
		return "inter-stream-only"
	default:
		return fmt.Sprintf("SyncMode(%d)", int(m))
	}
}

// Config tunes the scheduler.
type Config struct {
	// Sync selects the synchronization approach (§3.4).
	Sync SyncMode
	// ContentionFactor scales the durations of subsequent-batch kernels
	// during subset matching so the secondary subset never outlasts the
	// primary even under contention slowdown (§3.5). The paper uses 1.1
	// on the V100 node and 1.15 on the A100 node.
	ContentionFactor float64
	// DivisionFactor is the runtime kernel decomposition granularity
	// (§3.6, Fig. 14); the evaluation uses 8.
	DivisionFactor int
	// MaxInflight is the processing-list size: the primary batch plus
	// how many subsequent batches the scheduler interleaves.
	MaxInflight int
	// MinOverlapWindow skips secondary-subset collection when the
	// primary window is too small to be worth the launch traffic.
	MinOverlapWindow time.Duration
	// AdaptiveContention makes the scheduler learn the contention
	// factor online instead of using the profiled constant: whenever the
	// secondary subset outlasts the primary subset, the factor grows;
	// otherwise it decays toward 1. An extension beyond the paper's
	// offline profiling.
	AdaptiveContention bool
	// DegradationAware makes the scheduler poll modeled device-health
	// telemetry (the NVML/DCGM analogue exposed by the simulator) each
	// round and re-plan: with a degraded device the secondary budget
	// shrinks proportionally to the worst device health, and below
	// FallbackHealth the scheduler skips the secondary subset entirely —
	// falling back to non-interleaved execution so a crippled device is
	// not handed overlap work it cannot retire in the window.
	DegradationAware bool
	// FallbackHealth is the worst-device health factor below which the
	// degradation-aware scheduler abandons interleaving for the round.
	// Zero selects the default (0.5). Only meaningful with
	// DegradationAware set.
	FallbackHealth float64
}

// DefaultConfig returns the paper's evaluation settings for a node type
// ("v100" uses contention factor 1.1, anything else 1.15, per §4.2).
func DefaultConfig(nodeName string) Config {
	cf := 1.15
	if nodeName == "v100" || nodeName == "v100x4-nvlink" {
		cf = 1.1
	}
	return Config{
		Sync:             Hybrid,
		ContentionFactor: cf,
		DivisionFactor:   8,
		MaxInflight:      4,
		MinOverlapWindow: 10 * time.Microsecond,
	}
}

// Validate reports nonsensical settings.
func (c Config) Validate() error {
	switch {
	case c.ContentionFactor < 1:
		return fmt.Errorf("liger: contention factor %v < 1 would let the secondary subset overrun the primary", c.ContentionFactor)
	case c.DivisionFactor < 1:
		return fmt.Errorf("liger: division factor %d", c.DivisionFactor)
	case c.MaxInflight < 1:
		return fmt.Errorf("liger: processing list size %d", c.MaxInflight)
	case c.MinOverlapWindow < 0:
		return fmt.Errorf("liger: negative overlap window")
	case c.FallbackHealth < 0 || c.FallbackHealth > 1:
		return fmt.Errorf("liger: fallback health %v outside [0, 1]", c.FallbackHealth)
	}
	return nil
}

// fallbackHealth returns the effective fallback threshold.
func (c Config) fallbackHealth() float64 {
	if c.FallbackHealth > 0 {
		return c.FallbackHealth
	}
	return 0.5
}
