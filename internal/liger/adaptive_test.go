package liger

import (
	"testing"
	"time"

	"liger/internal/gpusim"
	"liger/internal/model"
	"liger/internal/parallel"
	"liger/internal/simclock"
)

// contentiousBatch builds batches whose kernels oversubscribe memory
// bandwidth heavily when overlapped, so a naive factor of 1.0
// underestimates the slowdown.
func contentiousBatch(id, layers int) *Batch {
	var ks []parallel.KernelDesc
	for l := 0; l < layers; l++ {
		for c := 0; c < 3; c++ {
			ks = append(ks, parallel.SyntheticKernel("comp", gpusim.Compute, 60*time.Microsecond, 0.8, 0.9, false).WithEqualSplit())
		}
		ks = append(ks, parallel.SyntheticKernel("ar", gpusim.Comm, 60*time.Microsecond, 0.08, 0.9, true).WithEqualSplit())
	}
	return NewBatch(id, model.Workload{Batch: 2, SeqLen: 16, Phase: model.Context}, ks)
}

// commFirstBatch starts with an all-reduce, so a donor can fill a
// primary compute window on the very first round — before the
// cross-stream pipelining has built up slack.
func commFirstBatch(id, layers int) *Batch {
	var ks []parallel.KernelDesc
	for l := 0; l < layers; l++ {
		ks = append(ks, parallel.SyntheticKernel("ar", gpusim.Comm, 150*time.Microsecond, 0.08, 0.9, true).WithEqualSplit())
		for c := 0; c < 3; c++ {
			ks = append(ks, parallel.SyntheticKernel("comp", gpusim.Compute, 60*time.Microsecond, 0.8, 0.9, false).WithEqualSplit())
		}
	}
	return NewBatch(id, model.Workload{Batch: 2, SeqLen: 16, Phase: model.Context}, ks)
}

func TestSecondaryOverrunsDetectedOnZeroSlackRound(t *testing.T) {
	// On round 1 the secondary starts with no pipelining slack; with
	// heavy bandwidth oversubscription and no anticipation it must
	// outlast the primary window and be counted.
	cfg := testCfg()
	cfg.ContentionFactor = 1.0
	eng, _, s := testRig(t, cfg)
	eng.After(0, func(simclock.Time) {
		s.Submit(contentiousBatch(0, 4))
		for i := 1; i < 4; i++ {
			s.Submit(commFirstBatch(i, 4))
		}
	})
	eng.Run()
	st := s.Stats()
	if st.SecondaryKernels == 0 {
		t.Fatal("no interleaving")
	}
	if st.SecondaryOverruns == 0 {
		t.Fatal("zero-slack round with 1.8x oversubscription produced no overrun")
	}
}

func TestSteadyStateHasNoOverruns(t *testing.T) {
	// The cross-stream wait structure lets each secondary subset start
	// one primary window early, so in steady state the secondary never
	// outlasts the primary — Principle 1 holds structurally (a finding
	// of this reproduction; see EXPERIMENTS.md).
	eng, _, s := testRig(t, testCfg())
	eng.After(0, func(simclock.Time) {
		for i := 0; i < 10; i++ {
			s.Submit(contentiousBatch(i, 10))
		}
	})
	eng.Run()
	st := s.Stats()
	if st.SecondaryKernels == 0 {
		t.Fatal("no interleaving")
	}
	if st.SecondaryOverruns > st.Rounds/20 {
		t.Fatalf("steady state overruns: %d of %d rounds", st.SecondaryOverruns, st.Rounds)
	}
}

func TestAdaptiveContentionLearnsFromOverruns(t *testing.T) {
	cfg := testCfg()
	cfg.AdaptiveContention = true
	eng, _, s := testRig(t, cfg)
	// A stream of comm-first batches keeps producing zero-slack-like
	// fills right after idle gaps, generating overruns to learn from.
	for i := 0; i < 30; i++ {
		at := simclock.Time(i) * simclock.Time(2*time.Millisecond) // gaps force idle restarts
		eng.At(at, func(simclock.Time) {
			s.Submit(contentiousBatch(2*i, 2))
			s.Submit(commFirstBatch(2*i+1, 2))
		})
	}
	eng.Run()
	st := s.Stats()
	if st.SecondaryOverruns == 0 {
		t.Skip("no overruns generated; nothing to learn (scheduling too safe)")
	}
	if st.AdaptedFactor <= 1.0 {
		t.Fatalf("adaptive factor did not grow despite %d overruns", st.SecondaryOverruns)
	}
	if st.AdaptedFactor > 1.5 {
		t.Fatalf("adaptive factor exceeded cap: %v", st.AdaptedFactor)
	}
}

func TestAdaptiveContentionDecaysWhenCalm(t *testing.T) {
	// With kernels that do not contend at all, the adaptive factor must
	// stay at (or return to) 1.0.
	cfg := testCfg()
	cfg.AdaptiveContention = true
	eng, _, s := testRig(t, cfg)
	calm := func(id int) *Batch {
		var ks []parallel.KernelDesc
		for l := 0; l < 10; l++ {
			ks = append(ks, parallel.SyntheticKernel("comp", gpusim.Compute, 60*time.Microsecond, 0.8, 0.0, false))
			ks = append(ks, parallel.SyntheticKernel("ar", gpusim.Comm, 60*time.Microsecond, 0.08, 0.0, true))
		}
		return NewBatch(id, model.Workload{Batch: 2, SeqLen: 16, Phase: model.Context}, ks)
	}
	eng.After(0, func(simclock.Time) {
		for i := 0; i < 10; i++ {
			s.Submit(calm(i))
		}
	})
	eng.Run()
	if f := s.Stats().AdaptedFactor; f > 1.06 {
		t.Fatalf("factor grew without contention: %v", f)
	}
}

func TestStaticFactorReportedUnchanged(t *testing.T) {
	cfg := testCfg() // static 1.1
	eng, _, s := testRig(t, cfg)
	eng.After(0, func(simclock.Time) { s.Submit(contentiousBatch(0, 4)) })
	eng.Run()
	if f := s.Stats().AdaptedFactor; f != cfg.ContentionFactor {
		t.Fatalf("static factor reported as %v", f)
	}
}

func TestInterStreamOnlyCompletesEverything(t *testing.T) {
	cfg := testCfg()
	cfg.Sync = InterStreamOnly
	eng, _, s := testRig(t, cfg)
	done := 0
	s.SetOnBatchDone(func(*Batch, simclock.Time) { done++ })
	for i := 0; i < 8; i++ {
		at := simclock.Time(i) * simclock.Time(200*time.Microsecond)
		eng.At(at, func(simclock.Time) { s.Submit(contentiousBatch(i, 6)) })
	}
	eng.Run()
	if done != 8 {
		t.Fatalf("%d of 8 completed", done)
	}
}

func TestInterStreamOnlyWorseThanHybrid(t *testing.T) {
	// The §3.4 rejection: pre-launching everything misses late-arriving
	// interleaving opportunities and floods the launch queues.
	run := func(mode SyncMode) simclock.Time {
		cfg := testCfg()
		cfg.Sync = mode
		eng, _, s := testRig(t, cfg)
		var last simclock.Time
		s.SetOnBatchDone(func(b *Batch, now simclock.Time) { last = now })
		// Contention-free kernels: interleaving is strictly beneficial,
		// so missing it (pre-launched rounds cannot adopt late arrivals)
		// must cost wall-clock time.
		for i := 0; i < 10; i++ {
			at := simclock.Time(i) * simclock.Time(150*time.Microsecond)
			eng.At(at, func(simclock.Time) { s.Submit(syntheticBatch(i, 8, 3, 60*time.Microsecond, 60*time.Microsecond)) })
		}
		eng.Run()
		return last
	}
	hybrid := run(Hybrid)
	iso := run(InterStreamOnly)
	if iso < hybrid {
		t.Fatalf("inter-stream-only (%v) beat hybrid (%v)", iso, hybrid)
	}
}
