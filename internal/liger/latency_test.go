package liger

import (
	"testing"
	"time"

	"liger/internal/simclock"
)

func TestPendingAndExecutionSplit(t *testing.T) {
	eng, _, s := testRig(t, testCfg())
	// Batch 1 arrives while batch 0 monopolizes the node: its pending
	// time must be visible, and pending + execution must equal latency.
	b0 := syntheticBatch(0, 12, 3, 60*time.Microsecond, 60*time.Microsecond)
	b1 := syntheticBatch(1, 12, 3, 60*time.Microsecond, 60*time.Microsecond)
	eng.After(0, func(simclock.Time) { s.Submit(b0) })
	eng.At(simclock.Time(100*time.Microsecond), func(simclock.Time) { s.Submit(b1) })
	eng.Run()
	for _, b := range []*Batch{b0, b1} {
		if !b.Completed() {
			t.Fatalf("batch %d incomplete", b.ID)
		}
		if b.PendingTime()+b.ExecutionTime() != b.Latency() {
			t.Fatalf("batch %d: pending %v + exec %v != latency %v",
				b.ID, b.PendingTime(), b.ExecutionTime(), b.Latency())
		}
		if b.ExecutionTime() <= 0 {
			t.Fatalf("batch %d has no execution time", b.ID)
		}
	}
	// The second batch's first kernels are donated into b0's windows, so
	// its pending time is bounded by a round or two, not by b0's whole
	// duration.
	if b1.PendingTime() >= b0.Latency() {
		t.Fatalf("batch 1 pended %v, as long as batch 0's full run %v", b1.PendingTime(), b0.Latency())
	}
}

func TestIncompleteBatchTimesAreZero(t *testing.T) {
	b := syntheticBatch(0, 2, 2, time.Microsecond, time.Microsecond)
	if b.PendingTime() != 0 || b.ExecutionTime() != 0 || b.Latency() != 0 {
		t.Fatal("unstarted batch reports nonzero times")
	}
}
