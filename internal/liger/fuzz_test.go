package liger

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"liger/internal/gpusim"
	"liger/internal/model"
	"liger/internal/parallel"
	"liger/internal/simclock"
)

// randomBatch builds a batch with a random but well-formed kernel
// sequence: alternating compute runs and single comm kernels, with
// random durations and demands.
func randomBatch(rng *rand.Rand, id int) *Batch {
	layers := 1 + rng.Intn(6)
	var ks []parallel.KernelDesc
	for l := 0; l < layers; l++ {
		ncomp := 1 + rng.Intn(4)
		for c := 0; c < ncomp; c++ {
			dur := time.Duration(1+rng.Intn(200)) * time.Microsecond
			ks = append(ks, parallel.SyntheticKernel("c", gpusim.Compute, dur,
				0.1+0.8*rng.Float64(), rng.Float64(), false).WithEqualSplit())
		}
		dur := time.Duration(1+rng.Intn(200)) * time.Microsecond
		ks = append(ks, parallel.SyntheticKernel("m", gpusim.Comm, dur,
			0.05, rng.Float64(), true).WithEqualSplit())
	}
	return NewBatch(id, model.Workload{Batch: 1 + rng.Intn(8), SeqLen: 16, Phase: model.Context}, ks)
}

// TestFuzzSchedulerCompletesArbitraryWorkloads drives the scheduler
// with randomized batches, arrival patterns and configurations. Every
// batch must complete, with a sane latency, regardless.
func TestFuzzSchedulerCompletesArbitraryWorkloads(t *testing.T) {
	f := func(seed int64, syncSel, division, inflight uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := testCfg()
		cfg.Sync = SyncMode(int(syncSel) % 3)
		cfg.DivisionFactor = 1 + int(division)%16
		cfg.MaxInflight = 1 + int(inflight)%8
		eng, _, s := testRig(t, cfg)
		n := 3 + rng.Intn(10)
		completed := 0
		s.SetOnBatchDone(func(*Batch, simclock.Time) { completed++ })
		for i := 0; i < n; i++ {
			b := randomBatch(rng, i)
			at := simclock.Time(rng.Intn(3000)) * simclock.Time(time.Microsecond)
			eng.At(at, func(simclock.Time) { s.Submit(b) })
		}
		eng.Run()
		return completed == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestFuzzDeterminism: the same seed must give byte-identical
// completion sequences.
func TestFuzzDeterminism(t *testing.T) {
	run := func(seed int64) []simclock.Time {
		rng := rand.New(rand.NewSource(seed))
		eng, _, s := testRig(t, testCfg())
		var times []simclock.Time
		s.SetOnBatchDone(func(b *Batch, now simclock.Time) { times = append(times, now) })
		for i := 0; i < 8; i++ {
			b := randomBatch(rng, i)
			at := simclock.Time(rng.Intn(2000)) * simclock.Time(time.Microsecond)
			eng.At(at, func(simclock.Time) { s.Submit(b) })
		}
		eng.Run()
		return times
	}
	for seed := int64(1); seed <= 5; seed++ {
		a, b := run(seed), run(seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: %d vs %d completions", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d diverged at completion %d: %v vs %v", seed, i, a[i], b[i])
			}
		}
	}
}

// TestFuzzNoSameClassConcurrency: by construction, two kernels of the
// same class never run concurrently on one device (compute and comm
// each own one in-order stream). Verify through a tracer.
func TestFuzzNoSameClassConcurrency(t *testing.T) {
	type open struct{ comp, comm int }
	var counts [4]open
	bad := false
	tr := classTracer{
		start: func(dev int, class gpusim.KernelClass) {
			if class == gpusim.Comm {
				counts[dev].comm++
				if counts[dev].comm > 1 {
					bad = true
				}
			} else {
				counts[dev].comp++
				if counts[dev].comp > 1 {
					bad = true
				}
			}
		},
		end: func(dev int, class gpusim.KernelClass) {
			if class == gpusim.Comm {
				counts[dev].comm--
			} else {
				counts[dev].comp--
			}
		},
	}
	rng := rand.New(rand.NewSource(99))
	eng, node, s := testRig(t, testCfg())
	node.SetTracer(tr)
	for i := 0; i < 10; i++ {
		b := randomBatch(rng, i)
		at := simclock.Time(rng.Intn(2000)) * simclock.Time(time.Microsecond)
		eng.At(at, func(simclock.Time) { s.Submit(b) })
	}
	eng.Run()
	if bad {
		t.Fatal("two kernels of the same class ran concurrently on one device")
	}
}

type classTracer struct {
	start func(dev int, class gpusim.KernelClass)
	end   func(dev int, class gpusim.KernelClass)
}

func (c classTracer) KernelStart(dev int, _ string, class gpusim.KernelClass, _ simclock.Time) {
	c.start(dev, class)
}
func (c classTracer) KernelEnd(dev int, _ string, class gpusim.KernelClass, _, _ simclock.Time) {
	c.end(dev, class)
}
