package liger

import (
	"testing"
	"time"

	"liger/internal/simclock"
)

func TestBatchClassStrings(t *testing.T) {
	if LatencyCritical.String() != "latency-critical" || BestEffort.String() != "best-effort" {
		t.Fatal("class names wrong")
	}
}

func TestBestEffortYieldsPrimarySlot(t *testing.T) {
	eng, _, s := testRig(t, testCfg())
	var order []int
	s.SetOnBatchDone(func(b *Batch, now simclock.Time) { order = append(order, b.ID) })
	eng.After(0, func(simclock.Time) {
		// Two best-effort batches arrive first, then a critical one; the
		// critical batch must still complete first.
		for i := 0; i < 2; i++ {
			b := syntheticBatch(i, 8, 3, 60*time.Microsecond, 60*time.Microsecond)
			b.Class = BestEffort
			s.Submit(b)
		}
		c := syntheticBatch(2, 8, 3, 60*time.Microsecond, 60*time.Microsecond)
		s.Submit(c)
	})
	eng.Run()
	if len(order) != 3 {
		t.Fatalf("%d batches completed", len(order))
	}
	if order[0] != 2 {
		t.Fatalf("completion order %v: critical batch should finish first", order)
	}
}

func TestCriticalLatencyProtectedFromBestEffortLoad(t *testing.T) {
	// A critical batch's latency under best-effort background load must
	// stay close to its latency on an idle system.
	solo := func() time.Duration {
		eng, _, s := testRig(t, testCfg())
		b := syntheticBatch(0, 8, 3, 60*time.Microsecond, 60*time.Microsecond)
		eng.After(0, func(simclock.Time) { s.Submit(b) })
		eng.Run()
		return b.Latency()
	}()

	eng, _, s := testRig(t, testCfg())
	crit := syntheticBatch(0, 8, 3, 60*time.Microsecond, 60*time.Microsecond)
	eng.After(0, func(simclock.Time) {
		for i := 1; i <= 5; i++ {
			be := syntheticBatch(i, 8, 3, 60*time.Microsecond, 60*time.Microsecond)
			be.Class = BestEffort
			s.Submit(be)
		}
		s.Submit(crit)
	})
	eng.Run()
	// Rounds in flight when the critical batch arrives can delay it by
	// roughly one round plus contention; far less than queueing behind
	// five batches (~6x solo).
	if crit.Latency() > 2*solo {
		t.Fatalf("critical latency %v vs solo %v: not protected", crit.Latency(), solo)
	}
}

func TestSingleClassKeepsFIFO(t *testing.T) {
	// With only best-effort batches, ordering is plain FIFO.
	eng, _, s := testRig(t, testCfg())
	var order []int
	s.SetOnBatchDone(func(b *Batch, now simclock.Time) { order = append(order, b.ID) })
	eng.After(0, func(simclock.Time) {
		for i := 0; i < 4; i++ {
			b := syntheticBatch(i, 4, 2, 50*time.Microsecond, 30*time.Microsecond)
			b.Class = BestEffort
			s.Submit(b)
		}
	})
	eng.Run()
	for i, id := range order {
		if id != i {
			t.Fatalf("order %v", order)
		}
	}
}
