package liger

import (
	"strings"
	"testing"
	"time"

	"liger/internal/simclock"
)

func TestJournalRecordsRounds(t *testing.T) {
	eng, _, s := testRig(t, testCfg())
	s.EnableJournal(1000)
	eng.After(0, func(simclock.Time) {
		s.Submit(syntheticBatch(0, 4, 2, 50*time.Microsecond, 30*time.Microsecond))
		s.Submit(syntheticBatch(1, 4, 2, 50*time.Microsecond, 30*time.Microsecond))
	})
	eng.Run()
	j := s.Journal()
	if len(j) != s.Stats().Rounds {
		t.Fatalf("journal has %d records, %d rounds ran", len(j), s.Stats().Rounds)
	}
	// First round: batch 0 primary, compute window of two kernels.
	if j[0].Primary != 0 || j[0].PrimaryKernels != 2 || j[0].Window != 100*time.Microsecond {
		t.Fatalf("first record %+v", j[0])
	}
	// Some round must have batch 1 as donor.
	found := false
	for _, r := range j {
		for _, d := range r.Donors {
			if d == 1 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no round recorded batch 1 as donor")
	}
}

func TestJournalBounded(t *testing.T) {
	eng, _, s := testRig(t, testCfg())
	s.EnableJournal(5)
	eng.After(0, func(simclock.Time) {
		s.Submit(syntheticBatch(0, 10, 2, 20*time.Microsecond, 20*time.Microsecond))
	})
	eng.Run()
	j := s.Journal()
	if len(j) != 5 {
		t.Fatalf("bounded journal has %d records", len(j))
	}
	// Must hold the MOST RECENT rounds.
	if j[len(j)-1].Round != s.Stats().Rounds {
		t.Fatalf("last record is round %d of %d", j[len(j)-1].Round, s.Stats().Rounds)
	}
}

func TestJournalDisabledByDefault(t *testing.T) {
	eng, _, s := testRig(t, testCfg())
	eng.After(0, func(simclock.Time) {
		s.Submit(syntheticBatch(0, 2, 2, 20*time.Microsecond, 20*time.Microsecond))
	})
	eng.Run()
	if len(s.Journal()) != 0 {
		t.Fatal("journal recorded without EnableJournal")
	}
}

func TestWriteJournal(t *testing.T) {
	eng, _, s := testRig(t, testCfg())
	s.EnableJournal(100)
	eng.After(0, func(simclock.Time) {
		s.Submit(syntheticBatch(0, 2, 2, 20*time.Microsecond, 20*time.Microsecond))
	})
	eng.Run()
	var sb strings.Builder
	if err := s.WriteJournal(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "primary=b0") || !strings.Contains(out, "compute") {
		t.Fatalf("journal output missing fields:\n%s", out)
	}
}
