package liger

import (
	"fmt"
	"io"
	"time"

	"liger/internal/gpusim"
	"liger/internal/simclock"
)

// RoundRecord captures one scheduling round's decisions — which batch
// was primary, the window, what was interleaved and from whom — for
// debugging and for understanding why a workload does or does not
// overlap.
type RoundRecord struct {
	Round   int
	At      simclock.Time
	Primary int
	Class   gpusim.KernelClass
	Window  time.Duration
	// PrimaryKernels / SecondaryKernels count the two subsets.
	PrimaryKernels   int
	SecondaryKernels int
	// Donors lists the batch IDs whose kernels filled the window.
	Donors []int
	// Decomposed reports whether runtime kernel decomposition fired.
	Decomposed bool
}

// String renders one journal line.
func (r RoundRecord) String() string {
	return fmt.Sprintf("round %5d @%-14v primary=b%-4d %-7v window=%-10v subset0=%d subset1=%d donors=%v decomp=%v",
		r.Round, time.Duration(r.At), r.Primary, r.Class, r.Window,
		r.PrimaryKernels, r.SecondaryKernels, r.Donors, r.Decomposed)
}

// EnableJournal starts recording round decisions, keeping at most cap
// records (oldest dropped). Zero cap disables.
func (s *Scheduler) EnableJournal(cap int) {
	s.journalCap = cap
	if cap <= 0 {
		s.journal = nil
	}
}

// Journal returns the recorded rounds, oldest first.
func (s *Scheduler) Journal() []RoundRecord { return s.journal }

// WriteJournal dumps the journal to w.
func (s *Scheduler) WriteJournal(w io.Writer) error {
	for _, r := range s.journal {
		if _, err := fmt.Fprintln(w, r); err != nil {
			return err
		}
	}
	return nil
}

// record appends to the bounded journal.
func (s *Scheduler) record(r RoundRecord) {
	if s.journalCap <= 0 {
		return
	}
	if len(s.journal) >= s.journalCap {
		copy(s.journal, s.journal[1:])
		s.journal = s.journal[:len(s.journal)-1]
	}
	s.journal = append(s.journal, r)
}
