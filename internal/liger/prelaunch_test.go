package liger

import (
	"sort"
	"testing"
	"time"

	"liger/internal/gpusim"
	"liger/internal/hw"
	"liger/internal/simclock"
	"liger/internal/trace"
)

// deviceIdleTime sums the gaps between consecutive kernel spans on one
// device — exposed launch/synchronization overhead.
func deviceIdleTime(rec *trace.Recorder, dev int) time.Duration {
	var spans []trace.Span
	for _, s := range rec.Spans() {
		if s.Device == dev {
			spans = append(spans, s)
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	var idle time.Duration
	var busyUntil simclock.Time
	for _, s := range spans {
		if s.Start > busyUntil && busyUntil != 0 {
			idle += time.Duration(s.Start - busyUntil)
		}
		if s.End > busyUntil {
			busyUntil = s.End
		}
	}
	return idle
}

// TestHybridPreLaunchHidesOverhead verifies the Fig. 8 mechanism
// directly: with hybrid synchronization the device timeline has almost
// no idle gaps between rounds (launches happen while the last kernel of
// the previous subset runs); with CPU-GPU synchronization every switch
// point exposes the multi-GPU round trip.
func TestHybridPreLaunchHidesOverhead(t *testing.T) {
	run := func(mode SyncMode) (time.Duration, int) {
		eng := simclock.New()
		node, err := gpusim.New(eng, hw.V100Node())
		if err != nil {
			t.Fatal(err)
		}
		rec := trace.NewRecorder()
		node.SetTracer(rec)
		cfg := testCfg()
		cfg.Sync = mode
		s, err := NewScheduler(node, cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng.After(0, func(simclock.Time) {
			s.Submit(syntheticBatch(0, 16, 3, 50*time.Microsecond, 40*time.Microsecond))
		})
		eng.Run()
		return deviceIdleTime(rec, 0), s.Stats().Rounds
	}
	hybridIdle, rounds := run(Hybrid)
	cpugpuIdle, _ := run(CPUGPU)

	// CPU-GPU: each switch costs notify + relaunch, >20µs per round on a
	// 4-GPU node (§4.5). Hybrid must hide nearly all of it.
	if hybridIdle*4 > cpugpuIdle {
		t.Fatalf("hybrid idle %v not much below cpu-gpu idle %v", hybridIdle, cpugpuIdle)
	}
	perRound := cpugpuIdle / time.Duration(rounds)
	if perRound < 20*time.Microsecond {
		t.Fatalf("cpu-gpu per-switch overhead %v, paper reports >20µs", perRound)
	}
	perRoundHybrid := hybridIdle / time.Duration(rounds)
	if perRoundHybrid > 6*time.Microsecond {
		t.Fatalf("hybrid per-switch overhead %v should be a few µs at most", perRoundHybrid)
	}
}
