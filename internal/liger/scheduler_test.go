package liger

import (
	"testing"
	"time"

	"liger/internal/gpusim"
	"liger/internal/hw"
	"liger/internal/model"
	"liger/internal/nccl"
	"liger/internal/parallel"
	"liger/internal/simclock"
	"liger/internal/trace"
)

func testRig(t testing.TB, cfg Config) (*simclock.Engine, *gpusim.Node, *Scheduler) {
	t.Helper()
	eng := simclock.New()
	node, err := gpusim.New(eng, hw.V100Node())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(node, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, node, s
}

func testCfg() Config {
	c := DefaultConfig("v100")
	return c
}

// syntheticBatch builds a batch alternating nComp compute kernels
// (compDur each) with one all-reduce (commDur), repeated layers times.
func syntheticBatch(id, layers, nComp int, compDur, commDur time.Duration) *Batch {
	var ks []parallel.KernelDesc
	for l := 0; l < layers; l++ {
		for c := 0; c < nComp; c++ {
			ks = append(ks, parallel.SyntheticKernel("comp", gpusim.Compute, compDur, 0.85, 0.5, false).WithEqualSplit())
		}
		ks = append(ks, parallel.SyntheticKernel("ar", gpusim.Comm, commDur, 0.08, 0.5, true).WithEqualSplit())
	}
	return NewBatch(id, model.Workload{Batch: 2, SeqLen: 16, Phase: model.Context}, ks)
}

func TestSingleBatchCompletes(t *testing.T) {
	eng, _, s := testRig(t, testCfg())
	b := syntheticBatch(0, 4, 3, 50*time.Microsecond, 40*time.Microsecond)
	var doneAt simclock.Time
	s.SetOnBatchDone(func(b *Batch, now simclock.Time) { doneAt = now })
	eng.After(0, func(simclock.Time) { s.Submit(b) })
	eng.Run()
	if !b.Completed() {
		t.Fatal("batch never completed")
	}
	if doneAt == 0 {
		t.Fatal("completion callback not fired")
	}
	// 4 layers x (150µs compute + 40µs comm) = 760µs of work plus launch
	// and sync overheads; anything within 2x is sane, below is not.
	work := 760 * time.Microsecond
	if b.Latency() < work {
		t.Fatalf("latency %v below total work %v", b.Latency(), work)
	}
	if b.Latency() > 2*work {
		t.Fatalf("latency %v too far above work %v (overhead not hidden)", b.Latency(), work)
	}
}

func TestSingleBatchDegeneratesToIntraOp(t *testing.T) {
	// §3.1: with no subsequent batches, every round has an empty
	// secondary subset.
	eng, _, s := testRig(t, testCfg())
	b := syntheticBatch(0, 6, 2, 50*time.Microsecond, 30*time.Microsecond)
	eng.After(0, func(simclock.Time) { s.Submit(b) })
	eng.Run()
	st := s.Stats()
	if st.SecondaryKernels != 0 {
		t.Fatalf("secondary kernels scheduled with one batch: %d", st.SecondaryKernels)
	}
	if st.EmptySecondary != st.Rounds {
		t.Fatalf("EmptySecondary %d != Rounds %d", st.EmptySecondary, st.Rounds)
	}
	// Rounds alternate compute/comm: 2 per layer.
	if st.Rounds != 12 {
		t.Fatalf("rounds = %d, want 12 (two per layer)", st.Rounds)
	}
}

func TestTwoBatchesInterleave(t *testing.T) {
	eng, node, s := testRig(t, testCfg())
	rec := trace.NewRecorder()
	node.SetTracer(rec)
	b0 := syntheticBatch(0, 8, 3, 60*time.Microsecond, 60*time.Microsecond)
	b1 := syntheticBatch(1, 8, 3, 60*time.Microsecond, 60*time.Microsecond)
	eng.After(0, func(simclock.Time) { s.Submit(b0); s.Submit(b1) })
	eng.Run()
	if !b0.Completed() || !b1.Completed() {
		t.Fatal("batches did not complete")
	}
	if s.Stats().SecondaryKernels == 0 {
		t.Fatal("no interleaving happened with two batches")
	}
	if ov := rec.OverlapTime(0); ov == 0 {
		t.Fatal("no compute/comm overlap recorded on device 0")
	}
	// Interleaving must beat strict serialization: two batches of 8
	// layers x (180+60)µs = 3.84ms total serial work.
	serial := 2 * 8 * 240 * time.Microsecond
	if b1.DoneAt >= simclock.Time(serial) {
		t.Fatalf("no throughput gain: second batch done at %v, serial bound %v", b1.DoneAt, serial)
	}
}

func TestPrimaryBatchPriority(t *testing.T) {
	// Principle 1: interleaving subsequent batches must not materially
	// slow the first batch.
	solo := func() simclock.Time {
		eng, _, s := testRig(t, testCfg())
		b := syntheticBatch(0, 8, 3, 60*time.Microsecond, 60*time.Microsecond)
		eng.After(0, func(simclock.Time) { s.Submit(b) })
		eng.Run()
		return b.DoneAt
	}()
	eng, _, s := testRig(t, testCfg())
	first := syntheticBatch(0, 8, 3, 60*time.Microsecond, 60*time.Microsecond)
	eng.After(0, func(simclock.Time) {
		s.Submit(first)
		for i := 1; i < 4; i++ {
			s.Submit(syntheticBatch(i, 8, 3, 60*time.Microsecond, 60*time.Microsecond))
		}
	})
	eng.Run()
	// Allow modest slowdown from contention (the §3.5 factor bounds it).
	limit := time.Duration(float64(solo) * 1.25)
	if time.Duration(first.DoneAt) > limit {
		t.Fatalf("primary batch slowed from %v to %v by interleaving", solo, first.DoneAt)
	}
}

func TestSecondarySubsetRespectsWindow(t *testing.T) {
	// The secondary subset's contention-scaled duration must not exceed
	// the primary window (Algorithm 1 + §3.5).
	cfg := testCfg()
	cfg.ContentionFactor = 1.2
	s := &Scheduler{cfg: cfg}
	primary := syntheticBatch(0, 1, 4, 50*time.Microsecond, 30*time.Microsecond)
	donor := syntheticBatch(1, 4, 1, 10*time.Microsecond, 40*time.Microsecond)
	donor.pop() // advance donor so its head is the all-reduce
	s.processing = []*Batch{primary, donor}
	sub0, window, typ := s.collectPrimary(primary)
	if typ != gpusim.Compute || len(sub0) != 4 || window != 200*time.Microsecond {
		t.Fatalf("primary subset: %d kernels, window %v, type %v", len(sub0), window, typ)
	}
	sub1 := s.collectSecondary(typ, window)
	var scaled float64
	for _, f := range sub1 {
		if f.Desc.Class != gpusim.Comm {
			t.Fatalf("secondary subset has %v kernel", f.Desc.Class)
		}
		scaled += float64(f.Desc.Duration) * cfg.ContentionFactor
	}
	if scaled > float64(window) {
		t.Fatalf("scaled secondary %v exceeds window %v", time.Duration(scaled), window)
	}
	if len(sub1) == 0 {
		t.Fatal("no secondary kernels collected")
	}
}

func TestCollectSecondarySkipsSameTypeHead(t *testing.T) {
	s := &Scheduler{cfg: testCfg()}
	primary := syntheticBatch(0, 1, 3, 50*time.Microsecond, 30*time.Microsecond)
	// Donor's head is compute — same type as the primary subset — so
	// nothing can be taken (Principle 1: same-type kernels would
	// interfere).
	donor := syntheticBatch(1, 2, 3, 50*time.Microsecond, 30*time.Microsecond)
	s.processing = []*Batch{primary, donor}
	_, window, typ := s.collectPrimary(primary)
	if sub1 := s.collectSecondary(typ, window); len(sub1) != 0 {
		t.Fatalf("took %d same-type kernels from donor", len(sub1))
	}
	if donor.Remaining() != 8 {
		t.Fatalf("donor consumed: %d remaining", donor.Remaining())
	}
}

func TestRuntimeDecompositionSplitsLengthyKernel(t *testing.T) {
	cfg := testCfg()
	cfg.ContentionFactor = 1.0
	cfg.DivisionFactor = 8
	s := &Scheduler{cfg: cfg}
	primary := syntheticBatch(0, 1, 2, 50*time.Microsecond, 30*time.Microsecond) // window 100µs
	// Donor head: one 400µs comm kernel — only a prefix fits.
	donor := NewBatch(1, model.Workload{Batch: 2, SeqLen: 16, Phase: model.Context},
		[]parallel.KernelDesc{
			parallel.SyntheticKernel("bigar", gpusim.Comm, 400*time.Microsecond, 0.08, 0.5, true).WithEqualSplit(),
		})
	s.processing = []*Batch{primary, donor}
	_, window, typ := s.collectPrimary(primary)
	sub1 := s.collectSecondary(typ, window)
	if len(sub1) != 2 { // two 50µs pieces fit in 100µs
		t.Fatalf("got %d pieces, want 2", len(sub1))
	}
	if s.stats.Decompositions != 1 {
		t.Fatalf("Decompositions = %d", s.stats.Decompositions)
	}
	// Remainder stays as the donor's head.
	if donor.Exhausted() {
		t.Fatal("donor exhausted; remainder lost")
	}
	rest := donor.head().Desc
	if rest.Duration != 300*time.Microsecond {
		t.Fatalf("remainder duration %v, want 300µs", rest.Duration)
	}
}

func TestDecompositionDisabledByFactorOne(t *testing.T) {
	cfg := testCfg()
	cfg.DivisionFactor = 1
	s := &Scheduler{cfg: cfg}
	primary := syntheticBatch(0, 1, 2, 50*time.Microsecond, 30*time.Microsecond)
	donor := NewBatch(1, model.Workload{Batch: 2, SeqLen: 16, Phase: model.Context},
		[]parallel.KernelDesc{
			parallel.SyntheticKernel("bigar", gpusim.Comm, 400*time.Microsecond, 0.08, 0.5, true).WithEqualSplit(),
		})
	s.processing = []*Batch{primary, donor}
	_, window, typ := s.collectPrimary(primary)
	if sub1 := s.collectSecondary(typ, window); len(sub1) != 0 {
		t.Fatalf("decomposition happened with factor 1: %d kernels", len(sub1))
	}
}

func TestMinOverlapWindowSkipsTinyWindows(t *testing.T) {
	cfg := testCfg()
	cfg.MinOverlapWindow = time.Millisecond
	s := &Scheduler{cfg: cfg}
	primary := syntheticBatch(0, 1, 2, 50*time.Microsecond, 30*time.Microsecond)
	donor := syntheticBatch(1, 1, 1, 10*time.Microsecond, 40*time.Microsecond)
	donor.pop()
	s.processing = []*Batch{primary, donor}
	_, window, typ := s.collectPrimary(primary)
	if sub1 := s.collectSecondary(typ, window); sub1 != nil {
		t.Fatalf("collected %d kernels below MinOverlapWindow", len(sub1))
	}
}

func TestHybridFasterThanCPUGPU(t *testing.T) {
	// Fig. 13's shape: hybrid synchronization hides the multi-GPU launch
	// overhead that CPU-GPU synchronization exposes at every switch
	// point.
	run := func(mode SyncMode) simclock.Time {
		cfg := testCfg()
		cfg.Sync = mode
		eng, _, s := testRig(t, cfg)
		var last simclock.Time
		s.SetOnBatchDone(func(b *Batch, now simclock.Time) { last = now })
		eng.After(0, func(simclock.Time) {
			for i := 0; i < 4; i++ {
				s.Submit(syntheticBatch(i, 12, 3, 40*time.Microsecond, 30*time.Microsecond))
			}
		})
		eng.Run()
		return last
	}
	hybrid := run(Hybrid)
	cpugpu := run(CPUGPU)
	if cpugpu <= hybrid {
		t.Fatalf("CPU-GPU sync (%v) not slower than hybrid (%v)", cpugpu, hybrid)
	}
	// Per round the CPU-GPU path pays notify + per-device jitter
	// (>20µs); with 12 layers x 2 rounds x 4 batches the gap must be
	// substantial.
	if float64(cpugpu) < 1.05*float64(hybrid) {
		t.Fatalf("CPU-GPU overhead implausibly small: %v vs %v", cpugpu, hybrid)
	}
}

func TestBatchesArrivingOverTime(t *testing.T) {
	eng, _, s := testRig(t, testCfg())
	var done []int
	s.SetOnBatchDone(func(b *Batch, now simclock.Time) { done = append(done, b.ID) })
	for i := 0; i < 5; i++ {
		i := i
		eng.At(simclock.Time(i)*simclock.Time(300*time.Microsecond), func(simclock.Time) {
			s.Submit(syntheticBatch(i, 4, 2, 50*time.Microsecond, 30*time.Microsecond))
		})
	}
	eng.Run()
	if len(done) != 5 {
		t.Fatalf("%d of 5 batches completed", len(done))
	}
	// Arrival order is completion order for identical batches
	// (Principle 1).
	for i, id := range done {
		if id != i {
			t.Fatalf("completion order %v", done)
		}
	}
	if w, p := s.QueueLengths(); w != 0 || p != 0 {
		t.Fatalf("queues not drained: waiting %d processing %d", w, p)
	}
}

func TestIdleThenResume(t *testing.T) {
	eng, _, s := testRig(t, testCfg())
	count := 0
	s.SetOnBatchDone(func(*Batch, simclock.Time) { count++ })
	eng.After(0, func(simclock.Time) {
		s.Submit(syntheticBatch(0, 2, 2, 40*time.Microsecond, 30*time.Microsecond))
	})
	// Long gap — the scheduler goes idle — then a second batch.
	eng.At(simclock.Time(50*time.Millisecond), func(simclock.Time) {
		s.Submit(syntheticBatch(1, 2, 2, 40*time.Microsecond, 30*time.Microsecond))
	})
	eng.Run()
	if count != 2 {
		t.Fatalf("completed %d batches, want 2", count)
	}
}

func TestProcessingListBounded(t *testing.T) {
	cfg := testCfg()
	cfg.MaxInflight = 2
	eng, _, s := testRig(t, cfg)
	eng.After(0, func(simclock.Time) {
		for i := 0; i < 10; i++ {
			s.Submit(syntheticBatch(i, 2, 2, 40*time.Microsecond, 30*time.Microsecond))
		}
		if _, p := s.QueueLengths(); p > 2 {
			t.Fatalf("processing list %d exceeds MaxInflight 2", p)
		}
	})
	eng.Run()
	if s.Stats().BatchesDone != 10 {
		t.Fatalf("BatchesDone = %d", s.Stats().BatchesDone)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Sync: Hybrid, ContentionFactor: 0.9, DivisionFactor: 8, MaxInflight: 4},
		{Sync: Hybrid, ContentionFactor: 1.1, DivisionFactor: 0, MaxInflight: 4},
		{Sync: Hybrid, ContentionFactor: 1.1, DivisionFactor: 8, MaxInflight: 0},
		{Sync: Hybrid, ContentionFactor: 1.1, DivisionFactor: 8, MaxInflight: 4, MinOverlapWindow: -1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if err := DefaultConfig("v100").Validate(); err != nil {
		t.Fatal(err)
	}
	if DefaultConfig("v100").ContentionFactor != 1.1 {
		t.Fatal("V100 default contention factor should be 1.1 (§4.2)")
	}
	if DefaultConfig("a100").ContentionFactor != 1.15 {
		t.Fatal("A100 default contention factor should be 1.15 (§4.2)")
	}
}

func TestAssembler(t *testing.T) {
	comp := parallel.NewCompiler(hw.V100Node(), nccl.Config{ReducedChannels: true})
	asm, err := NewAssembler(comp, model.Tiny(), 4)
	if err != nil {
		t.Fatal(err)
	}
	b0, err := asm.Assemble(model.Workload{Batch: 2, SeqLen: 16, Phase: model.Context})
	if err != nil {
		t.Fatal(err)
	}
	b1, err := asm.Assemble(model.Workload{Batch: 2, SeqLen: 32, Phase: model.Context})
	if err != nil {
		t.Fatal(err)
	}
	if b0.ID == b1.ID {
		t.Fatal("batch IDs not unique")
	}
	if b0.Remaining() == 0 {
		t.Fatal("assembled batch has no funcs")
	}
	if _, err := NewAssembler(comp, model.Tiny(), 0); err == nil {
		t.Fatal("tp=0 accepted")
	}
	bad := model.Spec{Name: "bad", Layers: 0}
	if _, err := NewAssembler(comp, bad, 4); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestBatchAccounting(t *testing.T) {
	b := NewBatch(7, model.Workload{Batch: 2, SeqLen: 16, Phase: model.Context},
		[]parallel.KernelDesc{
			parallel.SyntheticKernel("a", gpusim.Compute, time.Microsecond, 0.5, 0.5, false),
		})
	if b.Exhausted() || b.Completed() {
		t.Fatal("fresh batch reports exhausted/completed")
	}
	if b.Latency() != 0 {
		t.Fatal("incomplete batch reports latency")
	}
	b.pop()
	if !b.Exhausted() {
		t.Fatal("batch not exhausted after popping all funcs")
	}
	b.kernelLaunched()
	b.kernelLaunched()
	b.kernelDone(10)
	if b.Completed() {
		t.Fatal("completed with a kernel in flight")
	}
	b.kernelDone(20)
	if !b.Completed() || b.DoneAt != 20 {
		t.Fatalf("completion at %v", b.DoneAt)
	}
}

func TestKernelDoneUnderflowPanics(t *testing.T) {
	b := NewBatch(0, model.Workload{Batch: 1, SeqLen: 1, Phase: model.Context}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("underflow did not panic")
		}
	}()
	b.kernelDone(0)
}

func TestRealModelEndToEnd(t *testing.T) {
	// Serve the tiny model through the full stack: assembler + scheduler
	// + simulated node, several batches.
	eng := simclock.New()
	node, err := gpusim.New(eng, hw.V100Node())
	if err != nil {
		t.Fatal(err)
	}
	comp := parallel.NewCompiler(hw.V100Node(), nccl.Config{ReducedChannels: true})
	asm, err := NewAssembler(comp, model.Tiny(), node.NumDevices())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(node, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	completed := 0
	s.SetOnBatchDone(func(*Batch, simclock.Time) { completed++ })
	for i := 0; i < 6; i++ {
		at := simclock.Time(i) * simclock.Time(50*time.Microsecond)
		eng.At(at, func(simclock.Time) {
			b, err := asm.Assemble(model.Workload{Batch: 2, SeqLen: 16, Phase: model.Context})
			if err != nil {
				t.Error(err)
				return
			}
			s.Submit(b)
		})
	}
	eng.Run()
	if completed != 6 {
		t.Fatalf("completed %d of 6", completed)
	}
	st := s.Stats()
	if st.Rounds == 0 || st.PrimaryKernels == 0 {
		t.Fatalf("implausible stats %+v", st)
	}
}
