package liger

import (
	"testing"
	"time"

	"liger/internal/gpusim"
	"liger/internal/simclock"
)

// degradedRun serves two interleavable batches with device 1 degraded
// by setup and returns the final stats.
func degradedRun(t *testing.T, cfg Config, setup func(*gpusim.Node)) Stats {
	t.Helper()
	eng, node, s := testRig(t, cfg)
	if setup != nil {
		setup(node)
	}
	eng.After(0, func(simclock.Time) {
		s.Submit(syntheticBatch(0, 8, 3, 60*time.Microsecond, 60*time.Microsecond))
		s.Submit(syntheticBatch(1, 8, 3, 60*time.Microsecond, 60*time.Microsecond))
	})
	eng.Run()
	return s.Stats()
}

func slowDevice(speed float64) func(*gpusim.Node) {
	return func(n *gpusim.Node) { n.Device(1).SetSpeed(speed) }
}

func degradeLink(f float64) func(*gpusim.Node) {
	return func(n *gpusim.Node) { n.Device(1).SetLinkFactor(f) }
}

func TestDegradationFallbackSkipsSecondary(t *testing.T) {
	cfg := testCfg()
	cfg.DegradationAware = true
	st := degradedRun(t, cfg, slowDevice(0.3)) // below the 0.5 default threshold
	if st.SecondaryKernels != 0 {
		t.Fatalf("interleaved %d kernels onto a crippled device", st.SecondaryKernels)
	}
	if st.DegradedFallbacks == 0 {
		t.Fatal("no fallback rounds counted")
	}
	if st.DegradedRebalances != 0 {
		t.Fatalf("rebalanced %d rounds below the fallback threshold", st.DegradedRebalances)
	}
	if st.BatchesDone != 2 {
		t.Fatalf("completed %d of 2 batches", st.BatchesDone)
	}
}

func TestDegradationRebalanceShrinksCommBudget(t *testing.T) {
	cfg := testCfg()
	cfg.DegradationAware = true
	healthy := degradedRun(t, cfg, nil)
	mild := degradedRun(t, cfg, degradeLink(0.7)) // degraded link above the threshold
	if healthy.DegradedFallbacks != 0 || healthy.DegradedRebalances != 0 {
		t.Fatalf("healthy run counted degradation: %+v", healthy)
	}
	if mild.DegradedRebalances == 0 {
		t.Fatal("no rebalanced rounds with a mildly degraded link")
	}
	if mild.DegradedFallbacks != 0 {
		t.Fatalf("fell back %d rounds above the threshold", mild.DegradedFallbacks)
	}
	if mild.SecondaryKernels == 0 {
		t.Fatal("rebalancing killed interleaving entirely")
	}
	if mild.SecondaryKernels > healthy.SecondaryKernels {
		t.Fatalf("shrunk budget interleaved more (%d) than full budget (%d)",
			mild.SecondaryKernels, healthy.SecondaryKernels)
	}
}

func TestDegradationIgnoresUniformSlowdown(t *testing.T) {
	// A speed slowdown above the fallback threshold stretches the
	// primary and secondary subsets alike, so re-planning must leave the
	// interleaving ratio untouched — shedding overlap here measurably
	// hurts goodput.
	cfg := testCfg()
	cfg.DegradationAware = true
	st := degradedRun(t, cfg, slowDevice(0.7))
	if st.DegradedFallbacks != 0 || st.DegradedRebalances != 0 {
		t.Fatalf("reacted to a uniform slowdown above the threshold: %+v", st)
	}
	if st.SecondaryKernels == 0 {
		t.Fatal("stopped interleaving under a mild uniform slowdown")
	}
}

func TestDegradationDetectsLinkHealth(t *testing.T) {
	// The health probe is min(speed, link factor): a severely degraded
	// link alone must trigger the fallback.
	cfg := testCfg()
	cfg.DegradationAware = true
	st := degradedRun(t, cfg, degradeLink(0.2))
	if st.SecondaryKernels != 0 || st.DegradedFallbacks == 0 {
		t.Fatalf("link degradation not detected: %+v", st)
	}
}

func TestDegradationAwareOffIgnoresHealth(t *testing.T) {
	st := degradedRun(t, testCfg(), slowDevice(0.3))
	if st.DegradedFallbacks != 0 || st.DegradedRebalances != 0 {
		t.Fatalf("degradation counters moved with the feature off: %+v", st)
	}
	if st.SecondaryKernels == 0 {
		t.Fatal("plain scheduler stopped interleaving")
	}
}

func TestFallbackHealthConfig(t *testing.T) {
	for _, h := range []float64{-0.1, 1.5} {
		c := testCfg()
		c.FallbackHealth = h
		if c.Validate() == nil {
			t.Errorf("fallback health %v accepted", h)
		}
	}
	c := testCfg()
	if got := c.fallbackHealth(); got != 0.5 {
		t.Errorf("default fallback health %v, want 0.5", got)
	}
	c.FallbackHealth = 0.8
	if got := c.fallbackHealth(); got != 0.8 {
		t.Errorf("fallback health %v, want 0.8", got)
	}
	// A custom threshold changes the fallback decision: speed 0.7 is
	// above the default threshold but below 0.8.
	cfg := testCfg()
	cfg.DegradationAware = true
	cfg.FallbackHealth = 0.8
	st := degradedRun(t, cfg, slowDevice(0.7))
	if st.SecondaryKernels != 0 || st.DegradedFallbacks == 0 {
		t.Fatalf("raised threshold did not force fallback: %+v", st)
	}
}
