package liger

import (
	"testing"
	"time"

	"liger/internal/simclock"
)

// TestWorkspaceBackpressureShrinksProcessingList verifies that when
// device memory cannot hold MaxInflight workspaces, the scheduler
// admits fewer batches instead of over-allocating.
func TestWorkspaceBackpressureShrinksProcessingList(t *testing.T) {
	eng, node, s := testRig(t, testCfg())
	// Occupy memory so only two workspaces fit.
	ws := int64(1 << 30)
	free := node.Device(0).MemFree()
	if err := node.AllocAll(free - 2*ws); err != nil {
		t.Fatal(err)
	}
	var maxProcessing int
	eng.After(0, func(simclock.Time) {
		for i := 0; i < 6; i++ {
			b := syntheticBatch(i, 4, 2, 40*time.Microsecond, 30*time.Microsecond)
			b.WorkspaceBytes = ws
			s.Submit(b)
		}
		_, p := s.QueueLengths()
		if p > maxProcessing {
			maxProcessing = p
		}
	})
	eng.Run()
	if maxProcessing > 2 {
		t.Fatalf("processing list reached %d with memory for 2 workspaces", maxProcessing)
	}
	if s.Stats().BatchesDone != 6 {
		t.Fatalf("%d of 6 batches completed under backpressure", s.Stats().BatchesDone)
	}
	// All workspaces must be returned.
	if got := node.Device(0).MemFree(); got != 2*ws {
		t.Fatalf("workspace leak: %d bytes free, want %d", got, 2*ws)
	}
}

func TestZeroWorkspaceSkipsAccounting(t *testing.T) {
	eng, node, s := testRig(t, testCfg())
	before := node.Device(0).MemUsed()
	eng.After(0, func(simclock.Time) {
		s.Submit(syntheticBatch(0, 2, 2, 40*time.Microsecond, 30*time.Microsecond))
	})
	eng.Run()
	if node.Device(0).MemUsed() != before {
		t.Fatal("hand-built batch without workspace touched device memory")
	}
}

// TestMemoryBackpressureUnderFloodedLaunch regresses the overload OOM:
// with InterStreamOnly sync the scheduler pre-launches aggressively, so
// exhausted-but-running batches pile up holding workspace even though
// the processing list is empty. Admission must wait for completions
// (which re-kick the scheduler) instead of panicking.
func TestMemoryBackpressureUnderFloodedLaunch(t *testing.T) {
	cfg := testCfg()
	cfg.Sync = InterStreamOnly
	eng, node, s := testRig(t, cfg)
	ws := int64(1 << 30)
	free := node.Device(0).MemFree()
	if err := node.AllocAll(free - 3*ws); err != nil {
		t.Fatal(err)
	}
	done := 0
	s.SetOnBatchDone(func(*Batch, simclock.Time) { done++ })
	eng.After(0, func(simclock.Time) {
		for i := 0; i < 12; i++ {
			b := syntheticBatch(i, 6, 2, 40*time.Microsecond, 30*time.Microsecond)
			b.WorkspaceBytes = ws
			s.Submit(b)
		}
	})
	eng.Run()
	if done != 12 {
		t.Fatalf("%d of 12 batches completed under memory-gated flooding", done)
	}
	if got := node.Device(0).MemFree(); got != 3*ws {
		t.Fatalf("workspace leak: %d free, want %d", got, 3*ws)
	}
}
