package analyze

import (
	"sort"

	"liger/internal/simclock"
	"liger/internal/trace"
)

// Gap causes, in attribution priority order: an idle instant matching
// several layers is charged to the first.
const (
	// GapFailed: the device was permanently removed; everything after
	// the failure instant is lost capacity, not schedulable idleness.
	GapFailed = "device-failed"
	// GapRecovery: inside a failover reconfiguration window — serving
	// was paused while the runtime re-planned onto the survivors.
	GapRecovery = "recovery"
	// GapRendezvous: a collective member occupied the device spinning
	// on late peers (no useful progress).
	GapRendezvous = "rendezvous"
	// GapDependency: work was delivered but not yet admitted — head of
	// queue blocked on a predecessor, an event or SM capacity.
	GapDependency = "dependency"
	// GapLaunch: work was issued but still in the host→device launch
	// queue (base latency or serialization behind earlier launches).
	GapLaunch = "launch"
	// GapNoWork: nothing was issued for the device — the scheduler had
	// no work for it.
	GapNoWork = "no-work"
)

// Gap is one attributed device-idle interval.
type Gap struct {
	Device int
	Start  simclock.Time
	End    simclock.Time
	Cause  string
}

// GapReport attributes every device-idle interval of the run (the
// complement of kernel execution within [0, makespan]) to a cause.
type GapReport struct {
	Gaps []Gap
	// Totals sums gap time per cause across devices; Idle is the grand
	// total (equal to devices×makespan minus execution time).
	Totals map[string]simclock.Time
	Idle   simclock.Time
}

func attributeGaps(rec *trace.Recorder, makespan simclock.Time) GapReport {
	gr := GapReport{Totals: map[string]simclock.Time{}}
	if makespan == 0 {
		return gr
	}
	devices := 0
	note := func(d int) {
		if d >= devices {
			devices = d + 1
		}
	}
	busy := map[int][]iv{}
	for _, sp := range rec.Spans() {
		note(sp.Device)
		busy[sp.Device] = append(busy[sp.Device], iv{sp.Start, sp.End})
	}
	waits := map[int][]iv{}
	for _, w := range rec.Waits() {
		note(w.Device)
		waits[w.Device] = append(waits[w.Device], iv{w.Start, w.End})
	}
	delivered := map[int][]iv{} // delivered, not yet admitted
	inQueue := map[int][]iv{}   // issued, not yet delivered
	for _, d := range rec.Deps() {
		note(d.Device)
		delivered[d.Device] = append(delivered[d.Device], iv{d.Delivered, d.Admitted})
		inQueue[d.Device] = append(inQueue[d.Device], iv{d.Issued, d.Delivered})
	}
	failedAt := map[int]simclock.Time{}
	for _, f := range rec.Fails() {
		note(f.Device)
		if at, ok := failedAt[f.Device]; !ok || f.At < at {
			failedAt[f.Device] = f.At
		}
	}
	recovery := recoveryIvs(rec, makespan)

	for dev := 0; dev < devices; dev++ {
		remaining := subtract([]iv{{0, makespan}}, normalize(busy[dev]))
		gr.Idle += total(remaining)
		layers := []struct {
			cause string
			ivs   []iv
		}{
			{GapFailed, failedLayer(failedAt, dev, makespan)},
			{GapRecovery, recovery},
			{GapRendezvous, normalize(waits[dev])},
			{GapDependency, normalize(delivered[dev])},
			{GapLaunch, normalize(inQueue[dev])},
		}
		for _, layer := range layers {
			for _, v := range intersect(remaining, layer.ivs) {
				gr.Gaps = append(gr.Gaps, Gap{Device: dev, Start: v.s, End: v.e, Cause: layer.cause})
			}
			remaining = subtract(remaining, layer.ivs)
		}
		for _, v := range remaining {
			gr.Gaps = append(gr.Gaps, Gap{Device: dev, Start: v.s, End: v.e, Cause: GapNoWork})
		}
	}
	sort.Slice(gr.Gaps, func(i, j int) bool {
		if gr.Gaps[i].Device != gr.Gaps[j].Device {
			return gr.Gaps[i].Device < gr.Gaps[j].Device
		}
		return gr.Gaps[i].Start < gr.Gaps[j].Start
	})
	for _, g := range gr.Gaps {
		gr.Totals[g.Cause] += g.End - g.Start
	}
	return gr
}

func failedLayer(failedAt map[int]simclock.Time, dev int, makespan simclock.Time) []iv {
	at, ok := failedAt[dev]
	if !ok {
		return nil
	}
	return normalize([]iv{{at, makespan}})
}

// GapGlyphs maps gap causes to the single-character glyphs the ASCII
// timeline's annotation lane uses.
var GapGlyphs = map[string]byte{
	GapFailed:     'X',
	GapRecovery:   'R',
	GapRendezvous: 'r',
	GapDependency: 'd',
	GapLaunch:     'l',
	GapNoWork:     '.',
}

// GapMarks converts the attributed gaps into timeline annotations.
func (gr GapReport) GapMarks() []trace.GapMark {
	marks := make([]trace.GapMark, 0, len(gr.Gaps))
	for _, g := range gr.Gaps {
		glyph := GapGlyphs[g.Cause]
		if glyph == 0 {
			glyph = '?'
		}
		marks = append(marks, trace.GapMark{Device: g.Device, Start: g.Start, End: g.End, Glyph: glyph})
	}
	return marks
}
