package analyze_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"liger/internal/analyze"
	"liger/internal/gpusim"
	"liger/internal/hw"
	"liger/internal/simclock"
	"liger/internal/trace"
)

func simNode(t testing.TB, gpus int) (*simclock.Engine, *gpusim.Node, *trace.Recorder) {
	t.Helper()
	spec := hw.V100Node()
	spec.NumGPUs = gpus
	eng := simclock.New()
	n, err := gpusim.New(eng, spec)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	n.SetTracer(rec)
	return eng, n, rec
}

func us(n int) simclock.Time { return simclock.Time(n) * simclock.Time(time.Microsecond) }

// assertTiling checks the critical-path invariant the ISSUE pins: the
// segments are ascending, contiguous, and tile [0, makespan] exactly,
// so their durations sum to the end-to-end time.
func assertTiling(t *testing.T, rep *analyze.Report) {
	t.Helper()
	segs := rep.CriticalPath.Segments
	if len(segs) == 0 {
		t.Fatal("critical path has no segments")
	}
	if segs[0].Start != 0 {
		t.Fatalf("critical path does not start at 0: %+v", segs[0])
	}
	var sum simclock.Time
	for i, s := range segs {
		if s.End <= s.Start {
			t.Fatalf("empty or inverted segment: %+v", s)
		}
		if i > 0 && s.Start != segs[i-1].End {
			t.Fatalf("segment %d not contiguous: %+v after %+v", i, s, segs[i-1])
		}
		sum += s.End - s.Start
	}
	if last := segs[len(segs)-1].End; last != rep.Makespan {
		t.Fatalf("critical path ends at %v, makespan %v", last, rep.Makespan)
	}
	if sum != rep.Makespan {
		t.Fatalf("segment durations sum to %v, makespan %v", sum, rep.Makespan)
	}
	var totalSum simclock.Time
	for _, v := range rep.CriticalPath.Totals {
		totalSum += v
	}
	if totalSum != rep.Makespan {
		t.Fatalf("kind totals sum to %v, makespan %v", totalSum, rep.Makespan)
	}
}

// A plain in-order kernel chain decomposes into one launch segment
// (the first kernel's delivery) plus pure compute.
func TestCriticalPathSimpleChain(t *testing.T) {
	eng, n, rec := simNode(t, 1)
	s := n.NewStream(0)
	k := gpusim.KernelSpec{Name: "gemm", Class: gpusim.Compute,
		Duration: 10 * time.Microsecond, ComputeDemand: 0.9, Req: -1}
	for i := 0; i < 3; i++ {
		s.Launch(k)
	}
	eng.Run()

	rep := analyze.Analyze(rec, analyze.Options{})
	if rep.Makespan != us(35) {
		t.Fatalf("makespan %v, want 35µs", rep.Makespan)
	}
	assertTiling(t, rep)
	if got := rep.CriticalPath.Totals[analyze.SegCompute]; got != us(30) {
		t.Fatalf("compute total %v, want 30µs", got)
	}
	if got := rep.CriticalPath.Totals[analyze.SegLaunch]; got != us(5) {
		t.Fatalf("launch total %v, want 5µs (base delivery latency)", got)
	}
	top := rep.CriticalPath.Contributors[0]
	if top.Kernel != "gemm" || top.Kind != analyze.SegCompute || top.Count != 3 {
		t.Fatalf("top contributor should be the gemm chain: %+v", top)
	}
}

// A kernel blocked on SM capacity routes the path through the kernel
// whose finish freed the device — no artificial wait segment, the
// blocker's execution is the explanation.
func TestCriticalPathCapacityHop(t *testing.T) {
	eng, n, rec := simNode(t, 1)
	k := gpusim.KernelSpec{Name: "big", Class: gpusim.Compute,
		Duration: 100 * time.Microsecond, ComputeDemand: 0.9, Req: -1}
	n.NewStreamOnConnection(0, 0).Launch(k)
	n.NewStreamOnConnection(0, 1).Launch(k)
	eng.Run()

	rep := analyze.Analyze(rec, analyze.Options{})
	assertTiling(t, rep)
	if got := rep.CriticalPath.Totals[analyze.SegCompute]; got != us(200) {
		t.Fatalf("compute total %v, want 200µs (both serialized executions)", got)
	}
	if got := rep.CriticalPath.Totals[analyze.SegDepWait]; got != 0 {
		t.Fatalf("capacity hop should be zero-gap, got dep-wait %v", got)
	}
}

// Collective routing: the earliest member surfaces its rendezvous
// stall; the binding member routes into what made it late instead.
func TestCriticalPathCollectiveRouting(t *testing.T) {
	run := func(routing string) *analyze.Report {
		eng, n, rec := simNode(t, 2)
		coll := n.NewCollective(2)
		member := gpusim.KernelSpec{Name: "allreduce", Class: gpusim.Comm,
			Duration: 20 * time.Microsecond, ComputeDemand: 0.05, Coll: coll, Req: -1}
		s0 := n.NewStream(0)
		s0.Launch(gpusim.KernelSpec{Name: "gemm", Class: gpusim.Compute,
			Duration: 50 * time.Microsecond, ComputeDemand: 0.9, Req: -1})
		s0.Launch(member)
		n.NewStream(1).Launch(member)
		eng.Run()
		rep := analyze.Analyze(rec, analyze.Options{Routing: routing})
		assertTiling(t, rep)
		return rep
	}

	earliest := run(analyze.RouteEarliest)
	if got := earliest.CriticalPath.Totals[analyze.SegRendezvous]; got != us(50) {
		t.Fatalf("earliest routing should surface the 50µs rendezvous stall, got %v", got)
	}
	binding := run(analyze.RouteBinding)
	if got := binding.CriticalPath.Totals[analyze.SegRendezvous]; got != 0 {
		t.Fatalf("binding routing should have no rendezvous segment, got %v", got)
	}
	if got := binding.CriticalPath.Totals[analyze.SegCompute]; got != us(50) {
		t.Fatalf("binding routing should charge the late member's gemm, got %v", got)
	}
}

// Gap attribution: launch-queue time, rendezvous spins and no-work
// intervals classify by the documented priority.
func TestGapAttribution(t *testing.T) {
	eng, n, rec := simNode(t, 2)
	coll := n.NewCollective(2)
	member := gpusim.KernelSpec{Name: "allreduce", Class: gpusim.Comm,
		Duration: 20 * time.Microsecond, ComputeDemand: 0.05, Coll: coll, Req: -1}
	s0 := n.NewStream(0)
	s0.Launch(gpusim.KernelSpec{Name: "gemm", Class: gpusim.Compute,
		Duration: 50 * time.Microsecond, ComputeDemand: 0.9, Req: -1})
	s0.Launch(member)
	n.NewStream(1).Launch(member)
	eng.Run()

	rep := analyze.Analyze(rec, analyze.Options{})
	causeAt := func(dev int, at simclock.Time) string {
		for _, g := range rep.Gaps.Gaps {
			if g.Device == dev && g.Start <= at && at < g.End {
				return g.Cause
			}
		}
		return ""
	}
	// Both devices idle [0, 5µs) while the first launches sit in the
	// queue; device 1 then spins on its late peer until 55µs.
	if c := causeAt(0, us(2)); c != analyze.GapLaunch {
		t.Fatalf("device 0 pre-delivery gap classified %q, want launch", c)
	}
	if c := causeAt(1, us(30)); c != analyze.GapRendezvous {
		t.Fatalf("device 1 rendezvous spin classified %q, want rendezvous", c)
	}
	// Gap totals cover exactly the idle time — nothing double-counted.
	var sum simclock.Time
	for _, v := range rep.Gaps.Totals {
		sum += v
	}
	if sum != rep.Gaps.Idle {
		t.Fatalf("gap totals %v != idle %v", sum, rep.Gaps.Idle)
	}
	if rep.Gaps.Idle != 2*rep.Makespan-spanTime(rec) {
		t.Fatalf("idle %v inconsistent with busy time", rep.Gaps.Idle)
	}
}

func spanTime(rec *trace.Recorder) simclock.Time {
	var t simclock.Time
	for _, sp := range rec.Spans() {
		t += sp.End - sp.Start
	}
	return t
}

// A long pause with nothing issued is no-work, not a dependency gap.
func TestGapNoWork(t *testing.T) {
	eng, n, rec := simNode(t, 1)
	s := n.NewStream(0)
	k := gpusim.KernelSpec{Name: "k", Class: gpusim.Compute,
		Duration: 10 * time.Microsecond, ComputeDemand: 0.5, Req: -1}
	s.Launch(k)
	eng.At(us(100), func(simclock.Time) { s.Launch(k) })
	eng.Run()

	rep := analyze.Analyze(rec, analyze.Options{})
	if got := rep.Gaps.Totals[analyze.GapNoWork]; got != us(85) {
		t.Fatalf("no-work total %v, want 85µs (15µs..100µs)", got)
	}
	if got := rep.Gaps.Totals[analyze.GapLaunch]; got != us(10) {
		t.Fatalf("launch total %v, want 10µs (two deliveries)", got)
	}
}

// Overlap: comm running under compute is hidden, comm alone exposed.
func TestOverlapReport(t *testing.T) {
	eng, n, rec := simNode(t, 1)
	sa := n.NewStreamOnConnection(0, 0)
	sb := n.NewStreamOnConnection(0, 1)
	sa.Launch(gpusim.KernelSpec{Name: "gemm", Class: gpusim.Compute,
		Duration: 100 * time.Microsecond, ComputeDemand: 0.3, Req: -1})
	sb.Launch(gpusim.KernelSpec{Name: "copy", Class: gpusim.Comm,
		Duration: 40 * time.Microsecond, ComputeDemand: 0.05, Req: -1})
	eng.At(us(200), func(simclock.Time) {
		sb.Launch(gpusim.KernelSpec{Name: "copy", Class: gpusim.Comm,
			Duration: 40 * time.Microsecond, ComputeDemand: 0.05, Req: -1})
	})
	eng.Run()

	rep := analyze.Analyze(rec, analyze.Options{})
	o := rep.Overlap
	if o.Comm != us(80) || o.Hidden != us(40) || o.Exposed != us(40) {
		t.Fatalf("overlap comm/hidden/exposed = %v/%v/%v, want 80/40/40µs", o.Comm, o.Hidden, o.Exposed)
	}
	if o.ExposedShare != 0.5 {
		t.Fatalf("exposed share %v, want 0.5", o.ExposedShare)
	}
}

// Failover traces: truncated spans and aborted collectives attribute
// to the recovery window and failed device, never panic, and the
// tiling invariant still holds.
func TestFailoverTraceRobustness(t *testing.T) {
	eng, n, rec := simNode(t, 2)
	coll := n.NewCollective(2)
	member := gpusim.KernelSpec{Name: "allreduce", Class: gpusim.Comm,
		Duration: 50 * time.Microsecond, ComputeDemand: 0.05, Coll: coll, Req: -1}
	s0 := n.NewStream(0)
	s0.Launch(member)
	s1 := n.NewStream(1)
	s1.Launch(gpusim.KernelSpec{Name: "gemm", Class: gpusim.Compute,
		Duration: 100 * time.Microsecond, ComputeDemand: 0.9, Req: -1})
	s1.Launch(member)
	// Device 1 dies mid-gemm: the gemm span truncates, the collective
	// aborts, device 0's member closes with an aborted wait span.
	eng.At(us(40), func(now simclock.Time) {
		n.FailDevice(1)
		rec.RecoveryBegin(now)
	})
	eng.At(us(70), func(now simclock.Time) {
		rec.RecoveryEnd(now)
		s0.Launch(gpusim.KernelSpec{Name: "retry", Class: gpusim.Compute,
			Duration: 30 * time.Microsecond, ComputeDemand: 0.5, Req: -1})
	})
	eng.Run()

	rep := analyze.Analyze(rec, analyze.Options{})
	assertTiling(t, rep)
	if got := rep.Gaps.Totals[analyze.GapFailed]; got == 0 {
		t.Fatal("failed device's dead time not attributed")
	}
	if got := rep.Gaps.Totals[analyze.GapRecovery]; got == 0 {
		t.Fatal("recovery window not attributed")
	}
	var sum simclock.Time
	for _, v := range rep.Gaps.Totals {
		sum += v
	}
	if sum != rep.Gaps.Idle {
		t.Fatalf("gap totals %v != idle %v — double counting", sum, rep.Gaps.Idle)
	}
}

// Identical recorder contents must produce byte-identical JSON — the
// property CI's cross-worker diff relies on.
func TestReportDeterminism(t *testing.T) {
	render := func() []byte {
		eng, n, rec := simNode(t, 2)
		coll := n.NewCollective(2)
		member := gpusim.KernelSpec{Name: "allreduce", Class: gpusim.Comm,
			Duration: 20 * time.Microsecond, ComputeDemand: 0.05, Coll: coll, Req: -1}
		s0 := n.NewStream(0)
		s0.Launch(gpusim.KernelSpec{Name: "gemm", Class: gpusim.Compute,
			Duration: 50 * time.Microsecond, ComputeDemand: 0.9, Req: -1})
		s0.Launch(member)
		n.NewStream(1).Launch(member)
		eng.Run()
		var buf bytes.Buffer
		if err := analyze.Analyze(rec, analyze.Options{}).WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatal("analysis JSON not byte-deterministic")
	}
}

// The text report carries every section -explain prints, and the gap
// marks feed the timeline's annotation lane.
func TestWriteTextAndGapMarks(t *testing.T) {
	eng, n, rec := simNode(t, 1)
	s := n.NewStream(0)
	s.Launch(gpusim.KernelSpec{Name: "gemm", Class: gpusim.Compute,
		Duration: 10 * time.Microsecond, ComputeDemand: 0.9, Req: -1})
	eng.Run()

	rep := analyze.Analyze(rec, analyze.Options{})
	var sb strings.Builder
	if err := rep.WriteText(&sb, 5); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"makespan", "critical path", "contributors",
		"idle-gap attribution", "overlap efficiency"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text report missing %q:\n%s", want, out)
		}
	}
	marks := rep.Gaps.GapMarks()
	if len(marks) == 0 {
		t.Fatal("no gap marks for the launch gap")
	}
	if marks[0].Glyph != 'l' {
		t.Fatalf("launch gap glyph %q, want 'l'", marks[0].Glyph)
	}
	tl := trace.NewTimeline(rec, 40)
	tl.SetGaps(marks)
	sb.Reset()
	if err := tl.Render(&sb, 0, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "gaps") {
		t.Fatalf("timeline missing gap lane:\n%s", sb.String())
	}
}

// An empty recorder yields an empty but serializable report.
func TestEmptyRecorder(t *testing.T) {
	rep := analyze.Analyze(trace.NewRecorder(), analyze.Options{})
	if rep.Makespan != 0 || len(rep.CriticalPath.Segments) != 0 || len(rep.Gaps.Gaps) != 0 {
		t.Fatalf("empty recorder should produce an empty report: %+v", rep)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteText(&buf, 3); err != nil {
		t.Fatal(err)
	}
}
