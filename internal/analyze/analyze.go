// Package analyze turns a trace.Recorder's raw events — kernel spans,
// the causal dependency records of gpusim's DepTracer, rendezvous
// waits and recovery windows — into explanations: the critical path of
// a run decomposed into compute / comm / launch-overhead / rendezvous
// / dependency-wait segments, an attribution of every device-idle
// interval to its cause, and an overlap-efficiency report measuring
// how much communication a runtime hides under computation (the
// quantity Liger's interleaving optimizes, Fig. 9/10).
//
// Every product is deterministic: the same recorder contents produce
// byte-identical reports, so CI can diff analysis artifacts across
// worker counts and runs.
package analyze

import (
	"liger/internal/simclock"
	"liger/internal/trace"
)

// Collective routing modes for the critical-path walk. All members of
// a collective finish together, so the walk must pick one member to
// continue through.
const (
	// RouteEarliest walks through the first member to arrive at the
	// rendezvous. Its wait for the late peers surfaces as a rendezvous
	// segment — the launch-lag pathology of §2.3.1 made visible.
	RouteEarliest = "earliest"
	// RouteBinding walks through the last member to arrive — the one
	// that actually gated the transfer. No rendezvous segment appears
	// (the binding member never waits); the path instead continues into
	// whatever made that member late.
	RouteBinding = "binding"
)

// Options configures the analysis.
type Options struct {
	// Routing selects the collective routing mode (default
	// RouteEarliest).
	Routing string
}

// Analyze runs the full analysis over a recorder's events. The
// recorder is read, never mutated.
func Analyze(rec *trace.Recorder, opts Options) *Report {
	if opts.Routing == "" {
		opts.Routing = RouteEarliest
	}
	makespan := simclock.Time(0)
	for _, sp := range rec.Spans() {
		if sp.End > makespan {
			makespan = sp.End
		}
	}
	return &Report{
		Makespan:     makespan,
		CriticalPath: criticalPath(rec, makespan, opts),
		Gaps:         attributeGaps(rec, makespan),
		Overlap:      overlapReport(rec),
	}
}

// recoveryIvs returns the normalized failover reconfiguration windows;
// a window still open at the end of the run extends to the makespan.
func recoveryIvs(rec *trace.Recorder, makespan simclock.Time) []iv {
	var ivs []iv
	for _, rw := range rec.RecoveryWindows() {
		end := rw.End
		if end < rw.Start {
			end = makespan
		}
		ivs = append(ivs, iv{rw.Start, end})
	}
	return normalize(ivs)
}
