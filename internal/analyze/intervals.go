package analyze

import (
	"sort"

	"liger/internal/simclock"
)

// iv is a half-open interval [s, e) of virtual time. The interval
// algebra below (normalize/intersect/subtract/total) is what both the
// gap attribution and the overlap report are built from.
type iv struct{ s, e simclock.Time }

// normalize sorts the intervals, drops empties and merges overlaps and
// adjacencies, returning a minimal sorted disjoint cover.
func normalize(in []iv) []iv {
	ivs := make([]iv, 0, len(in))
	for _, v := range in {
		if v.e > v.s {
			ivs = append(ivs, v)
		}
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].s != ivs[j].s {
			return ivs[i].s < ivs[j].s
		}
		return ivs[i].e < ivs[j].e
	})
	out := ivs[:0]
	for _, v := range ivs {
		if n := len(out); n > 0 && v.s <= out[n-1].e {
			if v.e > out[n-1].e {
				out[n-1].e = v.e
			}
			continue
		}
		out = append(out, v)
	}
	return out
}

// intersect returns a ∩ b; both inputs must be normalized.
func intersect(a, b []iv) []iv {
	var out []iv
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		s, e := a[i].s, a[i].e
		if b[j].s > s {
			s = b[j].s
		}
		if b[j].e < e {
			e = b[j].e
		}
		if e > s {
			out = append(out, iv{s, e})
		}
		if a[i].e < b[j].e {
			i++
		} else {
			j++
		}
	}
	return out
}

// subtract returns a \ b; both inputs must be normalized.
func subtract(a, b []iv) []iv {
	var out []iv
	j := 0
	for _, v := range a {
		s := v.s
		for j < len(b) && b[j].e <= s {
			j++
		}
		for k := j; k < len(b) && b[k].s < v.e; k++ {
			if b[k].s > s {
				out = append(out, iv{s, b[k].s})
			}
			if b[k].e > s {
				s = b[k].e
			}
			if s >= v.e {
				break
			}
		}
		if s < v.e {
			out = append(out, iv{s, v.e})
		}
	}
	return out
}

// total sums the lengths of a disjoint interval set.
func total(ivs []iv) simclock.Time {
	var t simclock.Time
	for _, v := range ivs {
		t += v.e - v.s
	}
	return t
}
