package analyze

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"

	"liger/internal/kvcache"
	"liger/internal/serve"
	"liger/internal/trace"
)

// Serving analysis: the continuous/disaggregated analogue of the
// critical-path report. Its core product is the per-request TTFT/TPOT
// decomposition — every request's latency is tiled exactly by labeled
// segments (queue, prefill, decode, handoff, preempt-wait, recompute,
// notify) whose boundaries are the recorded lifecycle instants, so the
// segments sum to the measured latency to the nanosecond. Around it:
// per-pool load attribution (busy-time imbalance across decode pools)
// and KV-pressure episodes (maximal windows where free blocks sat
// under the eviction watermark, with the preemptions they forced).

// Segment kinds of the per-request decomposition.
const (
	// SrvQueue: waiting for admission (batcher wait queue, or a decode
	// pool's admission queue after a disaggregated handoff).
	SrvQueue = "queue"
	// SrvPrefill: first prefill — submission to completion on one node,
	// or arrival to first-token notice across a disaggregated frontend
	// (routing latency included; the frontend cannot see inside).
	SrvPrefill = "prefill"
	// SrvDecode: live in a decode pool producing tokens.
	SrvDecode = "decode"
	// SrvHandoff: the prefill→decode KV transfer on the wire.
	SrvHandoff = "handoff"
	// SrvPreemptWait: evicted and re-queued, waiting to resume.
	SrvPreemptWait = "preempt_wait"
	// SrvRecompute: the resume prefill re-materializing an evicted cache.
	SrvRecompute = "recompute"
	// SrvNotify: decode-side completion to the frontend's finish notice
	// (one network latency; disaggregated runs only).
	SrvNotify = "notify"
)

// srvKinds fixes the presentation order of segment totals.
var srvKinds = []string{SrvQueue, SrvPrefill, SrvHandoff, SrvDecode, SrvPreemptWait, SrvRecompute, SrvNotify}

// ServingSegment is one labeled slice of a request's latency.
type ServingSegment struct {
	Kind    string `json:"kind"`
	StartNS int64  `json:"start_ns"`
	EndNS   int64  `json:"end_ns"`
}

// ServingRequest is one request's exact latency decomposition.
type ServingRequest struct {
	Seq          int   `json:"seq"`
	ArrivalNS    int64 `json:"arrival_ns"`
	FirstTokenNS int64 `json:"first_token_ns"`
	FinishNS     int64 `json:"finish_ns"`
	// TTFTNS = FirstTokenNS - ArrivalNS; TotalNS = FinishNS - ArrivalNS;
	// TPOTNS = (FinishNS - FirstTokenNS) / generated tokens.
	TTFTNS  int64 `json:"ttft_ns"`
	TPOTNS  int64 `json:"tpot_ns"`
	TotalNS int64 `json:"total_ns"`
	// Segments tile [ArrivalNS, FinishNS] exactly, in time order;
	// SegmentNS sums them by kind. The TTFT instant is always a segment
	// boundary, so segments left of it sum exactly to TTFTNS.
	Segments    []ServingSegment `json:"segments"`
	SegmentNS   map[string]int64 `json:"segment_ns"`
	Preemptions int              `json:"preemptions"`
}

// PoolLoad attributes serving work to one decode pool.
type PoolLoad struct {
	Pool       int     `json:"pool"`
	Iterations int     `json:"iterations"`
	Prefills   int     `json:"prefills"`
	BusyNS     int64   `json:"busy_ns"`
	MeanPool   float64 `json:"mean_pool"`
	// Share is this pool's fraction of fleet-wide busy time.
	Share float64 `json:"share"`
}

// PressureEpisode is one maximal window where a pool's paged allocator
// sat under its eviction watermark.
type PressureEpisode struct {
	Pool    int   `json:"pool"`
	StartNS int64 `json:"start_ns"`
	EndNS   int64 `json:"end_ns"`
	// MinFreeBlocks is the episode's low-water mark; Preemptions counts
	// evictions forced while it was open (closing eviction included).
	MinFreeBlocks int `json:"min_free_blocks"`
	Preemptions   int `json:"preemptions"`
}

// ServingReport is the full serving analysis.
type ServingReport struct {
	Requests []ServingRequest `json:"requests"`
	// SegmentNS totals every request's segments by kind.
	SegmentNS map[string]int64 `json:"segment_ns"`
	Pools     []PoolLoad       `json:"pools"`
	// Imbalance is max pool busy time over mean pool busy time (1.0 is
	// perfectly balanced; 0 with no pools).
	Imbalance float64           `json:"imbalance"`
	Episodes  []PressureEpisode `json:"episodes"`
	// Counters aggregates the remaining streams: preemptions,
	// recomputed_tokens, kv_admits/extends/releases, handoffs,
	// handoff_bytes, and router decision kinds (router_<kind>).
	Counters map[string]int64 `json:"counters"`
}

// AnalyzeServing builds the serving report from a recorder. The
// recorder is normalized first, so the report is a pure function of
// the simulation regardless of shard merge interleaving.
func AnalyzeServing(rec *trace.ServingRecorder) *ServingReport {
	rec.Normalize()
	rep := &ServingReport{
		SegmentNS: map[string]int64{},
		Counters:  map[string]int64{},
	}
	rep.Requests = servingRequests(rec)
	for _, r := range rep.Requests {
		for k, v := range r.SegmentNS {
			rep.SegmentNS[k] += v
		}
	}
	rep.Pools, rep.Imbalance = poolLoads(rec.Iterations())
	rep.Episodes = pressureEpisodes(rec.KVEvents())
	for _, e := range rec.KVEvents() {
		switch e.Kind {
		case kvcache.KVAdmit:
			rep.Counters["kv_admits"]++
		case kvcache.KVExtend:
			rep.Counters["kv_extends"]++
		case kvcache.KVRelease:
			rep.Counters["kv_releases"]++
		case kvcache.KVPreempt:
			rep.Counters["preemptions"]++
			rep.Counters["recomputed_tokens"] += int64(e.Tokens)
		}
	}
	for _, h := range rec.KVHandoffs() {
		rep.Counters["handoffs"]++
		rep.Counters["handoff_bytes"] += h.Bytes
	}
	for _, d := range rec.RouterDecisions() {
		rep.Counters["router_"+d.Kind]++
	}
	return rep
}

// servingRequests decomposes every sequence's lifecycle into labeled
// segments. The walk is driven by the closing event's kind:
//
//	prefill_start closes queue (preempt_wait after an eviction);
//	prefill_end closes prefill (recompute on a resume);
//	a non-first arrive closes handoff (the cache landed on a pool);
//	join closes queue (decode-pool admission wait);
//	preempt and a first finish close decode;
//	a second finish closes notify (the frontend's completion notice).
//
// Boundaries are the recorded instants themselves, so the segments of
// a request tile [arrival, finish] exactly by construction.
func servingRequests(rec *trace.ServingRecorder) []ServingRequest {
	bySeq := map[int][]serve.SeqEvent{}
	ids := []int{}
	for _, e := range rec.SeqEvents() {
		if _, ok := bySeq[e.Seq]; !ok {
			ids = append(ids, e.Seq)
		}
		bySeq[e.Seq] = append(bySeq[e.Seq], e)
	}
	sort.Ints(ids)
	var out []ServingRequest
	for _, id := range ids {
		evs := bySeq[id]
		r := ServingRequest{
			Seq:       id,
			ArrivalNS: int64(evs[0].At),
			SegmentNS: map[string]int64{},
		}
		resumed := false  // inside a preempt→recompute episode
		sawStart := false // a prefill_start was recorded
		finishes := 0
		genTokens := 0
		prevAt := evs[0].At
		for _, e := range evs[1:] {
			kind := ""
			switch e.Kind {
			case serve.SeqArrive:
				kind = SrvHandoff
			case serve.SeqPrefillStart:
				sawStart = true
				if resumed {
					kind = SrvPreemptWait
				} else {
					kind = SrvQueue
				}
			case serve.SeqPrefillEnd:
				if resumed && sawStart {
					kind = SrvRecompute
					resumed = false
				} else {
					kind = SrvPrefill
				}
				if r.FirstTokenNS == 0 && int64(e.At) > r.ArrivalNS {
					r.FirstTokenNS = int64(e.At)
				}
			case serve.SeqJoin:
				kind = SrvQueue
			case serve.SeqPreempt:
				kind = SrvDecode
				resumed = true
				r.Preemptions++
			case serve.SeqFinish:
				finishes++
				if finishes == 1 {
					kind = SrvDecode
				} else {
					kind = SrvNotify
				}
				genTokens = e.Tokens
				r.FinishNS = int64(e.At)
			}
			if kind != "" && e.At > prevAt {
				r.Segments = append(r.Segments, ServingSegment{
					Kind: kind, StartNS: int64(prevAt), EndNS: int64(e.At),
				})
				r.SegmentNS[kind] += int64(e.At - prevAt)
			}
			prevAt = e.At
		}
		if r.FirstTokenNS == 0 {
			r.FirstTokenNS = r.ArrivalNS
		}
		if r.FinishNS == 0 {
			r.FinishNS = int64(prevAt)
		}
		r.TTFTNS = r.FirstTokenNS - r.ArrivalNS
		r.TotalNS = r.FinishNS - r.ArrivalNS
		if genTokens > 0 {
			r.TPOTNS = (r.FinishNS - r.FirstTokenNS) / int64(genTokens)
		}
		out = append(out, r)
	}
	return out
}

// poolLoads aggregates iteration records per pool and derives the
// busy-time imbalance (max/mean).
func poolLoads(iters []serve.IterationRecord) ([]PoolLoad, float64) {
	byPool := map[int]*PoolLoad{}
	poolSum := map[int]int{}
	var ids []int
	for _, it := range iters {
		p := byPool[it.Pool]
		if p == nil {
			p = &PoolLoad{Pool: it.Pool}
			byPool[it.Pool] = p
			ids = append(ids, it.Pool)
		}
		if it.Prefill {
			p.Prefills++
		} else {
			p.Iterations++
			poolSum[it.Pool] += it.Batch
		}
		p.BusyNS += int64(it.End - it.Start)
	}
	sort.Ints(ids)
	var out []PoolLoad
	var total, max int64
	for _, id := range ids {
		p := byPool[id]
		if p.Iterations > 0 {
			p.MeanPool = float64(poolSum[id]) / float64(p.Iterations)
		}
		total += p.BusyNS
		if p.BusyNS > max {
			max = p.BusyNS
		}
	}
	imbalance := 0.0
	if total > 0 {
		imbalance = float64(max) * float64(len(ids)) / float64(total)
	}
	for _, id := range ids {
		p := byPool[id]
		if total > 0 {
			p.Share = float64(p.BusyNS) / float64(total)
		}
		out = append(out, *p)
	}
	return out, imbalance
}

// pressureEpisodes extracts maximal under-watermark windows per pool
// from the KV event stream (events arrive time-sorted per pool).
func pressureEpisodes(events []trace.PoolKVEvent) []PressureEpisode {
	open := map[int]*PressureEpisode{}
	var out []PressureEpisode
	var pools []int
	for _, e := range events {
		ep := open[e.Pool]
		if e.Pressure {
			if ep == nil {
				ep = &PressureEpisode{
					Pool: e.Pool, StartNS: int64(e.At), EndNS: int64(e.At),
					MinFreeBlocks: e.Free,
				}
				open[e.Pool] = ep
				pools = append(pools, e.Pool)
			}
			ep.EndNS = int64(e.At)
			if e.Free < ep.MinFreeBlocks {
				ep.MinFreeBlocks = e.Free
			}
			if e.Kind == kvcache.KVPreempt {
				ep.Preemptions++
			}
			continue
		}
		if ep != nil {
			// The transition back above the watermark closes the episode
			// (a closing eviction counts toward it).
			ep.EndNS = int64(e.At)
			if e.Kind == kvcache.KVPreempt {
				ep.Preemptions++
			}
			out = append(out, *ep)
			delete(open, e.Pool)
		}
	}
	for _, p := range pools {
		if ep := open[p]; ep != nil {
			out = append(out, *ep)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].StartNS != out[j].StartNS {
			return out[i].StartNS < out[j].StartNS
		}
		return out[i].Pool < out[j].Pool
	})
	return out
}

// WriteJSON writes the report as indented JSON; identical recorder
// contents produce identical bytes at any -parallel/-shards value.
func (r *ServingReport) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteText renders the human-readable serving report ligersim
// -serving-report prints: segment totals, the mean TTFT/TPOT
// decomposition, pool balance, and pressure episodes.
func (r *ServingReport) WriteText(w io.Writer) error {
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	var totalNS, ttftNS int64
	for _, q := range r.Requests {
		totalNS += q.TotalNS
		ttftNS += q.TTFTNS
	}
	fmt.Fprintf(w, "serving decomposition over %d requests:\n", len(r.Requests))
	if n := int64(len(r.Requests)); n > 0 {
		fmt.Fprintf(w, "  mean total %.3fms, mean ttft %.3fms\n", ms(totalNS/n), ms(ttftNS/n))
	}
	var segSum int64
	for _, k := range srvKinds {
		segSum += r.SegmentNS[k]
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  segment\ttotal\tshare")
	for _, k := range srvKinds {
		v := r.SegmentNS[k]
		if v == 0 {
			continue
		}
		share := 0.0
		if segSum > 0 {
			share = 100 * float64(v) / float64(segSum)
		}
		fmt.Fprintf(tw, "  %s\t%v\t%.1f%%\n", k, time.Duration(v), share)
	}
	tw.Flush()
	if len(r.Pools) > 0 {
		fmt.Fprintf(w, "pools (imbalance %.2f):\n", r.Imbalance)
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  pool\titers\tprefills\tbusy\tmean-pool\tshare")
		for _, p := range r.Pools {
			fmt.Fprintf(tw, "  %d\t%d\t%d\t%v\t%.2f\t%.1f%%\n",
				p.Pool, p.Iterations, p.Prefills, time.Duration(p.BusyNS), p.MeanPool, 100*p.Share)
		}
		tw.Flush()
	}
	fmt.Fprintf(w, "kv pressure: %d episode(s)\n", len(r.Episodes))
	for _, ep := range r.Episodes {
		fmt.Fprintf(w, "  pool %d: %v → %v, min free %d blocks, %d preemption(s)\n",
			ep.Pool, time.Duration(ep.StartNS), time.Duration(ep.EndNS), ep.MinFreeBlocks, ep.Preemptions)
	}
	if len(r.Counters) > 0 {
		keys := make([]string, 0, len(r.Counters))
		for k := range r.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprint(w, "counters:")
		for _, k := range keys {
			fmt.Fprintf(w, " %s=%d", k, r.Counters[k])
		}
		fmt.Fprintln(w)
	}
	return nil
}
