package analyze

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"liger/internal/simclock"
)

// Report bundles the three analysis products. It serializes
// byte-deterministically: struct field order is fixed, maps marshal
// with sorted keys, and every slice is sorted on a full key.
type Report struct {
	Makespan     simclock.Time
	CriticalPath CriticalPath
	Gaps         GapReport
	Overlap      OverlapReport
}

// WriteJSON writes the report as indented JSON. Identical recorder
// contents produce identical bytes, which CI relies on to diff
// analysis artifacts across parallel worker counts.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// segKinds fixes the presentation order of critical-path totals.
var segKinds = []string{SegCompute, SegComm, SegLaunch, SegRendezvous, SegDepWait, SegRecovery}

// gapCauses fixes the presentation order of the gap table columns.
var gapCauses = []string{GapLaunch, GapDependency, GapRendezvous, GapRecovery, GapFailed, GapNoWork}

// WriteText renders the human-readable explanation ligersim -explain
// prints: the critical-path decomposition with its top contributors,
// the per-device idle-gap table and the overlap-efficiency summary.
func (r *Report) WriteText(w io.Writer, topN int) error {
	if topN <= 0 {
		topN = 10
	}
	pct := func(t simclock.Time) float64 {
		if r.Makespan == 0 {
			return 0
		}
		return 100 * float64(t) / float64(r.Makespan)
	}
	fmt.Fprintf(w, "makespan: %v\n\n", r.Makespan)

	fmt.Fprintf(w, "critical path (%d segments):\n", len(r.CriticalPath.Segments))
	for _, kind := range segKinds {
		t := r.CriticalPath.Totals[kind]
		if t == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-12s %12v %6.1f%%\n", kind, t, pct(t))
	}
	fmt.Fprintf(w, "\ntop critical-path contributors:\n")
	n := topN
	if n > len(r.CriticalPath.Contributors) {
		n = len(r.CriticalPath.Contributors)
	}
	for i := 0; i < n; i++ {
		c := r.CriticalPath.Contributors[i]
		fmt.Fprintf(w, "  %2d. %-24s %-12s %12v  ×%d\n", i+1, c.Kernel, c.Kind, c.Time, c.Count)
	}

	fmt.Fprintf(w, "\nidle-gap attribution (per device):\n")
	fmt.Fprintf(w, "  %-6s", "device")
	for _, cause := range gapCauses {
		fmt.Fprintf(w, " %13s", cause)
	}
	fmt.Fprintln(w)
	perDev := map[int]map[string]simclock.Time{}
	var devs []int
	for _, g := range r.Gaps.Gaps {
		m := perDev[g.Device]
		if m == nil {
			m = map[string]simclock.Time{}
			perDev[g.Device] = m
			devs = append(devs, g.Device)
		}
		m[g.Cause] += g.End - g.Start
	}
	sort.Ints(devs)
	for _, d := range devs {
		fmt.Fprintf(w, "  gpu%-3d", d)
		for _, cause := range gapCauses {
			fmt.Fprintf(w, " %13v", perDev[d][cause])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  total idle: %v\n", r.Gaps.Idle)

	fmt.Fprintf(w, "\noverlap efficiency:\n")
	for _, d := range r.Overlap.Devices {
		share := 0.0
		if d.Comm > 0 {
			share = 100 * float64(d.Exposed) / float64(d.Comm)
		}
		fmt.Fprintf(w, "  gpu%-3d comm %12v  hidden %12v  exposed %12v (%5.1f%%)  stall %12v\n",
			d.Device, d.Comm, d.Hidden, d.Exposed, share, d.Stall)
	}
	_, err := fmt.Fprintf(w, "  total  comm %12v  hidden %12v  exposed %12v (%5.1f%% exposed)  stall %12v\n",
		r.Overlap.Comm, r.Overlap.Hidden, r.Overlap.Exposed, 100*r.Overlap.ExposedShare, r.Overlap.Stall)
	return err
}
