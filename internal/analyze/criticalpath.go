package analyze

import (
	"sort"

	"liger/internal/gpusim"
	"liger/internal/simclock"
	"liger/internal/trace"
)

// Segment kinds of the critical path.
const (
	// SegCompute / SegComm are kernel executions on the path.
	SegCompute = "compute"
	SegComm    = "comm"
	// SegLaunch is host→device launch overhead: the base delivery
	// latency plus any launch-queue serialization behind earlier
	// launches on the same connection.
	SegLaunch = "launch"
	// SegRendezvous is a collective member spinning on late peers
	// (holding SMs) before the group transfer starts.
	SegRendezvous = "rendezvous"
	// SegDepWait is host-side time between kernels: the scheduler
	// deciding, synchronizing or assembling the next launch.
	SegDepWait = "dep-wait"
	// SegRecovery is host-side time inside a failover reconfiguration
	// window.
	SegRecovery = "recovery"
)

// Segment is one piece of the critical path. Segments tile the run
// exactly: ascending, contiguous, from 0 to the makespan, so their
// durations sum to the end-to-end time.
type Segment struct {
	Kind   string
	Start  simclock.Time
	End    simclock.Time
	Device int    // -1 for host-side segments
	Kernel string // contributing kernel name; "" for host-side segments
	ID     int    // kernel id; -1 for host-side segments
}

// Contributor aggregates the path time one kernel name accounts for in
// one segment kind.
type Contributor struct {
	Kernel string
	Kind   string
	Time   simclock.Time
	Count  int
}

// CriticalPath is the longest dependency chain of the run, walked
// backward from the last-finishing kernel through the recorded
// dependency edges (program order, event waits, SM capacity, launch
// queues, collective membership).
type CriticalPath struct {
	Segments     []Segment
	Totals       map[string]simclock.Time
	Contributors []Contributor
}

func criticalPath(rec *trace.Recorder, makespan simclock.Time, opts Options) CriticalPath {
	cp := CriticalPath{Totals: map[string]simclock.Time{}}
	if makespan == 0 {
		return cp
	}
	spanByID := map[int]trace.Span{}
	var ends []trace.Span // id-carrying spans, sorted by (End, Device, ID)
	for _, sp := range rec.Spans() {
		if sp.ID >= 0 {
			spanByID[sp.ID] = sp
			ends = append(ends, sp)
		}
	}
	depByID := map[int]trace.Dep{}
	collMembers := map[int][]trace.Dep{}
	for _, d := range rec.Deps() {
		depByID[d.ID] = d
		if d.Coll >= 0 {
			collMembers[d.Coll] = append(collMembers[d.Coll], d)
		}
	}
	sort.SliceStable(ends, func(i, j int) bool {
		if ends[i].End != ends[j].End {
			return ends[i].End < ends[j].End
		}
		if ends[i].Device != ends[j].Device {
			return ends[i].Device < ends[j].Device
		}
		return ends[i].ID < ends[j].ID
	})
	recovery := recoveryIvs(rec, makespan)

	var segs []Segment // built in reverse time order, reversed at the end
	emit := func(kind string, s, e simclock.Time, dev int, kernel string, id int) {
		if e > s {
			segs = append(segs, Segment{Kind: kind, Start: s, End: e,
				Device: dev, Kernel: kernel, ID: id})
		}
	}
	// bridge fills a host-side gap [lo, hi): recovery-window time is
	// attributed to the failover, the rest to host dependency logic.
	bridge := func(lo, hi simclock.Time) {
		if hi <= lo {
			return
		}
		whole := []iv{{lo, hi}}
		type piece struct {
			v    iv
			kind string
		}
		var ps []piece
		for _, v := range intersect(whole, recovery) {
			ps = append(ps, piece{v, SegRecovery})
		}
		for _, v := range subtract(whole, recovery) {
			ps = append(ps, piece{v, SegDepWait})
		}
		sort.Slice(ps, func(i, j int) bool { return ps[i].v.s > ps[j].v.s })
		for _, p := range ps {
			emit(p.kind, p.v.s, p.v.e, -1, "", -1)
		}
	}

	visited := map[int]bool{}
	// hostBridge jumps to the latest unvisited span ending at or before
	// T, bridging the gap in between; ok is false when none remains.
	hostBridge := func(T simclock.Time) (trace.Span, simclock.Time, bool) {
		i := len(ends) - 1
		for i >= 0 && (ends[i].End > T || visited[ends[i].ID]) {
			i--
		}
		if i < 0 {
			return trace.Span{}, T, false
		}
		best := ends[i]
		for j := i - 1; j >= 0 && ends[j].End == best.End; j-- {
			if !visited[ends[j].ID] {
				best = ends[j] // ties resolve to the lowest (device, id)
			}
		}
		bridge(best.End, T)
		return best, best.End, true
	}

	if len(ends) == 0 {
		// Only legacy id-less spans: nothing to walk, but the report
		// still tiles the run.
		bridge(0, makespan)
	} else {
		// Start from the last-finishing span (ties: lowest device, id).
		cur := ends[len(ends)-1]
		for i := len(ends) - 2; i >= 0 && ends[i].End == cur.End; i-- {
			cur = ends[i]
		}
		T := cur.End
		ok := true
		for iter := 0; ok && T > 0 && iter <= len(ends)+1; iter++ {
			visited[cur.ID] = true
			d, hasDep := depByID[cur.ID]
			// Collective: all members end together; continue through the
			// member the routing mode selects.
			if cur.Coll >= 0 && hasDep {
				if m, found := routeMember(collMembers[cur.Coll], opts.Routing); found {
					if ms, has := spanByID[m.ID]; has && !visited[m.ID] && ms.End == T {
						cur, d = ms, m
						visited[m.ID] = true
					}
				}
			}
			kind := SegCompute
			if cur.Class == gpusim.Comm {
				kind = SegComm
			}
			if cur.Start < T {
				emit(kind, cur.Start, T, cur.Device, cur.Name, cur.ID)
				T = cur.Start
			}
			if !hasDep {
				// Cancelled before admission (zero-length truncated span):
				// no causal record to follow, bridge through the host.
				cur, T, ok = hostBridge(T)
				continue
			}
			if d.Admitted < T {
				// The member held its device from admission to the group's
				// transfer start, spinning on its peers.
				emit(SegRendezvous, d.Admitted, T, cur.Device, cur.Name, cur.ID)
				T = d.Admitted
			}
			// Backward from the admission instant: what released it?
			hop := -1
			if d.Admitted > d.HeadAt && d.AdmitPred >= 0 {
				hop = d.AdmitPred // blocked on SM capacity until this finish
			} else if d.HeadPred >= 0 &&
				(d.HeadCause == gpusim.CauseStream || d.HeadCause == gpusim.CauseEvent) {
				hop = d.HeadPred // released by a predecessor's completion
			}
			if hop >= 0 {
				if sp, has := spanByID[hop]; has && !visited[hop] && sp.End <= T {
					bridge(sp.End, T)
					cur, T = sp, sp.End
					continue
				}
				// Unusable hop (predecessor cancelled or revisited): fall
				// through to the launch/host path so the tiling never breaks.
			}
			// The kernel's own launch put it at the head: charge the
			// delivery (base latency + queue serialization) to launch
			// overhead and continue from the issue instant on the host.
			lo := d.Issued
			if lo > T {
				lo = T
			}
			if lo < T {
				emit(SegLaunch, lo, T, cur.Device, cur.Name, cur.ID)
				T = lo
			}
			cur, T, ok = hostBridge(T)
		}
		// Leading host time before the first issue on the path.
		bridge(0, T)
	}

	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	cp.Segments = segs
	type key struct{ kernel, kind string }
	agg := map[key]*Contributor{}
	var order []key
	for _, s := range segs {
		cp.Totals[s.Kind] += s.End - s.Start
		name := s.Kernel
		if name == "" {
			name = "(host)"
		}
		k := key{name, s.Kind}
		c := agg[k]
		if c == nil {
			c = &Contributor{Kernel: name, Kind: s.Kind}
			agg[k] = c
			order = append(order, k)
		}
		c.Time += s.End - s.Start
		c.Count++
	}
	for _, k := range order {
		cp.Contributors = append(cp.Contributors, *agg[k])
	}
	sort.SliceStable(cp.Contributors, func(i, j int) bool {
		a, b := cp.Contributors[i], cp.Contributors[j]
		if a.Time != b.Time {
			return a.Time > b.Time
		}
		if a.Kernel != b.Kernel {
			return a.Kernel < b.Kernel
		}
		return a.Kind < b.Kind
	})
	return cp
}

// routeMember picks the collective member the walk continues through.
func routeMember(members []trace.Dep, routing string) (trace.Dep, bool) {
	if len(members) == 0 {
		return trace.Dep{}, false
	}
	best := members[0]
	for _, m := range members[1:] {
		switch routing {
		case RouteBinding:
			if m.Admitted > best.Admitted ||
				(m.Admitted == best.Admitted && m.ID < best.ID) {
				best = m
			}
		default: // RouteEarliest
			if m.Admitted < best.Admitted ||
				(m.Admitted == best.Admitted && m.ID < best.ID) {
				best = m
			}
		}
	}
	return best, true
}
