package analyze

import (
	"sort"

	"liger/internal/gpusim"
	"liger/internal/simclock"
	"liger/internal/trace"
)

// DeviceOverlap measures one device's communication exposure. Comm
// occupancy counts transfer execution only: a member spinning on late
// peers is a stall, not communication, and hiding a spin under
// compute hides nothing — so rendezvous waits are reported separately
// as Stall and attributed by the gap report, never as hidden comm.
type DeviceOverlap struct {
	Device  int
	Compute simclock.Time // union of compute-kernel execution
	Comm    simclock.Time // union of comm-kernel (transfer) execution
	Hidden  simclock.Time // comm occupancy overlapped by compute
	Exposed simclock.Time // comm occupancy with no compute running
	Stall   simclock.Time // union of rendezvous wait time (§2.3.1 launch lag)
}

// OverlapReport generalizes Recorder.OverlapTime: per device and in
// total, how much communication ran hidden under computation versus
// exposed on the critical timeline. ExposedShare = Exposed / Comm is
// the ranking metric of the runtime comparison — Liger's interleaving
// exists to push it down (Fig. 9/10).
type OverlapReport struct {
	Devices      []DeviceOverlap
	Compute      simclock.Time
	Comm         simclock.Time
	Hidden       simclock.Time
	Exposed      simclock.Time
	Stall        simclock.Time
	ExposedShare float64
}

func overlapReport(rec *trace.Recorder) OverlapReport {
	compute := map[int][]iv{}
	comm := map[int][]iv{}
	stall := map[int][]iv{}
	devices := 0
	note := func(d int) {
		if d >= devices {
			devices = d + 1
		}
	}
	for _, sp := range rec.Spans() {
		note(sp.Device)
		if sp.Class == gpusim.Comm {
			comm[sp.Device] = append(comm[sp.Device], iv{sp.Start, sp.End})
		} else {
			compute[sp.Device] = append(compute[sp.Device], iv{sp.Start, sp.End})
		}
	}
	for _, w := range rec.Waits() {
		note(w.Device)
		stall[w.Device] = append(stall[w.Device], iv{w.Start, w.End})
	}
	var or OverlapReport
	for dev := 0; dev < devices; dev++ {
		cp := normalize(compute[dev])
		cm := normalize(comm[dev])
		d := DeviceOverlap{
			Device:  dev,
			Compute: total(cp),
			Comm:    total(cm),
			Hidden:  total(intersect(cm, cp)),
			Stall:   total(normalize(stall[dev])),
		}
		d.Exposed = d.Comm - d.Hidden
		or.Devices = append(or.Devices, d)
		or.Compute += d.Compute
		or.Comm += d.Comm
		or.Hidden += d.Hidden
		or.Exposed += d.Exposed
		or.Stall += d.Stall
	}
	sort.Slice(or.Devices, func(i, j int) bool { return or.Devices[i].Device < or.Devices[j].Device })
	if or.Comm > 0 {
		or.ExposedShare = float64(or.Exposed) / float64(or.Comm)
	}
	return or
}
