package plot

import (
	"strings"
	"testing"
)

func demoChart() Chart {
	return Chart{
		Title:  "latency vs rate",
		XLabel: "rate (batch/s)",
		YLabel: "latency (ms)",
		Series: []Series{
			{Name: "Liger", X: []float64{1, 2, 3}, Y: []float64{10, 12, 30}},
			{Name: "Intra-Op", X: []float64{1, 2, 3}, Y: []float64{10, 25, 90}},
		},
		VLineX: 2.5,
	}
}

func TestWriteSVGWellFormed(t *testing.T) {
	var sb strings.Builder
	if err := demoChart().WriteSVG(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"<svg", "</svg>", "polyline", "latency vs rate", "Liger", "Intra-Op", "stroke-dasharray"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	if strings.Count(out, "<polyline") != 2 {
		t.Fatalf("%d polylines, want 2", strings.Count(out, "<polyline"))
	}
}

func TestWriteSVGEscapesLabels(t *testing.T) {
	c := demoChart()
	c.Title = "a < b & c"
	var sb strings.Builder
	if err := c.WriteSVG(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "a &lt; b &amp; c") {
		t.Fatal("labels not escaped")
	}
}

func TestWriteSVGEmptySeries(t *testing.T) {
	var sb strings.Builder
	c := Chart{Title: "empty"}
	if err := c.WriteSVG(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "</svg>") {
		t.Fatal("empty chart did not render")
	}
}

func TestWriteSVGDegenerateRanges(t *testing.T) {
	c := Chart{
		Series: []Series{{Name: "flat", X: []float64{5, 5}, Y: []float64{3, 3}}},
	}
	var sb strings.Builder
	if err := c.WriteSVG(&sb); err != nil {
		t.Fatal(err)
	}
	// No NaN coordinates may leak into the output.
	if strings.Contains(sb.String(), "NaN") {
		t.Fatal("NaN coordinates in SVG")
	}
}
