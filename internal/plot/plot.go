// Package plot renders simple SVG line charts from experiment sweeps,
// so the benchmark harness can regenerate the paper's figures as
// images, not only as tables. Pure stdlib; the output opens in any
// browser.
package plot

import (
	"fmt"
	"io"
	"math"
)

// Series is one line on a chart.
type Series struct {
	Name string
	X, Y []float64
}

// Chart is a single-axis line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Width and Height in pixels; zero values get defaults.
	Width, Height int
	// VLineX draws a vertical marker (the paper's red line); NaN or 0
	// disables it.
	VLineX float64
}

var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b"}

const margin = 56.0

// WriteSVG renders the chart.
func (c Chart) WriteSVG(w io.Writer) error {
	width, height := float64(c.Width), float64(c.Height)
	if width <= 0 {
		width = 560
	}
	if height <= 0 {
		height = 360
	}
	minX, maxX, minY, maxY := bounds(c.Series)
	if c.VLineX > 0 {
		if c.VLineX < minX {
			minX = c.VLineX
		}
		if c.VLineX > maxX {
			maxX = c.VLineX
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	minY = 0 // charts here are latencies/throughputs: anchor at zero

	sx := func(x float64) float64 { return margin + (x-minX)/(maxX-minX)*(width-2*margin) }
	sy := func(y float64) float64 { return height - margin - (y-minY)/(maxY-minY)*(height-2*margin) }

	p := &errWriter{w: w}
	p.printf(`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" font-family="sans-serif" font-size="11">`+"\n", width, height)
	p.printf(`<rect width="100%%" height="100%%" fill="white"/>`)
	p.printf(`<text x="%.0f" y="18" text-anchor="middle" font-size="13">%s</text>`+"\n", width/2, esc(c.Title))

	// Axes.
	p.printf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n", margin, height-margin, width-margin, height-margin)
	p.printf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n", margin, margin/2+10, margin, height-margin)
	p.printf(`<text x="%.0f" y="%.0f" text-anchor="middle">%s</text>`+"\n", width/2, height-12, esc(c.XLabel))
	p.printf(`<text x="14" y="%.0f" text-anchor="middle" transform="rotate(-90 14 %.0f)">%s</text>`+"\n", height/2, height/2, esc(c.YLabel))

	// Ticks.
	for i := 0; i <= 4; i++ {
		fx := minX + (maxX-minX)*float64(i)/4
		fy := minY + (maxY-minY)*float64(i)/4
		p.printf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n", sx(fx), height-margin, sx(fx), height-margin+4)
		p.printf(`<text x="%.1f" y="%.1f" text-anchor="middle">%s</text>`+"\n", sx(fx), height-margin+16, fmtTick(fx))
		p.printf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n", margin-4, sy(fy), margin, sy(fy))
		p.printf(`<text x="%.1f" y="%.1f" text-anchor="end">%s</text>`+"\n", margin-7, sy(fy)+4, fmtTick(fy))
		p.printf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#e0e0e0"/>`+"\n", margin, sy(fy), width-margin, sy(fy))
	}

	// Red line marker.
	if c.VLineX > 0 && !math.IsNaN(c.VLineX) {
		p.printf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="red" stroke-dasharray="5,4"/>`+"\n",
			sx(c.VLineX), margin/2+10, sx(c.VLineX), height-margin)
	}

	// Series.
	for i, s := range c.Series {
		color := palette[i%len(palette)]
		pts := ""
		for j := range s.X {
			pts += fmt.Sprintf("%.1f,%.1f ", sx(s.X[j]), sy(s.Y[j]))
		}
		p.printf(`<polyline fill="none" stroke="%s" stroke-width="1.8" points="%s"/>`+"\n", color, pts)
		for j := range s.X {
			p.printf(`<circle cx="%.1f" cy="%.1f" r="2.4" fill="%s"/>`+"\n", sx(s.X[j]), sy(s.Y[j]), color)
		}
		// Legend.
		lx, ly := width-margin-120, margin/2+14+float64(i)*15
		p.printf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2"/>`+"\n", lx, ly, lx+18, ly, color)
		p.printf(`<text x="%.1f" y="%.1f">%s</text>`+"\n", lx+23, ly+4, esc(s.Name))
	}
	p.printf("</svg>\n")
	return p.err
}

func bounds(series []Series) (minX, maxX, minY, maxY float64) {
	minX, minY = math.Inf(1), math.Inf(1)
	maxX, maxY = math.Inf(-1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return 0, 1, 0, 1
	}
	return minX, maxX, minY, maxY
}

func fmtTick(v float64) string {
	switch {
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func esc(s string) string {
	out := ""
	for _, r := range s {
		switch r {
		case '<':
			out += "&lt;"
		case '>':
			out += "&gt;"
		case '&':
			out += "&amp;"
		default:
			out += string(r)
		}
	}
	return out
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...interface{}) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
