package tune

import (
	"strings"
	"testing"

	"liger/internal/core"
	"liger/internal/hw"
	"liger/internal/model"
)

func fastCfg() Config {
	cfg := DefaultConfig(hw.A100Node(), model.OPT30B().WithLayers(8))
	cfg.Batches = 40
	cfg.Points = 5
	return cfg
}

func TestRunFindsSaturations(t *testing.T) {
	rep, err := Run(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if rep.IntraSat <= 0 || rep.LigerSat <= 0 || rep.InterSat <= 0 {
		t.Fatalf("missing saturation: %+v", rep)
	}
	// On the PCIe node Liger must out-saturate Intra-Op; the pure
	// pipeline out-saturates both (it gives up latency for it).
	if rep.LigerSat <= rep.IntraSat {
		t.Fatalf("Liger saturation %.2f not above Intra-Op %.2f", rep.LigerSat, rep.IntraSat)
	}
	if rep.InterSat <= rep.IntraSat {
		t.Fatalf("Inter-Op saturation %.2f not above Intra-Op %.2f", rep.InterSat, rep.IntraSat)
	}
}

func TestRunFindsAdvantageWindow(t *testing.T) {
	rep, err := Run(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.HasWindow() {
		t.Fatalf("no advantage window found: %s", rep)
	}
	// The window must sit between Intra-Op's comfort zone and Liger's
	// saturation.
	if rep.AdvantageHi > 1.05*rep.LigerSat {
		t.Fatalf("window upper bound %.2f above Liger saturation %.2f", rep.AdvantageHi, rep.LigerSat)
	}
	if rep.AdvantageLo <= 0 {
		t.Fatalf("degenerate window lower bound: %s", rep)
	}
}

func TestSweepShapes(t *testing.T) {
	cfg := fastCfg()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []core.RuntimeKind{core.KindLiger, core.KindIntraOp, core.KindInterOp} {
		pts := rep.Sweep[kind]
		if len(pts) != cfg.Points {
			t.Fatalf("%v has %d probe points, want %d", kind, len(pts), cfg.Points)
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Rate <= pts[i-1].Rate {
				t.Fatalf("%v rates not increasing", kind)
			}
			if pts[i].Latency < pts[i-1].Latency/2 {
				t.Fatalf("%v latency implausibly dropped with load", kind)
			}
		}
	}
}

func TestReportString(t *testing.T) {
	rep := Report{LigerSat: 10, IntraSat: 8, InterSat: 12, AdvantageLo: 8, AdvantageHi: 10}
	s := rep.String()
	if !strings.Contains(s, "advantage window") {
		t.Fatalf("summary %q missing window", s)
	}
	none := Report{LigerSat: 10, IntraSat: 8, InterSat: 12}
	if !strings.Contains(none.String(), "no strict advantage window") {
		t.Fatalf("summary %q missing no-window note", none.String())
	}
}

func TestConfigClamps(t *testing.T) {
	cfg := fastCfg()
	cfg.Points = 1
	cfg.Batches = 1
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sweep[core.KindLiger]) < 3 {
		t.Fatal("Points not clamped to a usable minimum")
	}
}
