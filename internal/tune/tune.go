// Package tune finds the operating envelope of a deployment — the
// paper's Appendix D notes that "since nodes vary in computation and
// communication ability, it is necessary to specify the arrival rate
// for your node and there exists an arrival rate range where Liger
// performs better than both intra- and inter-operator parallelism
// approaches". This package measures that range by simulation: it
// locates each runtime's saturation throughput and sweeps the rate axis
// for the window where Liger wins on both latency and throughput.
package tune

import (
	"fmt"
	"time"

	"liger/internal/core"
	"liger/internal/hw"
	"liger/internal/model"
	"liger/internal/serve"
)

// Config bounds the search.
type Config struct {
	Node  hw.Node
	Model model.Spec
	// BatchSize and sequence range shape the trace (paper defaults).
	BatchSize      int
	MinSeq, MaxSeq int
	// Batches per probe point; more is slower but steadier.
	Batches int
	// Points is the resolution of the rate sweep.
	Points int
	Seed   int64
}

// DefaultConfig returns a reasonable search setup.
func DefaultConfig(node hw.Node, spec model.Spec) Config {
	return Config{
		Node: node, Model: spec,
		BatchSize: 2, MinSeq: 16, MaxSeq: 128,
		Batches: 100, Points: 9, Seed: 1,
	}
}

// Probe is one measured operating point.
type Probe struct {
	Rate       float64
	Latency    time.Duration
	Throughput float64
}

// Report is the tuner's output.
type Report struct {
	// Saturation throughput per runtime (batches/s).
	LigerSat, IntraSat, InterSat float64
	// AdvantageLo/Hi bound the arrival-rate window in which Liger's
	// average latency beats both baselines while sustaining the offered
	// rate. Zero window means no measured advantage region.
	AdvantageLo, AdvantageHi float64
	// Sweep holds the probe points per runtime.
	Sweep map[core.RuntimeKind][]Probe
}

// HasWindow reports whether an advantage window was found.
func (r Report) HasWindow() bool { return r.AdvantageHi > r.AdvantageLo }

// String renders a one-paragraph summary.
func (r Report) String() string {
	s := fmt.Sprintf("saturation: Liger %.2f, Intra-Op %.2f, Inter-Op %.2f batches/s",
		r.LigerSat, r.IntraSat, r.InterSat)
	if r.HasWindow() {
		s += fmt.Sprintf("; Liger advantage window: %.2f–%.2f batches/s", r.AdvantageLo, r.AdvantageHi)
	} else {
		s += "; no strict advantage window found"
	}
	return s
}

// measure serves one probe point.
func measure(cfg Config, kind core.RuntimeKind, rate float64) (Probe, error) {
	eng, err := core.NewEngine(core.Options{Node: cfg.Node, Model: cfg.Model, Runtime: kind})
	if err != nil {
		return Probe{}, err
	}
	tr, err := serve.Generate(serve.TraceConfig{
		Batches: cfg.Batches, BatchSize: cfg.BatchSize, RatePerSec: rate,
		MinSeq: cfg.MinSeq, MaxSeq: cfg.MaxSeq, Seed: cfg.Seed,
	})
	if err != nil {
		return Probe{}, err
	}
	res, err := eng.Serve(tr)
	if err != nil {
		return Probe{}, err
	}
	return Probe{Rate: rate, Latency: res.AvgLatency, Throughput: res.ThroughputBatches()}, nil
}

// saturation probes a runtime at a rate far beyond capacity.
func saturation(cfg Config, kind core.RuntimeKind, overload float64) (float64, error) {
	p, err := measure(cfg, kind, overload)
	if err != nil {
		return 0, err
	}
	return p.Throughput, nil
}

// Run executes the search.
func Run(cfg Config) (Report, error) {
	if cfg.Points < 3 {
		cfg.Points = 3
	}
	if cfg.Batches < 10 {
		cfg.Batches = 10
	}
	rep := Report{Sweep: map[core.RuntimeKind][]Probe{}}

	// Rough capacity estimate to size the overload probe: serve a burst
	// and take the throughput.
	warm, err := measure(cfg, core.KindIntraOp, 1e6)
	if err != nil {
		return rep, err
	}
	overload := 3 * warm.Throughput

	if rep.IntraSat, err = saturation(cfg, core.KindIntraOp, overload); err != nil {
		return rep, err
	}
	if rep.LigerSat, err = saturation(cfg, core.KindLiger, overload); err != nil {
		return rep, err
	}
	if rep.InterSat, err = saturation(cfg, core.KindInterOp, overload); err != nil {
		return rep, err
	}

	// Sweep from well below intra saturation to just past Liger's.
	lo := 0.3 * rep.IntraSat
	hi := 1.05 * rep.LigerSat
	kinds := []core.RuntimeKind{core.KindLiger, core.KindIntraOp, core.KindInterOp}
	for i := 0; i < cfg.Points; i++ {
		rate := lo + (hi-lo)*float64(i)/float64(cfg.Points-1)
		for _, k := range kinds {
			p, err := measure(cfg, k, rate)
			if err != nil {
				return rep, err
			}
			rep.Sweep[k] = append(rep.Sweep[k], p)
		}
	}

	// The advantage window: rates where Liger keeps up with the offered
	// load (throughput ≥ 97% of rate) and has the lowest average latency
	// of the three runtimes.
	inWindow := func(i int) bool {
		lg := rep.Sweep[core.KindLiger][i]
		if lg.Throughput < 0.97*lg.Rate {
			return false
		}
		for _, k := range kinds[1:] {
			if rep.Sweep[k][i].Latency <= lg.Latency {
				return false
			}
		}
		return true
	}
	for i := 0; i < cfg.Points; i++ {
		if inWindow(i) {
			if rep.AdvantageLo == 0 {
				rep.AdvantageLo = rep.Sweep[core.KindLiger][i].Rate
			}
			rep.AdvantageHi = rep.Sweep[core.KindLiger][i].Rate
		}
	}
	return rep, nil
}
