package core

import (
	"testing"
	"time"

	"liger/internal/hw"
	"liger/internal/liger"
	"liger/internal/model"
	"liger/internal/nccl"
	"liger/internal/serve"
)

func smallTrace(t *testing.T, batches int, rate float64) []serve.Arrival {
	t.Helper()
	tr, err := serve.Generate(serve.TraceConfig{
		Batches: batches, BatchSize: 2, RatePerSec: rate,
		MinSeq: 16, MaxSeq: 64, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestEngineAllKinds(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			eng, err := NewEngine(Options{Node: hw.V100Node(), Model: model.Tiny(), Runtime: kind})
			if err != nil {
				t.Fatal(err)
			}
			if eng.Kind() != kind {
				t.Fatalf("Kind = %v", eng.Kind())
			}
			res, err := eng.Serve(smallTrace(t, 10, 1000))
			if err != nil {
				t.Fatal(err)
			}
			if res.Completed != 10 {
				t.Fatalf("completed %d", res.Completed)
			}
			if res.Runtime != kind.String() {
				t.Fatalf("runtime name %q", res.Runtime)
			}
			if res.AvgLatency <= 0 || res.Makespan <= 0 {
				t.Fatalf("degenerate metrics %+v", res)
			}
		})
	}
}

func TestKindByName(t *testing.T) {
	for _, k := range Kinds() {
		got, err := KindByName(k.String())
		if err != nil || got != k {
			t.Fatalf("KindByName(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := KindByName("Mega-Op"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestEngineValidation(t *testing.T) {
	badNode := hw.V100Node()
	badNode.NumGPUs = 0
	if _, err := NewEngine(Options{Node: badNode, Model: model.Tiny()}); err == nil {
		t.Fatal("invalid node accepted")
	}
	if _, err := NewEngine(Options{Node: hw.V100Node(), Model: model.Spec{Name: "x"}}); err == nil {
		t.Fatal("invalid model accepted")
	}
	if _, err := NewEngine(Options{Node: hw.V100Node(), Model: model.Tiny(), Runtime: RuntimeKind(99)}); err == nil {
		t.Fatal("unknown runtime accepted")
	}
	badLiger := liger.DefaultConfig("v100")
	badLiger.ContentionFactor = 0.5
	if _, err := NewEngine(Options{Node: hw.V100Node(), Model: model.Tiny(), Runtime: KindLiger,
		Liger: badLiger, LigerSet: true}); err == nil {
		t.Fatal("invalid liger config accepted")
	}
}

func TestEngineCustomLigerConfig(t *testing.T) {
	cfg := liger.DefaultConfig("v100")
	cfg.DivisionFactor = 4
	cfg.Sync = liger.CPUGPU
	eng, err := NewEngine(Options{Node: hw.V100Node(), Model: model.Tiny(), Runtime: KindLiger,
		Liger: cfg, LigerSet: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Serve(smallTrace(t, 5, 1000)); err != nil {
		t.Fatal(err)
	}
}

func TestEngineNCCLOverride(t *testing.T) {
	eng, err := NewEngine(Options{Node: hw.A100Node(), Model: model.Tiny(), Runtime: KindLiger,
		NCCL: nccl.Config{ReducedChannels: false}, NCCLSet: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Serve(smallTrace(t, 5, 1000)); err != nil {
		t.Fatal(err)
	}
}

func TestEngineAccessors(t *testing.T) {
	eng, err := NewEngine(Options{Node: hw.V100Node(), Model: model.Tiny(), Runtime: KindIntraOp})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Clock() == nil || eng.SimNode() == nil || eng.Compiler() == nil || eng.Runtime() == nil {
		t.Fatal("nil accessor")
	}
	if eng.SimNode().NumDevices() != 4 {
		t.Fatalf("devices = %d", eng.SimNode().NumDevices())
	}
}

func TestLigerBeatsIntraOpUnderLoad(t *testing.T) {
	// The headline behaviour as an integration test: at a rate beyond
	// intra-op's capacity, Liger sustains higher throughput with lower
	// latency.
	spec := model.OPT30B().WithLayers(8) // keep the test fast
	run := func(kind RuntimeKind) serve.Result {
		eng, err := NewEngine(Options{Node: hw.A100Node(), Model: spec, Runtime: kind})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Serve(smallTrace(t, 60, 300))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	lg := run(KindLiger)
	intra := run(KindIntraOp)
	if lg.ThroughputBatches() <= intra.ThroughputBatches() {
		t.Fatalf("Liger throughput %.2f not above intra-op %.2f",
			lg.ThroughputBatches(), intra.ThroughputBatches())
	}
	if lg.AvgLatency >= intra.AvgLatency {
		t.Fatalf("Liger latency %v not below intra-op %v under overload", lg.AvgLatency, intra.AvgLatency)
	}
}

func TestDeterministicServing(t *testing.T) {
	run := func() time.Duration {
		eng, err := NewEngine(Options{Node: hw.V100Node(), Model: model.Tiny(), Runtime: KindLiger})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Serve(smallTrace(t, 20, 2000))
		if err != nil {
			t.Fatal(err)
		}
		return res.AvgLatency
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}
