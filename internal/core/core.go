// Package core is the public façade of the Liger reproduction: it wires
// a simulated multi-GPU node, a model, and one of the four runtimes
// (Liger, Intra-Op, Inter-Op, Inter-Th) into an Engine that serves a
// request trace and reports the paper's metrics.
//
// Typical use:
//
//	eng, _ := core.NewEngine(core.Options{
//	    Node:    hw.V100Node(),
//	    Model:   model.OPT30B(),
//	    Runtime: core.KindLiger,
//	})
//	trace, _ := serve.Generate(serve.TraceConfig{ ... })
//	res, _ := eng.Serve(trace)
package core

import (
	"fmt"

	"liger/internal/faults"
	"liger/internal/gpusim"
	"liger/internal/hw"
	"liger/internal/liger"
	"liger/internal/model"
	"liger/internal/nccl"
	"liger/internal/parallel"
	"liger/internal/runtimes"
	"liger/internal/serve"
	"liger/internal/simclock"
)

// RuntimeKind selects the execution engine.
type RuntimeKind int

const (
	// KindLiger runs the interleaved-parallelism scheduler (§3).
	KindLiger RuntimeKind = iota
	// KindIntraOp runs the Megatron-style tensor-parallel baseline.
	KindIntraOp
	// KindInterOp runs the pipeline baseline.
	KindInterOp
	// KindInterTh runs the theoretical pipeline baseline built from
	// partitioned kernels.
	KindInterTh
)

// String implements fmt.Stringer.
func (k RuntimeKind) String() string {
	switch k {
	case KindLiger:
		return "Liger"
	case KindIntraOp:
		return "Intra-Op"
	case KindInterOp:
		return "Inter-Op"
	case KindInterTh:
		return "Inter-Th"
	default:
		return fmt.Sprintf("RuntimeKind(%d)", int(k))
	}
}

// Kinds returns every runtime in the paper's presentation order.
func Kinds() []RuntimeKind { return []RuntimeKind{KindLiger, KindIntraOp, KindInterOp, KindInterTh} }

// KindByName parses a runtime name.
func KindByName(name string) (RuntimeKind, error) {
	for _, k := range Kinds() {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("core: unknown runtime %q", name)
}

// Options configures an Engine.
type Options struct {
	// Node is the hardware to simulate (hw.V100Node(), hw.A100Node(),
	// or a custom spec).
	Node hw.Node
	// Model is the transformer to serve.
	Model model.Spec
	// Runtime selects the execution engine.
	Runtime RuntimeKind
	// Liger tunes the scheduler; the zero value means
	// liger.DefaultConfig for the node (contention factor 1.1 on the
	// V100 node, 1.15 otherwise, division factor 8, hybrid sync).
	Liger liger.Config
	// LigerSet marks Liger as explicitly configured (so a deliberate
	// zero-ish config is honored).
	LigerSet bool
	// NCCL overrides the communication-kernel footprint. By default the
	// Liger runtime trims channels (§3.5) and the baselines keep NCCL
	// defaults.
	NCCL    nccl.Config
	NCCLSet bool
	// IgnoreMemory skips the placement check. By default NewEngine
	// refuses configurations whose per-device weight + workspace
	// footprint exceeds device memory — the constraint behind the
	// paper's testbed assignment (§4.2: only OPT-30B fits the 16 GB
	// V100 node).
	IgnoreMemory bool
	// Tracer, if non-nil, receives every kernel start/end.
	Tracer gpusim.Tracer
	// Faults, if non-nil, is a deterministic fault schedule injected
	// into the simulated node as timed events before serving starts
	// (see internal/faults): device slowdowns, link degradation windows,
	// collective stalls, and device drops, plus the collective watchdog
	// timeout.
	Faults *faults.Schedule
	// CompilerOptions customize kernel compilation (e.g. the GEMM
	// decomposition strategy ablation).
	CompilerOptions []parallel.Option
	// Shards, when > 1, requests lookahead-sharded parallel execution of
	// this run's event set. The request is honored only if
	// gpusim.PlanShards finds a sound partition with a positive
	// lookahead; for today's single-node models the plan collapses to
	// one domain (the intra-node couplings have zero latency — see
	// internal/gpusim/shards.go) and the engine falls back to the plain
	// sequential queue, so results are byte-identical at any Shards
	// setting. ShardPlan() reports what the analysis decided.
	Shards int
	// Clock, when non-nil, is the simulation engine to build on instead
	// of a fresh one. The fleet layer (internal/cluster) uses it to give
	// each node of a cluster its own shard engine of one
	// simclock.Sharded executor; the caller then drives the executor
	// itself instead of Engine.Serve.
	Clock *simclock.Engine
}

// Engine is a ready-to-serve simulation instance.
type Engine struct {
	eng      *simclock.Engine
	node     *gpusim.Node
	compiler *parallel.Compiler
	rt       runtimes.Runtime
	kind     RuntimeKind
	plan     gpusim.ShardPlan
	shards   int
}

// NewEngine validates the options and builds the simulation.
func NewEngine(opts Options) (*Engine, error) {
	if err := opts.Node.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Model.Validate(); err != nil {
		return nil, err
	}
	if !opts.IgnoreMemory {
		// Bound the workspace by the paper's largest general-task batch
		// shape (batch 8, seq 128) or the generative batch (32 tokens).
		if err := parallel.CheckPlacement(opts.Node, opts.Model, 8, 128, 0, 0); err != nil {
			return nil, err
		}
	}
	ncclCfg := opts.NCCL
	if !opts.NCCLSet {
		ncclCfg = nccl.Config{ReducedChannels: opts.Runtime == KindLiger}
	}
	eng := opts.Clock
	if eng == nil {
		eng = simclock.New()
	}
	node, err := gpusim.New(eng, opts.Node)
	if err != nil {
		return nil, err
	}
	if opts.Tracer != nil {
		node.SetTracer(opts.Tracer)
	}
	if opts.Faults != nil {
		if err := faults.Inject(node, *opts.Faults); err != nil {
			return nil, err
		}
	}
	compiler := parallel.NewCompiler(opts.Node, ncclCfg, opts.CompilerOptions...)

	var rt runtimes.Runtime
	switch opts.Runtime {
	case KindLiger:
		cfg := opts.Liger
		if !opts.LigerSet {
			cfg = liger.DefaultConfig(opts.Node.Name)
		}
		rt, err = runtimes.NewLiger(node, compiler, opts.Model, cfg)
	case KindIntraOp:
		rt, err = runtimes.NewIntraOp(node, compiler, opts.Model)
	case KindInterOp:
		rt, err = runtimes.NewInterOp(node, compiler, opts.Model, false)
	case KindInterTh:
		rt, err = runtimes.NewInterOp(node, compiler, opts.Model, true)
	default:
		return nil, fmt.Errorf("core: unknown runtime kind %d", opts.Runtime)
	}
	if err != nil {
		return nil, err
	}
	return &Engine{eng: eng, node: node, compiler: compiler, rt: rt,
		kind: opts.Runtime, plan: gpusim.PlanShards(opts.Node), shards: opts.Shards}, nil
}

// Serve runs the arrival trace to completion and returns the metrics.
// An Engine is single-shot: build a fresh one per run.
func (e *Engine) Serve(trace []serve.Arrival) (serve.Result, error) {
	return serve.Run(e.eng, e.rt, trace)
}

// ServePolicy runs the arrival trace under a deadline/retry policy:
// failed batches (aborted collectives under fault injection) are
// resubmitted with capped exponential backoff, and the result carries
// goodput and SLO accounting. An Engine is single-shot: build a fresh
// one per run.
func (e *Engine) ServePolicy(trace []serve.Arrival, pol serve.Policy) (serve.Result, error) {
	return serve.RunPolicy(e.eng, e.rt, trace, pol)
}

// Clock returns the simulation engine (for custom event scheduling).
func (e *Engine) Clock() *simclock.Engine { return e.eng }

// SimNode returns the simulated node (for utilization stats).
func (e *Engine) SimNode() *gpusim.Node { return e.node }

// Compiler returns the kernel compiler used by the runtime.
func (e *Engine) Compiler() *parallel.Compiler { return e.compiler }

// Runtime returns the underlying runtime.
func (e *Engine) Runtime() runtimes.Runtime { return e.rt }

// Kind returns the configured runtime kind.
func (e *Engine) Kind() RuntimeKind { return e.kind }

// ShardPlan returns the lookahead-partition analysis for this engine's
// hardware: how many conservatively-synchronized shards the model
// admits and why. When the plan is not parallelizable (Domains == 1 —
// the case for every single-node spec today), a Shards request in
// Options falls back to the plain sequential engine and the plan's
// Couplings name the zero-latency interactions responsible.
func (e *Engine) ShardPlan() gpusim.ShardPlan { return e.plan }

// ShardsRequested returns the Options.Shards value, for surfacing the
// fallback decision in CLI diagnostics.
func (e *Engine) ShardsRequested() int { return e.shards }
