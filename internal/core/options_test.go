package core

import (
	"testing"

	"liger/internal/gpusim"
	"liger/internal/hw"
	"liger/internal/model"
	"liger/internal/parallel"
	"liger/internal/simclock"
	"liger/internal/trace"
)

func TestTracerOptionWired(t *testing.T) {
	rec := trace.NewRecorder()
	eng, err := NewEngine(Options{Node: hw.V100Node(), Model: model.Tiny(), Runtime: KindLiger, Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Serve(smallTrace(t, 5, 1000)); err != nil {
		t.Fatal(err)
	}
	if len(rec.Spans()) == 0 {
		t.Fatal("tracer saw no kernels")
	}
}

func TestCompilerOptionsWired(t *testing.T) {
	eng, err := NewEngine(Options{
		Node: hw.V100Node(), Model: model.Tiny(), Runtime: KindLiger,
		CompilerOptions: []parallel.Option{parallel.WithGEMMSplit(parallel.SplitHorizontal)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Serve(smallTrace(t, 5, 1000)); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryCheckRejectsOversizedModels(t *testing.T) {
	// GLM-130B does not fit the V100 node (§4.2): NewEngine must refuse.
	if _, err := NewEngine(Options{Node: hw.V100Node(), Model: model.GLM130B(), Runtime: KindLiger}); err == nil {
		t.Fatal("GLM-130B on V100 accepted")
	}
	// A model at the margin: weights physically fit but the conservative
	// static check (weights + worst-case workspace + safety) refuses.
	edge := model.OPT30B().WithLayers(50)
	if _, err := NewEngine(Options{Node: hw.V100Node(), Model: edge, Runtime: KindIntraOp}); err == nil {
		t.Fatal("marginal model accepted by the static check")
	}
	// IgnoreMemory bypasses the static check; the device pools still
	// enforce physical capacity at allocation time.
	if _, err := NewEngine(Options{Node: hw.V100Node(), Model: edge, Runtime: KindIntraOp, IgnoreMemory: true}); err != nil {
		t.Fatal(err)
	}
	// Physics is never bypassed: weights that exceed device memory fail
	// even with IgnoreMemory.
	if _, err := NewEngine(Options{Node: hw.V100Node(), Model: model.GLM130B(), Runtime: KindIntraOp, IgnoreMemory: true}); err == nil {
		t.Fatal("physically impossible placement accepted")
	}
}

func TestWeightsAllocatedOnDevices(t *testing.T) {
	eng, err := NewEngine(Options{Node: hw.A100Node(), Model: model.OPT30B(), Runtime: KindIntraOp})
	if err != nil {
		t.Fatal(err)
	}
	shard := model.OPT30B().WeightBytes() / 4
	for d := 0; d < 4; d++ {
		if used := eng.SimNode().Device(d).MemUsed(); used != shard {
			t.Fatalf("device %d holds %d bytes, want weight shard %d", d, used, shard)
		}
	}
}

func TestWorkspaceReturnedAfterServing(t *testing.T) {
	eng, err := NewEngine(Options{Node: hw.A100Node(), Model: model.OPT30B().WithLayers(4), Runtime: KindLiger})
	if err != nil {
		t.Fatal(err)
	}
	before := eng.SimNode().Device(0).MemUsed()
	if _, err := eng.Serve(smallTrace(t, 20, 500)); err != nil {
		t.Fatal(err)
	}
	if after := eng.SimNode().Device(0).MemUsed(); after != before {
		t.Fatalf("workspace leak: %d bytes before, %d after", before, after)
	}
}

type nopTracer struct{}

func (nopTracer) KernelStart(int, string, gpusim.KernelClass, simclock.Time)              {}
func (nopTracer) KernelEnd(int, string, gpusim.KernelClass, simclock.Time, simclock.Time) {}

func TestStragglerThroughCoreAPI(t *testing.T) {
	eng, err := NewEngine(Options{Node: hw.A100Node(), Model: model.OPT30B().WithLayers(4), Runtime: KindIntraOp, Tracer: nopTracer{}})
	if err != nil {
		t.Fatal(err)
	}
	eng.SimNode().Device(1).SetSpeed(0.5)
	slow, err := eng.Serve(smallTrace(t, 10, 100))
	if err != nil {
		t.Fatal(err)
	}
	eng2, err := NewEngine(Options{Node: hw.A100Node(), Model: model.OPT30B().WithLayers(4), Runtime: KindIntraOp})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := eng2.Serve(smallTrace(t, 10, 100))
	if err != nil {
		t.Fatal(err)
	}
	if slow.AvgLatency <= fast.AvgLatency {
		t.Fatalf("straggler did not slow serving: %v vs %v", slow.AvgLatency, fast.AvgLatency)
	}
}
