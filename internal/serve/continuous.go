package serve

import (
	"fmt"

	"liger/internal/model"
	"liger/internal/runtimes"
	"liger/internal/simclock"
)

// Iteration-level continuous batching (Orca-style): instead of carrying
// a fixed batch through its whole generation, every decode iteration
// runs over the current pool of live sequences, and newly arrived
// sequences are admitted and prefilled between iterations. The batcher
// owns the scheduling policy only — KV memory lives behind the
// KVAllocator interface, so the same loop runs over the reservation
// manager, the paged allocator, or no admission control at all.

// KVAllocator is the admission-control surface the continuous batcher
// drives (implemented by kvcache.Manager and kvcache.PagedManager).
type KVAllocator interface {
	// CanAdmit reports whether tokens of cache fit right now.
	CanAdmit(tokens int) bool
	// Admit reserves a new sequence's prompt cache.
	Admit(seqID, promptTokens int) error
	// Extend grows a sequence's cache by one generated token.
	Extend(seqID int) error
	// Release frees a finished sequence's cache.
	Release(seqID int)
}

// PreemptingAllocator is the optional paged extension: an allocator
// that can evict its lowest-priority sequence under memory pressure
// (kvcache.PagedManager). When the batcher's allocator implements it,
// an Extend failure triggers preemption instead of a run error, and the
// watermark is checked before every decode iteration.
type PreemptingAllocator interface {
	KVAllocator
	// UnderPressure reports free memory under the eviction watermark.
	UnderPressure() bool
	// Preempt evicts the lowest-priority live sequence, returning its id
	// and cached token count (the recompute obligation on resume).
	Preempt() (seqID, tokens int, ok bool)
}

// GenSeq is one generative sequence entering the continuous batcher.
type GenSeq struct {
	ID int
	// Prompt is the prefill length; Gen the number of decode tokens to
	// produce after the first.
	Prompt int
	Gen    int
	// Prefilled marks a sequence whose prompt KV already exists (it was
	// computed elsewhere and transferred in — the disaggregated decode
	// path). Admission allocates its cache and moves it straight into
	// the decode pool without a Context submission. A preemption voids
	// the flag: the evicted cache must be recomputed with a real
	// prefill on resume.
	Prefilled bool
}

// ContinuousHooks observe sequence lifecycle events. All hooks are
// optional and fire from within engine callbacks.
type ContinuousHooks struct {
	// FirstToken fires when a sequence's first prefill completes (not on
	// recompute prefills after preemption).
	FirstToken func(id int, now simclock.Time)
	// Finished fires when a sequence completes its generation.
	Finished func(id int, now simclock.Time)
	// Preempted fires when a sequence is evicted under memory pressure
	// and re-queued with its recompute obligation.
	Preempted func(id int, now simclock.Time)
}

// genState is one sequence's scheduling state.
type genState struct {
	GenSeq
	// resumeLen is the prefill length of the next admission: the prompt,
	// plus — after a preemption — every token already produced, which
	// must be recomputed into the cache (recompute-on-resume).
	resumeLen int
	// produced counts decode tokens generated so far (survives
	// preemption; the work is not re-done, only the KV recompute).
	produced int
	// ctx is the cached context length while live.
	ctx       int
	started   bool // first prefill completed (TTFT stamped)
	prefilled bool // prompt KV present without a local prefill
}

// ContinuousBatcher schedules generative sequences at iteration
// granularity over one runtime: prefill admission interleaved with
// decode iterations over the live pool, one submission in flight at a
// time. The owner wires the runtime's completion callback to OnDone and
// feeds arrivals through Add; both must run inside engine callbacks on
// the runtime's shard.
type ContinuousBatcher struct {
	rt      runtimes.Runtime
	tag     runtimes.Tagged // rt's request-id view, nil if untagged
	kv      KVAllocator
	pre     PreemptingAllocator // kv's paged view, nil without preemption
	maxPool int
	hooks   ContinuousHooks

	// tr/seqTr observe iterations and sequence lifecycles (SetTracer);
	// blocks is kv's gauge view when it exposes block accounting;
	// poolIdx tags records with the batcher's pool index.
	tr      ServingTracer
	seqTr   SeqTracer
	blocks  BlockStats
	poolIdx int

	// waitQ holds arrivals and preempted sequences awaiting admission,
	// priority-ordered (front admits first).
	waitQ      []*genState
	prefilling []*genState
	pool       []*genState
	byID       map[int]*genState

	inFlight  bool
	pending   []*genState
	pendingPF bool
	// pendingRec is the in-flight submission's iteration record; its
	// End/Retired fields are filled and it is emitted at completion.
	pendingRec IterationRecord
	hasPending bool
	iterSeq    int
	// stepPreempted counts evictions within the current step call, for
	// attribution to the iteration record that step submits.
	stepPreempted int

	err error

	// Iterations/PoolSum aggregate decode activity; PrefillBatches
	// counts context submissions; Preemptions and RecomputedTokens
	// price the eviction policy.
	Iterations       int
	PoolSum          int
	PrefillBatches   int
	Preemptions      int
	RecomputedTokens int
}

// NewContinuousBatcher builds the iteration scheduler. kv may be nil
// (no admission control); when it implements PreemptingAllocator the
// paged preemption path is armed.
func NewContinuousBatcher(rt runtimes.Runtime, kv KVAllocator, maxPool int, hooks ContinuousHooks) (*ContinuousBatcher, error) {
	if rt == nil {
		return nil, fmt.Errorf("serve: continuous batcher needs a runtime")
	}
	if maxPool < 1 {
		return nil, fmt.Errorf("serve: continuous pool size %d", maxPool)
	}
	b := &ContinuousBatcher{rt: rt, kv: kv, maxPool: maxPool, hooks: hooks, byID: map[int]*genState{}}
	b.tag, _ = rt.(runtimes.Tagged)
	if kv != nil {
		b.pre, _ = kv.(PreemptingAllocator)
		b.blocks, _ = kv.(BlockStats)
	}
	return b, nil
}

// SetTracer installs a serving tracer (nil disables tracing). pool tags
// every record with the batcher's pool index — 0 for a single-node run,
// the decode-pool index in a disaggregated cluster. When tr also
// implements SeqTracer, per-sequence lifecycle events are emitted.
func (b *ContinuousBatcher) SetTracer(tr ServingTracer, pool int) {
	b.tr = tr
	b.poolIdx = pool
	b.seqTr = nil
	if tr != nil {
		b.seqTr, _ = tr.(SeqTracer)
	}
}

// seqEvent emits one lifecycle instant when a SeqTracer is installed.
func (b *ContinuousBatcher) seqEvent(kind SeqEventKind, id, tokens int, at simclock.Time) {
	if b.seqTr == nil {
		return
	}
	b.seqTr.SeqEvent(SeqEvent{Pool: b.poolIdx, Seq: id, Kind: kind, At: at, Tokens: tokens})
}

// beginIteration snapshots the submission being made as the in-flight
// iteration record (emitted at completion with End/Retired filled).
func (b *ContinuousBatcher) beginIteration(prefill bool, batch, admitted int, now simclock.Time) {
	if b.tr == nil {
		return
	}
	rec := IterationRecord{
		Pool:      b.poolIdx,
		Seq:       b.iterSeq,
		Prefill:   prefill,
		Start:     now,
		Batch:     batch,
		Waiting:   len(b.waitQ),
		Admitted:  admitted,
		Preempted: b.stepPreempted,
	}
	if b.blocks != nil {
		rec.KVTotalBlocks = b.blocks.TotalBlocks()
		rec.KVFreeBlocks = b.blocks.FreeBlocks()
		rec.KVUsedBlocks = rec.KVTotalBlocks - rec.KVFreeBlocks
	}
	if b.pre != nil {
		rec.Pressure = b.pre.UnderPressure()
	}
	b.iterSeq++
	b.pendingRec = rec
	b.hasPending = true
}

// submit dispatches one batch to the runtime, tagging single-sequence
// submissions with the sequence id (Completion.Req) so per-request
// trace breakdowns cover continuous mode; multi-sequence batches stay
// untagged (-1).
func (b *ContinuousBatcher) submit(w model.Workload, batch []*genState) error {
	if b.tag != nil && len(batch) == 1 {
		return b.tag.SubmitReq(w, batch[0].ID)
	}
	return b.rt.Submit(w)
}

// Add enqueues one sequence for admission and kicks the scheduler.
func (b *ContinuousBatcher) Add(s GenSeq, now simclock.Time) {
	if b.err != nil {
		return
	}
	if s.Prompt <= 0 || s.Gen <= 0 {
		b.fail(fmt.Errorf("serve: sequence %d with lengths %d/%d", s.ID, s.Prompt, s.Gen))
		return
	}
	if _, dup := b.byID[s.ID]; dup {
		b.fail(fmt.Errorf("serve: duplicate sequence id %d", s.ID))
		return
	}
	st := &genState{GenSeq: s, resumeLen: s.Prompt, prefilled: s.Prefilled}
	b.byID[s.ID] = st
	b.waitQ = append(b.waitQ, st)
	b.seqEvent(SeqArrive, s.ID, s.Prompt, now)
	b.step(now)
}

// Err returns the first scheduling error (nil in a healthy run).
func (b *ContinuousBatcher) Err() error { return b.err }

// Idle reports no live, pending, or waiting work.
func (b *ContinuousBatcher) Idle() bool {
	return !b.inFlight && len(b.waitQ) == 0 && len(b.prefilling) == 0 && len(b.pool) == 0
}

// MeanPool is the average live-pool size over decode iterations.
func (b *ContinuousBatcher) MeanPool() float64 {
	if b.Iterations == 0 {
		return 0
	}
	return float64(b.PoolSum) / float64(b.Iterations)
}

func (b *ContinuousBatcher) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// step runs the iteration scheduler: admit what fits, then submit
// either one prefill batch over the newly admitted sequences or one
// decode iteration over the live pool.
func (b *ContinuousBatcher) step(now simclock.Time) {
	if b.inFlight || b.err != nil {
		return
	}
	b.stepPreempted = 0
	admitted := 0
	// Admission is FIFO with head-of-line blocking: a waiting sequence
	// that does not fit keeps everything behind it waiting, which keeps
	// admission deterministic and starvation-free.
	for len(b.waitQ) > 0 && len(b.pool)+len(b.prefilling) < b.maxPool {
		s := b.waitQ[0]
		if b.kv != nil {
			if !b.kv.CanAdmit(s.resumeLen) {
				break
			}
			if err := b.kv.Admit(s.ID, s.resumeLen); err != nil {
				b.fail(err)
				return
			}
		}
		b.waitQ = b.waitQ[1:]
		admitted++
		if s.prefilled {
			// Cache is already materialized: skip the Context submission
			// and join the decode pool directly.
			s.ctx = s.resumeLen
			if !s.started {
				s.started = true
				if b.hooks.FirstToken != nil {
					b.hooks.FirstToken(s.ID, now)
				}
			}
			b.seqEvent(SeqJoin, s.ID, s.ctx, now)
			b.pool = append(b.pool, s)
			continue
		}
		b.prefilling = append(b.prefilling, s)
	}
	if len(b.prefilling) > 0 {
		batch := b.prefilling
		b.prefilling = nil
		maxLen := 0
		for _, s := range batch {
			if s.resumeLen > maxLen {
				maxLen = s.resumeLen
			}
			b.seqEvent(SeqPrefillStart, s.ID, s.resumeLen, now)
		}
		b.inFlight = true
		b.pending = batch
		b.pendingPF = true
		b.PrefillBatches++
		b.beginIteration(true, len(batch), admitted, now)
		if err := b.submit(model.Workload{Batch: len(batch), SeqLen: maxLen, Phase: model.Context}, batch); err != nil {
			b.fail(err)
		}
		return
	}
	if len(b.pool) == 0 {
		return // idle until the next arrival
	}
	// Watermark eviction: free memory below the allocator's watermark
	// means the next few extends are about to fail — evict the lowest-
	// priority sequence now, between iterations, where it is cheap.
	if b.pre != nil {
		for b.pre.UnderPressure() && len(b.pool) > 1 {
			if !b.preemptOne(now) {
				break
			}
		}
	}
	// Grow every pool member's cache by the token this iteration will
	// produce. An allocator failure is memory pressure: preempt the
	// lowest-priority sequence and retry, rather than failing the run.
	if b.kv != nil {
		snapshot := append([]*genState(nil), b.pool...)
		for _, s := range snapshot {
			if s.ctx == 0 {
				continue // evicted earlier in this loop
			}
		extend:
			for {
				err := b.kv.Extend(s.ID)
				if err == nil {
					break
				}
				if b.pre == nil || len(b.pool) <= 1 {
					b.fail(fmt.Errorf("serve: kv cache exhausted with no preemption headroom: %w", err))
					return
				}
				victim := b.preemptOne(now)
				if !victim {
					b.fail(fmt.Errorf("serve: kv cache exhausted and nothing evictable: %w", err))
					return
				}
				if s.ctx == 0 {
					break extend // s itself was the victim
				}
			}
		}
	}
	maxCtx := 0
	for _, s := range b.pool {
		s.ctx++
		if s.ctx > maxCtx {
			maxCtx = s.ctx
		}
	}
	b.inFlight = true
	b.pending = append([]*genState(nil), b.pool...)
	b.pendingPF = false
	b.Iterations++
	b.PoolSum += len(b.pool)
	b.beginIteration(false, len(b.pool), admitted, now)
	if err := b.submit(model.Workload{Batch: len(b.pool), CtxLen: maxCtx, Phase: model.Decode}, b.pending); err != nil {
		b.fail(err)
	}
}

// preemptOne evicts the allocator's chosen victim from the pool and
// re-queues it at the front of the wait queue with its recompute
// obligation (prompt + every produced token must be prefilled again).
func (b *ContinuousBatcher) preemptOne(now simclock.Time) bool {
	id, _, ok := b.pre.Preempt()
	if !ok {
		return false
	}
	s := b.byID[id]
	if s == nil {
		b.fail(fmt.Errorf("serve: allocator preempted unknown sequence %d", id))
		return false
	}
	for i, p := range b.pool {
		if p == s {
			b.pool = append(b.pool[:i], b.pool[i+1:]...)
			break
		}
	}
	s.ctx = 0
	s.prefilled = false // the transferred cache is gone; resume recomputes
	s.resumeLen = s.Prompt + s.produced
	b.RecomputedTokens += s.resumeLen
	b.Preemptions++
	b.stepPreempted++
	b.waitQ = append([]*genState{s}, b.waitQ...)
	b.seqEvent(SeqPreempt, id, s.resumeLen, now)
	if b.hooks.Preempted != nil {
		b.hooks.Preempted(id, now)
	}
	return true
}

// OnDone consumes one runtime completion; wire it to rt.SetOnDone (or
// call it from the fleet layer's completion path).
func (b *ContinuousBatcher) OnDone(c runtimes.Completion) {
	now := c.Done
	b.inFlight = false
	batch := b.pending
	b.pending = nil
	if b.pendingPF {
		for _, s := range batch {
			s.ctx = s.resumeLen
			b.seqEvent(SeqPrefillEnd, s.ID, s.ctx, now)
			if !s.started {
				s.started = true
				if b.hooks.FirstToken != nil {
					b.hooks.FirstToken(s.ID, now)
				}
			}
			b.pool = append(b.pool, s)
		}
		b.endIteration(0, now)
		b.step(now)
		return
	}
	retired := 0
	live := b.pool[:0]
	for _, s := range b.pool {
		s.produced++
		if s.produced >= s.Gen {
			if b.kv != nil {
				b.kv.Release(s.ID)
			}
			delete(b.byID, s.ID)
			retired++
			b.seqEvent(SeqFinish, s.ID, s.produced, now)
			if b.hooks.Finished != nil {
				b.hooks.Finished(s.ID, now)
			}
			continue
		}
		live = append(live, s)
	}
	b.pool = live
	b.endIteration(retired, now)
	b.step(now)
}

// endIteration completes and emits the in-flight iteration record.
func (b *ContinuousBatcher) endIteration(retired int, now simclock.Time) {
	if !b.hasPending {
		return
	}
	b.hasPending = false
	rec := b.pendingRec
	rec.End = now
	rec.Retired = retired
	b.tr.Iteration(rec)
}
