package serve

import (
	"strings"
	"testing"
	"time"
)

func TestResultString(t *testing.T) {
	r := Result{
		Runtime:    "Liger",
		Completed:  10,
		Requests:   20,
		AvgLatency: 42 * time.Millisecond,
		P99:        99 * time.Millisecond,
		Makespan:   time.Second,
	}
	s := r.String()
	for _, want := range []string{"Liger", "42ms", "99ms", "20.00 req/s"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Result.String() = %q missing %q", s, want)
		}
	}
}

func TestThroughputZeroMakespan(t *testing.T) {
	r := Result{Completed: 5, Requests: 10}
	if r.ThroughputBatches() != 0 || r.ThroughputRequests() != 0 {
		t.Fatal("zero makespan should give zero throughput, not a division by zero")
	}
}
