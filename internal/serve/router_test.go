package serve

import (
	"testing"
	"time"

	"liger/internal/model"
	"liger/internal/simclock"
)

// stubFleet scripts a fleet on one plain engine: every dispatch
// completes after latency + service + latency unless the test marked
// the replica dead (lost bounce), busy, or the request failing.
type stubFleet struct {
	eng      *simclock.Engine
	replicas int
	latency  time.Duration
	service  time.Duration
	hooks    RouterHooks

	dead      map[int]bool // replica -> lost-bounce deliveries
	busy      map[int]bool // replica -> busy-bounce deliveries
	failLeft  map[int]int  // request -> remaining scripted failures
	blackhole map[int]bool // replica -> swallow deliveries silently

	perReplica map[int]int // dispatch count per replica
	dispatches int
}

func newStubFleet(replicas int) *stubFleet {
	return &stubFleet{
		eng:        simclock.New(),
		replicas:   replicas,
		latency:    time.Millisecond,
		service:    10 * time.Millisecond,
		dead:       map[int]bool{},
		busy:       map[int]bool{},
		failLeft:   map[int]int{},
		blackhole:  map[int]bool{},
		perReplica: map[int]int{},
	}
}

func (s *stubFleet) RuntimeName() string              { return "stub" }
func (s *stubFleet) Replicas() int                    { return s.replicas }
func (s *stubFleet) Frontend() *simclock.Engine       { return s.eng }
func (s *stubFleet) SetRouter(h RouterHooks)          { s.hooks = h }
func (s *stubFleet) Run() error                       { s.eng.Run(); return nil }
func (s *stubFleet) FleetStats() (int, time.Duration) { return 0, 0 }

func (s *stubFleet) Dispatch(rep, req int, w model.Workload) {
	s.dispatches++
	s.perReplica[rep]++
	s.eng.After(simclock.Time(s.latency), func(at simclock.Time) {
		switch {
		case s.blackhole[rep]:
			return
		case s.dead[rep]:
			s.eng.After(simclock.Time(s.latency), func(now simclock.Time) {
				s.hooks.Done(rep, req, DispatchLost, now)
			})
		case s.busy[rep]:
			s.eng.After(simclock.Time(s.latency), func(now simclock.Time) {
				s.hooks.Done(rep, req, DispatchBusy, now)
			})
		default:
			status := DispatchOK
			if s.failLeft[req] > 0 {
				s.failLeft[req]--
				status = DispatchFailed
			}
			s.eng.After(simclock.Time(s.service+s.latency), func(now simclock.Time) {
				s.hooks.Done(rep, req, status, now)
			})
		}
	})
}

func stubArrivals(n int, gap time.Duration) []Arrival {
	arr := make([]Arrival, n)
	for i := range arr {
		arr[i] = Arrival{At: simclock.Time(i) * simclock.Time(gap),
			Workload: model.Workload{Batch: 2, SeqLen: 32}}
	}
	return arr
}

func stubPolicy() Policy {
	return Policy{MaxRetries: 2, Backoff: time.Millisecond, BackoffCap: 8 * time.Millisecond}
}

func TestRunFleetCompletesAndBalances(t *testing.T) {
	f := newStubFleet(3)
	res, err := RunFleet(f, stubArrivals(30, time.Millisecond), stubPolicy(), RouterPolicy{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 30 || res.Failed != 0 || res.Shed != 0 {
		t.Fatalf("%d ok / %d failed / %d shed", res.Completed, res.Failed, res.Shed)
	}
	for rep := 0; rep < 3; rep++ {
		if f.perReplica[rep] == 0 {
			t.Fatalf("replica %d never dispatched to", rep)
		}
	}
	// Latency includes the two network legs plus service.
	want := 2*f.latency + f.service
	if res.P50 < want {
		t.Fatalf("p50 %v below the modeled floor %v", res.P50, want)
	}
}

func TestRunFleetShedsPastQueueLimit(t *testing.T) {
	f := newStubFleet(1)
	pol := stubPolicy()
	pol.QueueLimit = 2
	// All arrivals land at once; only QueueLimit are admitted before any
	// completion frees a slot.
	res, err := RunFleet(f, stubArrivals(10, 0), pol, RouterPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed != 8 || res.Completed != 2 {
		t.Fatalf("shed %d completed %d, want 8/2", res.Shed, res.Completed)
	}
}

func TestRunFleetHedgesSlowReplica(t *testing.T) {
	f := newStubFleet(2)
	// Replica 0 swallows every request; hedging rescues them via 1.
	f.blackhole[0] = true
	res, err := RunFleet(f, stubArrivals(6, 20*time.Millisecond), stubPolicy(),
		RouterPolicy{Hedge: 5 * time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 6 {
		t.Fatalf("completed %d/6", res.Completed)
	}
	if res.Hedges == 0 {
		t.Fatal("no hedges fired against a black-holed replica")
	}
}

func TestRunFleetLostBounceRedispatchesOnce(t *testing.T) {
	f := newStubFleet(2)
	f.dead[0] = true
	res, err := RunFleet(f, stubArrivals(8, 5*time.Millisecond), stubPolicy(), RouterPolicy{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 8 {
		t.Fatalf("completed %d/8", res.Completed)
	}
	// Every request that hit the dead replica was re-dispatched exactly
	// once and the totals agree with the per-request view.
	sum := 0
	for _, pr := range res.PerRequest {
		if pr.Retries > 1 {
			t.Fatalf("req %d re-dispatched %d times", pr.Req, pr.Retries)
		}
		sum += pr.Retries
	}
	if sum != res.Retries || res.Retries == 0 {
		t.Fatalf("retries %d, per-request sum %d", res.Retries, sum)
	}
	// Lost requests still measure latency from the original arrival: the
	// bounce round trip is inside the number.
	for _, pr := range res.PerRequest {
		if pr.Retries == 1 {
			lat := pr.Done - pr.Arrival
			floor := 4*f.latency + f.service // bounce trip + redo trip
			if lat < floor {
				t.Fatalf("req %d latency %v excludes the bounce (floor %v)", pr.Req, lat, floor)
			}
		}
	}
}

func TestRunFleetBusyBouncePlacesElsewhere(t *testing.T) {
	f := newStubFleet(2)
	f.busy[0] = true
	res, err := RunFleet(f, stubArrivals(8, 5*time.Millisecond), stubPolicy(), RouterPolicy{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 8 {
		t.Fatalf("completed %d/8", res.Completed)
	}
	// A busy bounce is not a retry and not a failure.
	if res.Retries != 0 || res.Failed != 0 {
		t.Fatalf("busy bounce counted as retries=%d failed=%d", res.Retries, res.Failed)
	}
}

func TestRunFleetEvictionRedispatchesOutstanding(t *testing.T) {
	f := newStubFleet(2)
	f.blackhole[0] = true
	// Evict replica 0 mid-run; its black-holed requests must come back.
	f.eng.At(simclock.Time(15*time.Millisecond), func(now simclock.Time) {
		f.hooks.Evicted(0, now)
	})
	res, err := RunFleet(f, stubArrivals(10, time.Millisecond), stubPolicy(), RouterPolicy{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 10 {
		t.Fatalf("completed %d/10 after eviction", res.Completed)
	}
	if res.Retries == 0 {
		t.Fatal("eviction re-dispatched nothing")
	}
	for _, pr := range res.PerRequest {
		if pr.Retries > 1 {
			t.Fatalf("req %d re-dispatched %d times", pr.Req, pr.Retries)
		}
	}
}

func TestRunFleetPolicyRetriesAndExhaustion(t *testing.T) {
	f := newStubFleet(1)
	f.failLeft[0] = 1 // fails once, then succeeds
	f.failLeft[1] = 5 // exhausts the 2-retry budget
	res, err := RunFleet(f, stubArrivals(3, 30*time.Millisecond), stubPolicy(), RouterPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 || res.Failed != 1 {
		t.Fatalf("%d ok / %d failed, want 2/1", res.Completed, res.Failed)
	}
	if res.PerRequest[0].Retries != 1 || !res.PerRequest[1].Failed {
		t.Fatalf("per-request accounting wrong: %+v", res.PerRequest[:2])
	}
}

func TestRunFleetFailsParkedBacklogAtDrain(t *testing.T) {
	f := newStubFleet(1)
	// Evict the only replica before anything arrives: every request
	// parks forever and must resolve as failed, keeping the invariant.
	f.eng.At(simclock.Time(time.Microsecond), func(now simclock.Time) {
		f.hooks.Evicted(0, now)
	})
	res, err := RunFleet(f, stubArrivals(5, time.Millisecond), stubPolicy(), RouterPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 5 || res.Completed != 0 {
		t.Fatalf("%d failed / %d ok, want 5/0", res.Failed, res.Completed)
	}
}

func TestRunFleetRejectsBadInput(t *testing.T) {
	f := newStubFleet(1)
	if _, err := RunFleet(f, nil, stubPolicy(), RouterPolicy{}); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := RunFleet(f, stubArrivals(1, 0), stubPolicy(), RouterPolicy{Hedge: -time.Second}); err == nil {
		t.Error("negative hedge accepted")
	}
	if _, err := RunFleet(newStubFleet(0), stubArrivals(1, 0), stubPolicy(), RouterPolicy{}); err == nil {
		t.Error("zero-replica fleet accepted")
	}
}
