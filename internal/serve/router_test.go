package serve

import (
	"testing"
	"time"

	"liger/internal/model"
	"liger/internal/simclock"
)

// stubFleet scripts a fleet on one plain engine: every dispatch
// completes after latency + service + latency unless the test marked
// the replica dead (lost bounce), busy, or the request failing.
type stubFleet struct {
	eng      *simclock.Engine
	replicas int
	latency  time.Duration
	service  time.Duration
	hooks    RouterHooks

	dead      map[int]bool          // replica -> lost-bounce deliveries
	busy      map[int]bool          // replica -> busy-bounce deliveries
	failLeft  map[int]int           // request -> remaining scripted failures
	blackhole map[int]bool          // replica -> swallow deliveries silently
	slow      map[int]time.Duration // replica -> extra service time

	perReplica map[int]int // dispatch count per replica
	dispatches int
}

func newStubFleet(replicas int) *stubFleet {
	return &stubFleet{
		eng:        simclock.New(),
		replicas:   replicas,
		latency:    time.Millisecond,
		service:    10 * time.Millisecond,
		dead:       map[int]bool{},
		busy:       map[int]bool{},
		failLeft:   map[int]int{},
		blackhole:  map[int]bool{},
		slow:       map[int]time.Duration{},
		perReplica: map[int]int{},
	}
}

func (s *stubFleet) RuntimeName() string              { return "stub" }
func (s *stubFleet) Replicas() int                    { return s.replicas }
func (s *stubFleet) Frontend() *simclock.Engine       { return s.eng }
func (s *stubFleet) SetRouter(h RouterHooks)          { s.hooks = h }
func (s *stubFleet) Run() error                       { s.eng.Run(); return nil }
func (s *stubFleet) FleetStats() (int, time.Duration) { return 0, 0 }

func (s *stubFleet) Dispatch(rep, req int, w model.Workload) {
	s.dispatches++
	s.perReplica[rep]++
	s.eng.After(simclock.Time(s.latency), func(at simclock.Time) {
		switch {
		case s.blackhole[rep]:
			return
		case s.dead[rep]:
			s.eng.After(simclock.Time(s.latency), func(now simclock.Time) {
				s.hooks.Done(rep, req, DispatchLost, now)
			})
		case s.busy[rep]:
			s.eng.After(simclock.Time(s.latency), func(now simclock.Time) {
				s.hooks.Done(rep, req, DispatchBusy, now)
			})
		default:
			status := DispatchOK
			if s.failLeft[req] > 0 {
				s.failLeft[req]--
				status = DispatchFailed
			}
			s.eng.After(simclock.Time(s.service+s.slow[rep]+s.latency), func(now simclock.Time) {
				s.hooks.Done(rep, req, status, now)
			})
		}
	})
}

func stubArrivals(n int, gap time.Duration) []Arrival {
	arr := make([]Arrival, n)
	for i := range arr {
		arr[i] = Arrival{At: simclock.Time(i) * simclock.Time(gap),
			Workload: model.Workload{Batch: 2, SeqLen: 32}}
	}
	return arr
}

func stubPolicy() Policy {
	return Policy{MaxRetries: 2, Backoff: time.Millisecond, BackoffCap: 8 * time.Millisecond}
}

func TestRunFleetCompletesAndBalances(t *testing.T) {
	f := newStubFleet(3)
	res, err := RunFleet(f, stubArrivals(30, time.Millisecond), stubPolicy(), RouterPolicy{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 30 || res.Failed != 0 || res.Shed != 0 {
		t.Fatalf("%d ok / %d failed / %d shed", res.Completed, res.Failed, res.Shed)
	}
	for rep := 0; rep < 3; rep++ {
		if f.perReplica[rep] == 0 {
			t.Fatalf("replica %d never dispatched to", rep)
		}
	}
	// Latency includes the two network legs plus service.
	want := 2*f.latency + f.service
	if res.P50 < want {
		t.Fatalf("p50 %v below the modeled floor %v", res.P50, want)
	}
}

func TestRunFleetShedsPastQueueLimit(t *testing.T) {
	f := newStubFleet(1)
	pol := stubPolicy()
	pol.QueueLimit = 2
	// All arrivals land at once; only QueueLimit are admitted before any
	// completion frees a slot.
	res, err := RunFleet(f, stubArrivals(10, 0), pol, RouterPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed != 8 || res.Completed != 2 {
		t.Fatalf("shed %d completed %d, want 8/2", res.Shed, res.Completed)
	}
}

func TestRunFleetHedgesSlowReplica(t *testing.T) {
	f := newStubFleet(2)
	// Replica 0 swallows every request; hedging rescues them via 1.
	f.blackhole[0] = true
	res, err := RunFleet(f, stubArrivals(6, 20*time.Millisecond), stubPolicy(),
		RouterPolicy{Hedge: 5 * time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 6 {
		t.Fatalf("completed %d/6", res.Completed)
	}
	if res.Hedges == 0 {
		t.Fatal("no hedges fired against a black-holed replica")
	}
}

func TestRunFleetLostBounceRedispatchesOnce(t *testing.T) {
	f := newStubFleet(2)
	f.dead[0] = true
	res, err := RunFleet(f, stubArrivals(8, 5*time.Millisecond), stubPolicy(), RouterPolicy{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 8 {
		t.Fatalf("completed %d/8", res.Completed)
	}
	// Every request that hit the dead replica was re-dispatched exactly
	// once and the totals agree with the per-request view.
	sum := 0
	for _, pr := range res.PerRequest {
		if pr.Retries > 1 {
			t.Fatalf("req %d re-dispatched %d times", pr.Req, pr.Retries)
		}
		sum += pr.Retries
	}
	if sum != res.Retries || res.Retries == 0 {
		t.Fatalf("retries %d, per-request sum %d", res.Retries, sum)
	}
	// Lost requests still measure latency from the original arrival: the
	// bounce round trip is inside the number.
	for _, pr := range res.PerRequest {
		if pr.Retries == 1 {
			lat := pr.Done - pr.Arrival
			floor := 4*f.latency + f.service // bounce trip + redo trip
			if lat < floor {
				t.Fatalf("req %d latency %v excludes the bounce (floor %v)", pr.Req, lat, floor)
			}
		}
	}
}

func TestRunFleetBusyBouncePlacesElsewhere(t *testing.T) {
	f := newStubFleet(2)
	f.busy[0] = true
	res, err := RunFleet(f, stubArrivals(8, 5*time.Millisecond), stubPolicy(), RouterPolicy{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 8 {
		t.Fatalf("completed %d/8", res.Completed)
	}
	// A busy bounce is not a retry and not a failure.
	if res.Retries != 0 || res.Failed != 0 {
		t.Fatalf("busy bounce counted as retries=%d failed=%d", res.Retries, res.Failed)
	}
}

func TestRunFleetEvictionRedispatchesOutstanding(t *testing.T) {
	f := newStubFleet(2)
	f.blackhole[0] = true
	// Evict replica 0 mid-run; its black-holed requests must come back.
	f.eng.At(simclock.Time(15*time.Millisecond), func(now simclock.Time) {
		f.hooks.Evicted(0, now)
	})
	res, err := RunFleet(f, stubArrivals(10, time.Millisecond), stubPolicy(), RouterPolicy{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 10 {
		t.Fatalf("completed %d/10 after eviction", res.Completed)
	}
	if res.Retries == 0 {
		t.Fatal("eviction re-dispatched nothing")
	}
	for _, pr := range res.PerRequest {
		if pr.Retries > 1 {
			t.Fatalf("req %d re-dispatched %d times", pr.Req, pr.Retries)
		}
	}
}

func TestRunFleetPolicyRetriesAndExhaustion(t *testing.T) {
	f := newStubFleet(1)
	f.failLeft[0] = 1 // fails once, then succeeds
	f.failLeft[1] = 5 // exhausts the 2-retry budget
	res, err := RunFleet(f, stubArrivals(3, 30*time.Millisecond), stubPolicy(), RouterPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 || res.Failed != 1 {
		t.Fatalf("%d ok / %d failed, want 2/1", res.Completed, res.Failed)
	}
	if res.PerRequest[0].Retries != 1 || !res.PerRequest[1].Failed {
		t.Fatalf("per-request accounting wrong: %+v", res.PerRequest[:2])
	}
}

func TestRunFleetFailsParkedBacklogAtDrain(t *testing.T) {
	f := newStubFleet(1)
	// Evict the only replica before anything arrives: every request
	// parks forever and must resolve as failed, keeping the invariant.
	f.eng.At(simclock.Time(time.Microsecond), func(now simclock.Time) {
		f.hooks.Evicted(0, now)
	})
	res, err := RunFleet(f, stubArrivals(5, time.Millisecond), stubPolicy(), RouterPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 5 || res.Completed != 0 {
		t.Fatalf("%d failed / %d ok, want 5/0", res.Failed, res.Completed)
	}
}

// TestRunFleetLateHedgeLoserDropped pins exactly-once completion under
// hedging: when both copies of a hedged request eventually complete,
// the first resolves the request and the loser's late notice must be
// dropped without touching any counter — no double Completed, no
// phantom latency sample.
func TestRunFleetLateHedgeLoserDropped(t *testing.T) {
	f := newStubFleet(2)
	// Both replicas complete everything, one far slower than the hedge
	// delay: every request hedges, both copies finish, one is late.
	f.slow[0] = 40 * time.Millisecond
	res, err := RunFleet(f, stubArrivals(6, 30*time.Millisecond), stubPolicy(),
		RouterPolicy{Hedge: 5 * time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 6 || res.Failed != 0 || res.Shed != 0 {
		t.Fatalf("%d ok / %d failed / %d shed, want 6/0/0", res.Completed, res.Failed, res.Shed)
	}
	if res.Hedges == 0 {
		t.Fatal("no hedges fired against the slow replica")
	}
	// One latency sample per completion: a counted hedge loser would
	// add a second sample (and RunFleet's internal accounting invariant
	// would already have errored on a double resolve).
	if len(res.Latencies) != res.Completed {
		t.Fatalf("%d latency samples for %d completions", len(res.Latencies), res.Completed)
	}
	// The winner defines the latency: every sample must beat the slow
	// replica's service floor.
	slowFloor := 2*f.latency + f.service + f.slow[0]
	for i, lat := range res.Latencies {
		if lat >= slowFloor {
			t.Fatalf("latency[%d] = %v: the slow copy's completion won over the hedge", i, lat)
		}
	}
}

// TestRunFleetEvictionSparesLiveHedge pins the hedge/eviction
// interaction: when a replica dies while a request's hedge copy is
// still live on a healthy replica, the router must NOT re-dispatch —
// the live copy carries the request, so no retry is recorded and the
// request completes exactly once.
func TestRunFleetEvictionSparesLiveHedge(t *testing.T) {
	f := newStubFleet(2)
	// Replica 0 swallows deliveries, so every request it receives —
	// primary or hedge copy — stays outstanding there until eviction;
	// the copy on replica 1 is the one that completes.
	f.blackhole[0] = true
	f.eng.At(simclock.Time(8*time.Millisecond), func(now simclock.Time) {
		f.hooks.Evicted(0, now)
	})
	res, err := RunFleet(f, stubArrivals(2, time.Millisecond), stubPolicy(),
		RouterPolicy{Hedge: 3 * time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 || res.Failed != 0 {
		t.Fatalf("%d ok / %d failed, want 2/0", res.Completed, res.Failed)
	}
	if res.Hedges == 0 {
		t.Fatal("no hedges fired before the eviction")
	}
	// The eviction found every black-holed request still hedged on the
	// healthy replica: nothing to re-dispatch, nothing to retry.
	if res.Retries != 0 {
		t.Fatalf("eviction re-dispatched %d requests whose hedge copies were live", res.Retries)
	}
	for _, pr := range res.PerRequest {
		if pr.Retries != 0 {
			t.Fatalf("req %d recorded %d retries", pr.Req, pr.Retries)
		}
	}
}

// TestRunFleetHedgeThenPolicyRetry pins the hedge/retry interaction:
// when both copies of a hedged request fail, the first failure must
// wait for the surviving copy (no premature retry), and only the
// second failure spends policy retry budget — one retry, then success.
func TestRunFleetHedgeThenPolicyRetry(t *testing.T) {
	f := newStubFleet(2)
	// The request fails exactly twice: the primary and the hedge copy.
	// The post-backoff third attempt succeeds.
	f.failLeft[0] = 2
	res, err := RunFleet(f, stubArrivals(1, 0), stubPolicy(),
		RouterPolicy{Hedge: 5 * time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 || res.Failed != 0 {
		t.Fatalf("%d ok / %d failed, want 1/0", res.Completed, res.Failed)
	}
	if res.Hedges != 1 {
		t.Fatalf("hedges = %d, want 1", res.Hedges)
	}
	// Both copies failing costs ONE policy retry, not two: the first
	// DispatchFailed deferred to the live hedge copy.
	if res.Retries != 1 || res.PerRequest[0].Retries != 1 {
		t.Fatalf("retries = %d (per-request %d), want 1", res.Retries, res.PerRequest[0].Retries)
	}
}

func TestRunFleetRejectsBadInput(t *testing.T) {
	f := newStubFleet(1)
	if _, err := RunFleet(f, nil, stubPolicy(), RouterPolicy{}); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := RunFleet(f, stubArrivals(1, 0), stubPolicy(), RouterPolicy{Hedge: -time.Second}); err == nil {
		t.Error("negative hedge accepted")
	}
	if _, err := RunFleet(newStubFleet(0), stubArrivals(1, 0), stubPolicy(), RouterPolicy{}); err == nil {
		t.Error("zero-replica fleet accepted")
	}
}
