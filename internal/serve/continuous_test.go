package serve

import (
	"errors"
	"testing"
	"time"

	"liger/internal/model"
	"liger/internal/runtimes"
	"liger/internal/simclock"
)

// fakeAlloc is a token-granular KV allocator with a hard capacity,
// newest-first preemption, and an optional pressure threshold — the
// minimal PreemptingAllocator for exercising the batcher's memory
// paths without a real paged manager.
type fakeAlloc struct {
	cap        int
	used       int
	seqs       map[int]int
	order      []int
	pressureAt int // free < pressureAt => under pressure (0 disables)
}

var errFakeOOM = errors.New("fake allocator full")

func newFakeAlloc(capacity, pressureAt int) *fakeAlloc {
	return &fakeAlloc{cap: capacity, pressureAt: pressureAt, seqs: map[int]int{}}
}

func (f *fakeAlloc) CanAdmit(tokens int) bool { return f.used+tokens <= f.cap }
func (f *fakeAlloc) Admit(id, tokens int) error {
	if !f.CanAdmit(tokens) {
		return errFakeOOM
	}
	f.seqs[id] = tokens
	f.used += tokens
	f.order = append(f.order, id)
	return nil
}
func (f *fakeAlloc) Extend(id int) error {
	if f.used+1 > f.cap {
		return errFakeOOM
	}
	f.seqs[id]++
	f.used++
	return nil
}
func (f *fakeAlloc) Release(id int) {
	f.used -= f.seqs[id]
	delete(f.seqs, id)
	for i, o := range f.order {
		if o == id {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
}
func (f *fakeAlloc) UnderPressure() bool { return f.pressureAt > 0 && f.cap-f.used < f.pressureAt }
func (f *fakeAlloc) Preempt() (int, int, bool) {
	if len(f.order) == 0 {
		return 0, 0, false
	}
	id := f.order[len(f.order)-1]
	tokens := f.seqs[id]
	f.Release(id)
	return id, tokens, true
}

// continuousHarness wires a ContinuousBatcher over the sequential
// fakeRuntime, recording every submitted workload and lifecycle event.
type continuousHarness struct {
	eng       *simclock.Engine
	cb        *ContinuousBatcher
	workloads []model.Workload
	firstTok  map[int]simclock.Time
	finished  map[int]simclock.Time
	preempted []int
}

func newContinuousHarness(t *testing.T, kv KVAllocator, maxPool int) *continuousHarness {
	t.Helper()
	h := &continuousHarness{
		eng:      simclock.New(),
		firstTok: map[int]simclock.Time{},
		finished: map[int]simclock.Time{},
	}
	rt := &fakeRuntime{eng: h.eng, service: 10 * time.Millisecond}
	cb, err := NewContinuousBatcher(rt, kv, maxPool, ContinuousHooks{
		FirstToken: func(id int, now simclock.Time) { h.firstTok[id] = now },
		Finished:   func(id int, now simclock.Time) { h.finished[id] = now },
		Preempted:  func(id int, _ simclock.Time) { h.preempted = append(h.preempted, id) },
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.SetOnDone(func(c runtimes.Completion) {
		h.workloads = append(h.workloads, c.Workload)
		cb.OnDone(c)
	})
	h.cb = cb
	return h
}

func TestContinuousPrefillThenDecodeIterations(t *testing.T) {
	h := newContinuousHarness(t, nil, 4)
	h.eng.After(0, func(now simclock.Time) {
		h.cb.Add(GenSeq{ID: 1, Prompt: 8, Gen: 4}, now)
	})
	h.eng.Run()
	if err := h.cb.Err(); err != nil {
		t.Fatal(err)
	}
	// One prefill over the prompt, then one decode iteration per token.
	want := []model.Workload{
		{Batch: 1, SeqLen: 8, Phase: model.Context},
		{Batch: 1, CtxLen: 9, Phase: model.Decode},
		{Batch: 1, CtxLen: 10, Phase: model.Decode},
		{Batch: 1, CtxLen: 11, Phase: model.Decode},
		{Batch: 1, CtxLen: 12, Phase: model.Decode},
	}
	if len(h.workloads) != len(want) {
		t.Fatalf("submitted %d workloads, want %d: %v", len(h.workloads), len(want), h.workloads)
	}
	for i, w := range want {
		if h.workloads[i] != w {
			t.Fatalf("workload %d = %+v, want %+v", i, h.workloads[i], w)
		}
	}
	if h.cb.Iterations != 4 || h.cb.PrefillBatches != 1 {
		t.Fatalf("iterations %d, prefills %d", h.cb.Iterations, h.cb.PrefillBatches)
	}
	// TTFT at the first prefill completion, finish after the last decode.
	if h.firstTok[1] != simclock.Time(10*time.Millisecond) {
		t.Fatalf("first token at %v", h.firstTok[1])
	}
	if h.finished[1] != simclock.Time(50*time.Millisecond) {
		t.Fatalf("finished at %v", h.finished[1])
	}
	if !h.cb.Idle() {
		t.Fatal("batcher not idle after completion")
	}
}

// A sequence arriving mid-decode is prefilled between iterations and
// joins the live pool — the defining behaviour of iteration-level
// scheduling.
func TestContinuousLateArrivalJoinsPool(t *testing.T) {
	h := newContinuousHarness(t, nil, 4)
	h.eng.After(0, func(now simclock.Time) {
		h.cb.Add(GenSeq{ID: 1, Prompt: 8, Gen: 6}, now)
	})
	h.eng.After(25*time.Millisecond, func(now simclock.Time) {
		h.cb.Add(GenSeq{ID: 2, Prompt: 4, Gen: 2}, now)
	})
	h.eng.Run()
	if err := h.cb.Err(); err != nil {
		t.Fatal(err)
	}
	// The second prefill interleaves with sequence 1's decode, and pool
	// size 2 shows up in subsequent decode iterations.
	prefills, sawPool2 := 0, false
	for _, w := range h.workloads {
		if w.Phase == model.Context {
			prefills++
		} else if w.Batch == 2 {
			sawPool2 = true
		}
	}
	if prefills != 2 {
		t.Fatalf("%d prefill batches, want 2", prefills)
	}
	if !sawPool2 {
		t.Fatalf("no decode iteration over the merged pool: %v", h.workloads)
	}
	if len(h.finished) != 2 {
		t.Fatalf("finished %d of 2 sequences", len(h.finished))
	}
	if h.cb.MeanPool() <= 1 {
		t.Fatalf("mean pool %v, want > 1 after the merge", h.cb.MeanPool())
	}
}

func TestContinuousPoolCapDefersAdmission(t *testing.T) {
	h := newContinuousHarness(t, nil, 1)
	h.eng.After(0, func(now simclock.Time) {
		h.cb.Add(GenSeq{ID: 1, Prompt: 4, Gen: 3}, now)
		h.cb.Add(GenSeq{ID: 2, Prompt: 4, Gen: 3}, now)
	})
	h.eng.Run()
	if err := h.cb.Err(); err != nil {
		t.Fatal(err)
	}
	for _, w := range h.workloads {
		if w.Batch != 1 {
			t.Fatalf("pool cap 1 violated: %+v", w)
		}
	}
	if len(h.finished) != 2 || !(h.finished[1] < h.finished[2]) {
		t.Fatalf("finish order wrong: %v", h.finished)
	}
}

func TestContinuousKVAdmissionGates(t *testing.T) {
	// Room for one 8-token prompt plus its 3 generated tokens only:
	// sequence 2 must wait for sequence 1's release.
	kv := newFakeAlloc(12, 0)
	h := newContinuousHarness(t, kv, 4)
	h.eng.After(0, func(now simclock.Time) {
		h.cb.Add(GenSeq{ID: 1, Prompt: 8, Gen: 3}, now)
		h.cb.Add(GenSeq{ID: 2, Prompt: 8, Gen: 3}, now)
	})
	h.eng.Run()
	if err := h.cb.Err(); err != nil {
		t.Fatal(err)
	}
	if len(h.finished) != 2 {
		t.Fatalf("finished %d of 2", len(h.finished))
	}
	if kv.used != 0 {
		t.Fatalf("%d tokens leaked", kv.used)
	}
	// Never more than one live at a time.
	for _, w := range h.workloads {
		if w.Batch > 1 {
			t.Fatalf("admission gate violated: %+v", w)
		}
	}
}

// The tentpole behaviour: when Extend hits OOM mid-pool the batcher
// preempts the newest sequence instead of failing, the victim re-queues
// with its recompute obligation, and everything still completes.
func TestContinuousPreemptionRecoversAndCompletes(t *testing.T) {
	// Two 8-token prompts fit; the pool OOMs after 4 joint extends.
	kv := newFakeAlloc(20, 0)
	h := newContinuousHarness(t, kv, 4)
	h.eng.After(0, func(now simclock.Time) {
		h.cb.Add(GenSeq{ID: 1, Prompt: 8, Gen: 6}, now)
		h.cb.Add(GenSeq{ID: 2, Prompt: 8, Gen: 6}, now)
	})
	h.eng.Run()
	if err := h.cb.Err(); err != nil {
		t.Fatal(err)
	}
	if h.cb.Preemptions == 0 || len(h.preempted) == 0 {
		t.Fatal("no preemption under engineered memory pressure")
	}
	if h.preempted[0] != 2 {
		t.Fatalf("victim %d, want the newest sequence 2", h.preempted[0])
	}
	if h.cb.RecomputedTokens == 0 {
		t.Fatal("preemption recorded no recompute obligation")
	}
	if len(h.finished) != 2 {
		t.Fatalf("finished %d of 2 after preemption", len(h.finished))
	}
	if kv.used != 0 {
		t.Fatalf("%d tokens leaked after preemption cycle", kv.used)
	}
	// The victim's resume prefill covers prompt + produced tokens.
	resumed := false
	for _, w := range h.workloads {
		if w.Phase == model.Context && w.SeqLen > 8 {
			resumed = true
		}
	}
	if !resumed {
		t.Fatal("no recompute prefill longer than the original prompt")
	}
}

// Watermark pressure evicts between iterations, before Extend fails.
func TestContinuousWatermarkEvictsProactively(t *testing.T) {
	// Free space dips under the 6-token watermark once both prompts are
	// resident, long before extends exhaust the pool.
	kv := newFakeAlloc(20, 6)
	h := newContinuousHarness(t, kv, 4)
	h.eng.After(0, func(now simclock.Time) {
		h.cb.Add(GenSeq{ID: 1, Prompt: 8, Gen: 2}, now)
		h.cb.Add(GenSeq{ID: 2, Prompt: 8, Gen: 2}, now)
	})
	h.eng.Run()
	if err := h.cb.Err(); err != nil {
		t.Fatal(err)
	}
	if h.cb.Preemptions == 0 {
		t.Fatal("watermark pressure did not trigger eviction")
	}
	if len(h.finished) != 2 {
		t.Fatalf("finished %d of 2", len(h.finished))
	}
}

// With a single live sequence and no headroom the batcher must fail
// loudly rather than preempt the pool to empty.
func TestContinuousOOMWithoutHeadroomFails(t *testing.T) {
	kv := newFakeAlloc(9, 0) // one 8-token prompt + one extend, then OOM
	h := newContinuousHarness(t, kv, 4)
	h.eng.After(0, func(now simclock.Time) {
		h.cb.Add(GenSeq{ID: 1, Prompt: 8, Gen: 8}, now)
	})
	h.eng.Run()
	if err := h.cb.Err(); !errors.Is(err, errFakeOOM) {
		t.Fatalf("err = %v, want wrapped allocator OOM", err)
	}
}

// A Prefilled sequence (disaggregated decode: KV transferred in) joins
// the pool without a Context submission; after preemption its resume
// pays a real recompute prefill.
func TestContinuousPrefilledSkipsContextPhase(t *testing.T) {
	h := newContinuousHarness(t, nil, 4)
	h.eng.After(0, func(now simclock.Time) {
		h.cb.Add(GenSeq{ID: 1, Prompt: 8, Gen: 3, Prefilled: true}, now)
	})
	h.eng.Run()
	if err := h.cb.Err(); err != nil {
		t.Fatal(err)
	}
	for _, w := range h.workloads {
		if w.Phase == model.Context {
			t.Fatalf("prefilled sequence ran a local prefill: %v", h.workloads)
		}
	}
	if h.cb.Iterations != 3 || len(h.finished) != 1 {
		t.Fatalf("iterations %d, finished %d", h.cb.Iterations, len(h.finished))
	}
	// TTFT stamps at admission, not after a prefill round-trip.
	if h.firstTok[1] != 0 {
		t.Fatalf("first token at %v, want admission instant", h.firstTok[1])
	}

	// Under pressure the transferred cache is evicted like any other;
	// the resume must run a Context recompute.
	kv := newFakeAlloc(20, 0)
	h2 := newContinuousHarness(t, kv, 4)
	h2.eng.After(0, func(now simclock.Time) {
		h2.cb.Add(GenSeq{ID: 1, Prompt: 8, Gen: 6, Prefilled: true}, now)
		h2.cb.Add(GenSeq{ID: 2, Prompt: 8, Gen: 6, Prefilled: true}, now)
	})
	h2.eng.Run()
	if err := h2.cb.Err(); err != nil {
		t.Fatal(err)
	}
	if h2.cb.Preemptions == 0 || len(h2.finished) != 2 {
		t.Fatalf("preemptions %d, finished %d", h2.cb.Preemptions, len(h2.finished))
	}
	recompute := false
	for _, w := range h2.workloads {
		if w.Phase == model.Context {
			recompute = true
		}
	}
	if !recompute {
		t.Fatal("preempted prefilled sequence resumed without recompute prefill")
	}
}

func TestContinuousRejectsBadSequences(t *testing.T) {
	h := newContinuousHarness(t, nil, 2)
	h.eng.After(0, func(now simclock.Time) {
		h.cb.Add(GenSeq{ID: 1, Prompt: 0, Gen: 4}, now)
	})
	h.eng.Run()
	if h.cb.Err() == nil {
		t.Fatal("zero prompt accepted")
	}
	h2 := newContinuousHarness(t, nil, 2)
	h2.eng.After(0, func(now simclock.Time) {
		h2.cb.Add(GenSeq{ID: 1, Prompt: 4, Gen: 1}, now)
		h2.cb.Add(GenSeq{ID: 1, Prompt: 4, Gen: 1}, now)
	})
	h2.eng.Run()
	if h2.cb.Err() == nil {
		t.Fatal("duplicate id accepted")
	}
	if _, err := NewContinuousBatcher(nil, nil, 2, ContinuousHooks{}); err == nil {
		t.Fatal("nil runtime accepted")
	}
	rt := &fakeRuntime{eng: simclock.New(), service: time.Millisecond}
	if _, err := NewContinuousBatcher(rt, nil, 0, ContinuousHooks{}); err == nil {
		t.Fatal("zero pool accepted")
	}
}
