package serve

import (
	"encoding/json"
	"testing"
	"time"
)

func diurnalConfig(batches int) TraceConfig {
	return TraceConfig{
		Batches: batches, BatchSize: 2, RatePerSec: 10,
		MinSeq: 16, MaxSeq: 128, Process: Diurnal, Seed: 3,
	}
}

func TestDiurnalDeterministic(t *testing.T) {
	a, err := Generate(diurnalConfig(200))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(diurnalConfig(200))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestDiurnalModulatesRate checks the process actually swings: the
// densest quarter of the trace must hold meaningfully more arrivals
// than the sparsest quarter.
func TestDiurnalModulatesRate(t *testing.T) {
	arr, err := Generate(diurnalConfig(400))
	if err != nil {
		t.Fatal(err)
	}
	span := time.Duration(arr[len(arr)-1].At)
	counts := make([]int, 4)
	for _, a := range arr {
		q := int(4 * time.Duration(a.At) / (span + 1))
		counts[q]++
	}
	min, max := counts[0], counts[0]
	for _, c := range counts[1:] {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if float64(max) < 1.3*float64(min) {
		t.Errorf("quartile counts %v: expected a pronounced peak/trough swing", counts)
	}
}

// TestDiurnalPreservesSeqStream pins that the deterministic gap
// modulation draws nothing from the RNG: the sequence-length stream
// must match the constant-rate trace exactly.
func TestDiurnalPreservesSeqStream(t *testing.T) {
	d, err := Generate(diurnalConfig(100))
	if err != nil {
		t.Fatal(err)
	}
	cc := diurnalConfig(100)
	cc.Process = ConstantRate
	c, err := Generate(cc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d {
		if d[i].Workload.SeqLen != c[i].Workload.SeqLen {
			t.Fatalf("seq stream diverges at %d: %d vs %d", i, d[i].Workload.SeqLen, c[i].Workload.SeqLen)
		}
	}
}

func TestDiurnalMeanRateNearNominal(t *testing.T) {
	arr, err := Generate(diurnalConfig(400))
	if err != nil {
		t.Fatal(err)
	}
	span := time.Duration(arr[len(arr)-1].At).Seconds()
	nominal := 400.0 / 10 // batches / rate
	if span < 0.7*nominal || span > 1.4*nominal {
		t.Errorf("trace span %.2fs too far from nominal %.2fs", span, nominal)
	}
}

func TestResultMarshalJSON(t *testing.T) {
	r := Result{
		Scenario: "demo", Runtime: "Liger",
		Completed: 10, Requests: 20, Failed: 2, Retries: 3,
		Deadline: 100 * time.Millisecond, DeadlineMisses: 1,
		AvgLatency: 40 * time.Millisecond,
		P50:        30 * time.Millisecond, P95: 80 * time.Millisecond, P99: 90 * time.Millisecond,
		Makespan: 2 * time.Second, RecoveryTime: 150 * time.Millisecond,
	}
	buf, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"completed": 10, "requests": 20, "failed": 2, "retries": 3,
		"deadline_ms": 100, "avg_latency_ms": 40, "p99_ms": 90,
		"makespan_ms": 2000, "recovery_ms": 150,
		"goodput": r.PolicyGoodput(), "slo_miss": r.SLOMissRate(),
	}
	for k, v := range want {
		got, ok := m[k].(float64)
		if !ok || got != v {
			t.Errorf("%s = %v, want %v", k, m[k], v)
		}
	}
	if m["scenario"] != "demo" || m["runtime"] != "Liger" {
		t.Errorf("identity fields = %v / %v", m["scenario"], m["runtime"])
	}
	// The heavyweight slices must not ride into artifacts.
	for _, k := range []string{"Latencies", "latencies", "PerRequest", "per_request"} {
		if _, present := m[k]; present {
			t.Errorf("slice field %s leaked into JSON", k)
		}
	}
}

func TestResultMarshalJSONOmitsEmptyScenario(t *testing.T) {
	buf, err := json.Marshal(Result{Runtime: "Liger"})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatal(err)
	}
	if _, present := m["scenario"]; present {
		t.Error("empty scenario should be omitted")
	}
}
