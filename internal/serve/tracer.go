package serve

import "liger/internal/trace"

// Serving-layer tracing mirrors gpusim's tracer-extension pattern: a
// small base interface plus optional extensions discovered by type
// assertion, so emitters stay decoupled from the recorder and a tracer
// only pays for the record kinds it wants. trace.ServingRecorder
// implements every extension; a nil tracer costs one branch per event.
//
// The record types live in the trace package (which must sit below
// serve in the import graph); these aliases keep serve's tracer API
// self-contained for emitters and implementers.

// IterationRecord is one scheduler submission of the continuous
// batcher (see trace.IterationRecord).
type IterationRecord = trace.IterationRecord

// SeqEventKind labels one point of a sequence's serving lifecycle.
type SeqEventKind = trace.SeqEventKind

// Lifecycle kinds (see trace.SeqEventKind's constants for semantics).
const (
	SeqArrive       = trace.SeqArrive
	SeqPrefillStart = trace.SeqPrefillStart
	SeqPrefillEnd   = trace.SeqPrefillEnd
	SeqJoin         = trace.SeqJoin
	SeqPreempt      = trace.SeqPreempt
	SeqFinish       = trace.SeqFinish
)

// SeqEvent is one lifecycle instant of one sequence (see
// trace.SeqEvent).
type SeqEvent = trace.SeqEvent

// RouterDecision is one routing outcome of the fleet router (see
// trace.RouterDecision).
type RouterDecision = trace.RouterDecision

// KVHandoff is one prefill→decode cache transfer of a disaggregated
// cluster (see trace.KVHandoff).
type KVHandoff = trace.KVHandoff

// ServingTracer observes continuous-batcher iterations. Implementations
// may also implement SeqTracer, RouterTracer, and HandoffTracer (and
// kvcache.Tracer) to receive the other serving record kinds.
type ServingTracer interface {
	Iteration(IterationRecord)
}

// SeqTracer is the optional per-sequence lifecycle extension.
type SeqTracer interface {
	SeqEvent(SeqEvent)
}

// RouterTracer is the optional fleet-router extension.
type RouterTracer interface {
	RouterDecision(RouterDecision)
}

// HandoffTracer is the optional disaggregation KV-transfer extension.
type HandoffTracer interface {
	KVHandoff(KVHandoff)
}

// BlockStats is the optional allocator view the batcher samples for
// iteration-record KV gauges (implemented by kvcache.PagedManager).
type BlockStats interface {
	TotalBlocks() int
	FreeBlocks() int
}
