// Package serve is the serving layer: it generates request traces,
// drives a runtime with timed batch arrivals on the simulation clock,
// and collects the paper's metrics — average latency (pending +
// execution) and throughput — over a run of many requests (§4.1 uses
// 2000 requests per data point).
package serve

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"liger/internal/model"
	"liger/internal/simclock"
)

// diurnalAmplitude is the Diurnal process's rate swing around nominal.
const diurnalAmplitude = 0.6

// Arrival is one batch arriving at a virtual instant.
type Arrival struct {
	At       simclock.Time
	Workload model.Workload
}

// TraceConfig describes a synthetic request trace. The paper's general
// evaluation (§4.2) uses a constant batch arrival rate with sequence
// lengths drawn uniformly from 16–128.
type TraceConfig struct {
	// Batches is the number of batch arrivals to generate.
	Batches int
	// BatchSize is the number of requests packed per batch.
	BatchSize int
	// RatePerSec is the batch arrival rate. The paper uses a constant
	// rate; Poisson and bursty processes are available as extensions.
	RatePerSec float64
	// MinSeq and MaxSeq bound the per-batch sequence length (uniform).
	MinSeq, MaxSeq int
	// Phase selects the execution regime; Decode uses CtxLen instead of
	// a sampled sequence length.
	Phase model.Phase
	// CtxLen is the KV-cache length for Decode traces (§4.3 starts at
	// 16).
	CtxLen int
	// Process selects the arrival process.
	Process ArrivalProcess
	// Seed makes the trace deterministic.
	Seed int64
}

// ArrivalProcess selects how inter-arrival gaps are drawn.
type ArrivalProcess int

const (
	// ConstantRate spaces arrivals exactly 1/rate apart (the paper's
	// setting: "we use a constant request rate instead of a fluctuated
	// request rate").
	ConstantRate ArrivalProcess = iota
	// Poisson draws exponential inter-arrival gaps at the same mean
	// rate.
	Poisson
	// Bursty alternates dense bursts with quiet gaps at the same mean
	// rate.
	Bursty
	// Diurnal modulates the arrival rate sinusoidally — two full
	// day/night cycles over the nominal trace span, instantaneous rate
	// swinging between 0.4x and 1.6x nominal. Deterministic (no random
	// draws), so it never perturbs the sequence-length stream.
	Diurnal
)

func (p ArrivalProcess) String() string {
	switch p {
	case Poisson:
		return "poisson"
	case Bursty:
		return "bursty"
	case Diurnal:
		return "diurnal"
	default:
		return "constant"
	}
}

// Validate reports bad trace configurations.
func (c TraceConfig) Validate() error {
	switch {
	case c.Batches <= 0:
		return fmt.Errorf("serve: trace needs a positive batch count")
	case c.BatchSize <= 0:
		return fmt.Errorf("serve: batch size %d", c.BatchSize)
	case c.RatePerSec <= 0:
		return fmt.Errorf("serve: arrival rate %v", c.RatePerSec)
	case c.Phase == model.Context && (c.MinSeq <= 0 || c.MaxSeq < c.MinSeq):
		return fmt.Errorf("serve: bad sequence range [%d, %d]", c.MinSeq, c.MaxSeq)
	case c.Phase == model.Decode && c.CtxLen <= 0:
		return fmt.Errorf("serve: decode trace needs a context length")
	}
	return nil
}

// Generate produces the deterministic arrival trace.
func Generate(c TraceConfig) ([]Arrival, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	gap := time.Duration(float64(time.Second) / c.RatePerSec)
	out := make([]Arrival, 0, c.Batches)
	var at simclock.Time
	for i := 0; i < c.Batches; i++ {
		w := model.Workload{Batch: c.BatchSize, Phase: c.Phase}
		if c.Phase == model.Decode {
			w.CtxLen = c.CtxLen
		} else {
			w.SeqLen = c.MinSeq + rng.Intn(c.MaxSeq-c.MinSeq+1)
		}
		out = append(out, Arrival{At: at, Workload: w})
		switch c.Process {
		case Poisson:
			at += time.Duration(rng.ExpFloat64() * float64(gap))
		case Bursty:
			// Groups of 4 back-to-back, then a 4x gap: same mean rate.
			if (i+1)%4 == 0 {
				at += 4 * gap
			}
		case Diurnal:
			// Two sinusoidal cycles over the nominal span: the gap
			// stretches through the trough and compresses through the
			// peak, modelling day/night traffic.
			span := float64(gap) * float64(c.Batches)
			phase := 2 * math.Pi * float64(at) / (span / 2)
			at += time.Duration(float64(gap) / (1 + diurnalAmplitude*math.Sin(phase)))
		default:
			at += gap
		}
	}
	return out, nil
}
