package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"liger/internal/model"
	"liger/internal/simclock"
)

// Trace files let experiments replay identical workloads across tools
// and runs (and let users feed their own production-derived traces).
// The format is a JSON document with one entry per batch arrival.

// traceEntry is the serialized form of one arrival.
type traceEntry struct {
	AtNS   int64  `json:"at_ns"`
	Batch  int    `json:"batch"`
	SeqLen int    `json:"seq_len,omitempty"`
	CtxLen int    `json:"ctx_len,omitempty"`
	Phase  string `json:"phase"`
}

// traceDoc is the file layout.
type traceDoc struct {
	Version  int          `json:"version"`
	Arrivals []traceEntry `json:"arrivals"`
}

// SaveTrace serializes arrivals as JSON.
func SaveTrace(w io.Writer, arrivals []Arrival) error {
	doc := traceDoc{Version: 1}
	for _, a := range arrivals {
		e := traceEntry{
			AtNS:  int64(a.At),
			Batch: a.Workload.Batch,
			Phase: a.Workload.Phase.String(),
		}
		if a.Workload.Phase == model.Decode {
			e.CtxLen = a.Workload.CtxLen
		} else {
			e.SeqLen = a.Workload.SeqLen
		}
		doc.Arrivals = append(doc.Arrivals, e)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// LoadTrace parses a trace file, validating every entry.
func LoadTrace(r io.Reader) ([]Arrival, error) {
	var doc traceDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("serve: bad trace file: %w", err)
	}
	if doc.Version != 1 {
		return nil, fmt.Errorf("serve: unsupported trace version %d", doc.Version)
	}
	var out []Arrival
	var last simclock.Time
	for i, e := range doc.Arrivals {
		w := model.Workload{Batch: e.Batch}
		switch e.Phase {
		case "decode":
			w.Phase = model.Decode
			w.CtxLen = e.CtxLen
		case "context", "":
			w.Phase = model.Context
			w.SeqLen = e.SeqLen
		default:
			return nil, fmt.Errorf("serve: entry %d has unknown phase %q", i, e.Phase)
		}
		if err := w.Validate(); err != nil {
			return nil, fmt.Errorf("serve: entry %d: %w", i, err)
		}
		at := simclock.Time(e.AtNS)
		if at < last {
			return nil, fmt.Errorf("serve: entry %d arrives at %v before its predecessor", i, time.Duration(at))
		}
		last = at
		out = append(out, Arrival{At: at, Workload: w})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("serve: trace file has no arrivals")
	}
	return out, nil
}
