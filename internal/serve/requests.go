package serve

import (
	"fmt"
	"math/rand"
	"time"

	"liger/internal/model"
	"liger/internal/runtimes"
	"liger/internal/simclock"
	"liger/internal/stats"
)

// RequestTraceConfig describes a per-request trace (before batching).
type RequestTraceConfig struct {
	Requests       int
	RatePerSec     float64
	MinSeq, MaxSeq int
	Process        ArrivalProcess
	Seed           int64
}

// RequestArrival is one request arriving at the frontend.
type RequestArrival struct {
	At      simclock.Time
	Request Request
}

// GenerateRequests produces a deterministic per-request arrival trace.
func GenerateRequests(c RequestTraceConfig) ([]RequestArrival, error) {
	if c.Requests <= 0 || c.RatePerSec <= 0 || c.MinSeq <= 0 || c.MaxSeq < c.MinSeq {
		return nil, fmt.Errorf("serve: bad request trace config %+v", c)
	}
	rng := rand.New(rand.NewSource(c.Seed))
	gap := time.Duration(float64(time.Second) / c.RatePerSec)
	out := make([]RequestArrival, 0, c.Requests)
	var at simclock.Time
	for i := 0; i < c.Requests; i++ {
		out = append(out, RequestArrival{
			At:      at,
			Request: Request{ID: i, SeqLen: c.MinSeq + rng.Intn(c.MaxSeq-c.MinSeq+1)},
		})
		switch c.Process {
		case Poisson:
			at += time.Duration(rng.ExpFloat64() * float64(gap))
		case Bursty:
			if (i+1)%4 == 0 {
				at += 4 * gap
			}
		default:
			at += gap
		}
	}
	return out, nil
}

// RequestResult summarizes a request-level run: latency here is per
// *request* — frontend arrival to batch completion — so it includes the
// batching delay on top of pending and execution time.
type RequestResult struct {
	Runtime       string
	Completed     int
	Batches       int
	AvgLatency    time.Duration
	P50, P95, P99 time.Duration
	Makespan      time.Duration
	// AvgBatchingDelay is the mean time requests waited in the batcher.
	AvgBatchingDelay time.Duration
}

// RunRequests drives a runtime through the batching frontend: requests
// arrive individually, the batcher packs them (up to maxBatch, waiting
// at most maxWait), and per-request latencies are recorded when each
// batch completes.
func RunRequests(eng *simclock.Engine, rt runtimes.Runtime, arrivals []RequestArrival, maxBatch int, maxWait time.Duration) (RequestResult, error) {
	res := RequestResult{Runtime: rt.Name()}
	if len(arrivals) == 0 {
		return res, fmt.Errorf("serve: empty request trace")
	}

	// Batches are completed by the runtimes in submission order per
	// runtime contract for identical pipelines; map completions back to
	// request groups by submission sequence.
	type group struct{ reqs []Request }
	var groups []group
	var latencies, waits []time.Duration
	var lastDone simclock.Time
	var submitErr error

	rt.SetOnDone(func(c runtimes.Completion) {
		g := groups[c.ID]
		for _, r := range g.reqs {
			latencies = append(latencies, time.Duration(c.Done-r.ArrivedAt))
		}
		res.Completed += len(g.reqs)
		if c.Done > lastDone {
			lastDone = c.Done
		}
	})

	batcher, err := NewBatcher(eng, maxBatch, maxWait, func(w model.Workload, reqs []Request) {
		now := eng.Now()
		for _, r := range reqs {
			waits = append(waits, time.Duration(now-r.ArrivedAt))
		}
		groups = append(groups, group{reqs: reqs})
		if err := rt.Submit(w); err != nil && submitErr == nil {
			submitErr = err
		}
	})
	if err != nil {
		return res, err
	}
	for _, a := range arrivals {
		r := a.Request
		eng.At(a.At, func(simclock.Time) { batcher.Add(r) })
	}
	// Flush stragglers once the last arrival is in.
	eng.At(arrivals[len(arrivals)-1].At, func(simclock.Time) {})
	eng.Run()
	batcher.Flush()
	eng.Run()

	if submitErr != nil {
		return res, submitErr
	}
	if res.Completed != len(arrivals) {
		return res, fmt.Errorf("serve: %d of %d requests completed", res.Completed, len(arrivals))
	}
	res.Batches = batcher.BatchesEmitted
	res.AvgLatency = stats.Mean(latencies)
	pcts := stats.Percentiles(latencies, 50, 95, 99)
	res.P50, res.P95, res.P99 = pcts[0], pcts[1], pcts[2]
	res.AvgBatchingDelay = stats.Mean(waits)
	res.Makespan = time.Duration(lastDone - arrivals[0].At)
	return res, nil
}
