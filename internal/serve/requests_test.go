package serve

import (
	"testing"
	"time"

	"liger/internal/simclock"
)

func TestGenerateRequestsShape(t *testing.T) {
	reqs, err := GenerateRequests(RequestTraceConfig{
		Requests: 40, RatePerSec: 100, MinSeq: 16, MaxSeq: 128, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 40 {
		t.Fatalf("%d requests", len(reqs))
	}
	for i, r := range reqs {
		if r.Request.ID != i {
			t.Fatalf("request %d has ID %d", i, r.Request.ID)
		}
		if r.Request.SeqLen < 16 || r.Request.SeqLen > 128 {
			t.Fatalf("seq %d", r.Request.SeqLen)
		}
	}
}

func TestGenerateRequestsValidation(t *testing.T) {
	if _, err := GenerateRequests(RequestTraceConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestRunRequestsEndToEnd(t *testing.T) {
	eng := simclock.New()
	rt := &fakeRuntime{eng: eng, service: 5 * time.Millisecond}
	reqs, err := GenerateRequests(RequestTraceConfig{
		Requests: 20, RatePerSec: 1000, MinSeq: 16, MaxSeq: 64, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// maxWait comfortably above 3 inter-arrival gaps: batches fill to 4.
	res, err := RunRequests(eng, rt, reqs, 4, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 20 {
		t.Fatalf("completed %d", res.Completed)
	}
	if res.Batches != 5 {
		t.Fatalf("batches %d, want 5 (20 requests / maxBatch 4)", res.Batches)
	}
	// Request latency includes the batching delay.
	if res.AvgLatency < res.AvgBatchingDelay {
		t.Fatalf("latency %v below batching delay %v", res.AvgLatency, res.AvgBatchingDelay)
	}
	if res.AvgLatency < 5*time.Millisecond {
		t.Fatalf("latency %v below service time", res.AvgLatency)
	}
}

func TestRunRequestsPartialFinalBatch(t *testing.T) {
	eng := simclock.New()
	rt := &fakeRuntime{eng: eng, service: time.Millisecond}
	reqs, err := GenerateRequests(RequestTraceConfig{
		Requests: 7, RatePerSec: 1000, MinSeq: 16, MaxSeq: 16, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunRequests(eng, rt, reqs, 4, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 7 {
		t.Fatalf("completed %d of 7 (straggler batch lost?)", res.Completed)
	}
	if res.Batches != 2 {
		t.Fatalf("batches %d, want 2 (4 + 3)", res.Batches)
	}
}

func TestRunRequestsEmpty(t *testing.T) {
	eng := simclock.New()
	rt := &fakeRuntime{eng: eng, service: time.Millisecond}
	if _, err := RunRequests(eng, rt, nil, 4, time.Millisecond); err == nil {
		t.Fatal("empty trace accepted")
	}
}
