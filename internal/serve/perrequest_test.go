package serve

import (
	"testing"
	"time"

	"liger/internal/simclock"
)

// PerRequest must decompose each arrival's serving-side latency:
// deferral while the runtime reconfigures, queue wait before the first
// submission, per-request retry counts, and terminal flags.
func TestPerRequestDecomposition(t *testing.T) {
	eng := simclock.New()
	rt := &elasticStub{fakeRuntime: fakeRuntime{eng: eng, service: 5 * time.Millisecond}, failNext: 1}
	rt.window(eng, 3*time.Millisecond, 30*time.Millisecond)
	// Arrival 0 submits at 0 and fails at 5ms inside the window: its
	// retry parks until the 30ms resume and pays 2ms backoff. Arrival 1
	// lands at 10ms inside the window: deferred, it submits at the 30ms
	// flush and serves 30→35ms; the retry resubmits at 32ms, queues
	// behind it in the single-server fake, and serves 35→40ms.
	arr := ctxArrivals(0, 10*time.Millisecond)
	res, err := RunPolicy(eng, rt, arr, Policy{MaxRetries: 1, Backoff: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerRequest) != 2 {
		t.Fatalf("PerRequest has %d entries, want one per arrival", len(res.PerRequest))
	}
	r0 := res.PerRequest[0]
	if r0.Req != 0 || r0.Arrival != 0 || r0.QueueWait != 0 {
		t.Fatalf("request 0 identity wrong: %+v", r0)
	}
	if r0.Retries != 1 || r0.Failed || r0.Shed {
		t.Fatalf("request 0 should retry once and succeed: %+v", r0)
	}
	// The failed attempt parked at 5ms and flushed at the 30ms resume.
	if r0.Deferral != 25*time.Millisecond {
		t.Fatalf("request 0 deferral %v, want 25ms", r0.Deferral)
	}
	if r0.Done != 40*time.Millisecond {
		t.Fatalf("request 0 done at %v, want 40ms", r0.Done)
	}
	r1 := res.PerRequest[1]
	if r1.Arrival != 10*time.Millisecond || r1.Deferral != 20*time.Millisecond {
		t.Fatalf("deferred arrival decomposition wrong: %+v", r1)
	}
	// Queue wait spans arrival to first submission — the deferral window.
	if r1.QueueWait != 20*time.Millisecond {
		t.Fatalf("request 1 queue wait %v, want 20ms", r1.QueueWait)
	}
	if r1.Done <= r1.Arrival+r1.QueueWait {
		t.Fatalf("request 1 done %v before service completed: %+v", r1.Done, r1)
	}
}

// Shed and terminally failed arrivals must be flagged in PerRequest
// with a terminal instant.
func TestPerRequestTerminalFlags(t *testing.T) {
	eng := simclock.New()
	rt := &elasticStub{fakeRuntime: fakeRuntime{eng: eng, service: 100 * time.Millisecond}, failNext: 99}
	arr := ctxArrivals(0, time.Millisecond, 2*time.Millisecond)
	res, err := RunPolicy(eng, rt, arr, Policy{MaxRetries: 0, QueueLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	r0 := res.PerRequest[0]
	if !r0.Failed || r0.Shed || r0.Done != 100*time.Millisecond {
		t.Fatalf("exhausted request not flagged failed at completion: %+v", r0)
	}
	for _, r := range res.PerRequest[1:] {
		if !r.Shed || r.Done != r.Arrival {
			t.Fatalf("shed request not flagged at its arrival instant: %+v", r)
		}
	}
}
