package serve

import (
	"math"
	"testing"
	"time"

	"liger/internal/model"
	"liger/internal/runtimes"
	"liger/internal/simclock"
)

// elasticStub is fakeRuntime plus a scriptable reconfiguration window,
// implementing runtimes.Elastic so RunPolicy's recovery-aware paths can
// be driven without a full gpusim failover.
type elasticStub struct {
	fakeRuntime
	reconfiguring bool
	subs          []func(simclock.Time)
	failovers     int
	downtime      time.Duration
	// failNext marks the next n submissions to complete with Failed set.
	failNext int
}

func (e *elasticStub) Reconfiguring() bool                       { return e.reconfiguring }
func (e *elasticStub) OnReconfigured(fn func(now simclock.Time)) { e.subs = append(e.subs, fn) }
func (e *elasticStub) FailoverStats() (int, time.Duration)       { return e.failovers, e.downtime }

func (e *elasticStub) Submit(w model.Workload) error {
	c := runtimes.Completion{ID: e.nextID, Workload: w, Submitted: e.eng.Now()}
	if e.failNext > 0 {
		c.Failed = true
		e.failNext--
	}
	e.nextID++
	e.queue = append(e.queue, c)
	e.pump()
	return nil
}

// window arms a reconfiguration span [from, to) on the engine. Arm it
// BEFORE RunPolicy so that an arrival at exactly `from` observes the
// reconfiguring state (same-instant events fire in arming order).
func (e *elasticStub) window(eng *simclock.Engine, from, to time.Duration) {
	eng.At(from, func(simclock.Time) {
		e.reconfiguring = true
		e.failovers++
	})
	eng.At(to, func(now simclock.Time) {
		e.reconfiguring = false
		e.downtime += to - from
		for _, fn := range e.subs {
			fn(now)
		}
	})
}

func ctxArrivals(ats ...time.Duration) []Arrival {
	arr := make([]Arrival, len(ats))
	for i, at := range ats {
		arr[i] = Arrival{At: at, Workload: model.Workload{Batch: 1, SeqLen: 16, Phase: model.Context}}
	}
	return arr
}

// TestArrivalAtReconfigurationInstantIsDeferredNotLost is the drain
// boundary case: an arrival landing at the exact sim instant the
// runtime enters reconfiguration is parked and served at resume — it
// must not be dropped, double-submitted, or submitted into the dying
// world.
func TestArrivalAtReconfigurationInstantIsDeferredNotLost(t *testing.T) {
	eng := simclock.New()
	rt := &elasticStub{fakeRuntime: fakeRuntime{eng: eng, service: 2 * time.Millisecond}}
	rt.window(eng, 20*time.Millisecond, 50*time.Millisecond)
	arr := ctxArrivals(10*time.Millisecond, 20*time.Millisecond, 30*time.Millisecond)
	res, err := RunPolicy(eng, rt, arr, Policy{MaxRetries: 1, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 3 || res.Failed != 0 || res.Shed != 0 {
		t.Fatalf("completed %d failed %d shed %d, want 3/0/0", res.Completed, res.Failed, res.Shed)
	}
	// The 20ms and 30ms arrivals both land inside the window.
	if res.Deferred != 2 {
		t.Fatalf("deferred %d, want 2 (the arrival at the failure instant must defer)", res.Deferred)
	}
	// Deferred arrivals submit at the 50ms resume: the 20ms arrival
	// waits 30ms then serves 2ms; the 30ms one queues behind it.
	if want := 32 * time.Millisecond; res.Latencies[1] != want {
		t.Fatalf("deferred arrival latency %v, want %v", res.Latencies[1], want)
	}
	if res.Failovers != 1 || res.RecoveryTime != 30*time.Millisecond {
		t.Fatalf("failovers %d recovery %v, want 1 / 30ms", res.Failovers, res.RecoveryTime)
	}
}

// TestRetrySuppressedDuringReconfiguration: a batch that fails while
// the runtime is reconfiguring must not burn its retry against the
// dying world — the retry parks and pays its backoff from the resume
// instant.
func TestRetrySuppressedDuringReconfiguration(t *testing.T) {
	eng := simclock.New()
	rt := &elasticStub{fakeRuntime: fakeRuntime{eng: eng, service: 5 * time.Millisecond}, failNext: 1}
	rt.window(eng, 3*time.Millisecond, 30*time.Millisecond)
	arr := ctxArrivals(0)
	pol := Policy{MaxRetries: 1, Backoff: 2 * time.Millisecond}
	res, err := RunPolicy(eng, rt, arr, pol)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 || res.Failed != 0 || res.Retries != 1 {
		t.Fatalf("completed %d failed %d retries %d, want 1/0/1", res.Completed, res.Failed, res.Retries)
	}
	// Failure lands at 5ms (inside the window) → parked. Resume at 30ms
	// pays the 2ms backoff → resubmit at 32ms → success at 37ms.
	if want := 37 * time.Millisecond; res.Latencies[0] != want {
		t.Fatalf("latency %v, want %v (retry must wait out the reconfiguration)", res.Latencies[0], want)
	}
}

// TestQueueLimitSheds: arrivals past the admission bound are dropped,
// counted in Shed, and never reach the runtime.
func TestQueueLimitSheds(t *testing.T) {
	eng := simclock.New()
	rt := &elasticStub{fakeRuntime: fakeRuntime{eng: eng, service: 100 * time.Millisecond}}
	arr := ctxArrivals(0, time.Millisecond, 2*time.Millisecond, 3*time.Millisecond, 4*time.Millisecond)
	res, err := RunPolicy(eng, rt, arr, Policy{QueueLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 || res.Shed != 3 {
		t.Fatalf("completed %d shed %d, want 2/3", res.Completed, res.Shed)
	}
	if rt.nextID != 2 {
		t.Fatalf("runtime saw %d submissions — shed arrivals must never submit", rt.nextID)
	}
}

// TestDrainAccountingIdentity: with shedding, deferral, parked retries,
// and terminal failures all active at once, every arrival resolves into
// exactly one of Completed/Failed/Shed (RunPolicy itself errors if the
// identity breaks — this exercises it under the full mix).
func TestDrainAccountingIdentity(t *testing.T) {
	eng := simclock.New()
	rt := &elasticStub{fakeRuntime: fakeRuntime{eng: eng, service: 4 * time.Millisecond}, failNext: 3}
	rt.window(eng, 6*time.Millisecond, 40*time.Millisecond)
	var ats []time.Duration
	for i := 0; i < 12; i++ {
		ats = append(ats, time.Duration(i)*3*time.Millisecond)
	}
	arr := ctxArrivals(ats...)
	pol := Policy{MaxRetries: 1, Backoff: time.Millisecond, QueueLimit: 4}
	res, err := RunPolicy(eng, rt, arr, pol)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Completed + res.Failed + res.Shed; got != len(arr) {
		t.Fatalf("%d of %d arrivals accounted (%d ok, %d failed, %d shed)",
			got, len(arr), res.Completed, res.Failed, res.Shed)
	}
	if res.Shed == 0 || res.Deferred == 0 {
		t.Fatalf("mix not exercised: shed %d deferred %d", res.Shed, res.Deferred)
	}
}

// TestBackoffForSaturatesInsteadOfOverflowing is the regression test
// for the former unbounded doubling, which wrapped negative around
// attempt 63 and scheduled retries in the past.
func TestBackoffForSaturatesInsteadOfOverflowing(t *testing.T) {
	p := Policy{Backoff: time.Second}
	prev := time.Duration(0)
	for attempt := 1; attempt <= 200; attempt++ {
		d := p.backoffFor(attempt)
		if d <= 0 {
			t.Fatalf("attempt %d: backoff %v overflowed", attempt, d)
		}
		if d < prev {
			t.Fatalf("attempt %d: backoff %v below previous %v", attempt, d, prev)
		}
		prev = d
	}
	if got := p.backoffFor(100); got != time.Duration(math.MaxInt64) {
		t.Fatalf("uncapped backoff at attempt 100 = %v, want saturation at MaxInt64", got)
	}
	capped := Policy{Backoff: time.Second, BackoffCap: 8 * time.Second}
	if got := capped.backoffFor(90); got != 8*time.Second {
		t.Fatalf("capped backoff at attempt 90 = %v, want the 8s cap", got)
	}
}

// TestValidateBackoffCapBoundary covers both sides of the cap/backoff
// relation: a cap below the first delay is unsatisfiable and rejected;
// a cap equal to it is the degenerate constant backoff and accepted.
func TestValidateBackoffCapBoundary(t *testing.T) {
	bad := Policy{MaxRetries: 1, Backoff: 2 * time.Second, BackoffCap: time.Second}
	if bad.Validate() == nil {
		t.Fatal("cap below first delay accepted")
	}
	ok := Policy{MaxRetries: 1, Backoff: 2 * time.Second, BackoffCap: 2 * time.Second}
	if err := ok.Validate(); err != nil {
		t.Fatalf("cap equal to first delay rejected: %v", err)
	}
	if (Policy{QueueLimit: -1}).Validate() == nil {
		t.Fatal("negative queue limit accepted")
	}
}
