package serve

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"liger/internal/model"
)

func TestTraceRoundTrip(t *testing.T) {
	orig, err := Generate(baseTrace())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(orig) {
		t.Fatalf("%d arrivals after round trip, want %d", len(loaded), len(orig))
	}
	for i := range orig {
		if loaded[i] != orig[i] {
			t.Fatalf("entry %d changed: %+v vs %+v", i, loaded[i], orig[i])
		}
	}
}

func TestTraceRoundTripDecode(t *testing.T) {
	tc := baseTrace()
	tc.Phase = model.Decode
	tc.CtxLen = 16
	orig, err := Generate(tc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded[0].Workload.Phase != model.Decode || loaded[0].Workload.CtxLen != 16 {
		t.Fatalf("decode workload lost: %+v", loaded[0].Workload)
	}
}

func TestLoadTraceRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":       "not json",
		"bad version":   `{"version":2,"arrivals":[]}`,
		"empty":         `{"version":1,"arrivals":[]}`,
		"bad phase":     `{"version":1,"arrivals":[{"at_ns":0,"batch":2,"seq_len":16,"phase":"prefill"}]}`,
		"bad workload":  `{"version":1,"arrivals":[{"at_ns":0,"batch":0,"seq_len":16,"phase":"context"}]}`,
		"out of order":  `{"version":1,"arrivals":[{"at_ns":100,"batch":1,"seq_len":16,"phase":"context"},{"at_ns":50,"batch":1,"seq_len":16,"phase":"context"}]}`,
		"decode no ctx": `{"version":1,"arrivals":[{"at_ns":0,"batch":2,"phase":"decode"}]}`,
	}
	for name, doc := range cases {
		if _, err := LoadTrace(strings.NewReader(doc)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestSLOMetrics(t *testing.T) {
	r := Result{
		Latencies: []time.Duration{
			5 * time.Millisecond, 15 * time.Millisecond, 25 * time.Millisecond, 35 * time.Millisecond,
		},
		Makespan: 2 * time.Second,
	}
	if got := r.DeadlineMissRate(20 * time.Millisecond); got != 0.5 {
		t.Fatalf("miss rate %v, want 0.5", got)
	}
	if got := r.Goodput(20 * time.Millisecond); got != 1.0 {
		t.Fatalf("goodput %v, want 1.0 (2 met / 2s)", got)
	}
	empty := Result{}
	if empty.DeadlineMissRate(time.Second) != 0 {
		t.Fatal("empty result miss rate")
	}
	if empty.Goodput(time.Second) != 0 {
		t.Fatal("empty result goodput")
	}
}
