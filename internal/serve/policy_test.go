package serve

import (
	"strings"
	"testing"
	"time"

	"liger/internal/model"
	"liger/internal/runtimes"
	"liger/internal/simclock"
)

// faultyRuntime is fakeRuntime plus fault injection: the first
// failFirst submissions complete with Failed set, as if a collective of
// the batch aborted.
type faultyRuntime struct {
	fakeRuntime
	failFirst int
}

func (f *faultyRuntime) Submit(w model.Workload) error {
	c := runtimes.Completion{ID: f.nextID, Workload: w, Submitted: f.eng.Now()}
	c.Failed = c.ID < f.failFirst
	f.nextID++
	f.queue = append(f.queue, c)
	f.pump()
	return nil
}

func TestPolicyRetryUntilSuccess(t *testing.T) {
	eng := simclock.New()
	rt := &faultyRuntime{fakeRuntime: fakeRuntime{eng: eng, service: 10 * time.Millisecond}, failFirst: 2}
	arr := []Arrival{{At: 0, Workload: model.Workload{Batch: 2, SeqLen: 16, Phase: model.Context}}}
	pol := Policy{MaxRetries: 3, Backoff: 5 * time.Millisecond, BackoffCap: 8 * time.Millisecond}
	res, err := RunPolicy(eng, rt, arr, pol)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 || res.Failed != 0 || res.Retries != 2 {
		t.Fatalf("completed %d failed %d retries %d, want 1/0/2", res.Completed, res.Failed, res.Retries)
	}
	// Attempt 0 fails at 10ms; backoff 5ms → attempt 1 at 15ms fails at
	// 25ms; backoff doubled-then-capped 8ms → attempt 2 at 33ms succeeds
	// at 43ms. Latency spans the original arrival.
	if want := 43 * time.Millisecond; res.Latencies[0] != want {
		t.Fatalf("latency %v, want %v (backoff must be inside)", res.Latencies[0], want)
	}
	if res.Requests != 2 {
		t.Fatalf("requests %d: retries must not double-count", res.Requests)
	}
}

func TestPolicyRetryBudgetExhausted(t *testing.T) {
	eng := simclock.New()
	rt := &faultyRuntime{fakeRuntime: fakeRuntime{eng: eng, service: time.Millisecond}, failFirst: 99}
	arr := []Arrival{
		{At: 0, Workload: model.Workload{Batch: 1, SeqLen: 16, Phase: model.Context}},
		{At: time.Millisecond, Workload: model.Workload{Batch: 1, SeqLen: 16, Phase: model.Context}},
	}
	pol := Policy{MaxRetries: 2, Backoff: time.Millisecond}
	res, err := RunPolicy(eng, rt, arr, pol)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 0 || res.Failed != 2 {
		t.Fatalf("completed %d failed %d, want 0/2", res.Completed, res.Failed)
	}
	if res.Retries != 4 {
		t.Fatalf("retries %d, want 2 per batch", res.Retries)
	}
	if res.SuccessRate() != 0 || res.SLOMissRate() != 1 {
		t.Fatalf("success %v miss %v", res.SuccessRate(), res.SLOMissRate())
	}
	if got := res.ThroughputBatches(); got != 0 {
		t.Fatalf("throughput %v with zero successes", got)
	}
}

func TestStrictRunRejectsFailures(t *testing.T) {
	eng := simclock.New()
	rt := &faultyRuntime{fakeRuntime: fakeRuntime{eng: eng, service: time.Millisecond}, failFirst: 1}
	arr := []Arrival{{At: 0, Workload: model.Workload{Batch: 1, SeqLen: 16, Phase: model.Context}}}
	_, err := Run(eng, rt, arr)
	if err == nil || !strings.Contains(err.Error(), "failed") {
		t.Fatalf("strict Run accepted a failed batch: %v", err)
	}
}

func TestPolicyDeadlineAccounting(t *testing.T) {
	eng := simclock.New()
	rt := &fakeRuntime{eng: eng, service: 10 * time.Millisecond}
	// Both arrive at 0: latencies 10ms and 20ms (single-server queue).
	arr := []Arrival{
		{At: 0, Workload: model.Workload{Batch: 1, SeqLen: 16, Phase: model.Context}},
		{At: 0, Workload: model.Workload{Batch: 1, SeqLen: 16, Phase: model.Context}},
	}
	res, err := RunPolicy(eng, rt, arr, Policy{Deadline: 15 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses != 1 {
		t.Fatalf("deadline misses %d, want 1", res.DeadlineMisses)
	}
	if got := res.SLOMissRate(); got != 0.5 {
		t.Fatalf("SLO miss rate %v, want 0.5", got)
	}
	// Goodput: 1 batch within deadline over a 20ms makespan.
	if got := res.PolicyGoodput(); got != 50 {
		t.Fatalf("policy goodput %v, want 50", got)
	}
	if res.Deadline != 15*time.Millisecond {
		t.Fatalf("policy deadline %v not echoed", res.Deadline)
	}
}

func TestPolicyGoodputWithoutDeadline(t *testing.T) {
	r := Result{Completed: 4, Makespan: 2 * time.Second}
	if got := r.PolicyGoodput(); got != r.ThroughputBatches() {
		t.Fatalf("goodput without deadline %v, want raw throughput %v", got, r.ThroughputBatches())
	}
}

func TestPolicyValidation(t *testing.T) {
	bad := []Policy{
		{Deadline: -time.Second},
		{MaxRetries: -1},
		{Backoff: -time.Second},
		{BackoffCap: -time.Second},
		{MaxRetries: 1}, // retries need a backoff
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("bad policy %d accepted: %+v", i, p)
		}
	}
	eng := simclock.New()
	rt := &fakeRuntime{eng: eng, service: time.Millisecond}
	arr := []Arrival{{At: 0, Workload: model.Workload{Batch: 1, SeqLen: 16, Phase: model.Context}}}
	if _, err := RunPolicy(eng, rt, arr, Policy{MaxRetries: 1}); err == nil {
		t.Fatal("RunPolicy accepted an invalid policy")
	}
}

func TestBackoffCapping(t *testing.T) {
	p := Policy{Backoff: 2 * time.Millisecond, BackoffCap: 7 * time.Millisecond}
	want := []time.Duration{2 * time.Millisecond, 4 * time.Millisecond, 7 * time.Millisecond, 7 * time.Millisecond}
	for i, w := range want {
		if got := p.backoffFor(i + 1); got != w {
			t.Errorf("backoff for attempt %d = %v, want %v", i+1, got, w)
		}
	}
	uncapped := Policy{Backoff: time.Millisecond}
	if got := uncapped.backoffFor(4); got != 8*time.Millisecond {
		t.Errorf("uncapped backoff %v, want 8ms", got)
	}
}

var _ runtimes.Runtime = (*faultyRuntime)(nil)
