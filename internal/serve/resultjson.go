package serve

import (
	"encoding/json"
	"time"
)

// Result's JSON encoding is a flat summary — the scalar metrics plus
// the derived goodput/SLO accounting, with durations in milliseconds —
// rather than a dump of the struct: the per-batch Latencies and
// PerRequest slices would swamp an artifact with data the scenario
// reports never read, and derived metrics (goodput, SLO-miss) are what
// tools/benchdiff diffs by dotted path (results.Liger.goodput). The
// scenario name rides along so artifacts are self-identifying.

// resultJSON is the serialized layout.
type resultJSON struct {
	Scenario       string  `json:"scenario,omitempty"`
	Runtime        string  `json:"runtime"`
	Completed      int     `json:"completed"`
	Requests       int     `json:"requests"`
	Failed         int     `json:"failed"`
	Shed           int     `json:"shed"`
	Retries        int     `json:"retries"`
	Deferred       int     `json:"deferred"`
	Failovers      int     `json:"failovers"`
	Hedges         int     `json:"hedges,omitempty"`
	DeadlineMisses int     `json:"deadline_misses"`
	DeadlineMs     float64 `json:"deadline_ms,omitempty"`
	AvgLatencyMs   float64 `json:"avg_latency_ms"`
	P50Ms          float64 `json:"p50_ms"`
	P95Ms          float64 `json:"p95_ms"`
	P99Ms          float64 `json:"p99_ms"`
	MakespanMs     float64 `json:"makespan_ms"`
	RecoveryMs     float64 `json:"recovery_ms"`
	TTFTMs         float64 `json:"ttft_ms,omitempty"`
	TPOTMs         float64 `json:"tpot_ms,omitempty"`
	Preemptions    int     `json:"preemptions,omitempty"`
	Goodput        float64 `json:"goodput"`
	Throughput     float64 `json:"throughput"`
	ReqThroughput  float64 `json:"req_throughput"`
	SLOMiss        float64 `json:"slo_miss"`
	SuccessRate    float64 `json:"success_rate"`
}

func toMs(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// MarshalJSON implements json.Marshaler.
func (r Result) MarshalJSON() ([]byte, error) {
	return json.Marshal(resultJSON{
		Scenario:       r.Scenario,
		Runtime:        r.Runtime,
		Completed:      r.Completed,
		Requests:       r.Requests,
		Failed:         r.Failed,
		Shed:           r.Shed,
		Retries:        r.Retries,
		Deferred:       r.Deferred,
		Failovers:      r.Failovers,
		Hedges:         r.Hedges,
		DeadlineMisses: r.DeadlineMisses,
		DeadlineMs:     toMs(r.Deadline),
		AvgLatencyMs:   toMs(r.AvgLatency),
		P50Ms:          toMs(r.P50),
		P95Ms:          toMs(r.P95),
		P99Ms:          toMs(r.P99),
		MakespanMs:     toMs(r.Makespan),
		RecoveryMs:     toMs(r.RecoveryTime),
		TTFTMs:         toMs(r.TTFT),
		TPOTMs:         toMs(r.TPOT),
		Preemptions:    r.Preemptions,
		Goodput:        r.PolicyGoodput(),
		Throughput:     r.ThroughputBatches(),
		ReqThroughput:  r.ThroughputRequests(),
		SLOMiss:        r.SLOMissRate(),
		SuccessRate:    r.SuccessRate(),
	})
}
