package serve

import (
	"encoding/json"
	"time"
)

// Result's JSON encoding is a flat summary — the scalar metrics plus
// the derived goodput/SLO accounting, with durations in milliseconds —
// rather than a dump of the struct: the per-batch Latencies and
// PerRequest slices would swamp an artifact with data the scenario
// reports never read, and derived metrics (goodput, SLO-miss) are what
// tools/benchdiff diffs by dotted path (results.Liger.goodput). The
// scenario name rides along so artifacts are self-identifying.

// resultJSON is the serialized layout.
type resultJSON struct {
	Scenario       string  `json:"scenario,omitempty"`
	Runtime        string  `json:"runtime"`
	Completed      int     `json:"completed"`
	Requests       int     `json:"requests"`
	Failed         int     `json:"failed"`
	Shed           int     `json:"shed"`
	Retries        int     `json:"retries"`
	Deferred       int     `json:"deferred"`
	Failovers      int     `json:"failovers"`
	Hedges         int     `json:"hedges,omitempty"`
	DeadlineMisses int     `json:"deadline_misses"`
	DeadlineMs     float64 `json:"deadline_ms,omitempty"`
	AvgLatencyMs   float64 `json:"avg_latency_ms"`
	P50Ms          float64 `json:"p50_ms"`
	P95Ms          float64 `json:"p95_ms"`
	P99Ms          float64 `json:"p99_ms"`
	MakespanMs     float64 `json:"makespan_ms"`
	RecoveryMs     float64 `json:"recovery_ms"`
	// The serving block uses pointers so presence is explicit: a
	// continuous run always emits every field — zeros included — so
	// tools/benchdiff dotted paths (results.<rt>.preemptions, ...)
	// never go structurally missing when no iteration ran; batch runs
	// keep the historical behavior of omitting zero values.
	TTFTMs           *float64 `json:"ttft_ms,omitempty"`
	TPOTMs           *float64 `json:"tpot_ms,omitempty"`
	Preemptions      *int     `json:"preemptions,omitempty"`
	RecomputedTokens *int     `json:"recomputed_tokens,omitempty"`
	Iterations       *int     `json:"iterations,omitempty"`
	MeanPool         *float64 `json:"mean_pool,omitempty"`
	KVPeakBlocks     *int     `json:"kv_peak_blocks,omitempty"`
	Goodput          float64  `json:"goodput"`
	Throughput       float64  `json:"throughput"`
	ReqThroughput    float64  `json:"req_throughput"`
	SLOMiss          float64  `json:"slo_miss"`
	SuccessRate      float64  `json:"success_rate"`
}

func toMs(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func fptr(v float64) *float64 { return &v }
func iptr(v int) *int         { return &v }

// MarshalJSON implements json.Marshaler.
func (r Result) MarshalJSON() ([]byte, error) {
	j := resultJSON{
		Scenario:       r.Scenario,
		Runtime:        r.Runtime,
		Completed:      r.Completed,
		Requests:       r.Requests,
		Failed:         r.Failed,
		Shed:           r.Shed,
		Retries:        r.Retries,
		Deferred:       r.Deferred,
		Failovers:      r.Failovers,
		Hedges:         r.Hedges,
		DeadlineMisses: r.DeadlineMisses,
		DeadlineMs:     toMs(r.Deadline),
		AvgLatencyMs:   toMs(r.AvgLatency),
		P50Ms:          toMs(r.P50),
		P95Ms:          toMs(r.P95),
		P99Ms:          toMs(r.P99),
		MakespanMs:     toMs(r.Makespan),
		RecoveryMs:     toMs(r.RecoveryTime),
		Goodput:        r.PolicyGoodput(),
		Throughput:     r.ThroughputBatches(),
		ReqThroughput:  r.ThroughputRequests(),
		SLOMiss:        r.SLOMissRate(),
		SuccessRate:    r.SuccessRate(),
	}
	if r.Continuous {
		// Continuous runs emit the whole serving block unconditionally:
		// explicit zeros keep benchdiff paths structurally stable even
		// when zero iterations ran.
		j.TTFTMs = fptr(toMs(r.TTFT))
		j.TPOTMs = fptr(toMs(r.TPOT))
		j.Preemptions = iptr(r.Preemptions)
		j.RecomputedTokens = iptr(r.RecomputedTokens)
		j.Iterations = iptr(r.Iterations)
		j.MeanPool = fptr(r.MeanPool)
		j.KVPeakBlocks = iptr(r.KVPeakBlocks)
	} else {
		if r.TTFT != 0 {
			j.TTFTMs = fptr(toMs(r.TTFT))
		}
		if r.TPOT != 0 {
			j.TPOTMs = fptr(toMs(r.TPOT))
		}
		if r.Preemptions != 0 {
			j.Preemptions = iptr(r.Preemptions)
		}
		if r.RecomputedTokens != 0 {
			j.RecomputedTokens = iptr(r.RecomputedTokens)
		}
	}
	return json.Marshal(j)
}
