package serve

import "time"

// SLO metrics over a serving result: production deployments care about
// deadline attainment and goodput, not just means. The explicit-
// deadline forms take any deadline; the argument-free forms use the
// policy deadline the run was served under (Result.Deadline).

// DeadlineMissRate returns the fraction of successful batches whose
// latency exceeded the deadline.
func (r Result) DeadlineMissRate(deadline time.Duration) float64 {
	if len(r.Latencies) == 0 {
		return 0
	}
	missed := 0
	for _, l := range r.Latencies {
		if l > deadline {
			missed++
		}
	}
	return float64(missed) / float64(len(r.Latencies))
}

// Goodput returns the throughput of batches that met the deadline
// (batches/second). Failed batches never count.
func (r Result) Goodput(deadline time.Duration) float64 {
	if r.Makespan <= 0 {
		return 0
	}
	met := 0
	for _, l := range r.Latencies {
		if l <= deadline {
			met++
		}
	}
	return float64(met) / r.Makespan.Seconds()
}

// PolicyGoodput is Goodput at the policy deadline the run was served
// under; with no deadline set it degrades to raw throughput (every
// success is good).
func (r Result) PolicyGoodput() float64 {
	if r.Deadline <= 0 {
		return r.ThroughputBatches()
	}
	return r.Goodput(r.Deadline)
}

// SLOMissRate returns the fraction of submitted batches that violated
// the SLO: successful batches past the policy deadline plus batches
// that failed outright. With no deadline set, only failures count.
func (r Result) SLOMissRate() float64 {
	total := r.Completed + r.Failed
	if total == 0 {
		return 0
	}
	return float64(r.DeadlineMisses+r.Failed) / float64(total)
}

// SuccessRate returns the fraction of submitted batches that eventually
// succeeded (1 when nothing failed).
func (r Result) SuccessRate() float64 {
	total := r.Completed + r.Failed
	if total == 0 {
		return 0
	}
	return float64(r.Completed) / float64(total)
}
