package serve

import "time"

// SLO metrics over a serving result: production deployments care about
// deadline attainment, not just means.

// DeadlineMissRate returns the fraction of batches whose latency
// exceeded the deadline.
func (r Result) DeadlineMissRate(deadline time.Duration) float64 {
	if len(r.Latencies) == 0 {
		return 0
	}
	missed := 0
	for _, l := range r.Latencies {
		if l > deadline {
			missed++
		}
	}
	return float64(missed) / float64(len(r.Latencies))
}

// Goodput returns the throughput of batches that met the deadline
// (batches/second).
func (r Result) Goodput(deadline time.Duration) float64 {
	if r.Makespan <= 0 {
		return 0
	}
	met := 0
	for _, l := range r.Latencies {
		if l <= deadline {
			met++
		}
	}
	return float64(met) / r.Makespan.Seconds()
}
