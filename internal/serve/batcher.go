package serve

import (
	"fmt"
	"time"

	"liger/internal/model"
	"liger/internal/simclock"
)

// Request is one inference request arriving at the serving frontend,
// before batching. The paper's workflow (Fig. 5) receives requests,
// packs them into a batch, and hands the batch to the runtime.
type Request struct {
	ID        int
	SeqLen    int
	ArrivedAt simclock.Time
}

// Batcher packs individual requests into batches: a batch is emitted
// when MaxBatch requests have accumulated or when the oldest pending
// request has waited MaxWait. Requests in a batch are padded to the
// longest sequence among them, as batched transformer inference
// requires.
type Batcher struct {
	eng      *simclock.Engine
	maxBatch int
	maxWait  time.Duration
	emit     func(w model.Workload, reqs []Request)

	pending []Request
	timer   simclock.Handle
	armed   bool

	// BatchesEmitted / RequestsBatched count activity.
	BatchesEmitted  int
	RequestsBatched int
}

// NewBatcher builds a batching frontend. emit is called from within the
// simulation whenever a batch is formed.
func NewBatcher(eng *simclock.Engine, maxBatch int, maxWait time.Duration, emit func(w model.Workload, reqs []Request)) (*Batcher, error) {
	if maxBatch < 1 {
		return nil, fmt.Errorf("serve: batcher max batch %d", maxBatch)
	}
	if maxWait <= 0 {
		return nil, fmt.Errorf("serve: batcher max wait %v", maxWait)
	}
	if emit == nil {
		return nil, fmt.Errorf("serve: batcher needs an emit function")
	}
	return &Batcher{eng: eng, maxBatch: maxBatch, maxWait: maxWait, emit: emit}, nil
}

// Add enqueues a request; must be called from an engine callback. A
// zero ArrivedAt is stamped with the current instant; a non-zero stamp
// is preserved — a request deferred during recovery and re-added later
// keeps its original arrival, so queue-wait and latency accounting
// still span the deferral.
func (b *Batcher) Add(r Request) {
	if r.ArrivedAt == 0 {
		r.ArrivedAt = b.eng.Now()
	}
	b.pending = append(b.pending, r)
	if len(b.pending) >= b.maxBatch {
		b.flush()
		return
	}
	if !b.armed {
		b.armed = true
		b.timer = b.eng.After(b.maxWait, func(simclock.Time) {
			b.armed = false
			b.flush()
		})
	}
}

// Flush emits any pending partial batch immediately (end of trace).
func (b *Batcher) Flush() { b.flush() }

// Pending reports requests waiting for a batch.
func (b *Batcher) Pending() int { return len(b.pending) }

func (b *Batcher) flush() {
	if b.armed {
		b.timer.Cancel()
		b.armed = false
	}
	if len(b.pending) == 0 {
		return
	}
	reqs := b.pending
	b.pending = nil
	maxSeq := 0
	for _, r := range reqs {
		if r.SeqLen > maxSeq {
			maxSeq = r.SeqLen
		}
	}
	b.BatchesEmitted++
	b.RequestsBatched += len(reqs)
	b.emit(model.Workload{Batch: len(reqs), SeqLen: maxSeq, Phase: model.Context}, reqs)
}
