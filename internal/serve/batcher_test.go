package serve

import (
	"testing"
	"time"

	"liger/internal/model"
	"liger/internal/simclock"
)

type emitted struct {
	w    model.Workload
	reqs []Request
	at   simclock.Time
}

func collectBatches(t *testing.T, maxBatch int, maxWait time.Duration) (*simclock.Engine, *Batcher, *[]emitted) {
	t.Helper()
	eng := simclock.New()
	var out []emitted
	b, err := NewBatcher(eng, maxBatch, maxWait, func(w model.Workload, reqs []Request) {
		out = append(out, emitted{w: w, reqs: reqs, at: eng.Now()})
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, b, &out
}

func TestBatcherFillsToMaxBatch(t *testing.T) {
	eng, b, out := collectBatches(t, 4, time.Second)
	eng.After(0, func(simclock.Time) {
		for i := 0; i < 8; i++ {
			b.Add(Request{ID: i, SeqLen: 16 + i})
		}
	})
	eng.Run()
	if len(*out) != 2 {
		t.Fatalf("emitted %d batches, want 2", len(*out))
	}
	for _, e := range *out {
		if e.w.Batch != 4 {
			t.Fatalf("batch size %d", e.w.Batch)
		}
	}
	// Full batches flush immediately, not after the timeout.
	if (*out)[0].at != 0 {
		t.Fatalf("full batch flushed at %v, want immediately", (*out)[0].at)
	}
}

func TestBatcherTimeoutFlushesPartial(t *testing.T) {
	eng, b, out := collectBatches(t, 8, 5*time.Millisecond)
	eng.After(0, func(simclock.Time) {
		b.Add(Request{ID: 0, SeqLen: 32})
		b.Add(Request{ID: 1, SeqLen: 64})
	})
	eng.Run()
	if len(*out) != 1 {
		t.Fatalf("emitted %d batches", len(*out))
	}
	e := (*out)[0]
	if e.at != simclock.Time(5*time.Millisecond) {
		t.Fatalf("partial batch flushed at %v, want 5ms", e.at)
	}
	if e.w.Batch != 2 {
		t.Fatalf("batch size %d", e.w.Batch)
	}
}

func TestBatcherPadsToLongestSequence(t *testing.T) {
	eng, b, out := collectBatches(t, 3, time.Millisecond)
	eng.After(0, func(simclock.Time) {
		b.Add(Request{ID: 0, SeqLen: 16})
		b.Add(Request{ID: 1, SeqLen: 128})
		b.Add(Request{ID: 2, SeqLen: 64})
	})
	eng.Run()
	if (*out)[0].w.SeqLen != 128 {
		t.Fatalf("padded seq %d, want 128", (*out)[0].w.SeqLen)
	}
}

func TestBatcherTimerResetAfterFlush(t *testing.T) {
	eng, b, out := collectBatches(t, 2, 5*time.Millisecond)
	eng.After(0, func(simclock.Time) { b.Add(Request{ID: 0, SeqLen: 16}) })
	// Second request arrives late and alone: its own timeout applies.
	eng.At(simclock.Time(20*time.Millisecond), func(simclock.Time) { b.Add(Request{ID: 1, SeqLen: 16}) })
	eng.Run()
	if len(*out) != 2 {
		t.Fatalf("emitted %d batches", len(*out))
	}
	if (*out)[0].at != simclock.Time(5*time.Millisecond) || (*out)[1].at != simclock.Time(25*time.Millisecond) {
		t.Fatalf("flush times %v / %v", (*out)[0].at, (*out)[1].at)
	}
}

func TestBatcherManualFlush(t *testing.T) {
	eng, b, out := collectBatches(t, 10, time.Hour)
	eng.After(0, func(simclock.Time) {
		b.Add(Request{ID: 0, SeqLen: 16})
		b.Flush()
	})
	eng.Run()
	if len(*out) != 1 || b.Pending() != 0 {
		t.Fatalf("manual flush failed: %d batches, %d pending", len(*out), b.Pending())
	}
	if b.BatchesEmitted != 1 || b.RequestsBatched != 1 {
		t.Fatalf("counters %d/%d", b.BatchesEmitted, b.RequestsBatched)
	}
}

// A caller-supplied arrival stamp must survive batching: a request
// deferred during recovery and re-added later keeps its original
// arrival, so queue-wait accounting spans the deferral. Only a zero
// stamp is filled in with the current instant.
func TestBatcherPreservesCallerArrivedAt(t *testing.T) {
	eng, b, out := collectBatches(t, 2, time.Second)
	eng.At(simclock.Time(50*time.Millisecond), func(simclock.Time) {
		b.Add(Request{ID: 0, SeqLen: 16, ArrivedAt: simclock.Time(5 * time.Millisecond)})
		b.Add(Request{ID: 1, SeqLen: 16})
	})
	eng.Run()
	if len(*out) != 1 {
		t.Fatalf("emitted %d batches", len(*out))
	}
	reqs := (*out)[0].reqs
	if reqs[0].ArrivedAt != simclock.Time(5*time.Millisecond) {
		t.Fatalf("caller stamp overwritten: ArrivedAt %v, want 5ms", reqs[0].ArrivedAt)
	}
	if reqs[1].ArrivedAt != simclock.Time(50*time.Millisecond) {
		t.Fatalf("zero stamp not filled: ArrivedAt %v, want 50ms", reqs[1].ArrivedAt)
	}
}

func TestBatcherEmptyFlushNoop(t *testing.T) {
	_, b, out := collectBatches(t, 4, time.Millisecond)
	b.Flush()
	if len(*out) != 0 {
		t.Fatal("empty flush emitted a batch")
	}
}

func TestBatcherValidation(t *testing.T) {
	eng := simclock.New()
	emit := func(model.Workload, []Request) {}
	if _, err := NewBatcher(eng, 0, time.Millisecond, emit); err == nil {
		t.Error("maxBatch 0 accepted")
	}
	if _, err := NewBatcher(eng, 4, 0, emit); err == nil {
		t.Error("maxWait 0 accepted")
	}
	if _, err := NewBatcher(eng, 4, time.Millisecond, nil); err == nil {
		t.Error("nil emit accepted")
	}
}
