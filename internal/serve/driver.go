package serve

import (
	"fmt"
	"math"
	"time"

	"liger/internal/runtimes"
	"liger/internal/simclock"
	"liger/internal/stats"
)

// Policy is the deadline/retry serving policy. The zero value is the
// paper's original semantics: no deadlines, no retries, and any failed
// batch is a run error.
type Policy struct {
	// Deadline is the per-batch latency SLO (arrival to final success);
	// zero disables deadline accounting.
	Deadline time.Duration
	// MaxRetries bounds resubmissions per batch after a failure
	// (a collective abort under fault injection). Zero disables retry:
	// a failed batch counts in Result.Failed immediately.
	MaxRetries int
	// Backoff is the delay before the first resubmission; each further
	// retry doubles it (capped exponential backoff).
	Backoff time.Duration
	// BackoffCap bounds the doubled backoff; zero means no cap.
	BackoffCap time.Duration
	// QueueLimit bounds admitted-but-unresolved batches (the bounded
	// admission queue). An arrival past the bound is shed — counted in
	// Result.Shed, never submitted — so a recovery backlog drains
	// instead of compounding into the retry loop. Zero disables
	// shedding.
	QueueLimit int
}

// Validate reports nonsensical policies.
func (p Policy) Validate() error {
	switch {
	case p.Deadline < 0:
		return fmt.Errorf("serve: negative deadline %v", p.Deadline)
	case p.MaxRetries < 0:
		return fmt.Errorf("serve: negative retry budget %d", p.MaxRetries)
	case p.Backoff < 0 || p.BackoffCap < 0:
		return fmt.Errorf("serve: negative backoff %v / cap %v", p.Backoff, p.BackoffCap)
	case p.MaxRetries > 0 && p.Backoff == 0:
		return fmt.Errorf("serve: retries without a backoff would resubmit at the failure instant")
	case p.BackoffCap > 0 && p.BackoffCap < p.Backoff:
		return fmt.Errorf("serve: backoff cap %v below the first delay %v", p.BackoffCap, p.Backoff)
	case p.QueueLimit < 0:
		return fmt.Errorf("serve: negative queue limit %d", p.QueueLimit)
	}
	return nil
}

// backoffFor returns the delay before resubmission attempt (1-based).
// The doubling saturates: at the cap when one is set, else at the
// maximum representable duration (the former unbounded doubling
// overflowed to a negative delay around attempt 63).
func (p Policy) backoffFor(attempt int) time.Duration {
	d := p.Backoff
	if d <= 0 {
		return 0
	}
	for i := 1; i < attempt; i++ {
		if p.BackoffCap > 0 && d >= p.BackoffCap {
			return p.BackoffCap
		}
		if d > math.MaxInt64/2 {
			return time.Duration(math.MaxInt64)
		}
		d *= 2
	}
	if p.BackoffCap > 0 && d > p.BackoffCap {
		return p.BackoffCap
	}
	return d
}

// Result summarizes one serving run.
type Result struct {
	Runtime string
	// Scenario names the declarative scenario this run served, when it
	// was driven by one (internal/scenario); empty otherwise. It rides
	// along in the JSON encoding so scenario artifacts are
	// self-identifying and tools/benchdiff can diff them by dotted path.
	Scenario string
	// Completed is the number of batches that finished successfully.
	Completed int
	// Requests is successful batches × batch size.
	Requests int
	// AvgLatency is the mean pending + execution latency per batch.
	AvgLatency time.Duration
	// P50/P95/P99 latency percentiles.
	P50, P95, P99 time.Duration
	// Makespan is first arrival to last completion.
	Makespan time.Duration
	// Latencies holds every successful batch latency, completion-ordered.
	// Retried batches are measured from their original arrival, so
	// backoff time is inside the number.
	Latencies []time.Duration

	// Deadline echoes Policy.Deadline so goodput and SLO-miss accessors
	// need no extra argument (zero when no deadline was set).
	Deadline time.Duration
	// Retries counts resubmissions after failures.
	Retries int
	// Failed counts batches that exhausted the retry budget and never
	// succeeded.
	Failed int
	// DeadlineMisses counts successful batches that finished past the
	// deadline (failed batches are accounted separately).
	DeadlineMisses int

	// Shed counts arrivals dropped by the bounded admission queue
	// (Policy.QueueLimit); they were never submitted. Every arrival is
	// accounted exactly once: Completed + Failed + Shed = arrivals.
	Shed int
	// Deferred counts arrivals that landed while the runtime was
	// reconfiguring after a device failure: they were parked and
	// submitted at the resume instant, and still resolve into Completed
	// or Failed.
	Deferred int
	// Failovers counts device-failure reconfigurations the runtime
	// performed during the run. In a fleet run (RunFleet) it also counts
	// whole-node evictions.
	Failovers int
	// Hedges counts duplicate dispatches the fleet router sent after the
	// hedging delay elapsed without a completion (RunFleet only; zero in
	// single-node runs).
	Hedges int
	// RecoveryTime is the total sim time the runtime reported
	// "reconfiguring" (time-to-recover, summed over failovers).
	RecoveryTime time.Duration

	// TTFT/TPOT are the mean time-to-first-token and time-per-output-
	// token of a continuous-batching run (scenario workload.mode:
	// continuous); zero for batch-serving runs.
	TTFT time.Duration
	TPOT time.Duration
	// Preemptions counts sequences evicted under KV memory pressure in a
	// continuous run (paged allocator only).
	Preemptions int

	// Continuous marks a continuous-batching (token-serving) run. The
	// JSON encoding keys on it: continuous runs always emit the serving
	// block (ttft_ms, tpot_ms, preemptions, recomputed_tokens,
	// iterations, mean_pool, kv_peak_blocks) even when every value is
	// zero, so tools/benchdiff dotted paths never go structurally
	// missing between artifacts.
	Continuous bool
	// RecomputedTokens totals the prefill tokens recomputed after
	// preemptions (recompute-on-resume); Iterations and MeanPool
	// describe decode scheduling; KVPeakBlocks is the paged allocator's
	// allocation high-water mark (zero under the reservation manager).
	RecomputedTokens int
	Iterations       int
	MeanPool         float64
	KVPeakBlocks     int

	// PerRequest holds the serving-side latency decomposition, one entry
	// per arrival in arrival order (RunPolicy only).
	PerRequest []RequestLat
}

// RequestLat decomposes one arrival's serving-side latency. The
// on-device split (compute/comm/stall) comes from the trace recorder
// (trace.Recorder.ReqBreakdown), keyed by Req.
type RequestLat struct {
	// Req is the request id: the arrival's index, as threaded to the
	// runtime via runtimes.Tagged.
	Req int
	// Arrival and Done are sim instants (Done is the terminal
	// resolution: final success or final failure; for a shed arrival it
	// equals Arrival).
	Arrival time.Duration
	Done    time.Duration
	// QueueWait is arrival → first submission to the runtime: admission
	// queueing plus any pre-submission deferral.
	QueueWait time.Duration
	// Deferral is the total time the request sat parked while the
	// runtime reconfigured after a device failure (both the deferred
	// first submission and parked retries).
	Deferral time.Duration
	// Retries counts this request's resubmissions after failures.
	Retries int
	Failed  bool
	Shed    bool
}

// ThroughputBatches returns completed batches per second.
func (r Result) ThroughputBatches() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.Completed) / r.Makespan.Seconds()
}

// ThroughputRequests returns completed requests per second (the paper's
// throughput metric).
func (r Result) ThroughputRequests() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Makespan.Seconds()
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%-9s  avgLat=%-12v p99=%-12v throughput=%.2f req/s",
		r.Runtime, r.AvgLatency.Round(time.Microsecond), r.P99.Round(time.Microsecond),
		r.ThroughputRequests())
}

// Run drives a runtime with the arrival trace on the given engine and
// collects metrics once every batch completes. It keeps the original
// strict semantics: no deadlines, no retries, and any failure is an
// error.
func Run(eng *simclock.Engine, rt runtimes.Runtime, arrivals []Arrival) (Result, error) {
	res, err := RunPolicy(eng, rt, arrivals, Policy{})
	if err != nil {
		return res, err
	}
	if res.Failed > 0 {
		return res, fmt.Errorf("serve: %d batches failed with no retry policy", res.Failed)
	}
	return res, nil
}

// RunPolicy drives a runtime with the arrival trace under a
// deadline/retry policy. A batch whose completion reports Failed (a
// collective abort under fault injection) is resubmitted after a capped
// exponential backoff until it succeeds or the retry budget is spent;
// successful-batch latency spans original arrival to final success, so
// goodput and deadline misses price in the recovery time.
//
// Recovery-aware overload protection: when the runtime is Elastic and
// reports "reconfiguring" after a permanent device failure, arrivals
// are deferred (parked, submitted at the resume instant) and retries
// are suppressed until resume — the retry budget is spent against the
// new world, not the dead one. Independently, QueueLimit sheds
// arrivals past the admission bound so the post-failure backlog drains
// instead of compounding.
func RunPolicy(eng *simclock.Engine, rt runtimes.Runtime, arrivals []Arrival, pol Policy) (Result, error) {
	res := Result{Runtime: rt.Name(), Deadline: pol.Deadline}
	if len(arrivals) == 0 {
		return res, fmt.Errorf("serve: empty trace")
	}
	if err := pol.Validate(); err != nil {
		return res, err
	}
	elastic, _ := rt.(runtimes.Elastic)
	tagged, _ := rt.(runtimes.Tagged)
	// PerRequest tracks every arrival's serving-side decomposition; the
	// request id is the arrival index, threaded to tagged runtimes.
	res.PerRequest = make([]RequestLat, len(arrivals))
	for i := range res.PerRequest {
		res.PerRequest[i] = RequestLat{Req: i, Arrival: time.Duration(arrivals[i].At)}
	}
	// Runtimes complete batches with IDs assigned in submission order;
	// subs maps completion ID back to the originating arrival + attempt.
	type submission struct {
		arrival int
		attempt int
		// parkedAt is when the entry was parked during a reconfiguration
		// (valid for entries in the parked list only).
		parkedAt simclock.Time
	}
	var subs []submission
	var submitErr error
	var lastDone simclock.Time
	// inflight counts admitted arrivals not yet terminally resolved —
	// the bounded admission queue's occupancy. Deferred arrivals and
	// parked retries stay in it.
	inflight := 0
	// parked holds work suppressed during a reconfiguration: attempt 0
	// entries are deferred arrivals, attempt > 0 entries are retries of
	// batches that failed while the runtime was already reconfiguring.
	var parked []submission
	submit := func(arrival, attempt int) {
		subs = append(subs, submission{arrival: arrival, attempt: attempt})
		if attempt == 0 {
			res.PerRequest[arrival].QueueWait =
				time.Duration(eng.Now()) - res.PerRequest[arrival].Arrival
		}
		var err error
		if tagged != nil {
			err = tagged.SubmitReq(arrivals[arrival].Workload, arrival)
		} else {
			err = rt.Submit(arrivals[arrival].Workload)
		}
		if err != nil && submitErr == nil {
			submitErr = err
		}
	}
	retryAfterBackoff := func(arrival, attempt int) {
		res.Retries++
		res.PerRequest[arrival].Retries++
		eng.After(pol.backoffFor(attempt), func(simclock.Time) {
			submit(arrival, attempt)
		})
	}
	rt.SetOnDone(func(c runtimes.Completion) {
		sub := subs[c.ID]
		if c.Done > lastDone {
			lastDone = c.Done
		}
		if c.Failed {
			if sub.attempt < pol.MaxRetries {
				if elastic != nil && elastic.Reconfiguring() {
					parked = append(parked, submission{arrival: sub.arrival,
						attempt: sub.attempt + 1, parkedAt: c.Done})
					return
				}
				retryAfterBackoff(sub.arrival, sub.attempt+1)
			} else {
				res.Failed++
				inflight--
				res.PerRequest[sub.arrival].Failed = true
				res.PerRequest[sub.arrival].Done = time.Duration(c.Done)
			}
			return
		}
		res.Completed++
		inflight--
		res.Requests += c.Workload.Batch
		lat := time.Duration(c.Done - arrivals[sub.arrival].At)
		res.Latencies = append(res.Latencies, lat)
		res.PerRequest[sub.arrival].Done = time.Duration(c.Done)
		if pol.Deadline > 0 && lat > pol.Deadline {
			res.DeadlineMisses++
		}
	})
	if elastic != nil {
		elastic.OnReconfigured(func(now simclock.Time) {
			flush := parked
			parked = nil
			for _, p := range flush {
				res.PerRequest[p.arrival].Deferral += time.Duration(now - p.parkedAt)
				if p.attempt > 0 {
					retryAfterBackoff(p.arrival, p.attempt)
				} else {
					submit(p.arrival, 0)
				}
			}
		})
	}
	for i, a := range arrivals {
		arrival := i
		eng.At(a.At, func(now simclock.Time) {
			if pol.QueueLimit > 0 && inflight >= pol.QueueLimit {
				res.Shed++
				res.PerRequest[arrival].Shed = true
				res.PerRequest[arrival].Done = time.Duration(now)
				return
			}
			inflight++
			if elastic != nil && elastic.Reconfiguring() {
				res.Deferred++
				parked = append(parked, submission{arrival: arrival, parkedAt: now})
				return
			}
			submit(arrival, 0)
		})
	}
	eng.Run()
	if submitErr != nil {
		return res, submitErr
	}
	if elastic != nil {
		res.Failovers, res.RecoveryTime = elastic.FailoverStats()
	}
	if res.Completed+res.Failed+res.Shed != len(arrivals) {
		return res, fmt.Errorf("serve: %d of %d batches accounted for (%d ok, %d failed, %d shed)",
			res.Completed+res.Failed+res.Shed, len(arrivals), res.Completed, res.Failed, res.Shed)
	}
	res.AvgLatency = stats.Mean(res.Latencies)
	pcts := stats.Percentiles(res.Latencies, 50, 95, 99)
	res.P50, res.P95, res.P99 = pcts[0], pcts[1], pcts[2]
	res.Makespan = time.Duration(lastDone - arrivals[0].At)
	return res, nil
}
