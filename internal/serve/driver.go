package serve

import (
	"fmt"
	"time"

	"liger/internal/runtimes"
	"liger/internal/simclock"
	"liger/internal/stats"
)

// Policy is the deadline/retry serving policy. The zero value is the
// paper's original semantics: no deadlines, no retries, and any failed
// batch is a run error.
type Policy struct {
	// Deadline is the per-batch latency SLO (arrival to final success);
	// zero disables deadline accounting.
	Deadline time.Duration
	// MaxRetries bounds resubmissions per batch after a failure
	// (a collective abort under fault injection). Zero disables retry:
	// a failed batch counts in Result.Failed immediately.
	MaxRetries int
	// Backoff is the delay before the first resubmission; each further
	// retry doubles it (capped exponential backoff).
	Backoff time.Duration
	// BackoffCap bounds the doubled backoff; zero means no cap.
	BackoffCap time.Duration
}

// Validate reports nonsensical policies.
func (p Policy) Validate() error {
	switch {
	case p.Deadline < 0:
		return fmt.Errorf("serve: negative deadline %v", p.Deadline)
	case p.MaxRetries < 0:
		return fmt.Errorf("serve: negative retry budget %d", p.MaxRetries)
	case p.Backoff < 0 || p.BackoffCap < 0:
		return fmt.Errorf("serve: negative backoff %v / cap %v", p.Backoff, p.BackoffCap)
	case p.MaxRetries > 0 && p.Backoff == 0:
		return fmt.Errorf("serve: retries without a backoff would resubmit at the failure instant")
	}
	return nil
}

// backoffFor returns the delay before resubmission attempt (1-based).
func (p Policy) backoffFor(attempt int) time.Duration {
	d := p.Backoff
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.BackoffCap > 0 && d >= p.BackoffCap {
			return p.BackoffCap
		}
	}
	if p.BackoffCap > 0 && d > p.BackoffCap {
		return p.BackoffCap
	}
	return d
}

// Result summarizes one serving run.
type Result struct {
	Runtime string
	// Completed is the number of batches that finished successfully.
	Completed int
	// Requests is successful batches × batch size.
	Requests int
	// AvgLatency is the mean pending + execution latency per batch.
	AvgLatency time.Duration
	// P50/P95/P99 latency percentiles.
	P50, P95, P99 time.Duration
	// Makespan is first arrival to last completion.
	Makespan time.Duration
	// Latencies holds every successful batch latency, completion-ordered.
	// Retried batches are measured from their original arrival, so
	// backoff time is inside the number.
	Latencies []time.Duration

	// Deadline echoes Policy.Deadline so goodput and SLO-miss accessors
	// need no extra argument (zero when no deadline was set).
	Deadline time.Duration
	// Retries counts resubmissions after failures.
	Retries int
	// Failed counts batches that exhausted the retry budget and never
	// succeeded.
	Failed int
	// DeadlineMisses counts successful batches that finished past the
	// deadline (failed batches are accounted separately).
	DeadlineMisses int
}

// ThroughputBatches returns completed batches per second.
func (r Result) ThroughputBatches() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.Completed) / r.Makespan.Seconds()
}

// ThroughputRequests returns completed requests per second (the paper's
// throughput metric).
func (r Result) ThroughputRequests() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Makespan.Seconds()
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%-9s  avgLat=%-12v p99=%-12v throughput=%.2f req/s",
		r.Runtime, r.AvgLatency.Round(time.Microsecond), r.P99.Round(time.Microsecond),
		r.ThroughputRequests())
}

// Run drives a runtime with the arrival trace on the given engine and
// collects metrics once every batch completes. It keeps the original
// strict semantics: no deadlines, no retries, and any failure is an
// error.
func Run(eng *simclock.Engine, rt runtimes.Runtime, arrivals []Arrival) (Result, error) {
	res, err := RunPolicy(eng, rt, arrivals, Policy{})
	if err != nil {
		return res, err
	}
	if res.Failed > 0 {
		return res, fmt.Errorf("serve: %d batches failed with no retry policy", res.Failed)
	}
	return res, nil
}

// RunPolicy drives a runtime with the arrival trace under a
// deadline/retry policy. A batch whose completion reports Failed (a
// collective abort under fault injection) is resubmitted after a capped
// exponential backoff until it succeeds or the retry budget is spent;
// successful-batch latency spans original arrival to final success, so
// goodput and deadline misses price in the recovery time.
func RunPolicy(eng *simclock.Engine, rt runtimes.Runtime, arrivals []Arrival, pol Policy) (Result, error) {
	res := Result{Runtime: rt.Name(), Deadline: pol.Deadline}
	if len(arrivals) == 0 {
		return res, fmt.Errorf("serve: empty trace")
	}
	if err := pol.Validate(); err != nil {
		return res, err
	}
	// Runtimes complete batches with IDs assigned in submission order;
	// subs maps completion ID back to the originating arrival + attempt.
	type submission struct {
		arrival int
		attempt int
	}
	var subs []submission
	var submitErr error
	var lastDone simclock.Time
	submit := func(arrival, attempt int) {
		subs = append(subs, submission{arrival: arrival, attempt: attempt})
		if err := rt.Submit(arrivals[arrival].Workload); err != nil && submitErr == nil {
			submitErr = err
		}
	}
	rt.SetOnDone(func(c runtimes.Completion) {
		sub := subs[c.ID]
		if c.Done > lastDone {
			lastDone = c.Done
		}
		if c.Failed {
			if sub.attempt < pol.MaxRetries {
				res.Retries++
				attempt := sub.attempt + 1
				arrival := sub.arrival
				eng.After(pol.backoffFor(attempt), func(simclock.Time) {
					submit(arrival, attempt)
				})
			} else {
				res.Failed++
			}
			return
		}
		res.Completed++
		res.Requests += c.Workload.Batch
		lat := time.Duration(c.Done - arrivals[sub.arrival].At)
		res.Latencies = append(res.Latencies, lat)
		if pol.Deadline > 0 && lat > pol.Deadline {
			res.DeadlineMisses++
		}
	})
	for i, a := range arrivals {
		arrival := i
		eng.At(a.At, func(simclock.Time) { submit(arrival, 0) })
	}
	eng.Run()
	if submitErr != nil {
		return res, submitErr
	}
	if res.Completed+res.Failed != len(arrivals) {
		return res, fmt.Errorf("serve: %d of %d batches accounted for (%d ok, %d failed)",
			res.Completed+res.Failed, len(arrivals), res.Completed, res.Failed)
	}
	res.AvgLatency = stats.Mean(res.Latencies)
	res.P50 = stats.Percentile(res.Latencies, 50)
	res.P95 = stats.Percentile(res.Latencies, 95)
	res.P99 = stats.Percentile(res.Latencies, 99)
	res.Makespan = time.Duration(lastDone - arrivals[0].At)
	return res, nil
}
