package serve

import (
	"fmt"
	"time"

	"liger/internal/runtimes"
	"liger/internal/simclock"
	"liger/internal/stats"
)

// Result summarizes one serving run.
type Result struct {
	Runtime string
	// Completed is the number of finished batches.
	Completed int
	// Requests is batches × batch size.
	Requests int
	// AvgLatency is the mean pending + execution latency per batch.
	AvgLatency time.Duration
	// P50/P95/P99 latency percentiles.
	P50, P95, P99 time.Duration
	// Makespan is first arrival to last completion.
	Makespan time.Duration
	// Latencies holds every batch latency, completion-ordered.
	Latencies []time.Duration
}

// ThroughputBatches returns completed batches per second.
func (r Result) ThroughputBatches() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.Completed) / r.Makespan.Seconds()
}

// ThroughputRequests returns completed requests per second (the paper's
// throughput metric).
func (r Result) ThroughputRequests() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Makespan.Seconds()
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%-9s  avgLat=%-12v p99=%-12v throughput=%.2f req/s",
		r.Runtime, r.AvgLatency.Round(time.Microsecond), r.P99.Round(time.Microsecond),
		r.ThroughputRequests())
}

// Run drives a runtime with the arrival trace on the given engine and
// collects metrics once every batch completes.
func Run(eng *simclock.Engine, rt runtimes.Runtime, arrivals []Arrival) (Result, error) {
	res := Result{Runtime: rt.Name()}
	if len(arrivals) == 0 {
		return res, fmt.Errorf("serve: empty trace")
	}
	var submitErr error
	var lastDone simclock.Time
	rt.SetOnDone(func(c runtimes.Completion) {
		res.Completed++
		res.Requests += c.Workload.Batch
		res.Latencies = append(res.Latencies, time.Duration(c.Latency()))
		if c.Done > lastDone {
			lastDone = c.Done
		}
	})
	for _, a := range arrivals {
		w := a.Workload
		eng.At(a.At, func(simclock.Time) {
			if err := rt.Submit(w); err != nil && submitErr == nil {
				submitErr = err
			}
		})
	}
	eng.Run()
	if submitErr != nil {
		return res, submitErr
	}
	if res.Completed != len(arrivals) {
		return res, fmt.Errorf("serve: %d of %d batches completed", res.Completed, len(arrivals))
	}
	res.AvgLatency = stats.Mean(res.Latencies)
	res.P50 = stats.Percentile(res.Latencies, 50)
	res.P95 = stats.Percentile(res.Latencies, 95)
	res.P99 = stats.Percentile(res.Latencies, 99)
	res.Makespan = time.Duration(lastDone - arrivals[0].At)
	return res, nil
}
