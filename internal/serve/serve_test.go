package serve

import (
	"testing"
	"testing/quick"
	"time"

	"liger/internal/model"
	"liger/internal/runtimes"
	"liger/internal/simclock"
)

func baseTrace() TraceConfig {
	return TraceConfig{
		Batches:    50,
		BatchSize:  2,
		RatePerSec: 100,
		MinSeq:     16,
		MaxSeq:     128,
		Seed:       1,
	}
}

func TestGenerateConstantRate(t *testing.T) {
	arr, err := Generate(baseTrace())
	if err != nil {
		t.Fatal(err)
	}
	if len(arr) != 50 {
		t.Fatalf("got %d arrivals", len(arr))
	}
	gap := arr[1].At - arr[0].At
	if gap != 10*time.Millisecond {
		t.Fatalf("gap = %v, want 10ms at 100/s", gap)
	}
	for i := 1; i < len(arr); i++ {
		if arr[i].At-arr[i-1].At != gap {
			t.Fatal("constant-rate gaps not constant")
		}
	}
}

func TestGenerateSeqRange(t *testing.T) {
	arr, err := Generate(baseTrace())
	if err != nil {
		t.Fatal(err)
	}
	seen16or128 := 0
	for _, a := range arr {
		if a.Workload.SeqLen < 16 || a.Workload.SeqLen > 128 {
			t.Fatalf("seq %d out of range", a.Workload.SeqLen)
		}
		if a.Workload.Batch != 2 {
			t.Fatalf("batch %d", a.Workload.Batch)
		}
		if a.Workload.SeqLen <= 32 || a.Workload.SeqLen >= 112 {
			seen16or128++
		}
	}
	if seen16or128 == 0 {
		t.Fatal("sequence lengths implausibly concentrated")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a1, _ := Generate(baseTrace())
	a2, _ := Generate(baseTrace())
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("same seed produced different traces")
		}
	}
	other := baseTrace()
	other.Seed = 2
	a3, _ := Generate(other)
	same := true
	for i := range a1 {
		if a1[i].Workload.SeqLen != a3[i].Workload.SeqLen {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical sequence draws")
	}
}

func TestGenerateDecode(t *testing.T) {
	tc := baseTrace()
	tc.Phase = model.Decode
	tc.CtxLen = 16
	arr, err := Generate(tc)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range arr {
		if a.Workload.Phase != model.Decode || a.Workload.CtxLen != 16 {
			t.Fatalf("bad decode workload %+v", a.Workload)
		}
	}
}

func TestGeneratePoissonMeanRate(t *testing.T) {
	tc := baseTrace()
	tc.Process = Poisson
	tc.Batches = 2000
	arr, err := Generate(tc)
	if err != nil {
		t.Fatal(err)
	}
	span := arr[len(arr)-1].At - arr[0].At
	mean := float64(span) / float64(len(arr)-1)
	want := float64(10 * time.Millisecond)
	if mean < 0.85*want || mean > 1.15*want {
		t.Fatalf("poisson mean gap %v, want ≈10ms", time.Duration(mean))
	}
}

func TestGenerateBursty(t *testing.T) {
	tc := baseTrace()
	tc.Process = Bursty
	arr, err := Generate(tc)
	if err != nil {
		t.Fatal(err)
	}
	// Bursts of 4 share an arrival instant.
	if arr[0].At != arr[3].At {
		t.Fatal("burst members not simultaneous")
	}
	if arr[3].At == arr[4].At {
		t.Fatal("burst gap missing")
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []TraceConfig{
		{},
		{Batches: 10, BatchSize: 0, RatePerSec: 1, MinSeq: 1, MaxSeq: 2},
		{Batches: 10, BatchSize: 1, RatePerSec: 0, MinSeq: 1, MaxSeq: 2},
		{Batches: 10, BatchSize: 1, RatePerSec: 1, MinSeq: 5, MaxSeq: 2},
		{Batches: 10, BatchSize: 1, RatePerSec: 1, Phase: model.Decode},
	}
	for i, tc := range bad {
		if _, err := Generate(tc); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// fakeRuntime completes every batch after a fixed service time,
// sequentially (a single-server queue).
type fakeRuntime struct {
	eng     *simclock.Engine
	service time.Duration
	busy    bool
	queue   []runtimes.Completion
	onDone  func(runtimes.Completion)
	nextID  int
}

func (f *fakeRuntime) Name() string                           { return "fake" }
func (f *fakeRuntime) SetOnDone(fn func(runtimes.Completion)) { f.onDone = fn }
func (f *fakeRuntime) Submit(w model.Workload) error {
	c := runtimes.Completion{ID: f.nextID, Workload: w, Submitted: f.eng.Now()}
	f.nextID++
	f.queue = append(f.queue, c)
	f.pump()
	return nil
}
func (f *fakeRuntime) pump() {
	if f.busy || len(f.queue) == 0 {
		return
	}
	f.busy = true
	c := f.queue[0]
	f.queue = f.queue[1:]
	f.eng.After(f.service, func(now simclock.Time) {
		c.Done = now
		f.busy = false
		f.onDone(c)
		f.pump()
	})
}

func TestRunMetrics(t *testing.T) {
	eng := simclock.New()
	rt := &fakeRuntime{eng: eng, service: 10 * time.Millisecond}
	// Arrivals every 20ms: no queueing, latency = service.
	arr := make([]Arrival, 10)
	for i := range arr {
		arr[i] = Arrival{
			At:       time.Duration(i) * 20 * time.Millisecond,
			Workload: model.Workload{Batch: 3, SeqLen: 16, Phase: model.Context},
		}
	}
	res, err := Run(eng, rt, arr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 10 || res.Requests != 30 {
		t.Fatalf("completed %d requests %d", res.Completed, res.Requests)
	}
	if res.AvgLatency != 10*time.Millisecond {
		t.Fatalf("avg latency %v, want 10ms", res.AvgLatency)
	}
	// Makespan: last arrival at 180ms + 10ms service.
	if res.Makespan != 190*time.Millisecond {
		t.Fatalf("makespan %v", res.Makespan)
	}
	thr := res.ThroughputBatches()
	if thr < 52 || thr > 53 {
		t.Fatalf("throughput %v, want ≈52.6", thr)
	}
	if res.ThroughputRequests() != 3*thr {
		t.Fatal("request throughput != 3x batch throughput")
	}
}

func TestRunQueueingLatency(t *testing.T) {
	eng := simclock.New()
	rt := &fakeRuntime{eng: eng, service: 10 * time.Millisecond}
	// Arrivals every 5ms: queue builds, pending time counts into latency.
	arr := make([]Arrival, 20)
	for i := range arr {
		arr[i] = Arrival{At: time.Duration(i) * 5 * time.Millisecond,
			Workload: model.Workload{Batch: 1, SeqLen: 16, Phase: model.Context}}
	}
	res, err := Run(eng, rt, arr)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgLatency <= 10*time.Millisecond {
		t.Fatalf("queueing not reflected: avg %v", res.AvgLatency)
	}
	if res.P99 < res.P50 {
		t.Fatal("p99 < p50")
	}
}

func TestRunEmptyTrace(t *testing.T) {
	eng := simclock.New()
	rt := &fakeRuntime{eng: eng, service: time.Millisecond}
	if _, err := Run(eng, rt, nil); err == nil {
		t.Fatal("empty trace accepted")
	}
}

// Property: arrival times are nondecreasing for every process.
func TestPropertyArrivalsMonotone(t *testing.T) {
	f := func(seed int64, proc uint8, rate uint8) bool {
		tc := baseTrace()
		tc.Seed = seed
		tc.Process = ArrivalProcess(proc % 3)
		tc.RatePerSec = float64(rate%50) + 1
		arr, err := Generate(tc)
		if err != nil {
			return false
		}
		for i := 1; i < len(arr); i++ {
			if arr[i].At < arr[i-1].At {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
