package serve

import (
	"fmt"
	"math/rand"
	"time"

	"liger/internal/model"
	"liger/internal/simclock"
	"liger/internal/stats"
)

// This file is the fleet request router: the serving layer's front
// door when the simulation is a cluster of replica nodes
// (internal/cluster) rather than one node. The router runs on the
// fleet's frontend shard and owns every placement decision:
//
//   - load balancing: power-of-two-choices over the healthy replicas,
//     breaking the choice by least outstanding requests (and replica id
//     on ties), so placement is both balanced and deterministic;
//   - health: replicas are marked down while they reconfigure after an
//     intra-node device failure and evicted outright on whole-node
//     loss; new work avoids them until the fleet reports them up;
//   - node-loss re-dispatch: when a replica is evicted, every request
//     it still held is re-dispatched to a healthy replica exactly once
//     (one Result.Retries increment each) with latency still measured
//     from the original arrival;
//   - hedging: a request with no completion after RouterPolicy.Hedge
//     gets one duplicate dispatch to a different healthy replica; the
//     first completion wins and the loser is dropped;
//   - overload: Policy.QueueLimit bounds fleet-wide admitted-but-
//     unresolved requests; arrivals past the bound are shed.
//
// Everything the router does happens on the frontend engine, so its
// decisions are single-threaded and deterministic; all fleet
// interaction crosses shard boundaries through the lookahead executor.

// FleetRuntime is the router's view of a simulated fleet. It is
// implemented by internal/cluster.Fleet; the indirection keeps serve
// free of the cluster package (which imports serve for Result).
type FleetRuntime interface {
	// RuntimeName names the per-replica runtime (Liger, Intra-Op, ...).
	RuntimeName() string
	// Replicas is the number of model replicas (fixed for the run; an
	// evicted replica keeps its id and may return on spare capacity).
	Replicas() int
	// Frontend returns the router's shard engine. Arrivals, retries,
	// and hedge timers are scheduled on it.
	Frontend() *simclock.Engine
	// SetRouter registers the router callbacks. Must be called before
	// Run.
	SetRouter(RouterHooks)
	// Dispatch sends request req to replica rep. Must be called from a
	// frontend engine event; delivery pays the network latency.
	Dispatch(rep, req int, w model.Workload)
	// Run drives the whole fleet simulation to completion.
	Run() error
	// FleetStats reports recovery accounting after Run: completed
	// failovers (node re-placements plus intra-node device-failure
	// recoveries) and the total sim time spent recovering.
	FleetStats() (failovers int, recovery time.Duration)
}

// DispatchStatus classifies one completion notice from the fleet.
type DispatchStatus int

const (
	// DispatchOK: the replica served the request.
	DispatchOK DispatchStatus = iota
	// DispatchFailed: the replica executed the request but it failed (a
	// collective abort under fault injection) — the policy retry path.
	DispatchFailed
	// DispatchLost: the request reached a dead node and is gone; the
	// router re-dispatches it without spending retry budget.
	DispatchLost
	// DispatchBusy: the replica was reconfiguring when the request
	// arrived and never accepted it; the router places it elsewhere.
	DispatchBusy
)

// RouterHooks are the router callbacks a FleetRuntime invokes (always
// from frontend engine events).
type RouterHooks struct {
	// Done delivers a completion notice for request req from replica rep.
	Done func(rep, req int, status DispatchStatus, now simclock.Time)
	// Evicted reports whole-node loss: rep is gone and its outstanding
	// requests must be re-dispatched.
	Evicted func(rep int, now simclock.Time)
	// Down marks rep temporarily unhealthy (intra-node failover in
	// progress).
	Down func(rep int, now simclock.Time)
	// Up marks rep healthy: recovered from an intra-node failover, or
	// re-placed onto a spare node after eviction.
	Up func(rep int, now simclock.Time)
}

// RouterPolicy tunes router behavior beyond the serving Policy.
type RouterPolicy struct {
	// Hedge is the delay after a request's first dispatch before the
	// router sends one duplicate to a different healthy replica; zero
	// disables hedging.
	Hedge time.Duration
	// Seed drives the power-of-two-choices sampling stream.
	Seed int64
	// Tracer observes every routing outcome (dispatch/hedge/retry/
	// redispatch/shed/park/flush) with its probe state; nil disables
	// decision tracing. Tracing never changes placement: the sampling
	// stream and all accounting are byte-identical with or without it.
	Tracer RouterTracer
}

// fleetReq is the router's per-request state.
type fleetReq struct {
	// active lists the replicas currently holding a live dispatch of
	// this request (two while a hedge is in flight).
	active []int
	// attempt is the policy retry count already spent.
	attempt  int
	resolved bool
	hedged   bool
	parked   bool
	parkedAt simclock.Time
	deferred bool
}

func (q *fleetReq) holds(rep int) bool {
	for _, r := range q.active {
		if r == rep {
			return true
		}
	}
	return false
}

func (q *fleetReq) drop(rep int) {
	for i, r := range q.active {
		if r == rep {
			q.active = append(q.active[:i], q.active[i+1:]...)
			return
		}
	}
}

// RunFleet drives a fleet with the arrival trace under a deadline/
// retry policy plus router-level placement, health, hedging, and
// node-loss re-dispatch. The Result is fleet-wide and uses the same
// accounting as RunPolicy, so goodput/SLO/recovery metrics stay
// comparable between one node and a fleet: every arrival resolves into
// exactly one of Completed, Failed, or Shed; successful-batch latency
// spans original arrival to final success (router round trips, retries,
// and re-dispatches included); Failovers/RecoveryTime aggregate the
// fleet's recovery accounting.
func RunFleet(f FleetRuntime, arrivals []Arrival, pol Policy, rp RouterPolicy) (Result, error) {
	res := Result{Runtime: f.RuntimeName(), Deadline: pol.Deadline}
	if len(arrivals) == 0 {
		return res, fmt.Errorf("serve: empty trace")
	}
	if err := pol.Validate(); err != nil {
		return res, err
	}
	if f.Replicas() < 1 {
		return res, fmt.Errorf("serve: fleet has no replicas")
	}
	if rp.Hedge < 0 {
		return res, fmt.Errorf("serve: negative hedge delay %v", rp.Hedge)
	}
	eng := f.Frontend()
	nrep := f.Replicas()
	rng := rand.New(rand.NewSource(rp.Seed ^ 0x5eed4007))

	res.PerRequest = make([]RequestLat, len(arrivals))
	for i := range res.PerRequest {
		res.PerRequest[i] = RequestLat{Req: i, Arrival: time.Duration(arrivals[i].At)}
	}

	healthy := make([]bool, nrep)
	evicted := make([]bool, nrep)
	outstanding := make([]int, nrep)
	for i := range healthy {
		healthy[i] = true
	}
	reqs := make([]fleetReq, len(arrivals))
	var parkedList []int
	var lastDone simclock.Time
	inflight := 0

	healthyCount := func() int {
		n := 0
		for _, h := range healthy {
			if h {
				n++
			}
		}
		return n
	}

	// emit records one routing outcome (candidate outstanding counts are
	// sampled at decision time, before the dispatch increments them).
	emit := func(req int, kind string, rep, ca, cb int, at simclock.Time) {
		if rp.Tracer == nil {
			return
		}
		d := RouterDecision{
			Req: req, Kind: kind, Replica: rep,
			CandA: ca, CandB: cb,
			OutstandingA: -1, OutstandingB: -1,
			Healthy: healthyCount(),
			At:      at,
		}
		if ca >= 0 {
			d.OutstandingA = outstanding[ca]
		}
		if cb >= 0 {
			d.OutstandingB = outstanding[cb]
		}
		rp.Tracer.RouterDecision(d)
	}

	// pick returns the target replica: power-of-two-choices over the
	// healthy set, least-outstanding breaking the choice, lower id
	// breaking ties. Returns -1 when no replica is healthy; ca/cb are
	// the sampled probe candidates (cb -1 when fewer than two).
	pick := func(exclude int) (rep, ca, cb int) {
		cands := make([]int, 0, nrep)
		for r := 0; r < nrep; r++ {
			if healthy[r] && r != exclude {
				cands = append(cands, r)
			}
		}
		switch len(cands) {
		case 0:
			return -1, -1, -1
		case 1:
			return cands[0], cands[0], -1
		}
		i := rng.Intn(len(cands))
		j := rng.Intn(len(cands) - 1)
		if j >= i {
			j++
		}
		a, b := cands[i], cands[j]
		if outstanding[b] < outstanding[a] || (outstanding[b] == outstanding[a] && b < a) {
			return b, a, b
		}
		return a, a, b
	}

	sendTo := func(rep, req int) {
		outstanding[rep]++
		reqs[req].active = append(reqs[req].active, rep)
		f.Dispatch(rep, req, arrivals[req].Workload)
	}

	var armHedge func(req int)

	// place dispatches req to the best healthy replica (never exclude,
	// which just bounced it), or parks it when no replica qualifies
	// (flushed on the next Up). kind labels the decision record.
	place := func(req int, now simclock.Time, exclude int, kind string) {
		q := &reqs[req]
		rep, ca, cb := pick(exclude)
		if rep < 0 {
			if !q.parked {
				q.parked = true
				q.parkedAt = now
				parkedList = append(parkedList, req)
				if q.attempt == 0 && !q.deferred {
					q.deferred = true
					res.Deferred++
				}
				emit(req, "park", -1, -1, -1, now)
			}
			return
		}
		if q.attempt == 0 && len(q.active) == 0 && res.PerRequest[req].QueueWait == 0 {
			res.PerRequest[req].QueueWait = time.Duration(now) - res.PerRequest[req].Arrival
		}
		emit(req, kind, rep, ca, cb, now)
		sendTo(rep, req)
		if rp.Hedge > 0 && !q.hedged {
			armHedge(req)
		}
	}

	armHedge = func(req int) {
		reqs[req].hedged = true
		eng.After(rp.Hedge, func(now simclock.Time) {
			q := &reqs[req]
			if q.resolved || q.parked || len(q.active) == 0 {
				return
			}
			rep, ca, cb := pick(q.active[0])
			if rep < 0 || q.holds(rep) {
				return
			}
			res.Hedges++
			emit(req, "hedge", rep, ca, cb, now)
			sendTo(rep, req)
		})
	}

	resolve := func(req int, now simclock.Time, ok bool) {
		q := &reqs[req]
		q.resolved = true
		inflight--
		res.PerRequest[req].Done = time.Duration(now)
		if ok {
			res.Completed++
			res.Requests += arrivals[req].Workload.Batch
			lat := time.Duration(now - arrivals[req].At)
			res.Latencies = append(res.Latencies, lat)
			if pol.Deadline > 0 && lat > pol.Deadline {
				res.DeadlineMisses++
			}
		} else {
			res.Failed++
			res.PerRequest[req].Failed = true
		}
	}

	retryAfterBackoff := func(req int) {
		q := &reqs[req]
		q.attempt++
		res.Retries++
		res.PerRequest[req].Retries++
		eng.After(pol.backoffFor(q.attempt), func(now simclock.Time) {
			if !reqs[req].resolved {
				place(req, now, -1, "retry")
			}
		})
	}

	// redispatch is the node-loss path: the request is re-placed
	// immediately (the loss is known, not speculative), away from the
	// lost replica, and counted once in Result.Retries without spending
	// the policy retry budget.
	redispatch := func(req int, now simclock.Time, exclude int) {
		res.Retries++
		res.PerRequest[req].Retries++
		place(req, now, exclude, "redispatch")
	}

	hooks := RouterHooks{
		Done: func(rep, req int, status DispatchStatus, now simclock.Time) {
			q := &reqs[req]
			if !q.holds(rep) {
				// Stale: the dispatch was already re-owned (the replica was
				// evicted and the request re-dispatched before this notice
				// arrived). Nothing to account — exactly-once is the point.
				return
			}
			q.drop(rep)
			if !evicted[rep] {
				outstanding[rep]--
			}
			if status == DispatchOK || status == DispatchFailed {
				if now > lastDone {
					lastDone = now
				}
			}
			if q.resolved {
				return // late hedge loser
			}
			switch status {
			case DispatchOK:
				resolve(req, now, true)
			case DispatchLost:
				if len(q.active) > 0 {
					return // a hedge copy is still live elsewhere
				}
				redispatch(req, now, rep)
			case DispatchBusy:
				// Never accepted: place it elsewhere at no accounting cost
				// (its latency clock keeps running from the arrival).
				if len(q.active) > 0 {
					return
				}
				place(req, now, rep, "dispatch")
			case DispatchFailed:
				if len(q.active) > 0 {
					return // the hedge copy may still succeed
				}
				if q.attempt < pol.MaxRetries {
					retryAfterBackoff(req)
				} else {
					resolve(req, now, false)
				}
			}
		},
		Evicted: func(rep int, now simclock.Time) {
			healthy[rep] = false
			evicted[rep] = true
			outstanding[rep] = 0
			// Re-dispatch everything the dead replica still held, exactly
			// once each, keeping latency measured from original arrival.
			for req := range reqs {
				q := &reqs[req]
				if q.resolved || !q.holds(rep) {
					continue
				}
				q.drop(rep)
				if len(q.active) > 0 {
					continue // hedge copy still live on another replica
				}
				redispatch(req, now, rep)
			}
		},
		Down: func(rep int, now simclock.Time) {
			if !evicted[rep] {
				healthy[rep] = false
			}
		},
		Up: func(rep int, now simclock.Time) {
			healthy[rep] = true
			evicted[rep] = false
			outstanding[rep] = 0
			flush := parkedList
			parkedList = nil
			for _, req := range flush {
				q := &reqs[req]
				q.parked = false
				res.PerRequest[req].Deferral += time.Duration(now - q.parkedAt)
				if !q.resolved {
					place(req, now, -1, "flush")
				}
			}
		},
	}
	f.SetRouter(hooks)

	for i, a := range arrivals {
		req := i
		eng.At(a.At, func(now simclock.Time) {
			if pol.QueueLimit > 0 && inflight >= pol.QueueLimit {
				res.Shed++
				res.PerRequest[req].Shed = true
				res.PerRequest[req].Done = time.Duration(now)
				emit(req, "shed", -1, -1, -1, now)
				return
			}
			inflight++
			place(req, now, -1, "dispatch")
		})
	}

	if err := f.Run(); err != nil {
		return res, err
	}

	// Requests still parked when the fleet drained never found a healthy
	// replica again (no spare capacity): they fail.
	for req := range reqs {
		q := &reqs[req]
		if q.parked && !q.resolved {
			q.resolved = true
			res.Failed++
			res.PerRequest[req].Failed = true
			res.PerRequest[req].Done = time.Duration(q.parkedAt)
		}
	}
	res.Failovers, res.RecoveryTime = f.FleetStats()
	if res.Completed+res.Failed+res.Shed != len(arrivals) {
		return res, fmt.Errorf("serve: %d of %d requests accounted for (%d ok, %d failed, %d shed)",
			res.Completed+res.Failed+res.Shed, len(arrivals), res.Completed, res.Failed, res.Shed)
	}
	res.AvgLatency = stats.Mean(res.Latencies)
	pcts := stats.Percentiles(res.Latencies, 50, 95, 99)
	res.P50, res.P95, res.P99 = pcts[0], pcts[1], pcts[2]
	res.Makespan = time.Duration(lastDone - arrivals[0].At)
	return res, nil
}
