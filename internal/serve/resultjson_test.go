package serve

import (
	"encoding/json"
	"testing"

	"liger/internal/simclock"
	"liger/internal/trace"
)

// A continuous result must emit the whole serving block even when every
// value is zero — tools/benchdiff dotted paths (results.<rt>.preemptions
// and friends) may never go structurally missing just because no
// iteration ran.
func TestResultJSONContinuousEmitsExplicitZeros(t *testing.T) {
	b, err := json.Marshal(Result{Runtime: "Liger", Continuous: true})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"ttft_ms", "tpot_ms", "preemptions", "recomputed_tokens",
		"iterations", "mean_pool", "kv_peak_blocks",
	} {
		v, ok := m[key]
		if !ok {
			t.Fatalf("continuous result omitted %q: %s", key, b)
		}
		if f, ok := v.(float64); !ok || f != 0 {
			t.Fatalf("%q = %v, want explicit 0", key, v)
		}
	}
}

// Batch results keep the historical shape: zero serving metrics are
// omitted, nonzero ones appear.
func TestResultJSONBatchOmitsZeroServingBlock(t *testing.T) {
	b, err := json.Marshal(Result{Runtime: "Liger"})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"ttft_ms", "tpot_ms", "preemptions", "recomputed_tokens", "iterations", "mean_pool", "kv_peak_blocks"} {
		if _, ok := m[key]; ok {
			t.Fatalf("batch result with zero %q still emitted it: %s", key, b)
		}
	}
	b, err = json.Marshal(Result{Runtime: "Liger", Preemptions: 3})
	if err != nil {
		t.Fatal(err)
	}
	m = nil
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if v, ok := m["preemptions"]; !ok || v.(float64) != 3 {
		t.Fatalf("nonzero preemptions lost: %s", b)
	}
}

// The batcher emits one iteration record per scheduler submission and
// the full lifecycle event stream, all tagged with the configured pool.
func TestContinuousBatcherEmitsServingTrace(t *testing.T) {
	h := newContinuousHarness(t, nil, 4)
	rec := trace.NewServingRecorder()
	h.cb.SetTracer(rec, 3)
	h.eng.After(0, func(now simclock.Time) {
		h.cb.Add(GenSeq{ID: 1, Prompt: 8, Gen: 4}, now)
	})
	h.eng.Run()
	if err := h.cb.Err(); err != nil {
		t.Fatal(err)
	}
	rec.Normalize()
	// One prefill plus four decode iterations, matching the batcher's
	// own counters.
	iters := rec.Iterations()
	if len(iters) != h.cb.PrefillBatches+h.cb.Iterations {
		t.Fatalf("%d iteration records, batcher ran %d prefills + %d decodes",
			len(iters), h.cb.PrefillBatches, h.cb.Iterations)
	}
	if !iters[0].Prefill {
		t.Fatal("first record is not the prefill")
	}
	decodes := 0
	for _, it := range iters {
		if it.Pool != 3 {
			t.Fatalf("record tagged pool %d, want 3", it.Pool)
		}
		if it.End <= it.Start {
			t.Fatalf("empty iteration span %+v", it)
		}
		if !it.Prefill {
			decodes++
			if it.Batch != 1 || it.Retired > 1 {
				t.Fatalf("decode record %+v for a single sequence", it)
			}
		}
	}
	if decodes != 4 {
		t.Fatalf("%d decode records for 4 generated tokens", decodes)
	}
	// Lifecycle: arrive → prefill_start → prefill_end → finish, in order,
	// all for sequence 1 on pool 3.
	kinds := []SeqEventKind{}
	for _, e := range rec.SeqEvents() {
		if e.Seq != 1 || e.Pool != 3 {
			t.Fatalf("unexpected lifecycle event %+v", e)
		}
		kinds = append(kinds, e.Kind)
	}
	want := []SeqEventKind{SeqArrive, SeqPrefillStart, SeqPrefillEnd, SeqFinish}
	if len(kinds) != len(want) {
		t.Fatalf("lifecycle %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("lifecycle %v, want %v", kinds, want)
		}
	}
}
