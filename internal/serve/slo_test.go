package serve

import (
	"testing"
	"time"

	"liger/internal/stats"
)

func TestSLOEmptyResult(t *testing.T) {
	var r Result
	if got := r.DeadlineMissRate(time.Second); got != 0 {
		t.Errorf("empty miss rate %v", got)
	}
	if got := r.Goodput(time.Second); got != 0 {
		t.Errorf("empty goodput %v", got)
	}
	if got := r.PolicyGoodput(); got != 0 {
		t.Errorf("empty policy goodput %v", got)
	}
	if got := r.SLOMissRate(); got != 0 {
		t.Errorf("empty SLO miss rate %v", got)
	}
	if got := r.SuccessRate(); got != 0 {
		t.Errorf("empty success rate %v", got)
	}
	if got := r.ThroughputBatches(); got != 0 {
		t.Errorf("empty throughput %v", got)
	}
}

func TestPercentileFewerSamplesThanRank(t *testing.T) {
	// Nearest-rank p99 over fewer than 100 samples must clamp to the
	// maximum, not index out of range.
	lats := []time.Duration{3 * time.Millisecond, time.Millisecond, 2 * time.Millisecond}
	if got := stats.Percentile(lats, 99); got != 3*time.Millisecond {
		t.Errorf("p99 of 3 samples = %v, want max", got)
	}
	if got := stats.Percentile(lats, 50); got != 2*time.Millisecond {
		t.Errorf("p50 of 3 samples = %v, want median", got)
	}
	one := []time.Duration{7 * time.Millisecond}
	for _, p := range []float64{1, 50, 99, 100} {
		if got := stats.Percentile(one, p); got != 7*time.Millisecond {
			t.Errorf("p%v of 1 sample = %v, want the sample", p, got)
		}
	}
	if got := stats.Percentile(nil, 99); got != 0 {
		t.Errorf("p99 of no samples = %v, want 0", got)
	}
}

func TestDeadlineMissRateBoundary(t *testing.T) {
	r := Result{Latencies: []time.Duration{
		10 * time.Millisecond, // exactly at the deadline: a hit, not a miss
		11 * time.Millisecond,
		9 * time.Millisecond,
		20 * time.Millisecond,
	}}
	if got := r.DeadlineMissRate(10 * time.Millisecond); got != 0.5 {
		t.Errorf("miss rate %v, want 0.5 (deadline boundary is inclusive)", got)
	}
}

func TestSLOMissRateCountsFailures(t *testing.T) {
	r := Result{
		Completed:      6,
		Failed:         2,
		DeadlineMisses: 1,
		Deadline:       time.Second,
	}
	// 1 late success + 2 outright failures out of 8 submitted batches.
	if got := r.SLOMissRate(); got != 3.0/8.0 {
		t.Errorf("SLO miss rate %v, want 3/8", got)
	}
	if got := r.SuccessRate(); got != 6.0/8.0 {
		t.Errorf("success rate %v, want 6/8", got)
	}
}

func TestGoodputExcludesLateBatches(t *testing.T) {
	r := Result{
		Completed: 3,
		Makespan:  time.Second,
		Latencies: []time.Duration{
			5 * time.Millisecond,
			15 * time.Millisecond,
			25 * time.Millisecond,
		},
		Deadline: 20 * time.Millisecond,
	}
	if got := r.Goodput(20 * time.Millisecond); got != 2 {
		t.Errorf("goodput %v, want 2 batches/s", got)
	}
	if got := r.PolicyGoodput(); got != 2 {
		t.Errorf("policy goodput %v, want 2", got)
	}
	if got := r.ThroughputBatches(); got != 3 {
		t.Errorf("raw throughput %v, want 3", got)
	}
}
