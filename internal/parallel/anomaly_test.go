package parallel

import (
	"testing"
	"time"

	"liger/internal/hw"
	"liger/internal/model"
	"liger/internal/nccl"
)

// stageTotal sums the kernel durations of every stage.
func stageTotal(t *testing.T, stages []Stage) time.Duration {
	t.Helper()
	var total time.Duration
	for _, st := range stages {
		for _, k := range st.Kernels {
			total += k.Duration
		}
	}
	return total
}

// TestFig10jkStageAnomaly reproduces the §4.2 observation at the stage
// level: on the A100 node with batch 8, the Inter-Th stages (built from
// the intra-op approach's partitioned kernels) accumulate *less*
// duration than the Inter-Op stages (original kernels), while at batch
// 2 the ordering is the conventional one.
func TestFig10jkStageAnomaly(t *testing.T) {
	c := NewCompiler(hw.A100Node(), nccl.Config{})
	spec := model.OPT66B()
	run := func(batch int) (interOp, interTh time.Duration) {
		w := model.Workload{Batch: batch, SeqLen: 72, Phase: model.Context}
		op, err := c.InterOp(spec, 4, w)
		if err != nil {
			t.Fatal(err)
		}
		th, err := c.InterTh(spec, 4, w)
		if err != nil {
			t.Fatal(err)
		}
		return stageTotal(t, op), stageTotal(t, th)
	}
	op8, th8 := run(8)
	if th8 >= op8 {
		t.Errorf("batch 8: Inter-Th stages %v should undercut Inter-Op %v (the (j)(k) anomaly)", th8, op8)
	}
	op2, th2 := run(2)
	if th2 <= op2 {
		t.Errorf("batch 2: Inter-Th stages %v should exceed Inter-Op %v (conventional ordering)", th2, op2)
	}
}
