package parallel

import (
	"time"

	"liger/internal/costmodel"
)

// This file provides the standalone GEMM decomposition analysis behind
// Fig. 9: vertical decomposition (splitting the weight matrix B's
// columns) keeps the activation matrix A intact and re-reads it per
// piece, while horizontal decomposition (splitting A's rows) makes the
// already-skinny activation skinnier, collapsing compute intensity.
// Liger therefore decomposes GEMMs vertically at runtime (§3.6).

// GEMMSplitVertical returns the piece durations of an m×n×k GEMM split
// column-wise into parts pieces.
func GEMMSplitVertical(cm *costmodel.Model, m, n, k, parts int) []time.Duration {
	out := make([]time.Duration, 0, parts)
	base, extra := n/parts, n%parts
	for i := 0; i < parts; i++ {
		cols := base
		if i < extra {
			cols++
		}
		out = append(out, cm.GEMM(m, cols, k))
	}
	return out
}

// GEMMSplitHorizontal returns the piece durations of an m×n×k GEMM
// split row-wise into parts pieces.
func GEMMSplitHorizontal(cm *costmodel.Model, m, n, k, parts int) []time.Duration {
	out := make([]time.Duration, 0, parts)
	base, extra := m/parts, m%parts
	for i := 0; i < parts; i++ {
		rows := base
		if i < extra {
			rows++
		}
		out = append(out, cm.GEMM(rows, n, k))
	}
	return out
}

// SumDurations adds up piece durations.
func SumDurations(ds []time.Duration) time.Duration {
	var t time.Duration
	for _, d := range ds {
		t += d
	}
	return t
}

// DecompositionOverhead returns the ratio of the accumulated piece
// duration to the original kernel duration for a vertical split — how
// much capability the equal division gives up (≥ 1).
func DecompositionOverhead(cm *costmodel.Model, m, n, k, parts int) float64 {
	orig := cm.GEMM(m, n, k)
	sum := SumDurations(GEMMSplitVertical(cm, m, n, k, parts))
	if orig == 0 {
		return 1
	}
	return float64(sum) / float64(orig)
}
