package parallel

import (
	"fmt"

	"liger/internal/hw"
	"liger/internal/model"
)

// This file checks model placement against device memory — the
// constraint that dictates the paper's testbed assignments ("Given the
// memory constraint, we perform the OPT-30B model on the V100 node and
// all models on the A100 node", §4.2). Both intra-operator partitioning
// and pipeline stages divide the weights across all devices, so the
// per-device footprint is weights/N plus activation workspace and the
// KV cache share.

// MemSafety reserves headroom for the CUDA context and fragmentation.
// It is deliberately thin: the paper's own V100 assignment (OPT-30B's
// 60 GB of FP16 weights on 4×16 GB) leaves almost nothing spare. It is
// the single source of truth for the memory-safety factor — the KV
// cache budget (internal/kvcache) derives from the same constant, so
// the two layers cannot drift.
const MemSafety = 0.97

// PlacementReport describes the per-device memory footprint of serving
// a model on a node.
type PlacementReport struct {
	WeightBytesPerDevice int64
	// WorkspaceBytes is the activation workspace for the largest
	// expected batch.
	WorkspaceBytes int64
	// KVBytesPerDevice is the KV-cache share for the expected resident
	// requests (generative serving only).
	KVBytesPerDevice int64
	// DeviceBytes is the device capacity.
	DeviceBytes int64
}

// Total returns the summed per-device requirement.
func (r PlacementReport) Total() int64 {
	return r.WeightBytesPerDevice + r.WorkspaceBytes + r.KVBytesPerDevice
}

// Fits reports whether the footprint fits under the safety margin.
func (r PlacementReport) Fits() bool {
	return float64(r.Total()) <= MemSafety*float64(r.DeviceBytes)
}

// PlanPlacement computes the per-device footprint of serving spec on
// node. maxBatch/maxSeq bound the activation workspace; kvRequests and
// kvCtx bound the generative KV cache (zero for context-only serving).
func PlanPlacement(node hw.Node, spec model.Spec, maxBatch, maxSeq, kvRequests, kvCtx int) PlacementReport {
	devs := int64(node.NumGPUs)
	if devs < 1 {
		devs = 1
	}
	tokens := int64(maxBatch) * int64(maxSeq)
	// Workspace: a few live activation tensors at the widest point
	// (FC1's 4h output) plus double-buffering.
	workspace := 3 * tokens * int64(spec.FFNHidden()) * 2
	var kv int64
	if kvRequests > 0 && kvCtx > 0 {
		kv = int64(kvRequests) * spec.KVCacheBytes(kvCtx) / devs
	}
	return PlacementReport{
		WeightBytesPerDevice: spec.WeightBytes() / devs,
		WorkspaceBytes:       workspace,
		KVBytesPerDevice:     kv,
		DeviceBytes:          int64(node.GPU.MemGB * 1e9),
	}
}

// CheckPlacement returns a descriptive error when the model cannot be
// served on the node.
func CheckPlacement(node hw.Node, spec model.Spec, maxBatch, maxSeq, kvRequests, kvCtx int) error {
	r := PlanPlacement(node, spec, maxBatch, maxSeq, kvRequests, kvCtx)
	if r.Fits() {
		return nil
	}
	return fmt.Errorf("parallel: %s needs %.1f GB per device (weights %.1f + workspace %.1f + kv %.1f) but %s has %.1f GB",
		spec.Name,
		float64(r.Total())/1e9,
		float64(r.WeightBytesPerDevice)/1e9,
		float64(r.WorkspaceBytes)/1e9,
		float64(r.KVBytesPerDevice)/1e9,
		node.Name,
		float64(r.DeviceBytes)/1e9)
}
