package parallel

import (
	"strings"
	"testing"
	"time"

	"liger/internal/gpusim"
	"liger/internal/hw"
	"liger/internal/model"
	"liger/internal/nccl"
)

func compilerFor(node hw.Node) *Compiler {
	return NewCompiler(node, nccl.Config{ReducedChannels: true})
}

func ctxWorkload(batch, seq int) model.Workload {
	return model.Workload{Batch: batch, SeqLen: seq, Phase: model.Context}
}

// TestFig3V100Calibration locks in the §2.2.1 case study: OPT-30B on
// the V100/NVLink node scales 2.58x from 1 to 4 devices with
// communication at 20.7% of total time. We assert the model reproduces
// those numbers within tolerance.
func TestFig3V100Calibration(t *testing.T) {
	c := compilerFor(hw.V100Node())
	w := ctxWorkload(2, 64)
	k1, err := c.IntraOp(model.OPT30B(), 1, w)
	if err != nil {
		t.Fatal(err)
	}
	comp1, comm1 := TotalDurations(k1)
	if comm1 != 0 {
		t.Fatalf("single-device plan has communication: %v", comm1)
	}
	k4, err := c.IntraOp(model.OPT30B(), 4, w)
	if err != nil {
		t.Fatal(err)
	}
	comp4, comm4 := TotalDurations(k4)
	t4 := comp4 + comm4
	speedup := float64(comp1) / float64(t4)
	commShare := float64(comm4) / float64(t4)
	if speedup < 2.3 || speedup > 3.1 {
		t.Errorf("V100 OPT-30B strong-scaling speedup = %.2f, paper reports 2.58", speedup)
	}
	if commShare < 0.16 || commShare > 0.27 {
		t.Errorf("V100 OPT-30B comm share = %.1f%%, paper reports 20.7%%", 100*commShare)
	}
}

// TestFig3A100Calibration locks in the GLM-130B case study: 1.91x
// scaling with communication at 47.1% of total time on the A100/PCIe
// node.
func TestFig3A100Calibration(t *testing.T) {
	c := compilerFor(hw.A100Node())
	w := ctxWorkload(2, 64)
	k1, err := c.IntraOp(model.GLM130B(), 1, w)
	if err != nil {
		t.Fatal(err)
	}
	comp1, _ := TotalDurations(k1)
	k4, err := c.IntraOp(model.GLM130B(), 4, w)
	if err != nil {
		t.Fatal(err)
	}
	comp4, comm4 := TotalDurations(k4)
	t4 := comp4 + comm4
	speedup := float64(comp1) / float64(t4)
	commShare := float64(comm4) / float64(t4)
	if speedup < 1.7 || speedup > 2.2 {
		t.Errorf("A100 GLM-130B speedup = %.2f, paper reports 1.91", speedup)
	}
	if commShare < 0.40 || commShare > 0.53 {
		t.Errorf("A100 GLM-130B comm share = %.1f%%, paper reports 47.1%%", 100*commShare)
	}
}

func TestIntraOpTwoAllReducesPerLayer(t *testing.T) {
	c := compilerFor(hw.V100Node())
	spec := model.Tiny()
	k, err := c.IntraOp(spec, 4, ctxWorkload(2, 16))
	if err != nil {
		t.Fatal(err)
	}
	comm := CountClass(k, gpusim.Comm)
	if want := 2 * spec.Layers; comm != want {
		t.Fatalf("intra-op has %d comm kernels, want %d (two all-reduces per layer)", comm, want)
	}
}

func TestIntraOpKernelTypeAlternation(t *testing.T) {
	// The kernel stream must be runs of compute ending in a comm kernel
	// — the switch-point structure Algorithm 1 exploits.
	c := compilerFor(hw.V100Node())
	k, err := c.IntraOp(model.Tiny(), 4, ctxWorkload(2, 16))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(k); i++ {
		if k[i-1].Class == gpusim.Comm && k[i].Class == gpusim.Comm {
			t.Fatalf("two adjacent comm kernels at %d: %s, %s", i, k[i-1].Name, k[i].Name)
		}
	}
	if k[0].Class != gpusim.Compute {
		t.Fatal("plan must start with compute")
	}
}

func TestIntraOpTP1HasNoComm(t *testing.T) {
	c := compilerFor(hw.V100Node())
	k, err := c.IntraOp(model.Tiny(), 1, ctxWorkload(2, 16))
	if err != nil {
		t.Fatal(err)
	}
	if n := CountClass(k, gpusim.Comm); n != 0 {
		t.Fatalf("tp=1 plan has %d comm kernels", n)
	}
}

func TestIntraOpPartitioningReducesComputeTime(t *testing.T) {
	c := compilerFor(hw.A100Node())
	w := ctxWorkload(4, 64)
	k1, _ := c.IntraOp(model.OPT30B(), 1, w)
	k4, _ := c.IntraOp(model.OPT30B(), 4, w)
	comp1, _ := TotalDurations(k1)
	comp4, _ := TotalDurations(k4)
	if comp4 >= comp1 {
		t.Fatalf("4-way compute %v not below 1-way %v", comp4, comp1)
	}
	// But less than 4x better: partitioned kernels lose efficiency.
	if float64(comp1)/float64(comp4) > 3.9 {
		t.Fatalf("partitioned kernels implausibly efficient: %.2fx", float64(comp1)/float64(comp4))
	}
}

func TestInterOpStageStructure(t *testing.T) {
	c := compilerFor(hw.V100Node())
	spec := model.OPT30B()
	stages, err := c.InterOp(spec, 4, ctxWorkload(2, 32))
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 4 {
		t.Fatalf("got %d stages, want 4", len(stages))
	}
	for i, st := range stages {
		if st.Device != i {
			t.Fatalf("stage %d on device %d", i, st.Device)
		}
		if (i < 3) != st.HasSend {
			t.Fatalf("stage %d HasSend=%v", i, st.HasSend)
		}
		if n := CountClass(st.Kernels, gpusim.Comm); n != 0 {
			t.Fatalf("stage %d contains %d comm kernels; pipeline comm is only at boundaries", i, n)
		}
	}
}

func TestInterOpLayerDistribution(t *testing.T) {
	c := compilerFor(hw.V100Node())
	spec := model.Tiny().WithLayers(7) // 7 layers across 4 stages: 2,2,2,1
	stages, err := c.InterOp(spec, 4, ctxWorkload(2, 16))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for i, st := range stages {
		for _, k := range st.Kernels {
			if strings.Contains(k.Name, ".qkv") {
				counts[i]++
			}
		}
	}
	want := []int{2, 2, 2, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("layer distribution %v, want %v", counts, want)
		}
	}
}

func TestInterThUsesPartitionedPieces(t *testing.T) {
	c := compilerFor(hw.V100Node())
	spec := model.Tiny()
	thStages, err := c.InterTh(spec, 4, ctxWorkload(2, 16))
	if err != nil {
		t.Fatal(err)
	}
	opStages, err := c.InterOp(spec, 4, ctxWorkload(2, 16))
	if err != nil {
		t.Fatal(err)
	}
	// Inter-Th stages have ~4 GEMM pieces per original GEMM.
	thGemms, opGemms := 0, 0
	for _, k := range thStages[0].Kernels {
		if strings.Contains(k.Name, "qkv") {
			thGemms++
		}
	}
	for _, k := range opStages[0].Kernels {
		if strings.Contains(k.Name, "qkv") {
			opGemms++
		}
	}
	if thGemms != 4*opGemms {
		t.Fatalf("Inter-Th has %d qkv pieces vs Inter-Op %d; want 4x", thGemms, opGemms)
	}
}

func TestAllReduceDescSplit(t *testing.T) {
	c := compilerFor(hw.A100Node())
	k, err := c.IntraOp(model.OPT30B(), 4, ctxWorkload(2, 64))
	if err != nil {
		t.Fatal(err)
	}
	var ar KernelDesc
	for _, kd := range k {
		if kd.Class == gpusim.Comm {
			ar = kd
			break
		}
	}
	if !ar.CanSplit() {
		t.Fatal("all-reduce not decomposable")
	}
	pieces, ok := ar.Split(8)
	if !ok || len(pieces) != 8 {
		t.Fatalf("split returned %d pieces, ok=%v", len(pieces), ok)
	}
	var bytes int64
	var sum time.Duration
	for _, p := range pieces {
		if p.Class != gpusim.Comm || !p.Collective {
			t.Fatal("split piece lost its class/collective flag")
		}
		bytes += p.Bytes
		sum += p.Duration
	}
	if bytes != ar.Bytes {
		t.Fatalf("split pieces carry %d bytes, original %d", bytes, ar.Bytes)
	}
	// Each piece pays the collective latency again: the sum must exceed
	// the original but stay sane.
	if sum <= ar.Duration {
		t.Fatalf("decomposed all-reduce sum %v not above original %v", sum, ar.Duration)
	}
	if sum > 3*ar.Duration {
		t.Fatalf("decomposed all-reduce overhead too big: %v vs %v", sum, ar.Duration)
	}
}

func TestGEMMDescSplitConservesColumns(t *testing.T) {
	c := compilerFor(hw.V100Node())
	k, err := c.IntraOp(model.OPT30B(), 4, ctxWorkload(2, 64))
	if err != nil {
		t.Fatal(err)
	}
	var g KernelDesc
	for _, kd := range k {
		if strings.Contains(kd.Name, "fc1") {
			g = kd
			break
		}
	}
	pieces, ok := g.Split(8)
	if !ok || len(pieces) != 8 {
		t.Fatalf("gemm split failed: %d pieces ok=%v", len(pieces), ok)
	}
	var sum time.Duration
	for _, p := range pieces {
		sum += p.Duration
	}
	if sum < g.Duration {
		t.Fatalf("gemm pieces sum %v less than original %v", sum, g.Duration)
	}
}

func TestSplitPrefix(t *testing.T) {
	c := compilerFor(hw.V100Node())
	k, _ := c.IntraOp(model.OPT30B(), 4, ctxWorkload(2, 64))
	var g KernelDesc
	for _, kd := range k {
		if strings.Contains(kd.Name, "fc1") {
			g = kd
			break
		}
	}
	head, rest, ok := g.SplitPrefix(8, 3)
	if !ok {
		t.Fatal("SplitPrefix failed")
	}
	if len(head) != 3 {
		t.Fatalf("head has %d pieces, want 3", len(head))
	}
	if !rest.CanSplit() {
		t.Fatal("remainder lost its splitter")
	}
	var total time.Duration
	for _, h := range head {
		total += h.Duration
	}
	total += rest.Duration
	// Head + remainder should cover roughly the split total.
	pieces, _ := g.Split(8)
	var splitSum time.Duration
	for _, p := range pieces {
		splitSum += p.Duration
	}
	diff := total - splitSum
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.05*float64(splitSum) {
		t.Fatalf("prefix+rest %v diverges from full split %v", total, splitSum)
	}
}

func TestSplitPrefixRejectsBadArgs(t *testing.T) {
	c := compilerFor(hw.V100Node())
	k, _ := c.IntraOp(model.OPT30B(), 4, ctxWorkload(2, 64))
	g := k[1]
	if _, _, ok := g.SplitPrefix(8, 0); ok {
		t.Fatal("take=0 accepted")
	}
	if _, _, ok := g.SplitPrefix(8, 8); ok {
		t.Fatal("take=parts accepted")
	}
	if _, _, ok := g.SplitPrefix(1, 1); ok {
		t.Fatal("parts=1 accepted")
	}
}

func TestNonDecomposableKernels(t *testing.T) {
	c := compilerFor(hw.V100Node())
	k, _ := c.IntraOp(model.Tiny(), 4, ctxWorkload(2, 16))
	for _, kd := range k {
		if strings.Contains(kd.Name, "ln") || strings.Contains(kd.Name, "attn.") {
			if kd.CanSplit() {
				t.Fatalf("%s should not be decomposable", kd.Name)
			}
		}
	}
}

func TestFig9VerticalBeatsHorizontal(t *testing.T) {
	cm := compilerFor(hw.V100Node()).CostModel()
	m, n, k := 128, 28672, 7168
	vert := SumDurations(GEMMSplitVertical(cm, m, n, k, 8))
	horiz := SumDurations(GEMMSplitHorizontal(cm, m, n, k, 8))
	orig := cm.GEMM(m, n, k)
	if vert <= orig {
		t.Fatalf("vertical sum %v not above original %v", vert, orig)
	}
	if float64(horiz) < 1.3*float64(vert) {
		t.Fatalf("horizontal %v should significantly exceed vertical %v", horiz, vert)
	}
}

func TestFig10jkInterThAnomaly(t *testing.T) {
	// §4.2 observes that for GLM-130B on the A100 node the accumulated
	// duration of the four partitioned GEMMs is *shorter* than the
	// original kernel for some GEMMs (column-split pieces keep good
	// efficiency while the row-partitioned original loses more).
	cm := compilerFor(hw.A100Node()).CostModel()
	h := 12288
	// FC2 full kernel: m x h x 4h; partitioned pieces: m x h x h each.
	full := cm.GEMM(128, h, 4*h)
	var pieces time.Duration
	for i := 0; i < 4; i++ {
		pieces += cm.GEMM(128, h, 4*h/4)
	}
	// The pieces shrink the inner dimension only — the sum is close to
	// the original; with the efficiency curve they can come out ahead
	// for some shapes. We assert they are at least not catastrophically
	// worse, preserving the anomaly's possibility.
	if float64(pieces) > 1.25*float64(full) {
		t.Fatalf("K-split pieces %v much worse than original %v", pieces, full)
	}
}

func TestInvalidConfigs(t *testing.T) {
	c := compilerFor(hw.V100Node())
	if _, err := c.IntraOp(model.Tiny(), 0, ctxWorkload(2, 16)); err == nil {
		t.Fatal("tp=0 accepted")
	}
	if _, err := c.IntraOp(model.Tiny(), 4, model.Workload{Batch: 0, SeqLen: 4, Phase: model.Context}); err == nil {
		t.Fatal("batch=0 accepted")
	}
	if _, err := c.InterOp(model.Tiny(), 9, ctxWorkload(2, 16)); err == nil {
		t.Fatal("more stages than layers accepted")
	}
	bad := model.Spec{Name: "bad", Layers: 2, Heads: 7, Hidden: 512, FFNMult: 4}
	if _, err := c.IntraOp(bad, 4, ctxWorkload(2, 16)); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestDecodeWorkloadCompile(t *testing.T) {
	c := compilerFor(hw.A100Node())
	w := model.Workload{Batch: 32, CtxLen: 16, Phase: model.Decode}
	k, err := c.IntraOp(model.OPT30B(), 4, w)
	if err != nil {
		t.Fatal(err)
	}
	comp, comm := TotalDurations(k)
	if comp <= 0 || comm <= 0 {
		t.Fatalf("decode plan durations: compute %v comm %v", comp, comm)
	}
	// LM head appears in decode mode.
	found := false
	for _, kd := range k {
		if strings.Contains(kd.Name, "lm_head") {
			found = true
		}
	}
	if !found {
		t.Fatal("decode plan lacks lm_head")
	}
}

func TestDecompositionOverheadMonotonicParts(t *testing.T) {
	cm := compilerFor(hw.V100Node()).CostModel()
	prev := 0.0
	for _, parts := range []int{2, 4, 8, 16} {
		r := DecompositionOverhead(cm, 128, 7168, 7168, parts)
		if r < 1 {
			t.Fatalf("overhead ratio %v below 1 at parts=%d", r, parts)
		}
		if r < prev {
			t.Fatalf("overhead ratio decreased at parts=%d: %v < %v", parts, r, prev)
		}
		prev = r
	}
}
