package parallel

import (
	"testing"

	"liger/internal/hw"
	"liger/internal/model"
	"liger/internal/nccl"
)

// BenchmarkCompileIntraOp measures full-model kernel compilation cost
// (done once per arriving batch in the serving path).
func BenchmarkCompileIntraOp(b *testing.B) {
	c := NewCompiler(hw.V100Node(), nccl.Config{ReducedChannels: true})
	w := model.Workload{Batch: 2, SeqLen: 64, Phase: model.Context}
	spec := model.OPT30B()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.IntraOp(spec, 4, w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSplitGEMM measures runtime decomposition cost (fired inside
// the scheduling loop).
func BenchmarkSplitGEMM(b *testing.B) {
	c := NewCompiler(hw.V100Node(), nccl.Config{ReducedChannels: true})
	ks, err := c.IntraOp(model.OPT30B().WithLayers(1), 4,
		model.Workload{Batch: 2, SeqLen: 64, Phase: model.Context})
	if err != nil {
		b.Fatal(err)
	}
	var gemm KernelDesc
	for _, k := range ks {
		if k.CanSplit() && !k.Collective {
			gemm = k
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := gemm.SplitPrefix(8, 3); !ok {
			b.Fatal("split failed")
		}
	}
}
