package parallel

import (
	"fmt"
	"time"

	"liger/internal/gpusim"
)

// SyntheticKernel builds a KernelDesc directly, for scheduler tests and
// microbenchmarks that need precise control over durations and demands.
func SyntheticKernel(name string, class gpusim.KernelClass, dur time.Duration, compute, membw float64, collective bool) KernelDesc {
	return KernelDesc{
		Name:          name,
		Class:         class,
		Duration:      dur,
		ComputeDemand: compute,
		MemBWDemand:   membw,
		Collective:    collective,
	}
}

// WithEqualSplit returns a copy of k that decomposes into exactly-equal
// pieces (duration and bytes divided evenly, no overhead). Real kernels
// from the compiler carry cost-model splitters; this idealized splitter
// isolates scheduler behaviour from decomposition overhead in tests.
func (k KernelDesc) WithEqualSplit() KernelDesc {
	base := k
	base.split = nil
	out := k
	out.split = func(parts int) []KernelDesc {
		pieces := make([]KernelDesc, parts)
		for i := range pieces {
			pieces[i] = base
			pieces[i].Name = fmt.Sprintf("%s[%d/%d]", base.Name, i+1, parts)
			pieces[i].Duration = base.Duration / time.Duration(parts)
			pieces[i].Bytes = base.Bytes / int64(parts)
		}
		return pieces
	}
	return out
}
