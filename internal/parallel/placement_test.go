package parallel

import (
	"strings"
	"testing"

	"liger/internal/hw"
	"liger/internal/model"
)

// TestPaperTestbedAssignment verifies the §4.2 memory constraint that
// drives the paper's evaluation matrix: OPT-30B fits the V100 node;
// OPT-66B and GLM-130B do not; everything fits the A100 node.
func TestPaperTestbedAssignment(t *testing.T) {
	v100, a100 := hw.V100Node(), hw.A100Node()
	cases := []struct {
		node hw.Node
		spec model.Spec
		fits bool
	}{
		{v100, model.OPT30B(), true},
		{v100, model.OPT66B(), false},
		{v100, model.GLM130B(), false},
		{a100, model.OPT30B(), true},
		{a100, model.OPT66B(), true},
		{a100, model.GLM130B(), true},
	}
	for _, c := range cases {
		err := CheckPlacement(c.node, c.spec, 8, 128, 0, 0)
		if c.fits && err != nil {
			t.Errorf("%s on %s should fit: %v", c.spec.Name, c.node.Name, err)
		}
		if !c.fits && err == nil {
			t.Errorf("%s on %s should not fit", c.spec.Name, c.node.Name)
		}
	}
}

func TestPlacementReportComponents(t *testing.T) {
	r := PlanPlacement(hw.A100Node(), model.OPT30B(), 8, 128, 0, 0)
	if r.WeightBytesPerDevice != model.OPT30B().WeightBytes()/4 {
		t.Fatalf("weights per device %d", r.WeightBytesPerDevice)
	}
	if r.WorkspaceBytes <= 0 {
		t.Fatal("no workspace accounted")
	}
	if r.KVBytesPerDevice != 0 {
		t.Fatal("kv bytes for context-only serving")
	}
	if r.Total() != r.WeightBytesPerDevice+r.WorkspaceBytes {
		t.Fatal("Total mismatch")
	}
	if !r.Fits() {
		t.Fatal("OPT-30B should fit A100")
	}
}

func TestPlacementKVCacheCounts(t *testing.T) {
	without := PlanPlacement(hw.A100Node(), model.GLM130B(), 32, 1, 0, 0)
	with := PlanPlacement(hw.A100Node(), model.GLM130B(), 32, 1, 64, 2048)
	if with.KVBytesPerDevice <= 0 || with.Total() <= without.Total() {
		t.Fatal("KV cache not accounted")
	}
}

func TestPlacementErrorIsDescriptive(t *testing.T) {
	err := CheckPlacement(hw.V100Node(), model.GLM130B(), 8, 128, 0, 0)
	if err == nil {
		t.Fatal("no error")
	}
	msg := err.Error()
	for _, want := range []string{"GLM-130B", "weights", "GB"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
}

func TestPlacementSingleDevice(t *testing.T) {
	// Fig. 12 serves OPT-30B on a single 80 GB A100: 60 GB of weights
	// fit on one device.
	if err := CheckPlacement(hw.A100Node().WithGPUs(1), model.OPT30B(), 8, 128, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := CheckPlacement(hw.V100Node().WithGPUs(1), model.OPT30B(), 8, 128, 0, 0); err == nil {
		t.Fatal("60 GB should not fit one 16 GB V100 (the paper reduces layers for Fig. 3)")
	}
}
