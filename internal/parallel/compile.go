package parallel

import (
	"fmt"
	"time"

	"liger/internal/costmodel"
	"liger/internal/gpusim"
	"liger/internal/hw"
	"liger/internal/model"
	"liger/internal/nccl"
)

// SplitStrategy selects how runtime decomposition divides GEMMs
// (Fig. 9). Vertical (weight-column) division is Liger's choice;
// Horizontal exists for the ablation that shows why.
type SplitStrategy int

const (
	// SplitVertical divides the weight matrix's output columns.
	SplitVertical SplitStrategy = iota
	// SplitHorizontal divides the activation's rows, collapsing compute
	// intensity for skinny activations.
	SplitHorizontal
)

// Option customizes a Compiler.
type Option func(*Compiler)

// WithGEMMSplit overrides the GEMM decomposition strategy.
func WithGEMMSplit(s SplitStrategy) Option {
	return func(c *Compiler) { c.gemmSplit = s }
}

// Compiler turns logical operators into costed kernels for a specific
// node and NCCL configuration.
type Compiler struct {
	node      hw.Node
	cm        *costmodel.Model
	comm      *nccl.Comm
	ncclCfg   nccl.Config
	gemmSplit SplitStrategy
}

// NewCompiler builds a compiler for the node. ncclCfg selects the
// communication-kernel footprint (Liger reduces channels; the baselines
// may keep NCCL defaults).
func NewCompiler(node hw.Node, ncclCfg nccl.Config, opts ...Option) *Compiler {
	c := &Compiler{
		node:    node,
		cm:      costmodel.New(node.GPU),
		comm:    nccl.New(node, ncclCfg),
		ncclCfg: ncclCfg,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// ForWorldSize returns a compiler targeting the same node shrunk to n
// devices — the reduced world a runtime re-plans for after a permanent
// device failure. Collective costs re-price for n ranks; the NCCL
// footprint and GEMM split strategy carry over. n equal to the current
// world returns the receiver unchanged.
func (c *Compiler) ForWorldSize(n int) *Compiler {
	if n == c.node.NumGPUs {
		return c
	}
	if n < 1 {
		panic(fmt.Sprintf("parallel: world size %d", n))
	}
	nc := NewCompiler(c.node.WithGPUs(n), c.ncclCfg)
	nc.gemmSplit = c.gemmSplit
	return nc
}

// CostModel exposes the kernel cost model (for profiling tools).
func (c *Compiler) CostModel() *costmodel.Model { return c.cm }

// Comm exposes the collective cost model.
func (c *Compiler) Comm() *nccl.Comm { return c.comm }

// Node returns the target hardware.
func (c *Compiler) Node() hw.Node { return c.node }

// gemmDesc builds a decomposable GEMM kernel. Runtime decomposition
// splits the output columns (the vertical strategy of Fig. 9): each
// piece is GEMM(m, n/parts, k), an equal-capability division whose
// pieces are only mildly less efficient. The horizontal (row) strategy
// is available separately for the ablation.
func (c *Compiler) gemmDesc(name string, m, n, k int) KernelDesc {
	cm := c.cm
	cs := c.node.Contention
	strategy := c.gemmSplit
	d := KernelDesc{
		Name:          name,
		Class:         gpusim.Compute,
		Duration:      cm.GEMM(m, n, k),
		ComputeDemand: cs.GEMMCompute,
		MemBWDemand:   cs.GEMMMemBW,
	}
	d.split = func(parts int) []KernelDesc {
		out := make([]KernelDesc, parts)
		splitDim := n
		if strategy == SplitHorizontal {
			splitDim = m
		}
		base := splitDim / parts
		extra := splitDim % parts
		for i := range out {
			piece := base
			if i < extra {
				piece++
			}
			rows, cols := m, piece
			if strategy == SplitHorizontal {
				rows, cols = piece, n
			}
			out[i] = KernelDesc{
				Name:          fmt.Sprintf("%s[%d/%d]", name, i+1, parts),
				Class:         gpusim.Compute,
				Duration:      cm.GEMM(rows, cols, k),
				ComputeDemand: cs.GEMMCompute,
				MemBWDemand:   cs.GEMMMemBW,
			}
		}
		return out
	}
	return d
}

// auxDesc builds a memory-bound kernel (layernorm, GeLU, residual,
// attention, embedding).
func (c *Compiler) auxDesc(name string, dur time.Duration) KernelDesc {
	cs := c.node.Contention
	return KernelDesc{
		Name:          name,
		Class:         gpusim.Compute,
		Duration:      dur,
		ComputeDemand: cs.AuxCompute,
		MemBWDemand:   cs.AuxMemBW,
	}
}

// allReduceDesc builds a decomposable all-reduce kernel; decomposition
// splits the payload into equal chunks, each paying the collective
// latency again (§3.6's equal-division strategy).
func (c *Compiler) allReduceDesc(name string, bytes int64) KernelDesc {
	comm := c.comm
	d := KernelDesc{
		Name:          name,
		Class:         gpusim.Comm,
		Duration:      comm.AllReduce(bytes),
		ComputeDemand: comm.ComputeDemand(),
		MemBWDemand:   comm.MemBWDemand(),
		Collective:    true,
		Bytes:         bytes,
	}
	d.split = func(parts int) []KernelDesc {
		out := make([]KernelDesc, parts)
		base := bytes / int64(parts)
		extra := bytes % int64(parts)
		for i := range out {
			b := base
			if int64(i) < extra {
				b++
			}
			out[i] = KernelDesc{
				Name:          fmt.Sprintf("%s[%d/%d]", name, i+1, parts),
				Class:         gpusim.Comm,
				Duration:      comm.AllReduceChunk(bytes, b),
				ComputeDemand: comm.ComputeDemand(),
				MemBWDemand:   comm.MemBWDemand(),
				Collective:    true,
				Bytes:         b,
			}
		}
		return out
	}
	return d
}

// p2pDesc builds a pipeline-boundary transfer. P2P copies use the copy
// engines, so their SM footprint is tiny and they co-run with the
// receiving stage's compute.
func (c *Compiler) p2pDesc(name string, bytes int64) KernelDesc {
	return KernelDesc{
		Name:          name,
		Class:         gpusim.Comm,
		Duration:      c.comm.P2P(bytes),
		ComputeDemand: c.comm.P2PComputeDemand(),
		MemBWDemand:   c.comm.MemBWDemand(),
		Collective:    true, // rendezvous between the two stage devices
		Bytes:         bytes,
	}
}

// compileOp lowers one logical op at tensor-parallel degree tp into the
// kernels one rank executes, appending the Megatron all-reduce at
// ReduceAfter points.
func (c *Compiler) compileOp(prefix string, op model.Op, tp int, w model.Workload) []KernelDesc {
	tokens := w.Tokens()
	var out []KernelDesc
	name := prefix + op.Name
	switch op.Kind {
	case model.OpGEMM:
		n, k := op.N, op.K
		switch op.Partition {
		case model.PartCols:
			n = ceilDiv(n, tp)
		case model.PartRows:
			k = ceilDiv(k, tp)
		}
		out = append(out, c.gemmDesc(name, op.M, n, k))
	case model.OpAttention:
		heads := ceilDiv(op.Heads, tp)
		var dur time.Duration
		if w.Phase == model.Decode {
			// Decode streams the KV cache: with grouped-query attention
			// only KVHeads worth of cache exists per device.
			kvHeads := op.KVHeads
			if kvHeads == 0 {
				kvHeads = op.Heads
			}
			dur = c.cm.AttentionDecode(op.Batch, op.Ctx, ceilDiv(kvHeads, tp), op.HeadDim)
		} else {
			dur = c.cm.AttentionContext(op.Batch, op.Seq, heads, op.HeadDim)
		}
		out = append(out, c.auxDesc(name, dur))
	case model.OpLayerNorm, model.OpResidual:
		out = append(out, c.auxDesc(name, c.cm.Elementwise(op.Bytes, 1)))
	case model.OpGeLU:
		bytes := op.Bytes
		if op.Partition == model.PartNone && tp > 1 {
			// GeLU operates on FC1's partitioned output.
			bytes /= int64(tp)
		}
		out = append(out, c.auxDesc(name, c.cm.Elementwise(bytes, 1)))
	case model.OpEmbedding:
		out = append(out, c.auxDesc(name, c.cm.Embedding(op.M, op.N)))
	}
	if op.ReduceAfter && tp > 1 {
		bytes := int64(tokens) * int64(c.hidden(op)) * 2
		out = append(out, c.allReduceDesc(name+"_ar", bytes))
	}
	return out
}

// hidden recovers the activation width after an op (the all-reduce
// payload dimension).
func (c *Compiler) hidden(op model.Op) int {
	if op.Kind == model.OpGEMM {
		return op.N
	}
	return 0
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// IntraOp compiles the full forward pass under tensor parallelism of
// degree tp. The result is the SPMD kernel sequence every rank runs;
// Collective kernels rendezvous across all tp ranks. With tp == 1 the
// result is the plain single-device execution (no communication).
func (c *Compiler) IntraOp(spec model.Spec, tp int, w model.Workload) ([]KernelDesc, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if tp < 1 {
		return nil, fmt.Errorf("parallel: tensor-parallel degree %d", tp)
	}
	var out []KernelDesc
	for _, op := range model.PreOps(spec, w) {
		out = append(out, c.compileOp("", op, tp, w)...)
	}
	for l := 0; l < spec.Layers; l++ {
		prefix := fmt.Sprintf("l%d.", l)
		for _, op := range model.LayerOps(spec, w) {
			out = append(out, c.compileOp(prefix, op, tp, w)...)
		}
	}
	for _, op := range model.PostOps(spec, w) {
		out = append(out, c.compileOp("", op, tp, w)...)
	}
	return out, nil
}

// Stage is one pipeline stage: the kernels one device runs for its
// layer range, plus the boundary transfer to the next stage (empty for
// the last stage).
type Stage struct {
	Device  int
	Kernels []KernelDesc
	// SendNext is the p2p transfer of activations to the next stage;
	// zero-valued for the final stage.
	SendNext KernelDesc
	HasSend  bool
}

// InterOp compiles the pipeline-parallel execution: the model is split
// into stages equal contiguous layer groups, each on its own device,
// with a single point-to-point transfer between consecutive stages
// (§2.2.2). Kernels inside a stage are the original full-size kernels.
func (c *Compiler) InterOp(spec model.Spec, stages int, w model.Workload) ([]Stage, error) {
	return c.interOp(spec, stages, w, 1)
}

// InterTh compiles the theoretical inter-operator baseline (§4.1): the
// same pipeline, but each stage executes the *partitioned* kernels of
// the intra-operator approach back to back (tp pieces sequentially on
// one device). Fig. 10(j)(k) shows this can beat Inter-Op when the sum
// of partitioned GEMMs is shorter than the original kernel.
func (c *Compiler) InterTh(spec model.Spec, stages int, w model.Workload) ([]Stage, error) {
	return c.interOp(spec, stages, w, stages)
}

func (c *Compiler) interOp(spec model.Spec, stages int, w model.Workload, tp int) ([]Stage, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if stages < 1 || stages > spec.Layers {
		return nil, fmt.Errorf("parallel: %d stages for %d layers", stages, spec.Layers)
	}
	perStage := spec.Layers / stages
	extra := spec.Layers % stages
	actBytes := int64(w.Tokens()) * int64(spec.Hidden) * 2

	var out []Stage
	layer := 0
	for st := 0; st < stages; st++ {
		count := perStage
		if st < extra {
			count++
		}
		stage := Stage{Device: st}
		if st == 0 {
			for _, op := range model.PreOps(spec, w) {
				stage.Kernels = append(stage.Kernels, c.compilePieces("", op, tp, w)...)
			}
		}
		for i := 0; i < count; i++ {
			prefix := fmt.Sprintf("l%d.", layer)
			for _, op := range model.LayerOps(spec, w) {
				stage.Kernels = append(stage.Kernels, c.compilePieces(prefix, op, tp, w)...)
			}
			layer++
		}
		if st == stages-1 {
			for _, op := range model.PostOps(spec, w) {
				stage.Kernels = append(stage.Kernels, c.compilePieces("", op, tp, w)...)
			}
		} else {
			stage.SendNext = c.p2pDesc(fmt.Sprintf("s%d_send", st), actBytes)
			stage.HasSend = true
		}
		out = append(out, stage)
	}
	return out, nil
}

// compilePieces lowers an op for a pipeline stage. With tp == 1 it is
// the original kernel; with tp > 1 (Inter-Th) the op becomes its tp
// partitioned pieces executed sequentially on the stage device, with no
// all-reduce (a single device holds every piece).
func (c *Compiler) compilePieces(prefix string, op model.Op, tp int, w model.Workload) []KernelDesc {
	if tp == 1 {
		op.ReduceAfter = false
		return c.compileOp(prefix, op, 1, w)
	}
	op.ReduceAfter = false
	switch op.Partition {
	case model.PartCols, model.PartRows, model.PartHeads:
		var out []KernelDesc
		for p := 0; p < tp; p++ {
			piece := c.compileOp(fmt.Sprintf("%sp%d.", prefix, p), op, tp, w)
			out = append(out, piece...)
		}
		return out
	default:
		// Replicated ops run once per device in intra-op; a single stage
		// device runs them once.
		return c.compileOp(prefix, op, 1, w)
	}
}
