// Package parallel partitions a model's logical operator graph into
// per-device kernel sequences under the three parallelism approaches
// the paper compares (§4.1): Megatron-style intra-operator tensor
// parallelism, inter-operator pipeline parallelism, and the theoretical
// inter-operator variant built from partitioned kernels. The output is
// a list of fully-costed kernel descriptors that the runtimes launch
// onto the simulated node.
package parallel

import (
	"fmt"
	"time"

	"liger/internal/gpusim"
)

// KernelDesc is one kernel launch: its class, solo duration, resource
// demands for the contention engine, and (for decomposable kernels) a
// way to split it into finer-grained equal-capability pieces (§3.6).
type KernelDesc struct {
	Name  string
	Class gpusim.KernelClass
	// Duration is the solo execution time from the cost model.
	Duration time.Duration
	// ComputeDemand / MemBWDemand feed the simulator's contention
	// engine.
	ComputeDemand float64
	MemBWDemand   float64
	// Collective marks kernels that rendezvous across the
	// tensor-parallel group (all-reduce) or a stage pair (p2p).
	Collective bool
	// Bytes is the payload of communication kernels.
	Bytes int64

	// split produces parts equal-capability sub-kernels, or nil if the
	// kernel is not decomposable.
	split func(parts int) []KernelDesc
}

// CanSplit reports whether runtime kernel decomposition applies.
func (k KernelDesc) CanSplit() bool { return k.split != nil }

// Split decomposes the kernel into parts equal pieces. It returns
// ok=false when the kernel is indivisible or parts < 2.
func (k KernelDesc) Split(parts int) ([]KernelDesc, bool) {
	if k.split == nil || parts < 2 {
		return nil, false
	}
	return k.split(parts), true
}

// SplitPrefix returns the first `take` of `parts` pieces and a
// remainder kernel representing the rest, used when the scheduler only
// needs a fraction of a lengthy kernel to fill an overlap window.
func (k KernelDesc) SplitPrefix(parts, take int) (head []KernelDesc, rest KernelDesc, ok bool) {
	if k.split == nil || parts < 2 || take <= 0 || take >= parts {
		return nil, KernelDesc{}, false
	}
	pieces := k.split(parts)
	if len(pieces) != parts {
		return nil, KernelDesc{}, false
	}
	head = pieces[:take]
	// Merge the remaining pieces into one kernel to avoid needless
	// launches; its duration is the sum of the tail pieces.
	rest = pieces[take]
	for _, p := range pieces[take+1:] {
		rest.Duration += p.Duration
		rest.Bytes += p.Bytes
	}
	rest.Name = fmt.Sprintf("%s[rest%d/%d]", k.Name, parts-take, parts)
	// The merged remainder keeps the original split granularity.
	restCopy := rest
	origSplit := k.split
	frac := float64(parts-take) / float64(parts)
	rest.split = func(p int) []KernelDesc {
		// Re-split the remainder by splitting the original and scaling.
		pieces := origSplit(p)
		out := make([]KernelDesc, p)
		for i := range pieces {
			out[i] = pieces[i]
			out[i].Duration = time.Duration(float64(pieces[i].Duration) * frac)
			out[i].Bytes = int64(float64(pieces[i].Bytes) * frac)
			out[i].Name = fmt.Sprintf("%s[%d/%d]", restCopy.Name, i+1, p)
		}
		return out
	}
	return head, rest, true
}

// TotalDurations sums solo durations by kernel class — the analytical
// totals behind Fig. 3's compute/communication shares.
func TotalDurations(kernels []KernelDesc) (compute, comm time.Duration) {
	for _, k := range kernels {
		if k.Class == gpusim.Comm {
			comm += k.Duration
		} else {
			compute += k.Duration
		}
	}
	return compute, comm
}

// CountClass returns how many kernels have the given class.
func CountClass(kernels []KernelDesc, class gpusim.KernelClass) int {
	n := 0
	for _, k := range kernels {
		if k.Class == class {
			n++
		}
	}
	return n
}
