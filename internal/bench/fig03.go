package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"liger/internal/hw"
	"liger/internal/model"
	"liger/internal/nccl"
	"liger/internal/parallel"
)

// RunFig03 reproduces Fig. 3: strong scaling of the intra-operator
// approach. OPT-30B on the V100/NVLink node and GLM-130B on the
// A100/PCIe node, scaled from 1 to 4 devices, reporting total execution
// time split into computation and communication. The paper reports a
// 2.58x total-time reduction with communication at 20.7% of total for
// OPT-30B, and 1.91x with 47.1% for GLM-130B.
func RunFig03(cfg RunConfig, w io.Writer) error {
	cases := []struct {
		node hw.Node
		spec model.Spec
	}{
		{hw.V100Node(), model.OPT30B()},
		{hw.A100Node(), model.GLM130B()},
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "model\tnode\tdevices\tcompute\tcomm\ttotal\tspeedup\tcomm share")
	for _, c := range cases {
		wk := model.Workload{Batch: 2, SeqLen: meanSeq, Phase: model.Context}
		var base time.Duration
		for _, devs := range []int{1, 2, 4} {
			node := c.node
			if devs != node.NumGPUs {
				node = node.WithGPUs(devs)
			}
			comp := parallel.NewCompiler(node, nccl.Config{ReducedChannels: true})
			ks, err := comp.IntraOp(c.spec, devs, wk)
			if err != nil {
				return err
			}
			cd, md := parallel.TotalDurations(ks)
			total := cd + md
			if devs == 1 {
				base = total
			}
			share := 0.0
			if total > 0 {
				share = float64(md) / float64(total)
			}
			fmt.Fprintf(tw, "%s\t%s\t%d\t%v\t%v\t%v\t%.2fx\t%.1f%%\n",
				c.spec.Name, node.Interconnect.Name, devs,
				cd.Round(time.Microsecond), md.Round(time.Microsecond),
				total.Round(time.Microsecond),
				float64(base)/float64(total), 100*share)
		}
	}
	fmt.Fprintln(tw, "\npaper: OPT-30B/V100 2.58x @4 devices, comm 20.7%; GLM-130B/A100 1.91x, comm 47.1%")
	return tw.Flush()
}
