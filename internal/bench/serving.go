package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"text/tabwriter"
	"time"

	"liger/internal/core"
	"liger/internal/generate"
	"liger/internal/hw"
	"liger/internal/kvcache"
	"liger/internal/liger"
	"liger/internal/model"
	"liger/internal/nccl"
	"liger/internal/parallel"
	"liger/internal/runner"
	"liger/internal/stats"
	"liger/internal/trace"
)

// ServingJSONName is the machine-readable artifact of the continuous-
// serving sweep (written into RunConfig.JSONDir when set).
const ServingJSONName = "BENCH_serving.json"

// servingSetup fixes the continuous-batching experiment's shared knobs
// so the experiment driver, its determinism test, and the CI smoke
// agree.
type servingSetup struct {
	nodeKey   string
	node      hw.Node
	spec      model.Spec
	prompt    int
	gen       int
	pools     []int
	fractions []float64
	kinds     []core.RuntimeKind
	// capacity is the analytic rate (sequences/s) at which one prompt's
	// intra-op prefill saturates the node; the arrival-rate sweep is
	// expressed as fractions of it so the points straddle saturation.
	capacity float64
}

func newServingSetup(cfg RunConfig) servingSetup {
	// Same testbed as the fleet sweep — OPT-30B on the 4xA100 node — but
	// serving generative traffic: each sequence prefills a 96-token
	// prompt and then decodes 32 tokens one iteration at a time. The
	// sweep crosses the saturation point (1.1x) where admission control
	// and pool sizing start to matter.
	node := hw.A100Node()
	spec := model.OPT30B()
	prompt, gen := 96, 32
	fractions := []float64{0.5, 0.8, 1.1}
	pools := []int{8, 16}
	if cfg.Quick {
		fractions = []float64{0.8}
		pools = []int{8}
	}
	return servingSetup{
		nodeKey:   "a100",
		node:      node,
		spec:      spec,
		prompt:    prompt,
		gen:       gen,
		pools:     pools,
		fractions: fractions,
		kinds:     []core.RuntimeKind{core.KindLiger, core.KindIntraOp, core.KindInterOp},
		capacity:  prefillCapacity(node, spec, prompt),
	}
}

// prefillCapacity is intraCapacity specialized to one prompt's context
// phase: the analytic rate at which single-sequence prefills saturate
// the intra-op runtime.
func prefillCapacity(node hw.Node, spec model.Spec, prompt int) float64 {
	comp := parallel.NewCompiler(node, nccl.Config{})
	ks, err := comp.IntraOp(spec, node.NumGPUs, model.Workload{Batch: 1, SeqLen: prompt, Phase: model.Context})
	if err != nil {
		return 1
	}
	c, m := parallel.TotalDurations(ks)
	total := c + m
	if total <= 0 {
		return 1
	}
	return float64(time.Second) / float64(total)
}

// servingPoint identifies one simulation of the sweep: Kind serving
// cfg.Batches sequences arriving at Frac of prefill capacity with a
// Pool-sequence decode batch.
type servingPoint struct {
	kind core.RuntimeKind
	frac float64
	pool int
}

func (s servingSetup) points() []servingPoint {
	var pts []servingPoint
	for _, pool := range s.pools {
		for _, frac := range s.fractions {
			for _, kind := range s.kinds {
				pts = append(pts, servingPoint{kind: kind, frac: frac, pool: pool})
			}
		}
	}
	return pts
}

// runServingPoint serves one point: continuous batching over the paged
// KV allocator on a single node. A non-nil rec observes the batcher's
// iterations, sequence lifecycles and KV block events (tracing never
// changes results).
func runServingPoint(s servingSetup, pt servingPoint, cfg RunConfig, rec *trace.ServingRecorder) (generate.ContinuousResult, error) {
	opts := core.Options{Node: s.node, Model: s.spec, Runtime: pt.kind, Shards: cfg.Shards}
	if pt.kind == core.KindLiger {
		lc := liger.DefaultConfig(s.nodeKey)
		lc.DegradationAware = true
		opts.Liger = lc
		opts.LigerSet = true
	}
	eng, err := core.NewEngine(opts)
	if err != nil {
		return generate.ContinuousResult{}, err
	}
	kv, err := kvcache.NewPaged(s.node, s.spec, pt.pool, s.prompt+s.gen, kvcache.PagedConfig{})
	if err != nil {
		return generate.ContinuousResult{}, err
	}
	ccfg := generate.ContinuousConfig{
		Sequences:  cfg.Batches,
		RatePerSec: pt.frac * s.capacity,
		PromptLen:  s.prompt,
		GenTokens:  s.gen,
		MaxPool:    pt.pool,
		KV:         kv,
		Seed:       cfg.Seed,
	}
	if rec != nil {
		ccfg.Tracer = rec
		kv.SetTracer(rec, eng.Clock().Now)
	}
	return generate.RunContinuous(eng.Clock(), eng.Runtime(), ccfg)
}

// servingRow is one JSON record of the sweep.
type servingRow struct {
	Runtime  string  `json:"runtime"`
	RateFrac float64 `json:"rate_frac"`
	Pool     int     `json:"pool"`
	// TTFTMs is mean time-to-first-token (arrival to end of prefill);
	// TPOTMs is mean time-per-output-token over the decode phase.
	TTFTMs      float64 `json:"ttft_ms"`
	TPOTMs      float64 `json:"tpot_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MakespanMs  float64 `json:"makespan_ms"`
	MeanPool    float64 `json:"mean_pool"`
	Iterations  int     `json:"iterations"`
	Preemptions int     `json:"preemptions"`
	// RecomputedTokens is the prefill work repaid by preempted sequences'
	// resumes (0 when nothing was evicted).
	RecomputedTokens int `json:"recomputed_tokens"`
	Completed        int `json:"completed"`
}

// servingReport is the full artifact: per-point rows plus the headline
// aggregates the experiment exists to measure.
type servingReport struct {
	Batches  int          `json:"batches"`
	Prompt   int          `json:"prompt"`
	Gen      int          `json:"gen"`
	Seed     int64        `json:"seed"`
	Rows     []servingRow `json:"rows"`
	Headline struct {
		// Mean TPOT across every sweep point, per runtime.
		TPOTMs map[string]float64 `json:"tpot_ms"`
		// Mean TTFT across every sweep point, per runtime.
		TTFTMs map[string]float64 `json:"ttft_ms"`
		// LigerVsIntraTPOT is Liger's mean TPOT over Intra-Op's: ~1.0 means
		// interleaving holds parity on decode traffic (iteration-level
		// batches are too comm-light to hide much), while inter-op's deep
		// queues pay multiples on every latency metric.
		LigerVsIntraTPOT float64 `json:"liger_vs_intra_tpot"`
	} `json:"headline"`
}

// buildServingReport runs the sweep and aggregates it; shared by the
// experiment driver and the pinned tests.
func buildServingReport(s servingSetup, cfg RunConfig) (servingReport, []servingPoint, error) {
	pts := s.points()
	results, err := runner.Map(cfg.Parallel, len(pts), func(i int) (generate.ContinuousResult, error) {
		return runServingPoint(s, pts[i], cfg, nil)
	})
	if err != nil {
		return servingReport{}, nil, err
	}
	rep := servingReport{Batches: cfg.Batches, Prompt: s.prompt, Gen: s.gen, Seed: cfg.Seed}
	rep.Headline.TPOTMs = make(map[string]float64)
	rep.Headline.TTFTMs = make(map[string]float64)
	sumTPOT := make(map[core.RuntimeKind]float64)
	sumTTFT := make(map[core.RuntimeKind]float64)
	perKind := len(pts) / len(s.kinds)
	for i, pt := range pts {
		res := results[i]
		rep.Rows = append(rep.Rows, servingRow{
			Runtime:          pt.kind.String(),
			RateFrac:         pt.frac,
			Pool:             pt.pool,
			TTFTMs:           float64(res.AvgTTFT()) / float64(time.Millisecond),
			TPOTMs:           float64(res.AvgTPOT()) / float64(time.Millisecond),
			P99Ms:            float64(stats.Percentile(res.Total, 99)) / float64(time.Millisecond),
			MakespanMs:       float64(res.Makespan) / float64(time.Millisecond),
			MeanPool:         res.MeanPool,
			Iterations:       res.Iterations,
			Preemptions:      res.Preemptions,
			RecomputedTokens: res.RecomputedTokens,
			Completed:        res.Conversations,
		})
		sumTPOT[pt.kind] += float64(res.AvgTPOT()) / float64(time.Millisecond)
		sumTTFT[pt.kind] += float64(res.AvgTTFT()) / float64(time.Millisecond)
	}
	if perKind > 0 {
		for _, kind := range s.kinds {
			name := kind.String()
			rep.Headline.TPOTMs[name] = sumTPOT[kind] / float64(perKind)
			rep.Headline.TTFTMs[name] = sumTTFT[kind] / float64(perKind)
		}
		if intra := sumTPOT[core.KindIntraOp]; intra > 0 {
			rep.Headline.LigerVsIntraTPOT = sumTPOT[core.KindLiger] / intra
		}
	}
	return rep, pts, nil
}

// RunServing is the continuous-serving experiment: generative sequences
// (96-token prompt, 32 decode tokens) arrive Poisson at fractions of
// the node's prefill capacity and are served with iteration-level
// continuous batching over the paged KV allocator, sweeping arrival
// rate x decode-pool size x runtime. Every point is an independent
// simulation, so the sweep parallelizes and its output — table and
// JSON artifact — is byte-identical at any -parallel or -shards value.
func RunServing(cfg RunConfig, w io.Writer) error {
	s := newServingSetup(cfg)
	rep, pts, err := buildServingReport(s, cfg)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "pool\trate\truntime\tttft\ttpot\tp99\tmakespan\titers\tmean-pool\tpreempted")
	for i, pt := range pts {
		row := rep.Rows[i]
		fmt.Fprintf(tw, "%d\t%.1fx\t%s\t%.1fms\t%.2fms\t%.1fms\t%.0fms\t%d\t%.2f\t%d\n",
			pt.pool, pt.frac, row.Runtime, row.TTFTMs, row.TPOTMs, row.P99Ms,
			row.MakespanMs, row.Iterations, row.MeanPool, row.Preemptions)
	}
	fmt.Fprintf(tw, "\ntraffic: %d sequences of prompt %d + gen %d, poisson at fractions of %.1f seq/s prefill capacity; paged KV, seed %d\n",
		cfg.Batches, s.prompt, s.gen, s.capacity, cfg.Seed)
	if len(rep.Headline.TPOTMs) > 0 {
		fmt.Fprintf(tw, "headline: mean TPOT — Liger %.2fms, Intra-Op %.2fms, Inter-Op %.2fms (Liger/Intra %.2fx)\n",
			rep.Headline.TPOTMs["Liger"], rep.Headline.TPOTMs["Intra-Op"],
			rep.Headline.TPOTMs["Inter-Op"], rep.Headline.LigerVsIntraTPOT)
	}
	fmt.Fprintln(tw, "extension: iteration-level scheduling admits sequences against the paged KV budget instead of a worst-case reservation; decode batches are comm-light, so the honest claim is Liger at parity with intra-op while inter-op's pipeline depth multiplies TTFT")
	if err := tw.Flush(); err != nil {
		return err
	}
	if err := writeServingJSON(cfg, rep); err != nil {
		return err
	}
	return writeServingObservability(s, cfg, w)
}

// writeServingJSON writes the machine-readable artifact when
// RunConfig.JSONDir is set. encoding/json sorts map keys, so the bytes
// are a pure function of the report value.
func writeServingJSON(cfg RunConfig, rep servingReport) error {
	if cfg.JSONDir == "" {
		return nil
	}
	if err := os.MkdirAll(cfg.JSONDir, 0o755); err != nil {
		return err
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	return os.WriteFile(filepath.Join(cfg.JSONDir, ServingJSONName), buf, 0o644)
}
