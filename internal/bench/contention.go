package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"liger/internal/core"
	"liger/internal/hw"
	"liger/internal/liger"
	"liger/internal/model"
	"liger/internal/nccl"
	"liger/internal/parallel"
	"liger/internal/runner"
	"liger/internal/serve"
	"liger/internal/trace"
)

// RunContention reproduces the §3.5 methodology and the §4.2 contention
// factors: profile lengthy compute kernels concurrently with
// communication kernels, derive the maximum contention factor per node
// (the paper uses 1.1 on the V100 node and 1.15 on the A100 node), then
// ablate the factor in the scheduler to show why anticipation matters.
func RunContention(cfg RunConfig, w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "node\tpairs\tmax factor\tcompute factor\tcomm factor\tpaper factor")
	for _, nc := range []struct {
		key   string
		node  hw.Node
		paper float64
	}{
		{"v100", hw.V100Node(), 1.10},
		{"a100", hw.A100Node(), 1.15},
	} {
		comp := parallel.NewCompiler(nc.node, nccl.Config{ReducedChannels: true})
		// Representative lengthy kernels: the per-device GEMMs and
		// all-reduces of one OPT-30B layer at two input sizes.
		var computeKs, commKs []parallel.KernelDesc
		for _, seq := range []int{32, 128} {
			ks, err := comp.IntraOp(model.OPT30B().WithLayers(1), nc.node.NumGPUs,
				model.Workload{Batch: 2, SeqLen: seq, Phase: model.Context})
			if err != nil {
				return err
			}
			for _, k := range ks {
				if k.Collective {
					commKs = append(commKs, k)
				} else if k.CanSplit() { // GEMMs: the lengthy compute kernels
					computeKs = append(computeKs, k)
				}
			}
		}
		rep, err := trace.MeasureContention(nc.node, computeKs, commKs)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.3f\t%.3f\t%.2f\n",
			nc.key, rep.Pairs, rep.MaxFactor, rep.ComputeFactor, rep.CommFactor, nc.paper)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Ablation: scheduling with factor 1.0 lets the secondary subset
	// overrun the primary window under contention, hurting the primary
	// batch's latency (a Principle 1 violation the factor prevents).
	fmt.Fprintln(w, "\nablation: Liger with and without contention anticipation (OPT-30B, V100, batch 2)")
	p := panel{nodeKey: "v100", node: hw.V100Node(), spec: model.OPT30B(), batch: 2, phase: model.Context}
	rate := 1.05 * intraCapacity(p)
	factors := []float64{1.0, 1.1}
	results, err := runner.Map(cfg.Parallel, len(factors), func(i int) (serve.Result, error) {
		lcfg := liger.DefaultConfig(p.nodeKey)
		lcfg.ContentionFactor = factors[i]
		return runPoint(p, rate, core.KindLiger, cfg, &lcfg)
	})
	if err != nil {
		return err
	}
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "contention factor\tavg lat\tp99 lat\tthroughput")
	for i, cf := range factors {
		res := results[i]
		fmt.Fprintf(tw, "%.2f\t%s\t%s\t%.2f\n", cf, fmtDur(res.AvgLatency), fmtDur(res.P99), res.ThroughputBatches())
	}
	return tw.Flush()
}

// RunChannels ablates the §3.5 mitigation: with NCCL's default
// (redundant) channel allocation, communication kernels demand enough
// SMs to conflict with GEMMs, so overlap serializes and Liger's gain
// vanishes; with reduced channels the kernels co-run.
func RunChannels(cfg RunConfig, w io.Writer) error {
	p := panel{nodeKey: "a100", node: hw.A100Node(), spec: model.OPT30B(), batch: 2, phase: model.Context}
	rate := 1.2 * intraCapacity(p)
	variants := []bool{false, true}
	results, err := runner.Map(cfg.Parallel, len(variants), func(i int) (serve.Result, error) {
		eng, err := core.NewEngine(core.Options{
			Node: p.node, Model: p.spec, Runtime: core.KindLiger,
			NCCL: nccl.Config{ReducedChannels: variants[i]}, NCCLSet: true,
		})
		if err != nil {
			return serve.Result{}, err
		}
		trace, err := genTrace(p, rate, cfg)
		if err != nil {
			return serve.Result{}, err
		}
		return eng.Serve(trace)
	})
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NCCL channels\tavg lat\tthroughput")
	for i, reduced := range variants {
		res := results[i]
		name := "default (redundant)"
		if reduced {
			name = "reduced (NCCL_MAX_NCHANNELS/NCCL_NTHREADS)"
		}
		fmt.Fprintf(tw, "%s\t%s\t%.2f\n", name, fmtDur(res.AvgLatency), res.ThroughputBatches())
	}
	fmt.Fprintln(tw, "\npaper: NCCL allocates redundant CUDA blocks by default; fewer blocks still saturate bandwidth and unblock overlap")
	return tw.Flush()
}
