package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"liger/internal/analyze"
	"liger/internal/metrics"
	"liger/internal/runner"
	"liger/internal/trace"
)

// ServingAnalysisJSONName is the compact serving-analysis aggregate:
// one row per runtime distilled from a fully traced serving point
// (written into RunConfig.JSONDir when set). tools/benchdiff reads it
// as the serving layer's regression surface.
const ServingAnalysisJSONName = "BENCH_serving_analysis.json"

// servingAnalysisRow condenses one runtime's traced serving point.
type servingAnalysisRow struct {
	Runtime string  `json:"runtime"`
	TTFTMs  float64 `json:"ttft_ms"`
	TPOTMs  float64 `json:"tpot_ms"`
	// SegmentsMs totals the per-request latency decomposition by kind
	// (queue, prefill, decode, ... — see internal/analyze); the kinds
	// sum to the runs' total request latency.
	SegmentsMs map[string]float64 `json:"segments_ms"`
	// Imbalance is max/mean pool busy time (1.0 on one pool).
	Imbalance float64 `json:"imbalance"`
	// Episodes counts KV-pressure windows; Preemptions and
	// RecomputedTokens price the evictions they forced.
	Episodes         int   `json:"episodes"`
	Preemptions      int64 `json:"preemptions"`
	RecomputedTokens int64 `json:"recomputed_tokens"`
	KVPeakBlocks     int   `json:"kv_peak_blocks"`
}

// servingAnalysis is the full aggregate artifact.
type servingAnalysis struct {
	Batches  int                  `json:"batches"`
	Prompt   int                  `json:"prompt"`
	Gen      int                  `json:"gen"`
	Seed     int64                `json:"seed"`
	RateFrac float64              `json:"rate_frac"`
	Pool     int                  `json:"pool"`
	Rows     []servingAnalysisRow `json:"rows"`
}

// writeServingObservability re-runs one fully traced serving point per
// runtime — the sweep's highest arrival fraction on its smallest pool,
// the point most likely to show admission queueing and KV pressure —
// and writes, into cfg.TraceDir, a serving Chrome trace
// (serving_<runtime>.trace.json: iteration lanes, KV-pressure
// counters, lifecycle instants), a serving metrics snapshot
// (serving_<runtime>.metrics.json) and the serving analysis
// (serving_<runtime>.serving.json: exact TTFT/TPOT decomposition,
// pool loads, pressure episodes). When cfg.JSONDir is set a compact
// per-runtime aggregate lands there as BENCH_serving_analysis.json.
// Points fan across the sweep executor; artifacts render to memory and
// are written in fixed kind order, so every file is byte-identical at
// any -parallel or -shards value.
func writeServingObservability(s servingSetup, cfg RunConfig, w io.Writer) error {
	if cfg.TraceDir == "" && cfg.JSONDir == "" {
		return nil
	}
	pt := servingPoint{frac: s.fractions[len(s.fractions)-1], pool: s.pools[0]}
	type artifact struct {
		runtime                 string
		trace, metrics, serving []byte
		row                     servingAnalysisRow
	}
	arts, err := runner.Map(cfg.Parallel, len(s.kinds), func(i int) (artifact, error) {
		p := pt
		p.kind = s.kinds[i]
		rec := trace.NewServingRecorder()
		res, err := runServingPoint(s, p, cfg, rec)
		if err != nil {
			return artifact{}, err
		}
		rep := analyze.AnalyzeServing(rec)
		snap := metrics.FromServing(p.kind.String(), rec, metrics.Options{})
		var tb, mb, sb bytes.Buffer
		if err := rec.WriteChromeTrace(&tb); err != nil {
			return artifact{}, err
		}
		if err := snap.WriteJSON(&mb); err != nil {
			return artifact{}, err
		}
		if err := rep.WriteJSON(&sb); err != nil {
			return artifact{}, err
		}
		row := servingAnalysisRow{
			Runtime:          p.kind.String(),
			TTFTMs:           float64(res.AvgTTFT()) / float64(time.Millisecond),
			TPOTMs:           float64(res.AvgTPOT()) / float64(time.Millisecond),
			SegmentsMs:       map[string]float64{},
			Imbalance:        rep.Imbalance,
			Episodes:         len(rep.Episodes),
			Preemptions:      rep.Counters["preemptions"],
			RecomputedTokens: rep.Counters["recomputed_tokens"],
			KVPeakBlocks:     int(snap.Gauges["kv_peak_blocks"]),
		}
		for k, v := range rep.SegmentNS {
			row.SegmentsMs[k] = float64(v) / 1e6
		}
		return artifact{runtime: p.kind.String(), trace: tb.Bytes(), metrics: mb.Bytes(),
			serving: sb.Bytes(), row: row}, nil
	})
	if err != nil {
		return err
	}
	if cfg.TraceDir != "" {
		if err := os.MkdirAll(cfg.TraceDir, 0o755); err != nil {
			return err
		}
		for _, a := range arts {
			slug := runtimeSlug(a.runtime)
			names := map[string][]byte{
				"serving_" + slug + ".trace.json":   a.trace,
				"serving_" + slug + ".metrics.json": a.metrics,
				"serving_" + slug + ".serving.json": a.serving,
			}
			for _, name := range []string{
				"serving_" + slug + ".trace.json",
				"serving_" + slug + ".metrics.json",
				"serving_" + slug + ".serving.json",
			} {
				if err := os.WriteFile(filepath.Join(cfg.TraceDir, name), names[name], 0o644); err != nil {
					return err
				}
			}
			fmt.Fprintf(w, "traced: serving %.1fx pool %d under %s -> %s\n",
				pt.frac, pt.pool, a.runtime,
				filepath.Join(cfg.TraceDir, "serving_"+slug+".{trace,metrics,serving}.json"))
		}
	}
	if cfg.JSONDir == "" {
		return nil
	}
	if err := os.MkdirAll(cfg.JSONDir, 0o755); err != nil {
		return err
	}
	agg := servingAnalysis{
		Batches:  cfg.Batches,
		Prompt:   s.prompt,
		Gen:      s.gen,
		Seed:     cfg.Seed,
		RateFrac: pt.frac,
		Pool:     pt.pool,
	}
	for _, a := range arts {
		agg.Rows = append(agg.Rows, a.row)
	}
	buf, err := json.MarshalIndent(agg, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	return os.WriteFile(filepath.Join(cfg.JSONDir, ServingAnalysisJSONName), buf, 0o644)
}
