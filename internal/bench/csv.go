package bench

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"liger/internal/core"
)

// writePanelCSV dumps one panel's sweep as machine-readable rows when
// RunConfig.CSVDir is set: exp, panel, rate, runtime, latencies (µs)
// and throughput. Plotting scripts regenerate the paper's line/bar
// charts from these files.
func writePanelCSV(cfg RunConfig, expID string, p panel, rates []float64, results map[core.RuntimeKind][]point) error {
	if cfg.CSVDir == "" {
		return nil
	}
	if err := os.MkdirAll(cfg.CSVDir, 0o755); err != nil {
		return err
	}
	name := fmt.Sprintf("%s_%s.csv", expID, sanitize(p.label))
	f, err := os.Create(filepath.Join(cfg.CSVDir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"experiment", "panel", "rate_batches_per_s", "runtime",
		"avg_latency_us", "p50_us", "p95_us", "p99_us", "throughput_batches_per_s"}); err != nil {
		return err
	}
	for _, kind := range sortedKinds(results) {
		for i, rate := range rates {
			pt := results[kind][i]
			rec := []string{
				expID,
				p.label,
				strconv.FormatFloat(rate, 'f', 3, 64),
				kind.String(),
				strconv.FormatInt(pt.res.AvgLatency.Microseconds(), 10),
				strconv.FormatInt(pt.res.P50.Microseconds(), 10),
				strconv.FormatInt(pt.res.P95.Microseconds(), 10),
				strconv.FormatInt(pt.res.P99.Microseconds(), 10),
				strconv.FormatFloat(pt.res.ThroughputBatches(), 'f', 3, 64),
			}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
	}
	w.Flush()
	return w.Error()
}

// sanitize turns a panel label into a file-name fragment.
func sanitize(label string) string {
	out := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		case r == '-' || r == '.':
			return r
		default:
			return '_'
		}
	}, label)
	return strings.Trim(out, "_")
}
