package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"liger/internal/core"
	"liger/internal/plot"
)

// writePanelSVG renders one panel as the paper presents it — a latency
// chart and a throughput chart over arrival rate, with the red line at
// Liger's measured saturation — when RunConfig.PlotDir is set.
func writePanelSVG(cfg RunConfig, expID string, p panel, rates []float64, results map[core.RuntimeKind][]point) error {
	if cfg.PlotDir == "" {
		return nil
	}
	if err := os.MkdirAll(cfg.PlotDir, 0o755); err != nil {
		return err
	}
	ligerSat := saturatedThroughput(results[core.KindLiger])

	latency := plot.Chart{
		Title:  p.label + " — average latency",
		XLabel: "arrival rate (batches/s)",
		YLabel: "latency (ms)",
		VLineX: ligerSat,
	}
	throughput := plot.Chart{
		Title:  p.label + " — throughput",
		XLabel: "arrival rate (batches/s)",
		YLabel: "throughput (batches/s)",
		VLineX: ligerSat,
	}
	for _, kind := range sortedKinds(results) {
		var lat, thr plot.Series
		lat.Name, thr.Name = kind.String(), kind.String()
		for i, rate := range rates {
			pt := results[kind][i]
			lat.X = append(lat.X, rate)
			lat.Y = append(lat.Y, float64(pt.res.AvgLatency)/float64(time.Millisecond))
			thr.X = append(thr.X, rate)
			thr.Y = append(thr.Y, pt.res.ThroughputBatches())
		}
		latency.Series = append(latency.Series, lat)
		throughput.Series = append(throughput.Series, thr)
	}
	for suffix, chart := range map[string]plot.Chart{"latency": latency, "throughput": throughput} {
		name := fmt.Sprintf("%s_%s_%s.svg", expID, sanitize(p.label), suffix)
		f, err := os.Create(filepath.Join(cfg.PlotDir, name))
		if err != nil {
			return err
		}
		if err := chart.WriteSVG(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
