package bench

import (
	"testing"

	"liger/internal/core"
)

// BenchmarkFig10Point measures one (panel, rate, runtime) simulation —
// the unit of work the parallel sweep executor fans out. Serial hot-path
// work (event pooling, admission ordering, rate recompute) shows up
// directly here.
func BenchmarkFig10Point(b *testing.B) {
	p := fig10Panels(true)[0]
	cfg := RunConfig{Batches: 40, Quick: true, Seed: 1}
	rate := intraCapacity(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runPoint(p, rate, core.KindLiger, cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}
