package bench

import (
	"fmt"
	"io"

	"liger/internal/core"
	"liger/internal/hw"
	"liger/internal/model"
)

// RunFig12 reproduces Fig. 12: strong scaling of serving OPT-30B on 1,
// 2 and 4 A100 GPUs. Latency and throughput improve with device count;
// Liger beats Intra-Op on throughput and Inter-Op on latency, with the
// 2-GPU gain less pronounced because the communication ratio is lower.
func RunFig12(cfg RunConfig, w io.Writer) error {
	kinds := core.Kinds()
	devCounts := []int{1, 2, 4}
	if cfg.Quick {
		devCounts = []int{1, 4}
	}
	var sweeps []panelSweep
	for _, devs := range devCounts {
		node := hw.A100Node()
		if devs != node.NumGPUs {
			node = node.WithGPUs(devs)
		}
		useKinds := kinds
		if devs == 1 {
			// With one device every runtime degenerates to sequential
			// single-GPU execution; Inter-Th is meaningless.
			useKinds = []core.RuntimeKind{core.KindLiger, core.KindIntraOp, core.KindInterOp}
		}
		p := panel{
			label:   fmt.Sprintf("OPT-30B on %d x A100, batch 2", devs),
			nodeKey: "a100",
			node:    node,
			spec:    model.OPT30B(),
			batch:   2,
			phase:   model.Context,
		}
		cap := intraCapacity(p)
		var rates []float64
		for _, f := range rateFractions(cfg.Quick) {
			rates = append(rates, f*cap)
		}
		sweeps = append(sweeps, panelSweep{p: p, rates: rates, kinds: useKinds})
	}
	maps, err := runSweeps(sweeps, cfg)
	if err != nil {
		return err
	}
	for i, sw := range sweeps {
		results := maps[i]
		if err := printPanel(w, sw.p, sw.rates, results); err != nil {
			return err
		}
		if err := writePanelCSV(cfg, "fig12", sw.p, sw.rates, results); err != nil {
			return err
		}
		if err := writePanelSVG(cfg, "fig12", sw.p, sw.rates, results); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "paper: Liger improves latency and throughput as GPUs increase; the 2-GPU effect is less pronounced (lower communication ratio)")
	return nil
}
