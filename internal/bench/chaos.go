package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"liger/internal/core"
	"liger/internal/faults"
	"liger/internal/hw"
	"liger/internal/liger"
	"liger/internal/model"
	"liger/internal/runner"
	"liger/internal/serve"
)

// chaosSetup fixes the chaos experiment's shared knobs so the
// experiment driver and its determinism test agree on them.
type chaosSetup struct {
	p         panel
	rate      float64
	profile   faults.Profile
	pol       serve.Policy
	scenarios []faults.Scenario
	kinds     []core.RuntimeKind
}

func newChaosSetup(cfg RunConfig) chaosSetup {
	p := panel{nodeKey: "a100", node: hw.A100Node(), spec: model.OPT30B(), batch: 2, phase: model.Context}
	rate := 0.85 * intraCapacity(p)
	// solo is the analytic duration of one batch on an idle node — the
	// natural unit for deadlines, backoffs, and the collective watchdog.
	solo := time.Duration(float64(time.Second) / intraCapacity(p))
	horizon := time.Duration(float64(cfg.Batches) / rate * float64(time.Second))
	scenarios := append([]faults.Scenario{{
		Name:        "none",
		Description: "fault-free baseline",
		Build:       func(faults.Profile) faults.Schedule { return faults.Schedule{} },
	}}, faults.Scenarios()...)
	return chaosSetup{
		p:    p,
		rate: rate,
		profile: faults.Profile{
			NumDevices: p.node.NumGPUs,
			Horizon:    horizon,
			// Several times the solo batch duration: merely-slow collectives
			// never trip the watchdog, hung ones always do.
			CollTimeout: 4 * solo,
			Seed:        cfg.Seed,
		},
		pol: serve.Policy{
			Deadline:   10 * solo,
			MaxRetries: 3,
			Backoff:    solo / 2,
			BackoffCap: 4 * solo,
		},
		scenarios: scenarios,
		kinds:     []core.RuntimeKind{core.KindLiger, core.KindIntraOp, core.KindInterOp},
	}
}

// runChaosPoint serves one (scenario, runtime) point under the chaos
// policy. The Liger runtime serves with degradation-aware re-planning
// enabled — the subsystem under test.
func runChaosPoint(s chaosSetup, sc faults.Scenario, kind core.RuntimeKind, cfg RunConfig) (serve.Result, error) {
	opts := core.Options{Node: s.p.node, Model: s.p.spec, Runtime: kind, Shards: cfg.Shards}
	if kind == core.KindLiger {
		lc := liger.DefaultConfig(s.p.node.Name)
		lc.DegradationAware = true
		opts.Liger = lc
		opts.LigerSet = true
	}
	sched := sc.Build(s.profile)
	if !sched.Empty() {
		opts.Faults = &sched
	}
	eng, err := core.NewEngine(opts)
	if err != nil {
		return serve.Result{}, err
	}
	trace, err := genTrace(s.p, s.rate, cfg)
	if err != nil {
		return serve.Result{}, err
	}
	return eng.ServePolicy(trace, s.pol)
}

// RunChaos is the robustness extension's headline experiment: every
// runtime serves the same trace under each deterministic fault scenario
// with a deadline/retry policy, and we report goodput (within-deadline
// throughput), tail latency, retries, outright failures, and SLO-miss
// rate. Liger serves with degradation-aware re-planning on, so the
// scheduler backs off interleaving while a device is degraded.
func RunChaos(cfg RunConfig, w io.Writer) error {
	s := newChaosSetup(cfg)
	results, err := runner.Map(cfg.Parallel, len(s.scenarios)*len(s.kinds), func(i int) (serve.Result, error) {
		return runChaosPoint(s, s.scenarios[i/len(s.kinds)], s.kinds[i%len(s.kinds)], cfg)
	})
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scenario\truntime\tgoodput\tp99 lat\tretries\tfailed\tSLO-miss")
	for si, sc := range s.scenarios {
		for ki, kind := range s.kinds {
			res := results[si*len(s.kinds)+ki]
			fmt.Fprintf(tw, "%s\t%s\t%.2f\t%s\t%d\t%d\t%.1f%%\n",
				sc.Name, kind, res.PolicyGoodput(), fmtDur(res.P99),
				res.Retries, res.Failed, 100*res.SLOMissRate())
		}
	}
	fmt.Fprintf(tw, "\npolicy: deadline %s, %d retries, backoff %s (cap %s); collective watchdog %s; seed %d\n",
		fmtDur(s.pol.Deadline), s.pol.MaxRetries, fmtDur(s.pol.Backoff), fmtDur(s.pol.BackoffCap),
		fmtDur(s.profile.CollTimeout), cfg.Seed)
	fmt.Fprintln(tw, "extension: stall/drop scenarios surface as aborted collectives that the serving layer retries; degradation-aware re-planning sheds interleaving only while a device is effectively unusable and rides out uniform slowdowns by design")
	return tw.Flush()
}
