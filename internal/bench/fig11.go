package bench

import (
	"fmt"
	"io"

	"liger/internal/core"
	"liger/internal/hw"
	"liger/internal/model"
)

// RunFig11 reproduces Fig. 11: the generative incremental-sampling
// phase (§4.3). One sampling iteration per batch with a KV cache at
// sequence length 16 and batch size 32, across the four model/node
// configurations. The paper measures throughput gains of up to 1.08x,
// 1.29x, 1.23x and 1.13x over Intra-Op — weaker than the general tasks
// because decode is memory-bound and relatively lighter on
// communication.
func RunFig11(cfg RunConfig, w io.Writer) error {
	columns := []struct {
		nodeKey string
		node    hw.Node
		spec    model.Spec
	}{
		{"v100", hw.V100Node(), model.OPT30B()},
		{"a100", hw.A100Node(), model.OPT30B()},
		{"a100", hw.A100Node(), model.OPT66B()},
		{"a100", hw.A100Node(), model.GLM130B()},
	}
	if cfg.Quick {
		columns = columns[:1]
	}
	kinds := core.Kinds()
	var sweeps []panelSweep
	for _, c := range columns {
		p := panel{
			label:   fmt.Sprintf("%s on %s, decode batch 32 ctx 16", c.spec.Name, c.node.Name),
			nodeKey: c.nodeKey,
			node:    c.node,
			spec:    c.spec,
			batch:   32,
			phase:   model.Decode,
			ctxLen:  16,
		}
		cap := intraCapacity(p)
		var rates []float64
		for _, f := range rateFractions(cfg.Quick) {
			rates = append(rates, f*cap)
		}
		sweeps = append(sweeps, panelSweep{p: p, rates: rates, kinds: kinds})
	}
	maps, err := runSweeps(sweeps, cfg)
	if err != nil {
		return err
	}
	for i, sw := range sweeps {
		results := maps[i]
		if err := printPanel(w, sw.p, sw.rates, results); err != nil {
			return err
		}
		if err := writePanelCSV(cfg, "fig11", sw.p, sw.rates, results); err != nil {
			return err
		}
		if err := writePanelSVG(cfg, "fig11", sw.p, sw.rates, results); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "paper: throughput up to 1.08x/1.29x/1.23x/1.13x vs Intra-Op; better latency than Inter-Op/Inter-Th pre-saturation")
	return nil
}
