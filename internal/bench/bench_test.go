package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"liger/internal/core"
	"liger/internal/hw"
	"liger/internal/model"
)

func quickCfg() RunConfig { return RunConfig{Batches: 40, Quick: true, Seed: 1} }

func TestRegistryCompleteAndUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Experiments() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
	}
	// Every paper table/figure with evaluation content must be present.
	for _, id := range []string{"table1", "fig3", "fig4", "fig6", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"contention", "channels", "splitstrategy", "robustness", "adaptive"} {
		if !seen[id] {
			t.Fatalf("missing experiment %q", id)
		}
	}
	if _, err := ByID("table1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// TestEveryExperimentRuns executes each experiment at quick fidelity —
// the whole evaluation pipeline must at least produce output without
// error.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are heavy; skipped with -short")
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(quickCfg(), &buf); err != nil {
				t.Fatal(err)
			}
			if buf.Len() == 0 {
				t.Fatal("experiment produced no output")
			}
		})
	}
}

func TestTable1Content(t *testing.T) {
	var buf bytes.Buffer
	if err := RunTable1(quickCfg(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"OPT-30B", "OPT-66B", "GLM-130B", "7168", "9216", "12288", "FP16"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig03Shapes(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFig03(quickCfg(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "NVLink") || !strings.Contains(out, "PCIe") {
		t.Fatalf("fig3 output missing testbeds:\n%s", out)
	}
}

func TestIntraCapacityPositive(t *testing.T) {
	p := panel{node: hw.V100Node(), spec: model.OPT30B(), batch: 2, phase: model.Context}
	cap := intraCapacity(p)
	if cap <= 0 || cap > 1000 {
		t.Fatalf("implausible capacity %v", cap)
	}
	// Larger batches take longer per batch: capacity must fall.
	p8 := p
	p8.batch = 8
	if c8 := intraCapacity(p8); c8 >= cap {
		t.Fatalf("batch-8 capacity %v not below batch-2 %v", c8, cap)
	}
}

func TestRateFractionsSpanSaturation(t *testing.T) {
	for _, quick := range []bool{true, false} {
		fr := rateFractions(quick)
		if fr[0] >= 1 {
			t.Fatal("sweep starts at or above intra capacity")
		}
		if fr[len(fr)-1] <= 1 {
			t.Fatal("sweep never exceeds intra capacity")
		}
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	cfg := quickCfg()
	cfg.CSVDir = dir
	p := panel{label: "tiny on v100, batch 2", nodeKey: "v100", node: hw.V100Node(),
		spec: model.Tiny(), batch: 2, phase: model.Context}
	rates := []float64{100, 200}
	results, err := runPanel(p, rates, []core.RuntimeKind{core.KindLiger, core.KindIntraOp}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := writePanelCSV(cfg, "figX", p, rates, results); err != nil {
		t.Fatal(err)
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("%d csv files", len(files))
	}
	data, err := os.ReadFile(filepath.Join(dir, files[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	// header + 2 runtimes x 2 rates.
	if len(lines) != 5 {
		t.Fatalf("%d csv lines:\n%s", len(lines), data)
	}
	if !strings.HasPrefix(lines[0], "experiment,panel,rate") {
		t.Fatalf("bad header %q", lines[0])
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("OPT-30B on v100, batch 2"); got != "OPT-30B_on_v100__batch_2" {
		t.Fatalf("sanitize = %q", got)
	}
}

func TestRunPointProducesResult(t *testing.T) {
	p := panel{nodeKey: "v100", node: hw.V100Node(), spec: model.Tiny(), batch: 2, phase: model.Context}
	res, err := runPoint(p, 500, core.KindLiger, quickCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != quickCfg().Batches {
		t.Fatalf("completed %d", res.Completed)
	}
}

func TestFig06ShowsOverlapOnlyForLiger(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFig06(quickCfg(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Three timeline sections, one per runtime.
	for _, want := range []string{"Intra-Op", "Inter-Op", "Liger", "gpu0 comp", "gpu0 comm"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig6 output missing %q", want)
		}
	}
	// The Intra-Op section must report zero overlap and Liger nonzero.
	intraIdx := strings.Index(out, "Intra-Op")
	ligerIdx := strings.Index(out, "Liger (device")
	intraSection := out[intraIdx : strings.Index(out[intraIdx:], "Inter-Op")+intraIdx]
	ligerSection := out[ligerIdx:]
	if !strings.Contains(intraSection, "overlap on device 0: 0s") {
		t.Fatalf("intra-op section reports overlap:\n%s", intraSection)
	}
	if strings.Contains(ligerSection, "overlap on device 0: 0s") {
		t.Fatalf("liger section reports no overlap:\n%s", ligerSection)
	}
}
