package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"liger/internal/gpusim"
	"liger/internal/hw"
	"liger/internal/model"
	"liger/internal/nccl"
	"liger/internal/parallel"
	"liger/internal/stats"
)

// RunFig04 reproduces Fig. 4: the widely-varied kernel durations that
// motivate runtime decomposition. Panel (a): normalized durations of
// the compute kernels of one layer across model sizes (8B–175B) on the
// V100 — larger models concentrate time in a few long kernels. Panel
// (b): the same kernels across input sizes for OPT-30B — durations vary
// with the input.
func RunFig04(cfg RunConfig, w io.Writer) error {
	node := hw.V100Node()
	comp := parallel.NewCompiler(node, nccl.Config{ReducedChannels: true})

	layerComputeDurations := func(spec model.Spec, wk model.Workload) ([]string, []time.Duration, error) {
		ks, err := comp.IntraOp(spec.WithLayers(1), node.NumGPUs, wk)
		if err != nil {
			return nil, nil, err
		}
		var names []string
		var ds []time.Duration
		for _, k := range ks {
			if k.Class != gpusim.Compute {
				continue
			}
			names = append(names, k.Name)
			ds = append(ds, k.Duration)
		}
		return names, ds, nil
	}

	fmt.Fprintln(w, "(a) normalized kernel durations per layer across model sizes (V100, batch 2, seq 72)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	wk := model.Workload{Batch: 2, SeqLen: meanSeq, Phase: model.Context}
	var header bool
	for _, spec := range []model.Spec{model.GPT8B(), model.OPT30B(), model.OPT66B(), model.GLM130B(), model.GPT175B()} {
		names, ds, err := layerComputeDurations(spec, wk)
		if err != nil {
			return err
		}
		if !header {
			fmt.Fprint(tw, "model\t")
			for _, n := range names {
				fmt.Fprintf(tw, "%s\t", trimLayerPrefix(n))
			}
			fmt.Fprintln(tw, "CoV")
			header = true
		}
		norm := stats.Normalize(ds)
		fmt.Fprintf(tw, "%s\t", spec.Name)
		for _, v := range norm {
			fmt.Fprintf(tw, "%.2f\t", v)
		}
		fmt.Fprintf(tw, "%.2f\n", stats.CoefficientOfVariation(ds))
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintln(w, "\n(b) kernel durations across input sizes (OPT-30B, V100)")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "batch x seq\tqkv\tattn\tattn_out\tfc1\tfc2")
	for _, in := range []struct{ b, s int }{{2, 16}, {2, 64}, {4, 64}, {8, 64}, {8, 128}} {
		names, ds, err := layerComputeDurations(model.OPT30B(), model.Workload{Batch: in.b, SeqLen: in.s, Phase: model.Context})
		if err != nil {
			return err
		}
		byName := map[string]time.Duration{}
		for i, n := range names {
			byName[trimLayerPrefix(n)] = ds[i]
		}
		fmt.Fprintf(tw, "%dx%d\t%v\t%v\t%v\t%v\t%v\n", in.b, in.s,
			byName["qkv"].Round(time.Microsecond), byName["attn"].Round(time.Microsecond),
			byName["attn_out"].Round(time.Microsecond), byName["fc1"].Round(time.Microsecond),
			byName["fc2"].Round(time.Microsecond))
	}
	return tw.Flush()
}

// trimLayerPrefix strips the "l0." layer prefix from kernel names.
func trimLayerPrefix(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			return name[i+1:]
		}
	}
	return name
}
