package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"liger/internal/core"
	"liger/internal/faults"
	"liger/internal/hw"
	"liger/internal/model"
	"liger/internal/runner"
	"liger/internal/serve"
)

// RunStraggler is a failure-injection extension: one GPU of the node
// (RunConfig.StragglerDevice) runs at reduced speed (thermal
// throttling, a flaky link) and we measure how each runtime degrades.
// Tensor-parallel execution (Intra-Op, Liger) is gated by the slowest
// rank at every collective; the pipeline only slows in proportion to
// the straggler's stage. The slowdown is expressed as a degenerate
// fault schedule — a single persistent Slowdown event — so the
// straggler is just the static corner of the chaos experiment.
func RunStraggler(cfg RunConfig, w io.Writer) error {
	p := panel{nodeKey: "a100", node: hw.A100Node(), spec: model.OPT30B(), batch: 2, phase: model.Context}
	dev := cfg.StragglerDevice
	if dev < 0 || dev >= p.node.NumGPUs {
		return fmt.Errorf("bench: straggler device %d outside node devices [0, %d)", dev, p.node.NumGPUs)
	}
	rate := 0.85 * intraCapacity(p)
	kinds := []core.RuntimeKind{core.KindLiger, core.KindIntraOp, core.KindInterOp}
	speeds := []float64{1.0, 0.8, 0.6}

	results, err := runner.Map(cfg.Parallel, len(speeds)*len(kinds), func(i int) (serve.Result, error) {
		speed, kind := speeds[i/len(kinds)], kinds[i%len(kinds)]
		opts := core.Options{Node: p.node, Model: p.spec, Runtime: kind}
		if speed < 1 {
			sched := faults.Static(dev, speed)
			opts.Faults = &sched
		}
		eng, err := core.NewEngine(opts)
		if err != nil {
			return serve.Result{}, err
		}
		trace, err := genTrace(p, rate, cfg)
		if err != nil {
			return serve.Result{}, err
		}
		return eng.Serve(trace)
	})
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "gpu%d speed\truntime\tavg lat\tp99 lat\tthroughput\n", dev)
	for si, speed := range speeds {
		for ki, kind := range kinds {
			res := results[si*len(kinds)+ki]
			fmt.Fprintf(tw, "%.0f%%\t%s\t%s\t%s\t%.2f\n",
				100*speed, kind, fmtDur(res.AvgLatency), fmtDur(res.P99), res.ThroughputBatches())
		}
	}
	fmt.Fprintln(tw, "\nextension: a straggler GPU gates every collective; interleaving other batches' work into the induced idle time softens the hit")
	return tw.Flush()
}
