package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"liger/internal/core"
	"liger/internal/hw"
	"liger/internal/model"
	"liger/internal/runner"
	"liger/internal/serve"
)

// RunStraggler is a failure-injection extension: one GPU of the node
// runs at reduced speed (thermal throttling, a flaky link) and we
// measure how each runtime degrades. Tensor-parallel execution
// (Intra-Op, Liger) is gated by the slowest rank at every collective;
// the pipeline only slows in proportion to the straggler's stage.
func RunStraggler(cfg RunConfig, w io.Writer) error {
	p := panel{nodeKey: "a100", node: hw.A100Node(), spec: model.OPT30B(), batch: 2, phase: model.Context}
	rate := 0.85 * intraCapacity(p)
	kinds := []core.RuntimeKind{core.KindLiger, core.KindIntraOp, core.KindInterOp}
	speeds := []float64{1.0, 0.8, 0.6}

	results, err := runner.Map(cfg.Parallel, len(speeds)*len(kinds), func(i int) (serve.Result, error) {
		speed, kind := speeds[i/len(kinds)], kinds[i%len(kinds)]
		eng, err := core.NewEngine(core.Options{Node: p.node, Model: p.spec, Runtime: kind})
		if err != nil {
			return serve.Result{}, err
		}
		if speed < 1 {
			eng.SimNode().Device(2).SetSpeed(speed)
		}
		trace, err := genTrace(p, rate, cfg)
		if err != nil {
			return serve.Result{}, err
		}
		return eng.Serve(trace)
	})
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "gpu2 speed\truntime\tavg lat\tp99 lat\tthroughput")
	for si, speed := range speeds {
		for ki, kind := range kinds {
			res := results[si*len(kinds)+ki]
			fmt.Fprintf(tw, "%.0f%%\t%s\t%s\t%s\t%.2f\n",
				100*speed, kind, fmtDur(res.AvgLatency), fmtDur(res.P99), res.ThroughputBatches())
		}
	}
	fmt.Fprintln(tw, "\nextension: a straggler GPU gates every collective; interleaving other batches' work into the induced idle time softens the hit")
	return tw.Flush()
}
