package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"liger/internal/core"
	"liger/internal/hw"
	"liger/internal/liger"
	"liger/internal/model"
	"liger/internal/parallel"
	"liger/internal/runner"
	"liger/internal/serve"
)

// The experiments in this file extend the paper's evaluation: runtime
// consequences of the Fig. 9 decomposition choice, behaviour under
// non-constant arrival processes (the paper uses a constant rate and
// notes the choice), and the adaptive contention factor extension.

// RunSplitStrategy ablates the runtime GEMM decomposition strategy:
// the scheduler serves the same trace with vertical (Liger's choice)
// and horizontal decomposition. Horizontal pieces of the already-skinny
// activation are so inefficient that overlapping them costs more than
// they fill.
func RunSplitStrategy(cfg RunConfig, w io.Writer) error {
	p := panel{nodeKey: "a100", node: hw.A100Node(), spec: model.OPT30B(), batch: 2, phase: model.Context}
	rate := 1.3 * intraCapacity(p)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "GEMM decomposition\tavg lat\tp99 lat\tthroughput")
	for _, strat := range []struct {
		name string
		s    parallel.SplitStrategy
	}{
		{"vertical (Fig. 9 choice)", parallel.SplitVertical},
		{"horizontal", parallel.SplitHorizontal},
	} {
		res, err := servePanelWithCompiler(p, rate, cfg, parallel.WithGEMMSplit(strat.s))
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.2f\n", strat.name, fmtDur(res.AvgLatency), fmtDur(res.P99), res.ThroughputBatches())
	}
	fmt.Fprintln(tw, "\npaper (Fig. 9): dividing the skinny activation horizontally loses data locality; vertical division wins")
	return tw.Flush()
}

// servePanelWithCompiler serves a panel with a custom-compiled Liger
// runtime (bypassing core so compiler options can be injected).
func servePanelWithCompiler(p panel, rate float64, cfg RunConfig, opts ...parallel.Option) (serve.Result, error) {
	eng, err := core.NewEngine(core.Options{Node: p.node, Model: p.spec, Runtime: core.KindLiger,
		CompilerOptions: opts})
	if err != nil {
		return serve.Result{}, err
	}
	trace, err := genTrace(p, rate, cfg)
	if err != nil {
		return serve.Result{}, err
	}
	return eng.Serve(trace)
}

// RunRobustness compares the runtimes under the three arrival processes
// at the same mean rate. The paper uses a constant rate and notes that
// its advantage window would widen under fluctuating arrivals; bursty
// arrivals reward runtimes that can absorb several batches at once.
func RunRobustness(cfg RunConfig, w io.Writer) error {
	p := panel{nodeKey: "a100", node: hw.A100Node(), spec: model.OPT30B(), batch: 2, phase: model.Context}
	rate := 0.95 * intraCapacity(p)
	kinds := []core.RuntimeKind{core.KindLiger, core.KindIntraOp, core.KindInterOp}
	procs := []serve.ArrivalProcess{serve.ConstantRate, serve.Poisson, serve.Bursty}
	results, err := runner.Map(cfg.Parallel, len(procs)*len(kinds), func(i int) (serve.Result, error) {
		proc, kind := procs[i/len(kinds)], kinds[i%len(kinds)]
		eng, err := core.NewEngine(core.Options{Node: p.node, Model: p.spec, Runtime: kind})
		if err != nil {
			return serve.Result{}, err
		}
		trace, err := serve.Generate(serve.TraceConfig{
			Batches: cfg.Batches, BatchSize: p.batch, RatePerSec: rate,
			MinSeq: 16, MaxSeq: 128, Process: proc, Seed: cfg.Seed,
		})
		if err != nil {
			return serve.Result{}, err
		}
		return eng.Serve(trace)
	})
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "arrival process\truntime\tavg lat\tp99 lat\tthroughput")
	for pi, proc := range procs {
		for ki, kind := range kinds {
			res := results[pi*len(kinds)+ki]
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%.2f\n",
				proc, kind, fmtDur(res.AvgLatency), fmtDur(res.P99), res.ThroughputBatches())
		}
	}
	return tw.Flush()
}

// RunAdaptive compares the profiled contention factor against the
// online adaptive extension: the adaptive scheduler should converge to
// a similar factor without offline profiling.
func RunAdaptive(cfg RunConfig, w io.Writer) error {
	nodeKeys := []string{"v100", "a100"}
	modes := []bool{false, true}
	type adaptiveCell struct {
		mode     string
		res      serve.Result
		factor   float64
		overruns int
	}
	results, err := runner.Map(cfg.Parallel, len(nodeKeys)*len(modes), func(i int) (adaptiveCell, error) {
		nodeKey, adaptive := nodeKeys[i/len(modes)], modes[i%len(modes)]
		node, err := hw.Preset(nodeKey)
		if err != nil {
			return adaptiveCell{}, err
		}
		p := panel{nodeKey: nodeKey, node: node, spec: model.OPT30B(), batch: 2, phase: model.Context}
		rate := 1.2 * intraCapacity(p)
		lcfg := liger.DefaultConfig(nodeKey)
		lcfg.AdaptiveContention = adaptive
		eng, err := core.NewEngine(core.Options{Node: node, Model: p.spec, Runtime: core.KindLiger,
			Liger: lcfg, LigerSet: true})
		if err != nil {
			return adaptiveCell{}, err
		}
		trace, err := genTrace(p, rate, cfg)
		if err != nil {
			return adaptiveCell{}, err
		}
		res, err := eng.Serve(trace)
		if err != nil {
			return adaptiveCell{}, err
		}
		cell := adaptiveCell{mode: fmt.Sprintf("profiled %.2f", lcfg.ContentionFactor), res: res}
		if adaptive {
			cell.mode = "adaptive"
		}
		if sg, ok := eng.Runtime().(interface{ Scheduler() *liger.Scheduler }); ok {
			st := sg.Scheduler().Stats()
			cell.factor = st.AdaptedFactor
			cell.overruns = st.SecondaryOverruns
		}
		return cell, nil
	})
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "node\tmode\tavg lat\tthroughput\tfinal factor\toverruns")
	for ni, nodeKey := range nodeKeys {
		for mi := range modes {
			c := results[ni*len(modes)+mi]
			fmt.Fprintf(tw, "%s\t%s\t%s\t%.2f\t%.3f\t%d\n",
				nodeKey, c.mode, fmtDur(c.res.AvgLatency), c.res.ThroughputBatches(), c.factor, c.overruns)
		}
	}
	return tw.Flush()
}
