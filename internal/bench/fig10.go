package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"liger/internal/core"
	"liger/internal/hw"
	"liger/internal/model"
)

// fig10Panels returns the Fig. 10 grid: four model/node columns by
// three batch-size rows (the paper's (a)–(l)).
func fig10Panels(quick bool) []panel {
	columns := []struct {
		nodeKey string
		node    hw.Node
		spec    model.Spec
	}{
		{"v100", hw.V100Node(), model.OPT30B()},
		{"a100", hw.A100Node(), model.OPT30B()},
		{"a100", hw.A100Node(), model.OPT66B()},
		{"a100", hw.A100Node(), model.GLM130B()},
	}
	batches := []int{2, 4, 8}
	if quick {
		columns = columns[:2]
		batches = []int{2}
	}
	var out []panel
	for _, b := range batches {
		for _, c := range columns {
			out = append(out, panel{
				label:   fmt.Sprintf("%s on %s, batch %d", c.spec.Name, c.node.Name, b),
				nodeKey: c.nodeKey,
				node:    c.node,
				spec:    c.spec,
				batch:   b,
				phase:   model.Context,
			})
		}
	}
	return out
}

// RunFig10 reproduces Fig. 10: average latency and throughput as the
// batch arrival rate increases, for randomly generated traces with
// sequence lengths 16–128, across all four runtimes and the full
// model/node/batch grid. Arrival rates are expressed relative to the
// intra-operator runtime's analytic capacity so every panel sweeps its
// interesting region. A '*' marks rates beyond Liger's measured
// saturated throughput (the paper's red line).
func RunFig10(cfg RunConfig, w io.Writer) error {
	kinds := core.Kinds()
	var sweeps []panelSweep
	for _, p := range fig10Panels(cfg.Quick) {
		cap := intraCapacity(p)
		var rates []float64
		for _, f := range rateFractions(cfg.Quick) {
			rates = append(rates, f*cap)
		}
		sweeps = append(sweeps, panelSweep{p: p, rates: rates, kinds: kinds})
	}
	// Every point of every panel fans out together; printing happens
	// after collection, so output order is independent of worker count.
	maps, err := runSweeps(sweeps, cfg)
	if err != nil {
		return err
	}
	for i, sw := range sweeps {
		results := maps[i]
		if err := printPanel(w, sw.p, sw.rates, results); err != nil {
			return err
		}
		if err := writePanelCSV(cfg, "fig10", sw.p, sw.rates, results); err != nil {
			return err
		}
		if err := writePanelSVG(cfg, "fig10", sw.p, sw.rates, results); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "paper: throughput +1.15x avg (V100) and +1.52x avg (A100) vs Intra-Op;")
	fmt.Fprintln(w, "       latency -45.4%/-59.1% (V100) and -35.8%/-42.2% (A100) vs Inter-Op/Inter-Th before the red line")
	return nil
}

// printPanel renders one Fig. 10/11 sub-plot as a table plus the
// paper-style summary ratios.
func printPanel(w io.Writer, p panel, rates []float64, results map[core.RuntimeKind][]point) error {
	fmt.Fprintf(w, "\n== %s ==\n", p.label)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "rate (batch/s)\t")
	kinds := sortedKinds(results)
	for _, k := range kinds {
		fmt.Fprintf(tw, "%s lat\t%s thr\t", k, k)
	}
	fmt.Fprintln(tw)

	ligerSat := saturatedThroughput(results[core.KindLiger])
	for i, rate := range rates {
		marker := ""
		if rate > ligerSat {
			marker = "*"
		}
		fmt.Fprintf(tw, "%.2f%s\t", rate, marker)
		for _, k := range kinds {
			pt := results[k][i]
			fmt.Fprintf(tw, "%s\t%.2f\t", fmtDur(pt.res.AvgLatency), pt.res.ThroughputBatches())
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Paper-style summary: saturated-throughput ratio vs Intra-Op and
	// average latency reduction vs the pipeline baselines over the rates
	// before Liger's saturation.
	intraSat := saturatedThroughput(results[core.KindIntraOp])
	if intraSat > 0 {
		fmt.Fprintf(w, "Liger/Intra-Op saturated throughput: %.2fx\n", ligerSat/intraSat)
	}
	for _, base := range []core.RuntimeKind{core.KindInterOp, core.KindInterTh} {
		pts, ok := results[base]
		if !ok {
			continue
		}
		var sum float64
		var n int
		for i, rate := range rates {
			if rate > ligerSat {
				continue
			}
			lp := results[core.KindLiger][i]
			bp := pts[i]
			if bp.res.AvgLatency > 0 {
				sum += 1 - float64(lp.res.AvgLatency)/float64(bp.res.AvgLatency)
				n++
			}
		}
		if n > 0 {
			fmt.Fprintf(w, "Liger avg latency reduction vs %s (pre-red-line): %.1f%%\n", base, 100*sum/float64(n))
		}
	}
	return nil
}
