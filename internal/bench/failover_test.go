package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"liger/internal/core"
)

// TestFailoverOutputSerialParallelIdentical pins the failover sweep's
// determinism promise: table AND JSON artifact are byte-identical
// across invocations and across sweep-executor worker counts.
func TestFailoverOutputSerialParallelIdentical(t *testing.T) {
	dirSerial, dirPar := t.TempDir(), t.TempDir()
	cfg := RunConfig{Batches: 25, Quick: true, Seed: 5, Parallel: 0, JSONDir: dirSerial}
	var first, again, par bytes.Buffer
	if err := RunFailover(cfg, &first); err != nil {
		t.Fatal(err)
	}
	if err := RunFailover(cfg, &again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), again.Bytes()) {
		t.Fatal("two seeded failover runs differ")
	}
	cfg.Parallel = 4
	cfg.JSONDir = dirPar
	if err := RunFailover(cfg, &par); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), par.Bytes()) {
		t.Fatalf("failover output differs between -parallel 0 and -parallel 4:\n--- serial ---\n%s\n--- parallel ---\n%s",
			first.String(), par.String())
	}
	js1, err := os.ReadFile(filepath.Join(dirSerial, FailoverJSONName))
	if err != nil {
		t.Fatal(err)
	}
	js2, err := os.ReadFile(filepath.Join(dirPar, FailoverJSONName))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js1, js2) {
		t.Fatal("BENCH_failover.json differs between -parallel 0 and -parallel 4")
	}
	out := first.String()
	for _, want := range []string{"none", "dev0@", "Liger", "Intra-Op", "Inter-Op", "headline"} {
		if !strings.Contains(out, want) {
			t.Errorf("%q missing from the report:\n%s", want, out)
		}
	}
}

// TestFailoverLigerRetainsMoreGoodputThanIntraOp is the tentpole
// acceptance check: across a permanent device failure, the interleaved
// runtime must retain strictly more goodput than the intra-operator
// baseline — its pending work rides out the drain better and it
// restarts into interleaved rounds on the survivors.
func TestFailoverLigerRetainsMoreGoodputThanIntraOp(t *testing.T) {
	cfg := RunConfig{Batches: 40, Seed: 1}
	s := newFailoverSetup(cfg)
	retained := func(kind core.RuntimeKind) float64 {
		t.Helper()
		base, err := runFailoverPoint(s, failoverPoint{kind: kind, dev: -1}, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		failed, err := runFailoverPoint(s, failoverPoint{kind: kind, dev: 1, atFrac: 0.45}, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if failed.Failovers != 1 {
			t.Fatalf("%v: %d failovers, want 1", kind, failed.Failovers)
		}
		if failed.RecoveryTime <= 0 {
			t.Fatalf("%v: no time-to-recover reported", kind)
		}
		if base.PolicyGoodput() <= 0 {
			t.Fatalf("%v: baseline goodput %v", kind, base.PolicyGoodput())
		}
		return failed.PolicyGoodput() / base.PolicyGoodput()
	}
	lig := retained(core.KindLiger)
	intra := retained(core.KindIntraOp)
	if lig <= intra {
		t.Fatalf("Liger retained %.3f of its goodput, Intra-Op %.3f — want strictly more", lig, intra)
	}
}
