package bench

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"liger/internal/analyze"
	"liger/internal/metrics"
	"liger/internal/runner"
	"liger/internal/trace"
)

// writeFailoverObservability re-runs one fully traced failure point per
// runtime — device 0 failing at the sweep's first instant — and writes,
// into cfg.TraceDir, a Chrome trace (failover_<runtime>.trace.json), a
// metrics snapshot (failover_<runtime>.metrics.json) and a trace
// analysis (failover_<runtime>.analysis.json: critical path, idle-gap
// attribution, overlap efficiency) for each. The traced points are
// independent simulations, so they fan across the sweep executor;
// artifacts are rendered to memory per point and written in fixed kind
// order, so the files are byte-identical at any -parallel value.
func writeFailoverObservability(s failoverSetup, cfg RunConfig, w io.Writer) error {
	if cfg.TraceDir == "" {
		return nil
	}
	if err := os.MkdirAll(cfg.TraceDir, 0o755); err != nil {
		return err
	}
	type artifact struct {
		runtime                  string
		trace, metrics, analysis []byte
	}
	pts := make([]failoverPoint, len(s.kinds))
	for i, kind := range s.kinds {
		pts[i] = failoverPoint{kind: kind, dev: 0, atFrac: s.instants[0]}
	}
	arts, err := runner.Map(cfg.Parallel, len(pts), func(i int) (artifact, error) {
		rec := trace.NewRecorder()
		res, err := runFailoverPoint(s, pts[i], cfg, rec)
		if err != nil {
			return artifact{}, err
		}
		var tb, mb, ab bytes.Buffer
		if err := rec.WriteChromeTrace(&tb); err != nil {
			return artifact{}, err
		}
		if err := metrics.FromRun(res, rec).WriteJSON(&mb); err != nil {
			return artifact{}, err
		}
		if err := analyze.Analyze(rec, analyze.Options{}).WriteJSON(&ab); err != nil {
			return artifact{}, err
		}
		return artifact{runtime: res.Runtime, trace: tb.Bytes(), metrics: mb.Bytes(), analysis: ab.Bytes()}, nil
	})
	if err != nil {
		return err
	}
	for i, a := range arts {
		slug := runtimeSlug(a.runtime)
		traceName := "failover_" + slug + ".trace.json"
		metricsName := "failover_" + slug + ".metrics.json"
		analysisName := "failover_" + slug + ".analysis.json"
		if err := os.WriteFile(filepath.Join(cfg.TraceDir, traceName), a.trace, 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(cfg.TraceDir, metricsName), a.metrics, 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(cfg.TraceDir, analysisName), a.analysis, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "traced: dev0@%.0f%% under %s -> %s, %s, %s\n",
			100*pts[i].atFrac, a.runtime,
			filepath.Join(cfg.TraceDir, traceName), filepath.Join(cfg.TraceDir, metricsName),
			filepath.Join(cfg.TraceDir, analysisName))
	}
	return nil
}

// runtimeSlug turns a runtime's display name ("Intra-Op") into a
// filename-safe lowercase slug ("intra-op").
func runtimeSlug(name string) string {
	return strings.ToLower(strings.ReplaceAll(name, " ", "-"))
}
