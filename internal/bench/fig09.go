package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"liger/internal/costmodel"
	"liger/internal/hw"
	"liger/internal/model"
	"liger/internal/parallel"
)

// RunFig09 reproduces the Fig. 9 analysis: decomposing a GEMM
// horizontally (splitting the skinny activation's rows) collapses
// compute intensity, while the vertical strategy (splitting the weight
// matrix's columns) stays close to the original kernel's accumulated
// duration. Liger therefore configures GEMM decomposition vertically.
func RunFig09(cfg RunConfig, w io.Writer) error {
	cm := costmodel.New(hw.V100Node().GPU)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "GEMM (m x n x k)\tparts\toriginal\tvertical sum\thorizontal sum\tvert ratio\thoriz ratio")
	shapes := []struct {
		name    string
		m, n, k int
	}{
		{"OPT-30B qkv (tp4)", 2 * meanSeq, 3 * model.OPT30B().Hidden / 4, model.OPT30B().Hidden},
		{"OPT-30B fc1 (tp4)", 2 * meanSeq, model.OPT30B().Hidden, model.OPT30B().Hidden},
		{"GLM-130B fc1 (tp4)", 2 * meanSeq, model.GLM130B().Hidden, model.GLM130B().Hidden},
	}
	for _, sh := range shapes {
		for _, parts := range []int{4, 8} {
			orig := cm.GEMM(sh.m, sh.n, sh.k)
			vert := parallel.SumDurations(parallel.GEMMSplitVertical(cm, sh.m, sh.n, sh.k, parts))
			horiz := parallel.SumDurations(parallel.GEMMSplitHorizontal(cm, sh.m, sh.n, sh.k, parts))
			fmt.Fprintf(tw, "%s %dx%dx%d\t%d\t%v\t%v\t%v\t%.2fx\t%.2fx\n",
				sh.name, sh.m, sh.n, sh.k, parts,
				orig.Round(time.Microsecond), vert.Round(time.Microsecond), horiz.Round(time.Microsecond),
				float64(vert)/float64(orig), float64(horiz)/float64(orig))
		}
	}
	fmt.Fprintln(tw, "\npaper: horizontal decomposition suffers a notable reduction in compute intensity; vertical performs much better")
	return tw.Flush()
}
