package bench

import (
	"fmt"
	"io"
	"time"

	"liger/internal/core"
	"liger/internal/hw"
	"liger/internal/model"
	"liger/internal/serve"
	"liger/internal/simclock"
	"liger/internal/trace"
)

// RunFig06 renders the Fig. 6 illustration as measured execution: the
// kernel timeline of device 0 under each parallelism approach, for a
// short dense burst of batches. Intra-Op alternates compute ('#') and
// communication ('=') with the comm slots leaving compute idle;
// Inter-Op (stage 0) is pure compute; Liger fills compute gaps with
// other batches' communication and vice versa.
func RunFig06(cfg RunConfig, w io.Writer) error {
	node := hw.A100Node()
	spec := model.OPT30B().WithLayers(6)
	// The timeline renders only the first 6 ms, so the demo caps the
	// configured batch count at 8; smaller cfg.Batches (quick test
	// configs) propagate through.
	batches := cfg.Batches
	if batches > 8 {
		batches = 8
	}
	tr, err := serve.Generate(serve.TraceConfig{
		Batches:    batches,
		BatchSize:  2,
		RatePerSec: 400, // dense burst so batches queue and interleave
		MinSeq:     64,
		MaxSeq:     64,
		Seed:       3,
	})
	if err != nil {
		return err
	}
	for _, kind := range []core.RuntimeKind{core.KindIntraOp, core.KindInterOp, core.KindLiger} {
		rec := trace.NewRecorder()
		eng, err := core.NewEngine(core.Options{Node: node, Model: spec, Runtime: kind, Tracer: rec})
		if err != nil {
			return err
		}
		res, err := eng.Serve(tr)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n%s (device 0, first 6ms; '#'=compute, '='=communication)\n", kind)
		tl := trace.NewTimeline(deviceOnly(rec, 0), 96)
		if err := tl.Render(w, 0, simclock.Time(6*time.Millisecond)); err != nil {
			return err
		}
		fmt.Fprintf(w, "makespan %v, overlap on device 0: %v\n",
			res.Makespan.Round(time.Microsecond), rec.OverlapTime(0).Round(time.Microsecond))
	}
	fmt.Fprintln(w, "\npaper (Fig. 6): interleaved parallelism inserts other batches' kernels into idle slots of the opposite resource")
	return nil
}

// deviceOnly filters a recorder's spans to one device so the timeline
// shows a single pair of rows.
func deviceOnly(rec *trace.Recorder, dev int) *trace.Recorder {
	out := trace.NewRecorder()
	for _, s := range rec.Spans() {
		if s.Device == dev {
			out.KernelEnd(0, s.Name, s.Class, s.Start, s.End)
		}
	}
	return out
}
