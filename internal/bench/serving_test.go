package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestServingOutputDeterministic pins the continuous-serving sweep's
// determinism promise: table AND every artifact — the sweep JSON, the
// serving-analysis aggregate, and the per-runtime serving trace/
// metrics/decomposition files — are byte-identical across invocations,
// sweep-executor worker counts, and executor shard settings inside
// each simulation.
func TestServingOutputDeterministic(t *testing.T) {
	dirSerial, dirPar := t.TempDir(), t.TempDir()
	cfg := RunConfig{Batches: 25, Quick: true, Seed: 5, Parallel: 0, Shards: 1, JSONDir: dirSerial, TraceDir: dirSerial}
	var first, again, par bytes.Buffer
	if err := RunServing(cfg, &first); err != nil {
		t.Fatal(err)
	}
	if err := RunServing(cfg, &again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), again.Bytes()) {
		t.Fatal("two seeded serving runs differ")
	}
	cfg.Parallel = 4
	cfg.Shards = 4
	cfg.JSONDir = dirPar
	cfg.TraceDir = dirPar
	if err := RunServing(cfg, &par); err != nil {
		t.Fatal(err)
	}
	// The traced-point lines embed the output directory, which differs
	// between the two runs by construction; everything else must match.
	stripTraced := func(b []byte) []byte {
		var kept [][]byte
		for _, line := range bytes.Split(b, []byte("\n")) {
			if bytes.HasPrefix(bytes.TrimSpace(line), []byte("traced:")) {
				continue
			}
			kept = append(kept, line)
		}
		return bytes.Join(kept, []byte("\n"))
	}
	if !bytes.Equal(stripTraced(first.Bytes()), stripTraced(par.Bytes())) {
		t.Fatalf("serving output differs between serial and -parallel 4 -shards 4:\n--- serial ---\n%s\n--- parallel ---\n%s",
			first.String(), par.String())
	}
	names, err := filepath.Glob(filepath.Join(dirSerial, "*"))
	if err != nil {
		t.Fatal(err)
	}
	// Sweep JSON + analysis aggregate + a trace/metrics/serving triple
	// per runtime.
	if len(names) < 11 {
		t.Fatalf("serial run wrote %d artifacts, want >= 11: %v", len(names), names)
	}
	sawAnalysis := false
	for _, name := range names {
		base := filepath.Base(name)
		if base == ServingAnalysisJSONName {
			sawAnalysis = true
		}
		js1, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		js2, err := os.ReadFile(filepath.Join(dirPar, base))
		if err != nil {
			t.Fatalf("artifact missing from the parallel run: %v", err)
		}
		if !bytes.Equal(js1, js2) {
			t.Fatalf("%s differs between worker settings", base)
		}
		var doc any
		if err := json.Unmarshal(js1, &doc); err != nil {
			t.Fatalf("%s is not valid JSON: %v", base, err)
		}
	}
	if !sawAnalysis {
		t.Fatalf("no %s among %v", ServingAnalysisJSONName, names)
	}
	out := first.String()
	for _, want := range []string{"pool", "ttft", "tpot", "Liger", "Intra-Op", "Inter-Op", "headline", "traced: serving"} {
		if !strings.Contains(out, want) {
			t.Errorf("%q missing from the report:\n%s", want, out)
		}
	}
}

// TestServingLigerParityEveryPoint is the acceptance check for decode
// traffic: iteration-level decode batches are comm-light, so Liger's
// honest claim is parity with the intra-op baseline (TPOT within 5%,
// TTFT within 10%) while inter-op's pipeline depth at least doubles
// TTFT. Every sequence must complete and the A100's cache headroom
// means a preemption here is a scheduler regression.
func TestServingLigerParityEveryPoint(t *testing.T) {
	cfg := RunConfig{Batches: 40, Quick: true, Seed: 1}
	s := newServingSetup(cfg)
	rep, _, err := buildServingReport(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkServingRows(t, rep, cfg.Batches)
}

// checkServingRows applies the per-point parity/penalty invariants;
// shared with the committed-artifact test.
func checkServingRows(t *testing.T, rep servingReport, batches int) {
	t.Helper()
	type key struct {
		frac float64
		pool int
	}
	byRuntime := make(map[string]map[key]servingRow)
	for _, row := range rep.Rows {
		if byRuntime[row.Runtime] == nil {
			byRuntime[row.Runtime] = make(map[key]servingRow)
		}
		byRuntime[row.Runtime][key{row.RateFrac, row.Pool}] = row
		if row.Completed != batches {
			t.Errorf("%s %.1fx/pool %d: %d of %d sequences completed", row.Runtime, row.RateFrac, row.Pool, row.Completed, batches)
		}
		if row.Preemptions != 0 {
			t.Errorf("%s %.1fx/pool %d: %d preemptions with cache headroom", row.Runtime, row.RateFrac, row.Pool, row.Preemptions)
		}
	}
	liger := byRuntime["Liger"]
	if len(liger) == 0 {
		t.Fatal("sweep produced no Liger points")
	}
	for k, lg := range liger {
		intra, ok := byRuntime["Intra-Op"][k]
		if !ok {
			t.Fatalf("no Intra-Op row for %.1fx/pool %d", k.frac, k.pool)
		}
		inter, ok := byRuntime["Inter-Op"][k]
		if !ok {
			t.Fatalf("no Inter-Op row for %.1fx/pool %d", k.frac, k.pool)
		}
		if lg.TPOTMs > 1.05*intra.TPOTMs {
			t.Errorf("%.1fx/pool %d: Liger TPOT %.2fms above 1.05x Intra-Op's %.2fms", k.frac, k.pool, lg.TPOTMs, intra.TPOTMs)
		}
		if lg.TTFTMs > 1.10*intra.TTFTMs {
			t.Errorf("%.1fx/pool %d: Liger TTFT %.1fms above 1.10x Intra-Op's %.1fms", k.frac, k.pool, lg.TTFTMs, intra.TTFTMs)
		}
		if inter.TTFTMs < 2*lg.TTFTMs {
			t.Errorf("%.1fx/pool %d: Inter-Op TTFT %.1fms below 2x Liger's %.1fms", k.frac, k.pool, inter.TTFTMs, lg.TTFTMs)
		}
	}
}

// TestServingCommittedArtifactHeadline pins the committed repo-root
// BENCH_serving.json: it must exist, parse, satisfy the per-point
// parity/penalty invariants, and carry a parity-range headline.
func TestServingCommittedArtifactHeadline(t *testing.T) {
	buf, err := os.ReadFile(filepath.Join("..", "..", ServingJSONName))
	if err != nil {
		t.Fatalf("committed artifact missing (regenerate with `make serving`): %v", err)
	}
	var rep servingReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("committed artifact has no rows")
	}
	checkServingRows(t, rep, rep.Batches)
	if r := rep.Headline.LigerVsIntraTPOT; r <= 0.8 || r > 1.05 {
		t.Errorf("headline Liger/Intra TPOT %.3f outside parity range (0.8, 1.05]", r)
	}
}
