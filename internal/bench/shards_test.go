package bench

import (
	"bytes"
	"reflect"
	"testing"

	"liger/internal/core"
	"liger/internal/hw"
	"liger/internal/model"
)

// TestSweepShardsIdentical is the pinned determinism test for the
// -shards flag: results must be identical at any Shards setting. Today
// the single-node shard plan collapses to one domain and the request
// falls back to the plain engine (gpusim.PlanShards documents why), so
// the property holds trivially — and this test keeps holding the door:
// when a multi-domain plan arrives, any lookahead bug that lets the
// windowed path diverge from the sequential one fails here first.
func TestSweepShardsIdentical(t *testing.T) {
	sweeps := []panelSweep{{
		p:     panel{nodeKey: "v100", node: hw.V100Node(), spec: model.Tiny(), batch: 2, phase: model.Context},
		rates: []float64{200, 400},
		kinds: []core.RuntimeKind{core.KindLiger, core.KindIntraOp, core.KindInterOp},
	}}
	base := RunConfig{Batches: 30, Quick: true, Seed: 9}
	ref, err := runSweeps(sweeps, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 4} {
		cfg := base
		cfg.Shards = shards
		got, err := runSweeps(sweeps, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("Shards=%d sweep diverged from Shards=0:\nref: %+v\ngot: %+v", shards, ref, got)
		}
	}
}

// TestExperimentOutputShardsIdentical runs a full experiment driver at
// Shards 0 and 4 — with the parallel sweep executor on as well, the
// worst case — and requires byte-identical printed output.
func TestExperimentOutputShardsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment run; skipped with -short")
	}
	cfg := RunConfig{Batches: 25, Quick: true, Seed: 3, Parallel: 4}
	var ref, got bytes.Buffer
	if err := RunFig10(cfg, &ref); err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 4
	if err := RunFig10(cfg, &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref.Bytes(), got.Bytes()) {
		t.Fatalf("fig10 output differs between -shards 0 and -shards 4:\n--- shards 0 ---\n%s\n--- shards 4 ---\n%s",
			ref.String(), got.String())
	}
}

// TestShardPlanSurfacedOnEngine checks the analysis is reachable from a
// built engine — what ligersim prints its fallback note from.
func TestShardPlanSurfacedOnEngine(t *testing.T) {
	eng, err := core.NewEngine(core.Options{
		Node: hw.V100Node(), Model: model.Tiny(), Runtime: core.KindLiger, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	plan := eng.ShardPlan()
	if plan.Domains != 1 || plan.Parallel() {
		t.Fatalf("single-node plan = %+v, want 1 non-parallel domain", plan)
	}
	if eng.ShardsRequested() != 8 {
		t.Fatalf("ShardsRequested = %d, want 8", eng.ShardsRequested())
	}
	if len(plan.Couplings) == 0 {
		t.Fatal("plan gives no reason for the fallback")
	}
}
