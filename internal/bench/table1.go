package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"liger/internal/model"
)

// RunTable1 reproduces Table 1: the specifications of the evaluated
// models, with parameter counts and FP16 sizes derived from the layer
// dimensions.
func RunTable1(cfg RunConfig, w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Name\tParameters\tLayers\tHeads\tHidden Size\tPrec.\tFP16 Size")
	for _, s := range model.Table1() {
		fmt.Fprintf(tw, "%s\t%.0fB\t%d\t%d\t%d\tFP16\t%.0fGB\n",
			s.Name, float64(s.Params())/1e9, s.Layers, s.Heads, s.Hidden,
			float64(s.WeightBytes())/1e9)
	}
	return tw.Flush()
}
