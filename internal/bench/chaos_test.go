package bench

import (
	"bytes"
	"strings"
	"testing"

	"liger/internal/core"
	"liger/internal/faults"
)

// TestChaosOutputSerialParallelIdentical pins the chaos experiment's
// headline promise: a seeded run is byte-identical across invocations
// and across sweep-executor worker counts — fault windows included.
func TestChaosOutputSerialParallelIdentical(t *testing.T) {
	cfg := RunConfig{Batches: 25, Quick: true, Seed: 5, Parallel: 0, StragglerDevice: 2}
	var first, again, par bytes.Buffer
	if err := RunChaos(cfg, &first); err != nil {
		t.Fatal(err)
	}
	if err := RunChaos(cfg, &again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), again.Bytes()) {
		t.Fatal("two seeded chaos runs differ")
	}
	cfg.Parallel = 4
	if err := RunChaos(cfg, &par); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), par.Bytes()) {
		t.Fatalf("chaos output differs between -parallel 0 and -parallel 4:\n--- serial ---\n%s\n--- parallel ---\n%s",
			first.String(), par.String())
	}
	// The report must cover the fault-free baseline plus every preset
	// fault scenario.
	out := first.String()
	want := []string{"none"}
	for _, sc := range faults.Scenarios() {
		want = append(want, sc.Name)
	}
	if len(want) < 4 {
		t.Fatalf("only %d scenarios; need a baseline plus at least 3 fault scenarios", len(want))
	}
	for _, name := range want {
		if !strings.Contains(out, name) {
			t.Errorf("scenario %q missing from the report", name)
		}
	}
}

// TestChaosLigerDegradesNoWorseThanIntraOp is the robustness acceptance
// check: under the transient-straggler scenario, Liger's goodput must
// not degrade below the intra-operator baseline's — interleaving plus
// degradation-aware re-planning has to at least match plain tensor
// parallelism when a device throttles.
func TestChaosLigerDegradesNoWorseThanIntraOp(t *testing.T) {
	cfg := RunConfig{Batches: 40, Seed: 1, StragglerDevice: 2}
	s := newChaosSetup(cfg)
	sc, err := faults.ScenarioByName("transient-straggler")
	if err != nil {
		t.Fatal(err)
	}
	lig, err := runChaosPoint(s, sc, core.KindLiger, cfg)
	if err != nil {
		t.Fatal(err)
	}
	intra, err := runChaosPoint(s, sc, core.KindIntraOp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lig.PolicyGoodput() < intra.PolicyGoodput() {
		t.Fatalf("Liger goodput %.2f below Intra-Op %.2f under transient-straggler",
			lig.PolicyGoodput(), intra.PolicyGoodput())
	}
}

// TestStragglerDeviceBoundsChecked pins the parameterized straggler
// index: out-of-range devices are rejected, not silently clamped.
func TestStragglerDeviceBoundsChecked(t *testing.T) {
	for _, dev := range []int{-1, 4, 99} {
		cfg := RunConfig{Batches: 5, Quick: true, Seed: 1, StragglerDevice: dev}
		var buf bytes.Buffer
		if err := RunStraggler(cfg, &buf); err == nil {
			t.Errorf("straggler device %d accepted on a 4-GPU node", dev)
		}
	}
}

// TestStragglerDeviceParameterized runs the experiment on a
// non-default device and checks the report names it.
func TestStragglerDeviceParameterized(t *testing.T) {
	if testing.Short() {
		t.Skip("full straggler sweep; skipped with -short")
	}
	cfg := RunConfig{Batches: 10, Quick: true, Seed: 1, StragglerDevice: 1}
	var buf bytes.Buffer
	if err := RunStraggler(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "gpu1 speed") {
		t.Fatalf("report does not name the straggler device:\n%s", buf.String())
	}
}
