package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"liger/internal/core"
	"liger/internal/hw"
	"liger/internal/liger"
	"liger/internal/model"
)

// RunFig14 reproduces Fig. 14: the impact of the runtime kernel
// decomposition division factor (2, 4, 8, 16) serving OPT-30B on the
// V100 node with batch size 2. Larger factors give the scheduler
// finer-grained pieces and more closely matched subsets, with
// diminishing returns once pieces stop saturating the GPU.
func RunFig14(cfg RunConfig, w io.Writer) error {
	p := panel{
		label:   "OPT-30B on v100x4, batch 2",
		nodeKey: "v100",
		node:    hw.V100Node(),
		spec:    model.OPT30B(),
		batch:   2,
		phase:   model.Context,
	}
	cap := intraCapacity(p)
	factors := []int{2, 4, 8, 16}
	if cfg.Quick {
		factors = []int{2, 8}
	}
	// Operate near Liger's saturation, where matching quality matters.
	rates := []float64{0.95 * cap, 1.15 * cap}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "division factor\trate (batch/s)\tavg lat\tthroughput\tdecompositions")
	for _, d := range factors {
		lcfg := liger.DefaultConfig(p.nodeKey)
		lcfg.DivisionFactor = d
		for _, rate := range rates {
			res, err := runPoint(p, rate, core.KindLiger, cfg, &lcfg)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%d\t%.2f\t%s\t%.2f\t\n", d, rate, fmtDur(res.AvgLatency), res.ThroughputBatches())
		}
	}
	fmt.Fprintln(tw, "\npaper: larger decomposition factors improve latency and throughput with gradually decreasing benefit")
	return tw.Flush()
}
