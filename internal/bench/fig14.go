package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"liger/internal/core"
	"liger/internal/hw"
	"liger/internal/liger"
	"liger/internal/model"
	"liger/internal/runner"
	"liger/internal/serve"
)

// RunFig14 reproduces Fig. 14: the impact of the runtime kernel
// decomposition division factor (2, 4, 8, 16) serving OPT-30B on the
// V100 node with batch size 2. Larger factors give the scheduler
// finer-grained pieces and more closely matched subsets, with
// diminishing returns once pieces stop saturating the GPU.
func RunFig14(cfg RunConfig, w io.Writer) error {
	p := panel{
		label:   "OPT-30B on v100x4, batch 2",
		nodeKey: "v100",
		node:    hw.V100Node(),
		spec:    model.OPT30B(),
		batch:   2,
		phase:   model.Context,
	}
	cap := intraCapacity(p)
	factors := []int{2, 4, 8, 16}
	if cfg.Quick {
		factors = []int{2, 8}
	}
	// Operate near Liger's saturation, where matching quality matters.
	rates := []float64{0.95 * cap, 1.15 * cap}
	results, err := runner.Map(cfg.Parallel, len(factors)*len(rates), func(i int) (serve.Result, error) {
		lcfg := liger.DefaultConfig(p.nodeKey)
		lcfg.DivisionFactor = factors[i/len(rates)]
		return runPoint(p, rates[i%len(rates)], core.KindLiger, cfg, &lcfg)
	})
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "division factor\trate (batch/s)\tavg lat\tthroughput\tdecompositions")
	for fi, d := range factors {
		for ri, rate := range rates {
			res := results[fi*len(rates)+ri]
			fmt.Fprintf(tw, "%d\t%.2f\t%s\t%.2f\t\n", d, rate, fmtDur(res.AvgLatency), res.ThroughputBatches())
		}
	}
	fmt.Fprintln(tw, "\npaper: larger decomposition factors improve latency and throughput with gradually decreasing benefit")
	return tw.Flush()
}
