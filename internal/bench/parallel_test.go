package bench

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"liger/internal/core"
	"liger/internal/hw"
	"liger/internal/model"
)

// TestSweepSerialParallelIdentical is the determinism regression test
// for the sweep executor: the same seed through the serial path
// (Parallel: 0) and the parallel path (Parallel: 4) must yield
// identical serve.Result metrics for every point of every sweep.
func TestSweepSerialParallelIdentical(t *testing.T) {
	sweeps := []panelSweep{
		{
			p:     panel{nodeKey: "v100", node: hw.V100Node(), spec: model.Tiny(), batch: 2, phase: model.Context},
			rates: []float64{200, 400, 800},
			kinds: []core.RuntimeKind{core.KindLiger, core.KindIntraOp, core.KindInterOp},
		},
		{
			p:     panel{nodeKey: "a100", node: hw.A100Node(), spec: model.Tiny(), batch: 4, phase: model.Context},
			rates: []float64{300, 600},
			kinds: []core.RuntimeKind{core.KindLiger, core.KindIntraOp},
		},
	}
	serialCfg := RunConfig{Batches: 30, Quick: true, Seed: 9, Parallel: 0}
	parallelCfg := serialCfg
	parallelCfg.Parallel = 4

	serial, err := runSweeps(sweeps, serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := runSweeps(sweeps, parallelCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("serial and parallel sweeps diverged:\nserial:   %+v\nparallel: %+v", serial, par)
	}
	// Sanity: the comparison is over real work, not empty maps.
	if len(serial) != 2 || len(serial[0][core.KindLiger]) != 3 {
		t.Fatalf("unexpected sweep shape: %+v", serial)
	}
}

// TestExperimentOutputSerialParallelIdentical runs a full experiment
// driver (printing included) both ways and requires byte-identical
// output — the property the -parallel flag promises.
func TestExperimentOutputSerialParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment run; skipped with -short")
	}
	cfg := RunConfig{Batches: 25, Quick: true, Seed: 3, Parallel: 0}
	var serial, par bytes.Buffer
	if err := RunFig12(cfg, &serial); err != nil {
		t.Fatal(err)
	}
	cfg.Parallel = 4
	if err := RunFig12(cfg, &par); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), par.Bytes()) {
		t.Fatalf("fig12 output differs between -parallel 0 and -parallel 4:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.String(), par.String())
	}
}

// TestBatchesPropagates pins the RunConfig.Batches contract: a tiny
// batch count must reach every simulation point, so a quick fig10 run
// with Batches: 3 finishes in seconds rather than minutes.
func TestBatchesPropagates(t *testing.T) {
	cfg := RunConfig{Batches: 3, Quick: true, Seed: 1}
	start := time.Now()
	var buf bytes.Buffer
	if err := RunFig10(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("fig10 with Batches:3 took %v; Batches is not propagating", elapsed)
	}
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
	// And the point runner really serves exactly cfg.Batches batches.
	p := panel{nodeKey: "v100", node: hw.V100Node(), spec: model.Tiny(), batch: 2, phase: model.Context}
	res, err := runPoint(p, 500, core.KindLiger, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 3 {
		t.Fatalf("runPoint completed %d batches with Batches:3", res.Completed)
	}
}
