package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"liger/internal/core"
	"liger/internal/hw"
	"liger/internal/liger"
	"liger/internal/model"
	"liger/internal/runner"
	"liger/internal/serve"
)

// RunFig13 reproduces Fig. 13: Liger with the hybrid synchronization
// approach versus Liger with only CPU-GPU synchronization, serving
// OPT-30B on the V100 node with batch size 2. The paper observes an
// obvious latency and throughput drop for CPU-GPU synchronization: a
// null-kernel launch costs ~5 µs, but waiting for communication kernels
// on all GPUs before relaunching costs over 20 µs per switch point. The
// inter-stream-only approach that §3.4 describes and rejects is
// included as a third column.
func RunFig13(cfg RunConfig, w io.Writer) error {
	p := panel{
		label:   "OPT-30B on v100x4, batch 2",
		nodeKey: "v100",
		node:    hw.V100Node(),
		spec:    model.OPT30B(),
		batch:   2,
		phase:   model.Context,
	}
	cap := intraCapacity(p)
	modes := []struct {
		name string
		sync liger.SyncMode
	}{
		{"hybrid", liger.Hybrid},
		{"cpu-gpu", liger.CPUGPU},
		{"inter-stream", liger.InterStreamOnly},
	}
	var rates []float64
	for _, f := range rateFractions(cfg.Quick) {
		rates = append(rates, f*cap)
	}
	type cell struct {
		lat string
		thr float64
	}
	// One independent simulation per (sync mode, rate), fanned across the
	// sweep executor.
	results, err := runner.Map(cfg.Parallel, len(modes)*len(rates), func(i int) (serve.Result, error) {
		lcfg := liger.DefaultConfig(p.nodeKey)
		lcfg.Sync = modes[i/len(rates)].sync
		return runPoint(p, rates[i%len(rates)], core.KindLiger, cfg, &lcfg)
	})
	if err != nil {
		return err
	}
	table := map[string]map[float64]cell{}
	for mi, m := range modes {
		table[m.name] = map[float64]cell{}
		for ri, rate := range rates {
			res := results[mi*len(rates)+ri]
			table[m.name][rate] = cell{lat: fmtDur(res.AvgLatency), thr: res.ThroughputBatches()}
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "rate (batch/s)\t")
	for _, m := range modes {
		fmt.Fprintf(tw, "%s lat\t%s thr\t", m.name, m.name)
	}
	fmt.Fprintln(tw)
	for _, rate := range rates {
		fmt.Fprintf(tw, "%.2f\t", rate)
		for _, m := range modes {
			c := table[m.name][rate]
			fmt.Fprintf(tw, "%s\t%.2f\t", c.lat, c.thr)
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprintln(tw, "\npaper: CPU-GPU-only synchronization performs unfavorably on both latency and throughput;")
	fmt.Fprintln(tw, "       inter-stream-only control lags on communication kernels (§3.4) — hybrid wins")
	return tw.Flush()
}
