package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"text/tabwriter"
	"time"

	"liger/internal/cluster"
	"liger/internal/core"
	"liger/internal/faults"
	"liger/internal/hw"
	"liger/internal/liger"
	"liger/internal/model"
	"liger/internal/runner"
	"liger/internal/serve"
)

// FleetJSONName is the machine-readable artifact of the fleet-failover
// sweep (written into RunConfig.JSONDir when set).
const FleetJSONName = "BENCH_fleet.json"

// fleetSetup fixes the fleet experiment's shared knobs so the
// experiment driver, its determinism test, and the CI smoke agree.
type fleetSetup struct {
	p        panel
	network  hw.NetworkSpec
	replicas []int
	instants []float64
	kinds    []core.RuntimeKind
	solo     time.Duration
	// capacity is one node's intra-op saturated throughput; a fleet of
	// R replicas serves rate(R) = utilization * R * capacity.
	capacity    float64
	utilization float64
}

func newFleetSetup(cfg RunConfig) fleetSetup {
	// Same testbed as the single-node failover sweep — OPT-30B on the
	// 4xA100 node — replicated across an InfiniBand fabric. Losing a
	// whole node removes 1/R of fleet capacity. 60% utilization is
	// chosen so the doubled load on a 2-replica survivor lands between
	// the runtimes' capacities: under Liger's interleaved throughput,
	// beyond intra-op's — the sweep separates them instead of drowning
	// everyone.
	p := panel{nodeKey: "a100", node: hw.A100Node(), spec: model.OPT30B(), batch: 2, phase: model.Context}
	capacity := intraCapacity(p)
	replicas := []int{2, 3}
	instants := []float64{0.3, 0.6}
	if cfg.Quick {
		replicas = []int{2}
		instants = []float64{0.45}
	}
	return fleetSetup{
		p:           p,
		network:     hw.IBNetwork(),
		replicas:    replicas,
		instants:    instants,
		kinds:       []core.RuntimeKind{core.KindLiger, core.KindIntraOp, core.KindInterOp},
		solo:        time.Duration(float64(time.Second) / capacity),
		capacity:    capacity,
		utilization: 0.6,
	}
}

func (s fleetSetup) rate(replicas int) float64 {
	return s.utilization * float64(replicas) * s.capacity
}

func (s fleetSetup) policy() serve.Policy {
	return serve.Policy{
		// Interactive-serving SLO: two solo batch durations. Tight on
		// purpose — inter-op pipelining has the raw throughput to absorb
		// a node loss, but its per-batch latency (~1.5x intra) blows this
		// deadline, which is exactly the regime where interleaving wins.
		Deadline:   2 * s.solo,
		MaxRetries: 3,
		Backoff:    s.solo / 2,
		BackoffCap: 4 * s.solo,
		// Bounded admission fleet-wide: the post-loss backlog sheds past
		// 24 unresolved batches instead of compounding into retries.
		QueueLimit: 24,
	}
}

// fleetPoint identifies one simulation of the sweep: a fleet of
// Replicas nodes (plus one spare) serving with Kind, losing node 0 at
// AtFrac of the horizon (AtFrac < 0 is the loss-free baseline).
type fleetPoint struct {
	kind     core.RuntimeKind
	replicas int
	atFrac   float64
}

func (s fleetSetup) points() []fleetPoint {
	var pts []fleetPoint
	for _, r := range s.replicas {
		for _, kind := range s.kinds {
			pts = append(pts, fleetPoint{kind: kind, replicas: r, atFrac: -1})
		}
	}
	for _, r := range s.replicas {
		for _, at := range s.instants {
			for _, kind := range s.kinds {
				pts = append(pts, fleetPoint{kind: kind, replicas: r, atFrac: at})
			}
		}
	}
	return pts
}

// runFleetPoint serves one point: replicas + 1 spare behind the
// health-aware router, whole-node loss injected at the instant.
func runFleetPoint(s fleetSetup, pt fleetPoint, cfg RunConfig) (serve.Result, error) {
	rate := s.rate(pt.replicas)
	horizon := time.Duration(float64(cfg.Batches) / rate * float64(time.Second))
	ccfg := cluster.Config{
		Cluster: hw.Cluster{
			Name:    fmt.Sprintf("%s-x%d", s.p.nodeKey, pt.replicas),
			Node:    s.p.node,
			Nodes:   pt.replicas,
			Spares:  1,
			Network: s.network,
		},
		Model:   s.p.spec,
		Runtime: pt.kind,
		Workers: cfg.Shards,
	}
	if pt.kind == core.KindLiger {
		lc := liger.DefaultConfig(s.p.nodeKey)
		lc.DegradationAware = true
		ccfg.Liger = lc
		ccfg.LigerSet = true
	}
	if pt.atFrac >= 0 {
		ccfg.Faults = &faults.Schedule{Events: []faults.Event{{
			Kind:  faults.NodeFail,
			Node:  0,
			Start: time.Duration(pt.atFrac * float64(horizon)),
		}}}
	}
	f, err := cluster.New(ccfg)
	if err != nil {
		return serve.Result{}, err
	}
	trace, err := genTrace(s.p, rate, cfg)
	if err != nil {
		return serve.Result{}, err
	}
	return serve.RunFleet(f, trace, s.policy(), serve.RouterPolicy{Seed: cfg.Seed})
}

// fleetRow is one JSON record of the sweep.
type fleetRow struct {
	Runtime  string  `json:"runtime"`
	Replicas int     `json:"replicas"`
	AtFrac   float64 `json:"at_frac"`
	// Goodput is within-deadline throughput (batches/s); GoodputRetained
	// is its ratio to the same (runtime, replicas) loss-free baseline.
	Goodput         float64 `json:"goodput"`
	GoodputRetained float64 `json:"goodput_retained"`
	// RecoveryMs is node-loss instant to replica re-placement on the
	// spare (weight transfer over the fabric plus communicator rebuild).
	RecoveryMs float64 `json:"recovery_ms"`
	Failovers  int     `json:"failovers"`
	Shed       int     `json:"shed"`
	Retries    int     `json:"retries"`
	Failed     int     `json:"failed"`
	Completed  int     `json:"completed"`
}

// fleetReport is the full artifact: per-point rows plus the headline
// aggregates the experiment exists to measure.
type fleetReport struct {
	Batches  int        `json:"batches"`
	Seed     int64      `json:"seed"`
	Rows     []fleetRow `json:"rows"`
	Headline struct {
		// Mean goodput retained across every node-loss point, per runtime.
		GoodputRetained map[string]float64 `json:"goodput_retained"`
		// Mean time-to-recover across every node-loss point, per runtime.
		RecoveryMs map[string]float64 `json:"recovery_ms"`
		// LigerVsIntraRetained is Liger's mean retained goodput minus
		// Intra-Op's: positive means interleaving keeps more of the fleet's
		// service alive through the same node loss.
		LigerVsIntraRetained float64 `json:"liger_vs_intra_retained"`
	} `json:"headline"`
}

// buildFleetReport runs the sweep and aggregates it; shared by the
// experiment driver and the pinned tests.
func buildFleetReport(s fleetSetup, cfg RunConfig) (fleetReport, []fleetPoint, []serve.Result, error) {
	pts := s.points()
	results, err := runner.Map(cfg.Parallel, len(pts), func(i int) (serve.Result, error) {
		return runFleetPoint(s, pts[i], cfg)
	})
	if err != nil {
		return fleetReport{}, nil, nil, err
	}
	// Loss-free baselines anchor the goodput-retained ratios per
	// (runtime, replicas) pair.
	baseline := make(map[fleetPoint]float64)
	for i, pt := range pts {
		if pt.atFrac < 0 {
			baseline[fleetPoint{kind: pt.kind, replicas: pt.replicas, atFrac: -1}] = results[i].PolicyGoodput()
		}
	}
	rep := fleetReport{Batches: cfg.Batches, Seed: cfg.Seed}
	rep.Headline.GoodputRetained = make(map[string]float64)
	rep.Headline.RecoveryMs = make(map[string]float64)
	sumRetained := make(map[core.RuntimeKind]float64)
	sumRecovery := make(map[core.RuntimeKind]float64)
	lossPoints := 0
	for i, pt := range pts {
		res := results[i]
		row := fleetRow{
			Runtime:    res.Runtime,
			Replicas:   pt.replicas,
			AtFrac:     pt.atFrac,
			Goodput:    res.PolicyGoodput(),
			RecoveryMs: float64(res.RecoveryTime) / float64(time.Millisecond),
			Failovers:  res.Failovers,
			Shed:       res.Shed,
			Retries:    res.Retries,
			Failed:     res.Failed,
			Completed:  res.Completed,
		}
		if base := baseline[fleetPoint{kind: pt.kind, replicas: pt.replicas, atFrac: -1}]; base > 0 {
			row.GoodputRetained = row.Goodput / base
		}
		if pt.atFrac >= 0 {
			sumRetained[pt.kind] += row.GoodputRetained
			sumRecovery[pt.kind] += row.RecoveryMs
			if pt.kind == s.kinds[0] {
				lossPoints++
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	if lossPoints > 0 {
		for _, kind := range s.kinds {
			name := kind.String()
			rep.Headline.GoodputRetained[name] = sumRetained[kind] / float64(lossPoints)
			rep.Headline.RecoveryMs[name] = sumRecovery[kind] / float64(lossPoints)
		}
		rep.Headline.LigerVsIntraRetained =
			(sumRetained[core.KindLiger] - sumRetained[core.KindIntraOp]) / float64(lossPoints)
	}
	return rep, pts, results, nil
}

// RunFleet is the fleet-failover experiment: replicate the serving
// node R times (plus one spare) behind the health-aware router, kill
// node 0 at several instants, and measure per runtime how much
// within-deadline goodput the fleet retains and how long replica
// re-placement takes. Every point is an independent simulation, so
// the sweep parallelizes and its output — table and JSON artifact —
// is byte-identical at any -parallel or -shards value.
func RunFleet(cfg RunConfig, w io.Writer) error {
	s := newFleetSetup(cfg)
	rep, pts, results, err := buildFleetReport(s, cfg)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "fleet\tloss\truntime\tgoodput\tretained\trecovery\tfailovers\tshed\tretries\tfailed")
	for i, pt := range pts {
		row := rep.Rows[i]
		label := "none"
		if pt.atFrac >= 0 {
			label = fmt.Sprintf("node0@%.0f%%", 100*pt.atFrac)
		}
		fmt.Fprintf(tw, "%dx+1\t%s\t%s\t%.2f\t%.0f%%\t%s\t%d\t%d\t%d\t%d\n",
			pt.replicas, label, row.Runtime, row.Goodput, 100*row.GoodputRetained,
			fmtDur(results[i].RecoveryTime), row.Failovers, row.Shed, row.Retries, row.Failed)
	}
	pol := s.policy()
	fmt.Fprintf(tw, "\nfabric: %s, %.0f GB/s effective, %s one-way; policy: deadline %s, %d retries, queue limit %d; seed %d\n",
		s.network.Name, s.network.EffectiveBWGBs(), s.network.Latency,
		fmtDur(pol.Deadline), pol.MaxRetries, pol.QueueLimit, cfg.Seed)
	if len(rep.Headline.GoodputRetained) > 0 {
		fmt.Fprintf(tw, "headline: mean goodput retained across node losses — Liger %.0f%%, Intra-Op %.0f%%, Inter-Op %.0f%% (Liger−Intra %+.1fpp)\n",
			100*rep.Headline.GoodputRetained["Liger"], 100*rep.Headline.GoodputRetained["Intra-Op"],
			100*rep.Headline.GoodputRetained["Inter-Op"], 100*rep.Headline.LigerVsIntraRetained)
	}
	fmt.Fprintln(tw, "extension: a NodeFail drops the node's shard mid-epoch; the router evicts it, re-dispatches its in-flight batches to the survivors, and re-places the replica onto the spare after the weight transfer + communicator rebuild")
	if err := tw.Flush(); err != nil {
		return err
	}
	return writeFleetJSON(cfg, rep)
}

// writeFleetJSON writes the machine-readable artifact when
// RunConfig.JSONDir is set. encoding/json sorts map keys, so the bytes
// are a pure function of the report value.
func writeFleetJSON(cfg RunConfig, rep fleetReport) error {
	if cfg.JSONDir == "" {
		return nil
	}
	if err := os.MkdirAll(cfg.JSONDir, 0o755); err != nil {
		return err
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	return os.WriteFile(filepath.Join(cfg.JSONDir, FleetJSONName), buf, 0o644)
}
