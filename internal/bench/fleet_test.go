package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFleetOutputDeterministic pins the fleet sweep's determinism
// promise: table AND JSON artifact are byte-identical across
// invocations, sweep-executor worker counts, and executor shard
// (worker) settings inside each fleet simulation.
func TestFleetOutputDeterministic(t *testing.T) {
	dirSerial, dirPar := t.TempDir(), t.TempDir()
	cfg := RunConfig{Batches: 25, Quick: true, Seed: 5, Parallel: 0, Shards: 1, JSONDir: dirSerial}
	var first, again, par bytes.Buffer
	if err := RunFleet(cfg, &first); err != nil {
		t.Fatal(err)
	}
	if err := RunFleet(cfg, &again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), again.Bytes()) {
		t.Fatal("two seeded fleet runs differ")
	}
	cfg.Parallel = 4
	cfg.Shards = 4
	cfg.JSONDir = dirPar
	if err := RunFleet(cfg, &par); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), par.Bytes()) {
		t.Fatalf("fleet output differs between serial and -parallel 4 -shards 4:\n--- serial ---\n%s\n--- parallel ---\n%s",
			first.String(), par.String())
	}
	js1, err := os.ReadFile(filepath.Join(dirSerial, FleetJSONName))
	if err != nil {
		t.Fatal(err)
	}
	js2, err := os.ReadFile(filepath.Join(dirPar, FleetJSONName))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js1, js2) {
		t.Fatal("BENCH_fleet.json differs between worker settings")
	}
	out := first.String()
	for _, want := range []string{"none", "node0@", "Liger", "Intra-Op", "Inter-Op", "headline"} {
		if !strings.Contains(out, want) {
			t.Errorf("%q missing from the report:\n%s", want, out)
		}
	}
}

// TestFleetLigerLeadsEveryLossPoint is the tentpole acceptance check:
// at every node-loss point of the sweep, the interleaved runtime's
// fleet goodput must be at least each baseline's at the same point —
// the survivors' interleaved headroom absorbs the re-dispatched load
// where intra-op saturates, and the tight SLO punishes inter-op's
// pipeline latency.
func TestFleetLigerLeadsEveryLossPoint(t *testing.T) {
	cfg := RunConfig{Batches: 40, Quick: true, Seed: 1}
	s := newFleetSetup(cfg)
	rep, _, _, err := buildFleetReport(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		replicas int
		atFrac   float64
	}
	liger := make(map[key]fleetRow)
	for _, row := range rep.Rows {
		if row.AtFrac >= 0 && row.Runtime == "Liger" {
			liger[key{row.Replicas, row.AtFrac}] = row
		}
	}
	if len(liger) == 0 {
		t.Fatal("sweep produced no Liger loss points")
	}
	for _, row := range rep.Rows {
		if row.AtFrac < 0 {
			continue
		}
		if row.Failovers < 1 {
			t.Errorf("%s %dx@%.0f%%: node loss produced %d failovers", row.Runtime, row.Replicas, 100*row.AtFrac, row.Failovers)
		}
		if row.RecoveryMs <= 0 {
			t.Errorf("%s %dx@%.0f%%: no time-to-recover reported", row.Runtime, row.Replicas, 100*row.AtFrac)
		}
		if row.Runtime == "Liger" {
			continue
		}
		lg, ok := liger[key{row.Replicas, row.AtFrac}]
		if !ok {
			t.Fatalf("no Liger row for %dx@%.0f%%", row.Replicas, 100*row.AtFrac)
		}
		if lg.Goodput < row.Goodput {
			t.Errorf("%dx@%.0f%%: Liger goodput %.2f below %s's %.2f",
				row.Replicas, 100*row.AtFrac, lg.Goodput, row.Runtime, row.Goodput)
		}
	}
}

// TestFleetCommittedArtifactHeadline pins the committed repo-root
// BENCH_fleet.json: it must exist, parse, and show Liger's fleet
// goodput at or above each baseline's at every node-loss point (the
// acceptance criterion the artifact exists to document).
func TestFleetCommittedArtifactHeadline(t *testing.T) {
	buf, err := os.ReadFile(filepath.Join("..", "..", FleetJSONName))
	if err != nil {
		t.Fatalf("committed artifact missing (regenerate with `make fleet`): %v", err)
	}
	var rep fleetReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("committed artifact has no rows")
	}
	type key struct {
		replicas int
		atFrac   float64
	}
	liger := make(map[key]float64)
	lossPoints := 0
	for _, row := range rep.Rows {
		if row.AtFrac >= 0 && row.Runtime == "Liger" {
			liger[key{row.Replicas, row.AtFrac}] = row.Goodput
			lossPoints++
		}
	}
	if lossPoints == 0 {
		t.Fatal("committed artifact has no node-loss points")
	}
	for _, row := range rep.Rows {
		if row.AtFrac < 0 || row.Runtime == "Liger" {
			continue
		}
		lg, ok := liger[key{row.Replicas, row.AtFrac}]
		if !ok {
			t.Fatalf("no Liger row for %dx@%.0f%%", row.Replicas, 100*row.AtFrac)
		}
		if lg < row.Goodput {
			t.Errorf("committed artifact: %dx@%.0f%%: Liger goodput %.2f below %s's %.2f",
				row.Replicas, 100*row.AtFrac, lg, row.Runtime, row.Goodput)
		}
	}
	if rep.Headline.LigerVsIntraRetained <= 0 {
		t.Errorf("headline Liger−Intra retained %.3f, want positive", rep.Headline.LigerVsIntraRetained)
	}
}
