package bench

import (
	"testing"

	"liger/internal/analyze"
	"liger/internal/core"
	"liger/internal/serve"
	"liger/internal/simclock"
	"liger/internal/trace"
)

// explainPoint serves the first Fig. 10 panel (OPT-30B on v100, batch
// 2) at a saturation-regime rate under one runtime, with a recorder
// attached, and returns the serving result plus the trace analysis —
// exactly what `ligersim -explain` computes for that configuration.
func explainPoint(t *testing.T, kind core.RuntimeKind, rate float64, cfg RunConfig) (serve.Result, *analyze.Report) {
	t.Helper()
	p := fig10Panels(false)[0]
	rec := trace.NewRecorder()
	eng, err := core.NewEngine(core.Options{Node: p.node, Model: p.spec, Runtime: kind, Tracer: rec})
	if err != nil {
		t.Fatalf("engine(%v): %v", kind, err)
	}
	tr, err := genTrace(p, rate, cfg)
	if err != nil {
		t.Fatalf("trace(%v): %v", kind, err)
	}
	res, err := eng.Serve(tr)
	if err != nil {
		t.Fatalf("serve(%v): %v", kind, err)
	}
	return res, analyze.Analyze(rec, analyze.Options{})
}

// TestFig10CriticalPathTilesMakespan is the -explain acceptance check
// on the Fig. 10 config: for every runtime the critical-path segments
// tile [0, makespan] exactly — contiguous, in order, and summing to
// the end-to-end makespan the serving layer reports.
func TestFig10CriticalPathTilesMakespan(t *testing.T) {
	p := fig10Panels(false)[0]
	rate := 1.15 * intraCapacity(p)
	cfg := RunConfig{Batches: 40, Seed: 1}
	for _, kind := range []core.RuntimeKind{core.KindLiger, core.KindIntraOp, core.KindInterOp} {
		res, rep := explainPoint(t, kind, rate, cfg)
		if got := simclock.Time(res.Makespan); rep.Makespan != got {
			t.Fatalf("%v: analyzer makespan %v != serving makespan %v", kind, rep.Makespan, got)
		}
		segs := rep.CriticalPath.Segments
		if len(segs) == 0 {
			t.Fatalf("%v: empty critical path", kind)
		}
		if segs[0].Start != 0 || segs[len(segs)-1].End != rep.Makespan {
			t.Fatalf("%v: critical path spans [%v, %v], want [0, %v]",
				kind, segs[0].Start, segs[len(segs)-1].End, rep.Makespan)
		}
		var sum simclock.Time
		for i, s := range segs {
			if s.End < s.Start {
				t.Fatalf("%v: segment %d inverted: %+v", kind, i, s)
			}
			if i > 0 && s.Start != segs[i-1].End {
				t.Fatalf("%v: segment %d not contiguous: prev end %v, start %v",
					kind, i, segs[i-1].End, s.Start)
			}
			sum += s.End - s.Start
		}
		if sum != rep.Makespan {
			t.Fatalf("%v: segment durations sum to %v, want makespan %v", kind, sum, rep.Makespan)
		}
		var totals simclock.Time
		for _, v := range rep.CriticalPath.Totals {
			totals += v
		}
		if totals != rep.Makespan {
			t.Fatalf("%v: totals sum to %v, want makespan %v", kind, totals, rep.Makespan)
		}
	}
}

// TestFig10OverlapRanking pins the paper's headline interleaving story
// at a saturation-regime Fig. 10 point:
//
//   - exposed communication on the critical path (comm + rendezvous
//     time the makespan-determining chain is blocked on communication)
//     ranks Liger ≤ Intra-Op ≤ Inter-Op;
//   - the overlap report shows Liger hiding comm under compute while
//     Intra-Op hides none (its all-reduces serialize with the GEMMs);
//   - Inter-Op's communication cost is structurally different: tiny
//     p2p transfers, huge rendezvous-stall occupancy (pipeline
//     bubbles, §2.3.1 launch lag).
func TestFig10OverlapRanking(t *testing.T) {
	p := fig10Panels(false)[0]
	rate := 1.15 * intraCapacity(p)
	cfg := RunConfig{Batches: 40, Seed: 1}

	exposed := map[core.RuntimeKind]simclock.Time{}
	reps := map[core.RuntimeKind]*analyze.Report{}
	for _, kind := range []core.RuntimeKind{core.KindLiger, core.KindIntraOp, core.KindInterOp} {
		_, rep := explainPoint(t, kind, rate, cfg)
		reps[kind] = rep
		exposed[kind] = rep.CriticalPath.Totals[analyze.SegComm] + rep.CriticalPath.Totals[analyze.SegRendezvous]
	}
	if !(exposed[core.KindLiger] <= exposed[core.KindIntraOp] &&
		exposed[core.KindIntraOp] <= exposed[core.KindInterOp]) {
		t.Fatalf("exposed comm on critical path: Liger %v, Intra-Op %v, Inter-Op %v; want Liger <= Intra-Op <= Inter-Op",
			exposed[core.KindLiger], exposed[core.KindIntraOp], exposed[core.KindInterOp])
	}

	liger, intra, inter := reps[core.KindLiger].Overlap, reps[core.KindIntraOp].Overlap, reps[core.KindInterOp].Overlap
	if liger.Hidden == 0 {
		t.Fatal("Liger hides no comm under compute at saturation; interleaving is not engaging")
	}
	if intra.Hidden != 0 {
		t.Fatalf("Intra-Op hides %v comm; its all-reduces should serialize with compute", intra.Hidden)
	}
	if liger.ExposedShare >= intra.ExposedShare {
		t.Fatalf("exposed-comm share: Liger %.3f >= Intra-Op %.3f", liger.ExposedShare, intra.ExposedShare)
	}
	if inter.Stall < 10*inter.Comm {
		t.Fatalf("Inter-Op stall %v vs comm %v; expected rendezvous occupancy to dwarf transfer time",
			inter.Stall, inter.Comm)
	}
}
