// Package bench regenerates every table and figure of the paper's
// evaluation (§4) on the simulated testbeds. Each experiment prints the
// rows/series the paper reports; EXPERIMENTS.md records paper-vs-
// measured numbers for each.
package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"liger/internal/core"
	"liger/internal/hw"
	"liger/internal/liger"
	"liger/internal/model"
	"liger/internal/nccl"
	"liger/internal/parallel"
	"liger/internal/runner"
	"liger/internal/serve"
)

// RunConfig controls experiment fidelity.
type RunConfig struct {
	// Batches is the number of batch arrivals per data point. The paper
	// serves 2000 requests per point; the default trades a little noise
	// for tractable simulation time.
	Batches int
	// Quick trims sweeps to a handful of points (used by the Go
	// benchmarks).
	Quick bool
	// Parallel is the worker count of the sweep executor: every
	// (panel, runtime, rate) simulation point is independent, so sweeps
	// fan across Parallel goroutines and collect results by stable job
	// index — output is byte-identical to a serial run. 0 or 1 runs
	// serially; runner.DefaultWorkers() uses every core.
	Parallel int
	// Seed drives trace generation and fault-schedule construction (the
	// straggler and chaos experiments): one seed pins both the arrival
	// process and every fault window, so a seeded run is reproducible
	// end to end.
	Seed int64
	// StragglerDevice is the device index the straggler experiment slows
	// down (bounds-checked against the node size at run time).
	StragglerDevice int
	// CSVDir, when set, receives machine-readable sweep data for the
	// Fig. 10/11/12 panels in addition to the printed tables.
	CSVDir string
	// PlotDir, when set, receives SVG latency/throughput charts of the
	// Fig. 10/11/12 panels (the figures themselves).
	PlotDir string
	// JSONDir, when set, receives machine-readable artifacts (the
	// failover sweep's BENCH_failover.json).
	JSONDir string
	// TraceDir, when set, makes the failover experiment re-run one fully
	// traced failure point per runtime and write a Chrome trace plus a
	// metrics snapshot for each (see docs/OBSERVABILITY.md).
	TraceDir string
	// Shards requests lookahead-sharded execution inside each simulation
	// point (core.Options.Shards). Single-node specs collapse to one
	// shard (see gpusim.PlanShards), so today this is a determinism
	// knob: output must stay byte-identical at any value, and the
	// pinned tests + CI smoke enforce exactly that.
	Shards int
}

// DefaultRunConfig returns the standard fidelity.
func DefaultRunConfig() RunConfig { return RunConfig{Batches: 150, Seed: 1, StragglerDevice: 2} }

// Experiment regenerates one paper table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg RunConfig, w io.Writer) error
}

// Experiments returns every experiment in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Table 1: model specifications", RunTable1},
		{"fig3", "Fig. 3: strong scaling of the intra-operator approach", RunFig03},
		{"fig4", "Fig. 4: kernel durations across models and input sizes", RunFig04},
		{"fig6", "Fig. 6: kernel execution order per parallelism (timeline demo)", RunFig06},
		{"fig9", "Fig. 9: GEMM decomposition strategies (vertical vs horizontal)", RunFig09},
		{"fig10", "Fig. 10: latency/throughput vs arrival rate (general tasks)", RunFig10},
		{"fig11", "Fig. 11: generative (incremental sampling) tasks", RunFig11},
		{"fig12", "Fig. 12: strong scaling of serving OPT-30B", RunFig12},
		{"fig13", "Fig. 13: hybrid vs CPU-GPU synchronization", RunFig13},
		{"fig14", "Fig. 14: kernel decomposition division factor", RunFig14},
		{"contention", "§3.5/§4.2: contention factor profiling and ablation", RunContention},
		{"channels", "§3.5 ablation: NCCL channel reduction", RunChannels},
		{"splitstrategy", "extension: runtime GEMM decomposition strategy ablation", RunSplitStrategy},
		{"robustness", "extension: constant vs Poisson vs bursty arrivals", RunRobustness},
		{"adaptive", "extension: online adaptive contention factor", RunAdaptive},
		{"straggler", "extension: failure injection — one slow GPU", RunStraggler},
		{"chaos", "extension: deterministic fault scenarios with deadline/retry serving", RunChaos},
		{"failover", "extension: permanent device failure, re-planning onto survivors, overload protection", RunFailover},
		{"fleet", "extension: whole-node loss in a replicated fleet, router failover onto a spare", RunFleet},
		{"serving", "extension: continuous batching with paged KV — TTFT/TPOT vs arrival rate and pool size", RunServing},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}

// panel describes one sub-plot of Fig. 10/11: a model on a node at a
// batch size.
type panel struct {
	label   string
	nodeKey string
	node    hw.Node
	spec    model.Spec
	batch   int
	phase   model.Phase
	ctxLen  int
}

// meanSeq is the midpoint of the paper's 16–128 sequence range.
const meanSeq = 72

// intraCapacity estimates the intra-operator runtime's saturated
// throughput analytically (batches/s) — used to center the arrival-rate
// sweep of each panel on its interesting region.
func intraCapacity(p panel) float64 {
	comp := parallel.NewCompiler(p.node, nccl.Config{})
	w := model.Workload{Batch: p.batch, Phase: p.phase}
	if p.phase == model.Decode {
		w.CtxLen = p.ctxLen
	} else {
		w.SeqLen = meanSeq
	}
	ks, err := comp.IntraOp(p.spec, p.node.NumGPUs, w)
	if err != nil {
		return 1
	}
	c, m := parallel.TotalDurations(ks)
	total := c + m
	if total <= 0 {
		return 1
	}
	return float64(time.Second) / float64(total)
}

// rateFractions spans from comfortably-below-intra-saturation to beyond
// Liger's (the paper sweeps until past the red line).
func rateFractions(quick bool) []float64 {
	if quick {
		return []float64{0.6, 1.0, 1.4}
	}
	return []float64{0.4, 0.7, 0.9, 1.05, 1.2, 1.4, 1.6}
}

// point is one measured (runtime, rate) result.
type point struct {
	rate float64
	res  serve.Result
}

// panelSweep is one panel's sweep request: every (kind, rate) pair is an
// independent simulation point.
type panelSweep struct {
	p     panel
	rates []float64
	kinds []core.RuntimeKind
}

// runSweeps executes every point of every sweep through the parallel
// executor and returns one result map per sweep, in input order. The job
// list is flattened in deterministic (sweep, kind, rate) order and
// results are collected by index, so the assembled maps are identical to
// the serial nested loops they replace.
func runSweeps(sweeps []panelSweep, cfg RunConfig) ([]map[core.RuntimeKind][]point, error) {
	type job struct {
		sweep int
		kind  core.RuntimeKind
		rate  float64
	}
	var jobs []job
	for si, sw := range sweeps {
		for _, kind := range sw.kinds {
			for _, rate := range sw.rates {
				jobs = append(jobs, job{sweep: si, kind: kind, rate: rate})
			}
		}
	}
	results, err := runner.Map(cfg.Parallel, len(jobs), func(i int) (serve.Result, error) {
		j := jobs[i]
		return runPoint(sweeps[j.sweep].p, j.rate, j.kind, cfg, nil)
	})
	if err != nil {
		return nil, err
	}
	out := make([]map[core.RuntimeKind][]point, len(sweeps))
	for si := range sweeps {
		out[si] = make(map[core.RuntimeKind][]point)
	}
	for i, j := range jobs {
		out[j.sweep][j.kind] = append(out[j.sweep][j.kind], point{rate: j.rate, res: results[i]})
	}
	return out, nil
}

// runPanel serves the panel's trace at each rate with each runtime.
func runPanel(p panel, rates []float64, kinds []core.RuntimeKind, cfg RunConfig) (map[core.RuntimeKind][]point, error) {
	maps, err := runSweeps([]panelSweep{{p: p, rates: rates, kinds: kinds}}, cfg)
	if err != nil {
		return nil, err
	}
	return maps[0], nil
}

// runPoint serves one (panel, rate, runtime) configuration. ligerCfg
// overrides the scheduler configuration when non-nil.
func runPoint(p panel, rate float64, kind core.RuntimeKind, cfg RunConfig, ligerCfg *liger.Config) (serve.Result, error) {
	opts := core.Options{Node: p.node, Model: p.spec, Runtime: kind, Shards: cfg.Shards}
	if ligerCfg != nil {
		opts.Liger = *ligerCfg
		opts.LigerSet = true
	}
	eng, err := core.NewEngine(opts)
	if err != nil {
		return serve.Result{}, err
	}
	trace, err := genTrace(p, rate, cfg)
	if err != nil {
		return serve.Result{}, err
	}
	return eng.Serve(trace)
}

// genTrace builds the panel's standard random trace at an arrival rate.
func genTrace(p panel, rate float64, cfg RunConfig) ([]serve.Arrival, error) {
	return serve.Generate(serve.TraceConfig{
		Batches:    cfg.Batches,
		BatchSize:  p.batch,
		RatePerSec: rate,
		MinSeq:     16,
		MaxSeq:     128,
		Phase:      p.phase,
		CtxLen:     p.ctxLen,
		Seed:       cfg.Seed,
	})
}

// saturatedThroughput returns the best throughput a runtime reached
// across its sweep points.
func saturatedThroughput(pts []point) float64 {
	best := 0.0
	for _, pt := range pts {
		if t := pt.res.ThroughputBatches(); t > best {
			best = t
		}
	}
	return best
}

// fmtDur renders a duration at µs precision.
func fmtDur(d time.Duration) string { return d.Round(time.Microsecond).String() }

// sortedKinds returns map keys in paper order.
func sortedKinds(m map[core.RuntimeKind][]point) []core.RuntimeKind {
	var ks []core.RuntimeKind
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}
